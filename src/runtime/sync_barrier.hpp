// Sense-reversing (epoch) barrier for the parallel engine's step loop.
//
// std::barrier burns two atomic phases per arrival (it supports arrive-
// and-drop and token-based waits we never use); on the engine's hot path
// every step crosses a barrier, so the cost per crossing matters.  This
// barrier is the classic counter+epoch scheme: arrivals increment a
// counter, the last arrival runs the completion function, resets the
// counter and bumps the epoch; everyone else spins briefly on the epoch
// word and then parks in std::atomic::wait (futex).
//
// Memory-ordering contract (what the engine relies on):
//   * every write a thread performs before arrive_and_wait() is visible
//     to the completion function (acq_rel RMW on the arrival counter);
//   * every write the completion function performs is visible to all
//     threads after they return (release store / acquire load of epoch).
//
// The spin budget should be ~0 when the process is oversubscribed
// (more runnable threads than cores): spinning there just steals the
// timeslice the last arriver needs.  Callers pick the budget; see
// ParallelEngine for the hardware_concurrency-based choice.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

namespace cg {

class SenseBarrier {
 public:
  /// `parties` threads per crossing; `completion` (optional) runs exactly
  /// once per crossing, on the last arriving thread, while every other
  /// party is blocked inside arrive_and_wait().
  explicit SenseBarrier(int parties, std::function<void()> completion = {},
                        int spin_rounds = 0)
      : parties_(parties),
        spin_rounds_(spin_rounds),
        completion_(std::move(completion)) {}

  SenseBarrier(const SenseBarrier&) = delete;
  SenseBarrier& operator=(const SenseBarrier&) = delete;

  void arrive_and_wait() {
    const std::uint32_t epoch = epoch_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      if (completion_) completion_();
      epoch_.store(epoch + 1, std::memory_order_release);
      epoch_.notify_all();
      return;
    }
    for (int i = 0; i < spin_rounds_; ++i) {
      if (epoch_.load(std::memory_order_acquire) != epoch) return;
      cpu_pause();
    }
    while (epoch_.load(std::memory_order_acquire) == epoch)
      epoch_.wait(epoch, std::memory_order_acquire);
  }

 private:
  static void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
  }

  const int parties_;
  const int spin_rounds_;
  std::function<void()> completion_;
  // Separate cache lines: arrivals hammer arrived_; waiters poll epoch_.
  alignas(64) std::atomic<int> arrived_{0};
  alignas(64) std::atomic<std::uint32_t> epoch_{0};
};

}  // namespace cg

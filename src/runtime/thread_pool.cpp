#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace cg {

namespace {
// Set while a thread is executing pool work (worker thread inside a job,
// or any thread inside an inline/nested parallel_for body).  Nested
// submissions from such a thread run inline instead of re-entering the
// pool: the pool's threads are already saturated, and blocking a worker
// on a sub-job could deadlock.
thread_local bool t_in_pool_work = false;
}  // namespace

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

struct ThreadPool::Job {
  ChunkFn fn;                         // copied: must outlive late wakers
  std::int64_t count = 0;
  std::int64_t chunk = 1;
  int max_slots = 1;
  std::atomic<std::int64_t> next{0};  // first unclaimed item
  std::atomic<std::int64_t> done{0};  // items finished (claimed chunks only)
  std::atomic<int> slots{1};          // next participant slot (0 = caller)
  std::mutex mu;                      // guards error; pairs with done_cv
  std::condition_variable done_cv;    // signaled when done reaches count
  std::exception_ptr error;           // first exception wins
};

ThreadPool::ThreadPool(int threads) {
  ensure_threads(threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& th : workers_) th.join();
}

int ThreadPool::threads() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(workers_.size()) + 1;
}

void ThreadPool::ensure_threads(int threads) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto want = static_cast<std::size_t>(std::max(0, threads - 1));
  while (workers_.size() < want)
    workers_.emplace_back([this] { worker_main(); });
}

void ThreadPool::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;  // shared: keeps the job alive past the caller
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || job_seq_ != seen; });
      if (stop_) return;
      seen = job_seq_;
      job = job_;
    }
    if (!job) continue;  // job already drained and retired
    t_in_pool_work = true;
    participate(*job);
    t_in_pool_work = false;
  }
}

// Claim a participant slot; excess workers (slot >= max_slots) bow out so
// a parallelism-capped job never runs wider than requested.
void ThreadPool::participate(Job& job) {
  const int slot = job.slots.fetch_add(1, std::memory_order_relaxed);
  if (slot >= job.max_slots) return;
  run_chunks(job, slot);
}

void ThreadPool::run_chunks(Job& job, int slot) {
  for (;;) {
    const std::int64_t begin =
        job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.count) return;
    const std::int64_t end = std::min(begin + job.chunk, job.count);
    try {
      job.fn(begin, end, slot);
    } catch (...) {
      std::lock_guard<std::mutex> lk(job.mu);
      if (!job.error) job.error = std::current_exception();
    }
    // Credit the chunk even on exception so the caller's drain completes.
    const std::int64_t finished =
        job.done.fetch_add(end - begin, std::memory_order_acq_rel) +
        (end - begin);
    if (finished == job.count) {
      // Lock before notifying so the caller cannot check its predicate
      // between our increment and the notify (missed-wakeup hazard).
      std::lock_guard<std::mutex> lk(job.mu);
      job.done_cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::int64_t count, std::int64_t chunk,
                              int parallelism, const ChunkFn& fn) {
  if (count <= 0) return;
  chunk = std::max<std::int64_t>(1, chunk);
  // Inline paths: nested call, single participant, or a range that one
  // chunk covers anyway.  Chunk boundaries are preserved so the body sees
  // the same (begin, end) partition as the threaded path.
  if (t_in_pool_work || parallelism <= 1 || count <= chunk ||
      threads() <= 1) {
    const bool outer = !t_in_pool_work;
    t_in_pool_work = true;
    try {
      for (std::int64_t b = 0; b < count; b += chunk)
        fn(b, std::min(b + chunk, count), 0);
    } catch (...) {
      if (outer) t_in_pool_work = false;
      throw;
    }
    if (outer) t_in_pool_work = false;
    return;
  }

  // One job at a time: a second top-level caller queues behind the first
  // rather than racing for workers (its range still completes).
  std::lock_guard<std::mutex> submit(submit_mu_);

  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->count = count;
  job->chunk = chunk;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job->max_slots = std::min(parallelism, static_cast<int>(workers_.size()) + 1);
    job_ = job;
    ++job_seq_;
  }
  work_cv_.notify_all();

  // The caller is participant 0 (slot pre-claimed by slots{1} above).
  t_in_pool_work = true;
  run_chunks(*job, 0);
  t_in_pool_work = false;

  // Wait for workers still finishing claimed chunks, then retire the job.
  // done only ever reaches count once every claimed chunk ran, and late-
  // waking workers see either a null job_ or an exhausted counter.
  {
    std::unique_lock<std::mutex> lk(job->mu);
    job->done_cv.wait(lk, [&] {
      return job->done.load(std::memory_order_acquire) == count;
    });
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& ThreadPool::global(int min_threads) {
  static ThreadPool pool(resolve_threads(0));
  if (min_threads > pool.threads()) pool.ensure_threads(min_threads);
  return pool;
}

bool ThreadPool::in_pool_work() { return t_in_pool_work; }

}  // namespace cg

#include "runtime/broadcast.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "gossip/ccg.hpp"
#include "gossip/fcg.hpp"
#include "gossip/ocg.hpp"
#include "runtime/parallel_engine.hpp"
#include "runtime/thread_pool.hpp"

namespace cg {

std::string BroadcastReport::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s(T=%lld): reached %d/%d active nodes in %.1f us with %lld "
                "messages%s%s",
                algo_name(algo), static_cast<long long>(gossip_T), reached,
                active, latency_us, static_cast<long long>(messages),
                reached_all_active ? "" : " [NOT ALL REACHED]",
                sos_triggered ? " [SOS]" : "");
  return buf;
}

BroadcastReport reliable_broadcast(const BroadcastOptions& opts,
                                   std::uint64_t seed) {
  CG_CHECK(opts.n >= 1);
  const int threads = resolve_threads(opts.threads);
  const Algo algo = opts.consistency == Consistency::kWeak      ? Algo::kOcg
                    : opts.consistency == Consistency::kChecked ? Algo::kCcg
                                                                : Algo::kFcg;
  const NodeId active_estimate =
      opts.n - static_cast<NodeId>(opts.failures.pre_failed.size());
  const TunedAlgo tuned =
      tune_for(algo, opts.n, active_estimate, opts.logp, opts.eps, opts.f);

  RunConfig rcfg;
  rcfg.n = opts.n;
  rcfg.root = opts.root;
  rcfg.logp = opts.logp;
  rcfg.seed = seed;
  rcfg.failures = opts.failures;

  RunMetrics m;
  switch (algo) {
    case Algo::kOcg: {
      OcgNode::Params p;
      p.T = tuned.acfg.T;
      p.corr_sends = tuned.acfg.ocg_corr_sends;
      ParallelEngine<OcgNode> eng(rcfg, p, threads);
      m = eng.run();
      break;
    }
    case Algo::kCcg: {
      CcgNode::Params p;
      p.T = tuned.acfg.T;
      ParallelEngine<CcgNode> eng(rcfg, p, threads);
      m = eng.run();
      break;
    }
    default: {
      FcgNode::Params p;
      p.T = tuned.acfg.T;
      p.f = opts.f;
      ParallelEngine<FcgNode> eng(rcfg, p, threads);
      m = eng.run();
      break;
    }
  }

  BroadcastReport rep;
  rep.algo = algo;
  rep.gossip_T = tuned.acfg.T;
  rep.reached_all_active = m.all_active_colored;
  rep.delivered_all_or_nothing = m.all_or_nothing_delivery();
  rep.latency_us =
      m.t_complete != kNever ? opts.logp.us(m.t_complete) : opts.logp.us(m.t_end);
  rep.messages = m.msgs_total;
  rep.active = m.n_active;
  rep.reached = m.n_colored;
  rep.sos_triggered = m.sos_triggered;
  return rep;
}

}  // namespace cg

// Persistent worker pool for the trial farm.
//
// run_trials() used to spawn raw std::threads per call with a static
// stride (trial t went to worker t % threads).  That costs a thread
// create/join per worker per call, and static striding load-balances
// badly when trial durations vary (faulty trials run longer than clean
// ones).  This pool keeps its workers alive across calls and schedules
// chunks dynamically: participants claim [next, next+chunk) ranges off a
// shared atomic counter until the range space is exhausted, so a slow
// chunk never idles the other workers.
//
// Design points:
//   * The CALLING thread participates as slot 0 and claims chunks like
//     any worker.  Besides using all available cores, this keeps the
//     caller's CPU time proportional to the work it performed, which is
//     what makes per-thread benchmark accounting honest (docs/PERF.md §5).
//   * Slots, not threads: a parallel_for with `parallelism` P hands out
//     participant slots 0..P-1 (0 = caller).  Callers use the slot index
//     to address per-participant workspaces; at most P participants run
//     the body concurrently even when the pool has more workers.
//   * Nested calls run inline.  A parallel_for issued from inside a pool
//     worker executes its whole range on that worker with slot 0 - no
//     deadlock, and the caller's per-call workspace array (sized for its
//     own parallelism) still indexes correctly because each call site
//     owns its workspaces.
//   * Exceptions: the first exception thrown by the body is captured and
//     rethrown on the calling thread after every chunk finished; the pool
//     stays usable.
//
// Determinism: the pool schedules WHERE work runs, never changes WHAT the
// work computes.  Farm-level determinism (byte-identical aggregates for
// any thread count) is the caller's contract: write results indexed by
// item, reduce in item order (see run_trials).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cg {

/// Resolve a user-facing thread-count knob: <= 0 means "auto" =
/// std::thread::hardware_concurrency() (>= 1 even when unknown).
int resolve_threads(int requested);

class ThreadPool {
 public:
  /// fn(begin, end, slot): process items [begin, end); `slot` identifies
  /// the participant (0 = calling thread) and is < the call's parallelism.
  using ChunkFn = std::function<void(std::int64_t begin, std::int64_t end,
                                     int slot)>;

  /// A pool of `threads` participants total: threads-1 background workers
  /// plus the calling thread.  threads <= 1 means no background workers.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Max participants a parallel_for can use (background workers + 1).
  int threads() const;

  /// Grow the worker set so threads() >= `threads`.  Never shrinks.
  void ensure_threads(int threads);

  /// Run fn over [0, count) in chunks of `chunk` items, with at most
  /// `parallelism` concurrent participants (clamped to [1, threads()]).
  /// Blocks until the whole range is processed; rethrows the first
  /// exception the body threw.  Safe to call concurrently from multiple
  /// threads (calls serialize) and from inside the body (runs inline).
  void parallel_for(std::int64_t count, std::int64_t chunk, int parallelism,
                    const ChunkFn& fn);
  void parallel_for(std::int64_t count, std::int64_t chunk, const ChunkFn& fn) {
    parallel_for(count, chunk, threads(), fn);
  }

  /// The process-wide pool, lazily created with auto-detected size and
  /// grown on demand (never shrunk).  Workers idle on a condition
  /// variable between jobs and cost nothing while the farm is quiet.
  static ThreadPool& global(int min_threads = 0);

  /// Is the calling thread currently executing pool work (a worker inside
  /// a job, or any thread inside an inline/nested parallel_for body)?  A
  /// parallel_for issued from such a thread runs inline; callers whose
  /// bodies synchronize with each other (e.g. a barrier between chunks)
  /// must check this and fall back to a sequential schedule.
  static bool in_pool_work();

 private:
  struct Job;

  void worker_main();
  static void participate(Job& job);
  static void run_chunks(Job& job, int slot);

  mutable std::mutex mu_;                // guards job_/job_seq_/stop_/workers_
  std::condition_variable work_cv_;      // workers: new job or stop
  std::mutex submit_mu_;                 // serializes top-level parallel_for
  std::shared_ptr<Job> job_;             // current job (null when idle)
  std::uint64_t job_seq_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cg

// User-facing facade: tune, run, and report a reliable broadcast in one
// call.  This is the "embed corrected-gossip in your runtime" API the
// paper's conclusions point at: pick a consistency level, give the system
// size and LogP parameters, and get a fully tuned broadcast.
#pragma once

#include <cstdint>
#include <string>

#include "harness/scenarios.hpp"
#include "sim/failure.hpp"

namespace cg {

/// Consistency level requested by the application (Section II).
enum class Consistency : std::uint8_t {
  kWeak,        ///< OCG: all nodes w.p. >= 1-eps, cheapest/fastest
  kChecked,     ///< CCG: all active nodes if no failure during correction
  kFailProof,   ///< FCG: all-or-nothing with up to f online failures
};

struct BroadcastOptions {
  NodeId n = 0;
  Consistency consistency = Consistency::kChecked;
  LogP logp = LogP::piz_daint();
  double eps = 6.9315e-7;   ///< failure budget for the tuning models
  int f = 1;                ///< FCG resilience
  NodeId root = 0;
  /// Worker threads for the parallel runtime; <= 0 = auto
  /// (hardware_concurrency).
  int threads = 1;
  FailureSchedule failures{};
};

struct BroadcastReport {
  Algo algo = Algo::kOcg;
  Step gossip_T = 0;
  bool reached_all_active = false;
  bool delivered_all_or_nothing = true;
  double latency_us = 0;        ///< completion of the protocol
  std::int64_t messages = 0;
  NodeId active = 0;
  NodeId reached = 0;
  bool sos_triggered = false;

  std::string summary() const;
};

/// Tune parameters for the requested consistency level, execute the
/// broadcast on the multi-threaded runtime, and report the outcome.
BroadcastReport reliable_broadcast(const BroadcastOptions& opts,
                                   std::uint64_t seed = 1);

}  // namespace cg

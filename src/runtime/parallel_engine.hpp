// Multi-threaded execution of the same protocol state machines the stepped
// simulator runs (sim/engine.hpp), sharding nodes across worker threads
// with a step barrier.  Produces the same RunMetrics as the serial engine -
// including under jitter, message loss and RxPolicy::kOnePerStep - which
// tests/test_engine_parity.cpp verifies for every corrected-gossip
// protocol.
//
// Ownership: nodes are split into CONTIGUOUS blocks, one per worker,
// rounded up to a 64-node boundary.  Per-node hot state lives in parallel
// arrays at byte/word granularity (NodeStateStore bytes, RNG streams,
// queue headers), so block ownership - unlike the modulo striding this
// engine used before - keeps each worker's writes on its own cache lines
// instead of interleaving every array at element granularity (the false
// sharing behind the old 4 -> 8 thread regression).
//
// Structure per global step, for each worker thread w owning block(w):
//   phase A: apply due failures; deliver due messages (on_receive); tick
//            active nodes (on_tick); stage outgoing messages in the
//            worker's PARITY outbox for this step;
//   barrier (sense-reversing, runtime/sync_barrier.hpp; its completion
//            function folds per-worker deltas, merges trace buffers in
//            worker order, advances the step and decides termination);
//   phase B: route every message staged this step (any worker's outbox of
//            the step's parity) destined to an owned node into that
//            node's timed queue.
//
// This is ONE barrier per step where the previous design used two.  The
// second barrier (between phase B and the next phase A) is replaced by
// double-buffered outboxes indexed by step parity: phase A of step s
// writes outbox[s&1], phase B of step s reads every worker's outbox[s&1],
// and the buffer is reused (cleared by its owner) at phase A of step s+2
// - by which point every reader has long since passed the barrier after
// step s+1, so no synchronization is needed.  Phase B itself writes only
// queues the writing worker owns, and phase A of s+1 reads only queues
// its worker owns, so B(s) and A(s+1) may overlap across workers freely.
//
// The model itself (delays/jitter/loss, node lifecycle, emission gate,
// metrics finalization, Ctx surface) is shared with the other engines via
// src/sim/core/.  The ownership discipline - node i is only ever mutated
// by owner_of(i) during a phase - keeps the whole thing free of data
// races (TSan-checked via the `sanitize` ctest label).
//
// The CALLING thread participates as worker 0 and the engine spawns only
// threads-1 helpers.  Besides saving a thread, this makes per-thread CPU
// accounting honest: the caller's CPU time reflects the work it did, not
// a join() wait (see docs/PERF.md §5 on benchmark accounting).
#pragma once

#include <algorithm>
#include <array>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "obs/telemetry.hpp"
#include "runtime/sync_barrier.hpp"
#include "sim/core/basic_ctx.hpp"
#include "sim/core/inbox.hpp"
#include "sim/core/network_model.hpp"
#include "sim/core/node_state.hpp"
#include "sim/core/profile.hpp"
#include "sim/core/run_config.hpp"
#include "sim/core/send_gate.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace cg {

template <class Node>
class ParallelEngine {
 public:
  using Params = typename Node::Params;

  /// BasicCtx host: the engine plus the worker the callback runs on, so
  /// sends and state transitions land in that worker's accounting.
  struct WorkerView {
    ParallelEngine* eng;
    int worker;

    Step ctx_now() const { return eng->step_; }
    const RunConfig& ctx_cfg() const { return eng->cfg_; }
    Xoshiro256& ctx_rng(NodeId i) {
      return eng->rng_[static_cast<std::size_t>(i)];
    }
    void ctx_send(NodeId from, NodeId to, const Message& m) {
      eng->do_send(worker, from, to, m);
    }
    void ctx_activate(NodeId i) { eng->do_activate(worker, i); }
    void ctx_mark_colored(NodeId i) {
      auto& ws = eng->workers_[static_cast<std::size_t>(worker)];
      if (eng->store_.mark_colored(i, eng->step_, ws.rx_payload)) {
        eng->trace(worker, {eng->step_, TraceEvent::Kind::kColored, i, kNoNode,
                            Tag::kGossip});
        if (eng->cfg_.telemetry != nullptr)
          eng->cfg_.telemetry->record_colored(worker, eng->step_);
      }
    }
    void ctx_adopt_payload(NodeId i, std::uint32_t d) {
      eng->store_.set_held_payload(i, d);
    }
    void ctx_deliver(NodeId i) {
      if (eng->store_.mark_delivered(i, eng->step_))
        eng->trace(worker, {eng->step_, TraceEvent::Kind::kDelivered, i,
                            kNoNode, Tag::kGossip});
    }
    void ctx_complete(NodeId i) { eng->do_complete(worker, i); }
    bool ctx_colored(NodeId i) const { return eng->store_.colored(i); }
    void ctx_note_dropped(NodeId) {
      eng->workers_[static_cast<std::size_t>(worker)].counts.add_dropped();
    }
  };
  using Ctx = BasicCtx<WorkerView>;

  ParallelEngine(RunConfig cfg, Params params, int threads)
      : cfg_(std::move(cfg)), params_(std::move(params)),
        threads_(std::max(1, threads)) {
    CG_CHECK(cfg_.n >= 1);
    CG_CHECK(cfg_.root >= 0 && cfg_.root < cfg_.n);
    cfg_.logp.validate();
  }

  RunMetrics run();

 private:
  struct TimedMsg {
    Step at;
    NodeId to;
    Message msg;
  };

  // One cache-line-aligned block per worker: everything a worker mutates
  // every step lives here, never on a line another worker writes.
  struct alignas(64) WorkerState {
    std::array<std::vector<TimedMsg>, 2> outbox;  // indexed by step parity
    std::int64_t active_delta = 0;     // activations - completions this step
    std::int64_t sent = 0;             // messages staged this step
    std::int64_t delivered = 0;        // messages consumed this step
    std::int64_t revived = 0;          // restarts applied this step
    std::uint32_t rx_payload = 0;      // digest of the message being dispatched
    MessageCounts counts;              // merged into metrics at the end
    std::vector<TraceEvent> trace;     // merged in worker order per step
    // Self-profiling (RunConfig::profile): per-worker callback counts and
    // compute time per phase (barrier waits excluded), folded at the end.
    std::int64_t prof_receive = 0;
    std::int64_t prof_tick = 0;
    std::int64_t prof_scheduled = 0;   // messages staged (delivery calendar)
    std::int64_t prof_fired = 0;       // messages drained from owned queues
    std::int64_t prof_max_bucket = 0;  // peak one-node timed-queue occupancy
    double prof_phase_a_s = 0;
    double prof_phase_b_s = 0;
  };

  // Contiguous block ownership, 64-node-aligned (see file comment).
  int owner_of(NodeId i) const {
    return std::min(static_cast<int>(i / block_), threads_ - 1);
  }
  NodeId block_begin(int w) const {
    return std::min(static_cast<NodeId>(w) * block_, cfg_.n);
  }
  NodeId block_end(int w) const {
    return std::min((static_cast<NodeId>(w) + 1) * block_, cfg_.n);
  }

  void do_send(int worker, NodeId from, NodeId to, const Message& m) {
    CG_CHECK(to >= 0 && to < cfg_.n);
    CG_CHECK_MSG(to != from, "node sent a message to itself");
    auto& ws = workers_[static_cast<std::size_t>(worker)];
    gate_.on_send(from, step_);
    Message adv = m;
    if (adv.payload == 0) adv.payload = store_.held_payload(from);
    if (byz_.any()) {
      const ByzAction act = byz_.transform(from, to, adv, step_);
      if (act == ByzAction::kSuppressed) {
        ws.counts.add_suppressed();
        return;  // swallowed at the sender: no send/lost trace, no route
      }
      if (act == ByzAction::kEquivocated) ws.counts.add_equivocated();
      if (act == ByzAction::kForged) ws.counts.add_forged();
      ws.counts.add(adv);
      if (cfg_.trace != nullptr) {
        trace(worker, {step_, TraceEvent::Kind::kSend, from, to, adv.tag});
        if (act == ByzAction::kEquivocated)
          trace(worker,
                {step_, TraceEvent::Kind::kEquivocated, from, to, adv.tag});
        else if (act == ByzAction::kForged)
          trace(worker, {step_, TraceEvent::Kind::kForged, from, to, adv.tag});
      }
    } else {
      ws.counts.add(adv);
      if (cfg_.trace != nullptr)
        trace(worker, {step_, TraceEvent::Kind::kSend, from, to, adv.tag});
    }

    const Step at = net_.route(from, to, step_);
    if (at == NetworkModel::kLost) {  // lost on the wire (counted)
      trace(worker, {step_, TraceEvent::Kind::kLost, from, to, adv.tag});
      return;
    }

    Message out = adv;
    out.src = from;
    ws.outbox[static_cast<std::size_t>(step_ & 1)].push_back({at, to, out});
    ++ws.sent;
    if (cfg_.profile != nullptr) ++ws.prof_scheduled;
  }

  void do_activate(int worker, NodeId i) {
    if (store_.activate(i, step_))
      ++workers_[static_cast<std::size_t>(worker)].active_delta;
  }

  void do_complete(int worker, NodeId i) {
    const auto t = store_.complete(i, step_);
    if (!t.changed) return;
    if (t.was_active) --workers_[static_cast<std::size_t>(worker)].active_delta;
    trace(worker,
          {step_, TraceEvent::Kind::kComplete, i, kNoNode, Tag::kGossip});
  }

  // Phase-A deliveries + receive for one owned node (worker-local `due` is
  // scratch).  Returns the number of messages CONSUMED this step (popped
  // from the network/inbox), which feeds the shared in-flight count.
  std::int64_t deliver_for(int w, NodeId i, std::vector<TimedMsg>& due) {
    const auto idx = static_cast<std::size_t>(i);
    const Step s = step_;
    auto& q = queue_[idx];
    if (cfg_.profile != nullptr) {
      auto& ws = workers_[static_cast<std::size_t>(w)];
      ws.prof_max_bucket =
          std::max(ws.prof_max_bucket, static_cast<std::int64_t>(q.size()));
    }
    // Stable compaction: the queue holds arrivals in (send step, sender)
    // push order, and dispatch must preserve it per node - that is the
    // cross-engine contract the serial calendar provides for free.  A
    // swap-remove here would scramble same-step arrivals, which order-
    // sensitive protocols (SBRB's subscription lists) observe.
    due.clear();
    std::size_t keep = 0;
    for (std::size_t k = 0; k < q.size(); ++k) {
      if (q[k].at <= s)
        due.push_back(q[k]);
      else
        q[keep++] = q[k];
    }
    q.resize(keep);
    if (cfg_.profile != nullptr)
      workers_[static_cast<std::size_t>(w)].prof_fired +=
          static_cast<std::int64_t>(due.size());
    if (cfg_.rx == RxPolicy::kDrainAll) {
      if (store_.alive(i) && !store_.done(i)) {
        for (const auto& d : due) {
          if (store_.done(i)) break;  // completed mid-drain: rest is dropped
          dispatch(w, i, d.msg);
        }
      }
      return static_cast<std::int64_t>(due.size());
    }
    // kOnePerStep: canonical-order this step's arrivals into the inbox,
    // then consume at most one (even for dead/done nodes, mirroring the
    // serial engine's drain).
    auto& box = inbox_[idx];
    if (!due.empty()) {
      std::sort(due.begin(), due.end(),
                [](const TimedMsg& a, const TimedMsg& b) {
                  return rx_order_before(a.msg, b.msg);
                });
      for (const auto& d : due) box.push_back(d.msg);
    }
    if (box.empty()) return 0;
    const Message m = box.front();
    box.pop_front();
    if (store_.alive(i) && !store_.done(i)) dispatch(w, i, m);
    return 1;
  }

  void dispatch(int w, NodeId to, const Message& m) {
    do_activate(w, to);
    if (cfg_.trace != nullptr)
      trace(w, {step_, TraceEvent::Kind::kDeliver, to, m.src, m.tag});
    // Cell = worker; node `to` is owned by w, so the telemetry stamp/pend
    // arrays see each node from exactly one thread.
    if (cfg_.telemetry != nullptr)
      cfg_.telemetry->record_delivery(w, to, step_);
    if (cfg_.profile != nullptr)
      ++workers_[static_cast<std::size_t>(w)].prof_receive;
    WorkerView view{this, w};
    Ctx ctx(view, to);
    auto& ws = workers_[static_cast<std::size_t>(w)];
    ws.rx_payload = m.payload;  // ambient digest for ctx_mark_colored
    nodes_[static_cast<std::size_t>(to)].on_receive(ctx, m);
    ws.rx_payload = 0;
  }

  void trace(int worker, TraceEvent ev) {
    if (cfg_.trace != nullptr)
      workers_[static_cast<std::size_t>(worker)].trace.push_back(ev);
  }

  // Single-threaded (constructor, or inside the barrier completion).
  void flush_traces() {
    if (cfg_.trace == nullptr) return;
    for (auto& ws : workers_) {
      for (const auto& ev : ws.trace) cfg_.trace->on_event(ev);
      ws.trace.clear();
    }
  }

  RunConfig cfg_;
  Params params_;
  int threads_;
  NodeId block_ = 1;  // nodes per worker block (64-aligned)

  Step step_ = 0;
  std::vector<Node> nodes_;
  std::vector<Xoshiro256> rng_;
  NetworkModel net_;
  NodeStateStore store_;
  SendGate gate_;
  ByzantineModel byz_;
  std::vector<Step> crash_at_;
  std::vector<Step> restart_up_;              // revive step per node (kNever)
  std::vector<std::vector<TimedMsg>> queue_;  // per-node pending deliveries
  std::vector<InboxBuf> inbox_;               // kOnePerStep only
  std::vector<WorkerState> workers_;
  std::int64_t active_count_ = 0;
  std::int64_t in_flight_ = 0;
  std::int64_t pending_restarts_ = 0;
  bool stop_ = false;
  RunMetrics metrics_{};
};

template <class Node>
RunMetrics ParallelEngine<Node>::run() {
  const auto n = static_cast<std::size_t>(cfg_.n);
  // Block size: even split, rounded up to a 64-node boundary so two
  // workers never write the same cache line of any per-node byte array.
  block_ = (cfg_.n + static_cast<NodeId>(threads_) - 1) /
           static_cast<NodeId>(threads_);
  block_ = ((block_ + 63) / 64) * 64;
  if (block_ < 1) block_ = 1;
  nodes_.clear();
  nodes_.reserve(n);
  for (NodeId i = 0; i < cfg_.n; ++i) nodes_.emplace_back(params_, i, cfg_.n);
  rng_.clear();
  rng_.reserve(n);
  for (NodeId i = 0; i < cfg_.n; ++i)
    rng_.emplace_back(derive_seed(cfg_.seed, static_cast<std::uint64_t>(i)));
  net_.reset(cfg_);
  store_.reset(cfg_.n);
  gate_.reset(cfg_.n);
  byz_.reset(cfg_.n, cfg_.root, cfg_.seed, cfg_.byzantine);
  for (const auto& b : cfg_.byzantine.nodes) store_.mark_byzantine(b.node);
  crash_at_.assign(n, kNever);
  restart_up_.assign(n, kNever);
  queue_.assign(n, {});
  if (cfg_.rx == RxPolicy::kOnePerStep) inbox_.assign(n, {});
  workers_.assign(static_cast<std::size_t>(threads_), WorkerState{});
  metrics_ = RunMetrics{};
  step_ = 0;
  active_count_ = 0;
  in_flight_ = 0;
  pending_restarts_ = 0;
  stop_ = false;

  for (const NodeId i : cfg_.failures.pre_failed) store_.pre_fail(i);
  for (const auto& of : cfg_.failures.online)
    crash_at_[static_cast<std::size_t>(of.node)] =
        std::min(crash_at_[static_cast<std::size_t>(of.node)], of.at_step);
  for (const auto& r : cfg_.failures.restarts) {
    const auto idx = static_cast<std::size_t>(r.node);
    crash_at_[idx] = std::min(crash_at_[idx], r.down_at);
    restart_up_[idx] = r.up_at;
    ++pending_restarts_;
  }
  CG_CHECK_MSG(store_.alive(cfg_.root), "root must be active at start");

  EngineProfile* prof = cfg_.profile;
  if (prof != nullptr) *prof = EngineProfile{};
  if (cfg_.telemetry != nullptr) cfg_.telemetry->attach(cfg_.n, threads_);
  const auto prof_run0 = ProfileClock::now();

  store_.activate(cfg_.root, 0);
  active_count_ = 1;
  for (NodeId i = 0; i < cfg_.n; ++i) {
    if (!store_.alive(i)) continue;
    if (prof != nullptr) ++prof->callbacks_start;
    WorkerView view{this, owner_of(i)};
    Ctx ctx(view, i);
    nodes_[static_cast<std::size_t>(i)].on_start(ctx);
  }
  // on_start completions adjust deltas; fold them in before stepping.
  // (on_start sends staged into outbox[0] survive: phase A only clears
  // its parity outbox from step 1 on.)
  for (auto& ws : workers_) {
    active_count_ += ws.active_delta;
    ws.active_delta = 0;
  }
  flush_traces();

  const Step max_steps = cfg_.effective_max_steps();

  auto on_step_done = [this, max_steps]() noexcept {
    for (auto& ws : workers_) {
      active_count_ += ws.active_delta;
      in_flight_ += ws.sent - ws.delivered;
      pending_restarts_ -= ws.revived;
      ws.active_delta = 0;
      ws.sent = 0;
      ws.delivered = 0;
      ws.revived = 0;
    }
    flush_traces();
    ++step_;
    if (cfg_.heartbeat != nullptr)  // single-threaded: barrier completion
      cfg_.heartbeat->beat(step_, max_steps, 0);
    // Pending revivals are outstanding work (the other engines reach every
    // scheduled restart before terminating; see sim/engine.hpp).
    if ((active_count_ == 0 && in_flight_ == 0 && pending_restarts_ == 0) ||
        step_ >= max_steps) {
      if (step_ >= max_steps) metrics_.hit_max_steps = true;
      stop_ = true;
    }
  };
  // Spin only when every thread can actually run at once; oversubscribed
  // configurations go straight to the futex so the last arriver gets the
  // core (on a 1-core host, spinning at a barrier is pure waste).
  const unsigned hw = std::thread::hardware_concurrency();
  const int spin =
      (hw != 0 && static_cast<unsigned>(threads_) <= hw) ? 2048 : 0;
  SenseBarrier bar(threads_, on_step_done, spin);

  auto worker_fn = [this, &bar](int w) {
    const NodeId lo = block_begin(w);
    const NodeId hi = block_end(w);
    const bool one_per_step = cfg_.rx == RxPolicy::kOnePerStep;
    auto& ws = workers_[static_cast<std::size_t>(w)];
    std::vector<TimedMsg> due;
    const bool profiled = cfg_.profile != nullptr;
    for (;;) {
      const Step s = step_;
      const auto par = static_cast<std::size_t>(s & 1);
      const auto prof_a0 =
          profiled ? ProfileClock::now() : ProfileClock::TimePoint{};
      // --- phase A: failures, deliveries, ticks ---
      // Reuse this parity's outbox.  Its last readers (phase B of step
      // s-2) all passed the step-(s-1) barrier before we entered step s,
      // so the clear is unsynchronized but safe.  Step 0 must NOT clear:
      // outbox[0] holds the on_start sends.
      if (s > 0) ws.outbox[par].clear();
      for (NodeId i = lo; i < hi; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        if (store_.alive(i) && crash_at_[idx] <= s) {
          const auto t = store_.kill(i);
          if (t.was_active) --ws.active_delta;
          trace(w, {s, TraceEvent::Kind::kFail, i, kNoNode, Tag::kGossip});
        }
        if (restart_up_[idx] <= s && store_.revive(i)) {
          // Fresh protocol instance, passive until its first receive (no
          // on_start) - node i is owned by this worker, so the swap is
          // race-free.  Clear crash_at_ so the node is not re-killed.
          nodes_[idx] = Node(params_, i, cfg_.n);
          crash_at_[idx] = kNever;
          restart_up_[idx] = kNever;
          ++ws.revived;
          trace(w, {s, TraceEvent::Kind::kRestart, i, kNoNode, Tag::kGossip});
        }
        // Fast path: nothing pending for this node (the common case).
        if (!queue_[idx].empty() || (one_per_step && !inbox_[idx].empty()))
          ws.delivered += deliver_for(w, i, due);
        if (store_.state(i) == NodeRunState::kActive &&
            store_.activated_at(i) != s) {
          if (profiled) ++ws.prof_tick;
          WorkerView view{this, w};
          Ctx ctx(view, i);
          nodes_[idx].on_tick(ctx);
        }
      }
      if (profiled) ws.prof_phase_a_s += ProfileClock::seconds_since(prof_a0);
      bar.arrive_and_wait();
      if (stop_) break;
      const auto prof_b0 =
          profiled ? ProfileClock::now() : ProfileClock::TimePoint{};
      // --- phase B: route messages staged this step to owned nodes ---
      // Reads every worker's parity-`par` outbox (all sealed at the
      // barrier above); writes only queues this worker owns, which phase
      // A of the next step reads only on this same thread.
      for (const auto& other : workers_) {
        for (const auto& tm : other.outbox[par]) {
          if (tm.to >= lo && tm.to < hi)
            queue_[static_cast<std::size_t>(tm.to)].push_back(tm);
        }
      }
      if (profiled) ws.prof_phase_b_s += ProfileClock::seconds_since(prof_b0);
    }
  };

  if (threads_ == 1) {
    worker_fn(0);
  } else {
    // The caller is worker 0; spawn only the helpers.
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int w = 1; w < threads_; ++w) pool.emplace_back(worker_fn, w);
    worker_fn(0);
    for (auto& th : pool) th.join();
  }

  if (prof != nullptr) {
    for (const auto& ws : workers_) {
      prof->callbacks_receive += ws.prof_receive;
      prof->callbacks_tick += ws.prof_tick;
      prof->events_scheduled += ws.prof_scheduled;
      prof->events_fired += ws.prof_fired;
      prof->queue_max_bucket =
          std::max(prof->queue_max_bucket, ws.prof_max_bucket);
      // Phase time = the slowest worker's compute (the step's critical path).
      prof->deliver_s = std::max(prof->deliver_s, ws.prof_phase_a_s);
      prof->route_s = std::max(prof->route_s, ws.prof_phase_b_s);
    }
    prof->steps = step_;
    prof->wall_s = ProfileClock::seconds_since(prof_run0);
    std::size_t fp = nodes_.capacity() * sizeof(Node) +
                     rng_.capacity() * sizeof(Xoshiro256) +
                     store_.footprint_bytes() +
                     (crash_at_.capacity() + restart_up_.capacity()) *
                         sizeof(Step);
    for (const auto& q : queue_) fp += q.capacity() * sizeof(TimedMsg);
    for (const auto& ib : inbox_) fp += ib.capacity() * sizeof(Message);
    for (const auto& ws : workers_) {
      fp += (ws.outbox[0].capacity() + ws.outbox[1].capacity()) *
            sizeof(TimedMsg);
      fp += ws.trace.capacity() * sizeof(TraceEvent);
    }
    prof->bytes_per_node =
        static_cast<std::int64_t>(fp / static_cast<std::size_t>(cfg_.n));
    prof->peak_rss_bytes = current_peak_rss_bytes();
  }
  for (const auto& ws : workers_) ws.counts.merge_into(metrics_);
  store_.finalize(metrics_, cfg_.root, step_, cfg_.record_node_detail);
  if (cfg_.telemetry != nullptr) cfg_.telemetry->finish_run(metrics_);
  return metrics_;
}

}  // namespace cg

// Multi-threaded execution of the same protocol state machines the stepped
// simulator runs (sim/engine.hpp), sharding nodes across worker threads
// with a step barrier.  Produces the same RunMetrics; results match the
// serial engine exactly for message-order-insensitive protocols (all of
// the corrected-gossip family), which the tests verify.
//
// Structure per global step, for each worker thread w owning the nodes
// { i : i % threads == w }:
//   phase A: apply due failures; deliver due messages (on_receive); tick
//            active nodes (on_tick); stage outgoing messages in a
//            thread-local outbox;
//   barrier (completion function aggregates active/in-flight counts and
//            decides termination);
//   phase B: route every staged message destined to an owned node into
//            that node's timed queue;
//   barrier.
#pragma once

#include <barrier>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace cg {

template <class Node>
class ParallelEngine {
 public:
  using Params = typename Node::Params;

  ParallelEngine(RunConfig cfg, Params params, int threads)
      : cfg_(std::move(cfg)), params_(std::move(params)),
        threads_(std::max(1, threads)) {
    CG_CHECK(cfg_.n >= 1);
    CG_CHECK_MSG(cfg_.trace == nullptr,
                 "tracing is not supported by the parallel engine");
    CG_CHECK_MSG(cfg_.drop_prob == 0.0,
                 "message loss is not supported by the parallel engine");
    cfg_.logp.validate();
  }

  class Ctx {
   public:
    Step now() const { return eng_.step_; }
    NodeId self() const { return self_; }
    NodeId n() const { return eng_.cfg_.n; }
    NodeId root() const { return eng_.cfg_.root; }
    bool is_root() const { return self_ == eng_.cfg_.root; }
    const LogP& logp() const { return eng_.cfg_.logp; }
    Xoshiro256& rng() { return eng_.rng_[static_cast<std::size_t>(self_)]; }

    void send(NodeId to, const Message& m) { eng_.do_send(worker_, self_, to, m); }
    void activate() { eng_.do_activate(worker_, self_); }
    void mark_colored() { eng_.mark(eng_.colored_at_, self_); }
    void deliver() { eng_.mark(eng_.delivered_at_, self_); }
    void complete() { eng_.do_complete(worker_, self_); }
    bool colored() const {
      return eng_.colored_at_[static_cast<std::size_t>(self_)] != kNever;
    }

   private:
    friend class ParallelEngine;
    Ctx(ParallelEngine& e, int worker, NodeId self)
        : eng_(e), worker_(worker), self_(self) {}
    ParallelEngine& eng_;
    int worker_;
    NodeId self_;
  };

  RunMetrics run();

 private:
  enum class RunState : std::uint8_t { kIdle, kActive, kDone };

  struct TimedMsg {
    Step at;
    NodeId to;
    Message msg;
  };

  struct WorkerState {
    std::vector<TimedMsg> outbox;      // staged sends this step
    std::int64_t active_delta = 0;     // activations - completions this step
    std::int64_t sent = 0;             // messages staged this step
    std::int64_t delivered = 0;        // messages consumed this step
    // message counters (merged into metrics at the end)
    std::int64_t msgs_total = 0, msgs_gossip = 0, msgs_corr = 0,
                 msgs_sos = 0, msgs_tree = 0;
    char pad[64];                      // avoid false sharing
  };

  void do_send(int worker, NodeId from, NodeId to, const Message& m) {
    CG_CHECK(to >= 0 && to < cfg_.n && to != from);
    auto& ws = workers_[static_cast<std::size_t>(worker)];
    Message out = m;
    out.src = from;
    Step at = step_ + cfg_.logp.delivery_delay();
    if (cfg_.jitter_max > 0) {
      at += jitter_rng_[static_cast<std::size_t>(from)].uniform(
          0, cfg_.jitter_max);
    }
    if (cfg_.link_extra) {
      const Step extra = cfg_.link_extra(from, to);
      CG_CHECK(extra >= 0 && extra <= cfg_.link_extra_max);
      at += extra;
    }
    ws.outbox.push_back({at, to, out});
    ++ws.sent;
    ++ws.msgs_total;
    switch (m.tag) {
      case Tag::kGossip: ++ws.msgs_gossip; break;
      case Tag::kOcgCorr:
      case Tag::kFwd:
      case Tag::kBwd: ++ws.msgs_corr; break;
      case Tag::kSos: ++ws.msgs_sos; break;
      default: ++ws.msgs_tree; break;
    }
  }

  void mark(std::vector<Step>& arr, NodeId i) {
    auto& v = arr[static_cast<std::size_t>(i)];
    if (v == kNever) v = step_;
  }

  void do_activate(int worker, NodeId i) {
    auto& st = state_[static_cast<std::size_t>(i)];
    if (st != RunState::kIdle) return;
    st = RunState::kActive;
    activated_at_[static_cast<std::size_t>(i)] = step_;
    ++workers_[static_cast<std::size_t>(worker)].active_delta;
  }

  void do_complete(int worker, NodeId i) {
    auto& st = state_[static_cast<std::size_t>(i)];
    if (st == RunState::kDone) return;
    if (st == RunState::kActive)
      --workers_[static_cast<std::size_t>(worker)].active_delta;
    st = RunState::kDone;
    completed_at_[static_cast<std::size_t>(i)] = step_;
  }

  RunConfig cfg_;
  Params params_;
  int threads_;

  Step step_ = 0;
  std::vector<Node> nodes_;
  std::vector<Xoshiro256> rng_;
  std::vector<Xoshiro256> jitter_rng_;
  std::vector<bool> alive_;
  std::vector<RunState> state_;
  std::vector<Step> colored_at_, delivered_at_, completed_at_, activated_at_;
  std::vector<Step> crash_at_;
  std::vector<std::vector<TimedMsg>> queue_;  // per-node pending deliveries
  std::vector<WorkerState> workers_;
  std::int64_t active_count_ = 0;
  std::int64_t in_flight_ = 0;
  bool stop_ = false;
  RunMetrics metrics_{};
};

template <class Node>
RunMetrics ParallelEngine<Node>::run() {
  const auto n = static_cast<std::size_t>(cfg_.n);
  nodes_.clear();
  nodes_.reserve(n);
  for (NodeId i = 0; i < cfg_.n; ++i) nodes_.emplace_back(params_, i, cfg_.n);
  rng_.clear();
  rng_.reserve(n);
  for (NodeId i = 0; i < cfg_.n; ++i)
    rng_.emplace_back(derive_seed(cfg_.seed, static_cast<std::uint64_t>(i)));
  jitter_rng_.clear();
  if (cfg_.jitter_max > 0) {
    jitter_rng_.reserve(n);
    for (NodeId i = 0; i < cfg_.n; ++i)
      jitter_rng_.emplace_back(derive_seed(
          cfg_.seed, static_cast<std::uint64_t>(i) + 0x4A17E500000000ULL));
  }
  alive_.assign(n, true);
  state_.assign(n, RunState::kIdle);
  colored_at_.assign(n, kNever);
  delivered_at_.assign(n, kNever);
  completed_at_.assign(n, kNever);
  activated_at_.assign(n, kNever);
  crash_at_.assign(n, kNever);
  queue_.assign(n, {});
  workers_.assign(static_cast<std::size_t>(threads_), WorkerState{});
  metrics_ = RunMetrics{};
  metrics_.n_total = cfg_.n;
  step_ = 0;
  active_count_ = 0;
  in_flight_ = 0;
  stop_ = false;

  for (const NodeId i : cfg_.failures.pre_failed) {
    alive_[static_cast<std::size_t>(i)] = false;
    state_[static_cast<std::size_t>(i)] = RunState::kDone;
  }
  for (const auto& of : cfg_.failures.online)
    crash_at_[static_cast<std::size_t>(of.node)] =
        std::min(crash_at_[static_cast<std::size_t>(of.node)], of.at_step);
  CG_CHECK(alive_[static_cast<std::size_t>(cfg_.root)]);

  state_[static_cast<std::size_t>(cfg_.root)] = RunState::kActive;
  activated_at_[static_cast<std::size_t>(cfg_.root)] = 0;
  active_count_ = 1;
  for (NodeId i = 0; i < cfg_.n; ++i) {
    if (!alive_[static_cast<std::size_t>(i)]) continue;
    Ctx ctx(*this, static_cast<int>(i) % threads_, i);
    nodes_[static_cast<std::size_t>(i)].on_start(ctx);
  }
  // on_start completions adjust deltas; fold them in before stepping.
  for (auto& ws : workers_) {
    active_count_ += ws.active_delta;
    ws.active_delta = 0;
  }

  const Step max_steps = cfg_.effective_max_steps();

  // Completion function: runs once per barrier phase; alternate meaning is
  // handled by a flag toggled inside.
  auto on_phase_a_done = [this, max_steps]() noexcept {
    for (auto& ws : workers_) {
      active_count_ += ws.active_delta;
      in_flight_ += ws.sent - ws.delivered;
      ws.active_delta = 0;
      ws.sent = 0;
      ws.delivered = 0;
    }
    ++step_;
    if ((active_count_ == 0 && in_flight_ == 0) || step_ >= max_steps) {
      if (step_ >= max_steps) metrics_.hit_max_steps = true;
      stop_ = true;
    }
  };
  std::barrier bar_a(threads_, on_phase_a_done);
  std::barrier bar_b(threads_);

  auto worker_fn = [this, &bar_a, &bar_b](int w) {
    const auto me = static_cast<NodeId>(w);
    std::vector<TimedMsg> due;
    while (!stop_) {
      const Step s = step_;
      // --- phase A: failures, deliveries, ticks ---
      for (NodeId i = me; i < cfg_.n; i += threads_) {
        const auto idx = static_cast<std::size_t>(i);
        if (alive_[idx] && crash_at_[idx] <= s) {
          alive_[idx] = false;
          if (state_[idx] == RunState::kActive)
            --workers_[static_cast<std::size_t>(w)].active_delta;
          state_[idx] = RunState::kDone;
        }
        // deliveries due this step
        auto& q = queue_[idx];
        due.clear();
        for (std::size_t k = 0; k < q.size();) {
          if (q[k].at <= s) {
            due.push_back(q[k]);
            q[k] = q.back();
            q.pop_back();
          } else {
            ++k;
          }
        }
        workers_[static_cast<std::size_t>(w)].delivered +=
            static_cast<std::int64_t>(due.size());
        if (alive_[idx] && state_[idx] != RunState::kDone) {
          for (const auto& d : due) {
            if (state_[idx] == RunState::kDone) break;  // completed mid-drain
            if (state_[idx] == RunState::kIdle) {
              state_[idx] = RunState::kActive;
              activated_at_[idx] = s;
              ++workers_[static_cast<std::size_t>(w)].active_delta;
            }
            Ctx ctx(*this, w, i);
            nodes_[idx].on_receive(ctx, d.msg);
          }
        }
        if (state_[idx] == RunState::kActive && activated_at_[idx] != s) {
          Ctx ctx(*this, w, i);
          nodes_[idx].on_tick(ctx);
        }
      }
      bar_a.arrive_and_wait();
      if (stop_) {
        bar_b.arrive_and_wait();
        break;
      }
      // --- phase B: route staged messages to owned nodes ---
      for (const auto& ws : workers_) {
        for (const auto& tm : ws.outbox) {
          if (tm.to % threads_ == me) {
            queue_[static_cast<std::size_t>(tm.to)].push_back(tm);
          }
        }
      }
      bar_b.arrive_and_wait();
      // outboxes cleared by their owners after everyone routed
      workers_[static_cast<std::size_t>(w)].outbox.clear();
    }
  };

  if (threads_ == 1) {
    worker_fn(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads_));
    for (int w = 0; w < threads_; ++w) pool.emplace_back(worker_fn, w);
    for (auto& th : pool) th.join();
  }

  // finalize metrics (same semantics as the serial engine)
  metrics_.t_end = step_;
  for (auto& ws : workers_) {
    metrics_.msgs_total += ws.msgs_total;
    metrics_.msgs_gossip += ws.msgs_gossip;
    metrics_.msgs_correction += ws.msgs_corr;
    metrics_.msgs_sos += ws.msgs_sos;
    metrics_.msgs_tree += ws.msgs_tree;
  }
  Step last_colored = 0, last_delivered = 0, last_complete = 0;
  bool any_uncolored = false, any_undelivered = false, any_incomplete = false;
  for (NodeId i = 0; i < cfg_.n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (!alive_[idx]) continue;
    ++metrics_.n_active;
    if (colored_at_[idx] != kNever) {
      ++metrics_.n_colored;
      last_colored = std::max(last_colored, colored_at_[idx]);
      if (completed_at_[idx] != kNever)
        last_complete = std::max(last_complete, completed_at_[idx]);
      else
        any_incomplete = true;
    } else {
      any_uncolored = true;
    }
    if (delivered_at_[idx] != kNever) {
      ++metrics_.n_delivered;
      last_delivered = std::max(last_delivered, delivered_at_[idx]);
    } else {
      any_undelivered = true;
    }
  }
  metrics_.all_active_colored = !any_uncolored;
  metrics_.all_active_delivered = !any_undelivered;
  metrics_.t_last_colored = any_uncolored ? kNever : last_colored;
  metrics_.t_last_colored_partial = last_colored;
  metrics_.t_last_delivered = any_undelivered ? kNever : last_delivered;
  metrics_.t_complete = any_incomplete ? kNever : last_complete;
  metrics_.t_root_complete =
      completed_at_[static_cast<std::size_t>(cfg_.root)];
  metrics_.sos_triggered = metrics_.msgs_sos > 0;
  if (cfg_.record_node_detail) {
    metrics_.colored_at = colored_at_;
    metrics_.delivered_at = delivered_at_;
    metrics_.completed_at = completed_at_;
  }
  return metrics_;
}

}  // namespace cg

// Column-aligned ASCII table printer for bench / example output.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace cg {

/// Collects rows of strings and prints them with aligned columns, in the
/// style of the paper's Table 7.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Convenience: printf-style cell formatting.
  static std::string cell(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

  /// Render to a string (ends with newline).
  std::string str() const;

  /// Print to stdout.
  void print() const;

  /// Render rows as CSV (header first).
  std::string csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cg

// Minimal ASCII line-chart renderer so the figure benches can draw their
// figures, not just print tables (predicted vs simulated series overlaid,
// like the paper's Figures 3, 5 and 9).
#pragma once

#include <string>
#include <vector>

namespace cg {

class AsciiPlot {
 public:
  /// width/height = plot area in characters (axes added around it).
  AsciiPlot(int width, int height) : width_(width), height_(height) {}

  /// Add a named series of (x, y) points; `glyph` draws its markers.
  void add_series(std::string name, char glyph,
                  std::vector<std::pair<double, double>> points);

  /// Render with auto-scaled axes; includes a legend line per series.
  std::string str() const;

  void print() const;

 private:
  struct Series {
    std::string name;
    char glyph;
    std::vector<std::pair<double, double>> points;
  };

  int width_;
  int height_;
  std::vector<Series> series_;
};

}  // namespace cg

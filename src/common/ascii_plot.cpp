#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/check.hpp"

namespace cg {

void AsciiPlot::add_series(std::string name, char glyph,
                           std::vector<std::pair<double, double>> points) {
  series_.push_back({std::move(name), glyph, std::move(points)});
}

std::string AsciiPlot::str() const {
  CG_CHECK(width_ >= 8 && height_ >= 4);
  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  bool any = false;
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      any = true;
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
  }
  if (!any) return "(empty plot)\n";
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax == ymin) ymax = ymin + 1;

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_), ' '));
  auto col = [&](double x) {
    return std::clamp(static_cast<int>(std::lround(
                          (x - xmin) / (xmax - xmin) * (width_ - 1))),
                      0, width_ - 1);
  };
  auto row = [&](double y) {  // row 0 = top
    return std::clamp(static_cast<int>(std::lround(
                          (ymax - y) / (ymax - ymin) * (height_ - 1))),
                      0, height_ - 1);
  };
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points)
      grid[static_cast<std::size_t>(row(y))][static_cast<std::size_t>(col(x))] =
          s.glyph;
  }

  std::string out;
  char buf[64];
  for (int r = 0; r < height_; ++r) {
    // y labels on the first, middle, and last grid rows.
    if (r == 0 || r == height_ - 1 || r == height_ / 2) {
      const double y = ymax - (ymax - ymin) * r / (height_ - 1);
      std::snprintf(buf, sizeof(buf), "%8.1f |", y);
    } else {
      std::snprintf(buf, sizeof(buf), "%8s |", "");
    }
    out += buf;
    out += grid[static_cast<std::size_t>(r)];
    out += '\n';
  }
  out += std::string(9, ' ') + '+' + std::string(static_cast<std::size_t>(width_), '-') + '\n';
  std::snprintf(buf, sizeof(buf), "%8s  %-8.1f", "", xmin);
  out += buf;
  const int pad = width_ - 16;
  if (pad > 0) out += std::string(static_cast<std::size_t>(pad), ' ');
  std::snprintf(buf, sizeof(buf), "%8.1f\n", xmax);
  out += buf;
  for (const auto& s : series_) {
    std::snprintf(buf, sizeof(buf), "%10c  %s\n", s.glyph, s.name.c_str());
    out += buf;
  }
  return out;
}

void AsciiPlot::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace cg

// Core scalar types shared across the corrected-gossip codebase.
#pragma once

#include <cstdint>
#include <limits>

namespace cg {

/// Index of a node in the static name space P = {0..N-1}.
using NodeId = std::int32_t;

/// Simulated time measured in steps of the LogP overhead O.
using Step = std::int64_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = -1;

/// Sentinel for "never" / "not yet".
inline constexpr Step kNever = std::numeric_limits<Step>::max();

}  // namespace cg

// Ring (mod-N) arithmetic used by the correction phases.
//
// All corrected-gossip correction protocols view the N nodes as a virtual
// ring ordered by node id.  "Forward" means increasing ids (mod N),
// "backward" means decreasing ids (mod N).
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"

namespace cg {

/// Direction of travel on the virtual ring.
enum class Dir : std::uint8_t {
  kFwd = 0,  ///< towards (i+1) mod N   (the paper's unicode right-triangle)
  kBwd = 1,  ///< towards (i-1) mod N   (the paper's unicode left-triangle)
};

/// The opposite direction.
constexpr Dir opposite(Dir d) { return d == Dir::kFwd ? Dir::kBwd : Dir::kFwd; }

/// +1 for forward, -1 for backward (the paper's "evaluates to 1 / -1").
constexpr int dir_sign(Dir d) { return d == Dir::kFwd ? 1 : -1; }

constexpr const char* dir_name(Dir d) { return d == Dir::kFwd ? "fwd" : "bwd"; }

/// Ring helper bound to a fixed size N.
class Ring {
 public:
  explicit constexpr Ring(NodeId n) : n_(n) { CG_CHECK(n > 0); }

  constexpr NodeId size() const { return n_; }

  /// Node at signed offset `off` from `i` (any magnitude).
  constexpr NodeId at(NodeId i, std::int64_t off) const {
    std::int64_t r = (static_cast<std::int64_t>(i) + off) % n_;
    if (r < 0) r += n_;
    return static_cast<NodeId>(r);
  }

  /// Node at offset `off` from `i` in direction `d` (off >= 0).
  constexpr NodeId step(NodeId i, Dir d, std::int64_t off) const {
    return at(i, dir_sign(d) * off);
  }

  /// Distance from `from` to `to` walking in direction `d` (0..N-1).
  constexpr NodeId dist(NodeId from, NodeId to, Dir d) const {
    std::int64_t diff = d == Dir::kFwd
                            ? static_cast<std::int64_t>(to) - from
                            : static_cast<std::int64_t>(from) - to;
    diff %= n_;
    if (diff < 0) diff += n_;
    return static_cast<NodeId>(diff);
  }

  /// Forward distance (paper's delta_fwd).
  constexpr NodeId dist_fwd(NodeId from, NodeId to) const {
    return dist(from, to, Dir::kFwd);
  }
  /// Backward distance (paper's delta_bwd).
  constexpr NodeId dist_bwd(NodeId from, NodeId to) const {
    return dist(from, to, Dir::kBwd);
  }

  /// True if `x` lies strictly between `a` and `b` walking forward from `a`.
  constexpr bool between_fwd(NodeId a, NodeId x, NodeId b) const {
    return dist_fwd(a, x) > 0 && dist_fwd(a, x) < dist_fwd(a, b);
  }

 private:
  NodeId n_;
};

}  // namespace cg

// Deterministic, splittable pseudo-random number generation.
//
// The simulator needs (a) reproducible runs given a seed, (b) cheap
// derivation of independent streams per trial and per node, and (c) fast
// unbiased bounded integers for "pick a random peer".  We implement
// SplitMix64 (for seeding / stream derivation) and xoshiro256** (the
// workhorse generator), both public-domain algorithms by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>

#include "common/check.hpp"

namespace cg {

/// SplitMix64: used to expand seeds and derive sub-streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) { reseed(seed); }

  /// Re-initialize from a 64-bit seed (expanded via SplitMix64).
  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
    // All-zero state is invalid; SplitMix64 cannot produce 4 zero outputs
    // from any seed, but keep the check for safety.
    CG_CHECK(s_[0] || s_[1] || s_[2] || s_[3]);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Unbiased uniform integer in [0, bound) using Lemire's method.
  std::uint64_t bounded(std::uint64_t bound) {
    CG_CHECK(bound > 0);
    // Multiply-shift with rejection to remove modulo bias.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    CG_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Random node other than `self` from {0..n-1} (paper's rand(0..N-1 \ i)).
  std::int32_t other_node(std::int32_t self, std::int32_t n) {
    CG_CHECK(n >= 2);
    auto r = static_cast<std::int32_t>(bounded(static_cast<std::uint64_t>(n - 1)));
    return r >= self ? r + 1 : r;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

/// Derive an independent 64-bit sub-seed from (root seed, stream index).
/// Used to give each trial / node its own generator deterministically.
inline std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL + stream * 0xd1b54a32d192ed03ULL));
  sm.next();
  return sm.next();
}

}  // namespace cg

#include "common/table.hpp"

#include <cstdarg>

#include "common/check.hpp"

namespace cg {

std::string Table::cell(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  CG_CHECK(n >= 0);
  return std::string(buf, static_cast<std::size_t>(n) < sizeof(buf)
                              ? static_cast<std::size_t>(n)
                              : sizeof(buf) - 1);
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    CG_CHECK_MSG(row.size() == header_.size(), "row width mismatch");
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out.append(width[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit_row(header_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

std::string Table::csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

}  // namespace cg

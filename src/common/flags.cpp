#include "common/flags.hpp"

#include <cstdlib>

#include "common/check.hpp"

namespace cg {

Flags::Flags(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      kv_[arg] = "true";  // bare boolean flag ("--k v" is ambiguous: use --k=v)
    }
  }
}

std::string Flags::get_string(const std::string& name, std::string def) const {
  const auto it = kv_.find(name);
  return it == kv_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  const auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  CG_CHECK_MSG(end && *end == '\0', "integer flag parse error");
  return v;
}

double Flags::get_double(const std::string& name, double def) const {
  const auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  CG_CHECK_MSG(end && *end == '\0', "double flag parse error");
  return v;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  const auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace cg

// Minimal command-line flag parsing for benches and examples.
//
// Supports "--name=value" and boolean "--name"; everything else is
// positional.  ("--name value" is intentionally unsupported: it is
// ambiguous with a boolean flag followed by a positional argument.)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cg {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool has(const std::string& name) const { return kv_.count(name) != 0; }

  std::string get_string(const std::string& name, std::string def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Positional (non --flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace cg

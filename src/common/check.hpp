// Lightweight always-on invariant checking.
//
// CG_CHECK aborts with a message on violation; it is kept enabled in release
// builds because the simulator's correctness claims (Las-Vegas guarantees)
// are exactly what this library exists to demonstrate.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cg::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "CG_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " - " : "", msg);
  std::abort();
}

}  // namespace cg::detail

#define CG_CHECK(expr)                                                      \
  do {                                                                      \
    if (!(expr)) ::cg::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CG_CHECK_MSG(expr, msg)                                               \
  do {                                                                        \
    if (!(expr)) ::cg::detail::check_failed(#expr, __FILE__, __LINE__, msg);  \
  } while (0)

// Streaming and sample-based statistics for experiment aggregation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace cg {

/// Welford streaming mean/variance plus min/max.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  /// Half-width of the normal-approximation 95% CI of the mean.
  double ci95_halfwidth() const {
    return n_ > 1 ? 1.96 * stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

  void merge(const RunningStat& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const double total = static_cast<double>(n_ + o.n_);
    const double d = o.mean_ - mean_;
    m2_ += o.m2_ + d * d * static_cast<double>(n_) * static_cast<double>(o.n_) / total;
    mean_ += d * static_cast<double>(o.n_) / total;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample container with quantile queries (keeps all samples).
class Samples {
 public:
  void add(double x) {
    data_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// q in [0,1]; nearest-rank quantile.
  double quantile(double q) const {
    CG_CHECK(!data_.empty());
    CG_CHECK(q >= 0.0 && q <= 1.0);
    sort_once();
    const double raw = std::ceil(q * static_cast<double>(data_.size())) - 1.0;
    const double idx =
        std::clamp(raw, 0.0, static_cast<double>(data_.size() - 1));
    return data_[static_cast<std::size_t>(idx)];
  }

  double median() const { return quantile(0.5); }
  double min() const { CG_CHECK(!data_.empty()); sort_once(); return data_.front(); }
  double max() const { CG_CHECK(!data_.empty()); sort_once(); return data_.back(); }

  // The percentiles every summary report uses (nearest-rank).
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }

  double mean() const {
    CG_CHECK(!data_.empty());
    double s = 0;
    for (double x : data_) s += x;
    return s / static_cast<double>(data_.size());
  }

  /// Non-parametric (order-statistic, binomial) ~95% CI for the median.
  /// Returns {lo, hi} sample values.  Used to mirror the paper's
  /// "non-parametric confidence intervals within 2% of the median".
  std::pair<double, double> median_ci95() const {
    CG_CHECK(!data_.empty());
    sort_once();
    const auto n = static_cast<double>(data_.size());
    const double half = 1.96 * std::sqrt(n) * 0.5;
    auto lo = static_cast<std::ptrdiff_t>(std::floor(n * 0.5 - half));
    auto hi = static_cast<std::ptrdiff_t>(std::ceil(n * 0.5 + half));
    lo = std::clamp<std::ptrdiff_t>(lo, 0, static_cast<std::ptrdiff_t>(data_.size()) - 1);
    hi = std::clamp<std::ptrdiff_t>(hi, 0, static_cast<std::ptrdiff_t>(data_.size()) - 1);
    return {data_[static_cast<std::size_t>(lo)], data_[static_cast<std::size_t>(hi)]};
  }

  const std::vector<double>& raw() const { return data_; }

  void merge(const Samples& o) {
    data_.insert(data_.end(), o.data_.begin(), o.data_.end());
    sorted_ = false;
  }

 private:
  void sort_once() const {
    if (!sorted_) {
      std::sort(data_.begin(), data_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> data_;
  mutable bool sorted_ = false;
};

/// RunningStat plus retained samples: streaming mean/stddev/CI AND exact
/// nearest-rank percentiles from one add() stream.  The aggregation type
/// behind TrialAggregate summaries (p50/p90/p99 in reports); costs one
/// double of memory per sample, which is fine at Monte-Carlo trial counts.
class SummaryStat {
 public:
  void add(double x) {
    stream_.add(x);
    samples_.add(x);
  }

  void merge(const SummaryStat& o) {
    stream_.merge(o.stream_);
    samples_.merge(o.samples_);
  }

  std::size_t count() const { return stream_.count(); }
  bool empty() const { return stream_.count() == 0; }
  double mean() const { return stream_.mean(); }
  double variance() const { return stream_.variance(); }
  double stddev() const { return stream_.stddev(); }
  double min() const { return stream_.min(); }
  double max() const { return stream_.max(); }
  double sum() const { return stream_.sum(); }
  double ci95_halfwidth() const { return stream_.ci95_halfwidth(); }

  double quantile(double q) const { return samples_.quantile(q); }
  double p50() const { return samples_.p50(); }
  double p90() const { return samples_.p90(); }
  double p99() const { return samples_.p99(); }

  const Samples& samples() const { return samples_; }

 private:
  RunningStat stream_;
  Samples samples_;
};

}  // namespace cg

// Push-pull gossip (extension beyond the paper's push-only phase).
//
// Plain push gossip needs ~log2(N) + ln(N) time because the TAIL is slow:
// once most nodes are colored, pushes mostly hit colored targets.  The
// classic fix lets uncolored nodes PULL: every step an uncolored node
// asks a random peer for the payload; a colored peer answers on its next
// send slot.  The tail then shrinks geometrically with ratio ~c/N per
// round instead of the push's (1 - 1/e) miss factor, cutting the time to
// full coverage to ~log2(N) + O(log log N).
//
// In the LogP model pulls are not free - requests and responses both
// consume send slots (a colored node answers at most one request per
// step, preferring responses over its own pushes), so the advantage is
// smaller than in the classic synchronous model; bench/ext_push_pull
// quantifies it.  Combining this phase with a ring correction would give
// a "corrected push-pull" with a smaller T_opt; the analysis hooks are
// pushpull_expected_colored().
#pragma once

#include <algorithm>
#include <deque>
#include <vector>

#include "common/types.hpp"
#include "gossip/timing.hpp"
#include "proto/message.hpp"

namespace cg {

class PushPullNode {
 public:
  struct Params {
    Step T = 0;        ///< combined phase length (pushes and pulls stop at T)
    bool pull = true;  ///< disable to get plain push gossip for comparison
    /// Max queued pull answers per node; requests beyond it are dropped
    /// (and counted in RunMetrics::msgs_dropped).  A node late in the
    /// epidemic is asked often; a short backlog suffices since stale
    /// answers to already-colored askers are ignored anyway.
    int pending_cap = 8;
  };

  PushPullNode(const Params& p, NodeId self, NodeId n)
      : p_(p), self_(self), n_(n) {}

  template <class Ctx>
  void on_start(Ctx& ctx) {
    if (ctx.is_root()) {
      colored_ = true;
      ctx.mark_colored();
      ctx.deliver();
      if (n_ == 1) ctx.complete();
    } else if (p_.pull) {
      // Uncolored nodes actively participate from the start.
      ctx.activate();
    }
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message& m) {
    if (m.tag == Tag::kPullReq) {
      // Answer later from a send slot; cap the backlog (Params::pending_cap).
      if (colored_) {
        if (pending_.size() <
            static_cast<std::size_t>(std::max(p_.pending_cap, 0))) {
          pending_.push_back(m.src);
        } else {
          ctx.note_dropped();  // backpressure: request silently shed
        }
      }
      return;
    }
    if (!colored_) {  // payload (push or pull response)
      colored_ = true;
      ctx.mark_colored();
      ctx.deliver();
    }
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    const Step now = ctx.now();
    if (now >= p_.T) {
      if (now >= gossip_drain_end(p_.T, ctx.logp())) ctx.complete();
      return;
    }
    if (colored_) {
      Message m;
      m.tag = Tag::kGossip;
      if (!pending_.empty()) {  // responses take priority over pushes
        const NodeId asker = pending_.front();
        pending_.pop_front();
        if (asker != self_) {
          ctx.send(asker, m);
          return;
        }
      }
      ctx.send(ctx.rng().other_node(self_, n_), m);
      return;
    }
    if (p_.pull) {
      Message m;
      m.tag = Tag::kPullReq;
      ctx.send(ctx.rng().other_node(self_, n_), m);
    }
  }

  bool colored() const { return colored_; }

 private:
  Params p_;
  NodeId self_;
  NodeId n_;
  bool colored_ = false;
  std::deque<NodeId> pending_;
};

/// Mean-field coloring forecast for push-pull under the step model:
/// like Eq. (1) plus the pull term - an uncolored node's request at step
/// t-L-O hits a colored node w.p. c/(N-1) and the answer lands two flights
/// later.  Rough (ignores slot contention between pushes and responses);
/// used for tuning hints and sanity tests, not guarantees.
std::vector<double> pushpull_expected_colored(NodeId N, NodeId n_active,
                                              Step T, const LogP& logp,
                                              Step t_max);

}  // namespace cg

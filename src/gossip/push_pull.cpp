#include "gossip/push_pull.hpp"

#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace cg {

std::vector<double> pushpull_expected_colored(NodeId N, NodeId n_active,
                                              Step T, const LogP& logp,
                                              Step t_max) {
  CG_CHECK(N >= 1 && n_active >= 1 && n_active <= N);
  std::vector<double> c(static_cast<std::size_t>(t_max) + 1, 0.0);
  c[0] = 1.0;
  if (N == 1) return c;
  const double n = static_cast<double>(n_active);
  const double denom = static_cast<double>(N) - 1.0;
  const double miss = std::log1p(-1.0 / denom);
  const Step lag = logp.delivery_delay();

  for (Step s = 1; s <= t_max; ++s) {
    const double prev = c[static_cast<std::size_t>(s - 1)];

    // Push arrivals at s: emissions at s-lag by nodes colored by s-lag-1.
    double push_senders = 0.0;
    const Step push_emit = s - lag;
    if (push_emit >= 1 && push_emit < T && push_emit - 1 >= 0)
      push_senders = c[static_cast<std::size_t>(push_emit - 1)];
    const double p_push_miss = std::exp(push_senders * miss);

    // Pull responses at s: request emitted at s - 2*lag - 1 by an
    // uncolored node, landing on a colored peer (answered next slot).
    double p_pull_hit = 0.0;
    const Step req_emit = s - 2 * lag - 1;
    if (p_pull_hit == 0.0 && req_emit >= 1 && req_emit < T) {
      const Step resp_emit = req_emit + lag + 1;
      if (resp_emit < T) {
        const double colored_then =
            c[static_cast<std::size_t>(std::max<Step>(req_emit - 1, 0))];
        p_pull_hit = std::min(1.0, colored_then / denom);
      }
    }

    const double newly = (n - prev) * (1.0 - p_push_miss * (1.0 - p_pull_hit));
    c[static_cast<std::size_t>(s)] = std::min(n, prev + newly);
  }
  return c;
}

}  // namespace cg

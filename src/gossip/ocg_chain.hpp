// OCG-CHAIN: the chained-correction variant the paper sketches in the
// Section III-B discussion: "when O > L, one could utilize c-nodes as
// additional message sources ... a g-node could send a message which is
// forwarded by a chain of c-nodes until another g-node is reached.  This
// strategy ... could reduce the number of messages and thus the total
// work."
//
// After the gossip phase each g-node emits exactly ONE correction message
// per direction, to its immediate ring neighbors.  A node receiving a
// chain message that colors it (a fresh c-node) forwards it one hop
// further in the same direction on its next tick; a node that was already
// colored absorbs it.  Every gap is thus swept serially from both ends:
//   work       = (#uncolored) + 2 * (#g-nodes)          [minimal]
//   chain time = ~ceil(K/2) * (L + 2O) for a gap of K    [vs K*O for OCG]
// so OCG-CHAIN wins on work always and on latency when L < O; plain OCG
// wins on latency when L >= O.  bench/ablation_chain_correction quantifies
// the crossover.
//
// Like OCG the schedule is fixed: nodes complete at a precomputed horizon.
// chain_horizon() sizes it from the same K_bar machinery as OCG's C.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/ring.hpp"
#include "common/types.hpp"
#include "gossip/timing.hpp"
#include "proto/message.hpp"

namespace cg {

class OcgChainNode {
 public:
  struct Params {
    Step T = 0;        ///< gossip stop time
    Step horizon = 0;  ///< absolute completion step (see chain_horizon)
    /// Testing hook: bitmap of nodes pre-colored as g-nodes at step 0.
    std::shared_ptr<const std::vector<std::uint8_t>> seed_colored;
  };

  /// Completion horizon covering a worst 1-eps chain of K_bar: each hop
  /// costs one tick plus the flight (L/O+1), gaps are eaten from both
  /// ends, plus the final flight and one step of margin.
  static Step chain_horizon(Step T, int k_bar, const LogP& logp) {
    const Step hop = logp.delivery_delay() + 1;
    return corr_start(T, logp) + (k_bar / 2 + 2) * hop +
           logp.delivery_delay() + 1;
  }

  OcgChainNode(const Params& p, NodeId self, NodeId n)
      : p_(p), self_(self), ring_(n) {}

  template <class Ctx>
  void on_start(Ctx& ctx) {
    const bool seeded =
        p_.seed_colored &&
        (*p_.seed_colored)[static_cast<std::size_t>(self_)] != 0;
    if (ctx.is_root() || seeded) {
      colored_ = true;
      g_node_ = true;
      ctx.activate();
      ctx.mark_colored();
      ctx.deliver();
      if (ring_.size() == 1) ctx.complete();
    }
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message& m) {
    if (m.tag == Tag::kGossip) {
      if (!colored_) {
        colored_ = true;
        g_node_ = true;
        ctx.mark_colored();
        ctx.deliver();
      }
      return;
    }
    if (!is_ring_corr(m.tag)) return;
    if (colored_) return;  // chain absorbed at an already-colored node
    colored_ = true;
    ctx.mark_colored();
    ctx.deliver();
    forward_dir_ = tag_dir(m.tag);  // fresh c-node: keep the chain going
    must_forward_ = true;
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    const Step now = ctx.now();
    if (g_node_ && now < p_.T) {
      Message m;
      m.tag = Tag::kGossip;
      m.time = now;
      ctx.send(ctx.rng().other_node(self_, ring_.size()), m);
      return;
    }
    if (now >= p_.horizon) {
      ctx.complete();
      return;
    }
    if (now < corr_start(p_.T, ctx.logp())) return;

    if (must_forward_) {
      // c-node relays the chain one hop onward.
      must_forward_ = false;
      const NodeId target = ring_.step(self_, forward_dir_, 1);
      if (target != self_) {
        Message m;
        m.tag = dir_tag(forward_dir_);
        ctx.send(target, m);
      }
      return;
    }
    if (g_node_ && chain_seeds_sent_ < 2) {
      // g-node seeds one chain per direction, to its immediate neighbors.
      const Dir dir = chain_seeds_sent_ == 0 ? Dir::kFwd : Dir::kBwd;
      ++chain_seeds_sent_;
      const NodeId target = ring_.step(self_, dir, 1);
      if (target != self_) {
        Message m;
        m.tag = dir_tag(dir);
        ctx.send(target, m);
      }
    }
  }

  bool colored() const { return colored_; }
  bool is_g_node() const { return g_node_; }

 private:
  Params p_;
  NodeId self_;
  Ring ring_;
  bool colored_ = false;
  bool g_node_ = false;
  bool must_forward_ = false;
  Dir forward_dir_ = Dir::kFwd;
  int chain_seeds_sent_ = 0;
};

}  // namespace cg

#include "gossip/ccg_pushpull.hpp"

#include <cmath>

#include "common/check.hpp"

namespace cg {

int k_bar_pushpull(NodeId N, NodeId n_active, Step T, const LogP& logp,
                   double eps) {
  const auto c = pushpull_expected_colored(N, n_active, T, logp,
                                           T + logp.delivery_delay());
  return ChainDist(N, c.back()).k_bar(eps);
}

PpTuning tune_ccg_pushpull(NodeId N, NodeId n_active, const LogP& logp,
                           double eps, Step t_lo, Step t_hi) {
  CG_CHECK(eps > 0.0 && eps < 1.0);
  if (t_hi <= 0)
    t_hi = static_cast<Step>(
        4.0 *
            std::ceil(std::log2(static_cast<double>(std::max<NodeId>(N, 2)))) +
        32.0);
  CG_CHECK(t_lo >= 1 && t_lo <= t_hi);
  PpTuning best;
  Step best_lat = kNever;
  for (Step T = t_lo; T <= t_hi; ++T) {
    const int k = k_bar_pushpull(N, n_active, T, logp, eps);
    const Step lat = T + 2 * logp.l_over_o + 2 + 2 * static_cast<Step>(k);
    if (lat < best_lat) {
      best_lat = lat;
      best = PpTuning{T, k, lat};
    }
  }
  return best;
}

}  // namespace cg

// Corrected push-pull: CCG whose gossip phase lets uncolored nodes PULL
// (the completion of the push_pull.hpp extension).  The faster coverage
// tail means the same chain budget K_bar is met at a smaller T, so the
// tuned end-to-end latency drops below plain CCG's (bench/ext_push_pull
// --corrected): pulls trade extra gossip-phase messages for steps of T.
//
// Mechanics: during [0, T) colored nodes push (answering pending pull
// requests first), uncolored nodes pull; whoever holds the payload when
// the correction window opens is a g-node and runs the standard checked
// ring sweep of ccg.hpp.  Tuning goes through the push-pull coloring
// forecast: tune_ccg_pushpull() below.
#pragma once

#include <algorithm>
#include <deque>

#include "analysis/chain.hpp"
#include "common/ring.hpp"
#include "common/types.hpp"
#include "gossip/push_pull.hpp"
#include "gossip/timing.hpp"
#include "proto/message.hpp"

namespace cg {

class CcgPushPullNode {
 public:
  struct Params {
    Step T = 0;
    /// Max queued pull answers (see PushPullNode::Params::pending_cap);
    /// overflow is shed and counted in RunMetrics::msgs_dropped.
    int pending_cap = 8;
  };

  CcgPushPullNode(const Params& p, NodeId self, NodeId n)
      : p_(p), self_(self), ring_(n) {}

  template <class Ctx>
  void on_start(Ctx& ctx) {
    if (ctx.is_root()) {
      colored_ = true;
      g_node_ = true;
      ctx.mark_colored();
      ctx.deliver();
      if (ring_.size() == 1) ctx.complete();
    } else {
      ctx.activate();  // uncolored nodes pull from step 1
    }
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message& m) {
    if (m.tag == Tag::kPullReq) {
      if (colored_ && ctx.now() < p_.T) {
        if (pending_.size() <
            static_cast<std::size_t>(std::max(p_.pending_cap, 0))) {
          pending_.push_back(m.src);
        } else {
          ctx.note_dropped();  // backpressure: request silently shed
        }
      }
      return;
    }
    if (!colored_) {
      colored_ = true;
      ctx.mark_colored();
      ctx.deliver();
      if (m.tag == Tag::kGossip) {
        g_node_ = true;
      } else {
        ctx.complete();  // c-node (colored by a ring-correction message)
        return;
      }
    }
    if (!g_node_) return;
    if (m.tag == Tag::kBwd) {
      m_fwd_ = std::min<Step>(m_fwd_, ring_.dist_fwd(self_, m.src));
    } else if (m.tag == Tag::kFwd) {
      m_bwd_ = std::min<Step>(m_bwd_, ring_.dist_bwd(self_, m.src));
    }
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    const Step now = ctx.now();
    if (now < p_.T) {
      Message m;
      if (colored_) {
        m.tag = Tag::kGossip;
        if (!pending_.empty()) {
          const NodeId asker = pending_.front();
          pending_.pop_front();
          if (asker != self_) {
            ctx.send(asker, m);
            return;
          }
        }
        ctx.send(ctx.rng().other_node(self_, ring_.size()), m);
      } else {
        m.tag = Tag::kPullReq;
        ctx.send(ctx.rng().other_node(self_, ring_.size()), m);
      }
      return;
    }
    if (!colored_) return;  // wait for the sweep to reach us
    if (now < corr_start(p_.T, ctx.logp())) return;

    // Standard CCG alternating ring sweep (see ccg.hpp).
    const Dir dir = (slot_ % 2 == 0) ? Dir::kFwd : Dir::kBwd;
    ++slot_;
    bool& sending = dir == Dir::kFwd ? s_fwd_ : s_bwd_;
    const Step nearest = dir == Dir::kFwd ? m_fwd_ : m_bwd_;
    if (sending && off_ > nearest) sending = false;
    if (sending) {
      const NodeId target = ring_.step(self_, dir, off_);
      if (target != self_) {
        Message m;
        m.tag = dir_tag(dir);
        ctx.send(target, m);
      }
    }
    if (dir == Dir::kBwd) ++off_;
    if (off_ >= ring_.size() || (!s_fwd_ && !s_bwd_)) ctx.complete();
  }

  bool colored() const { return colored_; }
  bool is_g_node() const { return g_node_; }

 private:
  Params p_;
  NodeId self_;
  Ring ring_;
  bool colored_ = false;
  bool g_node_ = false;
  bool s_fwd_ = true;
  bool s_bwd_ = true;
  Step m_fwd_ = kNever;
  Step m_bwd_ = kNever;
  Step off_ = 1;
  Step slot_ = 0;
  std::deque<NodeId> pending_;
};

/// K_bar and T_opt for the push-pull phase (Eq. 2-4 machinery over the
/// push-pull coloring forecast instead of Eq. 1).
int k_bar_pushpull(NodeId N, NodeId n_active, Step T, const LogP& logp,
                   double eps);
struct PpTuning {
  Step T_opt = 0;
  int k_bar = 0;
  Step predicted_latency = 0;
};
PpTuning tune_ccg_pushpull(NodeId N, NodeId n_active, const LogP& logp,
                           double eps, Step t_lo = 1, Step t_hi = 0);

}  // namespace cg

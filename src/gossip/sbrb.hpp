// SBRB: sample-based Byzantine reliable broadcast (Murmur/Sieve/Contagion).
//
// The crash-model protocols in this directory (GOS/OCG/CCG/FCG) trust
// every message: a single equivocating sender splits them into two
// payload camps (tests/test_byzantine.cpp demonstrates this).  SBRB is
// the scalable Byzantine-tolerant counterpart from Guerraoui et al.'s
// "Scalable Byzantine Reliable Broadcast": instead of quorums over all N
// nodes, every node draws small random SAMPLES of size O(log N +
// log 1/eps) and decides from sample-local thresholds, giving consistency
// and totality with probability >= 1 - eps.  Three stacked layers:
//
//   * Murmur (dissemination): colored nodes push the payload to `g`
//     random peers - plain gossip, whp reaches every correct node;
//   * Sieve (consistency): each node subscribes to the Echo stream of an
//     `e`-sample.  A node echoes its FIRST candidate payload to its
//     subscribers; a candidate is "sieve-delivered" once >= E_hat sample
//     members echoed that same payload.  E_hat > e/2, so two conflicting
//     payloads cannot both pass anyone's sieve (whp over sample draws);
//   * Contagion (totality): sieve-delivery makes a node Ready; Ready
//     spreads through `r`-sample feedback (>= R_hat Readies make a node
//     Ready even without sieve-delivery) and a node DELIVERS once
//     >= D_hat of its `d`-sample is Ready - even a node the gossip never
//     reached adopts and delivers the sample-winning payload.
//
// Signature model (sim/fault/byzantine.hpp): payload digests with
// kForgedBit fail verification and are dropped on receive, so a
// non-root Byzantine node degrades to a crash fault here; the undetectable
// attack is a Byzantine ROOT equivocating between two validly signed
// payloads, which is exactly what the sample thresholds defend against.
// Consistency holds always; totality is only promised under a correct
// root (a splitting root can starve both camps below E_hat - then nobody
// delivers, which is the consistent outcome).
//
// Engine contract: nodes self-activate in on_start and dribble all
// traffic one message per tick through two FIFO queues (urgent:
// gossip/echo/ready; bulk: sample subscriptions), so the SendGate's
// one-emission-per-step invariant holds on every engine.  All sample
// draws come from the node's own RNG stream in on_start (single-threaded
// on every engine), keeping runs engine/shard/thread-invariant.
// Completion is a fixed deadline step - reached whether or not delivery
// happened - so runs terminate without a global convergence detector.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "proto/message.hpp"
#include "sim/fault/byzantine.hpp"
#include "sim/logp.hpp"

namespace cg {

/// Sample sizes and thresholds for one SBRB configuration.  All sizes are
/// capped at 64 (per-candidate tallies are single uint64 bitmasks) and at
/// n-1 (samples exclude self).
struct SbrbSamples {
  int g = 0;  ///< Murmur gossip fanout
  int e = 0;  ///< Sieve echo-sample size
  int r = 0;  ///< Contagion ready-sample size (feedback)
  int d = 0;  ///< Contagion delivery-sample size
  int e_thresh = 0;  ///< E_hat: echoes required to sieve-deliver (> e/2)
  int r_thresh = 0;  ///< R_hat: Readies required to turn Ready by feedback
  int d_thresh = 0;  ///< D_hat: Readies required to deliver (> d/2)
};

/// Derive sample sizes from the target failure probability eps and the
/// assumed Byzantine fraction.  Sizes grow as ln(n) + ln(1/eps) (the
/// paper's scaling); the consistency-critical thresholds sit a byz_frac
/// margin above a strict majority of their sample.
inline SbrbSamples sbrb_samples(NodeId n, double eps, double byz_frac) {
  CG_CHECK(n >= 1);
  CG_CHECK(eps > 0.0 && eps < 1.0);
  CG_CHECK(byz_frac >= 0.0 && byz_frac < 0.5);
  SbrbSamples s;
  const int cap = static_cast<int>(std::min<NodeId>(n - 1, 64));
  if (cap < 1) return s;  // n == 1: no peers, nothing to sample
  const double base =
      std::log(static_cast<double>(n)) + std::log(1.0 / eps);
  const auto sized = [cap](double v, int lo) {
    return std::clamp(static_cast<int>(std::ceil(v)), std::min(lo, cap), cap);
  };
  s.g = sized(base, 3);
  s.e = sized(1.5 * base, 4);
  s.r = sized(1.5 * base, 4);
  s.d = sized(1.5 * base, 4);
  const auto margin = [byz_frac](int size) {
    return static_cast<int>(std::ceil(byz_frac * size));
  };
  s.e_thresh = std::min(s.e, s.e / 2 + 1 + margin(s.e));
  s.r_thresh = std::clamp(static_cast<int>(std::ceil(0.3 * s.r)), 1, s.r);
  s.d_thresh = std::min(s.d, s.d / 2 + 1 + margin(s.d));
  return s;
}

/// Completion deadline: generous bound on subscription dribble + a few
/// gossip/echo/ready round trips.  Protocol liveness does not depend on
/// it being tight - only termination does.
inline Step sbrb_deadline(const SbrbSamples& s, const LogP& p) {
  return 4 * static_cast<Step>(s.g + s.e + s.r + s.d + 8) +
         24 * p.delivery_delay() + 32;
}

class SbrbNode {
 public:
  struct Params {
    SbrbSamples s{};
    Step deadline = 64;  ///< fixed completion step (see sbrb_deadline)
  };

  SbrbNode(const Params& p, NodeId self, NodeId n)
      : p_(p), self_(self), n_(n) {}

  template <class Ctx>
  void on_start(Ctx& ctx) {
    ctx.activate();  // every node subscribes, so every node participates
    draw_samples(ctx.rng());
    // Subscriptions ride the bulk queue: payload traffic (urgent queue)
    // preempts them, so a late subscription only delays feedback, never
    // dissemination.
    for (const NodeId t : echo_sample_)
      queue(bulk_, t, make_msg(Tag::kSbrbSubEcho, 0, 0));
    for (const NodeId t : ready_sample_)
      queue(bulk_, t, make_msg(Tag::kSbrbSubReady, 0, 0));
    for (const NodeId t : delivery_sample_)
      if (!contains(ready_sample_, t))
        queue(bulk_, t, make_msg(Tag::kSbrbSubReady, 0, 0));
    if (ctx.is_root()) {
      candidate_ = kTruePayload;
      ctx.mark_colored();
      ctx.deliver();
      delivered_ = true;
      if (n_ == 1) {
        ctx.complete();
        return;
      }
      queue_gossip(ctx, Step{0});
    }
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message& m) {
    // Signature verification: forged digests (kForgedBit) never influence
    // state.  This single check is what reduces corruptors/spammers and
    // non-root equivocators to crash faults.
    if (m.payload != 0 && !payload_signed(m.payload)) return;
    switch (m.tag) {
      case Tag::kGossip: on_gossip(ctx, m); break;
      case Tag::kSbrbSubEcho: on_sub_echo(ctx, m.src); break;
      case Tag::kSbrbSubReady: on_sub_ready(ctx, m.src); break;
      case Tag::kSbrbEcho: on_echo(ctx, m.src, m.payload); break;
      case Tag::kSbrbReady: on_ready(ctx, m.src, m.payload); break;
      default: break;  // foreign traffic (cross-protocol tests) ignored
    }
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    const Step now = ctx.now();
    if (now >= p_.deadline) {
      ctx.complete();
      return;
    }
    auto& q = !empty(urgent_) ? urgent_ : bulk_;
    if (empty(q)) return;
    auto [to, m] = q.items[q.head++];
    m.time = now;
    ctx.send(to, m);
  }

  bool colored() const { return candidate_ != 0; }
  bool sieve_delivered() const { return sieve_delivered_; }
  bool delivered() const { return delivered_; }
  std::uint32_t candidate() const { return candidate_; }

 private:
  /// Per-candidate tallies.  Only validly signed digests get a slot, so
  /// two (kTruePayload + the root-equivocation kAltPayload) is the
  /// realistic maximum; the array guards the theoretical worst case.
  struct Cand {
    std::uint32_t digest = 0;
    std::uint64_t echo_mask = 0;      ///< echoes seen, bit per e-sample slot
    std::uint64_t ready_mask = 0;     ///< Readies from the r-sample
    std::uint64_t delivery_mask = 0;  ///< Readies from the d-sample
    bool ready = false;               ///< this node announced Ready(digest)
  };
  static constexpr int kMaxCandidates = 8;

  struct SendQ {
    std::vector<std::pair<NodeId, Message>> items;
    std::size_t head = 0;
  };
  static bool empty(const SendQ& q) { return q.head >= q.items.size(); }
  static void queue(SendQ& q, NodeId to, const Message& m) {
    q.items.emplace_back(to, m);
  }

  Message make_msg(Tag tag, std::uint32_t payload, Step time) const {
    Message m;
    m.tag = tag;
    m.payload = payload;
    m.time = time;
    return m;
  }

  static bool contains(const std::vector<NodeId>& v, NodeId x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  }
  /// Index of x in a sample (samples are <= 64 ids; linear scan).
  static int index_in(const std::vector<NodeId>& v, NodeId x) {
    const auto it = std::find(v.begin(), v.end(), x);
    return it == v.end() ? -1 : static_cast<int>(it - v.begin());
  }

  void draw_samples(Xoshiro256& rng) {
    const auto draw = [&](int k) {
      std::vector<NodeId> s;
      s.reserve(static_cast<std::size_t>(k));
      while (static_cast<int>(s.size()) < k) {
        const NodeId t = rng.other_node(self_, n_);
        if (!contains(s, t)) s.push_back(t);
      }
      return s;
    };
    echo_sample_ = draw(p_.s.e);
    ready_sample_ = draw(p_.s.r);
    delivery_sample_ = draw(p_.s.d);
  }

  Cand* slot_for(std::uint32_t digest) {
    for (int k = 0; k < n_cands_; ++k)
      if (cands_[k].digest == digest) return &cands_[k];
    if (n_cands_ >= kMaxCandidates) return nullptr;
    cands_[n_cands_].digest = digest;
    return &cands_[n_cands_++];
  }

  template <class Ctx>
  void queue_gossip(Ctx& ctx, Step now) {
    for (int k = 0; k < p_.s.g; ++k)
      queue(urgent_, ctx.rng().other_node(self_, n_),
            make_msg(Tag::kGossip, candidate_, now));
  }

  /// Adopt `digest` as this node's one-and-only candidate: forward it to
  /// the gossip fanout and echo it to everyone sampling us.
  template <class Ctx>
  void become_colored(Ctx& ctx, std::uint32_t digest) {
    candidate_ = digest;
    ctx.mark_colored();
    queue_gossip(ctx, ctx.now());
    for (const NodeId s : echo_subs_)
      queue(urgent_, s, make_msg(Tag::kSbrbEcho, candidate_, ctx.now()));
  }

  template <class Ctx>
  void on_gossip(Ctx& ctx, const Message& m) {
    if (candidate_ != 0 || m.payload == 0) return;  // first candidate wins
    become_colored(ctx, m.payload);
  }

  template <class Ctx>
  void on_sub_echo(Ctx& ctx, NodeId src) {
    if (contains(echo_subs_, src)) return;
    echo_subs_.push_back(src);
    if (candidate_ != 0)  // late subscriber: replay our echo
      queue(urgent_, src, make_msg(Tag::kSbrbEcho, candidate_, ctx.now()));
  }

  template <class Ctx>
  void on_sub_ready(Ctx& ctx, NodeId src) {
    if (contains(ready_subs_, src)) return;
    ready_subs_.push_back(src);
    for (int k = 0; k < n_cands_; ++k)  // late subscriber: replay Readies
      if (cands_[k].ready)
        queue(urgent_, src,
              make_msg(Tag::kSbrbReady, cands_[k].digest, ctx.now()));
  }

  template <class Ctx>
  void on_echo(Ctx& ctx, NodeId src, std::uint32_t payload) {
    const int idx = index_in(echo_sample_, src);
    if (idx < 0 || payload == 0) return;  // not in our sample: no vote
    Cand* c = slot_for(payload);
    if (c == nullptr) return;
    c->echo_mask |= std::uint64_t{1} << idx;
    if (!sieve_delivered_ && payload == candidate_ &&
        std::popcount(c->echo_mask) >= p_.s.e_thresh) {
      sieve_delivered_ = true;  // Sieve consistency gate passed
      become_ready(ctx, *c);
    }
  }

  template <class Ctx>
  void become_ready(Ctx& ctx, Cand& c) {
    if (c.ready) return;
    c.ready = true;
    for (const NodeId s : ready_subs_)
      queue(urgent_, s, make_msg(Tag::kSbrbReady, c.digest, ctx.now()));
  }

  template <class Ctx>
  void on_ready(Ctx& ctx, NodeId src, std::uint32_t payload) {
    if (payload == 0) return;
    Cand* c = slot_for(payload);
    if (c == nullptr) return;
    const int ri = index_in(ready_sample_, src);
    if (ri >= 0) c->ready_mask |= std::uint64_t{1} << ri;
    const int di = index_in(delivery_sample_, src);
    if (di >= 0) c->delivery_mask |= std::uint64_t{1} << di;
    // Contagion feedback: enough sample Readies make us Ready too, even
    // without sieve-delivery (this is what spreads Ready to nodes whose
    // own sieve starved).
    if (!c->ready && std::popcount(c->ready_mask) >= p_.s.r_thresh)
      become_ready(ctx, *c);
    // Delivery: a majority-with-margin of the delivery sample is Ready.
    if (!delivered_ && std::popcount(c->delivery_mask) >= p_.s.d_thresh) {
      delivered_ = true;
      if (candidate_ == 0) {
        // Gossip never reached us: adopt the sample-winning payload.
        become_colored(ctx, payload);
      }
      ctx.adopt_payload(payload);  // deliver the sample winner, always
      ctx.deliver();
    }
  }

  Params p_;
  NodeId self_;
  NodeId n_;
  std::vector<NodeId> echo_sample_;      // whose echoes we count
  std::vector<NodeId> ready_sample_;     // whose Readies feed feedback
  std::vector<NodeId> delivery_sample_;  // whose Readies trigger delivery
  std::vector<NodeId> echo_subs_;        // who counts OUR echoes
  std::vector<NodeId> ready_subs_;       // who counts OUR Readies
  Cand cands_[kMaxCandidates]{};
  int n_cands_ = 0;
  std::uint32_t candidate_ = 0;  // first payload adopted (0 = uncolored)
  bool sieve_delivered_ = false;
  bool delivered_ = false;
  SendQ urgent_;  // gossip forwards, echoes, Readies
  SendQ bulk_;    // sample subscriptions
};

}  // namespace cg

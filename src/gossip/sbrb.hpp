// SBRB: sample-based Byzantine reliable broadcast (Murmur/Sieve/Contagion).
//
// The crash-model protocols in this directory (GOS/OCG/CCG/FCG) trust
// every message: a single equivocating sender splits them into two
// payload camps (tests/test_byzantine.cpp demonstrates this).  SBRB is
// the scalable Byzantine-tolerant counterpart from Guerraoui et al.'s
// "Scalable Byzantine Reliable Broadcast": instead of quorums over all N
// nodes, every node draws small random SAMPLES of size O(log N +
// log 1/eps) and decides from sample-local thresholds, giving consistency
// and totality with probability >= 1 - eps.  Three stacked layers:
//
//   * Murmur (dissemination): colored nodes push the payload to `g`
//     random peers - plain gossip, whp reaches every correct node;
//   * Sieve (consistency): each node subscribes to the Echo stream of an
//     `e`-sample.  A node echoes its FIRST candidate payload to its
//     subscribers; a candidate is "sieve-delivered" once >= E_hat sample
//     members echoed that same payload.  E_hat > e/2, so two conflicting
//     payloads cannot both pass anyone's sieve (whp over sample draws);
//   * Contagion (totality): sieve-delivery makes a node Ready; Ready
//     spreads through `r`-sample feedback (>= R_hat Readies make a node
//     Ready even without sieve-delivery) and a node DELIVERS once
//     >= D_hat of its `d`-sample is Ready - even a node the gossip never
//     reached adopts and delivers the sample-winning payload.
//
// Signature model (sim/fault/byzantine.hpp): payload digests with
// kForgedBit fail verification and are dropped on receive, so a
// non-root Byzantine node degrades to a crash fault here; the undetectable
// attack is a Byzantine ROOT equivocating between two validly signed
// payloads, which is exactly what the sample thresholds defend against.
// Consistency holds always; totality is only promised under a correct
// root (a splitting root can starve both camps below E_hat - then nobody
// delivers, which is the consistent outcome).
//
// Engine contract: nodes self-activate in on_start and dribble all
// traffic one message per tick through two FIFO queues (urgent:
// gossip/echo/ready; bulk: sample subscriptions), so the SendGate's
// one-emission-per-step invariant holds on every engine.  Completion is a
// fixed deadline step - reached whether or not delivery happened - so
// runs terminate without a global convergence detector.
//
// Sample-generation determinism (docs/PERF.md §7): samples are computed
// by a splitmix64 stream keyed on (run seed, node, phase) via
// sbrb_fill_sample - they consume NOTHING from the node's trial RNG
// stream (which keeps feeding Murmur's gossip-target draws), and they
// come out SORTED, so binary-search membership rank and linear-scan
// position agree.  Both implementations below share the generator, which
// is what makes their traces byte-identical.
//
// Two implementations share the wire protocol and exact behavior:
//   * SbrbNode    - the production fast path: sorted flat sample arrays
//     with binary-search membership, dense per-candidate counters,
//     compact reusable send-staging slabs (zero-alloc steady state), and
//     the staged-send kernel contract the sharded engine batches on;
//   * SbrbRefNode - the stock Protocol-API implementation (linear scans,
//     heap-allocated queues) kept as the oracle:
//     tests/test_sbrb_fastpath.cpp pins SbrbNode's traces byte-for-byte
//     against it across engines, shard counts and thread counts.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "proto/message.hpp"
#include "sim/fault/byzantine.hpp"
#include "sim/logp.hpp"

namespace cg {

/// Sample sizes and thresholds for one SBRB configuration.  All sizes are
/// capped at 64 (per-candidate tallies are single uint64 bitmasks) and at
/// n-1 (samples exclude self).
struct SbrbSamples {
  int g = 0;  ///< Murmur gossip fanout
  int e = 0;  ///< Sieve echo-sample size
  int r = 0;  ///< Contagion ready-sample size (feedback)
  int d = 0;  ///< Contagion delivery-sample size
  int e_thresh = 0;  ///< E_hat: echoes required to sieve-deliver (> e/2)
  int r_thresh = 0;  ///< R_hat: Readies required to turn Ready by feedback
  int d_thresh = 0;  ///< D_hat: Readies required to deliver (> d/2)
};

/// Validate the user-facing SBRB knobs, config_error()-style (see
/// sim/fault/validate.hpp): returns an empty string when valid, else a
/// human-readable description of the first problem.
inline std::string sbrb_config_error(double eps, double byz_frac) {
  if (!(eps > 0.0) || !(eps < 1.0))
    return "sbrb_eps must be in (0, 1): got " + std::to_string(eps);
  if (!(byz_frac >= 0.0) || byz_frac >= 0.5)
    return "sbrb_byz_frac must be in [0, 0.5): got " +
           std::to_string(byz_frac);
  return {};
}

/// Derive sample sizes from the target failure probability eps and the
/// assumed Byzantine fraction.  Sizes grow as ln(n) + ln(1/eps) (the
/// paper's scaling); the consistency-critical thresholds sit a byz_frac
/// margin above a strict majority of their sample.
inline SbrbSamples sbrb_samples(NodeId n, double eps, double byz_frac) {
  CG_CHECK(n >= 1);
  const std::string err = sbrb_config_error(eps, byz_frac);
  CG_CHECK_MSG(err.empty(), err.c_str());
  SbrbSamples s;
  const int cap = static_cast<int>(std::min<NodeId>(n - 1, 64));
  if (cap < 1) return s;  // n == 1: no peers, nothing to sample
  const double base =
      std::log(static_cast<double>(n)) + std::log(1.0 / eps);
  const auto sized = [cap](double v, int lo) {
    return std::clamp(static_cast<int>(std::ceil(v)), std::min(lo, cap), cap);
  };
  s.g = sized(base, 3);
  s.e = sized(1.5 * base, 4);
  s.r = sized(1.5 * base, 4);
  s.d = sized(1.5 * base, 4);
  const auto margin = [byz_frac](int size) {
    return static_cast<int>(std::ceil(byz_frac * size));
  };
  s.e_thresh = std::min(s.e, s.e / 2 + 1 + margin(s.e));
  s.r_thresh = std::clamp(static_cast<int>(std::ceil(0.3 * s.r)), 1, s.r);
  s.d_thresh = std::min(s.d, s.d / 2 + 1 + margin(s.d));
  return s;
}

/// Completion deadline: generous bound on subscription dribble + a few
/// gossip/echo/ready round trips.  Protocol liveness does not depend on
/// it being tight - only termination does.
inline Step sbrb_deadline(const SbrbSamples& s, const LogP& p) {
  CG_CHECK(s.g >= 0 && s.e >= 0 && s.r >= 0 && s.d >= 0);
  return 4 * static_cast<Step>(s.g + s.e + s.r + s.d + 8) +
         24 * p.delivery_delay() + 32;
}

/// Fill out[0..k) with k DISTINCT node ids != self, SORTED ascending,
/// from a splitmix64 stream keyed on (seed, self, phase).  Phases 0/1/2
/// are the echo/ready/delivery samples; the draws never touch the node's
/// trial RNG stream, so samples can be (re)generated at any time without
/// perturbing protocol randomness.  Requires n >= k + 1.
inline void sbrb_fill_sample(std::uint64_t seed, NodeId self, NodeId n,
                             int phase, int k, NodeId* out) {
  if (k <= 0) return;
  CG_CHECK(n >= static_cast<NodeId>(k) + 1);
  SplitMix64 sm(derive_seed(
      derive_seed(seed, 0x5b9bull + static_cast<std::uint64_t>(phase)),
      static_cast<std::uint64_t>(self)));
  // Rejection depends only on SET MEMBERSHIP of the draw so far, so
  // collect-unsorted-then-sort accepts exactly the draws a maintain-
  // sorted-insert loop would (k <= 64: the linear dup scan is cheaper
  // than per-draw insertion shifting) and ends in the same sorted array.
  int cnt = 0;
  while (cnt < k) {
    auto t = static_cast<NodeId>(sm.next() %
                                 static_cast<std::uint64_t>(n - 1));
    if (t >= self) ++t;  // skip self (same mapping as Xoshiro256::other_node)
    bool dup = false;
    for (int j = 0; j < cnt; ++j) {
      if (out[j] == t) {
        dup = true;
        break;
      }
    }
    if (dup) continue;  // duplicate: redraw
    out[cnt++] = t;
  }
  // k <= 64 distinct ids: insertion sort beats the introsort call overhead
  // and yields the same ascending array (all values unique).
  for (int i = 1; i < k; ++i) {
    NodeId v = out[i];
    int j = i - 1;
    for (; j >= 0 && out[j] > v; --j) out[j + 1] = out[j];
    out[j + 1] = v;
  }
}

// ---------------------------------------------------------------------------
// SbrbNode - the production fast path
// ---------------------------------------------------------------------------

class SbrbNode {
 public:
  struct Params {
    SbrbSamples s{};
    Step deadline = 64;  ///< fixed completion step (see sbrb_deadline)
  };

  /// Samples are capped at 64 ids each (sbrb_samples).
  static constexpr int kMaxSample = 64;

  SbrbNode(const Params& p, NodeId self, NodeId n) {
    reset_for_run(p, self, n);
  }

  /// Capacity-preserving reset to the freshly-constructed state.  The
  /// engines' trial-reuse paths (Engine::run_impl, SoaNodeStore::reset,
  /// restart revival) detect this method and call it instead of
  /// re-emplacing the node, which is what makes steady-state SBRB trials
  /// allocation-free (tests/test_trial_farm.cpp).
  void reset_for_run(const Params& p, NodeId self, NodeId n) {
    p_ = p;
    self_ = self;
    n_ = n;
    // Sample segments stay EMPTY until draw_samples() runs in on_start:
    // a restart-revived node never re-runs on_start, and its membership
    // checks must all miss (the reference node's fresh instance has empty
    // sample vectors - rank_in must agree with that, not read stale ids).
    r_off_ = 0;
    d_off_ = 0;
    s_end_ = 0;
    echo_subs_.clear();
    ready_subs_.clear();
    urgent_.items.clear();
    urgent_.head = 0;
    bulk_.items.clear();
    bulk_.head = 0;
    for (int k = 0; k < n_cands_; ++k) cands_[k] = Cand{};
    n_cands_ = 0;
    candidate_ = 0;
    sieve_delivered_ = false;
    delivered_ = false;
  }

  template <class Ctx>
  void on_start(Ctx& ctx) {
    ctx.activate();  // every node subscribes, so every node participates
    draw_samples(ctx.seed());
    // Subscriptions ride the bulk queue: payload traffic (urgent queue)
    // preempts them, so a late subscription only delays feedback, never
    // dissemination.
    for (int i = 0; i < r_off_; ++i)
      queue(bulk_, samples_[static_cast<std::size_t>(i)], Tag::kSbrbSubEcho, 0);
    for (int i = r_off_; i < d_off_; ++i)
      queue(bulk_, samples_[static_cast<std::size_t>(i)], Tag::kSbrbSubReady,
            0);
    for (int i = d_off_; i < s_end_; ++i) {
      const NodeId t = samples_[static_cast<std::size_t>(i)];
      if (rank_in(r_off_, d_off_, t) < 0)
        queue(bulk_, t, Tag::kSbrbSubReady, 0);
    }
    if (ctx.is_root()) {
      candidate_ = kTruePayload;
      ctx.mark_colored();
      ctx.deliver();
      delivered_ = true;
      if (n_ == 1) {
        ctx.complete();
        return;
      }
      queue_gossip(ctx);
    }
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message& m) {
    // Signature verification: forged digests (kForgedBit) never influence
    // state.  This single check is what reduces corruptors/spammers and
    // non-root equivocators to crash faults.
    if (m.payload != 0 && !payload_signed(m.payload)) return;
    switch (m.tag) {
      case Tag::kGossip: on_gossip(ctx, m); break;
      case Tag::kSbrbSubEcho: on_sub_echo(ctx, m.src); break;
      case Tag::kSbrbSubReady: on_sub_ready(ctx, m.src); break;
      case Tag::kSbrbEcho: on_echo(ctx, m.src, m.payload); break;
      case Tag::kSbrbReady: on_ready(ctx, m.src, m.payload); break;
      default: break;  // foreign traffic (cross-protocol tests) ignored
    }
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    const Step now = ctx.now();
    if (now >= p_.deadline) {
      ctx.complete();
      return;
    }
    if (sbrb_idle()) return;
    const auto [to, m] = sbrb_pop_staged(now);
    ctx.send(to, m);
  }

  // --- staged-send kernel contract (sim/sharded_engine.hpp) ---------------
  // The sharded engine's SBRB step kernel replaces the per-node generic
  // tick sweep with a sweep over the dense pending-sends bitmap: nodes
  // with nothing staged cost nothing per step.  The contract relies on
  // the protocol properties above: all activation happens in on_start,
  // a tick before the deadline emits exactly the front staged message,
  // and completion happens only at the deadline tick.

  /// Nothing staged: a pre-deadline tick would be a no-op.
  bool sbrb_idle() const { return empty(urgent_) && empty(bulk_); }

  /// Pop the next staged message exactly as a pre-deadline on_tick would
  /// (urgent before bulk), materializing the wire Message.  Requires
  /// !sbrb_idle().
  std::pair<NodeId, Message> sbrb_pop_staged(Step now) {
    auto& q = !empty(urgent_) ? urgent_ : bulk_;
    const Staged st = q.items[q.head++];
    Message m;
    m.tag = st.tag;
    m.payload = st.payload;
    m.time = now;
    return {st.to, m};
  }

  /// Prefetch hints for the engines' software-pipelined dispatch loops.
  /// Receives are latency-bound on a dependent-load chain (node header ->
  /// sample/subscriber data); issuing the second hop a couple of
  /// deliveries early overlaps it with the preceding handlers.  Pure
  /// reads - safe on any node in any state.
  void sbrb_prefetch(Tag t) const {
    const NodeId* const d = samples_.data();
    switch (t) {
      case Tag::kSbrbEcho:
        __builtin_prefetch(d);  // echo segment leads the flat array
        break;
      case Tag::kSbrbReady:
        __builtin_prefetch(d + r_off_);
        __builtin_prefetch(d + d_off_);
        break;
      case Tag::kSbrbSubEcho:
        __builtin_prefetch(echo_subs_.data());
        break;
      case Tag::kSbrbSubReady:
        __builtin_prefetch(ready_subs_.data());
        break;
      default:  // kGossip reads only the header line
        break;
    }
  }

  /// Companion hint for the staged-send sweep: the pop's dependent line is
  /// the front of whichever queue is up next.
  void sbrb_prefetch_pop() const {
    const auto& q = !empty(urgent_) ? urgent_ : bulk_;
    if (q.head < q.items.size()) __builtin_prefetch(q.items.data() + q.head);
  }

  bool colored() const { return candidate_ != 0; }
  bool sieve_delivered() const { return sieve_delivered_; }
  bool delivered() const { return delivered_; }
  std::uint32_t candidate() const { return candidate_; }

 private:
  /// Per-candidate tallies.  Only validly signed digests get a slot, so
  /// two (kTruePayload + the root-equivocation kAltPayload) is the
  /// realistic maximum; the array guards the theoretical worst case.
  /// Masks dedup repeat votes per sample slot; the counters are the
  /// dense increment-on-new-vote mirrors the thresholds compare against.
  struct Cand {
    std::uint64_t echo_mask = 0;      ///< echoes seen, bit per e-sample rank
    std::uint64_t ready_mask = 0;     ///< Readies from the r-sample
    std::uint64_t delivery_mask = 0;  ///< Readies from the d-sample
    std::uint32_t digest = 0;
    std::uint8_t echo_cnt = 0;
    std::uint8_t ready_cnt = 0;
    std::uint8_t delivery_cnt = 0;
    bool ready = false;               ///< this node announced Ready(digest)
  };
  static_assert(sizeof(Cand) == 32);
  static constexpr int kMaxCandidates = 8;

  /// Compact staged send: tag/payload/destination only.  The wire Message
  /// is materialized at pop time (its `time` field is stamped with the
  /// send step either way, and `src` is stamped by the engine), so
  /// staging 12 bytes instead of a 64-byte Message is behavior-neutral.
  struct Staged {
    NodeId to;
    Tag tag;
    std::uint32_t payload;
  };
  struct SendQ {
    std::vector<Staged> items;
    std::size_t head = 0;
  };
  static bool empty(const SendQ& q) { return q.head >= q.items.size(); }
  static void queue(SendQ& q, NodeId to, Tag tag, std::uint32_t payload) {
    q.items.push_back({to, tag, payload});
  }

  /// Rank of x inside the sorted sample segment [lo, hi) of samples_,
  /// or -1 when absent.  The rank doubles as the candidate-mask bit
  /// index (identical to the reference's linear-scan position, because
  /// both walk the same sorted array).  Deliberately a branchless linear
  /// scan, not a binary search: segments are <= 64 cache-resident ids, so
  /// the compiler's vectorized compare beats lower_bound's serial
  /// data-dependent (mispredicting) branches - receives are the hot path.
  int rank_in(int lo, int hi, NodeId x) const {
    const NodeId* const d = samples_.data();
    int r = -1;
    for (int j = lo; j < hi; ++j) r = d[j] == x ? j - lo : r;
    return r;
  }

  static bool contains(const std::vector<NodeId>& v, NodeId x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  }

  void draw_samples(std::uint64_t seed) {
    r_off_ = p_.s.e;
    d_off_ = r_off_ + p_.s.r;
    s_end_ = d_off_ + p_.s.d;
    CG_CHECK(s_end_ <= 3 * kMaxSample);
    // Exact-size heap storage: resize() preserves capacity across
    // reset_for_run, so replayed trials stay allocation-free.
    if (static_cast<int>(samples_.size()) < s_end_)
      samples_.resize(static_cast<std::size_t>(s_end_));
    sbrb_fill_sample(seed, self_, n_, 0, p_.s.e, samples_.data());
    sbrb_fill_sample(seed, self_, n_, 1, p_.s.r, samples_.data() + r_off_);
    sbrb_fill_sample(seed, self_, n_, 2, p_.s.d, samples_.data() + d_off_);
  }

  Cand* slot_for(std::uint32_t digest) {
    for (int k = 0; k < n_cands_; ++k)
      if (cands_[k].digest == digest) return &cands_[k];
    if (n_cands_ >= kMaxCandidates) return nullptr;
    cands_[n_cands_].digest = digest;
    return &cands_[n_cands_++];
  }

  template <class Ctx>
  void queue_gossip(Ctx& ctx) {
    for (int k = 0; k < p_.s.g; ++k)
      queue(urgent_, ctx.rng().other_node(self_, n_), Tag::kGossip,
            candidate_);
  }

  /// Adopt `digest` as this node's one-and-only candidate: forward it to
  /// the gossip fanout and echo it to everyone sampling us.
  template <class Ctx>
  void become_colored(Ctx& ctx, std::uint32_t digest) {
    candidate_ = digest;
    ctx.mark_colored();
    queue_gossip(ctx);
    for (const NodeId s : echo_subs_)
      queue(urgent_, s, Tag::kSbrbEcho, candidate_);
  }

  template <class Ctx>
  void on_gossip(Ctx& ctx, const Message& m) {
    if (candidate_ != 0 || m.payload == 0) return;  // first candidate wins
    become_colored(ctx, m.payload);
  }

  template <class Ctx>
  void on_sub_echo(Ctx&, NodeId src) {
    if (contains(echo_subs_, src)) return;
    echo_subs_.push_back(src);
    if (candidate_ != 0)  // late subscriber: replay our echo
      queue(urgent_, src, Tag::kSbrbEcho, candidate_);
  }

  template <class Ctx>
  void on_sub_ready(Ctx&, NodeId src) {
    if (contains(ready_subs_, src)) return;
    ready_subs_.push_back(src);
    for (int k = 0; k < n_cands_; ++k)  // late subscriber: replay Readies
      if (cands_[k].ready)
        queue(urgent_, src, Tag::kSbrbReady, cands_[k].digest);
  }

  template <class Ctx>
  void on_echo(Ctx& ctx, NodeId src, std::uint32_t payload) {
    const int idx = rank_in(0, r_off_, src);
    if (idx < 0 || payload == 0) return;  // not in our sample: no vote
    Cand* const c = slot_for(payload);
    if (c == nullptr) return;
    const std::uint64_t bit = std::uint64_t{1} << idx;
    if ((c->echo_mask & bit) == 0) {
      c->echo_mask |= bit;
      ++c->echo_cnt;
    }
    if (!sieve_delivered_ && payload == candidate_ &&
        c->echo_cnt >= p_.s.e_thresh) {
      sieve_delivered_ = true;  // Sieve consistency gate passed
      become_ready(ctx, *c);
    }
  }

  template <class Ctx>
  void become_ready(Ctx&, Cand& c) {
    if (c.ready) return;
    c.ready = true;
    for (const NodeId s : ready_subs_)
      queue(urgent_, s, Tag::kSbrbReady, c.digest);
  }

  template <class Ctx>
  void on_ready(Ctx& ctx, NodeId src, std::uint32_t payload) {
    if (payload == 0) return;
    Cand* const c = slot_for(payload);
    if (c == nullptr) return;
    const int ri = rank_in(r_off_, d_off_, src);
    if (ri >= 0) {
      const std::uint64_t bit = std::uint64_t{1} << ri;
      if ((c->ready_mask & bit) == 0) {
        c->ready_mask |= bit;
        ++c->ready_cnt;
      }
    }
    const int di = rank_in(d_off_, s_end_, src);
    if (di >= 0) {
      const std::uint64_t bit = std::uint64_t{1} << di;
      if ((c->delivery_mask & bit) == 0) {
        c->delivery_mask |= bit;
        ++c->delivery_cnt;
      }
    }
    // Contagion feedback: enough sample Readies make us Ready too, even
    // without sieve-delivery (this is what spreads Ready to nodes whose
    // own sieve starved).
    if (!c->ready && c->ready_cnt >= p_.s.r_thresh) become_ready(ctx, *c);
    // Delivery: a majority-with-margin of the delivery sample is Ready.
    if (!delivered_ && c->delivery_cnt >= p_.s.d_thresh) {
      delivered_ = true;
      if (candidate_ == 0) {
        // Gossip never reached us: adopt the sample-winning payload.
        become_colored(ctx, payload);
      }
      ctx.adopt_payload(payload);  // deliver the sample winner, always
      ctx.deliver();
    }
  }

  // Field order is deliberate: a receive's dependent-load chain starts at
  // the node's FIRST line - the samples_ vector header leads, so its data
  // pointer, the segment offsets, the candidate word and the thresholds
  // (p_) are all available from one line fill, with the first candidate's
  // tallies on the adjacent line.  The dispatch loops prefetch exactly
  // this region a few deliveries ahead, which turns the 2-3 serial misses
  // per receive of the naive layout into ~one (docs/PERF.md §7).  The
  // exact-size heap sample array (vs an inline 3*kMaxSample array) also
  // cuts the per-node footprint ~4x.
  //
  // Sorted flat sample storage: samples_[0, r_off_) echo,
  // [r_off_, d_off_) ready, [d_off_, s_end_) delivery.
  std::vector<NodeId> samples_;
  std::uint32_t candidate_ = 0;  // first payload adopted (0 = uncolored)
  std::uint8_t n_cands_ = 0;
  bool sieve_delivered_ = false;
  bool delivered_ = false;
  int r_off_ = 0;
  int d_off_ = 0;
  int s_end_ = 0;
  NodeId self_ = 0;
  NodeId n_ = 1;
  Params p_;
  SendQ urgent_;  // gossip forwards, echoes, Readies
  SendQ bulk_;    // sample subscriptions
  Cand cands_[kMaxCandidates]{};
  std::vector<NodeId> echo_subs_;   // who counts OUR echoes
  std::vector<NodeId> ready_subs_;  // who counts OUR Readies
};

// ---------------------------------------------------------------------------
// SbrbRefNode - the stock Protocol-API oracle
// ---------------------------------------------------------------------------

/// Straightforward vector-based implementation, byte-for-byte trace-
/// equivalent to SbrbNode (the only shared machinery is sbrb_fill_sample;
/// everything else - linear membership scans, heap-allocated full-Message
/// queues - is deliberately naive).  Kept as the verification oracle for
/// the fast path; not reachable from the runner.
class SbrbRefNode {
 public:
  using Params = SbrbNode::Params;

  SbrbRefNode(const Params& p, NodeId self, NodeId n)
      : p_(p), self_(self), n_(n) {}

  template <class Ctx>
  void on_start(Ctx& ctx) {
    ctx.activate();
    draw_samples(ctx.seed());
    for (const NodeId t : echo_sample_)
      queue(bulk_, t, make_msg(Tag::kSbrbSubEcho, 0, 0));
    for (const NodeId t : ready_sample_)
      queue(bulk_, t, make_msg(Tag::kSbrbSubReady, 0, 0));
    for (const NodeId t : delivery_sample_)
      if (!contains(ready_sample_, t))
        queue(bulk_, t, make_msg(Tag::kSbrbSubReady, 0, 0));
    if (ctx.is_root()) {
      candidate_ = kTruePayload;
      ctx.mark_colored();
      ctx.deliver();
      delivered_ = true;
      if (n_ == 1) {
        ctx.complete();
        return;
      }
      queue_gossip(ctx, Step{0});
    }
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message& m) {
    if (m.payload != 0 && !payload_signed(m.payload)) return;
    switch (m.tag) {
      case Tag::kGossip: on_gossip(ctx, m); break;
      case Tag::kSbrbSubEcho: on_sub_echo(ctx, m.src); break;
      case Tag::kSbrbSubReady: on_sub_ready(ctx, m.src); break;
      case Tag::kSbrbEcho: on_echo(ctx, m.src, m.payload); break;
      case Tag::kSbrbReady: on_ready(ctx, m.src, m.payload); break;
      default: break;
    }
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    const Step now = ctx.now();
    if (now >= p_.deadline) {
      ctx.complete();
      return;
    }
    auto& q = !empty(urgent_) ? urgent_ : bulk_;
    if (empty(q)) return;
    auto [to, m] = q.items[q.head++];
    m.time = now;
    ctx.send(to, m);
  }

  bool colored() const { return candidate_ != 0; }
  bool sieve_delivered() const { return sieve_delivered_; }
  bool delivered() const { return delivered_; }
  std::uint32_t candidate() const { return candidate_; }

 private:
  struct Cand {
    std::uint32_t digest = 0;
    std::uint64_t echo_mask = 0;
    std::uint64_t ready_mask = 0;
    std::uint64_t delivery_mask = 0;
    bool ready = false;
  };
  static constexpr int kMaxCandidates = 8;

  struct SendQ {
    std::vector<std::pair<NodeId, Message>> items;
    std::size_t head = 0;
  };
  static bool empty(const SendQ& q) { return q.head >= q.items.size(); }
  static void queue(SendQ& q, NodeId to, const Message& m) {
    q.items.emplace_back(to, m);
  }

  Message make_msg(Tag tag, std::uint32_t payload, Step time) const {
    Message m;
    m.tag = tag;
    m.payload = payload;
    m.time = time;
    return m;
  }

  static bool contains(const std::vector<NodeId>& v, NodeId x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  }
  /// Position of x in a sample (samples are <= 64 sorted ids; the linear
  /// scan position equals the fast path's binary-search rank).
  static int index_in(const std::vector<NodeId>& v, NodeId x) {
    const auto it = std::find(v.begin(), v.end(), x);
    return it == v.end() ? -1 : static_cast<int>(it - v.begin());
  }

  void draw_samples(std::uint64_t seed) {
    echo_sample_.resize(static_cast<std::size_t>(p_.s.e));
    sbrb_fill_sample(seed, self_, n_, 0, p_.s.e, echo_sample_.data());
    ready_sample_.resize(static_cast<std::size_t>(p_.s.r));
    sbrb_fill_sample(seed, self_, n_, 1, p_.s.r, ready_sample_.data());
    delivery_sample_.resize(static_cast<std::size_t>(p_.s.d));
    sbrb_fill_sample(seed, self_, n_, 2, p_.s.d, delivery_sample_.data());
  }

  Cand* slot_for(std::uint32_t digest) {
    for (int k = 0; k < n_cands_; ++k)
      if (cands_[k].digest == digest) return &cands_[k];
    if (n_cands_ >= kMaxCandidates) return nullptr;
    cands_[n_cands_].digest = digest;
    return &cands_[n_cands_++];
  }

  template <class Ctx>
  void queue_gossip(Ctx& ctx, Step now) {
    for (int k = 0; k < p_.s.g; ++k)
      queue(urgent_, ctx.rng().other_node(self_, n_),
            make_msg(Tag::kGossip, candidate_, now));
  }

  template <class Ctx>
  void become_colored(Ctx& ctx, std::uint32_t digest) {
    candidate_ = digest;
    ctx.mark_colored();
    queue_gossip(ctx, ctx.now());
    for (const NodeId s : echo_subs_)
      queue(urgent_, s, make_msg(Tag::kSbrbEcho, candidate_, ctx.now()));
  }

  template <class Ctx>
  void on_gossip(Ctx& ctx, const Message& m) {
    if (candidate_ != 0 || m.payload == 0) return;  // first candidate wins
    become_colored(ctx, m.payload);
  }

  template <class Ctx>
  void on_sub_echo(Ctx& ctx, NodeId src) {
    if (contains(echo_subs_, src)) return;
    echo_subs_.push_back(src);
    if (candidate_ != 0)  // late subscriber: replay our echo
      queue(urgent_, src, make_msg(Tag::kSbrbEcho, candidate_, ctx.now()));
  }

  template <class Ctx>
  void on_sub_ready(Ctx& ctx, NodeId src) {
    if (contains(ready_subs_, src)) return;
    ready_subs_.push_back(src);
    for (int k = 0; k < n_cands_; ++k)  // late subscriber: replay Readies
      if (cands_[k].ready)
        queue(urgent_, src,
              make_msg(Tag::kSbrbReady, cands_[k].digest, ctx.now()));
  }

  template <class Ctx>
  void on_echo(Ctx& ctx, NodeId src, std::uint32_t payload) {
    const int idx = index_in(echo_sample_, src);
    if (idx < 0 || payload == 0) return;  // not in our sample: no vote
    Cand* c = slot_for(payload);
    if (c == nullptr) return;
    c->echo_mask |= std::uint64_t{1} << idx;
    if (!sieve_delivered_ && payload == candidate_ &&
        std::popcount(c->echo_mask) >= p_.s.e_thresh) {
      sieve_delivered_ = true;  // Sieve consistency gate passed
      become_ready(ctx, *c);
    }
  }

  template <class Ctx>
  void become_ready(Ctx& ctx, Cand& c) {
    if (c.ready) return;
    c.ready = true;
    for (const NodeId s : ready_subs_)
      queue(urgent_, s, make_msg(Tag::kSbrbReady, c.digest, ctx.now()));
  }

  template <class Ctx>
  void on_ready(Ctx& ctx, NodeId src, std::uint32_t payload) {
    if (payload == 0) return;
    Cand* c = slot_for(payload);
    if (c == nullptr) return;
    const int ri = index_in(ready_sample_, src);
    if (ri >= 0) c->ready_mask |= std::uint64_t{1} << ri;
    const int di = index_in(delivery_sample_, src);
    if (di >= 0) c->delivery_mask |= std::uint64_t{1} << di;
    if (!c->ready && std::popcount(c->ready_mask) >= p_.s.r_thresh)
      become_ready(ctx, *c);
    if (!delivered_ && std::popcount(c->delivery_mask) >= p_.s.d_thresh) {
      delivered_ = true;
      if (candidate_ == 0) become_colored(ctx, payload);
      ctx.adopt_payload(payload);
      ctx.deliver();
    }
  }

  Params p_;
  NodeId self_;
  NodeId n_;
  std::vector<NodeId> echo_sample_;      // whose echoes we count
  std::vector<NodeId> ready_sample_;     // whose Readies feed feedback
  std::vector<NodeId> delivery_sample_;  // whose Readies trigger delivery
  std::vector<NodeId> echo_subs_;        // who counts OUR echoes
  std::vector<NodeId> ready_subs_;       // who counts OUR Readies
  Cand cands_[kMaxCandidates]{};
  int n_cands_ = 0;
  std::uint32_t candidate_ = 0;  // first payload adopted (0 = uncolored)
  bool sieve_delivered_ = false;
  bool delivered_ = false;
  SendQ urgent_;  // gossip forwards, echoes, Readies
  SendQ bulk_;    // sample subscriptions
};

}  // namespace cg

// Opt-in reliable-delivery sublayer for correction/SOS traffic.
//
// The paper's CCG/FCG guarantees assume reliable channels: a single lost
// kFwd/kBwd message silently voids "reaches all active nodes".  This
// sublayer restores the guarantee under message loss with the classic
// ack/retransmit recipe, kept deliberately small so it composes with the
// one-send-per-step LogP discipline:
//
//   * sender side - every tracked send carries a per-sender sequence
//     number (in Message::time, unused by the correction tags) and is
//     remembered per DESTINATION; at most one transaction is outstanding
//     per destination, newer content superseding older (sound for ring
//     correction: a later message to the same peer carries at least as
//     much information).  An unacked message is retransmitted from the
//     node's send slot with bounded exponential backoff (rto, 2*rto,
//     4*rto, ... capped) and abandoned after max_retries - the peer may
//     legitimately be dead, and FCG's crash tolerance covers that case;
//   * receiver side - a cumulative kAck (acking every seq <= Message::time
//     from that peer) is owed to each sender we got tracked traffic from
//     and is flushed from the receiver's own send slots, acks first, so a
//     duplicate data message re-triggers the ack it may have lost.  Owed
//     acks flush in (step-owed, peer-id) order: under RxPolicy::kDrainAll
//     the engines process a step's arrivals in engine-specific order, so
//     any queue keyed on ARRIVAL order would leak scheduling into ack
//     timing and break cross-engine parity.
//     Duplicate suppression rides proto/dedup.hpp's per-peer monotone
//     counters (BroadcastFilter keyed by sender), per the paper's Claim 1
//     bookkeeping;
//   * acks are never themselves acked or retransmitted - the data-side
//     timer covers a lost ack (the data is retransmitted, re-acked and
//     deduplicated).
//
// Retransmissions count as work: they are flagged on the Message
// (retrans = 1) and surface as msgs_retrans next to the per-tag counters.
// Determinism: the sublayer holds no RNG; every decision is a pure
// function of the callback sequence, so engine parity is preserved.
//
// Memory plan: ALL sublayer state lives behind one pointer, allocated only
// when the sublayer is enabled.  A disabled link is pointer-sized, which is
// what keeps CcgNode/FcgNode dense enough for the million-node SoA slab
// (docs/PERF.md §6) - the default configuration embeds ~150 bytes of empty
// vectors per node otherwise.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "proto/dedup.hpp"
#include "proto/message.hpp"

namespace cg {

struct ReliableParams {
  bool enabled = false;
  /// Retransmit timeout in steps before the first resend; 0 = auto
  /// (2 * delivery_delay + 2: a round trip plus the receiver's ack slot).
  Step rto = 0;
  /// Resends per transaction before abandoning the destination (it may
  /// have crashed or completed; unbounded retries would livelock the run).
  int max_retries = 6;
  /// Backoff is min(rto << attempt, backoff_cap) steps.
  Step backoff_cap = 64;
};

/// True for tags the sublayer tracks (correction + SOS).  Gossip-phase
/// messages stay fire-and-forget: the gossip phase is probabilistic by
/// design and correction exists to mop up after it.
constexpr bool is_reliable_tag(Tag t) {
  return is_ring_corr(t) || t == Tag::kSos;
}

class ReliableLink {
 public:
  /// What on_receive() decided about an incoming message.
  enum class Rx : std::uint8_t {
    kProcess,    ///< fresh data (or sublayer disabled): run protocol logic
    kDuplicate,  ///< already seen: suppressed (ack re-sent), skip it
    kAck,        ///< sublayer control traffic: skip it
  };

  ReliableLink() = default;

  ReliableLink(const ReliableParams& p, NodeId self, NodeId n) {
    if (p.enabled) st_ = std::make_unique<State>(p, self, n);
  }

  // Deep-copyable so protocol nodes stay regular values (the engines only
  // ever move, but tests and helpers may copy).
  ReliableLink(const ReliableLink& o)
      : st_(o.st_ ? std::make_unique<State>(*o.st_) : nullptr) {}
  ReliableLink& operator=(const ReliableLink& o) {
    if (this != &o) st_ = o.st_ ? std::make_unique<State>(*o.st_) : nullptr;
    return *this;
  }
  ReliableLink(ReliableLink&&) noexcept = default;
  ReliableLink& operator=(ReliableLink&&) noexcept = default;

  bool enabled() const { return st_ != nullptr; }

  /// No unacked transactions and no acks owed: safe to complete().
  bool idle() const {
    return !st_ || (st_->pending.empty() && st_->ack_queue.empty());
  }

  std::int64_t abandoned() const { return st_ ? st_->abandoned : 0; }

  /// Send `m` to `to` with delivery tracking (consumes this step's slot).
  /// With the sublayer disabled this is a plain ctx.send().
  template <class Ctx>
  void send(Ctx& ctx, NodeId to, Message m) {
    if (!st_ || !is_reliable_tag(m.tag)) {
      ctx.send(to, m);
      return;
    }
    CG_CHECK(to != st_->self);
    m.time = static_cast<Step>(++st_->next_seq);
    // One outstanding transaction per destination: newer content
    // supersedes (ring-correction messages to the same peer are monotone
    // in information content).
    st_->drop_pending(to);
    st_->pending.push_back({to, m, ctx.now() + rto(ctx), 0});
    ctx.send(to, m);
  }

  /// Flush control traffic from this step's send slot: owed acks first,
  /// then due retransmits.  Returns true if the slot was consumed - the
  /// protocol must then skip its own emission this step.
  template <class Ctx>
  bool on_tick(Ctx& ctx) {
    if (!st_) return false;
    auto& pending_ = st_->pending;
    auto& ack_queue_ = st_->ack_queue;
    const Step now = ctx.now();
    if (!ack_queue_.empty()) {
      // Oldest owed step first, lowest peer id on ties: canonical across
      // engines (same-step arrivals owe at the same step regardless of the
      // order they were drained in).
      std::size_t best = 0;
      for (std::size_t k = 1; k < ack_queue_.size(); ++k) {
        const auto& a = ack_queue_[k];
        const auto& b = ack_queue_[best];
        if (a.since < b.since || (a.since == b.since && a.peer < b.peer))
          best = k;
      }
      const NodeId peer = ack_queue_[best].peer;
      ack_queue_.erase(ack_queue_.begin() +
                       static_cast<std::ptrdiff_t>(best));
      st_->ack_owed(peer) = 0;
      Message a;
      a.tag = Tag::kAck;
      a.time = static_cast<Step>(st_->last_seq(peer));
      ctx.send(peer, a);
      return true;
    }
    // First due transaction in insertion order (deterministic; insertion
    // order is oldest-first, so starvation is impossible).
    for (std::size_t k = 0; k < pending_.size();) {
      auto& tx = pending_[k];
      if (tx.due > now) {
        ++k;
        continue;
      }
      if (tx.attempts >= st_->p.max_retries) {
        ++st_->abandoned;
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(k));
        continue;  // dead/completed peer: give up, try the next one
      }
      ++tx.attempts;
      tx.due = now + backoff(ctx, tx.attempts);
      Message m = tx.msg;
      m.retrans = 1;
      ctx.send(tx.to, m);
      return true;
    }
    return false;
  }

  /// Classify an incoming message and update sublayer state.  kProcess
  /// means the caller should run its protocol logic on `m`.
  template <class Ctx>
  Rx on_receive(Ctx& ctx, const Message& m) {
    if (!st_) return Rx::kProcess;
    auto& pending_ = st_->pending;
    if (m.tag == Tag::kAck) {
      // Cumulative: clears the pending transaction to m.src if its seq is
      // covered.
      for (std::size_t k = 0; k < pending_.size(); ++k) {
        if (pending_[k].to == m.src && pending_[k].msg.time <= m.time) {
          pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(k));
          break;
        }
      }
      return Rx::kAck;
    }
    if (!is_reliable_tag(m.tag)) return Rx::kProcess;
    // Track the highest seq seen and owe the sender a cumulative ack
    // (duplicates re-queue it: our previous ack may have been lost).
    auto& hi = st_->last_seq(m.src);
    hi = std::max(hi, static_cast<std::uint64_t>(m.time));
    if (st_->ack_owed(m.src) == 0) {
      st_->ack_owed(m.src) = 1;
      st_->ack_queue.push_back({m.src, ctx.now()});
    }
    // Claim-1 dedup: per-sender monotone counter.
    if (!st_->seen.accept({m.src, static_cast<std::uint64_t>(m.time)}))
      return Rx::kDuplicate;
    return Rx::kProcess;
  }

 private:
  struct Pending {
    NodeId to = kNoNode;
    Message msg;
    Step due = 0;
    int attempts = 0;
  };

  struct OwedAck {
    NodeId peer = kNoNode;
    Step since = 0;  ///< step the ack became owed
  };

  /// Everything an ENABLED link needs; a disabled link is just a null
  /// pointer to this (see the memory-plan note in the file comment).
  struct State {
    State(const ReliableParams& params, NodeId self_id, NodeId n)
        : p(params), self(self_id), seen(n) {
      CG_CHECK(p.max_retries >= 0);
      CG_CHECK(p.rto >= 0 && p.backoff_cap >= 1);
    }

    void drop_pending(NodeId to) {
      for (std::size_t k = 0; k < pending.size(); ++k) {
        if (pending[k].to == to) {
          pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(k));
          return;
        }
      }
    }

    // Per-peer scalars kept as sparse pair-vectors: a node exchanges
    // tracked traffic with O(gap) ring neighbors, not with all N.
    std::uint64_t& last_seq(NodeId peer) { return sparse(peer, last_seq_v); }
    std::uint8_t& ack_owed(NodeId peer) { return sparse(peer, ack_owed_v); }

    template <class T>
    T& sparse(NodeId peer, std::vector<std::pair<NodeId, T>>& v) {
      for (auto& [id, val] : v)
        if (id == peer) return val;
      v.emplace_back(peer, T{});
      return v.back().second;
    }

    ReliableParams p{};
    NodeId self = kNoNode;
    std::uint64_t next_seq = 0;
    std::vector<Pending> pending;                        // oldest first
    std::vector<OwedAck> ack_queue;                      // owed acks
    std::vector<std::pair<NodeId, std::uint64_t>> last_seq_v;
    std::vector<std::pair<NodeId, std::uint8_t>> ack_owed_v;
    BroadcastFilter seen;                                // per-sender dedup
    std::int64_t abandoned = 0;
  };

  template <class Ctx>
  Step rto(const Ctx& ctx) const {
    return st_->p.rto > 0 ? st_->p.rto
                          : 2 * ctx.logp().delivery_delay() + 2;
  }

  template <class Ctx>
  Step backoff(const Ctx& ctx, int attempt) const {
    const Step base = rto(ctx);
    Step b = base;
    for (int i = 0; i < attempt && b < st_->p.backoff_cap; ++i) b *= 2;
    return std::min(b, std::max(st_->p.backoff_cap, base));
  }

  std::unique_ptr<State> st_;
};

}  // namespace cg

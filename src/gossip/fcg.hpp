// FCG: Failure-proof Corrected-Gossip (paper Section III-D, Algorithm 3).
//
// Tolerates up to f node crashes *while the algorithm runs* and guarantees
// all-or-nothing delivery (Claim 4).  Compared to CCG, each g-node:
//   * accumulates the f+1 nearest g-nodes it knows in each ring direction
//     (k-arrays), learning transitively from the arrays carried in
//     correction messages (forward messages carry the sender's known
//     g-nodes BEHIND it, backward messages those AHEAD of it);
//   * once it knows f g-nodes in one direction it enters the finalization
//     round for the opposite-travelling messages: it restarts that sweep
//     from offset 1 so nearby nodes learn about those g-nodes and can exit;
//   * stops sweeping in a direction only after passing its (f+1)-th known
//     g-node in that direction; exits when both directions stopped (then
//     delivers);
//   * a full lap without finding f+1 g-nodes triggers the SOS flood.
// c-nodes deliver once they have heard of f+1 distinct g-nodes (so at
// least one survivor will finish the dissemination), or SOS on timeout.
//
// With Params::reliable.enabled, correction (kFwd/kBwd) and SOS traffic
// runs over the ack/retransmit sublayer (gossip/reliable.hpp), restoring
// the all-or-nothing guarantee under message loss; nodes defer their exit
// until the sublayer drained.  Disabled = bit-identical to Algorithm 3.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/ring.hpp"
#include "common/types.hpp"
#include "gossip/reliable.hpp"
#include "gossip/timing.hpp"
#include "proto/message.hpp"

namespace cg {

/// The f+1 nearest known g-nodes in one ring direction, sorted by distance.
class KnownGNodes {
 public:
  KnownGNodes() = default;
  KnownGNodes(Ring ring, NodeId self, Dir dir, int cap)
      : ring_(ring), self_(self), dir_(dir), cap_(cap) {
    ids_.reserve(static_cast<std::size_t>(cap));
  }

  /// Insert a g-node id; keeps the list sorted by distance, deduplicated,
  /// truncated to the nearest `cap` entries (the paper's sorting-by-distance
  /// operator followed by [0..f]).
  void insert(NodeId id) {
    if (id == self_) return;
    const Step d = ring_.dist(self_, id, dir_);
    auto it = std::lower_bound(ids_.begin(), ids_.end(), d,
                               [this](NodeId a, Step dist) {
                                 return ring_.dist(self_, a, dir_) < dist;
                               });
    if (it != ids_.end() && *it == id) return;  // duplicate
    if (static_cast<int>(ids_.size()) == cap_) {
      if (it == ids_.end()) return;  // farther than everything we keep
      ids_.pop_back();
    }
    ids_.insert(it, id);
  }

  int size() const { return static_cast<int>(ids_.size()); }
  NodeId at(int i) const { return ids_[static_cast<std::size_t>(i)]; }
  std::span<const NodeId> ids() const { return ids_; }

  /// Distance to the i-th nearest known g-node (kNever if unknown).
  Step dist_at(int i) const {
    return i < size() ? ring_.dist(self_, at(i), dir_) : kNever;
  }

 private:
  Ring ring_{1};
  NodeId self_ = 0;
  Dir dir_ = Dir::kFwd;
  int cap_ = 0;
  std::vector<NodeId> ids_;
};

class FcgNode {
 public:
  struct Params {
    Step T = 0;           ///< gossip stop time
    int f = 1;            ///< online failures tolerated (0..kMaxKnownF)
    Step drain_extra = 0; ///< extra drain before correction (see OcgNode)
    Step sos_timeout = 0; ///< absolute step; 0 = auto from N/T/LogP
    bool sos_enabled = true;  ///< disable to study Claim 5 (tests only)
    /// Ack/retransmit hardening of correction + SOS (off by default).
    ReliableParams reliable;
    /// Testing hook: bitmap of nodes pre-colored as g-nodes at step 0.
    std::shared_ptr<const std::vector<std::uint8_t>> seed_colored;
  };

  static Step auto_timeout(const Params& p, NodeId n, const LogP& logp) {
    return p.sos_timeout > 0
               ? p.sos_timeout
               : corr_start(p.T, logp) + 4 * static_cast<Step>(n) +
                     8 * logp.delivery_delay() + 16;
  }

  FcgNode(const Params& p, NodeId self, NodeId n)
      : p_(p),
        self_(self),
        ring_(n),
        known_{KnownGNodes(ring_, self, Dir::kFwd, p.f + 1),
               KnownGNodes(ring_, self, Dir::kBwd, p.f + 1)},
        rel_(p.reliable, self, n) {
    CG_CHECK(p.f >= 0 && p.f <= kMaxKnownF);
  }

  template <class Ctx>
  void on_start(Ctx& ctx) {
    const bool seeded =
        p_.seed_colored &&
        (*p_.seed_colored)[static_cast<std::size_t>(self_)] != 0;
    if (ctx.is_root() || seeded) {
      colored_ = true;
      g_node_ = true;
      ctx.activate();
      ctx.mark_colored();
      if (ring_.size() == 1) {
        ctx.deliver();
        ctx.complete();
      }
    }
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message& m) {
    switch (rel_.on_receive(ctx, m)) {
      case ReliableLink::Rx::kAck:
      case ReliableLink::Rx::kDuplicate:
        return;  // sublayer traffic; completion happens in on_tick only
      case ReliableLink::Rx::kProcess: break;
    }
    if (done_ || want_complete_) return;
    if (m.tag == Tag::kSos) {
      // Line 23 / lines 8-10: enter SOS mode ourselves.
      if (!colored_) { colored_ = true; ctx.mark_colored(); }
      start_sos();
      return;
    }
    if (m.tag == Tag::kGossip) {
      if (!colored_) {
        colored_ = true;
        g_node_ = true;
        ctx.mark_colored();
      }
      return;
    }
    if (!is_ring_corr(m.tag)) return;
    if (!colored_) {
      colored_ = true;  // c-node
      ctx.mark_colored();
    }
    if (g_node_) {
      // Merge src and the carried array into the appropriate k-array
      // (Algorithm 3 lines 21-22): a forward message teaches about g-nodes
      // BEHIND us, a backward message about g-nodes AHEAD.  Unlike the
      // (typographically mangled) !f_t gate in the paper's listing we never
      // freeze knowledge: growth only shrinks stop distances over already-
      // covered prefixes, so every correctness argument is preserved, while
      // freezing a k-array below f+1 entries would stall its stop rule.
      const Dir learn = m.tag == Tag::kFwd ? Dir::kBwd : Dir::kFwd;
      known_[idx(learn)].insert(m.src);
      for (const NodeId id : m.known_nodes()) known_[idx(learn)].insert(id);
    } else {
      // c-node: count distinct g-nodes heard of (line 13).
      merge_cnode_knowledge(m);
      if (static_cast<int>(cnode_known_.size()) >= p_.f + 1) {
        ctx.deliver();
        finish(ctx);
      }
    }
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    if (done_) return;
    if (rel_.on_tick(ctx)) {  // acks / retransmits own this step's slot
      try_complete(ctx);
      return;
    }
    if (want_complete_) {
      try_complete(ctx);
      return;
    }
    const Step now = ctx.now();

    if (sos_mode_) {
      tick_sos(ctx);
      return;
    }

    if (!g_node_) {
      // c-node: waiting for f+1 known g-nodes; SOS on timeout (line 14).
      if (p_.sos_enabled &&
          now >= auto_timeout(p_, ring_.size(), ctx.logp())) {
        start_sos();
        tick_sos(ctx);
      }
      return;
    }

    if (now < p_.T) {
      ctx.send(ctx.rng().other_node(self_, ring_.size()), plain_gossip_msg(now));
      return;
    }
    if (now < corr_start(p_.T, ctx.logp()) + p_.drain_extra)
      return;  // drain window

    // Finalization triggers (line 24): learning f g-nodes in one direction
    // restarts the opposite-travelling sweep from offset 1 so that those
    // g-nodes' existence is disseminated the other way.
    for (const Dir learn : {Dir::kFwd, Dir::kBwd}) {
      const Dir sweep = opposite(learn);
      if (!final_[idx(sweep)] && known_[idx(learn)].size() >= p_.f) {
        final_[idx(sweep)] = true;
        off_[idx(sweep)] = 1;
        s_[idx(sweep)] = true;
      }
    }

    // One direction slot per step, alternating (cf. Algorithm 3 line 19).
    const Dir dir = (slot_++ % 2 == 0) ? Dir::kFwd : Dir::kBwd;
    const int d = idx(dir);
    if (s_[d]) {
      // Stop once we passed our (f+1)-th known g-node in this direction
      // (line 25).
      if (off_[d] > known_[d].dist_at(p_.f)) {
        s_[d] = false;
      } else if (off_[d] <= ring_.size()) {
        const NodeId target = ring_.step(self_, dir, off_[d]);
        if (target != self_) {
          Message m;
          m.tag = dir_tag(dir);
          // Carried array: our known g-nodes in the direction the receiver
          // would call "towards the sender", i.e. opposite to travel.
          m.set_known(known_[idx(opposite(dir))].ids());
          rel_.send(ctx, target, m);
        }
        ++off_[d];
      }
    }

    // Full lap without f+1 g-nodes: SOS (line 28).
    if (off_[0] > ring_.size() || off_[1] > ring_.size()) {
      if (p_.sos_enabled) {
        start_sos();
        return;
      }
      // Claim-5 analysis mode: behave as if SOS did not exist; the node
      // simply stops sweeping that direction.
      if (off_[0] > ring_.size()) s_[0] = false;
      if (off_[1] > ring_.size()) s_[1] = false;
    }

    if (!s_[0] && !s_[1]) {
      ctx.deliver();
      finish(ctx);
    }
  }

  /// Batched gossip-sweep contract (see GosNode::in_plain_gossip).  Only
  /// g-nodes gossip, and every pre-gossip gate (reliable sublayer, pending
  /// completion, SOS mode) must be inactive.
  bool in_plain_gossip(Step now) const {
    return !done_ && !p_.reliable.enabled && !want_complete_ && !sos_mode_ &&
           g_node_ && now < p_.T;
  }

  bool colored() const { return colored_; }
  bool is_g_node() const { return g_node_; }
  bool in_sos() const { return sos_mode_; }
  const KnownGNodes& known(Dir d) const { return known_[idx(d)]; }
  const ReliableLink& reliable() const { return rel_; }

 private:
  static int idx(Dir d) { return static_cast<int>(d); }

  /// Protocol wants to exit; with the sublayer on, hold the node until it
  /// drained (acks owed, transactions unacked).  Completion then happens
  /// exclusively from on_tick: completing inside on_receive would drop the
  /// rest of a same-step delivery batch un-acked, and under kDrainAll the
  /// engines drain a batch in engine-specific order - the set of acked
  /// messages (hence every retransmit decision) must not depend on it.
  template <class Ctx>
  void finish(Ctx& ctx) {
    if (!rel_.enabled()) {
      done_ = true;
      ctx.complete();
      return;
    }
    want_complete_ = true;
  }

  template <class Ctx>
  void try_complete(Ctx& ctx) {
    if (want_complete_ && rel_.idle()) {
      done_ = true;
      ctx.complete();
    }
  }

  void merge_cnode_knowledge(const Message& m) {
    auto add = [this](NodeId id) {
      if (id == self_) return;
      if (std::find(cnode_known_.begin(), cnode_known_.end(), id) ==
          cnode_known_.end())
        cnode_known_.push_back(id);
    };
    add(m.src);
    for (const NodeId id : m.known_nodes()) add(id);
  }

  void start_sos() {
    if (sos_mode_ || done_) return;
    sos_mode_ = true;
    sos_next_ = 0;
  }

  template <class Ctx>
  void tick_sos(Ctx& ctx) {
    // Lines 9-10: send an SOS message to every other node (one per step,
    // each send costs O), then deliver and exit.
    while (sos_next_ < ring_.size()) {
      const NodeId target = static_cast<NodeId>(sos_next_++);
      if (target == self_) continue;
      Message m;
      m.tag = Tag::kSos;
      rel_.send(ctx, target, m);
      return;
    }
    ctx.deliver();
    finish(ctx);
  }

  Params p_;
  NodeId self_;
  Ring ring_;
  bool colored_ = false;
  bool g_node_ = false;
  bool done_ = false;
  bool sos_mode_ = false;
  Step sos_next_ = 0;

  // g-node correction state.
  KnownGNodes known_[2];        // indexed by Dir
  Step off_[2] = {1, 1};
  bool s_[2] = {true, true};
  bool final_[2] = {false, false};
  Step slot_ = 0;

  // c-node state: distinct g-nodes heard of.
  std::vector<NodeId> cnode_known_;

  ReliableLink rel_;
  bool want_complete_ = false;
};

}  // namespace cg

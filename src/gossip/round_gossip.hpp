// Classic synchronous round-based push gossip (Drezner & Barak 1986).
//
// Reference model for the paper's Section III claim that T >= 1.639*log2(N)
// rounds reach every node with high probability, and that N=1000, T=17
// colors all nodes only ~95.1% of the time.  One round = every informed
// node sends to one uniformly random other node; deliveries land at the end
// of the round (no LogP latency).
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"

namespace cg {

struct RoundGossipResult {
  NodeId informed = 0;    ///< nodes informed after `rounds`
  std::int64_t messages = 0;
};

/// Simulate `rounds` rounds of push gossip on n nodes from one root.
RoundGossipResult round_gossip(NodeId n, int rounds, Xoshiro256& rng);

/// The Drezner-Barak round count for high-probability full coloring.
int drezner_barak_rounds(NodeId n);

}  // namespace cg

#include "gossip/round_gossip.hpp"

#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace cg {

RoundGossipResult round_gossip(NodeId n, int rounds, Xoshiro256& rng) {
  CG_CHECK(n >= 1);
  CG_CHECK(rounds >= 0);
  std::vector<bool> colored(static_cast<std::size_t>(n), false);
  std::vector<NodeId> informed;
  informed.reserve(static_cast<std::size_t>(n));
  colored[0] = true;
  informed.push_back(0);

  RoundGossipResult res;
  if (n == 1) {
    res.informed = 1;
    return res;
  }
  for (int r = 0; r < rounds; ++r) {
    const std::size_t senders = informed.size();  // coloring lands post-round
    for (std::size_t s = 0; s < senders; ++s) {
      const NodeId target = rng.other_node(informed[s], n);
      ++res.messages;
      if (!colored[static_cast<std::size_t>(target)]) {
        colored[static_cast<std::size_t>(target)] = true;
        informed.push_back(target);
      }
    }
    if (informed.size() == static_cast<std::size_t>(n)) break;
  }
  res.informed = static_cast<NodeId>(informed.size());
  return res;
}

int drezner_barak_rounds(NodeId n) {
  return static_cast<int>(std::ceil(1.639 * std::log2(static_cast<double>(n))));
}

}  // namespace cg

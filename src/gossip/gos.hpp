// GOS: plain randomized push-gossip broadcast (paper Section IV-B1,
// Drezner & Barak [12]) - the probabilistic baseline without correction.
//
// Every colored node sends the payload to a uniformly random other node
// once per step while the emission step is < T; the run drains for another
// L+O and ends.  Weakly consistent only: some nodes may never be reached.
#pragma once

#include "common/types.hpp"
#include "gossip/timing.hpp"
#include "proto/message.hpp"

namespace cg {

class GosNode {
 public:
  struct Params {
    Step T = 0;  ///< gossip stop time (no emissions at steps >= T)
  };

  GosNode(const Params& p, NodeId self, NodeId n)
      : T_(p.T), self_(self), n_(n) {}

  template <class Ctx>
  void on_start(Ctx& ctx) {
    if (ctx.is_root()) {
      colored_ = true;
      ctx.mark_colored();
      ctx.deliver();
      if (n_ == 1) ctx.complete();
    }
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message& m) {
    if (m.tag != Tag::kGossip || colored_) return;  // duplicates ignored
    colored_ = true;
    ctx.mark_colored();
    ctx.deliver();
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    if (!colored_) return;
    const Step now = ctx.now();
    if (now < T_) {
      ctx.send(ctx.rng().other_node(self_, n_), plain_gossip_msg(now));
      return;
    }
    // Between T and T+L+O in-flight messages drain; then the node is done.
    if (now >= gossip_drain_end(T_, ctx.logp())) ctx.complete();
  }

  /// True when on_tick at `now` would do exactly one plain-gossip emission
  /// (plain_gossip_msg to rng().other_node) and nothing else - the sharded
  /// engine's batched gossip sweep contract (sim/sharded_engine.hpp).
  bool in_plain_gossip(Step now) const { return colored_ && now < T_; }

  bool colored() const { return colored_; }

 private:
  Step T_;
  NodeId self_;
  NodeId n_;
  bool colored_ = false;
};

}  // namespace cg

// CCG: Checked Corrected-Gossip (paper Section III-C, Algorithm 2).
//
// After the gossip phase each g-node sweeps the ring alternately forward /
// backward.  From the first backward message it receives it learns the
// distance m_fwd of its nearest g-node ahead (and symmetrically m_bwd from
// forward messages); it stops sweeping in a direction once it has sent up
// to that nearest g-node, and exits when both directions are done.
// Strongly consistent provided no node fails during the correction phase
// (Claim 3).  c-nodes (colored by a correction message) exit immediately
// and never send.
//
// With Params::reliable.enabled the correction sweep runs over the
// ack/retransmit sublayer (gossip/reliable.hpp): kFwd/kBwd sends are
// tracked and retransmitted under loss, received correction traffic is
// acked and deduplicated, and a node defers its exit until the sublayer
// has drained (acks flushed, transactions acked or abandoned).  With it
// disabled the behavior is bit-identical to the paper's Algorithm 2.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/ring.hpp"
#include "common/types.hpp"
#include "gossip/reliable.hpp"
#include "gossip/timing.hpp"
#include "proto/message.hpp"

namespace cg {

class CcgNode {
 public:
  struct Params {
    Step T = 0;  ///< gossip stop time
    /// Extra drain steps before the correction starts (see OcgNode).
    Step drain_extra = 0;
    /// Ack/retransmit hardening of the correction sweep (off by default).
    ReliableParams reliable;
    /// Testing hook: bitmap of nodes pre-colored as g-nodes at step 0.
    std::shared_ptr<const std::vector<std::uint8_t>> seed_colored;
  };

  CcgNode(const Params& p, NodeId self, NodeId n)
      : p_(p), self_(self), ring_(n), rel_(p.reliable, self, n) {}

  template <class Ctx>
  void on_start(Ctx& ctx) {
    const bool seeded =
        p_.seed_colored &&
        (*p_.seed_colored)[static_cast<std::size_t>(self_)] != 0;
    if (ctx.is_root() || seeded) {
      colored_ = true;
      g_node_ = true;
      ctx.activate();
      ctx.mark_colored();
      ctx.deliver();
      if (ring_.size() == 1) ctx.complete();
    }
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message& m) {
    switch (rel_.on_receive(ctx, m)) {
      case ReliableLink::Rx::kAck:
      case ReliableLink::Rx::kDuplicate:
        return;  // sublayer traffic; completion happens in on_tick only
      case ReliableLink::Rx::kProcess: break;
    }
    if (want_complete_) return;  // sweep done; sublayer drain only
    if (!colored_) {
      colored_ = true;
      ctx.mark_colored();
      ctx.deliver();
      if (m.tag == Tag::kGossip) {
        g_node_ = true;
      } else {
        // c-node: exits right away (Algorithm 2 line 4); with the reliable
        // sublayer on it first flushes the ack it now owes.
        finish(ctx);
        return;
      }
    }
    if (!g_node_) return;
    // Record the distance of the nearest g-node in each direction.  A
    // backward message comes from a g-node AHEAD of us; a forward message
    // from one BEHIND us (Algorithm 2 line 13).
    if (m.tag == Tag::kBwd) {
      m_fwd_ = std::min<Step>(m_fwd_, ring_.dist_fwd(self_, m.src));
    } else if (m.tag == Tag::kFwd) {
      m_bwd_ = std::min<Step>(m_bwd_, ring_.dist_bwd(self_, m.src));
    }
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    if (rel_.on_tick(ctx)) {  // acks / retransmits own this step's slot
      try_complete(ctx);
      return;
    }
    if (want_complete_) {
      try_complete(ctx);
      return;
    }
    const Step now = ctx.now();
    if (now < p_.T) {
      ctx.send(ctx.rng().other_node(self_, ring_.size()), plain_gossip_msg(now));
      return;
    }
    if (now < corr_start(p_.T, ctx.logp()) + p_.drain_extra)
      return;  // drain window

    // One direction slot per step; forward first, then backward, at the
    // same offset before advancing (Algorithm 2 lines 10-17, one send
    // costs O and a skipped slot also waits O per the paper's analysis).
    const Dir dir = (slot_ % 2 == 0) ? Dir::kFwd : Dir::kBwd;
    ++slot_;

    bool& sending = dir == Dir::kFwd ? s_fwd_ : s_bwd_;
    const Step nearest = dir == Dir::kFwd ? m_fwd_ : m_bwd_;
    if (sending && off_ > nearest) sending = false;  // covered the gap (line 14)
    if (sending) {
      const NodeId target = ring_.step(self_, dir, off_);
      if (target != self_) {
        Message m;
        m.tag = dir_tag(dir);
        rel_.send(ctx, target, m);
      }
    }
    if (dir == Dir::kBwd) ++off_;  // both directions tried at this offset

    // Full circle (line 16) or both directions satisfied: exit.
    if (off_ >= ring_.size() || (!s_fwd_ && !s_bwd_)) finish(ctx);
  }

  /// Batched gossip-sweep contract (see GosNode::in_plain_gossip).  With
  /// the reliable sublayer on, rel_.on_tick may own the step's slot, so
  /// only the disabled configuration takes the fast path.
  bool in_plain_gossip(Step now) const {
    return !rel_.enabled() && !want_complete_ && now < p_.T;
  }

  bool colored() const { return colored_; }
  bool is_g_node() const { return g_node_; }
  Step nearest_fwd() const { return m_fwd_; }
  Step nearest_bwd() const { return m_bwd_; }
  const ReliableLink& reliable() const { return rel_; }

 private:
  /// Protocol wants to exit; with the sublayer on, hold the node until it
  /// drained (acks owed, transactions unacked).  Completion then happens
  /// exclusively from on_tick: completing inside on_receive would drop the
  /// rest of a same-step delivery batch un-acked, and under kDrainAll the
  /// engines drain a batch in engine-specific order - the set of acked
  /// messages (hence every retransmit decision) must not depend on it.
  template <class Ctx>
  void finish(Ctx& ctx) {
    if (!rel_.enabled()) {
      ctx.complete();
      return;
    }
    want_complete_ = true;
  }

  template <class Ctx>
  void try_complete(Ctx& ctx) {
    if (want_complete_ && rel_.idle()) ctx.complete();
  }
  Params p_;
  NodeId self_;
  Ring ring_;
  bool colored_ = false;
  bool g_node_ = false;
  bool s_fwd_ = true;
  bool s_bwd_ = true;
  Step m_fwd_ = kNever;  ///< distance to nearest g-node ahead (from kBwd msgs)
  Step m_bwd_ = kNever;  ///< distance to nearest g-node behind (from kFwd msgs)
  Step off_ = 1;
  Step slot_ = 0;
  ReliableLink rel_;
  bool want_complete_ = false;
};

}  // namespace cg

// OCG: Opportunistic Corrected-Gossip (paper Section III-B, Algorithm 1).
//
// Gossip for T steps, drain for L+O, then every g-node sweeps the virtual
// ring with correction messages, alternating +off / -off, for a fixed
// number of correction emissions.  Nodes colored by a correction message
// (c-nodes) never send; already-colored nodes ignore further messages.
// Weakly or strongly consistent with probability >= 1-eps by choice of
// T and the sweep length (Claim 2).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/ring.hpp"
#include "common/types.hpp"
#include "gossip/timing.hpp"
#include "proto/message.hpp"

namespace cg {

class OcgNode {
 public:
  struct Params {
    Step T = 0;          ///< gossip stop time
    Step corr_sends = 0; ///< correction emissions per g-node (= K_bar + margin)
    /// Extra drain steps before the correction starts - pad this when the
    /// network's worst-case latency exceeds the LogP L (jitter, slow
    /// cross-rack links), so straggling gossip arrivals still make their
    /// receivers g-nodes in time.
    Step drain_extra = 0;
    /// Testing hook: bitmap of nodes pre-colored as g-nodes at step 0
    /// (lets tests drive the correction phase with a constructed g-set;
    /// combine with T=0 to suppress gossip).
    std::shared_ptr<const std::vector<std::uint8_t>> seed_colored;
  };

  /// Absolute step after the last correction emission, i.e. the paper's C.
  static Step corr_end(const Params& p, const LogP& logp) {
    return corr_start(p.T, logp) + p.drain_extra + p.corr_sends;
  }

  OcgNode(const Params& p, NodeId self, NodeId n)
      : p_(p), self_(self), ring_(n) {}

  template <class Ctx>
  void on_start(Ctx& ctx) {
    const bool seeded =
        p_.seed_colored &&
        (*p_.seed_colored)[static_cast<std::size_t>(self_)] != 0;
    if (ctx.is_root() || seeded) {
      colored_ = true;
      g_node_ = true;
      ctx.activate();
      ctx.mark_colored();
      ctx.deliver();
      if (ring_.size() == 1) ctx.complete();
    }
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message& m) {
    if (colored_) return;  // no duplicates (Claim 1)
    colored_ = true;
    ctx.mark_colored();
    ctx.deliver();
    if (m.tag == Tag::kGossip) {
      g_node_ = true;  // colored during the gossip phase
    } else {
      // c-node: receives the payload in the correction phase and exits;
      // it never sends (Algorithm 1: its time counter is already >= C).
      ctx.complete();
    }
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    const Step now = ctx.now();
    const Step start = corr_start(p_.T, ctx.logp()) + p_.drain_extra;
    if (now < p_.T) {
      ctx.send(ctx.rng().other_node(self_, ring_.size()), plain_gossip_msg(now));
      return;
    }
    if (now < start) return;  // drain window
    if (now >= corr_end(p_, ctx.logp())) {
      ctx.complete();
      return;
    }
    // Correction sweep: emissions alternate (i+1), (i-1), (i+2), (i-2), ...
    const Step k = now - start;  // 0-based emission index
    const auto off = static_cast<std::int64_t>(k / 2 + 1);
    const Dir dir = (k % 2 == 0) ? Dir::kFwd : Dir::kBwd;
    if (off < ring_.size()) {
      const NodeId target = ring_.step(self_, dir, off);
      if (target != self_) {
        Message m;
        m.tag = Tag::kOcgCorr;
        m.time = corr_end(p_, ctx.logp());  // the paper's (C, data)
        ctx.send(target, m);
      }
    }
  }

  /// Batched gossip-sweep contract (see GosNode::in_plain_gossip).  A
  /// ticking OCG node is always a colored g-node (c-nodes complete inside
  /// their first on_receive), so the phase check alone decides.
  bool in_plain_gossip(Step now) const { return now < p_.T; }

  bool colored() const { return colored_; }
  bool is_g_node() const { return g_node_; }

 private:
  Params p_;
  NodeId self_;
  Ring ring_;
  bool colored_ = false;
  bool g_node_ = false;
};

}  // namespace cg

// Phase boundaries shared by all corrected-gossip variants.
//
// Derived from the virtual time-counter algebra of Algorithms 1-3
// (see DESIGN.md Section 2 for the step model):
//   * gossip emissions occur at steps 1 .. T-1 (root colored at step 0,
//     a node colored at step c emits from step c+1, emission allowed
//     while the emission step is < T);
//   * the last gossip message is emitted at step T-1 and lands at step
//     T-1 + (L/O+1) = T + L/O, so every g-node is known by then;
//   * the correction phase's first emission is at step T + L/O + 1
//     (a node colored at exactly step T + L/O can emit from that step too,
//     so all g-nodes start the correction synchronously).
#pragma once

#include "common/types.hpp"
#include "proto/message.hpp"
#include "sim/logp.hpp"

namespace cg {

/// Last step at which a gossip message can arrive (end of coloring by gossip).
constexpr Step gossip_drain_end(Step T, const LogP& p) { return T + p.l_over_o; }

/// First correction-phase emission step.
constexpr Step corr_start(Step T, const LogP& p) { return T + p.delivery_delay(); }

/// The ONE message shape every plain-gossip emission uses (GOS and the
/// gossip phase of OCG/CCG/FCG): kGossip carrying the virtual time.  The
/// sharded engine's batched gossip sweep emits this directly for nodes
/// reporting in_plain_gossip(now), bypassing the per-node on_tick - the
/// protocols' own ticks must build exactly this message for the fast
/// path to be behavior-preserving (tests/test_sharded_engine.cpp).
constexpr Message plain_gossip_msg(Step now) {
  Message m;
  m.tag = Tag::kGossip;
  m.time = now;
  return m;
}

}  // namespace cg

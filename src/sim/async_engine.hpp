// Event-driven execution of the same protocol state machines the stepped
// engine runs, built on the EventQueue kernel.
//
// Instead of advancing a global step loop over all N nodes, this engine
// schedules one event per (node, step) for ACTIVE nodes only, plus one
// event per message delivery.  Time is tripled internally so that each
// step's phases fire in the stepped engine's order no matter how events
// were inserted: crashes and arrivals at 3s, one-per-step inbox pops at
// 3s + 1, ticks at 3s + 2.  That makes the execution EXACTLY equivalent to
// the stepped engine - tests/test_async_engine.cpp and
// tests/test_engine_parity.cpp assert identical metrics.  The event-driven
// form is the natural host for future irregular-time extensions (g > 0,
// per-node clock drift) and is faster when only a small fraction of nodes
// is active for long stretches.
//
// The model itself (delays/jitter/loss, node lifecycle, emission gate,
// metrics finalization, Ctx surface) is shared with the other engines via
// src/sim/core/ - this file only schedules.
#pragma once

#include <algorithm>
#include <deque>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/core/basic_ctx.hpp"
#include "sim/core/network_model.hpp"
#include "sim/core/node_state.hpp"
#include "sim/core/profile.hpp"
#include "sim/core/run_config.hpp"
#include "sim/core/send_gate.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace cg {

template <class Node>
class AsyncEngine {
 public:
  using Params = typename Node::Params;
  using Ctx = BasicCtx<AsyncEngine>;

  AsyncEngine(RunConfig cfg, Params params)
      : cfg_(std::move(cfg)), params_(std::move(params)) {
    CG_CHECK(cfg_.n >= 1);
    CG_CHECK(cfg_.root >= 0 && cfg_.root < cfg_.n);
    cfg_.logp.validate();
  }

  RunMetrics run();

  const Node& node(NodeId i) const { return nodes_[static_cast<std::size_t>(i)]; }

  // --- BasicCtx hooks (protocol-facing; not part of the public API) ------
  Step ctx_now() const { return step_now(); }
  const RunConfig& ctx_cfg() const { return cfg_; }
  Xoshiro256& ctx_rng(NodeId i) { return rng_[static_cast<std::size_t>(i)]; }
  void ctx_send(NodeId from, NodeId to, const Message& m) {
    do_send(from, to, m);
  }
  void ctx_activate(NodeId i) { do_activate(i); }
  void ctx_mark_colored(NodeId i) {
    if (store_.mark_colored(i, step_now()))
      trace({step_now(), TraceEvent::Kind::kColored, i, kNoNode, Tag::kGossip});
  }
  void ctx_deliver(NodeId i) {
    if (store_.mark_delivered(i, step_now()))
      trace({step_now(), TraceEvent::Kind::kDelivered, i, kNoNode,
             Tag::kGossip});
  }
  void ctx_complete(NodeId i) {
    if (store_.complete(i, step_now()).changed)
      trace({step_now(), TraceEvent::Kind::kComplete, i, kNoNode, Tag::kGossip});
  }
  bool ctx_colored(NodeId i) const { return store_.colored(i); }
  void ctx_note_dropped(NodeId) { counts_.add_dropped(); }

 private:
  // Phases within a step (internal time = step * kPhases + phase).  Keeping
  // pops on their own phase means a pop event never races an arrival event
  // for the same step on heap insertion order.
  static constexpr Step kPhases = 3;
  static constexpr Step kPhaseArrive = 0;  // crashes, then message arrivals
  static constexpr Step kPhaseRx = 1;      // kOnePerStep inbox pops
  static constexpr Step kPhaseTick = 2;    // on_tick for active nodes

  Step step_now() const { return q_.now() / kPhases; }

  void do_send(NodeId from, NodeId to, const Message& m) {
    CG_CHECK(to >= 0 && to < cfg_.n);
    CG_CHECK_MSG(to != from, "node sent a message to itself");
    const Step now = step_now();
    gate_.on_send(from, now);
    counts_.add(m);
    if (cfg_.trace != nullptr)
      trace({now, TraceEvent::Kind::kSend, from, to, m.tag});

    const Step at = net_.route(from, to, now);
    if (at == NetworkModel::kLost) {  // lost on the wire (counted)
      trace({now, TraceEvent::Kind::kLost, from, to, m.tag});
      return;
    }

    Message out = m;
    out.src = from;
    q_.schedule_at(at * kPhases + kPhaseArrive,
                   [this, to, out] { on_arrival(to, out); });
  }

  void on_arrival(NodeId to, const Message& m) {
    if (cfg_.rx == RxPolicy::kDrainAll) {
      dispatch(to, m);
      return;
    }
    // kOnePerStep: queue the message; same-step arrivals keep the canonical
    // rx order within the inbox tail so every engine defers the same one.
    const Step s = step_now();
    const auto idx = static_cast<std::size_t>(to);
    auto& box = inbox_[idx];
    if (inbox_stamp_[idx] != s) {
      inbox_stamp_[idx] = s;
      inbox_tail_[idx] = box.size();
    }
    const auto tail = box.begin() + static_cast<std::ptrdiff_t>(inbox_tail_[idx]);
    box.insert(std::upper_bound(tail, box.end(), m, rx_order_before), m);
    if (rx_sched_[idx] == kNever) {
      const Step at = std::max(s, rx_next_[idx]);
      rx_sched_[idx] = at;
      schedule_rx(to, at);
    }
  }

  void schedule_rx(NodeId i, Step at_step) {
    q_.schedule_at(at_step * kPhases + kPhaseRx, [this, i, at_step] {
      const auto idx = static_cast<std::size_t>(i);
      rx_next_[idx] = at_step + 1;
      auto& box = inbox_[idx];
      const Message m = box.front();
      box.pop_front();
      if (box.empty()) {
        rx_sched_[idx] = kNever;
      } else {
        rx_sched_[idx] = at_step + 1;
        schedule_rx(i, at_step + 1);
      }
      dispatch(i, m);
    });
  }

  void dispatch(NodeId to, const Message& m) {
    if (!store_.alive(to) || store_.done(to)) return;  // dropped
    do_activate(to);
    if (cfg_.trace != nullptr)
      trace({step_now(), TraceEvent::Kind::kDeliver, to, m.src, m.tag});
    if (cfg_.profile != nullptr) ++cfg_.profile->callbacks_receive;
    Ctx ctx(*this, to);
    nodes_[static_cast<std::size_t>(to)].on_receive(ctx, m);
  }

  void do_activate(NodeId i) {
    if (!store_.activate(i, step_now())) return;
    // First tick one step after activation (receive overhead O) - the
    // stepped engine's activated_at_ == step tick skip.
    schedule_tick(i, step_now() + 1);
  }

  void schedule_tick(NodeId i, Step at_step) {
    q_.schedule_at(at_step * kPhases + kPhaseTick, [this, i, at_step] {
      const auto idx = static_cast<std::size_t>(i);
      if (!store_.alive(i) || store_.done(i)) return;
      if (crash_at_[idx] <= at_step) {
        kill(i);
        return;
      }
      if (cfg_.profile != nullptr) ++cfg_.profile->callbacks_tick;
      Ctx ctx(*this, i);
      nodes_[idx].on_tick(ctx);
      if (store_.state(i) == NodeRunState::kActive) schedule_tick(i, at_step + 1);
    });
  }

  void kill(NodeId i) {
    if (store_.kill(i).changed)
      trace({step_now(), TraceEvent::Kind::kFail, i, kNoNode, Tag::kGossip});
  }

  void revive(NodeId i) {
    if (!store_.revive(i)) return;
    // Fresh protocol instance; passive until its first receive (no
    // on_start).  Clearing crash_at_ lets post-restart activation ticks
    // run instead of re-killing the node.
    nodes_[static_cast<std::size_t>(i)] = Node(params_, i, cfg_.n);
    crash_at_[static_cast<std::size_t>(i)] = kNever;
    trace({step_now(), TraceEvent::Kind::kRestart, i, kNoNode, Tag::kGossip});
  }

  void trace(TraceEvent ev) {
    if (cfg_.trace != nullptr) cfg_.trace->on_event(ev);
  }

  RunConfig cfg_;
  Params params_;
  EventQueue q_;
  std::vector<Node> nodes_;
  std::vector<Xoshiro256> rng_;
  NetworkModel net_;
  NodeStateStore store_;
  SendGate gate_;
  MessageCounts counts_;
  std::vector<Step> crash_at_;
  std::vector<std::deque<Message>> inbox_;  // kOnePerStep only
  std::vector<Step> inbox_stamp_;           // kOnePerStep scratch
  std::vector<std::size_t> inbox_tail_;     // kOnePerStep scratch
  std::vector<Step> rx_next_;               // next step a pop is allowed
  std::vector<Step> rx_sched_;              // scheduled pop step, or kNever
  RunMetrics metrics_{};
};

template <class Node>
RunMetrics AsyncEngine<Node>::run() {
  const auto n = static_cast<std::size_t>(cfg_.n);
  nodes_.clear();
  nodes_.reserve(n);
  for (NodeId i = 0; i < cfg_.n; ++i) nodes_.emplace_back(params_, i, cfg_.n);
  rng_.clear();
  rng_.reserve(n);
  for (NodeId i = 0; i < cfg_.n; ++i)
    rng_.emplace_back(derive_seed(cfg_.seed, static_cast<std::uint64_t>(i)));
  net_.reset(cfg_);
  store_.reset(cfg_.n);
  gate_.reset(cfg_.n);
  counts_ = MessageCounts{};
  crash_at_.assign(n, kNever);
  if (cfg_.rx == RxPolicy::kOnePerStep) {
    inbox_.assign(n, {});
    inbox_stamp_.assign(n, -1);
    inbox_tail_.assign(n, 0);
    rx_next_.assign(n, 0);
    rx_sched_.assign(n, kNever);
  }
  metrics_ = RunMetrics{};

  for (const NodeId i : cfg_.failures.pre_failed) store_.pre_fail(i);
  CG_CHECK_MSG(store_.alive(cfg_.root), "root must be active at start");
  for (const auto& of : cfg_.failures.online) {
    auto& c = crash_at_[static_cast<std::size_t>(of.node)];
    c = std::min(c, of.at_step);
    // A crash event guarantees the node dies even if it has no tick
    // pending (idle nodes); fire in the arrival phase of the crash step,
    // before that step's deliveries (these events are scheduled first, so
    // FIFO-within-time runs them ahead of any arrival).
    q_.schedule_at(std::max<Step>(of.at_step, 0) * kPhases + kPhaseArrive,
                   [this, node = of.node] { kill(node); });
  }
  // Restart downs after online crashes, revivals after all crashes - the
  // same same-step order the stepped engine applies.
  for (const auto& r : cfg_.failures.restarts) {
    auto& c = crash_at_[static_cast<std::size_t>(r.node)];
    c = std::min(c, r.down_at);
    q_.schedule_at(std::max<Step>(r.down_at, 0) * kPhases + kPhaseArrive,
                   [this, node = r.node] { kill(node); });
  }
  for (const auto& r : cfg_.failures.restarts)
    q_.schedule_at(r.up_at * kPhases + kPhaseArrive,
                   [this, node = r.node] { revive(node); });

  EngineProfile* prof = cfg_.profile;
  if (prof != nullptr) *prof = EngineProfile{};
  const auto prof_run0 = ProfileClock::now();

  // Root is active from step 0; everyone alive gets on_start.
  store_.activate(cfg_.root, 0);
  schedule_tick(cfg_.root, 1);
  for (NodeId i = 0; i < cfg_.n; ++i) {
    if (!store_.alive(i)) continue;
    if (prof != nullptr) ++prof->callbacks_start;
    Ctx ctx(*this, i);
    nodes_[static_cast<std::size_t>(i)].on_start(ctx);
  }

  // Two copies of the drain loop so the profiled path costs the common
  // case nothing at all (not even a branch per event).
  const Step max_steps = cfg_.effective_max_steps();
  if (prof != nullptr) {
    while (!q_.empty()) {
      // Attribute each handler's wall time to the internal phase it fired
      // in: arrivals / rx pops -> deliver, ticks -> tick.
      const auto t0 = ProfileClock::now();
      q_.run_one();
      const double dt = ProfileClock::seconds_since(t0);
      if (q_.now() % kPhases == kPhaseTick)
        prof->tick_s += dt;
      else
        prof->deliver_s += dt;
      if (step_now() >= max_steps) {
        metrics_.hit_max_steps = true;
        break;
      }
    }
  } else {
    while (!q_.empty()) {
      q_.run_one();
      if (step_now() >= max_steps) {
        metrics_.hit_max_steps = true;
        break;
      }
    }
  }

  if (prof != nullptr) {
    prof->steps = step_now();
    prof->wall_s = ProfileClock::seconds_since(prof_run0);
  }
  counts_.merge_into(metrics_);
  store_.finalize(metrics_, cfg_.root, step_now(), cfg_.record_node_detail);
  return metrics_;
}

}  // namespace cg

// Event-driven execution of the same protocol state machines the stepped
// engine runs, built on the calendar-queue EventQueue kernel.
//
// Instead of advancing a global step loop over all N nodes, this engine
// schedules events for ACTIVE nodes only.  Time is tripled internally so
// that each step's phases fire in the stepped engine's order no matter how
// events were inserted: crashes and arrivals at 3s, one-per-step inbox
// pops at 3s + 1, ticks at 3s + 2.  That makes the execution EXACTLY
// equivalent to the stepped engine - tests/test_async_engine.cpp and
// tests/test_engine_parity.cpp assert identical metrics and byte-identical
// canonical traces.  The event-driven form is the natural host for future
// irregular-time extensions (g > 0, per-node clock drift) and is faster
// when only a small fraction of nodes is active for long stretches.
//
// Hot-path structure (see docs/PERF.md for the design rationale and the
// before/after numbers):
//   * messages do NOT ride the event queue.  do_send appends the message
//     to a delivery-calendar ring slot (the stepped engine's scheme) and
//     schedules at most ONE kernel event per (arrival step): a sweep that
//     dispatches the whole slot in send order.  Same-step deliveries are
//     batched per step, not re-entered per message;
//   * ticks are batched the same way: nodes due to tick at a step go on
//     that step's list and ONE kernel event runs the list (same-step tick
//     order is immaterial - every node draws from its own RNG stream);
//   * kOnePerStep inbox pops are one kernel event per (node, step with
//     backlog), scheduled from the sweep, not from each arrival;
//   * every handler captures only `this` plus ids, so it fits the
//     kernel's inline slot storage - the steady-state path performs zero
//     heap allocations (EngineProfile::queue_slot_capacity plateaus).
//
// The queue horizon is bounded: arrivals land within NetworkModel::
// max_delay() steps of the send and ticks/pops one step ahead, so the
// kernel ring is sized once per run and far-future overflow only ever
// holds the failure schedule.  The model itself (delays/jitter/loss, node
// lifecycle, emission gate, metrics finalization, Ctx surface) is shared
// with the other engines via src/sim/core/ - this file only schedules.
#pragma once

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "obs/telemetry.hpp"
#include "sim/core/basic_ctx.hpp"
#include "sim/core/inbox.hpp"
#include "sim/core/network_model.hpp"
#include "sim/core/node_state.hpp"
#include "sim/core/profile.hpp"
#include "sim/core/run_config.hpp"
#include "sim/core/send_gate.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace cg {

template <class Node>
class AsyncEngine {
 public:
  using Params = typename Node::Params;
  using Ctx = BasicCtx<AsyncEngine>;

  AsyncEngine(RunConfig cfg, Params params)
      : cfg_(std::move(cfg)), params_(std::move(params)) {
    CG_CHECK(cfg_.n >= 1);
    CG_CHECK(cfg_.root >= 0 && cfg_.root < cfg_.n);
    cfg_.logp.validate();
  }

  RunMetrics run();

  const Node& node(NodeId i) const { return nodes_[static_cast<std::size_t>(i)]; }

  // --- BasicCtx hooks (protocol-facing; not part of the public API) ------
  Step ctx_now() const { return step_now(); }
  const RunConfig& ctx_cfg() const { return cfg_; }
  Xoshiro256& ctx_rng(NodeId i) { return rng_[static_cast<std::size_t>(i)]; }
  void ctx_send(NodeId from, NodeId to, const Message& m) {
    do_send(from, to, m);
  }
  void ctx_activate(NodeId i) { do_activate(i); }
  void ctx_mark_colored(NodeId i) {
    if (store_.mark_colored(i, step_now(), rx_payload_)) {
      trace({step_now(), TraceEvent::Kind::kColored, i, kNoNode, Tag::kGossip});
      if (cfg_.telemetry != nullptr)
        cfg_.telemetry->record_colored(0, step_now());
    }
  }
  void ctx_adopt_payload(NodeId i, std::uint32_t d) {
    store_.set_held_payload(i, d);
  }
  void ctx_deliver(NodeId i) {
    if (store_.mark_delivered(i, step_now()))
      trace({step_now(), TraceEvent::Kind::kDelivered, i, kNoNode,
             Tag::kGossip});
  }
  void ctx_complete(NodeId i) {
    if (store_.complete(i, step_now()).changed)
      trace({step_now(), TraceEvent::Kind::kComplete, i, kNoNode, Tag::kGossip});
  }
  bool ctx_colored(NodeId i) const { return store_.colored(i); }
  void ctx_note_dropped(NodeId) { counts_.add_dropped(); }

 private:
  struct Delivery {
    NodeId to;
    Message msg;
  };

  // Phases within a step (internal time = step * kPhases + phase).  Keeping
  // pops on their own phase means a pop event never races an arrival event
  // for the same step on bucket insertion order.
  static constexpr Step kPhases = 3;
  static constexpr Step kPhaseArrive = 0;  // crashes, then delivery sweeps
  static constexpr Step kPhaseRx = 1;      // kOnePerStep inbox pops
  static constexpr Step kPhaseTick = 2;    // on_tick for active nodes

  Step step_now() const { return q_.now() / kPhases; }

  void do_send(NodeId from, NodeId to, const Message& m) {
    CG_CHECK(to >= 0 && to < cfg_.n);
    CG_CHECK_MSG(to != from, "node sent a message to itself");
    const Step now = step_now();
    gate_.on_send(from, now);
    Message adv = m;
    if (adv.payload == 0) adv.payload = store_.held_payload(from);
    if (byz_.any()) {
      const ByzAction act = byz_.transform(from, to, adv, now);
      if (act == ByzAction::kSuppressed) {
        counts_.add_suppressed();
        return;  // swallowed at the sender: no send/lost trace, no route
      }
      if (act == ByzAction::kEquivocated) counts_.add_equivocated();
      if (act == ByzAction::kForged) counts_.add_forged();
      counts_.add(adv);
      if (cfg_.trace != nullptr) {
        trace({now, TraceEvent::Kind::kSend, from, to, adv.tag});
        if (act == ByzAction::kEquivocated)
          trace({now, TraceEvent::Kind::kEquivocated, from, to, adv.tag});
        else if (act == ByzAction::kForged)
          trace({now, TraceEvent::Kind::kForged, from, to, adv.tag});
      }
    } else {
      counts_.add(adv);
      if (cfg_.trace != nullptr)
        trace({now, TraceEvent::Kind::kSend, from, to, adv.tag});
    }

    const Step at = net_.route(from, to, now);
    if (at == NetworkModel::kLost) {  // lost on the wire (counted)
      trace({now, TraceEvent::Kind::kLost, from, to, adv.tag});
      return;
    }

    // Append to the delivery calendar; one sweep event per arrival step
    // dispatches the whole slot (the slot's stamp dedups the event).
    const auto slot = static_cast<std::size_t>(at) & cal_mask_;
    Message out = adv;
    out.src = from;
    calendar_[slot].push_back({to, out});
    if (cal_stamp_[slot] != at) {
      cal_stamp_[slot] = at;
      q_.schedule_at(at * kPhases + kPhaseArrive,
                     [this, at] { on_sweep(at); });
    }
  }

  /// Deliver every message that arrives at step `s`, in send order - the
  /// stepped engine's per-slot order, so per-node receive sequences match.
  void on_sweep(Step s) {
    const auto slot = static_cast<std::size_t>(s) & cal_mask_;
    due_.clear();
    due_.swap(calendar_[slot]);
    if (cfg_.rx == RxPolicy::kDrainAll) {
      for (const auto& d : due_) dispatch(d.to, d.msg);
      return;
    }
    // kOnePerStep: stage this step's arrivals per inbox, canonically order
    // each touched tail, then make sure a pop chain is running.
    for (const auto& d : due_) {
      const auto idx = static_cast<std::size_t>(d.to);
      if (inbox_stamp_[idx] != s) {
        inbox_stamp_[idx] = s;
        inbox_tail_[idx] = inbox_[idx].size();
      }
      inbox_[idx].push_back(d.msg);
    }
    for (const auto& d : due_) {
      const auto idx = static_cast<std::size_t>(d.to);
      if (inbox_stamp_[idx] != s) continue;  // tail already handled
      inbox_stamp_[idx] = -1;
      auto& box = inbox_[idx];
      std::sort(box.at(inbox_tail_[idx]), box.end(), rx_order_before);
      if (rx_sched_[idx] == kNever) {
        const Step at = std::max(s, rx_next_[idx]);
        rx_sched_[idx] = at;
        schedule_rx(d.to, at);
      }
    }
  }

  void schedule_rx(NodeId i, Step at_step) {
    q_.schedule_at(at_step * kPhases + kPhaseRx, [this, i, at_step] {
      const auto idx = static_cast<std::size_t>(i);
      rx_next_[idx] = at_step + 1;
      auto& box = inbox_[idx];
      const Message m = box.front();
      box.pop_front();
      if (box.empty()) {
        rx_sched_[idx] = kNever;
      } else {
        rx_sched_[idx] = at_step + 1;
        schedule_rx(i, at_step + 1);
      }
      dispatch(i, m);
    });
  }

  void dispatch(NodeId to, const Message& m) {
    if (!store_.alive(to) || store_.done(to)) return;  // dropped
    do_activate(to);
    if (cfg_.trace != nullptr)
      trace({step_now(), TraceEvent::Kind::kDeliver, to, m.src, m.tag});
    if (cfg_.telemetry != nullptr)
      cfg_.telemetry->record_delivery(0, to, step_now());
    if (cfg_.profile != nullptr) ++cfg_.profile->callbacks_receive;
    Ctx ctx(*this, to);
    rx_payload_ = m.payload;  // ambient digest for ctx_mark_colored
    nodes_[static_cast<std::size_t>(to)].on_receive(ctx, m);
    rx_payload_ = 0;
  }

  void do_activate(NodeId i) {
    if (!store_.activate(i, step_now())) return;
    // First tick one step after activation (receive overhead O) - the
    // stepped engine's activated_at_ == step tick skip.
    schedule_tick(i, step_now() + 1);
  }

  /// Ticks are batched like deliveries: nodes due to tick at a step go on
  /// that step's list, and ONE kernel event runs the whole list.  Within a
  /// step, tick order is immaterial to every protocol invariant (each node
  /// draws from its own RNG stream; same-step arrivals are canonically
  /// reordered), which the cross-engine byte-parity tests exercise.
  void schedule_tick(NodeId i, Step at_step) {
    CG_CHECK(at_step > step_now());  // ring holds at most one future step
    const auto slot = static_cast<std::size_t>(at_step) & kTickMask;
    tick_cal_[slot].push_back(i);
    if (tick_stamp_[slot] != at_step) {
      tick_stamp_[slot] = at_step;
      q_.schedule_at(at_step * kPhases + kPhaseTick,
                     [this, at_step] { on_tick_sweep(at_step); });
    }
  }

  void on_tick_sweep(Step s) {
    tick_due_.clear();
    tick_due_.swap(tick_cal_[static_cast<std::size_t>(s) & kTickMask]);
    EngineProfile* const prof = cfg_.profile;
    for (const NodeId i : tick_due_) {
      const auto idx = static_cast<std::size_t>(i);
      if (!store_.alive(i) || store_.done(i)) continue;
      if (crash_at_[idx] <= s) {
        kill(i);
        continue;
      }
      if (prof != nullptr) ++prof->callbacks_tick;
      Ctx ctx(*this, i);
      nodes_[idx].on_tick(ctx);
      if (store_.state(i) == NodeRunState::kActive) schedule_tick(i, s + 1);
    }
  }

  void kill(NodeId i) {
    if (store_.kill(i).changed)
      trace({step_now(), TraceEvent::Kind::kFail, i, kNoNode, Tag::kGossip});
  }

  void revive(NodeId i) {
    if (!store_.revive(i)) return;
    // Fresh protocol instance; passive until its first receive (no
    // on_start).  Clearing crash_at_ lets post-restart activation ticks
    // run instead of re-killing the node.
    nodes_[static_cast<std::size_t>(i)] = Node(params_, i, cfg_.n);
    crash_at_[static_cast<std::size_t>(i)] = kNever;
    trace({step_now(), TraceEvent::Kind::kRestart, i, kNoNode, Tag::kGossip});
  }

  void trace(TraceEvent ev) {
    if (cfg_.trace != nullptr) cfg_.trace->on_event(ev);
  }

  RunConfig cfg_;
  Params params_;
  EventQueue q_;
  std::vector<Node> nodes_;
  std::vector<Xoshiro256> rng_;
  NetworkModel net_;
  NodeStateStore store_;
  SendGate gate_;
  ByzantineModel byz_;
  std::uint32_t rx_payload_ = 0;  ///< digest of the message being dispatched
  MessageCounts counts_;
  std::vector<Step> crash_at_;
  std::vector<std::vector<Delivery>> calendar_;  // power-of-two ring by step
  std::vector<Step> cal_stamp_;  // step a slot's sweep event targets
  std::size_t cal_mask_ = 0;
  std::vector<Delivery> due_;    // sweep scratch
  // Tick calendar: ticks are only ever scheduled one step ahead, so a tiny
  // ring suffices (kTickMask + 1 slots, power of two).
  static constexpr std::size_t kTickMask = 3;
  std::array<std::vector<NodeId>, kTickMask + 1> tick_cal_;
  std::array<Step, kTickMask + 1> tick_stamp_;
  std::vector<NodeId> tick_due_;  // tick sweep scratch
  std::vector<InboxBuf> inbox_;   // kOnePerStep only
  std::vector<Step> inbox_stamp_;            // kOnePerStep scratch
  std::vector<std::size_t> inbox_tail_;      // kOnePerStep scratch
  std::vector<Step> rx_next_;                // next step a pop is allowed
  std::vector<Step> rx_sched_;               // scheduled pop step, or kNever
  // Online-failure crash events still pending.  The stepped engine stops at
  // quiescence without applying later-scheduled crashes, so the drain loop
  // must not let these keep the simulation alive (kill events create no
  // work; revive events do, and are NOT counted here - the stepped engine
  // runs on until every restart has happened).
  std::vector<EventQueue::EventId> online_kill_ids_;
  std::int64_t pending_online_kills_ = 0;
  RunMetrics metrics_{};
};

template <class Node>
RunMetrics AsyncEngine<Node>::run() {
  const auto n = static_cast<std::size_t>(cfg_.n);
  nodes_.clear();
  nodes_.reserve(n);
  for (NodeId i = 0; i < cfg_.n; ++i) nodes_.emplace_back(params_, i, cfg_.n);
  rng_.clear();
  rng_.reserve(n);
  for (NodeId i = 0; i < cfg_.n; ++i)
    rng_.emplace_back(derive_seed(cfg_.seed, static_cast<std::uint64_t>(i)));
  net_.reset(cfg_);
  store_.reset(cfg_.n);
  gate_.reset(cfg_.n);
  byz_.reset(cfg_.n, cfg_.root, cfg_.seed, cfg_.byzantine);
  for (const auto& b : cfg_.byzantine.nodes) store_.mark_byzantine(b.node);
  rx_payload_ = 0;
  counts_ = MessageCounts{};
  crash_at_.assign(n, kNever);
  // Delivery calendar: a power-of-two ring strictly larger than the max
  // send-to-delivery delay, so an in-flight step maps to a unique slot.
  std::size_t cal_size = 4;
  while (cal_size < static_cast<std::size_t>(net_.max_delay()) + 2)
    cal_size *= 2;
  cal_mask_ = cal_size - 1;
  calendar_.assign(cal_size, {});
  cal_stamp_.assign(cal_size, -1);
  due_.clear();
  for (auto& slot : tick_cal_) slot.clear();
  tick_stamp_.fill(-1);
  tick_due_.clear();
  // Kernel ring: every steady-state event (sweep, pop, tick) lands within
  // max_delay + 1 steps of now; only the failure schedule overflows.
  q_.reset((net_.max_delay() + 2) * kPhases);
  if (cfg_.rx == RxPolicy::kOnePerStep) {
    inbox_.assign(n, {});
    inbox_stamp_.assign(n, -1);
    inbox_tail_.assign(n, 0);
    rx_next_.assign(n, 0);
    rx_sched_.assign(n, kNever);
  }
  metrics_ = RunMetrics{};

  for (const NodeId i : cfg_.failures.pre_failed) store_.pre_fail(i);
  CG_CHECK_MSG(store_.alive(cfg_.root), "root must be active at start");
  online_kill_ids_.clear();
  pending_online_kills_ = 0;
  for (const auto& of : cfg_.failures.online) {
    auto& c = crash_at_[static_cast<std::size_t>(of.node)];
    c = std::min(c, of.at_step);
    // A crash event guarantees the node dies even if it has no tick
    // pending (idle nodes); fire in the arrival phase of the crash step,
    // before that step's deliveries (these events are scheduled first, so
    // FIFO-within-time runs them ahead of any delivery sweep).
    ++pending_online_kills_;
    online_kill_ids_.push_back(q_.schedule_at(
        std::max<Step>(of.at_step, 0) * kPhases + kPhaseArrive,
        [this, node = of.node] {
          --pending_online_kills_;
          kill(node);
        }));
  }
  // Restart downs after online crashes, revivals after all crashes - the
  // same same-step order the stepped engine applies.
  for (const auto& r : cfg_.failures.restarts) {
    auto& c = crash_at_[static_cast<std::size_t>(r.node)];
    c = std::min(c, r.down_at);
    q_.schedule_at(std::max<Step>(r.down_at, 0) * kPhases + kPhaseArrive,
                   [this, node = r.node] { kill(node); });
  }
  for (const auto& r : cfg_.failures.restarts)
    q_.schedule_at(r.up_at * kPhases + kPhaseArrive,
                   [this, node = r.node] { revive(node); });

  EngineProfile* prof = cfg_.profile;
  if (prof != nullptr) *prof = EngineProfile{};
  if (cfg_.telemetry != nullptr) cfg_.telemetry->attach(cfg_.n, 1);
  const auto prof_run0 = ProfileClock::now();

  // Root is active from step 0; everyone alive gets on_start.
  store_.activate(cfg_.root, 0);
  schedule_tick(cfg_.root, 1);
  for (NodeId i = 0; i < cfg_.n; ++i) {
    if (!store_.alive(i)) continue;
    if (prof != nullptr) ++prof->callbacks_start;
    Ctx ctx(*this, i);
    nodes_[static_cast<std::size_t>(i)].on_start(ctx);
  }

  // Two copies of the drain loop so the profiled path costs the common
  // case nothing at all (not even a branch per event).
  // Drain until the only events left are crashes of nodes nobody will ever
  // hear from again (see online_kill_ids_): the stepped engine's
  // quiescence rule, expressed in queue terms.
  const Step max_steps = cfg_.effective_max_steps();
  const auto work_pending = [this] {
    return q_.pending() > static_cast<std::size_t>(pending_online_kills_);
  };
  if (prof != nullptr) {
    std::int64_t hb_ctr = 0;
    while (work_pending()) {
      // Attribute each handler's wall time to the internal phase it fired
      // in: delivery sweeps / rx pops -> deliver, ticks -> tick.
      const auto t0 = ProfileClock::now();
      q_.run_one();
      const double dt = ProfileClock::seconds_since(t0);
      if (q_.now() % kPhases == kPhaseTick)
        prof->tick_s += dt;
      else
        prof->deliver_s += dt;
      if (step_now() >= max_steps) {
        metrics_.hit_max_steps = true;
        break;
      }
      if (cfg_.heartbeat != nullptr && ((++hb_ctr & 8191) == 0))
        cfg_.heartbeat->beat(step_now(), max_steps, 0);
    }
  } else {
    std::int64_t hb_ctr = 0;  // clock reads per event would be too hot
    while (work_pending()) {
      q_.run_one();
      if (step_now() >= max_steps) {
        metrics_.hit_max_steps = true;
        break;
      }
      if (cfg_.heartbeat != nullptr && ((++hb_ctr & 8191) == 0))
        cfg_.heartbeat->beat(step_now(), max_steps, 0);
    }
  }
  // Cancel unreached crash events so the kernel ledger balances (ids of
  // already-fired kills are stale and rejected by the generation check).
  for (const EventQueue::EventId id : online_kill_ids_) q_.cancel(id);

  if (prof != nullptr) {
    prof->steps = step_now();
    prof->wall_s = ProfileClock::seconds_since(prof_run0);
    const EventQueue::Stats& qs = q_.stats();
    prof->events_scheduled = qs.scheduled;
    prof->events_fired = qs.fired;
    prof->events_cancelled = qs.cancelled;
    prof->queue_max_bucket = qs.max_bucket;
    prof->queue_slot_capacity = static_cast<std::int64_t>(q_.slot_capacity());
    std::size_t fp = nodes_.capacity() * sizeof(Node) +
                     rng_.capacity() * sizeof(Xoshiro256) +
                     store_.footprint_bytes() +
                     crash_at_.capacity() * sizeof(Step) +
                     cal_stamp_.capacity() * sizeof(Step) +
                     due_.capacity() * sizeof(Delivery) +
                     (inbox_stamp_.capacity() + rx_next_.capacity() +
                      rx_sched_.capacity()) *
                         sizeof(Step) +
                     inbox_tail_.capacity() * sizeof(std::size_t);
    for (const auto& slot : calendar_) fp += slot.capacity() * sizeof(Delivery);
    for (const auto& tc : tick_cal_) fp += tc.capacity() * sizeof(NodeId);
    fp += tick_due_.capacity() * sizeof(NodeId);
    for (const auto& ib : inbox_) fp += ib.capacity() * sizeof(Message);
    prof->bytes_per_node =
        static_cast<std::int64_t>(fp / static_cast<std::size_t>(cfg_.n));
    prof->peak_rss_bytes = current_peak_rss_bytes();
  }
  counts_.merge_into(metrics_);
  store_.finalize(metrics_, cfg_.root, step_now(), cfg_.record_node_detail);
  if (cfg_.telemetry != nullptr) cfg_.telemetry->finish_run(metrics_);
  return metrics_;
}

}  // namespace cg

// Event-driven execution of the same protocol state machines the stepped
// engine runs, built on the EventQueue kernel.
//
// Instead of advancing a global step loop over all N nodes, this engine
// schedules one event per (node, step) for ACTIVE nodes only, plus one
// event per message delivery.  Time is doubled internally so that all
// deliveries of a step fire before that step's ticks (even time = phase A,
// odd = phase B), which makes the execution EXACTLY equivalent to the
// stepped engine - the tests assert identical metrics.  The event-driven
// form is the natural host for future irregular-time extensions (g > 0,
// per-node clock drift) and is faster when only a small fraction of nodes
// is active for long stretches.
#pragma once

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"

namespace cg {

template <class Node>
class AsyncEngine {
 public:
  using Params = typename Node::Params;

  AsyncEngine(RunConfig cfg, Params params)
      : cfg_(std::move(cfg)), params_(std::move(params)) {
    CG_CHECK(cfg_.n >= 1);
    CG_CHECK(cfg_.root >= 0 && cfg_.root < cfg_.n);
    CG_CHECK_MSG(cfg_.rx == RxPolicy::kDrainAll,
                 "AsyncEngine models drain-all receives only");
    cfg_.logp.validate();
  }

  class Ctx {
   public:
    Step now() const { return eng_.q_.now() / 2; }
    NodeId self() const { return self_; }
    NodeId n() const { return eng_.cfg_.n; }
    NodeId root() const { return eng_.cfg_.root; }
    bool is_root() const { return self_ == eng_.cfg_.root; }
    const LogP& logp() const { return eng_.cfg_.logp; }
    Xoshiro256& rng() { return eng_.rng_[static_cast<std::size_t>(self_)]; }

    void send(NodeId to, const Message& m) { eng_.do_send(self_, to, m); }
    void activate() { eng_.do_activate(self_); }
    void mark_colored() { eng_.mark(eng_.colored_at_, self_); }
    void deliver() { eng_.mark(eng_.delivered_at_, self_); }
    void complete() { eng_.do_complete(self_); }
    bool colored() const {
      return eng_.colored_at_[static_cast<std::size_t>(self_)] != kNever;
    }

   private:
    friend class AsyncEngine;
    Ctx(AsyncEngine& e, NodeId self) : eng_(e), self_(self) {}
    AsyncEngine& eng_;
    NodeId self_;
  };

  RunMetrics run();

  const Node& node(NodeId i) const { return nodes_[static_cast<std::size_t>(i)]; }

 private:
  enum class RunState : std::uint8_t { kIdle, kActive, kDone };

  Step step_now() const { return q_.now() / 2; }

  void do_send(NodeId from, NodeId to, const Message& m) {
    CG_CHECK(to >= 0 && to < cfg_.n && to != from);
    ++metrics_.msgs_total;
    switch (m.tag) {
      case Tag::kGossip: ++metrics_.msgs_gossip; break;
      case Tag::kOcgCorr:
      case Tag::kFwd:
      case Tag::kBwd: ++metrics_.msgs_correction; break;
      case Tag::kSos: ++metrics_.msgs_sos; break;
      default: ++metrics_.msgs_tree; break;
    }
    if (cfg_.drop_prob > 0.0 &&
        loss_rng_[static_cast<std::size_t>(from)].uniform01() <
            cfg_.drop_prob) {
      return;  // lost on the wire (already counted as work)
    }
    Message out = m;
    out.src = from;
    Step delay = cfg_.logp.delivery_delay();
    if (cfg_.jitter_max > 0)
      delay += jitter_rng_[static_cast<std::size_t>(from)].uniform(
          0, cfg_.jitter_max);
    if (cfg_.link_extra) delay += cfg_.link_extra(from, to);
    const Step phase_a = (step_now() + delay) * 2;  // deliveries: even time
    q_.schedule_at(phase_a, [this, to, out] { dispatch(to, out); });
  }

  void dispatch(NodeId to, const Message& m) {
    const auto idx = static_cast<std::size_t>(to);
    if (!alive_[idx] || state_[idx] == RunState::kDone) return;
    if (state_[idx] == RunState::kIdle) do_activate(to);
    Ctx ctx(*this, to);
    nodes_[idx].on_receive(ctx, m);
  }

  void do_activate(NodeId i) {
    const auto idx = static_cast<std::size_t>(i);
    if (state_[idx] != RunState::kIdle) return;
    state_[idx] = RunState::kActive;
    // First tick one step after activation (receive overhead O).
    schedule_tick(i, step_now() + 1);
  }

  void schedule_tick(NodeId i, Step at_step) {
    q_.schedule_at(at_step * 2 + 1, [this, i, at_step] {
      const auto idx = static_cast<std::size_t>(i);
      if (!alive_[idx] || state_[idx] == RunState::kDone) return;
      if (alive_[idx] && crash_at_[idx] <= at_step) {
        kill(i);
        return;
      }
      Ctx ctx(*this, i);
      nodes_[idx].on_tick(ctx);
      if (state_[idx] == RunState::kActive) schedule_tick(i, at_step + 1);
    });
  }

  void do_complete(NodeId i) {
    const auto idx = static_cast<std::size_t>(i);
    if (state_[idx] == RunState::kDone) return;
    state_[idx] = RunState::kDone;
    completed_at_[idx] = step_now();
  }

  void kill(NodeId i) {
    const auto idx = static_cast<std::size_t>(i);
    alive_[idx] = false;
    state_[idx] = RunState::kDone;
  }

  void mark(std::vector<Step>& arr, NodeId i) {
    auto& v = arr[static_cast<std::size_t>(i)];
    if (v == kNever) v = step_now();
  }

  RunConfig cfg_;
  Params params_;
  EventQueue q_;
  std::vector<Node> nodes_;
  std::vector<Xoshiro256> rng_, jitter_rng_, loss_rng_;
  std::vector<bool> alive_;
  std::vector<RunState> state_;
  std::vector<Step> colored_at_, delivered_at_, completed_at_, crash_at_;
  RunMetrics metrics_{};
};

template <class Node>
RunMetrics AsyncEngine<Node>::run() {
  const auto n = static_cast<std::size_t>(cfg_.n);
  nodes_.clear();
  nodes_.reserve(n);
  for (NodeId i = 0; i < cfg_.n; ++i) nodes_.emplace_back(params_, i, cfg_.n);
  rng_.clear();
  rng_.reserve(n);
  for (NodeId i = 0; i < cfg_.n; ++i)
    rng_.emplace_back(derive_seed(cfg_.seed, static_cast<std::uint64_t>(i)));
  jitter_rng_.clear();
  if (cfg_.jitter_max > 0) {
    jitter_rng_.reserve(n);
    for (NodeId i = 0; i < cfg_.n; ++i)
      jitter_rng_.emplace_back(derive_seed(
          cfg_.seed, static_cast<std::uint64_t>(i) + 0x4A17E500000000ULL));
  }
  loss_rng_.clear();
  if (cfg_.drop_prob > 0.0) {
    loss_rng_.reserve(n);
    for (NodeId i = 0; i < cfg_.n; ++i)
      loss_rng_.emplace_back(derive_seed(
          cfg_.seed, static_cast<std::uint64_t>(i) + 0x10550000000000ULL));
  }
  alive_.assign(n, true);
  state_.assign(n, RunState::kIdle);
  colored_at_.assign(n, kNever);
  delivered_at_.assign(n, kNever);
  completed_at_.assign(n, kNever);
  crash_at_.assign(n, kNever);
  metrics_ = RunMetrics{};
  metrics_.n_total = cfg_.n;

  for (const NodeId i : cfg_.failures.pre_failed) {
    alive_[static_cast<std::size_t>(i)] = false;
    state_[static_cast<std::size_t>(i)] = RunState::kDone;
  }
  CG_CHECK(alive_[static_cast<std::size_t>(cfg_.root)]);
  for (const auto& of : cfg_.failures.online) {
    auto& c = crash_at_[static_cast<std::size_t>(of.node)];
    c = std::min(c, of.at_step);
    // A crash event guarantees the node dies even if it has no tick
    // pending (idle nodes); fire at phase A of the crash step.
    q_.schedule_at(std::max<Step>(of.at_step, 0) * 2,
                   [this, node = of.node] { kill(node); });
  }

  // Root is active from step 0; everyone alive gets on_start.
  state_[static_cast<std::size_t>(cfg_.root)] = RunState::kActive;
  schedule_tick(cfg_.root, 1);
  for (NodeId i = 0; i < cfg_.n; ++i) {
    if (!alive_[static_cast<std::size_t>(i)]) continue;
    Ctx ctx(*this, i);
    nodes_[static_cast<std::size_t>(i)].on_start(ctx);
  }

  const Step max_steps = cfg_.effective_max_steps();
  while (!q_.empty()) {
    q_.run_one();
    if (step_now() >= max_steps) {
      metrics_.hit_max_steps = true;
      break;
    }
  }

  // finalize (same semantics as the stepped engine)
  metrics_.t_end = step_now();
  Step last_colored = 0, last_delivered = 0, last_complete = 0;
  bool any_uncolored = false, any_undelivered = false, any_incomplete = false;
  for (NodeId i = 0; i < cfg_.n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (!alive_[idx]) continue;
    ++metrics_.n_active;
    if (colored_at_[idx] != kNever) {
      ++metrics_.n_colored;
      last_colored = std::max(last_colored, colored_at_[idx]);
      if (completed_at_[idx] != kNever)
        last_complete = std::max(last_complete, completed_at_[idx]);
      else
        any_incomplete = true;
    } else {
      any_uncolored = true;
    }
    if (delivered_at_[idx] != kNever) {
      ++metrics_.n_delivered;
      last_delivered = std::max(last_delivered, delivered_at_[idx]);
    } else {
      any_undelivered = true;
    }
  }
  metrics_.all_active_colored = !any_uncolored;
  metrics_.all_active_delivered = !any_undelivered;
  metrics_.t_last_colored = any_uncolored ? kNever : last_colored;
  metrics_.t_last_colored_partial = last_colored;
  metrics_.t_last_delivered = any_undelivered ? kNever : last_delivered;
  metrics_.t_complete = any_incomplete ? kNever : last_complete;
  metrics_.t_root_complete = completed_at_[static_cast<std::size_t>(cfg_.root)];
  metrics_.sos_triggered = metrics_.msgs_sos > 0;
  if (cfg_.record_node_detail) {
    metrics_.colored_at = colored_at_;
    metrics_.delivered_at = delivered_at_;
    metrics_.completed_at = completed_at_;
  }
  return metrics_;
}

}  // namespace cg

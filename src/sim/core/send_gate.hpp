// One-emission-per-node-per-step enforcement (the LogP overhead O charged
// per message; DESIGN.md Section 2, rule R1).
//
// Keeps one last-send step per node, so the check holds no matter how many
// nodes interleave their sends within a step.  (The previous engine kept a
// single global (node, step) slot that only remembered the LAST sender: a
// node sending twice in one step escaped detection whenever another node's
// send landed in between.)
//
// Thread-safety contract (parallel engine): on_send(from, ...) touches only
// the sender's slot, and node `from`'s callbacks run only on its owner
// worker.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace cg {

class SendGate {
 public:
  void reset(NodeId n) {
    last_send_.assign(static_cast<std::size_t>(n), kNeverSent);
  }

  /// Record an emission by `from` at step `now`; aborts on a second emission
  /// in the same step.
  void on_send(NodeId from, Step now) {
    auto& last = last_send_[static_cast<std::size_t>(from)];
    CG_CHECK_MSG(last != now, "protocol emitted >1 message in one step");
    last = now;
  }

 private:
  static constexpr Step kNeverSent = -1;  // valid steps are >= 0

  std::vector<Step> last_send_;
};

}  // namespace cg

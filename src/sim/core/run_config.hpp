// Run configuration shared by every execution engine (stepped, event-driven,
// parallel).  The engines differ only in *scheduling*; everything that
// defines the simulated system - size, LogP parameters, RNG seeding, failure
// schedule, network effects, receive policy - lives here so a RunConfig means
// exactly the same thing no matter which engine executes it.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/core/profile.hpp"
#include "sim/failure.hpp"
#include "sim/fault/burst_loss.hpp"
#include "sim/fault/byzantine.hpp"
#include "sim/fault/partition.hpp"
#include "sim/fault/stragglers.hpp"
#include "sim/logp.hpp"
#include "sim/trace.hpp"

namespace cg {

class Telemetry;  // obs/telemetry.hpp - per-shard counters/histograms
class Heartbeat;  // obs/telemetry.hpp - periodic progress JSON

/// How receive overhead is modeled (DESIGN.md Section 2).
enum class RxPolicy : std::uint8_t {
  kDrainAll,    ///< all pending messages processed in their arrival step
                ///< (matches the pseudo-code's "while check for receive")
  kOnePerStep,  ///< at most one receive per node per step (strict LogP o)
};

struct RunConfig {
  NodeId n = 0;             ///< N, size of the name space
  NodeId root = 0;
  LogP logp{};
  RxPolicy rx = RxPolicy::kDrainAll;
  std::uint64_t seed = 1;   ///< seeds all per-node RNG streams
  Step max_steps = 0;       ///< 0 = auto (10*N + 64*(L/O+2) + 1024)
  FailureSchedule failures{};
  bool record_node_detail = false;
  TraceSink* trace = nullptr;  ///< not owned; may be nullptr
  /// Engine self-profiling: when set, the engine fills callback counts and
  /// per-phase wall times (see sim/core/profile.hpp).  Not owned.
  EngineProfile* profile = nullptr;
  /// Scale-ready telemetry: when set, the engine records per-shard
  /// counters and log-scale histograms (coloring latency, inbox depth,
  /// boundary traffic) into it - O(1) per event, allocation-free in steady
  /// state, deterministic across engines (see obs/telemetry.hpp).  Not
  /// owned.
  Telemetry* telemetry = nullptr;
  /// Progress channel: when set, the engine emits single-line JSON
  /// progress (steps done / max) on the heartbeat's interval.  Not owned.
  Heartbeat* heartbeat = nullptr;
  /// Model extension beyond the paper: add a uniform random extra delay of
  /// 0..jitter_max steps to every message (network variance).  Protocols'
  /// phase boundaries still use the synchronized clock; the ablation bench
  /// shows how robust each algorithm is to the resulting reordering.
  Step jitter_max = 0;
  /// Model extension: deterministic per-link extra latency (e.g., a
  /// two-level rack hierarchy).  extra(from, to) must be in
  /// [0, link_extra_max] and pure.  nullptr = uniform network (the paper).
  std::function<Step(NodeId from, NodeId to)> link_extra;
  Step link_extra_max = 0;
  /// Model extension: each message is lost independently with this
  /// probability (the paper assumes reliable channels; the ablation shows
  /// which guarantees survive when that assumption breaks).  Lost messages
  /// still count as sent work.  1.0 is allowed (blackhole links - every
  /// message is lost); validate with cg::config_error() before running.
  double drop_prob = 0.0;
  /// Fault model: Gilbert-Elliott correlated burst loss per sender,
  /// applied on top of (after) the i.i.d. drop_prob draw.
  BurstLoss burst{};
  /// Fault model: per-node send-delay multipliers (slow NICs).
  std::vector<Straggler> stragglers;
  /// Fault model: transient bidirectional partitions.
  std::vector<PartitionWindow> partitions;
  /// Fault model: Byzantine adversaries - nodes whose SENDS are rewritten
  /// (silenced, equivocated, forged, spammed) while they run the honest
  /// protocol code.  Disjoint from the crash/restart sets; validated by
  /// config_error().  Decisions are pure hashes of (seed, edge, step), so
  /// Byzantine runs stay engine/shard/thread-invariant.
  ByzantineFaults byzantine{};

  Step effective_max_steps() const {
    return max_steps > 0
               ? max_steps
               : 10 * static_cast<Step>(n) + 64 * (logp.l_over_o + 2) + 1024;
  }
};

}  // namespace cg

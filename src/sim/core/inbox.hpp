// Per-node receive queue for RxPolicy::kOnePerStep, shared by every
// execution engine.
//
// A vector-backed FIFO with a consumed-prefix index: push_back appends,
// pop_front bumps the head, and the buffer compacts only when fully
// drained or when the dead prefix dominates.  Compared with the
// std::deque<Message> the engines used before, pushes never allocate a
// chunk after warm-up (the vector's capacity is recycled across steps,
// the same slot-reuse discipline as the event kernel's slab), and the
// storage is contiguous, which the engines rely on to canonically sort
// each step's newly arrived tail (rx_order_before) with std::sort.
//
// Thread-safety contract (parallel engine): one InboxBuf per node, only
// ever touched by the node's owner worker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "proto/message.hpp"

namespace cg {

class InboxBuf {
 public:
  bool empty() const { return head_ == buf_.size(); }
  std::size_t size() const { return buf_.size() - head_; }

  void push_back(const Message& m) { buf_.push_back(m); }

  const Message& front() const {
    CG_CHECK(!empty());
    return buf_[head_];
  }

  void pop_front() {
    CG_CHECK(!empty());
    ++head_;
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    } else if (head_ >= 32 && head_ * 2 >= buf_.size()) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  /// Pointer to the element `offset` positions past the front; valid until
  /// the next push/pop.  Used with size() to sort the newly arrived tail.
  Message* at(std::size_t offset) {
    CG_CHECK(head_ + offset <= buf_.size());
    return buf_.data() + head_ + offset;
  }
  Message* end() { return buf_.data() + buf_.size(); }

  /// Reset for reuse.  Capacity is normally recycled across runs (the
  /// trial-farm steady state performs zero allocations), but a one-off
  /// huge run must not pin its slab for the rest of the farm: above the
  /// high-water mark the backing storage is released.
  void clear() {
    if (buf_.capacity() > kHighWater) {
      std::vector<Message>().swap(buf_);
    } else {
      buf_.clear();
    }
    head_ = 0;
  }

  std::size_t capacity() const { return buf_.capacity(); }

  /// Slab-release threshold for clear(), in messages (see clear()).
  static constexpr std::size_t kHighWater = 4096;

 private:
  std::vector<Message> buf_;
  std::size_t head_ = 0;  // consumed prefix
};

/// Flat slab-backed inbox for a SHARD of nodes (RxPolicy::kOnePerStep in
/// the sharded engine): one entry arena plus an intrusive FIFO per local
/// node.  Compared to a vector-of-InboxBuf it needs no per-node heap
/// allocation - at 10^6 nodes the empty-inbox overhead is two int32s per
/// node - and freed entries recycle through a free list, so steady-state
/// pushes never allocate.  Arrivals must be pushed in canonical
/// rx_order_before order per (node, step); the slab only preserves FIFO.
///
/// Thread-safety contract (sharded engine): one InboxSlab per shard, only
/// ever touched by the owning shard's thread.
class InboxSlab {
 public:
  static constexpr std::int32_t kNil = -1;

  /// (Re)size for `nodes` local nodes; drops all queued messages.  Above
  /// the high-water mark the entry arena is released (same rationale as
  /// InboxBuf::clear).
  void reset(std::size_t nodes) {
    head_.assign(nodes, kNil);
    tail_.assign(nodes, kNil);
    if (entries_.capacity() > kHighWater) {
      std::vector<Entry>().swap(entries_);
    } else {
      entries_.clear();
    }
    free_ = kNil;
  }

  bool empty(std::size_t local) const { return head_[local] == kNil; }

  void push(std::size_t local, const Message& m) {
    std::int32_t e;
    if (free_ != kNil) {
      e = free_;
      free_ = entries_[static_cast<std::size_t>(e)].next;
      entries_[static_cast<std::size_t>(e)] = Entry{m, kNil};
    } else {
      e = static_cast<std::int32_t>(entries_.size());
      entries_.push_back(Entry{m, kNil});
    }
    if (tail_[local] == kNil) {
      head_[local] = e;
    } else {
      entries_[static_cast<std::size_t>(tail_[local])].next = e;
    }
    tail_[local] = e;
  }

  const Message& front(std::size_t local) const {
    CG_CHECK(!empty(local));
    return entries_[static_cast<std::size_t>(head_[local])].msg;
  }

  void pop(std::size_t local) {
    CG_CHECK(!empty(local));
    const std::int32_t e = head_[local];
    head_[local] = entries_[static_cast<std::size_t>(e)].next;
    if (head_[local] == kNil) tail_[local] = kNil;
    entries_[static_cast<std::size_t>(e)].next = free_;
    free_ = e;
  }

  std::size_t footprint_bytes() const {
    return entries_.capacity() * sizeof(Entry) +
           (head_.capacity() + tail_.capacity()) * sizeof(std::int32_t);
  }

  /// Arena-release threshold for reset(), in entries.
  static constexpr std::size_t kHighWater = 4096;

 private:
  struct Entry {
    Message msg;
    std::int32_t next = kNil;
  };

  std::vector<Entry> entries_;
  std::vector<std::int32_t> head_;  // per local node; kNil = empty
  std::vector<std::int32_t> tail_;
  std::int32_t free_ = kNil;
};

}  // namespace cg

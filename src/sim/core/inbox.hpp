// Per-node receive queue for RxPolicy::kOnePerStep, shared by every
// execution engine.
//
// A vector-backed FIFO with a consumed-prefix index: push_back appends,
// pop_front bumps the head, and the buffer compacts only when fully
// drained or when the dead prefix dominates.  Compared with the
// std::deque<Message> the engines used before, pushes never allocate a
// chunk after warm-up (the vector's capacity is recycled across steps,
// the same slot-reuse discipline as the event kernel's slab), and the
// storage is contiguous, which the engines rely on to canonically sort
// each step's newly arrived tail (rx_order_before) with std::sort.
//
// Thread-safety contract (parallel engine): one InboxBuf per node, only
// ever touched by the node's owner worker.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "proto/message.hpp"

namespace cg {

class InboxBuf {
 public:
  bool empty() const { return head_ == buf_.size(); }
  std::size_t size() const { return buf_.size() - head_; }

  void push_back(const Message& m) { buf_.push_back(m); }

  const Message& front() const {
    CG_CHECK(!empty());
    return buf_[head_];
  }

  void pop_front() {
    CG_CHECK(!empty());
    ++head_;
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    } else if (head_ >= 32 && head_ * 2 >= buf_.size()) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  /// Pointer to the element `offset` positions past the front; valid until
  /// the next push/pop.  Used with size() to sort the newly arrived tail.
  Message* at(std::size_t offset) {
    CG_CHECK(head_ + offset <= buf_.size());
    return buf_.data() + head_ + offset;
  }
  Message* end() { return buf_.data() + buf_.size(); }

  void clear() {
    buf_.clear();
    head_ = 0;
  }

 private:
  std::vector<Message> buf_;
  std::size_t head_ = 0;  // consumed prefix
};

}  // namespace cg

// Node lifecycle state shared by every execution engine.
//
// NodeStateStore owns the per-node arrays (alive, Idle/Active/Done state,
// colored/delivered/completed/activated timestamps) and the transition
// rules between them, plus the single RunMetrics finalization all engines
// use.  Engines own scheduling and active/in-flight counting; this class
// owns what "activated", "colored", "delivered", "completed" and "crashed"
// MEAN, so the semantics cannot drift between engines.
//
// Thread-safety contract (parallel engine): every mutating call for node i
// must come from the worker that owns i.  All fields are at least one byte
// per node (no vector<bool> bit packing), so owner-disjoint access is free
// of data races.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/fault/byzantine.hpp"
#include "sim/metrics.hpp"

namespace cg {

/// Lifecycle of a node during a run.  Nodes begin Idle (except the root),
/// become Active on their first receive (or explicit activate()), and Done
/// when they complete or crash.
enum class NodeRunState : std::uint8_t { kIdle, kActive, kDone };

class NodeStateStore {
 public:
  /// Outcome of a complete()/kill() call, so engines can maintain their own
  /// active-node accounting (a plain counter, per-worker deltas, ...).
  struct Transition {
    bool changed = false;     ///< the call performed a state change
    bool was_active = false;  ///< the node was Active before the change
  };

  void reset(NodeId n) {
    const auto sz = static_cast<std::size_t>(n);
    n_ = n;
    alive_.assign(sz, 1);
    state_.assign(sz, NodeRunState::kIdle);
    colored_at_.assign(sz, kNever);
    delivered_at_.assign(sz, kNever);
    completed_at_.assign(sz, kNever);
    activated_at_.assign(sz, kNever);
    held_payload_.assign(sz, 0);
    delivered_payload_.assign(sz, 0);
    byzantine_.assign(sz, 0);
  }

  NodeId n() const { return n_; }
  bool alive(NodeId i) const { return alive_[idx(i)] != 0; }
  NodeRunState state(NodeId i) const { return state_[idx(i)]; }
  bool done(NodeId i) const { return state_[idx(i)] == NodeRunState::kDone; }
  bool colored(NodeId i) const { return colored_at_[idx(i)] != kNever; }
  Step activated_at(NodeId i) const { return activated_at_[idx(i)]; }
  Step completed_at(NodeId i) const { return completed_at_[idx(i)]; }
  /// Payload digest node i currently holds (0 until colored).
  std::uint32_t held_payload(NodeId i) const { return held_payload_[idx(i)]; }
  bool byzantine(NodeId i) const { return byzantine_[idx(i)] != 0; }

  /// Flag node i as adversarial (engine setup, from RunConfig::byzantine).
  /// Survives revive(): a compromised host stays compromised.
  void mark_byzantine(NodeId i) { byzantine_[idx(i)] = 1; }

  /// Override the digest node i holds (SBRB Contagion adopts the winning
  /// payload just before delivering; also sets it for an uncolored node).
  void set_held_payload(NodeId i, std::uint32_t d) {
    held_payload_[idx(i)] = d;
  }

  /// Mark a node dead before the run starts (failure set F at t=0).
  void pre_fail(NodeId i) {
    CG_CHECK(i >= 0 && i < n_);
    alive_[idx(i)] = 0;
    state_[idx(i)] = NodeRunState::kDone;
  }

  /// Idle -> Active; returns true if the transition happened.
  bool activate(NodeId i, Step now) {
    if (state_[idx(i)] != NodeRunState::kIdle) return false;
    state_[idx(i)] = NodeRunState::kActive;
    activated_at_[idx(i)] = now;
    return true;
  }

  /// Protocol exit: -> Done, recording the completion step.
  Transition complete(NodeId i, Step now) {
    const NodeRunState st = state_[idx(i)];
    if (st == NodeRunState::kDone) return {};
    state_[idx(i)] = NodeRunState::kDone;
    completed_at_[idx(i)] = now;
    return {true, st == NodeRunState::kActive};
  }

  /// Crash: the node performs no further action.  completed_at stays kNever
  /// (dead nodes are excluded from every metric).
  Transition kill(NodeId i) {
    if (alive_[idx(i)] == 0) return {};
    const NodeRunState st = state_[idx(i)];
    alive_[idx(i)] = 0;
    state_[idx(i)] = NodeRunState::kDone;
    return {true, st == NodeRunState::kActive};
  }

  /// Crash-restart rejoin: a DEAD node comes back alive, Idle and with
  /// every timestamp cleared - it re-enters the run as if it had never
  /// participated (its protocol object is reconstructed by the engine).
  /// Returns true if the node was dead and is now revived.
  bool revive(NodeId i) {
    if (alive_[idx(i)] != 0) return false;
    alive_[idx(i)] = 1;
    state_[idx(i)] = NodeRunState::kIdle;
    colored_at_[idx(i)] = kNever;
    delivered_at_[idx(i)] = kNever;
    completed_at_[idx(i)] = kNever;
    activated_at_[idx(i)] = kNever;
    held_payload_[idx(i)] = 0;
    delivered_payload_[idx(i)] = 0;
    return true;
  }

  /// Record payload receipt; returns true the first time only.  `payload`
  /// is the digest the coloring message carried (0 = self-coloring, e.g.
  /// the root in on_start, which holds the true payload by definition).
  /// First-wins: a later re-color attempt never replaces the held digest.
  bool mark_colored(NodeId i, Step now, std::uint32_t payload = 0) {
    auto& c = colored_at_[idx(i)];
    if (c != kNever) return false;
    c = now;
    if (held_payload_[idx(i)] == 0)
      held_payload_[idx(i)] = payload != 0 ? payload : kTruePayload;
    return true;
  }

  /// Record formal delivery (FCG semantics); returns true the first time.
  /// Snapshots the held digest as what this node delivered.
  bool mark_delivered(NodeId i, Step now) {
    auto& d = delivered_at_[idx(i)];
    if (d != kNever) return false;
    d = now;
    const std::uint32_t h = held_payload_[idx(i)];
    delivered_payload_[idx(i)] = h != 0 ? h : kTruePayload;
    return true;
  }

  /// The single RunMetrics finalization all engines share.  Message counters
  /// (msgs_*) must already be merged into `m`; this fills the population,
  /// timing and flag fields from the per-node arrays.
  void finalize(RunMetrics& m, NodeId root, Step t_end,
                bool record_node_detail) const {
    m.n_total = n_;
    m.t_end = t_end;
    Step last_colored = 0, last_delivered = 0, last_complete = 0;
    bool any_colored = false;
    bool any_uncolored = false, any_undelivered = false, any_incomplete = false;
    for (NodeId i = 0; i < n_; ++i) {
      if (alive_[idx(i)] == 0) continue;
      // Reach/delivery guarantees quantify over CORRECT nodes: whether an
      // adversary's own replica "delivered" is meaningless (an equivocator
      // happily starves its own quorums), so Byzantine nodes count toward
      // n_byzantine below, not n_active.
      if (byzantine_[idx(i)] != 0) continue;
      ++m.n_active;
      if (colored_at_[idx(i)] != kNever) {
        ++m.n_colored;
        any_colored = true;
        last_colored = std::max(last_colored, colored_at_[idx(i)]);
        if (completed_at_[idx(i)] != kNever)
          last_complete = std::max(last_complete, completed_at_[idx(i)]);
        else
          any_incomplete = true;
      } else {
        any_uncolored = true;
      }
      if (delivered_at_[idx(i)] != kNever) {
        ++m.n_delivered;
        last_delivered = std::max(last_delivered, delivered_at_[idx(i)]);
      } else {
        any_undelivered = true;
      }
    }
    m.all_active_colored = !any_uncolored;
    m.all_active_delivered = !any_undelivered;
    m.t_last_colored = any_uncolored ? kNever : last_colored;
    // kNever (not 0) when nobody was colored: 0 is a legitimate coloring
    // step (the root's), so it cannot double as "never happened".
    m.t_last_colored_partial = any_colored ? last_colored : kNever;
    m.t_last_delivered = any_undelivered ? kNever : last_delivered;
    // Completion is over COLORED nodes: a weakly consistent protocol
    // (GOS/OCG) legitimately finishes while some nodes were never reached.
    m.t_complete = any_incomplete ? kNever : last_complete;
    m.sos_triggered = m.msgs_sos > 0;
    m.t_root_complete = completed_at_[idx(root)];
    // Byzantine accounting: payload agreement among CORRECT nodes (dead or
    // alive - a node that delivered a conflicting payload and then crashed
    // still witnessed the inconsistency).  Distinct-digest count saturates
    // at kMaxDistinct; the predicates only need "1" vs "> 1".
    constexpr int kMaxDistinct = 16;
    std::uint32_t seen[kMaxDistinct];
    int n_seen = 0;
    for (NodeId i = 0; i < n_; ++i) {
      if (byzantine_[idx(i)] != 0) {
        ++m.n_byzantine;
        continue;
      }
      const std::uint32_t d = delivered_payload_[idx(i)];
      if (d == 0) continue;
      if (d == kTruePayload)
        ++m.n_delivered_true;
      else
        ++m.n_delivered_forged;
      bool known = false;
      for (int k = 0; k < n_seen; ++k) known = known || seen[k] == d;
      if (!known && n_seen < kMaxDistinct) seen[n_seen++] = d;
    }
    m.distinct_delivered_payloads = n_seen;
    m.consistent_delivery = n_seen <= 1;
    if (record_node_detail) {
      m.colored_at = colored_at_;
      m.delivered_at = delivered_at_;
      m.completed_at = completed_at_;
    }
  }

  /// Heap bytes of the lifecycle arrays (memory-plan accounting).
  std::size_t footprint_bytes() const {
    return (alive_.capacity() + byzantine_.capacity()) * sizeof(std::uint8_t) +
           state_.capacity() * sizeof(NodeRunState) +
           (held_payload_.capacity() + delivered_payload_.capacity()) *
               sizeof(std::uint32_t) +
           (colored_at_.capacity() + delivered_at_.capacity() +
            completed_at_.capacity() + activated_at_.capacity()) *
               sizeof(Step);
  }

 private:
  static std::size_t idx(NodeId i) { return static_cast<std::size_t>(i); }

  NodeId n_ = 0;
  // std::uint8_t, not vector<bool>: the parallel engine writes these from
  // different threads for different nodes; byte-sized elements keep that
  // race-free under the C++ memory model.
  std::vector<std::uint8_t> alive_;
  std::vector<NodeRunState> state_;
  std::vector<Step> colored_at_;
  std::vector<Step> delivered_at_;
  std::vector<Step> completed_at_;
  std::vector<Step> activated_at_;
  // Byzantine tier: digest each node holds / delivered (0 = none yet) and
  // the adversary flags.  Same owner-disjoint thread-safety rules apply.
  std::vector<std::uint32_t> held_payload_;
  std::vector<std::uint32_t> delivered_payload_;
  std::vector<std::uint8_t> byzantine_;
};

}  // namespace cg

// Delivery-effect model shared by every execution engine.
//
// NetworkModel owns everything that happens to a message between send and
// receive: the LogP base delay (L/O + 1), uniform per-message jitter,
// deterministic per-link extra latency, i.i.d. message loss, and the fault
// models from src/sim/fault/ (Gilbert-Elliott burst loss, straggler send
// slowdown, transient partitions).  Loss, jitter and the burst chain each
// draw from a DEDICATED per-sender RNG stream, and a sender's messages are
// routed in program order on every engine, so the fate of each message is
// bit-identical across the stepped, event-driven and parallel engines (and
// across thread counts) for a given seed.  See docs/FAULTS.md for the full
// determinism/parity contract.
//
// Thread-safety contract (parallel engine): route(from, ...) mutates only
// the sender's streams and chain state, and node `from`'s callbacks run
// only on its owner worker, so concurrent route() calls for different
// senders never race.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "proto/message.hpp"
#include "sim/core/run_config.hpp"
#include "sim/metrics.hpp"

namespace cg {

class NetworkModel {
 public:
  /// route() result for a message lost on the wire.
  static constexpr Step kLost = -1;

  void reset(const RunConfig& cfg) {
    base_delay_ = cfg.logp.delivery_delay();
    jitter_max_ = cfg.jitter_max;
    link_extra_ = cfg.link_extra;
    link_extra_max_ = cfg.link_extra_max;
    // drop_prob == 1.0 is legal (blackhole links); range errors are caught
    // by cg::config_error() before the engine runs.
    drop_prob_ = cfg.drop_prob;
    burst_ = cfg.burst;
    const auto n = static_cast<std::size_t>(cfg.n);
    jitter_rng_.clear();
    if (jitter_max_ > 0) {
      jitter_rng_.reserve(n);
      for (NodeId i = 0; i < cfg.n; ++i)
        jitter_rng_.emplace_back(derive_seed(
            cfg.seed, static_cast<std::uint64_t>(i) + kJitterStream));
    }
    loss_rng_.clear();
    if (drop_prob_ > 0.0) {
      loss_rng_.reserve(n);
      for (NodeId i = 0; i < cfg.n; ++i)
        loss_rng_.emplace_back(derive_seed(
            cfg.seed, static_cast<std::uint64_t>(i) + kLossStream));
    }
    burst_rng_.clear();
    burst_bad_.clear();
    burst_step_.clear();
    if (burst_.enabled()) {
      burst_rng_.reserve(n);
      for (NodeId i = 0; i < cfg.n; ++i)
        burst_rng_.emplace_back(derive_seed(
            cfg.seed, static_cast<std::uint64_t>(i) + kBurstStream));
      burst_bad_.assign(n, 0);   // every channel starts in the good state
      burst_step_.assign(n, 0);  // chains are advanced lazily on route()
    }
    factor_.clear();
    max_factor_ = 1;
    if (!cfg.stragglers.empty()) {
      factor_.assign(n, 1);
      for (const auto& s : cfg.stragglers) {
        factor_[static_cast<std::size_t>(s.node)] = s.factor;
        max_factor_ = std::max(max_factor_, s.factor);
      }
    }
    partitions_.clear();
    for (const auto& pw : cfg.partitions) {
      PartitionMask pm;
      pm.from = pw.from;
      pm.until = pw.until;
      pm.inside.assign(n, 0);
      for (const NodeId i : pw.members)
        pm.inside[static_cast<std::size_t>(i)] = 1;
      partitions_.push_back(std::move(pm));
    }
  }

  /// Decide the fate of one message emitted at step `now`: kLost if it is
  /// dropped, otherwise the absolute delivery step.  Loss checks run in a
  /// fixed order - partitions (no RNG), then the i.i.d. loss stream, then
  /// the burst chain - and a sender's streams are consumed in program
  /// order, so the outcome is identical on every engine.
  Step route(NodeId from, NodeId to, Step now) {
    for (const auto& pm : partitions_)
      if (now >= pm.from && now < pm.until &&
          pm.inside[static_cast<std::size_t>(from)] !=
              pm.inside[static_cast<std::size_t>(to)])
        return kLost;
    if (drop_prob_ > 0.0 &&
        loss_rng_[static_cast<std::size_t>(from)].uniform01() < drop_prob_)
      return kLost;
    if (burst_.enabled() && burst_lost(from, now)) return kLost;
    Step at = now + base_delay_ * send_factor(from);
    if (jitter_max_ > 0)
      at += jitter_rng_[static_cast<std::size_t>(from)].uniform(0, jitter_max_);
    if (link_extra_) {
      const Step extra = link_extra_(from, to);
      CG_CHECK(extra >= 0 && extra <= link_extra_max_);
      at += extra;
    }
    return at;
  }

  /// Upper bound on send-to-delivery delay (delivery-calendar ring sizing).
  Step max_delay() const {
    return base_delay_ * max_factor_ + jitter_max_ + link_extra_max_;
  }

  /// Straggler slowdown factor for a node's sends (1 = normal).
  Step send_factor(NodeId i) const {
    return factor_.empty() ? 1 : factor_[static_cast<std::size_t>(i)];
  }

 private:
  struct PartitionMask {
    Step from = 0;
    Step until = 0;
    std::vector<std::uint8_t> inside;  // membership byte per node
  };

  /// Advance the sender's Gilbert-Elliott chain to `now` (one transition
  /// draw per elapsed step - the chain lives in step time, not message
  /// time, so a backed-off retransmit really can escape a burst) and draw
  /// this message's fate from the resulting state.
  bool burst_lost(NodeId from, Step now) {
    const auto idx = static_cast<std::size_t>(from);
    auto& rng = burst_rng_[idx];
    auto& bad = burst_bad_[idx];
    for (Step& last = burst_step_[idx]; last < now; ++last) {
      const double p = bad != 0 ? burst_.p_bad_good : burst_.p_good_bad;
      if (rng.uniform01() < p) bad ^= 1;
    }
    const double loss = bad != 0 ? burst_.loss_bad : burst_.loss_good;
    return loss > 0.0 && rng.uniform01() < loss;
  }

  // Stream-derivation offsets (kept from the original engines so seeds keep
  // producing the same runs).
  static constexpr std::uint64_t kJitterStream = 0x4A17E500000000ULL;
  static constexpr std::uint64_t kLossStream = 0x10550000000000ULL;
  static constexpr std::uint64_t kBurstStream = 0x6E11B370000000ULL;

  Step base_delay_ = 1;
  Step jitter_max_ = 0;
  std::function<Step(NodeId, NodeId)> link_extra_;
  Step link_extra_max_ = 0;
  double drop_prob_ = 0.0;
  BurstLoss burst_{};
  std::vector<Xoshiro256> jitter_rng_;
  std::vector<Xoshiro256> loss_rng_;
  std::vector<Xoshiro256> burst_rng_;
  std::vector<std::uint8_t> burst_bad_;  // chain state per sender (0 = good)
  std::vector<Step> burst_step_;         // step the chain was advanced to
  std::vector<Step> factor_;             // straggler factors (empty = all 1)
  Step max_factor_ = 1;
  std::vector<PartitionMask> partitions_;
};

/// Per-tag message-work accounting, identical across engines (the serial
/// engine's convention is canonical: pull requests count as gossip work,
/// tree/ack/nack as tree work).  The parallel engine keeps one instance per
/// worker and merges at the end of the run.
struct MessageCounts {
  std::int64_t total = 0;
  std::int64_t gossip = 0;
  std::int64_t correction = 0;
  std::int64_t sos = 0;
  std::int64_t tree = 0;
  std::int64_t retrans = 0;  ///< reliable-sublayer retransmissions
  std::int64_t dropped = 0;  ///< protocol backpressure drops (not sends)
  std::int64_t sbrb = 0;     ///< SBRB subscribe/echo/ready messages
  std::int64_t forged = 0;       ///< Byzantine-rewritten sends (on the wire)
  std::int64_t equivocated = 0;  ///< Byzantine alternate-digest sends
  std::int64_t suppressed = 0;   ///< sends a silent adversary swallowed

  void add(const Message& m) {
    ++total;
    if (m.retrans != 0) ++retrans;
    switch (m.tag) {
      case Tag::kGossip:
      case Tag::kPullReq: ++gossip; break;
      case Tag::kOcgCorr:
      case Tag::kFwd:
      case Tag::kBwd: ++correction; break;
      case Tag::kSos: ++sos; break;
      case Tag::kTree:
      case Tag::kNack:
      case Tag::kAck: ++tree; break;
      case Tag::kSbrbSubEcho:
      case Tag::kSbrbSubReady:
      case Tag::kSbrbEcho:
      case Tag::kSbrbReady: ++sbrb; break;
    }
  }

  void add_dropped() { ++dropped; }
  void add_forged() { ++forged; }
  void add_equivocated() { ++equivocated; }
  void add_suppressed() { ++suppressed; }

  void merge_into(RunMetrics& m) const {
    m.msgs_total += total;
    m.msgs_gossip += gossip;
    m.msgs_correction += correction;
    m.msgs_sos += sos;
    m.msgs_tree += tree;
    m.msgs_retrans += retrans;
    m.msgs_dropped += dropped;
    m.msgs_sbrb += sbrb;
    m.msgs_forged += forged;
    m.msgs_equivocated += equivocated;
    m.msgs_suppressed += suppressed;
  }
};

/// Canonical processing order for messages arriving at the same node in the
/// same step under RxPolicy::kOnePerStep.  Engines enqueue same-step
/// arrivals in this order (a node sends at most once per step, so `src`
/// almost always decides; the remaining comparisons make the order total on
/// message CONTENT - under jitter one sender's messages from different
/// steps can share an arrival step), which makes "which message is deferred
/// to the next step" identical across engines regardless of internal
/// scheduling.  Fully identical messages are interchangeable.
inline bool rx_order_before(const Message& a, const Message& b) {
  if (a.src != b.src) return a.src < b.src;
  if (a.tag != b.tag) return a.tag < b.tag;
  if (a.time != b.time) return a.time < b.time;
  if (a.known_count != b.known_count) return a.known_count < b.known_count;
  for (std::uint8_t i = 0; i < a.known_count; ++i)
    if (a.known[i] != b.known[i]) return a.known[i] < b.known[i];
  // Payload digest last: only an equivocating sender can put two
  // otherwise-identical messages with different digests in flight, so this
  // tiebreak is a no-op in every non-Byzantine run.
  return a.payload < b.payload;
}

}  // namespace cg

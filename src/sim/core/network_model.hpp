// Delivery-effect model shared by every execution engine.
//
// NetworkModel owns everything that happens to a message between send and
// receive: the LogP base delay (L/O + 1), uniform per-message jitter,
// deterministic per-link extra latency, and i.i.d. message loss.  Loss and
// jitter each draw from a DEDICATED per-sender RNG stream, and a sender's
// messages are routed in program order on every engine, so the fate of each
// message is bit-identical across the stepped, event-driven and parallel
// engines (and across thread counts) for a given seed.
//
// Thread-safety contract (parallel engine): route(from, ...) mutates only
// the sender's streams, and node `from`'s callbacks run only on its owner
// worker, so concurrent route() calls for different senders never race.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "proto/message.hpp"
#include "sim/core/run_config.hpp"
#include "sim/metrics.hpp"

namespace cg {

class NetworkModel {
 public:
  /// route() result for a message lost on the wire.
  static constexpr Step kLost = -1;

  void reset(const RunConfig& cfg) {
    base_delay_ = cfg.logp.delivery_delay();
    jitter_max_ = cfg.jitter_max;
    link_extra_ = cfg.link_extra;
    link_extra_max_ = cfg.link_extra_max;
    drop_prob_ = cfg.drop_prob;
    const auto n = static_cast<std::size_t>(cfg.n);
    jitter_rng_.clear();
    if (jitter_max_ > 0) {
      jitter_rng_.reserve(n);
      for (NodeId i = 0; i < cfg.n; ++i)
        jitter_rng_.emplace_back(derive_seed(
            cfg.seed, static_cast<std::uint64_t>(i) + kJitterStream));
    }
    loss_rng_.clear();
    if (drop_prob_ > 0.0) {
      CG_CHECK(drop_prob_ < 1.0);
      loss_rng_.reserve(n);
      for (NodeId i = 0; i < cfg.n; ++i)
        loss_rng_.emplace_back(derive_seed(
            cfg.seed, static_cast<std::uint64_t>(i) + kLossStream));
    }
  }

  /// Decide the fate of one message emitted at step `now`: kLost if it is
  /// dropped, otherwise the absolute delivery step.  Consumes the sender's
  /// loss stream first and its jitter stream only for surviving messages,
  /// in exactly that order on every engine.
  Step route(NodeId from, NodeId to, Step now) {
    if (drop_prob_ > 0.0 &&
        loss_rng_[static_cast<std::size_t>(from)].uniform01() < drop_prob_)
      return kLost;
    Step at = now + base_delay_;
    if (jitter_max_ > 0)
      at += jitter_rng_[static_cast<std::size_t>(from)].uniform(0, jitter_max_);
    if (link_extra_) {
      const Step extra = link_extra_(from, to);
      CG_CHECK(extra >= 0 && extra <= link_extra_max_);
      at += extra;
    }
    return at;
  }

  /// Upper bound on send-to-delivery delay (delivery-calendar ring sizing).
  Step max_delay() const { return base_delay_ + jitter_max_ + link_extra_max_; }

 private:
  // Stream-derivation offsets (kept from the original engines so seeds keep
  // producing the same runs).
  static constexpr std::uint64_t kJitterStream = 0x4A17E500000000ULL;
  static constexpr std::uint64_t kLossStream = 0x10550000000000ULL;

  Step base_delay_ = 1;
  Step jitter_max_ = 0;
  std::function<Step(NodeId, NodeId)> link_extra_;
  Step link_extra_max_ = 0;
  double drop_prob_ = 0.0;
  std::vector<Xoshiro256> jitter_rng_;
  std::vector<Xoshiro256> loss_rng_;
};

/// Per-tag message-work accounting, identical across engines (the serial
/// engine's convention is canonical: pull requests count as gossip work,
/// tree/ack/nack as tree work).  The parallel engine keeps one instance per
/// worker and merges at the end of the run.
struct MessageCounts {
  std::int64_t total = 0;
  std::int64_t gossip = 0;
  std::int64_t correction = 0;
  std::int64_t sos = 0;
  std::int64_t tree = 0;

  void add(Tag t) {
    ++total;
    switch (t) {
      case Tag::kGossip:
      case Tag::kPullReq: ++gossip; break;
      case Tag::kOcgCorr:
      case Tag::kFwd:
      case Tag::kBwd: ++correction; break;
      case Tag::kSos: ++sos; break;
      case Tag::kTree:
      case Tag::kNack:
      case Tag::kAck: ++tree; break;
    }
  }

  void merge_into(RunMetrics& m) const {
    m.msgs_total += total;
    m.msgs_gossip += gossip;
    m.msgs_correction += correction;
    m.msgs_sos += sos;
    m.msgs_tree += tree;
  }
};

/// Canonical processing order for messages arriving at the same node in the
/// same step under RxPolicy::kOnePerStep.  Engines enqueue same-step
/// arrivals in this order (a node sends at most once per step, so `src`
/// almost always decides; the remaining comparisons make the order total on
/// message CONTENT - under jitter one sender's messages from different
/// steps can share an arrival step), which makes "which message is deferred
/// to the next step" identical across engines regardless of internal
/// scheduling.  Fully identical messages are interchangeable.
inline bool rx_order_before(const Message& a, const Message& b) {
  if (a.src != b.src) return a.src < b.src;
  if (a.tag != b.tag) return a.tag < b.tag;
  if (a.time != b.time) return a.time < b.time;
  if (a.known_count != b.known_count) return a.known_count < b.known_count;
  for (std::uint8_t i = 0; i < a.known_count; ++i)
    if (a.known[i] != b.known[i]) return a.known[i] < b.known[i];
  return false;
}

}  // namespace cg

// Engine self-profiling (RunConfig::profile; opt-in, zero cost when off).
//
// Every execution engine fills the same counters so simulator performance
// is comparable across schedulers and trackable over time (BENCH_*.json):
//   * callbacks_* - protocol callbacks dispatched (on_start / on_receive /
//     on_tick); their sum is the "events processed" figure;
//   * steps       - simulated steps advanced;
//   * wall_s      - wall time of the whole run() call;
//   * per-phase wall time, attributed per engine:
//       - stepped:  deliver_s = failures + message deliveries,
//                   tick_s = the tick sweep;
//       - async:    handler time split by the internal phase that fired
//                   (arrival/rx -> deliver_s, tick -> tick_s);
//       - parallel: deliver_s = slowest worker's phase-A compute (deliver +
//                   tick, not separable per node without per-node timers),
//                   route_s = slowest worker's phase-B routing.  Barrier
//                   wait time is excluded.
#pragma once

#include <chrono>
#include <cstdint>

#include "common/types.hpp"

namespace cg {

struct EngineProfile {
  std::int64_t callbacks_start = 0;
  std::int64_t callbacks_receive = 0;
  std::int64_t callbacks_tick = 0;
  // Scheduling-substrate counters.  What a "queue event" is depends on the
  // engine: the async engine reports its calendar-queue kernel ops (ticks,
  // delivery sweeps, rx pops, failures - EventQueue::Stats), the stepped
  // and parallel engines report delivery-calendar ops (scheduled = routed
  // messages, fired = messages consumed).  Within one engine the
  // invariants hold: fired + cancelled <= scheduled, and a drained run
  // ends with fired + cancelled == scheduled.
  std::int64_t events_scheduled = 0;
  std::int64_t events_fired = 0;
  std::int64_t events_cancelled = 0;
  std::int64_t queue_max_bucket = 0;  ///< peak one-bucket/slot occupancy
  std::int64_t queue_slot_capacity = 0;  ///< slab plateau (async kernel only)
  Step steps = 0;
  double wall_s = 0;
  double deliver_s = 0;
  double tick_s = 0;
  double route_s = 0;

  /// Protocol callbacks dispatched over the run.
  std::int64_t events() const {
    return callbacks_start + callbacks_receive + callbacks_tick;
  }

  double events_per_sec() const {
    return wall_s > 0 ? static_cast<double>(events()) / wall_s : 0.0;
  }
};

/// Monotonic timestamp helper for the engines' profiling blocks.
class ProfileClock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;
  static TimePoint now() { return std::chrono::steady_clock::now(); }
  static double seconds_since(TimePoint t0) {
    return std::chrono::duration<double>(now() - t0).count();
  }
};

}  // namespace cg

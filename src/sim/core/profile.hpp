// Engine self-profiling (RunConfig::profile; opt-in, zero cost when off).
//
// Every execution engine fills the same counters so simulator performance
// is comparable across schedulers and trackable over time (BENCH_*.json):
//   * callbacks_* - protocol callbacks dispatched (on_start / on_receive /
//     on_tick); their sum is the "events processed" figure;
//   * steps       - simulated steps advanced;
//   * wall_s      - wall time of the whole run() call;
//   * per-phase wall time, attributed per engine:
//       - stepped:  deliver_s = failures + message deliveries,
//                   tick_s = the tick sweep;
//       - async:    handler time split by the internal phase that fired
//                   (arrival/rx -> deliver_s, tick -> tick_s);
//       - parallel: deliver_s = slowest worker's phase-A compute (deliver +
//                   tick, not separable per node without per-node timers),
//                   route_s = slowest worker's phase-B routing.  Barrier
//                   wait time is excluded.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "common/types.hpp"

namespace cg {

/// Process-wide peak resident set size in bytes (getrusage ru_maxrss), or
/// 0 where unavailable.  A whole-process high-water mark, not a per-run
/// figure - engines record it so memory-plan regressions show up in
/// reports next to bytes_per_node.
inline std::int64_t current_peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(ru.ru_maxrss);  // bytes on Darwin
#else
  return static_cast<std::int64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Current (not peak) resident set size in bytes, via /proc/self/statm on
/// Linux; falls back to the peak elsewhere.  The heartbeat channel reports
/// it so a long campaign's live memory footprint is visible, not just the
/// whole-process high-water mark.
inline std::int64_t current_rss_bytes() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long long pages_total = 0, pages_resident = 0;
    const int got = std::fscanf(f, "%lld %lld", &pages_total, &pages_resident);
    std::fclose(f);
    if (got == 2)
      return static_cast<std::int64_t>(pages_resident) *
             static_cast<std::int64_t>(sysconf(_SC_PAGESIZE));
  }
#endif
  return current_peak_rss_bytes();
}

struct EngineProfile {
  std::int64_t callbacks_start = 0;
  std::int64_t callbacks_receive = 0;
  std::int64_t callbacks_tick = 0;
  // Scheduling-substrate counters.  What a "queue event" is depends on the
  // engine: the async engine reports its calendar-queue kernel ops (ticks,
  // delivery sweeps, rx pops, failures - EventQueue::Stats), the stepped
  // and parallel engines report delivery-calendar ops (scheduled = routed
  // messages, fired = messages consumed).  Within one engine the
  // invariants hold: fired + cancelled <= scheduled, and a drained run
  // ends with fired + cancelled == scheduled.
  std::int64_t events_scheduled = 0;
  std::int64_t events_fired = 0;
  std::int64_t events_cancelled = 0;
  std::int64_t queue_max_bucket = 0;  ///< peak one-bucket/slot occupancy
  std::int64_t queue_slot_capacity = 0;  ///< slab plateau (async kernel only)
  Step steps = 0;
  double wall_s = 0;
  double deliver_s = 0;
  double tick_s = 0;
  double route_s = 0;

  // Memory-plan accounting (every engine fills these): bytes of per-run
  // engine state (node slab, RNG streams, lifecycle arrays, calendars,
  // inboxes) divided by n, and the process peak RSS at the end of the run.
  std::int64_t bytes_per_node = 0;
  std::int64_t peak_rss_bytes = 0;

  // Sharded-engine counters (zero for the other engines).
  struct ShardStat {
    std::int64_t events_fired = 0;    ///< messages consumed by this shard
    std::int64_t boundary_msgs = 0;   ///< cross-shard messages it sent
    std::int64_t window_stalls = 0;   ///< windows where the shard had no work
  };
  int shards = 0;
  std::int64_t windows = 0;         ///< delivery windows executed
  std::int64_t window_stalls = 0;   ///< sum of per-shard stalls
  std::int64_t boundary_msgs = 0;   ///< messages crossing a shard boundary
  std::vector<ShardStat> shard_stats;

  /// Protocol callbacks dispatched over the run.
  std::int64_t events() const {
    return callbacks_start + callbacks_receive + callbacks_tick;
  }

  double events_per_sec() const {
    return wall_s > 0 ? static_cast<double>(events()) / wall_s : 0.0;
  }
};

/// Monotonic timestamp helper for the engines' profiling blocks.
class ProfileClock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;
  static TimePoint now() { return std::chrono::steady_clock::now(); }
  static double seconds_since(TimePoint t0) {
    return std::chrono::duration<double>(now() - t0).count();
  }
};

}  // namespace cg

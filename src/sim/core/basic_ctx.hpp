// The execution context handed to protocol callbacks - ONE surface for all
// engines.
//
// BasicCtx implements the full Ctx API protocols program against
// (now/self/n/root/logp/rng/send/activate/mark_colored/deliver/complete/
// colored) in terms of a small set of ctx_* hooks the host supplies:
//
//   Step ctx_now() const;
//   const RunConfig& ctx_cfg() const;
//   Xoshiro256& ctx_rng(NodeId self);
//   void ctx_send(NodeId self, NodeId to, const Message& m);
//   void ctx_activate(NodeId self);
//   void ctx_mark_colored(NodeId self);
//   void ctx_deliver(NodeId self);
//   void ctx_complete(NodeId self);
//   bool ctx_colored(NodeId self) const;
//   void ctx_note_dropped(NodeId self);
//   void ctx_adopt_payload(NodeId self, std::uint32_t digest);
//
// The host is the engine itself (serial, event-driven) or a per-worker view
// of it (parallel), so engine-specific bookkeeping stays in the engine while
// the protocol-facing API cannot drift between engines.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"
#include "proto/message.hpp"
#include "sim/core/run_config.hpp"
#include "sim/logp.hpp"

namespace cg {

template <class HostT>
class BasicCtx {
 public:
  BasicCtx(HostT& host, NodeId self) : host_(&host), self_(self) {}

  Step now() const { return host_->ctx_now(); }
  NodeId self() const { return self_; }
  NodeId n() const { return host_->ctx_cfg().n; }
  NodeId root() const { return host_->ctx_cfg().root; }
  bool is_root() const { return self_ == host_->ctx_cfg().root; }
  const LogP& logp() const { return host_->ctx_cfg().logp; }
  Xoshiro256& rng() { return host_->ctx_rng(self_); }
  /// The run's root seed - for protocols that derive deterministic
  /// per-node randomness (e.g. SBRB's splitmix64-keyed samples) without
  /// consuming the trial RNG stream.
  std::uint64_t seed() const { return host_->ctx_cfg().seed; }

  /// Emit one message; delivered at now() + L/O + 1 (+ network effects).
  void send(NodeId to, const Message& m) { host_->ctx_send(self_, to, m); }

  /// Make an Idle node Active (used by protocols whose on_start seeds
  /// state on non-root nodes, e.g. pull-style gossip or testing hooks).
  void activate() { host_->ctx_activate(self_); }

  /// Record that this node now holds the broadcast payload.  The digest it
  /// holds defaults to the one on the message being processed (the engine
  /// tracks it); use adopt_payload() to override.
  void mark_colored() { host_->ctx_mark_colored(self_); }
  /// Override the payload digest this node holds (and will deliver/forward)
  /// - SBRB's Contagion adopts the sample-winning payload, which can differ
  /// from the first-received candidate under equivocation.
  void adopt_payload(std::uint32_t digest) {
    host_->ctx_adopt_payload(self_, digest);
  }
  /// Record formal delivery to the client (FCG semantics).
  void deliver() { host_->ctx_deliver(self_); }
  /// Exit the algorithm; no further callbacks for this node.
  void complete() { host_->ctx_complete(self_); }

  bool colored() const { return host_->ctx_colored(self_); }

  /// Record a message this node intentionally discarded under backpressure
  /// (e.g. a pull request beyond the answer-backlog cap).  Feeds the
  /// msgs_dropped metric; does not count as a send.
  void note_dropped() { host_->ctx_note_dropped(self_); }

 private:
  HostT* host_;
  NodeId self_;
};

}  // namespace cg

// Packed per-node bitmaps for the structure-of-arrays memory plan.
//
// PackedBits is a word-granularity bitmap over the node id space.  The
// sharded engine keeps one bit per node for the states its sweeps care
// about (Active, colored, inbox-nonempty) so a step's tick sweep scans
// 64 nodes per word load and skips runs of idle/done nodes entirely -
// the stepped engine's per-step O(N) byte scan is what caps it at small
// N (docs/PERF.md §6).
//
// Thread-safety contract (sharded engine): shard blocks are 64-node-
// aligned, so two shards never touch the same word.  No atomics needed.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace cg {

class PackedBits {
 public:
  void reset(NodeId n) {
    n_ = n;
    words_.assign(word_count(n), 0);
  }

  NodeId size() const { return n_; }

  void set(NodeId i) { words_[word(i)] |= bit(i); }
  void clear(NodeId i) { words_[word(i)] &= ~bit(i); }
  bool test(NodeId i) const { return (words_[word(i)] & bit(i)) != 0; }

  /// Visit every set bit in [lo, hi) in increasing order.  Scans whole
  /// words and uses countr_zero within a word, so sparse ranges cost
  /// ~range/64 loads.
  template <class Fn>
  void for_each_set(NodeId lo, NodeId hi, Fn&& fn) const {
    if (lo >= hi) return;
    std::size_t w = word(lo);
    const std::size_t w_end = word(hi - 1);
    std::uint64_t bits = words_[w] & (~0ULL << (static_cast<unsigned>(lo) & 63));
    for (;;) {
      if (w == w_end)
        bits &= ~0ULL >> (63 - (static_cast<unsigned>(hi - 1) & 63));
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        fn(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
      }
      if (w == w_end) break;
      bits = words_[++w];
    }
  }

  /// Visit every bit set in BOTH this and `other` within [lo, hi), in
  /// increasing order.  Word-wise AND, so a sweep over "active AND
  /// pending" costs the same ~range/64 loads as a plain sweep (the
  /// sharded engine's SBRB kernel uses this to skip idle nodes).
  /// `other` must cover the range.
  template <class Fn>
  void for_each_set_and(const PackedBits& other, NodeId lo, NodeId hi,
                        Fn&& fn) const {
    if (lo >= hi) return;
    std::size_t w = word(lo);
    const std::size_t w_end = word(hi - 1);
    std::uint64_t bits = (words_[w] & other.words_[w]) &
                         (~0ULL << (static_cast<unsigned>(lo) & 63));
    for (;;) {
      if (w == w_end)
        bits &= ~0ULL >> (63 - (static_cast<unsigned>(hi - 1) & 63));
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        fn(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
      }
      if (w == w_end) break;
      ++w;
      bits = words_[w] & other.words_[w];
    }
  }

  /// Number of set bits in [lo, hi) (word-masked popcounts).
  NodeId count_in(NodeId lo, NodeId hi) const {
    if (lo >= hi) return 0;
    std::size_t w = word(lo);
    const std::size_t w_end = word(hi - 1);
    std::uint64_t bits = words_[w] & (~0ULL << (static_cast<unsigned>(lo) & 63));
    NodeId cnt = 0;
    for (;;) {
      if (w == w_end)
        bits &= ~0ULL >> (63 - (static_cast<unsigned>(hi - 1) & 63));
      cnt += static_cast<NodeId>(std::popcount(bits));
      if (w == w_end) break;
      bits = words_[++w];
    }
    return cnt;
  }

  /// True if no bit is set in [lo, hi).
  bool none_in(NodeId lo, NodeId hi) const {
    return count_in(lo, hi) == 0;
  }

  std::size_t footprint_bytes() const {
    return words_.capacity() * sizeof(std::uint64_t);
  }

 private:
  static std::size_t word_count(NodeId n) {
    return (static_cast<std::size_t>(n) + 63) / 64;
  }
  static std::size_t word(NodeId i) { return static_cast<std::size_t>(i) / 64; }
  static std::uint64_t bit(NodeId i) {
    return 1ULL << (static_cast<unsigned>(i) & 63);
  }

  NodeId n_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace cg

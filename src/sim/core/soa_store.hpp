// Structure-of-arrays node state for the sharded engine.
//
// SoaNodeStore<Node> is the flat memory plan behind million-node runs:
//   * NodeStateStore - the canonical lifecycle/timestamp arrays every
//     engine shares (semantics and RunMetrics finalization stay in ONE
//     place, so the sharded engine cannot drift from the others);
//   * packed bitmaps MIRRORING the Active and colored states (kept
//     coherent by the transition wrappers below), so per-step sweeps
//     scan 64 nodes per word instead of a byte per node;
//   * the dense protocol slab (vector<Node>, contiguous - GOS nodes are
//     ~16 bytes, so a million nodes fit in a few cache-resident MB) and
//     the per-node RNG streams.
//
// The existing Protocol object API (on_start/on_tick/on_receive against
// BasicCtx) keeps working: the engine's shard view forwards every ctx_*
// transition through this store, which updates the byte arrays and the
// bitmaps together.  Protocols never see the bitmaps - they are an engine
// -side acceleration structure, not model state.
//
// Thread-safety contract (sharded engine): all mutating calls for node i
// come from i's owner shard, and shard blocks are 64-node-aligned, so
// byte arrays stay race-free per the NodeStateStore contract and bitmap
// words are owner-disjoint.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/core/bitset.hpp"
#include "sim/core/node_state.hpp"

namespace cg {

template <class Node>
class SoaNodeStore {
 public:
  using Params = typename Node::Params;

  void reset(NodeId n, std::uint64_t seed, const Params& params) {
    life_.reset(n);
    active_.reset(n);
    colored_.reset(n);
    const auto sz = static_cast<std::size_t>(n);
    if constexpr (kNodeReset) {
      if (nodes_.size() == sz) {
        for (NodeId i = 0; i < n; ++i)
          nodes_[static_cast<std::size_t>(i)].reset_for_run(params, i, n);
      } else {
        nodes_.clear();
        nodes_.reserve(sz);
        for (NodeId i = 0; i < n; ++i) nodes_.emplace_back(params, i, n);
      }
    } else {
      nodes_.clear();
      nodes_.reserve(sz);
      for (NodeId i = 0; i < n; ++i) nodes_.emplace_back(params, i, n);
    }
    rng_.clear();
    rng_.reserve(sz);
    for (NodeId i = 0; i < n; ++i)
      rng_.emplace_back(derive_seed(seed, static_cast<std::uint64_t>(i)));
  }

  NodeId n() const { return life_.n(); }
  Node& node(NodeId i) { return nodes_[static_cast<std::size_t>(i)]; }
  const Node& node(NodeId i) const {
    return nodes_[static_cast<std::size_t>(i)];
  }
  Xoshiro256& rng(NodeId i) { return rng_[static_cast<std::size_t>(i)]; }

  // --- lifecycle reads (delegate to the canonical store) -----------------
  bool alive(NodeId i) const { return life_.alive(i); }
  bool done(NodeId i) const { return life_.done(i); }
  NodeRunState state(NodeId i) const { return life_.state(i); }
  bool colored(NodeId i) const { return life_.colored(i); }
  Step activated_at(NodeId i) const { return life_.activated_at(i); }
  const NodeStateStore& life() const { return life_; }

  /// Bitmap of Active nodes (engine sweep acceleration; read-only).
  const PackedBits& active_bits() const { return active_; }

  // --- dense SBRB state block (sharded SBRB step kernel) ------------------
  // One bit per node: "has staged sends" (SbrbNode::sbrb_idle() == false).
  // The sharded engine's SBRB kernel sweeps pending AND active instead of
  // ticking every active node, so idle nodes cost nothing per step.  Only
  // allocated when the engine asks for it; like the lifecycle bitmaps,
  // words are owner-disjoint under 64-aligned shard blocks.

  /// (Re)allocate and clear the pending-sends bitmap for n() nodes.
  void reset_sbrb_block() { sbrb_pending_.reset(life_.n()); }
  const PackedBits& sbrb_pending_bits() const { return sbrb_pending_; }
  void sbrb_set_pending(NodeId i) { sbrb_pending_.set(i); }
  void sbrb_clear_pending(NodeId i) { sbrb_pending_.clear(i); }

  // --- transitions (byte arrays + bitmaps updated together) --------------
  void pre_fail(NodeId i) { life_.pre_fail(i); }

  bool activate(NodeId i, Step now) {
    if (!life_.activate(i, now)) return false;
    active_.set(i);
    return true;
  }

  NodeStateStore::Transition complete(NodeId i, Step now) {
    const auto t = life_.complete(i, now);
    if (t.was_active) active_.clear(i);
    return t;
  }

  NodeStateStore::Transition kill(NodeId i) {
    const auto t = life_.kill(i);
    if (t.was_active) active_.clear(i);
    return t;
  }

  bool revive(NodeId i, const Params& params) {
    if (!life_.revive(i)) return false;
    // Fresh protocol instance, uncolored and passive (see sim/engine.hpp).
    if constexpr (kNodeReset)
      nodes_[static_cast<std::size_t>(i)].reset_for_run(params, i, life_.n());
    else
      nodes_[static_cast<std::size_t>(i)] = Node(params, i, life_.n());
    colored_.clear(i);
    return true;
  }

  bool mark_colored(NodeId i, Step now, std::uint32_t payload = 0) {
    if (!life_.mark_colored(i, now, payload)) return false;
    colored_.set(i);
    return true;
  }

  bool mark_delivered(NodeId i, Step now) {
    return life_.mark_delivered(i, now);
  }

  std::uint32_t held_payload(NodeId i) const { return life_.held_payload(i); }
  void set_held_payload(NodeId i, std::uint32_t d) {
    life_.set_held_payload(i, d);
  }
  void mark_byzantine(NodeId i) { life_.mark_byzantine(i); }

  void finalize(RunMetrics& m, NodeId root, Step t_end,
                bool record_node_detail) const {
    life_.finalize(m, root, t_end, record_node_detail);
  }

  /// Bytes held by the per-node arrays (memory-plan accounting for
  /// EngineProfile::bytes_per_node).
  std::size_t footprint_bytes() const {
    return nodes_.capacity() * sizeof(Node) +
           rng_.capacity() * sizeof(Xoshiro256) +
           active_.footprint_bytes() + colored_.footprint_bytes() +
           sbrb_pending_.footprint_bytes() +
           static_cast<std::size_t>(life_.n()) *
               (2 * sizeof(std::uint8_t) + 4 * sizeof(Step));
  }

 private:
  /// Same trait as Engine/ShardedEngine: in-place capacity-preserving
  /// node reset, used for trial reruns and restart revival.
  static constexpr bool kNodeReset =
      requires(Node& nd, const Params& p) {
        nd.reset_for_run(p, NodeId{0}, NodeId{2});
      };

  NodeStateStore life_;
  PackedBits active_;   // mirrors state == kActive
  PackedBits colored_;  // mirrors colored_at != kNever
  PackedBits sbrb_pending_;  // SBRB kernel: nodes with staged sends
  std::vector<Node> nodes_;
  std::vector<Xoshiro256> rng_;
};

}  // namespace cg

// Optional event tracing, used by the worked-example programs that
// reproduce Figures 2, 4 and 6 and by debugging tests.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "proto/message.hpp"

namespace cg {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kSend,      ///< node emitted a message to peer
    kDeliver,   ///< message from peer processed at node
    kColored,   ///< node obtained the payload
    kDelivered, ///< node formally delivered (FCG semantics)
    kComplete,  ///< node exited the algorithm
    kFail,      ///< node crashed
    kRestart,   ///< node returned from a crash (uncolored, protocol reset)
    kLost,      ///< message from node to peer lost on the wire
    kForged,       ///< Byzantine sender forged the message to peer
    kEquivocated,  ///< Byzantine sender equivocated the payload to peer
  };

  Step step = 0;
  Kind kind = Kind::kSend;
  NodeId node = kNoNode;
  NodeId peer = kNoNode;       ///< send target / message source (if any)
  Tag tag = Tag::kGossip;      ///< for kSend / kDeliver

  friend bool operator==(const TraceEvent& a, const TraceEvent& b) {
    return a.step == b.step && a.kind == b.kind && a.node == b.node &&
           a.peer == b.peer && a.tag == b.tag;
  }
};

/// Number of TraceEvent::Kind values (for per-kind counter arrays).
inline constexpr int kTraceKindCount = 10;

const char* trace_kind_name(TraceEvent::Kind k);

/// Inverse of trace_kind_name; returns false for unknown names.
bool trace_kind_from_name(std::string_view name, TraceEvent::Kind& out);

/// Abstract sink; the engine calls this if RunConfig::trace is set.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& ev) = 0;
};

/// Collects every event in memory.
class VectorTrace final : public TraceSink {
 public:
  void on_event(const TraceEvent& ev) override { events_.push_back(ev); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Human-readable one-line-per-event dump.
  std::string to_string() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace cg

// Failure schedules: which nodes are inactive from the start and which
// crash at a given simulated step (Section II crash-failure model).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace cg {

struct OnlineFailure {
  NodeId node = kNoNode;
  Step at_step = 0;  ///< node performs no action at or after this step
};

/// Crash-restart: the node crashes at down_at and returns at up_at with its
/// protocol state RESET (fresh Node object, uncolored, Idle).  Messages in
/// flight towards it when it crashed may still arrive after the restart -
/// a rebooted host keeps its address.  A node restarts at most once per
/// run and must not also appear in pre_failed/online.
struct Restart {
  NodeId node = kNoNode;
  Step down_at = 0;  ///< crash step (same semantics as OnlineFailure)
  Step up_at = 0;    ///< first step the node is alive again (> down_at)
};

struct FailureSchedule {
  /// Nodes inactive before the broadcast starts (set F at t=0).
  std::vector<NodeId> pre_failed;
  /// Nodes that crash while the algorithm runs.
  std::vector<OnlineFailure> online;
  /// Nodes that crash and later rejoin uncolored.
  std::vector<Restart> restarts;

  bool empty() const {
    return pre_failed.empty() && online.empty() && restarts.empty();
  }

  std::size_t online_count() const { return online.size(); }

  /// Sample a schedule with `n_pre` distinct pre-failed nodes and `n_online`
  /// distinct online failures at uniform steps in [0, horizon).  The root is
  /// excluded unless `root_can_fail`.  Pre-failed and online sets are
  /// disjoint (a node crashes at most once).
  static FailureSchedule random(NodeId n, int n_pre, int n_online, Step horizon,
                                Xoshiro256& rng, NodeId root = 0,
                                bool root_can_fail = false);

  /// Adversarial pattern for the ring-based correction phases: `count`
  /// CONSECUTIVE ring positions starting at `first` fail (pre-failed when
  /// at_step < 0, otherwise online at that step).  A contiguous dead block
  /// is the worst case for ring sweeps - it maximizes the chain the
  /// survivors must cover.
  static FailureSchedule contiguous(NodeId n, NodeId first, int count,
                                    Step at_step = -1);

  /// Add `count` distinct crash-restart entries (disjoint from the nodes
  /// already scheduled here; the root is excluded).  Each node goes down at
  /// a uniform step in [0, horizon) and returns `outage` steps later.
  void add_random_restarts(NodeId n, int count, Step horizon, Step outage,
                           Xoshiro256& rng, NodeId root = 0);

  /// Expected number of node failures in a `job_hours`-long job on `n` nodes
  /// with the given per-node MTBF (paper Section IV-C:
  /// f_bar(N) = job_hours * N / mtbf_hours; TSUBAME 2.0 MTBF = 18304 h).
  static double expected_failures(NodeId n, double job_hours = 12.0,
                                  double mtbf_hours = 18304.0) {
    return job_hours * static_cast<double>(n) / mtbf_hours;
  }
};

}  // namespace cg

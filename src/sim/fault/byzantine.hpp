// Byzantine adversary tier: nodes that lie instead of merely dying
// (docs/FAULTS.md "Byzantine tier").  A Byzantine node still runs the
// honest protocol code; the adversary sits between the node and the wire
// and rewrites what it sends.  Four roles:
//
//   * silent      - sends nothing at all (a crash the membership never
//                   detects: the node keeps receiving and occupying its
//                   ring position);
//   * equivocator - payload-bearing sends carry payload A to one
//                   hash-selected half of destinations and payload B to
//                   the other half.  Only the broadcast SOURCE can sign
//                   two payloads, so a Byzantine root equivocates with a
//                   *signed* alternate (kAltPayload) while a non-root
//                   equivocator's alternate carries kForgedBit;
//   * corruptor   - flips the payload/SOS content of every send to a
//                   per-(sender,dest,step) forged digest (kForgedBit);
//   * spammer     - rewrites each of its sends into an unsolicited forged
//                   gossip ("colored") message to a hash-chosen victim.
//
// Signature model: payloads are digests (Message::payload).  kTruePayload
// and kAltPayload are "validly signed by the source"; any digest with
// kForgedBit set is an unforgeable-signature failure that authenticated
// protocols (SBRB, src/gossip/sbrb.hpp) detect and drop, while the plain
// gossip family - which assumes a crash-only world - accepts it.
//
// Determinism: every adversary decision is a pure splitmix64 hash of
// (seed, from, to, step, tag) - no RNG stream is consumed - so Byzantine
// runs stay byte-identical across all four engines, shard counts and
// thread counts, and adding Byzantine nodes never perturbs the existing
// failure/straggler/partition draws.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "proto/message.hpp"

namespace cg {

/// Adversary role of one Byzantine node.
enum class ByzMode : std::uint8_t {
  kSilent = 0,
  kEquivocator,
  kCorruptor,
  kSpammer,
};

/// Number of ByzMode values (for parsing / counter arrays).
inline constexpr int kByzModeCount = 4;

constexpr const char* byz_mode_name(ByzMode m) {
  switch (m) {
    case ByzMode::kSilent: return "silent";
    case ByzMode::kEquivocator: return "equivocator";
    case ByzMode::kCorruptor: return "corruptor";
    case ByzMode::kSpammer: return "spammer";
  }
  return "?";
}

/// Shared --byz-mode parsing (mirrors engine_from_name); returns false for
/// unknown names.
constexpr bool byz_mode_from_name(std::string_view name, ByzMode& out) {
  for (int m = 0; m < kByzModeCount; ++m) {
    const auto mode = static_cast<ByzMode>(m);
    if (name == byz_mode_name(mode)) {
      out = mode;
      return true;
    }
  }
  return false;
}

/// For error messages: "silent|equivocator|corruptor|spammer".
constexpr const char* byz_mode_names_list() {
  return "silent|equivocator|corruptor|spammer";
}

/// Payload digests (Message::payload).  0 means "not carrying a payload".
inline constexpr std::uint32_t kTruePayload = 1;  ///< the root's real payload
/// The second validly-signed payload an equivocating ROOT broadcasts.
inline constexpr std::uint32_t kAltPayload = 2;
/// Set on digests no honest signature could have produced.
inline constexpr std::uint32_t kForgedBit = 0x8000'0000u;

/// True when `d` carries a valid source signature.  Authenticated
/// protocols drop unsigned payloads at receive; the crash-model gossip
/// family never checks.
constexpr bool payload_signed(std::uint32_t d) {
  return d != 0 && (d & kForgedBit) == 0;
}

/// One Byzantine node with its role.
struct ByzantineNode {
  NodeId node = kNoNode;
  ByzMode mode = ByzMode::kSilent;
};

/// The per-run Byzantine schedule (RunConfig::byzantine), FailureSchedule-
/// style: explicit node list, validated by config_error() (in range, no
/// duplicates, disjoint from the crash/restart sets, root excluded unless
/// explicitly configured).
struct ByzantineFaults {
  std::vector<ByzantineNode> nodes;

  bool empty() const { return nodes.empty(); }

  /// Sample `count` distinct Byzantine nodes, all with role `mode`.  The
  /// root is excluded unless `root_can_be_byz` (an equivocating root is
  /// the canonical consistency attack - opt in deliberately).
  static ByzantineFaults random(NodeId n, int count, ByzMode mode,
                                Xoshiro256& rng, NodeId root = 0,
                                bool root_can_be_byz = false) {
    ByzantineFaults out;
    if (count <= 0 || n <= 0) return out;
    std::vector<std::uint8_t> taken(static_cast<std::size_t>(n), 0);
    if (!root_can_be_byz && root >= 0 && root < n) taken[root] = 1;
    for (int k = 0; k < count; ++k) {
      NodeId pick = kNoNode;
      for (int tries = 0; tries < 16 * n; ++tries) {
        const NodeId cand = static_cast<NodeId>(rng.bounded(
            static_cast<std::uint64_t>(n)));
        if (!taken[cand]) {
          pick = cand;
          break;
        }
      }
      if (pick == kNoNode) break;  // set exhausted
      taken[pick] = 1;
      out.nodes.push_back({pick, mode});
    }
    return out;
  }
};

/// What the adversary did to one send (drives trace events + counters).
enum class ByzAction : std::uint8_t {
  kHonest,       ///< message passed through unchanged
  kSuppressed,   ///< message silently dropped at the sender
  kEquivocated,  ///< payload replaced by the sender's alternate digest
  kForged,       ///< payload (and possibly tag/destination) forged
};

/// The engine-side transform hook.  reset() from a RunConfig, then call
/// transform() inside do_send for every outgoing message.  Stateless per
/// message (pure hash decisions), hence trivially thread-safe and
/// identical across engines.
class ByzantineModel {
 public:
  void reset(NodeId n, NodeId root, std::uint64_t seed,
             const ByzantineFaults& faults) {
    n_ = n;
    root_ = root;
    salt_ = derive_seed(seed, 0xb12a);
    role_.assign(static_cast<std::size_t>(n), 0);
    for (const auto& b : faults.nodes)
      if (b.node >= 0 && b.node < n)
        role_[b.node] = static_cast<std::uint8_t>(b.mode) + 1;
    any_ = !faults.nodes.empty();
  }

  bool any() const { return any_; }
  bool is_byzantine(NodeId i) const { return any_ && role_[i] != 0; }

  /// Apply the sender's role to an outgoing message.  May rewrite the
  /// payload, tag and destination.  Call BEFORE the engine routes/owns the
  /// destination (the spammer redirects), AFTER the true payload digest
  /// has been stamped.
  ByzAction transform(NodeId from, NodeId& to, Message& m, Step now) const {
    if (!any_ || role_[from] == 0) return ByzAction::kHonest;
    const auto mode = static_cast<ByzMode>(role_[from] - 1);
    switch (mode) {
      case ByzMode::kSilent:
        return ByzAction::kSuppressed;
      case ByzMode::kEquivocator: {
        // Only payload-bearing sends can equivocate; control messages
        // (acks, pull requests from uncolored nodes) pass through.
        if (m.payload == 0) return ByzAction::kHonest;
        if ((decide(from, to, now, m.tag) & 1) == 0) return ByzAction::kHonest;
        m.payload = from == root_ ? kAltPayload : alt_digest(from);
        return ByzAction::kEquivocated;
      }
      case ByzMode::kCorruptor: {
        if (m.payload == 0) return ByzAction::kHonest;
        m.payload = forged_digest(from, to, now);
        return ByzAction::kForged;
      }
      case ByzMode::kSpammer: {
        // Unsolicited "colored" gossip to a hash-chosen victim.
        if (n_ > 1) {
          const NodeId victim = static_cast<NodeId>(
              decide(from, to, now, m.tag) % static_cast<std::uint64_t>(n_));
          if (victim != from) to = victim;
        }
        m.tag = Tag::kGossip;
        m.time = now;
        m.known_count = 0;
        m.payload = forged_digest(from, to, now);
        return ByzAction::kForged;
      }
    }
    return ByzAction::kHonest;
  }

 private:
  std::uint64_t decide(NodeId from, NodeId to, Step now, Tag tag) const {
    SplitMix64 sm(salt_ ^ (static_cast<std::uint64_t>(from) << 40) ^
                  (static_cast<std::uint64_t>(to) << 16) ^
                  (static_cast<std::uint64_t>(now) << 24) ^
                  static_cast<std::uint64_t>(tag));
    sm.next();
    return sm.next();
  }

  /// A non-root equivocator cannot sign, so its alternate is forged.
  std::uint32_t alt_digest(NodeId from) const {
    SplitMix64 sm(salt_ ^ 0xe41u ^ static_cast<std::uint64_t>(from));
    return static_cast<std::uint32_t>(sm.next()) | kForgedBit;
  }

  std::uint32_t forged_digest(NodeId from, NodeId to, Step now) const {
    return static_cast<std::uint32_t>(decide(from, to, now, Tag::kGossip)) |
           kForgedBit;
  }

  std::vector<std::uint8_t> role_;
  std::uint64_t salt_ = 0;
  NodeId n_ = 0;
  NodeId root_ = 0;
  bool any_ = false;
};

}  // namespace cg

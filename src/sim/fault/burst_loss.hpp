// Gilbert-Elliott correlated (bursty) message loss.
//
// Real interconnects do not lose messages i.i.d.: congestion, link flaps
// and switch resets kill several consecutive messages from the same
// sender.  The classic two-state Gilbert-Elliott model captures that: each
// sender owns a Markov chain over {good, bad}; the chain makes one
// transition per simulated STEP (not per message), and each message drawn
// while the chain is bad is lost with probability loss_bad (loss_good in
// the good state, usually 0).
//
// Determinism/parity contract: the chain and the loss draws consume one
// DEDICATED per-sender RNG stream (kBurstStream in NetworkModel).  State
// is advanced lazily - route(from, ...) catches the chain up to `now`
// with exactly (now - last_advanced) transition draws - so the draw
// sequence depends only on the sender's send times, which are identical
// across the stepped, event-driven and parallel engines.  Advancing per
// step rather than per message also means a retransmit backoff actually
// escapes a burst: waiting longer really does give the channel time to
// recover.
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"

namespace cg {

struct BurstLoss {
  double p_good_bad = 0.0;  ///< per-step P(good -> bad); 0 disables the model
  double p_bad_good = 0.0;  ///< per-step P(bad -> good)
  double loss_good = 0.0;   ///< per-message loss probability in `good`
  double loss_bad = 1.0;    ///< per-message loss probability in `bad`

  bool enabled() const { return p_good_bad > 0.0; }

  /// Build a channel with a target mean burst length (steps spent in `bad`
  /// per visit, >= 1) and overall long-run loss rate (stationary fraction
  /// of time in `bad`, since loss_bad = 1 and loss_good = 0).
  static BurstLoss from_rate(double overall_loss, double mean_burst_steps) {
    CG_CHECK(overall_loss > 0.0 && overall_loss < 1.0);
    CG_CHECK(mean_burst_steps >= 1.0);
    BurstLoss b;
    b.p_bad_good = 1.0 / mean_burst_steps;
    // Stationary P(bad) = p_gb / (p_gb + p_bg) = overall_loss.
    b.p_good_bad = overall_loss * b.p_bad_good / (1.0 - overall_loss);
    b.loss_good = 0.0;
    b.loss_bad = 1.0;
    return b;
  }

  /// Long-run fraction of steps spent in the bad state.
  double stationary_bad() const {
    return enabled() ? p_good_bad / (p_good_bad + p_bad_good) : 0.0;
  }
};

}  // namespace cg

// Straggler injection: per-node send-slot slowdown.
//
// A straggler's messages take `factor` times the LogP base delay to reach
// their destination (its NIC/OS is slow to get bytes on the wire), while
// the node itself still ticks on the global step clock.  This models the
// classic "one slow node stretches the tail" pathology without changing
// any protocol's step arithmetic.  Deterministic: the factor is a pure
// per-node constant; no RNG is consumed.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace cg {

struct Straggler {
  NodeId node = kNoNode;
  Step factor = 2;  ///< multiplies the LogP base delay of this node's sends
};

/// Sample `count` distinct stragglers (root excluded) with a common factor.
inline std::vector<Straggler> random_stragglers(NodeId n, int count,
                                                Step factor, Xoshiro256& rng,
                                                NodeId root = 0) {
  CG_CHECK(count >= 0 && count < n);
  CG_CHECK(factor >= 1);
  std::vector<std::uint8_t> used(static_cast<std::size_t>(n), 0);
  used[static_cast<std::size_t>(root)] = 1;
  std::vector<Straggler> out;
  out.reserve(static_cast<std::size_t>(count));
  while (static_cast<int>(out.size()) < count) {
    const auto cand =
        static_cast<NodeId>(rng.bounded(static_cast<std::uint64_t>(n)));
    if (used[static_cast<std::size_t>(cand)] != 0) continue;
    used[static_cast<std::size_t>(cand)] = 1;
    out.push_back({cand, factor});
  }
  return out;
}

}  // namespace cg

// RunConfig validation: turn bad fault/network parameters into a readable
// error message instead of a mid-run CG_CHECK abort.
//
// The harness (run_once) checks this before constructing an engine, and
// the example drivers surface the message on stderr with a clean exit, so
// a typo'd --drop-prob=1.3 or an overlapping crash/restart schedule fails
// fast with an explanation.  Values that are unusual but meaningful - e.g.
// drop_prob == 1.0 (blackhole links) - validate fine.
#pragma once

#include <string>

#include "sim/core/run_config.hpp"

namespace cg {

/// Empty string when `cfg` is well-formed; otherwise a one-line description
/// of the first problem found.
std::string config_error(const RunConfig& cfg);

}  // namespace cg

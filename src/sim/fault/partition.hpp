// Transient bidirectional network partitions.
//
// During [from, until) the member set is unreachable from the rest of the
// system in BOTH directions: any message routed across the boundary while
// the window is open is lost on the wire (and shows up as a kLost trace
// event).  Messages already in flight when the window opens still arrive -
// the partition models a forwarding outage, not queue truncation.
// Deterministic: membership is a pure function of the config; no RNG is
// consumed, so partitions never perturb the loss/jitter streams.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace cg {

struct PartitionWindow {
  Step from = 0;   ///< first step the partition is up
  Step until = 0;  ///< first step it is healed again (half-open window)
  std::vector<NodeId> members;  ///< one side of the cut

  bool active_at(Step now) const { return now >= from && now < until; }
};

/// Sample a partition of `size` distinct nodes (root excluded so the
/// broadcast can start) over the given window.
inline PartitionWindow random_partition(NodeId n, int size, Step from,
                                        Step until, Xoshiro256& rng,
                                        NodeId root = 0) {
  CG_CHECK(size >= 0 && size < n);
  PartitionWindow pw;
  pw.from = from;
  pw.until = until;
  std::vector<std::uint8_t> used(static_cast<std::size_t>(n), 0);
  used[static_cast<std::size_t>(root)] = 1;
  pw.members.reserve(static_cast<std::size_t>(size));
  while (static_cast<int>(pw.members.size()) < size) {
    const auto cand =
        static_cast<NodeId>(rng.bounded(static_cast<std::uint64_t>(n)));
    if (used[static_cast<std::size_t>(cand)] != 0) continue;
    used[static_cast<std::size_t>(cand)] = 1;
    pw.members.push_back(cand);
  }
  return pw;
}

}  // namespace cg

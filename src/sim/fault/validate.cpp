#include "sim/fault/validate.hpp"

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace cg {

namespace {

std::string err(const char* fmt, long long a = 0, long long b = 0) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

bool in_range(NodeId i, NodeId n) { return i >= 0 && i < n; }

bool prob(double p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

std::string config_error(const RunConfig& cfg) {
  if (cfg.n < 1) return err("n must be >= 1 (got %lld)", cfg.n);
  if (!in_range(cfg.root, cfg.n))
    return err("root %lld out of range [0, %lld)", cfg.root, cfg.n);
  if (!prob(cfg.drop_prob))
    return "drop_prob must be in [0, 1] (1.0 = blackhole links)";
  if (cfg.jitter_max < 0) return "jitter_max must be >= 0";
  if (cfg.link_extra_max < 0) return "link_extra_max must be >= 0";

  const auto& b = cfg.burst;
  if (!prob(b.p_good_bad) || !prob(b.p_bad_good) || !prob(b.loss_good) ||
      !prob(b.loss_bad))
    return "burst-loss probabilities must be in [0, 1]";
  if (b.enabled() && b.p_bad_good <= 0.0)
    return "burst loss enabled but p_bad_good == 0: bursts would never end";

  // Failure schedule: every node in range, each node crashed at most once
  // across pre_failed / online / restarts, root never scheduled, restart
  // windows non-empty.
  std::unordered_set<NodeId> crashed;
  auto claim = [&](NodeId i) { return crashed.insert(i).second; };
  for (const NodeId i : cfg.failures.pre_failed) {
    if (!in_range(i, cfg.n))
      return err("pre_failed node %lld out of range", i);
    if (i == cfg.root) return "root cannot be pre-failed";
    if (!claim(i)) return err("node %lld scheduled to fail twice", i);
  }
  for (const auto& of : cfg.failures.online) {
    if (!in_range(of.node, cfg.n))
      return err("online-failure node %lld out of range", of.node);
    if (of.at_step < 0) return "online failure at negative step";
    if (!claim(of.node))
      return err("node %lld scheduled to fail twice", of.node);
  }
  for (const auto& r : cfg.failures.restarts) {
    if (!in_range(r.node, cfg.n))
      return err("restart node %lld out of range", r.node);
    if (r.node == cfg.root) return "root cannot restart";
    if (r.down_at < 0) return "restart down_at must be >= 0";
    if (r.up_at <= r.down_at)
      return err("restart of node %lld has up_at <= down_at", r.node);
    if (!claim(r.node))
      return err("node %lld scheduled to fail twice", r.node);
  }

  // Byzantine set: in range, no duplicate roles for a node, and disjoint
  // from every crash/restart schedule - a node is either crash-faulty or
  // Byzantine, never both (the `crashed` set above already holds all of
  // pre_failed / online / restarts).  The root may be Byzantine only when
  // configured explicitly (ByzantineFaults::random excludes it; a config
  // that lists it has opted in - the equivocating-root attack).
  std::unordered_set<NodeId> byz;
  for (const auto& bn : cfg.byzantine.nodes) {
    if (!in_range(bn.node, cfg.n))
      return err("byzantine node %lld out of range", bn.node);
    if (!byz.insert(bn.node).second)
      return err("node %lld listed as byzantine twice", bn.node);
    if (crashed.count(bn.node) != 0)
      return err("node %lld is both byzantine and crash/restart-scheduled",
                 bn.node);
  }

  std::unordered_set<NodeId> straggling;
  for (const auto& s : cfg.stragglers) {
    if (!in_range(s.node, cfg.n))
      return err("straggler node %lld out of range", s.node);
    if (s.factor < 1)
      return err("straggler factor must be >= 1 (node %lld)", s.node);
    if (!straggling.insert(s.node).second)
      return err("node %lld listed as straggler twice", s.node);
  }

  for (const auto& pw : cfg.partitions) {
    if (pw.from < 0 || pw.until <= pw.from)
      return "partition window must satisfy 0 <= from < until";
    std::unordered_set<NodeId> members;
    for (const NodeId i : pw.members) {
      if (!in_range(i, cfg.n))
        return err("partition member %lld out of range", i);
      if (!members.insert(i).second)
        return err("partition lists node %lld twice", i);
    }
  }

  if (cfg.max_steps < 0) return "max_steps must be >= 0 (0 = auto)";
  return {};
}

}  // namespace cg

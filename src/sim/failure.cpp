#include "sim/failure.hpp"

#include <unordered_set>

#include "common/check.hpp"

namespace cg {

FailureSchedule FailureSchedule::random(NodeId n, int n_pre, int n_online,
                                        Step horizon, Xoshiro256& rng,
                                        NodeId root, bool root_can_fail) {
  CG_CHECK(n >= 1);
  CG_CHECK(n_pre >= 0 && n_online >= 0);
  const int excluded = root_can_fail ? 0 : 1;
  CG_CHECK_MSG(n_pre + n_online <= n - excluded,
               "more failures requested than failable nodes");

  FailureSchedule fs;
  std::unordered_set<NodeId> used;
  if (!root_can_fail) used.insert(root);

  auto pick = [&]() {
    for (;;) {
      const auto cand =
          static_cast<NodeId>(rng.bounded(static_cast<std::uint64_t>(n)));
      if (used.insert(cand).second) return cand;
    }
  };

  fs.pre_failed.reserve(static_cast<std::size_t>(n_pre));
  for (int i = 0; i < n_pre; ++i) fs.pre_failed.push_back(pick());

  fs.online.reserve(static_cast<std::size_t>(n_online));
  for (int i = 0; i < n_online; ++i) {
    const Step at = horizon > 0 ? rng.uniform(0, horizon - 1) : 0;
    fs.online.push_back({pick(), at});
  }
  return fs;
}

void FailureSchedule::add_random_restarts(NodeId n, int count, Step horizon,
                                          Step outage, Xoshiro256& rng,
                                          NodeId root) {
  CG_CHECK(count >= 0);
  CG_CHECK(outage >= 1);
  std::unordered_set<NodeId> used;
  used.insert(root);
  for (const NodeId i : pre_failed) used.insert(i);
  for (const auto& of : online) used.insert(of.node);
  for (const auto& r : restarts) used.insert(r.node);
  CG_CHECK_MSG(static_cast<NodeId>(used.size()) + count <= n,
               "more restarts requested than schedulable nodes");
  restarts.reserve(restarts.size() + static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    NodeId node;
    for (;;) {
      node = static_cast<NodeId>(rng.bounded(static_cast<std::uint64_t>(n)));
      if (used.insert(node).second) break;
    }
    const Step down = horizon > 1 ? rng.uniform(0, horizon - 1) : 0;
    restarts.push_back({node, down, down + outage});
  }
}

FailureSchedule FailureSchedule::contiguous(NodeId n, NodeId first, int count,
                                            Step at_step) {
  CG_CHECK(n >= 1 && count >= 0 && count < n);
  FailureSchedule fs;
  for (int k = 0; k < count; ++k) {
    const auto node = static_cast<NodeId>(
        (static_cast<std::int64_t>(first) + k) % n);
    if (at_step < 0) {
      fs.pre_failed.push_back(node);
    } else {
      fs.online.push_back({node, at_step});
    }
  }
  return fs;
}

}  // namespace cg

// Window-sharded execution over the structure-of-arrays node store - the
// engine for million-node runs.
//
// Nodes are split into contiguous 64-aligned blocks, one per shard, and
// each shard owns a PRIVATE delivery calendar (the PR 4 ring-of-slots
// kernel) plus the SoA state for its block.  The LogP model gives a
// conservative lookahead: every message emitted at step s is delivered no
// earlier than s + L/O + 1 (jitter, stragglers and link extras only ADD
// delay), so a window of W = L/O + 1 steps can be simulated by every
// shard INDEPENDENTLY - all deliveries inside the window were scheduled
// in earlier windows and already sit in the owning shard's calendar.
//
// Structure per window, for each shard:
//   phase A: run the window's W steps locally - revivals, due deliveries,
//            tick sweep over the Active bitmap; same-shard sends go
//            straight into the private calendar, cross-shard sends into
//            the shard's parity outbox;
//   barrier (SenseBarrier; completion folds per-shard deltas, flushes
//            trace buffers in shard order, advances the window, decides
//            termination);
//   phase B: drain every other shard's parity outbox into the private
//            calendar (owned destinations only).
//
// One barrier per WINDOW (the parallel engine pays one per STEP); the
// second barrier is avoided with the same parity-double-buffered outboxes
// (see runtime/parallel_engine.hpp).  Each due calendar slot is sorted by
// (send step, sender) before dispatch - a unique key, since the SendGate
// admits one emission per node per step - which realizes the canonical
// (step, sender, dest) boundary-exchange order without caring how or when
// entries were inserted, so traces and metrics are byte-identical across
// shard counts (tests/test_sharded_engine.cpp sweeps {1, 2, 8}).
//
// Crash schedules are applied LAZILY, which is what lets a shard run past
// global quiescence without rollback: a kill becomes visible the moment
// the node would otherwise act (tick sweep, delivery, revival) and is
// stamped with its SCHEDULED step; crashes of untouched nodes are applied
// after the run, gated to the reconstructed end step, so the final
// population matches the stepped engine exactly.  The end step itself is
// reconstructed as 1 + the last completion / active-kill / consumption /
// revival - precisely the event that kept the stepped engine's
// active/in-flight/pending-restart condition true - so t_end, and with it
// every RunMetrics field, matches the stepped engine.
//
// Protocols run unchanged through BasicCtx.  Nodes reporting
// in_plain_gossip(now) (GOS and the gossip phase of OCG/CCG/FCG) take a
// batched emission path that skips the generic on_tick while consuming
// the same RNG stream, SendGate slot and message shape - behavior-
// preserving by the plain_gossip_msg contract (gossip/timing.hpp).
// Nodes exposing the SBRB staged-send contract (sbrb_idle/sbrb_pop_staged,
// see gossip/sbrb.hpp) take a second kernel: on crash-free runs the tick
// sweep walks the dense pending-sends bitmap (active AND pending) instead
// of ticking every active node, so idle nodes cost nothing per step while
// traces and profile counts stay byte-identical to the generic sweep
// (docs/PERF.md §7).
//
// Shard workers run on the persistent process-wide cg_pool (ROADMAP item:
// no per-run std::thread spawns).  One parallel_for spans the whole run -
// each shard holds its pool slot across every window and the shards meet
// at a SenseBarrier between windows, so the one-sync-per-window structure
// (and its cost) matches the dedicated-thread design it replaces.
#pragma once

#include <algorithm>
#include <array>
#include <concepts>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "gossip/timing.hpp"
#include "obs/telemetry.hpp"
#include "runtime/sync_barrier.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/core/basic_ctx.hpp"
#include "sim/core/bitset.hpp"
#include "sim/core/inbox.hpp"
#include "sim/core/network_model.hpp"
#include "sim/core/profile.hpp"
#include "sim/core/run_config.hpp"
#include "sim/core/send_gate.hpp"
#include "sim/core/soa_store.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace cg {

template <class Node>
class ShardedEngine {
 public:
  using Params = typename Node::Params;

  /// BasicCtx host: the engine plus the shard the callback runs on (the
  /// compatibility adapter over the SoA store - protocols keep their
  /// object API while state lives in flat arrays).
  struct ShardView {
    ShardedEngine* eng;
    int shard;

    Step ctx_now() const { return eng->shards_[st()].now; }
    const RunConfig& ctx_cfg() const { return eng->cfg_; }
    Xoshiro256& ctx_rng(NodeId i) { return eng->soa_.rng(i); }
    void ctx_send(NodeId from, NodeId to, const Message& m) {
      eng->do_send(shard, from, to, m);
    }
    void ctx_activate(NodeId i) { eng->do_activate(shard, i); }
    void ctx_mark_colored(NodeId i) {
      if (eng->soa_.mark_colored(i, ctx_now(), eng->shards_[st()].rx_payload)) {
        eng->trace(shard, {ctx_now(), TraceEvent::Kind::kColored, i, kNoNode,
                           Tag::kGossip});
        if (eng->cfg_.telemetry != nullptr)
          eng->cfg_.telemetry->record_colored(shard, ctx_now());
      }
    }
    void ctx_adopt_payload(NodeId i, std::uint32_t d) {
      eng->soa_.set_held_payload(i, d);
    }
    void ctx_deliver(NodeId i) {
      if (eng->soa_.mark_delivered(i, ctx_now()))
        eng->trace(shard, {ctx_now(), TraceEvent::Kind::kDelivered, i, kNoNode,
                           Tag::kGossip});
    }
    void ctx_complete(NodeId i) { eng->do_complete(shard, i); }
    bool ctx_colored(NodeId i) const { return eng->soa_.colored(i); }
    void ctx_note_dropped(NodeId) {
      eng->shards_[st()].counts.add_dropped();
    }

   private:
    std::size_t st() const { return static_cast<std::size_t>(shard); }
  };
  using Ctx = BasicCtx<ShardView>;

  ShardedEngine(RunConfig cfg, Params params, int shards)
      : cfg_(std::move(cfg)), params_(std::move(params)),
        nshards_(std::max(1, shards)) {
    CG_CHECK(cfg_.n >= 1);
    CG_CHECK(cfg_.root >= 0 && cfg_.root < cfg_.n);
    cfg_.logp.validate();
  }

  RunMetrics run();

 private:
  /// Does the protocol expose the batched plain-gossip contract?
  static constexpr bool kPlainGossip =
      requires(const Node& nd) { nd.in_plain_gossip(Step{0}); };

  /// Does the protocol expose the SBRB staged-send kernel contract
  /// (gossip/sbrb.hpp)?  The kernel additionally relies on the protocol
  /// properties documented there: every node activates in on_start, a
  /// pre-deadline tick emits exactly the front staged message, and
  /// completion happens only at the deadline tick.  It engages on runs
  /// with no crash schedule (any_crash_ == false); faulted runs use the
  /// generic sweep, which applies lazy kills at exact scheduled steps.
  static constexpr bool kSbrbStaged =
      requires(Node& nd, const Node& cnd, const typename Node::Params& p,
               Step s) {
        { cnd.sbrb_idle() } -> std::convertible_to<bool>;
        {
          nd.sbrb_pop_staged(s)
        } -> std::convertible_to<std::pair<NodeId, Message>>;
        { p.deadline } -> std::convertible_to<Step>;
      };

  struct Delivery {
    Step sent_at;  ///< emission step; (sent_at, msg.src) is a unique key
    NodeId to;
    Message msg;
  };

  struct Boundary {
    Step at;       ///< absolute delivery step
    Step sent_at;
    NodeId to;
    Message msg;
  };

  // Everything one shard mutates during a window, cache-line-separated.
  struct alignas(64) ShardState {
    NodeId lo = 0, hi = 0;  ///< owned node block [lo, hi)
    Step now = 0;           ///< shard-local current step inside a window
    std::vector<std::vector<Delivery>> calendar;  // private ring, D+1 slots
    std::array<std::vector<Boundary>, 2> outbox;  // indexed by window parity
    InboxSlab inbox;        // kOnePerStep; local-node indexed
    PackedBits inbox_bits;  // local nodes with a nonempty inbox
    std::vector<Restart> revives;  // owned revivals, sorted by up_at
    std::size_t next_revive = 0;
    // Per-window deltas, folded by the barrier completion.
    std::int64_t active_delta = 0;
    std::int64_t sent = 0;
    std::int64_t delivered = 0;
    std::int64_t revived = 0;
    Step last_activity = -1;  ///< see file comment (end-step reconstruction)
    std::uint32_t rx_payload = 0;  ///< digest of the message being dispatched
    MessageCounts counts;
    std::vector<TraceEvent> trace;
    // Self-profiling.
    std::int64_t prof_receive = 0;
    std::int64_t prof_tick = 0;
    std::int64_t prof_scheduled = 0;
    std::int64_t prof_fired = 0;
    std::int64_t prof_max_bucket = 0;
    std::int64_t boundary_msgs = 0;
    std::int64_t window_stalls = 0;
    double prof_a_s = 0;
    double prof_b_s = 0;
  };

  int owner_of(NodeId i) const {
    return std::min(static_cast<int>(i / block_), nshards_ - 1);
  }

  void do_send(int shard, NodeId from, NodeId to, const Message& m) {
    CG_CHECK(to >= 0 && to < cfg_.n);
    CG_CHECK_MSG(to != from, "node sent a message to itself");
    auto& st = shards_[static_cast<std::size_t>(shard)];
    gate_.on_send(from, st.now);
    // Byzantine transform runs BEFORE owner_of(to): a spammer's redirected
    // destination decides the same-shard-vs-boundary routing.
    Message adv = m;
    if (adv.payload == 0) adv.payload = soa_.held_payload(from);
    if (byz_.any()) {
      const ByzAction act = byz_.transform(from, to, adv, st.now);
      if (act == ByzAction::kSuppressed) {
        st.counts.add_suppressed();
        return;  // swallowed at the sender: no send/lost trace, no route
      }
      if (act == ByzAction::kEquivocated) st.counts.add_equivocated();
      if (act == ByzAction::kForged) st.counts.add_forged();
      st.counts.add(adv);
      if (cfg_.trace != nullptr) {
        trace(shard, {st.now, TraceEvent::Kind::kSend, from, to, adv.tag});
        if (act == ByzAction::kEquivocated)
          trace(shard,
                {st.now, TraceEvent::Kind::kEquivocated, from, to, adv.tag});
        else if (act == ByzAction::kForged)
          trace(shard, {st.now, TraceEvent::Kind::kForged, from, to, adv.tag});
      }
    } else {
      st.counts.add(adv);
      if (cfg_.trace != nullptr)
        trace(shard, {st.now, TraceEvent::Kind::kSend, from, to, adv.tag});
    }

    const Step at = net_.route(from, to, st.now);
    if (at == NetworkModel::kLost) {  // lost on the wire (counted as work)
      trace(shard, {st.now, TraceEvent::Kind::kLost, from, to, adv.tag});
      return;
    }

    Message out = adv;
    out.src = from;
    ++st.sent;
    if (cfg_.profile != nullptr) ++st.prof_scheduled;
    const int dest = owner_of(to);
    if (dest == shard || in_start_) {
      // Same shard (or the single-threaded on_start phase): straight into
      // the destination's private calendar.  `at > now`, so this never
      // touches the slot currently being dispatched.
      auto& ds = shards_[static_cast<std::size_t>(dest)];
      ds.calendar[ring_slot(ds, at)].push_back({st.now, to, out});
    } else {
      st.outbox[static_cast<std::size_t>(win_parity_)].push_back(
          {at, st.now, to, out});
      ++st.boundary_msgs;
    }
  }

  void do_activate(int shard, NodeId i) {
    if (soa_.activate(i, shards_[static_cast<std::size_t>(shard)].now))
      ++shards_[static_cast<std::size_t>(shard)].active_delta;
  }

  void do_complete(int shard, NodeId i) {
    auto& st = shards_[static_cast<std::size_t>(shard)];
    const auto t = soa_.complete(i, st.now);
    if (!t.changed) return;
    if (t.was_active) {
      --st.active_delta;
      st.last_activity = std::max(st.last_activity, st.now);
    }
    trace(shard, {st.now, TraceEvent::Kind::kComplete, i, kNoNode, Tag::kGossip});
  }

  /// Apply a pending crash the moment the node would otherwise act.  The
  /// event is stamped with the SCHEDULED step (what the stepped engine
  /// recorded), not the discovery step; an Active node is always caught at
  /// exactly its scheduled step because Active nodes are swept every step.
  void maybe_lazy_kill(int shard, NodeId i, Step s) {
    const auto idx = static_cast<std::size_t>(i);
    const Step ca = crash_at_[idx];
    if (ca > s) return;
    crash_at_[idx] = kNever;
    const Step kill_step = std::max<Step>(ca, 0);
    const auto t = soa_.kill(i);
    if (!t.changed) return;
    auto& st = shards_[static_cast<std::size_t>(shard)];
    if (t.was_active) {
      --st.active_delta;
      st.last_activity = std::max(st.last_activity, kill_step);
    }
    trace(shard, {kill_step, TraceEvent::Kind::kFail, i, kNoNode, Tag::kGossip});
  }

  void dispatch(int shard, NodeId to, const Message& m, Step s) {
    if (any_crash_) maybe_lazy_kill(shard, to, s);
    if (!soa_.alive(to) || soa_.done(to)) return;  // dropped
    do_activate(shard, to);
    if (cfg_.trace != nullptr)
      trace(shard, {s, TraceEvent::Kind::kDeliver, to, m.src, m.tag});
    // Cell = shard; node `to` is shard-owned, so the telemetry stamp/pend
    // arrays see each node from exactly one thread.
    if (cfg_.telemetry != nullptr)
      cfg_.telemetry->record_delivery(shard, to, s);
    if (cfg_.profile != nullptr)
      ++shards_[static_cast<std::size_t>(shard)].prof_receive;
    ShardView view{this, shard};
    Ctx ctx(view, to);
    auto& st = shards_[static_cast<std::size_t>(shard)];
    st.rx_payload = m.payload;  // ambient digest for ctx_mark_colored
    soa_.node(to).on_receive(ctx, m);
    st.rx_payload = 0;
    if constexpr (kSbrbStaged) {
      // Keep the dense pending-sends bitmap coherent: a receive is the
      // only place a node can stage new sends mid-run.  `to` is shard-
      // owned and blocks are 64-aligned, so the word is owner-disjoint.
      if (!any_crash_ && !soa_.node(to).sbrb_idle()) soa_.sbrb_set_pending(to);
    }
  }

  void trace(int shard, TraceEvent ev) {
    if (cfg_.trace != nullptr)
      shards_[static_cast<std::size_t>(shard)].trace.push_back(ev);
  }

  // Single-threaded (on_start, or inside the barrier completion).
  void flush_traces() {
    if (cfg_.trace == nullptr) return;
    for (auto& st : shards_) {
      for (const auto& ev : st.trace) cfg_.trace->on_event(ev);
      st.trace.clear();
    }
  }

  static std::size_t ring_slot(const ShardState& st, Step at) {
    return static_cast<std::size_t>(at %
                                    static_cast<Step>(st.calendar.size()));
  }

  /// Execute one window [win_lo, win_hi) on shard `sidx` (phase A).
  void run_window(int sidx, Step win_lo, Step win_hi);

  void fold_deltas() {
    for (auto& st : shards_) {
      active_count_ += st.active_delta;
      in_flight_ += st.sent - st.delivered;
      pending_restarts_ -= st.revived;
      last_activity_ = std::max(last_activity_, st.last_activity);
      st.active_delta = 0;
      st.sent = 0;
      st.delivered = 0;
      st.revived = 0;
    }
  }

  bool quiescent() const {
    return active_count_ == 0 && in_flight_ == 0 && pending_restarts_ == 0;
  }

  std::size_t footprint_bytes() const {
    std::size_t fp = soa_.footprint_bytes() +
                     static_cast<std::size_t>(cfg_.n) * sizeof(Step) * 3;
    for (const auto& st : shards_) {
      for (const auto& slot : st.calendar) fp += slot.capacity() * sizeof(Delivery);
      for (const auto& ob : st.outbox) fp += ob.capacity() * sizeof(Boundary);
      fp += st.inbox.footprint_bytes() + st.inbox_bits.footprint_bytes();
    }
    return fp;
  }

  RunConfig cfg_;
  Params params_;
  int nshards_;
  NodeId block_ = 1;  // nodes per shard block (64-aligned)
  Step window_ = 1;   // W = L/O + 1, the conservative lookahead

  SoaNodeStore<Node> soa_;
  NetworkModel net_;
  SendGate gate_;
  ByzantineModel byz_;
  std::vector<Step> crash_at_;    // pending scheduled crash (kNever = none)
  bool any_crash_ = false;        // any online failure or restart scheduled
  std::vector<Step> restart_up_;  // revive step (kNever = none)
  std::vector<ShardState> shards_;

  // Window bookkeeping (written single-threaded: setup or completion fn).
  Step window_lo_ = 0;
  int win_parity_ = 0;
  bool in_start_ = false;
  bool stop_ = false;
  std::int64_t windows_done_ = 0;
  std::int64_t active_count_ = 0;
  std::int64_t in_flight_ = 0;
  std::int64_t pending_restarts_ = 0;
  Step last_activity_ = -1;
  RunMetrics metrics_{};
};

// ---------------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------------

template <class Node>
void ShardedEngine<Node>::run_window(int sidx, Step win_lo, Step win_hi) {
  auto& st = shards_[static_cast<std::size_t>(sidx)];
  const bool one_per_step = cfg_.rx == RxPolicy::kOnePerStep;
  const bool profiled = cfg_.profile != nullptr;
  const NodeId local_n = st.hi - st.lo;
  const std::int64_t boundary0 = st.boundary_msgs;
  bool did_work = false;

  for (Step s = win_lo; s < win_hi; ++s) {
    st.now = s;

    // 1. revivals due this step (force any still-pending crash first: the
    // node must be dead before it can rejoin).
    while (st.next_revive < st.revives.size() &&
           st.revives[st.next_revive].up_at <= s) {
      const NodeId i = st.revives[st.next_revive].node;
      ++st.next_revive;
      did_work = true;
      maybe_lazy_kill(sidx, i, s);
      if (soa_.revive(i, params_)) {
        restart_up_[static_cast<std::size_t>(i)] = kNever;
        ++st.revived;
        st.last_activity = std::max(st.last_activity, s);
        trace(sidx, {s, TraceEvent::Kind::kRestart, i, kNoNode, Tag::kGossip});
      }
    }

    // 2. deliveries due this step, in canonical (send step, sender) order.
    auto& slot = st.calendar[ring_slot(st, s)];
    if (!slot.empty()) {
      did_work = true;
      if (profiled) {
        st.prof_fired += static_cast<std::int64_t>(slot.size());
        st.prof_max_bucket = std::max(
            st.prof_max_bucket, static_cast<std::int64_t>(slot.size()));
      }
      // Canonical (send step, sender) order.  Own-shard inserts already
      // arrive in program order - ascending send step, and protocols emit
      // from the node-ascending tick sweep - so a slot is usually sorted
      // already and the check is a single linear scan; only slots that
      // took phase-B boundary appends (or dispatch-phase sends) pay the
      // sort.
      const auto canon = [](const Delivery& a, const Delivery& b) {
        return a.sent_at != b.sent_at ? a.sent_at < b.sent_at
                                      : a.msg.src < b.msg.src;
      };
      if (!std::is_sorted(slot.begin(), slot.end(), canon))
        std::sort(slot.begin(), slot.end(), canon);
      st.delivered += static_cast<std::int64_t>(slot.size());
      st.last_activity = std::max(st.last_activity, s);
      if (!one_per_step) {
        for (const auto& d : slot) dispatch(sidx, d.to, d.msg, s);
      } else {
        // Stage into the slab inbox; per-node arrival order must be the
        // canonical rx order, so re-sort grouped by destination.
        std::sort(slot.begin(), slot.end(),
                  [](const Delivery& a, const Delivery& b) {
                    return a.to != b.to ? a.to < b.to
                                        : rx_order_before(a.msg, b.msg);
                  });
        for (const auto& d : slot) {
          const auto local = static_cast<std::size_t>(d.to - st.lo);
          st.inbox.push(local, d.msg);
          st.inbox_bits.set(d.to - st.lo);
        }
        st.delivered -= static_cast<std::int64_t>(slot.size());  // on pop
      }
      slot.clear();
    }
    if (one_per_step) {
      // Consume at most one queued message per node, in node-id order,
      // even for dead/done nodes (mirrors the other engines' drain).
      st.inbox_bits.for_each_set(0, local_n, [&](NodeId local) {
        did_work = true;
        const NodeId i = st.lo + local;
        const Message m = st.inbox.front(static_cast<std::size_t>(local));
        st.inbox.pop(static_cast<std::size_t>(local));
        if (st.inbox.empty(static_cast<std::size_t>(local)))
          st.inbox_bits.clear(local);
        ++st.delivered;
        st.last_activity = std::max(st.last_activity, s);
        dispatch(sidx, i, m, s);
      });
    }

    // 3. tick sweep.  Protocols with the SBRB staged-send contract get
    // the dense kernel on crash-free runs: only nodes with staged sends
    // are visited, while did_work/prof_tick reproduce the generic sweep's
    // accounting exactly (with no crash schedule and SBRB's activate-all
    // on_start, the active set is fixed until the deadline, so the
    // generic sweep would tick every active node at every step s >= 1).
    bool generic_ticks = true;
    if constexpr (kSbrbStaged) {
      if (!any_crash_) {
        generic_ticks = false;
        if (s >= params_.deadline) {
          // Deadline sweep: every active node's tick is ctx.complete().
          soa_.active_bits().for_each_set(st.lo, st.hi, [&](NodeId i) {
            if (soa_.activated_at(i) == s) return;
            did_work = true;
            if (profiled) ++st.prof_tick;
            do_complete(sidx, i);
          });
        } else if (s > 0) {
          if (profiled)
            st.prof_tick += soa_.active_bits().count_in(st.lo, st.hi);
          if (!did_work && !soa_.active_bits().none_in(st.lo, st.hi))
            did_work = true;
          soa_.sbrb_pending_bits().for_each_set_and(
              soa_.active_bits(), st.lo, st.hi, [&](NodeId i) {
                if (soa_.activated_at(i) == s) return;
                auto& nd = soa_.node(i);
                if (nd.sbrb_idle()) {  // defensive: stale pending bit
                  soa_.sbrb_clear_pending(i);
                  return;
                }
                const auto [to, msg] = nd.sbrb_pop_staged(s);
                do_send(sidx, i, to, msg);
                if (nd.sbrb_idle()) soa_.sbrb_clear_pending(i);
              });
        }
        // s == 0: on_start activated every node this step, so the
        // generic sweep would skip them all - nothing to do.
      }
    }
    // Generic sweep over the Active bitmap (idle/done nodes cost nothing -
    // the flat-plan payoff).  A node activated this step skips its tick.
    if (generic_ticks) soa_.active_bits().for_each_set(st.lo, st.hi, [&](NodeId i) {
      if (any_crash_ && crash_at_[static_cast<std::size_t>(i)] <= s) {
        maybe_lazy_kill(sidx, i, s);
        return;
      }
      if (soa_.activated_at(i) == s) return;
      did_work = true;
      if (profiled) ++st.prof_tick;
      if constexpr (kPlainGossip) {
        if (soa_.node(i).in_plain_gossip(s)) {
          // Batched plain-gossip emission: same RNG draw, SendGate slot
          // and message as the protocol's own on_tick would produce.
          do_send(sidx, i, soa_.rng(i).other_node(i, cfg_.n),
                  plain_gossip_msg(s));
          return;
        }
      }
      ShardView view{this, sidx};
      Ctx ctx(view, i);
      soa_.node(i).on_tick(ctx);
    });
  }
  if (!did_work) ++st.window_stalls;
  // Per-window boundary traffic: a property of THIS shard layout (not part
  // of the engine-invariant telemetry slice; see obs/telemetry.hpp).
  if (cfg_.telemetry != nullptr)
    cfg_.telemetry->record_window_boundary(sidx, st.boundary_msgs - boundary0);
}

template <class Node>
RunMetrics ShardedEngine<Node>::run() {
  const auto n = static_cast<std::size_t>(cfg_.n);
  // 64-aligned contiguous blocks: bitmap words and byte arrays stay
  // owner-disjoint (see runtime/parallel_engine.hpp).
  block_ = (cfg_.n + static_cast<NodeId>(nshards_) - 1) /
           static_cast<NodeId>(nshards_);
  block_ = ((block_ + 63) / 64) * 64;
  if (block_ < 1) block_ = 1;
  window_ = cfg_.logp.delivery_delay();
  CG_CHECK(window_ >= 1);

  soa_.reset(cfg_.n, cfg_.seed, params_);
  net_.reset(cfg_);
  gate_.reset(cfg_.n);
  byz_.reset(cfg_.n, cfg_.root, cfg_.seed, cfg_.byzantine);
  for (const auto& b : cfg_.byzantine.nodes) soa_.mark_byzantine(b.node);
  crash_at_.assign(n, kNever);
  restart_up_.assign(n, kNever);

  const auto cal_slots = static_cast<std::size_t>(net_.max_delay()) + 1;
  shards_.assign(static_cast<std::size_t>(nshards_), ShardState{});
  for (int w = 0; w < nshards_; ++w) {
    auto& st = shards_[static_cast<std::size_t>(w)];
    st.lo = std::min(static_cast<NodeId>(w) * block_, cfg_.n);
    st.hi = std::min((static_cast<NodeId>(w) + 1) * block_, cfg_.n);
    st.calendar.assign(cal_slots, {});
    if (cfg_.rx == RxPolicy::kOnePerStep) {
      st.inbox.reset(static_cast<std::size_t>(st.hi - st.lo));
      st.inbox_bits.reset(st.hi - st.lo);
    }
  }

  metrics_ = RunMetrics{};
  any_crash_ =
      !cfg_.failures.online.empty() || !cfg_.failures.restarts.empty();
  if constexpr (kSbrbStaged) soa_.reset_sbrb_block();
  window_lo_ = 0;
  win_parity_ = 0;
  windows_done_ = 0;
  active_count_ = 0;
  in_flight_ = 0;
  pending_restarts_ = 0;
  last_activity_ = -1;
  stop_ = false;

  for (const NodeId i : cfg_.failures.pre_failed) soa_.pre_fail(i);
  for (const auto& of : cfg_.failures.online) {
    auto& ca = crash_at_[static_cast<std::size_t>(of.node)];
    ca = std::min(ca, of.at_step);
  }
  for (const auto& r : cfg_.failures.restarts) {
    const auto idx = static_cast<std::size_t>(r.node);
    crash_at_[idx] = std::min(crash_at_[idx], r.down_at);
    restart_up_[idx] = r.up_at;
    shards_[static_cast<std::size_t>(owner_of(r.node))].revives.push_back(r);
    ++pending_restarts_;
  }
  for (auto& st : shards_)
    std::stable_sort(st.revives.begin(), st.revives.end(),
                     [](const Restart& a, const Restart& b) {
                       return a.up_at < b.up_at;
                     });
  CG_CHECK_MSG(soa_.alive(cfg_.root), "root must be active at start");

  EngineProfile* prof = cfg_.profile;
  if (prof != nullptr) *prof = EngineProfile{};
  if (cfg_.telemetry != nullptr) cfg_.telemetry->attach(cfg_.n, nshards_);
  const auto prof_run0 = ProfileClock::now();

  // Start: single-threaded on_start at step 0; sends land directly in the
  // destination shard's calendar (in_start_ gates the outbox path).
  soa_.activate(cfg_.root, 0);
  active_count_ = 1;
  in_start_ = true;
  for (NodeId i = 0; i < cfg_.n; ++i) {
    if (!soa_.alive(i)) continue;
    if (prof != nullptr) ++prof->callbacks_start;
    ShardView view{this, owner_of(i)};
    Ctx ctx(view, i);
    soa_.node(i).on_start(ctx);
  }
  in_start_ = false;
  if constexpr (kSbrbStaged) {
    // Seed the pending-sends bitmap from on_start's staged subscriptions
    // (single-threaded; the per-window sweeps only maintain it from here).
    if (!any_crash_)
      for (NodeId i = 0; i < cfg_.n; ++i)
        if (soa_.alive(i) && !soa_.node(i).sbrb_idle())
          soa_.sbrb_set_pending(i);
  }
  fold_deltas();
  last_activity_ = -1;  // on_start activity is folded into the t_end=0 case
  flush_traces();

  const Step max_steps = cfg_.effective_max_steps();
  Step t_end = 0;

  if (quiescent()) {
    // Quiescent straight out of on_start (e.g. n == 1): the stepped
    // engine's loop never runs and t_end stays 0.
    t_end = 0;
  } else {
    auto on_window_done = [this, max_steps]() noexcept {
      fold_deltas();
      flush_traces();
      window_lo_ = std::min(window_lo_ + window_, max_steps);
      win_parity_ ^= 1;
      ++windows_done_;
      if (cfg_.heartbeat != nullptr)  // single-threaded: between windows
        cfg_.heartbeat->beat(window_lo_, max_steps, 0);
      if (quiescent()) {
        stop_ = true;
      } else if (window_lo_ >= max_steps) {
        metrics_.hit_max_steps = true;
        stop_ = true;
      }
    };

    // One shard task per window.  Phase B - draining the PREVIOUS
    // window's sealed opposite-parity outboxes - runs at the start of the
    // task: every writer finished before the previous window's join, and
    // the per-slot canonical sort makes calendar insertion order
    // irrelevant, so traces stay byte-identical for any shard count and
    // any pool scheduling (a worker may even run several shards).
    const bool profiled = cfg_.profile != nullptr;
    auto window_task = [this, profiled](int sidx, std::int64_t k,
                                        std::size_t par, Step win_lo,
                                        Step win_hi) {
      auto& st = shards_[static_cast<std::size_t>(sidx)];
      if (k >= 1) {
        const auto prof_b0 =
            profiled ? ProfileClock::now() : ProfileClock::TimePoint{};
        for (const auto& other : shards_) {
          for (const auto& bm : other.outbox[par ^ 1]) {
            if (bm.to >= st.lo && bm.to < st.hi)
              st.calendar[ring_slot(st, bm.at)].push_back(
                  {bm.sent_at, bm.to, bm.msg});
          }
        }
        if (profiled) st.prof_b_s += ProfileClock::seconds_since(prof_b0);
      }
      // Reuse this parity's outbox: its readers (phase B of window k-1,
      // above) all completed before window k-1's join.
      if (k >= 2) st.outbox[par].clear();
      const auto prof_a0 =
          profiled ? ProfileClock::now() : ProfileClock::TimePoint{};
      run_window(sidx, win_lo, win_hi);
      if (profiled) st.prof_a_s += ProfileClock::seconds_since(prof_a0);
    };

    // Shard workers run on the persistent process-wide pool (no per-run
    // thread spawns).  A multi-shard run claims one pool slot per shard
    // for its WHOLE duration - one parallel_for per run, not per window -
    // and the shards meet at a SenseBarrier between windows, exactly the
    // dedicated-thread structure this replaces: dispatching a fresh pool
    // job every window costs two condvar hops per window, which is
    // measurable on CCG-sized runs.  Nested runs (this engine inside a
    // pool worker, e.g. --engine=sharded under the trial farm) and
    // single-shard runs take the sequential per-window loop instead: a
    // nested parallel_for executes its chunks inline on one thread, where
    // the barrier would deadlock.
    ThreadPool* pool = (nshards_ > 1 && !ThreadPool::in_pool_work())
                           ? &ThreadPool::global(nshards_)
                           : nullptr;
    if (pool != nullptr) {
      const unsigned hw = std::thread::hardware_concurrency();
      const int spin =
          (hw != 0 && static_cast<unsigned>(nshards_) <= hw) ? 2048 : 0;
      SenseBarrier bar(nshards_, on_window_done, spin);
      // Safe against a participant claiming two shards: nobody's chunk
      // body returns before window 0's barrier, which needs all nshards_
      // shards - so all chunks are claimed by distinct participants
      // (global(nshards_) guarantees enough of them) before any frees up.
      pool->parallel_for(
          nshards_, 1, nshards_, [&](std::int64_t b, std::int64_t e, int) {
            for (std::int64_t sidx = b; sidx < e; ++sidx) {
              for (std::int64_t k = 0;; ++k) {
                const Step win_lo = window_lo_;
                const Step win_hi = std::min(win_lo + window_, max_steps);
                const auto par = static_cast<std::size_t>(win_parity_);
                window_task(static_cast<int>(sidx), k, par, win_lo, win_hi);
                bar.arrive_and_wait();  // completion fn: on_window_done
                if (stop_) break;
              }
            }
          });
    } else {
      for (std::int64_t k = 0; !stop_; ++k) {
        const Step win_lo = window_lo_;
        const Step win_hi = std::min(win_lo + window_, max_steps);
        const auto par = static_cast<std::size_t>(win_parity_);
        for (int sidx = 0; sidx < nshards_; ++sidx)
          window_task(sidx, k, par, win_lo, win_hi);
        on_window_done();
      }
    }

    t_end = metrics_.hit_max_steps ? max_steps : last_activity_ + 1;
  }

  // Crashes of nodes the run never touched (cold kills): apply those the
  // stepped engine would have reached - scheduled strictly before t_end.
  if (any_crash_) for (NodeId i = 0; i < cfg_.n; ++i) {
    const Step ca = crash_at_[static_cast<std::size_t>(i)];
    if (ca == kNever || ca >= t_end) continue;
    const auto t = soa_.kill(i);
    if (t.changed && cfg_.trace != nullptr)
      cfg_.trace->on_event({std::max<Step>(ca, 0), TraceEvent::Kind::kFail, i,
                            kNoNode, Tag::kGossip});
  }

  if (prof != nullptr) {
    for (const auto& st : shards_) {
      prof->callbacks_receive += st.prof_receive;
      prof->callbacks_tick += st.prof_tick;
      prof->events_scheduled += st.prof_scheduled;
      prof->events_fired += st.prof_fired;
      prof->queue_max_bucket =
          std::max(prof->queue_max_bucket, st.prof_max_bucket);
      prof->deliver_s = std::max(prof->deliver_s, st.prof_a_s);
      prof->route_s = std::max(prof->route_s, st.prof_b_s);
      prof->boundary_msgs += st.boundary_msgs;
      prof->window_stalls += st.window_stalls;
      prof->shard_stats.push_back(
          {st.prof_fired, st.boundary_msgs, st.window_stalls});
    }
    prof->shards = nshards_;
    prof->windows = windows_done_;
    prof->steps = t_end;
    prof->bytes_per_node =
        static_cast<std::int64_t>(footprint_bytes() / n);
    prof->peak_rss_bytes = current_peak_rss_bytes();
    prof->wall_s = ProfileClock::seconds_since(prof_run0);
  }
  for (const auto& st : shards_) st.counts.merge_into(metrics_);
  soa_.finalize(metrics_, cfg_.root, t_end, cfg_.record_node_detail);
  if (cfg_.telemetry != nullptr) cfg_.telemetry->finish_run(metrics_);
  return metrics_;
}

}  // namespace cg

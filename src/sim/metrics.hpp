// Per-run outcome of a simulated broadcast.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace cg {

struct RunMetrics {
  // --- population -----------------------------------------------------
  NodeId n_total = 0;       ///< N: size of the static name space
  NodeId n_active = 0;      ///< nodes still active at the end of the run
  NodeId n_colored = 0;     ///< active nodes that received the payload
  NodeId n_delivered = 0;   ///< active nodes that *delivered* (FCG semantics)

  // --- timing (steps of O; kNever if the event did not happen) ---------
  Step t_last_colored = kNever;    ///< last active node got the payload
  Step t_last_colored_partial = kNever; ///< last coloring among REACHED nodes
                                        ///< (kNever if nobody was colored)
  Step t_last_delivered = kNever;  ///< last active node delivered
  Step t_complete = kNever;        ///< last active colored node exited
  Step t_root_complete = kNever;   ///< root's completion (BFB's ack-to-root)
  Step t_end = 0;                  ///< step at which the simulation stopped

  // --- work (message counts, paper's "work" metric) --------------------
  std::int64_t msgs_total = 0;
  std::int64_t msgs_gossip = 0;
  std::int64_t msgs_correction = 0;  ///< OCG/CCG/FCG ring messages
  std::int64_t msgs_sos = 0;
  std::int64_t msgs_tree = 0;        ///< BIG/BFB tree + ack/nack messages
  std::int64_t msgs_retrans = 0;     ///< reliable-sublayer retransmissions
                                     ///< (already included in msgs_total)
  std::int64_t msgs_dropped = 0;     ///< protocol-level backpressure drops
                                     ///< (e.g. pull-request backlog overflow)
  std::int64_t msgs_sbrb = 0;        ///< SBRB subscribe/echo/ready messages

  // --- Byzantine tier (sim/fault/byzantine.hpp) ------------------------
  NodeId n_byzantine = 0;            ///< adversarial nodes this run
  /// Correct (non-Byzantine) nodes that delivered the root's true payload
  /// digest vs. a forged/equivocated one.
  NodeId n_delivered_true = 0;
  NodeId n_delivered_forged = 0;
  /// Distinct payload digests delivered across correct nodes (0 = nobody
  /// delivered).  > 1 is a consistency violation.
  int distinct_delivered_payloads = 0;
  /// No two correct nodes delivered different payloads (vacuously true
  /// when nobody delivered) - the campaign's kConsistent predicate.
  bool consistent_delivery = true;
  std::int64_t msgs_forged = 0;       ///< sends rewritten by corruptor/spammer
  std::int64_t msgs_equivocated = 0;  ///< sends carrying an alternate digest
  std::int64_t msgs_suppressed = 0;   ///< sends a silent adversary swallowed
                                      ///< (never on the wire, not in msgs_total)

  // --- flags ------------------------------------------------------------
  bool all_active_colored = false;
  bool all_active_delivered = false;
  bool sos_triggered = false;
  bool hit_max_steps = false;   ///< safety stop fired (indicates livelock/bug)
  int bfb_restarts = 0;         ///< BFB baseline: number of tree restarts

  /// Fraction of active nodes NOT reached (paper's "inconsistency").
  double inconsistency() const {
    return n_active == 0 ? 0.0
                         : static_cast<double>(n_active - n_colored) /
                               static_cast<double>(n_active);
  }

  /// FCG all-or-nothing check: every active node delivered, or none did.
  bool all_or_nothing_delivery() const {
    return n_delivered == 0 || n_delivered == n_active;
  }

  // Optional per-node detail (filled when RunConfig::record_node_detail).
  std::vector<Step> colored_at;    ///< step each node got the payload (kNever otherwise)
  std::vector<Step> delivered_at;
  std::vector<Step> completed_at;
};

}  // namespace cg

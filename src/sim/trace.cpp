#include "sim/trace.hpp"

#include <cstdio>

namespace cg {

const char* trace_kind_name(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::kSend: return "send";
    case TraceEvent::Kind::kDeliver: return "recv";
    case TraceEvent::Kind::kColored: return "colored";
    case TraceEvent::Kind::kDelivered: return "delivered";
    case TraceEvent::Kind::kComplete: return "complete";
    case TraceEvent::Kind::kFail: return "fail";
    case TraceEvent::Kind::kRestart: return "restart";
    case TraceEvent::Kind::kLost: return "lost";
    case TraceEvent::Kind::kForged: return "forged";
    case TraceEvent::Kind::kEquivocated: return "equivocated";
  }
  return "?";
}

bool trace_kind_from_name(std::string_view name, TraceEvent::Kind& out) {
  for (int k = 0; k < kTraceKindCount; ++k) {
    const auto kind = static_cast<TraceEvent::Kind>(k);
    if (name == trace_kind_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

std::string VectorTrace::to_string() const {
  std::string out;
  char buf[128];
  for (const auto& ev : events_) {
    int n = 0;
    if (ev.kind == TraceEvent::Kind::kSend ||
        ev.kind == TraceEvent::Kind::kDeliver ||
        ev.kind == TraceEvent::Kind::kLost ||
        ev.kind == TraceEvent::Kind::kForged ||
        ev.kind == TraceEvent::Kind::kEquivocated) {
      n = std::snprintf(buf, sizeof(buf), "t=%3lld  %-9s node %3d %s node %3d  [%s]\n",
                        static_cast<long long>(ev.step), trace_kind_name(ev.kind),
                        ev.node, ev.kind == TraceEvent::Kind::kDeliver ? "<-" : "->",
                        ev.peer, tag_name(ev.tag));
    } else {
      n = std::snprintf(buf, sizeof(buf), "t=%3lld  %-9s node %3d\n",
                        static_cast<long long>(ev.step), trace_kind_name(ev.kind),
                        ev.node);
    }
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

}  // namespace cg

// LogP-style cost model used by the paper (Section II).
//
// The paper assumes latency L and per-message CPU overhead O with L
// divisible by O, full-duplex endpoints, and gap g << o.  The simulator
// discretizes time in steps of O:
//
//   * a node colored (holding the message) at step c may emit one message
//     per step starting at step c+1;
//   * a message emitted at step s is delivered & processed at step
//     s + L/O + 1 (the "+1" is the receive overhead O, matching the
//     `time += L/O + 1` counter update in Algorithms 1-3).
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"

namespace cg {

struct LogP {
  /// L / O: wire latency expressed in steps (integer per the paper).
  Step l_over_o = 1;
  /// O in microseconds; only used to convert steps to wall time for reports.
  double o_us = 1.0;

  /// Steps from emission to processing at the receiver (= L/O + 1).
  constexpr Step delivery_delay() const { return l_over_o + 1; }

  /// Convert a step count to microseconds (1 step = O).
  constexpr double us(Step steps) const { return static_cast<double>(steps) * o_us; }

  /// L in microseconds.
  constexpr double l_us() const { return static_cast<double>(l_over_o) * o_us; }

  constexpr void validate() const { CG_CHECK(l_over_o >= 0 && o_us > 0.0); }

  /// The paper's toy setting L = O = 1 (Figures 1, 3, 5, 9).
  static constexpr LogP unit() { return LogP{.l_over_o = 1, .o_us = 1.0}; }

  /// Piz Daint (Cray XC30, Aries) parameters used for Table 7 / Figure 7:
  /// L = 2 us, O = 1 us.
  static constexpr LogP piz_daint() { return LogP{.l_over_o = 2, .o_us = 1.0}; }
};

}  // namespace cg

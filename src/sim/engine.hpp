// Stepped LogP broadcast simulator.
//
// The engine advances global time in steps of the LogP overhead O and
// drives protocol state machines.  Per step it:
//   1. crashes nodes whose online-failure time has come;
//   2. delivers messages scheduled for this step (calling on_receive);
//   3. ticks every active, non-completed node (calling on_tick).
//
// A message emitted during on_tick at step s is delivered at step
// s + L/O + 1.  Protocols may emit AT MOST ONE message per node per step
// (enforced by the shared SendGate), which models the per-message overhead
// O of the LogP model.
//
// The model itself lives in src/sim/core/: NetworkModel (delays, jitter,
// per-link extras, loss), NodeStateStore (lifecycle + RunMetrics
// finalization), SendGate (emission rate limit) and BasicCtx (the protocol
// -facing API).  This engine, the event-driven AsyncEngine and the
// multi-threaded ParallelEngine are three schedulers over that one model
// and produce identical RunMetrics (tests/test_engine_parity.cpp).
//
// Protocol (Node) requirements - a Node type must provide:
//   struct Params {...};
//   Node(const Params&, NodeId self, NodeId n);
//   template <class Ctx> void on_start(Ctx&);                // step 0, every alive node
//   template <class Ctx> void on_receive(Ctx&, const Message&);
//   template <class Ctx> void on_tick(Ctx&);                 // once per step while active
//
// Nodes begin Idle (except the root, which is Active).  A node becomes
// Active when it first receives a message, and Done when it calls
// Ctx::complete().  Only Active nodes are ticked.  The run stops when no
// node is Active and no message is in flight (or max_steps as a safety).
#pragma once

#include <algorithm>
#include <concepts>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/telemetry.hpp"
#include "proto/message.hpp"
#include "sim/core/basic_ctx.hpp"
#include "sim/core/bitset.hpp"
#include "sim/core/inbox.hpp"
#include "sim/core/network_model.hpp"
#include "sim/core/node_state.hpp"
#include "sim/core/profile.hpp"
#include "sim/core/run_config.hpp"
#include "sim/core/send_gate.hpp"
#include "sim/failure.hpp"
#include "sim/logp.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace cg {

template <class Node>
class Engine {
 public:
  using Params = typename Node::Params;
  using Ctx = BasicCtx<Engine>;

  Engine(RunConfig cfg, Params params)
      : cfg_(std::move(cfg)), params_(std::move(params)) {
    CG_CHECK(cfg_.n >= 1);
    CG_CHECK(cfg_.root >= 0 && cfg_.root < cfg_.n);
    cfg_.logp.validate();
  }

  RunMetrics run() { return run_impl(); }

  /// Run with a fresh config/params, REUSING this engine's allocated state
  /// (node slab, RNG streams, calendar slots, inboxes, scratch).  This is
  /// the trial-farm entry point (harness TrialWorkspace): steady-state
  /// reruns of fault-free configs perform zero heap allocations when the
  /// Node constructor itself is allocation-free (tests/test_trial_farm.cpp
  /// pins this).  Produces exactly the metrics a fresh Engine would.
  RunMetrics run(const RunConfig& cfg, const Params& params) {
    cfg_ = cfg;  // copy-assign: vector members reuse capacity
    params_ = params;
    CG_CHECK(cfg_.n >= 1);
    CG_CHECK(cfg_.root >= 0 && cfg_.root < cfg_.n);
    cfg_.logp.validate();
    return run_impl();
  }

  /// Access a node's protocol state after (or during) the run - tests only.
  const Node& node(NodeId i) const { return nodes_[static_cast<std::size_t>(i)]; }

  // --- BasicCtx hooks (protocol-facing; not part of the public API) ------
  Step ctx_now() const { return step_; }
  const RunConfig& ctx_cfg() const { return cfg_; }
  Xoshiro256& ctx_rng(NodeId i) { return rng_[static_cast<std::size_t>(i)]; }
  void ctx_send(NodeId from, NodeId to, const Message& m) {
    do_send(from, to, m);
  }
  void ctx_activate(NodeId i) {
    if (store_.activate(i, step_)) ++active_count_;
  }
  void ctx_mark_colored(NodeId i) {
    if (store_.mark_colored(i, step_, rx_payload_)) {
      trace({step_, TraceEvent::Kind::kColored, i, kNoNode, Tag::kGossip});
      if (cfg_.telemetry != nullptr) cfg_.telemetry->record_colored(0, step_);
    }
  }
  void ctx_adopt_payload(NodeId i, std::uint32_t d) {
    store_.set_held_payload(i, d);
  }
  void ctx_deliver(NodeId i) {
    if (store_.mark_delivered(i, step_))
      trace({step_, TraceEvent::Kind::kDelivered, i, kNoNode, Tag::kGossip});
  }
  void ctx_complete(NodeId i) {
    const auto t = store_.complete(i, step_);
    if (!t.changed) return;
    if (t.was_active) --active_count_;
    trace({step_, TraceEvent::Kind::kComplete, i, kNoNode, Tag::kGossip});
  }
  bool ctx_colored(NodeId i) const { return store_.colored(i); }
  void ctx_note_dropped(NodeId) { counts_.add_dropped(); }

 private:
  /// Does the Node support in-place reset (capacity-preserving return to
  /// the freshly-constructed state)?  When it does, trial reruns and
  /// restarts reuse the node objects instead of re-emplacing them - the
  /// zero-alloc steady-state path for protocols with internal buffers
  /// (e.g. SBRB's staged-send slabs).
  static constexpr bool kNodeReset =
      requires(Node& nd, const Params& p) {
        nd.reset_for_run(p, NodeId{0}, NodeId{2});
      };

  /// Does the protocol expose the SBRB staged-send kernel contract
  /// (gossip/sbrb.hpp)?  Same kernel as sim/sharded_engine.hpp: on runs
  /// with no crash schedule the per-step tick sweep walks the dense
  /// pending-sends bitmap instead of every active node, and fully
  /// quiescent spans (nothing staged, nothing in flight) fast-forward
  /// straight to the deadline tick.  Traces and profile counts reproduce
  /// the generic sweep exactly (tests/test_sbrb_fastpath.cpp): with no
  /// crashes and SBRB's activate-all on_start, the active set is fixed
  /// from step 1 until the deadline, and a pre-deadline tick of an idle
  /// node is a no-op.
  static constexpr bool kSbrbStaged =
      requires(Node& nd, const Node& cnd, const typename Node::Params& p,
               Step s) {
        { cnd.sbrb_idle() } -> std::convertible_to<bool>;
        {
          nd.sbrb_pop_staged(s)
        } -> std::convertible_to<std::pair<NodeId, Message>>;
        { p.deadline } -> std::convertible_to<Step>;
      };

  struct DeliveryFull {
    NodeId to;
    Message msg;
  };
  /// Compact calendar record for SBRB runs.  SBRB messages never carry
  /// known[]/known_count/retrans (and every Byzantine transform leaves
  /// them zero too), so {src, time, payload, tag} reconstructs the exact
  /// Message - including its rx_order_before key - at 24 bytes instead of
  /// 64.  Calendar traffic is the engine's largest streaming cost at
  /// scale, so this matters (docs/PERF.md §7).
  struct DeliveryCompact {
    NodeId to;
    NodeId src;
    Step time;
    std::uint32_t payload;
    Tag tag;
  };
  using Delivery =
      std::conditional_t<kSbrbStaged, DeliveryCompact, DeliveryFull>;
  static Delivery make_delivery(NodeId to, const Message& m) {
    if constexpr (kSbrbStaged) {
      return {to, m.src, m.time, m.payload, m.tag};
    } else {
      return {to, m};
    }
  }
  static Message delivery_msg(const Delivery& d) {
    if constexpr (kSbrbStaged) {
      Message m;
      m.tag = d.tag;
      m.src = d.src;
      m.payload = d.payload;
      m.time = d.time;
      return m;
    } else {
      return d.msg;
    }
  }

  RunMetrics run_impl();
  void do_send(NodeId from, NodeId to, const Message& m);
  void apply_failure(NodeId i);
  void apply_restart(NodeId i);
  void dispatch(NodeId to, const Message& m);
  void trace(TraceEvent ev) {
    if (cfg_.trace != nullptr) cfg_.trace->on_event(ev);
  }
  RunMetrics finalize();

  RunConfig cfg_;
  Params params_;

  // Run state (valid during run()).
  Step step_ = 0;
  std::vector<Node> nodes_;
  std::vector<Xoshiro256> rng_;
  NetworkModel net_;
  NodeStateStore store_;
  SendGate gate_;
  ByzantineModel byz_;
  std::uint32_t rx_payload_ = 0;  ///< digest of the message being dispatched
  MessageCounts counts_;
  std::vector<std::vector<Delivery>> calendar_;  // ring buffer, D+1 slots
  std::vector<InboxBuf> inbox_;                  // kOnePerStep only
  std::vector<Step> inbox_stamp_;                // kOnePerStep scratch
  std::vector<std::size_t> inbox_tail_;          // kOnePerStep scratch
  std::vector<Delivery> due_;                    // per-step scratch
  std::vector<OnlineFailure> online_scratch_;    // sorted crash schedule
  std::vector<Restart> revive_scratch_;          // sorted revival schedule
  PackedBits sbrb_pending_;                      // kSbrbStaged kernel only
  bool sbrb_kernel_ = false;                     // kernel engaged this run
  std::int64_t in_flight_ = 0;
  NodeId active_count_ = 0;
  RunMetrics metrics_{};
};

// ---------------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------------

template <class Node>
void Engine<Node>::do_send(NodeId from, NodeId to, const Message& m) {
  CG_CHECK(to >= 0 && to < cfg_.n);
  CG_CHECK_MSG(to != from, "node sent a message to itself");
  gate_.on_send(from, step_);
  Message adv = m;
  if (adv.payload == 0) adv.payload = store_.held_payload(from);
  if (byz_.any()) {
    const ByzAction act = byz_.transform(from, to, adv, step_);
    if (act == ByzAction::kSuppressed) {
      counts_.add_suppressed();
      return;  // swallowed at the sender: no send/lost trace, no route
    }
    if (act == ByzAction::kEquivocated) counts_.add_equivocated();
    if (act == ByzAction::kForged) counts_.add_forged();
    counts_.add(adv);
    if (cfg_.trace != nullptr) {
      trace({step_, TraceEvent::Kind::kSend, from, to, adv.tag});
      if (act == ByzAction::kEquivocated)
        trace({step_, TraceEvent::Kind::kEquivocated, from, to, adv.tag});
      else if (act == ByzAction::kForged)
        trace({step_, TraceEvent::Kind::kForged, from, to, adv.tag});
    }
  } else {
    counts_.add(adv);
    if (cfg_.trace != nullptr)
      trace({step_, TraceEvent::Kind::kSend, from, to, adv.tag});
  }

  const Step at = net_.route(from, to, step_);
  if (at == NetworkModel::kLost) {  // lost on the wire (counted as work)
    trace({step_, TraceEvent::Kind::kLost, from, to, adv.tag});
    return;
  }

  Message out = adv;
  out.src = from;
  auto& slot = calendar_[static_cast<std::size_t>(
      at % static_cast<Step>(calendar_.size()))];
  slot.push_back(make_delivery(to, out));
  ++in_flight_;
  if (cfg_.profile != nullptr) {
    ++cfg_.profile->events_scheduled;
    cfg_.profile->queue_max_bucket =
        std::max(cfg_.profile->queue_max_bucket,
                 static_cast<std::int64_t>(slot.size()));
  }
}

template <class Node>
void Engine<Node>::apply_failure(NodeId i) {
  const auto t = store_.kill(i);
  if (!t.changed) return;
  if (t.was_active) --active_count_;
  trace({step_, TraceEvent::Kind::kFail, i, kNoNode, Tag::kGossip});
}

template <class Node>
void Engine<Node>::apply_restart(NodeId i) {
  if (!store_.revive(i)) return;
  // The rejoined node runs a FRESH protocol instance: uncolored, Idle,
  // passive until its first receive (we do not re-run on_start; the
  // broadcast started without it).
  if constexpr (kNodeReset)
    nodes_[static_cast<std::size_t>(i)].reset_for_run(params_, i, cfg_.n);
  else
    nodes_[static_cast<std::size_t>(i)] = Node(params_, i, cfg_.n);
  trace({step_, TraceEvent::Kind::kRestart, i, kNoNode, Tag::kGossip});
}

template <class Node>
void Engine<Node>::dispatch(NodeId to, const Message& m) {
  --in_flight_;
  if (!store_.alive(to) || store_.done(to)) return;  // dropped
  if (store_.activate(to, step_)) ++active_count_;
  if (cfg_.trace != nullptr)
    trace({step_, TraceEvent::Kind::kDeliver, to, m.src, m.tag});
  if (cfg_.telemetry != nullptr)
    cfg_.telemetry->record_delivery(0, to, step_);
  if (cfg_.profile != nullptr) ++cfg_.profile->callbacks_receive;
  Ctx ctx(*this, to);
  rx_payload_ = m.payload;  // ambient digest for ctx_mark_colored
  nodes_[static_cast<std::size_t>(to)].on_receive(ctx, m);
  rx_payload_ = 0;
  if constexpr (kSbrbStaged) {
    // Keep the dense pending-sends bitmap coherent: a receive is the only
    // place a node can stage new sends mid-run.  The bitmap test runs
    // first - it is cache-resident, while sbrb_idle() touches the node's
    // queue headers, a line the receive handler often left cold.
    if (sbrb_kernel_ && !sbrb_pending_.test(to) &&
        !nodes_[static_cast<std::size_t>(to)].sbrb_idle())
      sbrb_pending_.set(to);
  }
}

template <class Node>
RunMetrics Engine<Node>::run_impl() {
  const auto n = static_cast<std::size_t>(cfg_.n);
  if constexpr (kNodeReset) {
    if (nodes_.size() == n) {
      for (NodeId i = 0; i < cfg_.n; ++i)
        nodes_[static_cast<std::size_t>(i)].reset_for_run(params_, i, cfg_.n);
    } else {
      nodes_.clear();
      nodes_.reserve(n);
      for (NodeId i = 0; i < cfg_.n; ++i)
        nodes_.emplace_back(params_, i, cfg_.n);
    }
  } else {
    nodes_.clear();
    nodes_.reserve(n);
    for (NodeId i = 0; i < cfg_.n; ++i)
      nodes_.emplace_back(params_, i, cfg_.n);
  }

  rng_.clear();
  rng_.reserve(n);
  for (NodeId i = 0; i < cfg_.n; ++i)
    rng_.emplace_back(derive_seed(cfg_.seed, static_cast<std::uint64_t>(i)));
  net_.reset(cfg_);
  store_.reset(cfg_.n);
  gate_.reset(cfg_.n);
  byz_.reset(cfg_.n, cfg_.root, cfg_.seed, cfg_.byzantine);
  for (const auto& b : cfg_.byzantine.nodes) store_.mark_byzantine(b.node);
  rx_payload_ = 0;
  counts_ = MessageCounts{};
  // Reset the ring to D+1 empty slots, keeping each slot's capacity when
  // the delay structure is unchanged (the trial-farm steady state).
  const auto cal_slots = static_cast<std::size_t>(net_.max_delay()) + 1;
  if (calendar_.size() == cal_slots) {
    for (auto& slot : calendar_) slot.clear();
  } else {
    calendar_.assign(cal_slots, {});
  }
  if (cfg_.rx == RxPolicy::kOnePerStep) {
    if (inbox_.size() == n) {
      for (auto& box : inbox_) box.clear();
    } else {
      inbox_.assign(n, {});
    }
    inbox_stamp_.assign(n, -1);
    inbox_tail_.assign(n, 0);
  }
  in_flight_ = 0;
  active_count_ = 0;
  metrics_ = RunMetrics{};
  step_ = 0;

  // Pre-failed nodes.
  for (const NodeId i : cfg_.failures.pre_failed) store_.pre_fail(i);
  CG_CHECK_MSG(store_.alive(cfg_.root), "root must be active at start");

  // Sort crash events (online failures + restart downs, in that order for
  // same-step determinism across engines) and revivals by time.  Member
  // scratch so reruns reuse the vectors' capacity.
  auto& online = online_scratch_;
  online.clear();
  online.insert(online.end(), cfg_.failures.online.begin(),
                cfg_.failures.online.end());
  for (const auto& r : cfg_.failures.restarts)
    online.push_back({r.node, r.down_at});
  std::stable_sort(online.begin(), online.end(),
                   [](const OnlineFailure& a, const OnlineFailure& b) {
                     return a.at_step < b.at_step;
                   });
  std::size_t next_failure = 0;
  auto& revives = revive_scratch_;
  revives.clear();
  revives.insert(revives.end(), cfg_.failures.restarts.begin(),
                 cfg_.failures.restarts.end());
  std::stable_sort(revives.begin(), revives.end(),
                   [](const Restart& a, const Restart& b) {
                     return a.up_at < b.up_at;
                   });
  std::size_t next_revive = 0;

  EngineProfile* prof = cfg_.profile;
  if (prof != nullptr) *prof = EngineProfile{};
  if (cfg_.telemetry != nullptr) cfg_.telemetry->attach(cfg_.n, 1);
  const auto prof_run0 = ProfileClock::now();

  // Start: root is active; everyone alive gets on_start.  The root counts
  // as activated at step 0 (colored at 0, first emission at step 1).
  store_.activate(cfg_.root, 0);
  ++active_count_;
  // The staged-send kernel engages only without a crash schedule: lazy
  // kills and restart revivals need the generic sweep's exact stepping
  // (mirrors ShardedEngine's any_crash_ gate; pre-failed nodes are fine,
  // they just never enter the active set).
  sbrb_kernel_ = false;
  if constexpr (kSbrbStaged)
    sbrb_kernel_ =
        cfg_.failures.online.empty() && cfg_.failures.restarts.empty();
  for (NodeId i = 0; i < cfg_.n; ++i) {
    if (!store_.alive(i)) continue;
    if (prof != nullptr) ++prof->callbacks_start;
    Ctx ctx(*this, i);
    nodes_[static_cast<std::size_t>(i)].on_start(ctx);
  }
  if constexpr (kSbrbStaged) {
    if (sbrb_kernel_) {
      sbrb_pending_.reset(cfg_.n);
      for (NodeId i = 0; i < cfg_.n; ++i)
        if (store_.alive(i) && !store_.done(i) &&
            !nodes_[static_cast<std::size_t>(i)].sbrb_idle())
          sbrb_pending_.set(i);
    }
  }

  const Step max_steps = cfg_.effective_max_steps();
  auto& due = due_;  // member scratch (capacity persists across runs)
  // Pending revivals count as outstanding work: the run must reach every
  // scheduled restart so all engines agree on the final population (the
  // event-driven engine drains its queue and would revive regardless).
  while (active_count_ > 0 || in_flight_ > 0 || next_revive < revives.size()) {
    if (step_ >= max_steps) {
      metrics_.hit_max_steps = true;
      break;
    }

    auto prof_phase0 = prof != nullptr ? ProfileClock::now()
                                       : ProfileClock::TimePoint{};

    // 1. crash failures scheduled at or before this step, then revivals
    while (next_failure < online.size() && online[next_failure].at_step <= step_) {
      apply_failure(online[next_failure].node);
      ++next_failure;
    }
    while (next_revive < revives.size() && revives[next_revive].up_at <= step_) {
      apply_restart(revives[next_revive].node);
      ++next_revive;
    }

    // 2. deliveries scheduled for this step
    auto& slot = calendar_[static_cast<std::size_t>(
        step_ % static_cast<Step>(calendar_.size()))];
    due.clear();
    due.swap(slot);
    if (prof != nullptr)
      prof->events_fired += static_cast<std::int64_t>(due.size());
    if (cfg_.rx == RxPolicy::kDrainAll) {
      // Receivers arrive in near-random order, so each dispatch starts
      // with a cold miss on the target node.  Two-stage software pipeline:
      // prefetch the node's header lines several entries ahead, then (for
      // protocols with tag-directed hints) let the node prefetch the
      // handler's dependent data - sample/subscriber lines - two entries
      // ahead, once its header has arrived.  This overlaps the receive
      // chain's serial misses with the preceding handlers.
      constexpr bool kRxHint =
          requires(const Node& cnd, Tag t) { cnd.sbrb_prefetch(t); };
      for (std::size_t k = 0; k < due.size(); ++k) {
        if (k + 6 < due.size()) {
          const auto* nxt = reinterpret_cast<const char*>(
              &nodes_[static_cast<std::size_t>(due[k + 6].to)]);
          __builtin_prefetch(nxt);
          __builtin_prefetch(nxt + 64);
        }
        if constexpr (kRxHint && kSbrbStaged) {
          if (k + 2 < due.size())
            nodes_[static_cast<std::size_t>(due[k + 2].to)].sbrb_prefetch(
                due[k + 2].tag);
        }
        dispatch(due[k].to, delivery_msg(due[k]));
      }
    } else {
      // Append this step's arrivals, then canonically order each inbox's
      // new tail so all engines defer the same message to the next step.
      for (const auto& d : due) {
        const auto idx = static_cast<std::size_t>(d.to);
        if (inbox_stamp_[idx] != step_) {
          inbox_stamp_[idx] = step_;
          inbox_tail_[idx] = inbox_[idx].size();
        }
        inbox_[idx].push_back(delivery_msg(d));
      }
      for (const auto& d : due) {
        const auto idx = static_cast<std::size_t>(d.to);
        if (inbox_stamp_[idx] != step_) continue;  // already sorted
        inbox_stamp_[idx] = -1;
        auto& box = inbox_[idx];
        std::sort(box.at(inbox_tail_[idx]), box.end(), rx_order_before);
      }
      for (NodeId i = 0; i < cfg_.n; ++i) {
        auto& box = inbox_[static_cast<std::size_t>(i)];
        if (!box.empty()) {
          const Message m = box.front();
          box.pop_front();
          dispatch(i, m);
        }
      }
    }

    if (prof != nullptr) {
      prof->deliver_s += ProfileClock::seconds_since(prof_phase0);
      prof_phase0 = ProfileClock::now();
    }

    // 3. ticks - a node activated at step c (first receive, or the root at
    // step 0) may only emit from step c+1 (its receive occupied step c),
    // so its first tick is skipped.
    //
    // SBRB staged-send kernel (see kSbrbStaged): between step 1 and the
    // deadline only nodes with staged sends are visited; the deadline
    // sweep and step 0 fall through to the generic loop (which completes
    // everyone, resp. skips everyone as activated-this-step).
    bool generic_ticks = true;
    if constexpr (kSbrbStaged) {
      if (sbrb_kernel_ && step_ > 0 && step_ < params_.deadline) {
        generic_ticks = false;
        if (in_flight_ == 0 && cfg_.heartbeat == nullptr &&
            sbrb_pending_.none_in(0, cfg_.n)) {
          // Fully quiescent: no message in flight, nothing staged, no
          // crash schedule - nothing can happen before the deadline tick
          // (or the max_steps cutoff).  Fast-forward, accounting the
          // skipped steps' would-be ticks: the active set is fixed and
          // every member was activated before this step.
          const Step target = std::min(params_.deadline, max_steps);
          if (prof != nullptr) {
            prof->callbacks_tick +=
                static_cast<std::int64_t>(active_count_) * (target - step_);
            prof->tick_s += ProfileClock::seconds_since(prof_phase0);
          }
          step_ = target;
          continue;
        }
        if (prof != nullptr) prof->callbacks_tick += active_count_;
        constexpr bool kPopHint =
            requires(const Node& cnd) { cnd.sbrb_prefetch_pop(); };
        sbrb_pending_.for_each_set(0, cfg_.n, [&](NodeId i) {
          // During the dribble phase the pending set is dense, so the next
          // visited node is almost always i+1: prefetch i+2's queue
          // headers now, and let i+1 (whose headers arrived last
          // iteration) prefetch its queue front before we work on i.
          if (i + 2 < cfg_.n)
            __builtin_prefetch(
                reinterpret_cast<const char*>(&nodes_[i + 2]) + 64);
          if constexpr (kPopHint) {
            if (i + 1 < cfg_.n)
              nodes_[static_cast<std::size_t>(i + 1)].sbrb_prefetch_pop();
          }
          auto& nd = nodes_[static_cast<std::size_t>(i)];
          if (nd.sbrb_idle()) {  // defensive: stale pending bit
            sbrb_pending_.clear(i);
            return;
          }
          const auto [to, m] = nd.sbrb_pop_staged(step_);
          do_send(i, to, m);
          if (nd.sbrb_idle()) sbrb_pending_.clear(i);
        });
      }
    }
    if (generic_ticks) {
      for (NodeId i = 0; i < cfg_.n; ++i) {
        if (store_.state(i) != NodeRunState::kActive ||
            store_.activated_at(i) == step_)
          continue;
        if (prof != nullptr) ++prof->callbacks_tick;
        Ctx ctx(*this, i);
        nodes_[static_cast<std::size_t>(i)].on_tick(ctx);
      }
    }
    if (prof != nullptr) prof->tick_s += ProfileClock::seconds_since(prof_phase0);

    ++step_;
    if (cfg_.heartbeat != nullptr) cfg_.heartbeat->beat(step_, max_steps, 0);
  }

  if (prof != nullptr) {
    prof->steps = step_;
    prof->wall_s = ProfileClock::seconds_since(prof_run0);
    std::size_t fp = nodes_.capacity() * sizeof(Node) +
                     rng_.capacity() * sizeof(Xoshiro256) +
                     store_.footprint_bytes() +
                     due_.capacity() * sizeof(Delivery);
    for (const auto& slot : calendar_) fp += slot.capacity() * sizeof(Delivery);
    for (const auto& ib : inbox_) fp += ib.capacity() * sizeof(Message);
    fp += inbox_stamp_.capacity() * sizeof(Step) +
          inbox_tail_.capacity() * sizeof(std::size_t);
    prof->bytes_per_node =
        static_cast<std::int64_t>(fp / static_cast<std::size_t>(cfg_.n));
    prof->peak_rss_bytes = current_peak_rss_bytes();
  }
  return finalize();
}

template <class Node>
RunMetrics Engine<Node>::finalize() {
  counts_.merge_into(metrics_);
  store_.finalize(metrics_, cfg_.root, step_, cfg_.record_node_detail);
  if (cfg_.telemetry != nullptr) cfg_.telemetry->finish_run(metrics_);
  return metrics_;
}

}  // namespace cg

// Stepped LogP broadcast simulator.
//
// The engine advances global time in steps of the LogP overhead O and
// drives protocol state machines.  Per step it:
//   1. crashes nodes whose online-failure time has come;
//   2. delivers messages scheduled for this step (calling on_receive);
//   3. ticks every active, non-completed node (calling on_tick).
//
// A message emitted during on_tick at step s is delivered at step
// s + L/O + 1.  Protocols may emit AT MOST ONE message per node per step
// (enforced), which models the per-message overhead O of the LogP model.
//
// Protocol (Node) requirements - a Node type must provide:
//   struct Params {...};
//   Node(const Params&, NodeId self, NodeId n);
//   template <class Ctx> void on_start(Ctx&);                // step 0, every alive node
//   template <class Ctx> void on_receive(Ctx&, const Message&);
//   template <class Ctx> void on_tick(Ctx&);                 // once per step while active
//
// Nodes begin Idle (except the root, which is Active).  A node becomes
// Active when it first receives a message, and Done when it calls
// Ctx::complete().  Only Active nodes are ticked.  The run stops when no
// node is Active and no message is in flight (or max_steps as a safety).
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "proto/message.hpp"
#include "sim/failure.hpp"
#include "sim/logp.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace cg {

/// How receive overhead is modeled (DESIGN.md Section 2).
enum class RxPolicy : std::uint8_t {
  kDrainAll,    ///< all pending messages processed in their arrival step
                ///< (matches the pseudo-code's "while check for receive")
  kOnePerStep,  ///< at most one receive per node per step (strict LogP o)
};

struct RunConfig {
  NodeId n = 0;             ///< N, size of the name space
  NodeId root = 0;
  LogP logp{};
  RxPolicy rx = RxPolicy::kDrainAll;
  std::uint64_t seed = 1;   ///< seeds all per-node RNG streams
  Step max_steps = 0;       ///< 0 = auto (10*N + 64*(L/O+2) + 1024)
  FailureSchedule failures{};
  bool record_node_detail = false;
  TraceSink* trace = nullptr;  ///< not owned; may be nullptr
  /// Model extension beyond the paper: add a uniform random extra delay of
  /// 0..jitter_max steps to every message (network variance).  Protocols'
  /// phase boundaries still use the synchronized clock; the ablation bench
  /// shows how robust each algorithm is to the resulting reordering.
  Step jitter_max = 0;
  /// Model extension: deterministic per-link extra latency (e.g., a
  /// two-level rack hierarchy).  extra(from, to) must be in
  /// [0, link_extra_max] and pure.  nullptr = uniform network (the paper).
  std::function<Step(NodeId from, NodeId to)> link_extra;
  Step link_extra_max = 0;
  /// Model extension: each message is lost independently with this
  /// probability (the paper assumes reliable channels; the ablation shows
  /// which guarantees survive when that assumption breaks).  Lost messages
  /// still count as sent work.
  double drop_prob = 0.0;

  Step effective_max_steps() const {
    return max_steps > 0
               ? max_steps
               : 10 * static_cast<Step>(n) + 64 * (logp.l_over_o + 2) + 1024;
  }
};

template <class Node>
class Engine {
 public:
  using Params = typename Node::Params;

  Engine(RunConfig cfg, Params params)
      : cfg_(std::move(cfg)), params_(std::move(params)) {
    CG_CHECK(cfg_.n >= 1);
    CG_CHECK(cfg_.root >= 0 && cfg_.root < cfg_.n);
    cfg_.logp.validate();
  }

  /// Execution context handed to protocol callbacks.
  class Ctx {
   public:
    Step now() const { return eng_.step_; }
    NodeId self() const { return self_; }
    NodeId n() const { return eng_.cfg_.n; }
    NodeId root() const { return eng_.cfg_.root; }
    bool is_root() const { return self_ == eng_.cfg_.root; }
    const LogP& logp() const { return eng_.cfg_.logp; }
    Xoshiro256& rng() { return eng_.rng_[static_cast<std::size_t>(self_)]; }

    /// Emit one message; delivered at now() + L/O + 1.
    void send(NodeId to, const Message& m) { eng_.do_send(self_, to, m); }

    /// Make an Idle node Active (used by protocols whose on_start seeds
    /// state on non-root nodes, e.g. the testing pre-colored hook).
    void activate() { eng_.do_activate(self_); }

    /// Record that this node now holds the broadcast payload.
    void mark_colored() { eng_.do_mark_colored(self_); }
    /// Record formal delivery to the client (FCG semantics).
    void deliver() { eng_.do_deliver(self_); }
    /// Exit the algorithm; no further callbacks for this node.
    void complete() { eng_.do_complete(self_); }

    bool colored() const {
      return eng_.colored_at_[static_cast<std::size_t>(self_)] != kNever;
    }

   private:
    friend class Engine;
    Ctx(Engine& e, NodeId self) : eng_(e), self_(self) {}
    Engine& eng_;
    NodeId self_;
  };

  RunMetrics run();

  /// Access a node's protocol state after (or during) the run - tests only.
  const Node& node(NodeId i) const { return nodes_[static_cast<std::size_t>(i)]; }

 private:
  enum class RunState : std::uint8_t { kIdle, kActive, kDone };

  struct Delivery {
    NodeId to;
    Message msg;
  };

  void do_send(NodeId from, NodeId to, const Message& m);
  void do_activate(NodeId i);
  void do_mark_colored(NodeId i);
  void do_deliver(NodeId i);
  void do_complete(NodeId i);
  void apply_failure(NodeId i);
  void dispatch(NodeId to, const Message& m);
  void trace(TraceEvent ev) {
    if (cfg_.trace != nullptr) cfg_.trace->on_event(ev);
  }
  RunMetrics finalize();

  RunConfig cfg_;
  Params params_;

  // Run state (valid during run()).
  Step step_ = 0;
  std::vector<Node> nodes_;
  std::vector<Xoshiro256> rng_;
  std::vector<Xoshiro256> jitter_rng_;
  std::vector<Xoshiro256> loss_rng_;
  std::vector<bool> alive_;
  std::vector<RunState> state_;
  std::vector<Step> colored_at_;
  std::vector<Step> delivered_at_;
  std::vector<Step> completed_at_;
  std::vector<Step> activated_at_;
  std::vector<std::vector<Delivery>> calendar_;  // ring buffer, D+1 slots
  std::vector<std::deque<Message>> inbox_;       // kOnePerStep only
  std::int64_t in_flight_ = 0;
  NodeId active_count_ = 0;
  NodeId sends_this_step_node_ = kNoNode;  // one-send-per-step enforcement
  Step sends_this_step_time_ = -1;
  RunMetrics metrics_{};
};

// ---------------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------------

template <class Node>
void Engine<Node>::do_send(NodeId from, NodeId to, const Message& m) {
  CG_CHECK(to >= 0 && to < cfg_.n);
  CG_CHECK_MSG(to != from, "node sent a message to itself");
  // Enforce one emission per node per step (LogP overhead O per message).
  if (sends_this_step_node_ == from && sends_this_step_time_ == step_) {
    CG_CHECK_MSG(false, "protocol emitted >1 message in one step");
  }
  sends_this_step_node_ = from;
  sends_this_step_time_ = step_;

  ++metrics_.msgs_total;
  switch (m.tag) {
    case Tag::kGossip:
    case Tag::kPullReq: ++metrics_.msgs_gossip; break;
    case Tag::kOcgCorr:
    case Tag::kFwd:
    case Tag::kBwd: ++metrics_.msgs_correction; break;
    case Tag::kSos: ++metrics_.msgs_sos; break;
    case Tag::kTree:
    case Tag::kNack:
    case Tag::kAck: ++metrics_.msgs_tree; break;
  }

  if (cfg_.drop_prob > 0.0 &&
      loss_rng_[static_cast<std::size_t>(from)].uniform01() < cfg_.drop_prob) {
    trace({step_, TraceEvent::Kind::kSend, from, to, m.tag});
    return;  // lost on the wire (already counted as work)
  }

  Message out = m;
  out.src = from;
  Step at = step_ + cfg_.logp.delivery_delay();
  if (cfg_.jitter_max > 0) {
    // Per-sender jitter streams: deterministic for a seed and identical
    // between the serial and parallel engines.
    at += jitter_rng_[static_cast<std::size_t>(from)].uniform(
        0, cfg_.jitter_max);
  }
  if (cfg_.link_extra) {
    const Step extra = cfg_.link_extra(from, to);
    CG_CHECK(extra >= 0 && extra <= cfg_.link_extra_max);
    at += extra;
  }
  auto& slot = calendar_[static_cast<std::size_t>(at % static_cast<Step>(calendar_.size()))];
  slot.push_back({to, out});
  ++in_flight_;
  trace({step_, TraceEvent::Kind::kSend, from, to, m.tag});
}

template <class Node>
void Engine<Node>::do_activate(NodeId i) {
  const auto idx = static_cast<std::size_t>(i);
  if (state_[idx] != RunState::kIdle) return;
  state_[idx] = RunState::kActive;
  activated_at_[idx] = step_;
  ++active_count_;
}

template <class Node>
void Engine<Node>::do_mark_colored(NodeId i) {
  auto& c = colored_at_[static_cast<std::size_t>(i)];
  if (c == kNever) {
    c = step_;
    trace({step_, TraceEvent::Kind::kColored, i, kNoNode, Tag::kGossip});
  }
}

template <class Node>
void Engine<Node>::do_deliver(NodeId i) {
  auto& d = delivered_at_[static_cast<std::size_t>(i)];
  if (d == kNever) {
    d = step_;
    trace({step_, TraceEvent::Kind::kDelivered, i, kNoNode, Tag::kGossip});
  }
}

template <class Node>
void Engine<Node>::do_complete(NodeId i) {
  auto& st = state_[static_cast<std::size_t>(i)];
  if (st == RunState::kDone) return;
  if (st == RunState::kActive) --active_count_;
  st = RunState::kDone;
  completed_at_[static_cast<std::size_t>(i)] = step_;
  trace({step_, TraceEvent::Kind::kComplete, i, kNoNode, Tag::kGossip});
}

template <class Node>
void Engine<Node>::apply_failure(NodeId i) {
  const auto idx = static_cast<std::size_t>(i);
  if (!alive_[idx]) return;
  alive_[idx] = false;
  if (state_[idx] == RunState::kActive) --active_count_;
  state_[idx] = RunState::kDone;  // it will never act again
  trace({step_, TraceEvent::Kind::kFail, i, kNoNode, Tag::kGossip});
}

template <class Node>
void Engine<Node>::dispatch(NodeId to, const Message& m) {
  const auto idx = static_cast<std::size_t>(to);
  --in_flight_;
  if (!alive_[idx] || state_[idx] == RunState::kDone) return;  // dropped
  if (state_[idx] == RunState::kIdle) {
    state_[idx] = RunState::kActive;
    activated_at_[idx] = step_;
    ++active_count_;
  }
  trace({step_, TraceEvent::Kind::kDeliver, to, m.src, m.tag});
  Ctx ctx(*this, to);
  nodes_[idx].on_receive(ctx, m);
}

template <class Node>
RunMetrics Engine<Node>::run() {
  const auto n = static_cast<std::size_t>(cfg_.n);
  nodes_.clear();
  nodes_.reserve(n);
  for (NodeId i = 0; i < cfg_.n; ++i) nodes_.emplace_back(params_, i, cfg_.n);

  rng_.clear();
  rng_.reserve(n);
  for (NodeId i = 0; i < cfg_.n; ++i)
    rng_.emplace_back(derive_seed(cfg_.seed, static_cast<std::uint64_t>(i)));
  jitter_rng_.clear();
  if (cfg_.jitter_max > 0) {
    jitter_rng_.reserve(n);
    for (NodeId i = 0; i < cfg_.n; ++i)
      jitter_rng_.emplace_back(derive_seed(
          cfg_.seed, static_cast<std::uint64_t>(i) + 0x4A17E500000000ULL));
  }
  loss_rng_.clear();
  if (cfg_.drop_prob > 0.0) {
    CG_CHECK(cfg_.drop_prob < 1.0);
    loss_rng_.reserve(n);
    for (NodeId i = 0; i < cfg_.n; ++i)
      loss_rng_.emplace_back(derive_seed(
          cfg_.seed, static_cast<std::uint64_t>(i) + 0x10550000000000ULL));
  }

  alive_.assign(n, true);
  state_.assign(n, RunState::kIdle);
  colored_at_.assign(n, kNever);
  delivered_at_.assign(n, kNever);
  completed_at_.assign(n, kNever);
  activated_at_.assign(n, kNever);
  calendar_.assign(static_cast<std::size_t>(cfg_.logp.delivery_delay() +
                                            cfg_.jitter_max +
                                            cfg_.link_extra_max) + 1, {});
  if (cfg_.rx == RxPolicy::kOnePerStep) inbox_.assign(n, {});
  in_flight_ = 0;
  active_count_ = 0;
  metrics_ = RunMetrics{};
  metrics_.n_total = cfg_.n;
  step_ = 0;

  // Pre-failed nodes.
  for (const NodeId i : cfg_.failures.pre_failed) {
    CG_CHECK(i >= 0 && i < cfg_.n);
    alive_[static_cast<std::size_t>(i)] = false;
    state_[static_cast<std::size_t>(i)] = RunState::kDone;
  }
  CG_CHECK_MSG(alive_[static_cast<std::size_t>(cfg_.root)],
               "root must be active at start");

  // Sort online failures by time for in-order application.
  auto online = cfg_.failures.online;
  std::sort(online.begin(), online.end(),
            [](const OnlineFailure& a, const OnlineFailure& b) {
              return a.at_step < b.at_step;
            });
  std::size_t next_failure = 0;

  // Start: root is active; everyone alive gets on_start.  The root counts
  // as activated at step 0 (colored at 0, first emission at step 1).
  state_[static_cast<std::size_t>(cfg_.root)] = RunState::kActive;
  activated_at_[static_cast<std::size_t>(cfg_.root)] = 0;
  ++active_count_;
  for (NodeId i = 0; i < cfg_.n; ++i) {
    if (!alive_[static_cast<std::size_t>(i)]) continue;
    Ctx ctx(*this, i);
    nodes_[static_cast<std::size_t>(i)].on_start(ctx);
  }

  const Step max_steps = cfg_.effective_max_steps();
  std::vector<Delivery> due;  // scratch
  while (active_count_ > 0 || in_flight_ > 0) {
    if (step_ >= max_steps) {
      metrics_.hit_max_steps = true;
      break;
    }

    // 1. crash failures scheduled at or before this step
    while (next_failure < online.size() && online[next_failure].at_step <= step_) {
      apply_failure(online[next_failure].node);
      ++next_failure;
    }

    // 2. deliveries scheduled for this step
    auto& slot = calendar_[static_cast<std::size_t>(
        step_ % static_cast<Step>(calendar_.size()))];
    due.clear();
    due.swap(slot);
    if (cfg_.rx == RxPolicy::kDrainAll) {
      for (const auto& d : due) dispatch(d.to, d.msg);
    } else {
      for (const auto& d : due)
        inbox_[static_cast<std::size_t>(d.to)].push_back(d.msg);
      for (NodeId i = 0; i < cfg_.n; ++i) {
        auto& box = inbox_[static_cast<std::size_t>(i)];
        if (!box.empty()) {
          const Message m = box.front();
          box.pop_front();
          dispatch(i, m);
        }
      }
    }

    // 3. ticks - a node activated at step c (first receive, or the root at
    // step 0) may only emit from step c+1 (its receive occupied step c),
    // so its first tick is skipped.
    for (NodeId i = 0; i < cfg_.n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (state_[idx] != RunState::kActive || activated_at_[idx] == step_)
        continue;
      Ctx ctx(*this, i);
      nodes_[idx].on_tick(ctx);
    }

    ++step_;
  }

  return finalize();
}

template <class Node>
RunMetrics Engine<Node>::finalize() {
  metrics_.t_end = step_;
  Step last_colored = 0, last_delivered = 0, last_complete = 0;
  bool any_uncolored = false, any_undelivered = false, any_incomplete = false;
  for (NodeId i = 0; i < cfg_.n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (!alive_[idx]) continue;
    ++metrics_.n_active;
    if (colored_at_[idx] != kNever) {
      ++metrics_.n_colored;
      last_colored = std::max(last_colored, colored_at_[idx]);
      if (completed_at_[idx] != kNever)
        last_complete = std::max(last_complete, completed_at_[idx]);
      else
        any_incomplete = true;
    } else {
      any_uncolored = true;
    }
    if (delivered_at_[idx] != kNever) {
      ++metrics_.n_delivered;
      last_delivered = std::max(last_delivered, delivered_at_[idx]);
    } else {
      any_undelivered = true;
    }
  }
  metrics_.all_active_colored = !any_uncolored;
  metrics_.all_active_delivered = !any_undelivered;
  metrics_.t_last_colored = any_uncolored ? kNever : last_colored;
  metrics_.t_last_colored_partial = last_colored;
  metrics_.t_last_delivered = any_undelivered ? kNever : last_delivered;
  // Completion is over COLORED nodes: a weakly consistent protocol (GOS/OCG)
  // legitimately finishes while some nodes were never reached.
  metrics_.t_complete = any_incomplete ? kNever : last_complete;
  metrics_.sos_triggered = metrics_.msgs_sos > 0;
  metrics_.t_root_complete = completed_at_[static_cast<std::size_t>(cfg_.root)];
  if (cfg_.record_node_detail) {
    metrics_.colored_at = colored_at_;
    metrics_.delivered_at = delivered_at_;
    metrics_.completed_at = completed_at_;
  }
  return metrics_;
}

}  // namespace cg

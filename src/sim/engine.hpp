// Stepped LogP broadcast simulator.
//
// The engine advances global time in steps of the LogP overhead O and
// drives protocol state machines.  Per step it:
//   1. crashes nodes whose online-failure time has come;
//   2. delivers messages scheduled for this step (calling on_receive);
//   3. ticks every active, non-completed node (calling on_tick).
//
// A message emitted during on_tick at step s is delivered at step
// s + L/O + 1.  Protocols may emit AT MOST ONE message per node per step
// (enforced by the shared SendGate), which models the per-message overhead
// O of the LogP model.
//
// The model itself lives in src/sim/core/: NetworkModel (delays, jitter,
// per-link extras, loss), NodeStateStore (lifecycle + RunMetrics
// finalization), SendGate (emission rate limit) and BasicCtx (the protocol
// -facing API).  This engine, the event-driven AsyncEngine and the
// multi-threaded ParallelEngine are three schedulers over that one model
// and produce identical RunMetrics (tests/test_engine_parity.cpp).
//
// Protocol (Node) requirements - a Node type must provide:
//   struct Params {...};
//   Node(const Params&, NodeId self, NodeId n);
//   template <class Ctx> void on_start(Ctx&);                // step 0, every alive node
//   template <class Ctx> void on_receive(Ctx&, const Message&);
//   template <class Ctx> void on_tick(Ctx&);                 // once per step while active
//
// Nodes begin Idle (except the root, which is Active).  A node becomes
// Active when it first receives a message, and Done when it calls
// Ctx::complete().  Only Active nodes are ticked.  The run stops when no
// node is Active and no message is in flight (or max_steps as a safety).
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/telemetry.hpp"
#include "proto/message.hpp"
#include "sim/core/basic_ctx.hpp"
#include "sim/core/inbox.hpp"
#include "sim/core/network_model.hpp"
#include "sim/core/node_state.hpp"
#include "sim/core/profile.hpp"
#include "sim/core/run_config.hpp"
#include "sim/core/send_gate.hpp"
#include "sim/failure.hpp"
#include "sim/logp.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace cg {

template <class Node>
class Engine {
 public:
  using Params = typename Node::Params;
  using Ctx = BasicCtx<Engine>;

  Engine(RunConfig cfg, Params params)
      : cfg_(std::move(cfg)), params_(std::move(params)) {
    CG_CHECK(cfg_.n >= 1);
    CG_CHECK(cfg_.root >= 0 && cfg_.root < cfg_.n);
    cfg_.logp.validate();
  }

  RunMetrics run() { return run_impl(); }

  /// Run with a fresh config/params, REUSING this engine's allocated state
  /// (node slab, RNG streams, calendar slots, inboxes, scratch).  This is
  /// the trial-farm entry point (harness TrialWorkspace): steady-state
  /// reruns of fault-free configs perform zero heap allocations when the
  /// Node constructor itself is allocation-free (tests/test_trial_farm.cpp
  /// pins this).  Produces exactly the metrics a fresh Engine would.
  RunMetrics run(const RunConfig& cfg, const Params& params) {
    cfg_ = cfg;  // copy-assign: vector members reuse capacity
    params_ = params;
    CG_CHECK(cfg_.n >= 1);
    CG_CHECK(cfg_.root >= 0 && cfg_.root < cfg_.n);
    cfg_.logp.validate();
    return run_impl();
  }

  /// Access a node's protocol state after (or during) the run - tests only.
  const Node& node(NodeId i) const { return nodes_[static_cast<std::size_t>(i)]; }

  // --- BasicCtx hooks (protocol-facing; not part of the public API) ------
  Step ctx_now() const { return step_; }
  const RunConfig& ctx_cfg() const { return cfg_; }
  Xoshiro256& ctx_rng(NodeId i) { return rng_[static_cast<std::size_t>(i)]; }
  void ctx_send(NodeId from, NodeId to, const Message& m) {
    do_send(from, to, m);
  }
  void ctx_activate(NodeId i) {
    if (store_.activate(i, step_)) ++active_count_;
  }
  void ctx_mark_colored(NodeId i) {
    if (store_.mark_colored(i, step_, rx_payload_)) {
      trace({step_, TraceEvent::Kind::kColored, i, kNoNode, Tag::kGossip});
      if (cfg_.telemetry != nullptr) cfg_.telemetry->record_colored(0, step_);
    }
  }
  void ctx_adopt_payload(NodeId i, std::uint32_t d) {
    store_.set_held_payload(i, d);
  }
  void ctx_deliver(NodeId i) {
    if (store_.mark_delivered(i, step_))
      trace({step_, TraceEvent::Kind::kDelivered, i, kNoNode, Tag::kGossip});
  }
  void ctx_complete(NodeId i) {
    const auto t = store_.complete(i, step_);
    if (!t.changed) return;
    if (t.was_active) --active_count_;
    trace({step_, TraceEvent::Kind::kComplete, i, kNoNode, Tag::kGossip});
  }
  bool ctx_colored(NodeId i) const { return store_.colored(i); }
  void ctx_note_dropped(NodeId) { counts_.add_dropped(); }

 private:
  struct Delivery {
    NodeId to;
    Message msg;
  };

  RunMetrics run_impl();
  void do_send(NodeId from, NodeId to, const Message& m);
  void apply_failure(NodeId i);
  void apply_restart(NodeId i);
  void dispatch(NodeId to, const Message& m);
  void trace(TraceEvent ev) {
    if (cfg_.trace != nullptr) cfg_.trace->on_event(ev);
  }
  RunMetrics finalize();

  RunConfig cfg_;
  Params params_;

  // Run state (valid during run()).
  Step step_ = 0;
  std::vector<Node> nodes_;
  std::vector<Xoshiro256> rng_;
  NetworkModel net_;
  NodeStateStore store_;
  SendGate gate_;
  ByzantineModel byz_;
  std::uint32_t rx_payload_ = 0;  ///< digest of the message being dispatched
  MessageCounts counts_;
  std::vector<std::vector<Delivery>> calendar_;  // ring buffer, D+1 slots
  std::vector<InboxBuf> inbox_;                  // kOnePerStep only
  std::vector<Step> inbox_stamp_;                // kOnePerStep scratch
  std::vector<std::size_t> inbox_tail_;          // kOnePerStep scratch
  std::vector<Delivery> due_;                    // per-step scratch
  std::vector<OnlineFailure> online_scratch_;    // sorted crash schedule
  std::vector<Restart> revive_scratch_;          // sorted revival schedule
  std::int64_t in_flight_ = 0;
  NodeId active_count_ = 0;
  RunMetrics metrics_{};
};

// ---------------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------------

template <class Node>
void Engine<Node>::do_send(NodeId from, NodeId to, const Message& m) {
  CG_CHECK(to >= 0 && to < cfg_.n);
  CG_CHECK_MSG(to != from, "node sent a message to itself");
  gate_.on_send(from, step_);
  Message adv = m;
  if (adv.payload == 0) adv.payload = store_.held_payload(from);
  if (byz_.any()) {
    const ByzAction act = byz_.transform(from, to, adv, step_);
    if (act == ByzAction::kSuppressed) {
      counts_.add_suppressed();
      return;  // swallowed at the sender: no send/lost trace, no route
    }
    if (act == ByzAction::kEquivocated) counts_.add_equivocated();
    if (act == ByzAction::kForged) counts_.add_forged();
    counts_.add(adv);
    if (cfg_.trace != nullptr) {
      trace({step_, TraceEvent::Kind::kSend, from, to, adv.tag});
      if (act == ByzAction::kEquivocated)
        trace({step_, TraceEvent::Kind::kEquivocated, from, to, adv.tag});
      else if (act == ByzAction::kForged)
        trace({step_, TraceEvent::Kind::kForged, from, to, adv.tag});
    }
  } else {
    counts_.add(adv);
    if (cfg_.trace != nullptr)
      trace({step_, TraceEvent::Kind::kSend, from, to, adv.tag});
  }

  const Step at = net_.route(from, to, step_);
  if (at == NetworkModel::kLost) {  // lost on the wire (counted as work)
    trace({step_, TraceEvent::Kind::kLost, from, to, adv.tag});
    return;
  }

  Message out = adv;
  out.src = from;
  auto& slot = calendar_[static_cast<std::size_t>(
      at % static_cast<Step>(calendar_.size()))];
  slot.push_back({to, out});
  ++in_flight_;
  if (cfg_.profile != nullptr) {
    ++cfg_.profile->events_scheduled;
    cfg_.profile->queue_max_bucket =
        std::max(cfg_.profile->queue_max_bucket,
                 static_cast<std::int64_t>(slot.size()));
  }
}

template <class Node>
void Engine<Node>::apply_failure(NodeId i) {
  const auto t = store_.kill(i);
  if (!t.changed) return;
  if (t.was_active) --active_count_;
  trace({step_, TraceEvent::Kind::kFail, i, kNoNode, Tag::kGossip});
}

template <class Node>
void Engine<Node>::apply_restart(NodeId i) {
  if (!store_.revive(i)) return;
  // The rejoined node runs a FRESH protocol instance: uncolored, Idle,
  // passive until its first receive (we do not re-run on_start; the
  // broadcast started without it).
  nodes_[static_cast<std::size_t>(i)] = Node(params_, i, cfg_.n);
  trace({step_, TraceEvent::Kind::kRestart, i, kNoNode, Tag::kGossip});
}

template <class Node>
void Engine<Node>::dispatch(NodeId to, const Message& m) {
  --in_flight_;
  if (!store_.alive(to) || store_.done(to)) return;  // dropped
  if (store_.activate(to, step_)) ++active_count_;
  if (cfg_.trace != nullptr)
    trace({step_, TraceEvent::Kind::kDeliver, to, m.src, m.tag});
  if (cfg_.telemetry != nullptr)
    cfg_.telemetry->record_delivery(0, to, step_);
  if (cfg_.profile != nullptr) ++cfg_.profile->callbacks_receive;
  Ctx ctx(*this, to);
  rx_payload_ = m.payload;  // ambient digest for ctx_mark_colored
  nodes_[static_cast<std::size_t>(to)].on_receive(ctx, m);
  rx_payload_ = 0;
}

template <class Node>
RunMetrics Engine<Node>::run_impl() {
  const auto n = static_cast<std::size_t>(cfg_.n);
  nodes_.clear();
  nodes_.reserve(n);
  for (NodeId i = 0; i < cfg_.n; ++i) nodes_.emplace_back(params_, i, cfg_.n);

  rng_.clear();
  rng_.reserve(n);
  for (NodeId i = 0; i < cfg_.n; ++i)
    rng_.emplace_back(derive_seed(cfg_.seed, static_cast<std::uint64_t>(i)));
  net_.reset(cfg_);
  store_.reset(cfg_.n);
  gate_.reset(cfg_.n);
  byz_.reset(cfg_.n, cfg_.root, cfg_.seed, cfg_.byzantine);
  for (const auto& b : cfg_.byzantine.nodes) store_.mark_byzantine(b.node);
  rx_payload_ = 0;
  counts_ = MessageCounts{};
  // Reset the ring to D+1 empty slots, keeping each slot's capacity when
  // the delay structure is unchanged (the trial-farm steady state).
  const auto cal_slots = static_cast<std::size_t>(net_.max_delay()) + 1;
  if (calendar_.size() == cal_slots) {
    for (auto& slot : calendar_) slot.clear();
  } else {
    calendar_.assign(cal_slots, {});
  }
  if (cfg_.rx == RxPolicy::kOnePerStep) {
    if (inbox_.size() == n) {
      for (auto& box : inbox_) box.clear();
    } else {
      inbox_.assign(n, {});
    }
    inbox_stamp_.assign(n, -1);
    inbox_tail_.assign(n, 0);
  }
  in_flight_ = 0;
  active_count_ = 0;
  metrics_ = RunMetrics{};
  step_ = 0;

  // Pre-failed nodes.
  for (const NodeId i : cfg_.failures.pre_failed) store_.pre_fail(i);
  CG_CHECK_MSG(store_.alive(cfg_.root), "root must be active at start");

  // Sort crash events (online failures + restart downs, in that order for
  // same-step determinism across engines) and revivals by time.  Member
  // scratch so reruns reuse the vectors' capacity.
  auto& online = online_scratch_;
  online.clear();
  online.insert(online.end(), cfg_.failures.online.begin(),
                cfg_.failures.online.end());
  for (const auto& r : cfg_.failures.restarts)
    online.push_back({r.node, r.down_at});
  std::stable_sort(online.begin(), online.end(),
                   [](const OnlineFailure& a, const OnlineFailure& b) {
                     return a.at_step < b.at_step;
                   });
  std::size_t next_failure = 0;
  auto& revives = revive_scratch_;
  revives.clear();
  revives.insert(revives.end(), cfg_.failures.restarts.begin(),
                 cfg_.failures.restarts.end());
  std::stable_sort(revives.begin(), revives.end(),
                   [](const Restart& a, const Restart& b) {
                     return a.up_at < b.up_at;
                   });
  std::size_t next_revive = 0;

  EngineProfile* prof = cfg_.profile;
  if (prof != nullptr) *prof = EngineProfile{};
  if (cfg_.telemetry != nullptr) cfg_.telemetry->attach(cfg_.n, 1);
  const auto prof_run0 = ProfileClock::now();

  // Start: root is active; everyone alive gets on_start.  The root counts
  // as activated at step 0 (colored at 0, first emission at step 1).
  store_.activate(cfg_.root, 0);
  ++active_count_;
  for (NodeId i = 0; i < cfg_.n; ++i) {
    if (!store_.alive(i)) continue;
    if (prof != nullptr) ++prof->callbacks_start;
    Ctx ctx(*this, i);
    nodes_[static_cast<std::size_t>(i)].on_start(ctx);
  }

  const Step max_steps = cfg_.effective_max_steps();
  auto& due = due_;  // member scratch (capacity persists across runs)
  // Pending revivals count as outstanding work: the run must reach every
  // scheduled restart so all engines agree on the final population (the
  // event-driven engine drains its queue and would revive regardless).
  while (active_count_ > 0 || in_flight_ > 0 || next_revive < revives.size()) {
    if (step_ >= max_steps) {
      metrics_.hit_max_steps = true;
      break;
    }

    auto prof_phase0 = prof != nullptr ? ProfileClock::now()
                                       : ProfileClock::TimePoint{};

    // 1. crash failures scheduled at or before this step, then revivals
    while (next_failure < online.size() && online[next_failure].at_step <= step_) {
      apply_failure(online[next_failure].node);
      ++next_failure;
    }
    while (next_revive < revives.size() && revives[next_revive].up_at <= step_) {
      apply_restart(revives[next_revive].node);
      ++next_revive;
    }

    // 2. deliveries scheduled for this step
    auto& slot = calendar_[static_cast<std::size_t>(
        step_ % static_cast<Step>(calendar_.size()))];
    due.clear();
    due.swap(slot);
    if (prof != nullptr)
      prof->events_fired += static_cast<std::int64_t>(due.size());
    if (cfg_.rx == RxPolicy::kDrainAll) {
      for (const auto& d : due) dispatch(d.to, d.msg);
    } else {
      // Append this step's arrivals, then canonically order each inbox's
      // new tail so all engines defer the same message to the next step.
      for (const auto& d : due) {
        const auto idx = static_cast<std::size_t>(d.to);
        if (inbox_stamp_[idx] != step_) {
          inbox_stamp_[idx] = step_;
          inbox_tail_[idx] = inbox_[idx].size();
        }
        inbox_[idx].push_back(d.msg);
      }
      for (const auto& d : due) {
        const auto idx = static_cast<std::size_t>(d.to);
        if (inbox_stamp_[idx] != step_) continue;  // already sorted
        inbox_stamp_[idx] = -1;
        auto& box = inbox_[idx];
        std::sort(box.at(inbox_tail_[idx]), box.end(), rx_order_before);
      }
      for (NodeId i = 0; i < cfg_.n; ++i) {
        auto& box = inbox_[static_cast<std::size_t>(i)];
        if (!box.empty()) {
          const Message m = box.front();
          box.pop_front();
          dispatch(i, m);
        }
      }
    }

    if (prof != nullptr) {
      prof->deliver_s += ProfileClock::seconds_since(prof_phase0);
      prof_phase0 = ProfileClock::now();
    }

    // 3. ticks - a node activated at step c (first receive, or the root at
    // step 0) may only emit from step c+1 (its receive occupied step c),
    // so its first tick is skipped.
    for (NodeId i = 0; i < cfg_.n; ++i) {
      if (store_.state(i) != NodeRunState::kActive ||
          store_.activated_at(i) == step_)
        continue;
      if (prof != nullptr) ++prof->callbacks_tick;
      Ctx ctx(*this, i);
      nodes_[static_cast<std::size_t>(i)].on_tick(ctx);
    }
    if (prof != nullptr) prof->tick_s += ProfileClock::seconds_since(prof_phase0);

    ++step_;
    if (cfg_.heartbeat != nullptr) cfg_.heartbeat->beat(step_, max_steps, 0);
  }

  if (prof != nullptr) {
    prof->steps = step_;
    prof->wall_s = ProfileClock::seconds_since(prof_run0);
    std::size_t fp = nodes_.capacity() * sizeof(Node) +
                     rng_.capacity() * sizeof(Xoshiro256) +
                     store_.footprint_bytes() +
                     due_.capacity() * sizeof(Delivery);
    for (const auto& slot : calendar_) fp += slot.capacity() * sizeof(Delivery);
    for (const auto& ib : inbox_) fp += ib.capacity() * sizeof(Message);
    fp += inbox_stamp_.capacity() * sizeof(Step) +
          inbox_tail_.capacity() * sizeof(std::size_t);
    prof->bytes_per_node =
        static_cast<std::int64_t>(fp / static_cast<std::size_t>(cfg_.n));
    prof->peak_rss_bytes = current_peak_rss_bytes();
  }
  return finalize();
}

template <class Node>
RunMetrics Engine<Node>::finalize() {
  counts_.merge_into(metrics_);
  store_.finalize(metrics_, cfg_.root, step_, cfg_.record_node_detail);
  if (cfg_.telemetry != nullptr) cfg_.telemetry->finish_run(metrics_);
  return metrics_;
}

}  // namespace cg

// Generic discrete-event kernel: a calendar (bucket) queue.
//
// The stepped engine (engine.hpp) is the fast path for the paper's
// synchronous LogP model; this kernel underlies components with irregular
// timing: the event-driven AsyncEngine and any future g>0 /
// heterogeneous-latency extensions.  Events scheduled for the same time
// fire in insertion order (stable), which keeps runs deterministic.
//
// Design (classic bounded-horizon calendar queue from the DES literature):
//   * slots    - events live in a slab (std::vector) of fixed-size Slot
//                records recycled through a free list; the steady-state
//                schedule/fire/cancel path performs ZERO heap allocations;
//   * handlers - callables are stored INLINE in the slot (no
//                std::function); they must be trivially copyable and
//                destructible and fit kInlineHandlerBytes - a lambda
//                capturing an engine pointer plus a few ids.  Enforced at
//                compile time;
//   * buckets  - a power-of-two ring of per-time buckets (intrusive doubly
//                linked lists through the slots) covers [now, now + span).
//                Every time in the window maps to its own bucket, so
//                run_one is a bump-and-scan: advance to the first
//                non-empty bucket, pop its head.  Simulations whose events
//                stay within a bounded horizon of now (all engines here:
//                max message delay + 1-step ticks) never leave the ring;
//   * overflow - events beyond the window (e.g. a crash-restart schedule
//                laid out at setup) go to a small min-heap and migrate
//                into the ring as now advances.  Not a steady-state path;
//   * cancel   - an EventId is (generation, slot); cancel unlinks the slot
//                from its bucket and recycles it immediately, so N
//                schedule+cancel cycles touch O(1) live memory (the old
//                binary-heap kernel left tombstones until fire time).
//                Cancelling a not-yet-migrated overflow event reclaims the
//                slot at migration; stale ids are rejected by the
//                generation check.
//
// Horizon contract: scheduling is correct at ANY distance (overflow), but
// only in-window events get O(1) treatment.  Engines size the ring via
// reset(min_horizon); CG_CHECK guards at >= now().  See docs/PERF.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace cg {

/// Inline storage for event handlers (see EventQueue).  Sized for "pointer
/// to host + a handful of ids" lambdas with headroom; raising it grows
/// every slot, so keep payloads small (index into engine state, not state).
inline constexpr std::size_t kInlineHandlerBytes = 48;

class EventQueue {
 public:
  using EventId = std::uint64_t;

  /// Lifetime operation counters + occupancy watermarks (reset()).
  /// scheduled == fired + cancelled + pending() at all times.
  struct Stats {
    std::int64_t scheduled = 0;   ///< schedule_at/schedule_in calls
    std::int64_t fired = 0;       ///< handlers run
    std::int64_t cancelled = 0;   ///< successful cancel() calls
    std::int64_t max_live = 0;    ///< peak concurrently pending events
    std::int64_t max_bucket = 0;  ///< peak events in one calendar bucket
  };

  explicit EventQueue(Step min_horizon = kDefaultHorizon) {
    reset(min_horizon);
  }

  /// Clear all state and size the bucket ring to cover at least
  /// [now, now + min_horizon].  Slot slab capacity is retained across
  /// resets so back-to-back runs reuse warm memory.
  void reset(Step min_horizon = kDefaultHorizon) {
    CG_CHECK(min_horizon >= 0);
    std::size_t span = 16;
    while (span < static_cast<std::size_t>(min_horizon) + 2) span *= 2;
    mask_ = span - 1;
    head_.assign(span, kNil);
    tail_.assign(span, kNil);
    bucket_count_.assign(span, 0);
    slots_.clear();
    free_head_ = kNil;
    overflow_ = {};
    live_ = 0;
    seq_ = 0;
    now_ = 0;
    stats_ = Stats{};
  }

  /// Schedule `fn` at absolute time `at` (must be >= now()).
  /// Returns an id usable with cancel().
  template <class F>
  EventId schedule_at(Step at, F fn) {
    static_assert(std::is_trivially_copyable_v<F> &&
                      std::is_trivially_destructible_v<F>,
                  "EventQueue handlers are stored inline; capture plain "
                  "pointers/ids, not owning types");
    static_assert(sizeof(F) <= kInlineHandlerBytes,
                  "handler too large for inline slot storage");
    CG_CHECK(at >= now_);
    const std::uint32_t s = alloc_slot();
    Slot& slot = slots_[s];
    slot.at = at;
    slot.seq = seq_++;
    slot.invoke = [](const void* buf) {
      (*static_cast<const F*>(buf))();
    };
    ::new (static_cast<void*>(slot.handler)) F(fn);
    if (at <= now_ + static_cast<Step>(mask_)) {
      // Drain any overflow events the window now covers BEFORE linking, so
      // an earlier-scheduled (lower-seq) overflow event at the same time is
      // linked ahead of this one.  Without this, a handler firing after a
      // time gap could schedule at time T while an older overflow event at
      // T sat unmigrated (migration last ran with a stale window), and the
      // later migration would link the older event behind the newer one,
      // breaking FIFO-within-time.  No-op in steady state (overflow empty).
      if (!overflow_.empty()) migrate_overflow();
      slot.state = SlotState::kInRing;
      link_back(bucket(at), s);
    } else {
      slot.state = SlotState::kOverflow;
      overflow_.push(OverflowRef{at, slot.seq, s});
    }
    ++live_;
    ++stats_.scheduled;
    stats_.max_live = std::max(stats_.max_live, live_);
    return make_id(s, slot.gen);
  }

  /// Schedule `fn` `delay` ticks from now.
  template <class F>
  EventId schedule_in(Step delay, F fn) {
    CG_CHECK(delay >= 0);
    return schedule_at(now_ + delay, fn);
  }

  /// Cancel a scheduled event; returns false if it already fired or was
  /// cancelled before.  In-window events are unlinked and their slot
  /// recycled immediately (O(1)); overflow events are reclaimed when the
  /// window reaches them.
  bool cancel(EventId id) {
    const auto s = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    if (s >= slots_.size()) return false;
    Slot& slot = slots_[s];
    if (slot.gen != gen) return false;
    switch (slot.state) {
      case SlotState::kInRing:
        unlink(bucket(slot.at), s);
        free_slot(s);
        break;
      case SlotState::kOverflow:
        // The overflow heap holds a reference by (seq, slot); mark the slot
        // so migration drops it and recycles the storage then.
        slot.state = SlotState::kOverflowCancelled;
        break;
      default:
        return false;  // free or already-cancelled: id is stale
    }
    --live_;
    ++stats_.cancelled;
    return true;
  }

  Step now() const { return now_; }
  bool empty() const { return live_ == 0; }
  std::size_t pending() const { return static_cast<std::size_t>(live_); }
  const Stats& stats() const { return stats_; }

  /// Slot-pool capacity (slab size).  Steady-state workloads reach a
  /// plateau here: schedule/cancel/fire recycle slots instead of growing.
  std::size_t slot_capacity() const { return slots_.size(); }

  /// Fire the next event; returns false if none remain.
  bool run_one() {
    const std::uint32_t s = next_slot(kNever);
    if (s == kNil) return false;
    fire(s);
    return true;
  }

  /// Run until the queue is empty or `max_events` fired. Returns events fired.
  std::size_t run(std::size_t max_events = SIZE_MAX) {
    std::size_t fired = 0;
    while (fired < max_events && run_one()) ++fired;
    return fired;
  }

  /// Fire all events with time <= horizon. Returns events fired.
  /// Advances now() to horizon even if the queue drains earlier.
  std::size_t run_until(Step horizon) {
    std::size_t fired = 0;
    for (;;) {
      const std::uint32_t s = next_slot(horizon);
      if (s == kNil) break;
      fire(s);
      ++fired;
    }
    now_ = std::max(now_, horizon);
    return fired;
  }

 private:
  static constexpr Step kDefaultHorizon = 62;  // ring of 64 buckets
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  enum class SlotState : std::uint8_t {
    kFree,
    kInRing,
    kOverflow,
    kOverflowCancelled,
  };

  struct Slot {
    Step at = 0;
    std::uint64_t seq = 0;          // global insertion order (FIFO ties)
    std::uint32_t prev = kNil;      // intrusive bucket list links
    std::uint32_t next = kNil;      // doubles as free-list link
    std::uint32_t gen = 0;          // bumped on recycle; stale ids miss
    SlotState state = SlotState::kFree;
    void (*invoke)(const void*) = nullptr;
    alignas(alignof(std::max_align_t)) unsigned char
        handler[kInlineHandlerBytes];
  };

  struct OverflowRef {
    Step at;
    std::uint64_t seq;
    std::uint32_t slot;
    bool operator>(const OverflowRef& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  std::size_t bucket(Step at) const {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(at)) & mask_;
  }

  std::uint32_t alloc_slot() {
    if (free_head_ != kNil) {
      const std::uint32_t s = free_head_;
      free_head_ = slots_[s].next;
      return s;
    }
    CG_CHECK_MSG(slots_.size() < kNil, "event slot space exhausted");
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void free_slot(std::uint32_t s) {
    Slot& slot = slots_[s];
    ++slot.gen;
    slot.state = SlotState::kFree;
    slot.next = free_head_;
    free_head_ = s;
  }

  void link_back(std::size_t b, std::uint32_t s) {
    Slot& slot = slots_[s];
    slot.prev = tail_[b];
    slot.next = kNil;
    if (tail_[b] != kNil)
      slots_[tail_[b]].next = s;
    else
      head_[b] = s;
    tail_[b] = s;
    const std::int64_t cnt = ++bucket_count_[b];
    stats_.max_bucket = std::max(stats_.max_bucket, cnt);
  }

  void unlink(std::size_t b, std::uint32_t s) {
    Slot& slot = slots_[s];
    if (slot.prev != kNil)
      slots_[slot.prev].next = slot.next;
    else
      head_[b] = slot.next;
    if (slot.next != kNil)
      slots_[slot.next].prev = slot.prev;
    else
      tail_[b] = slot.prev;
    --bucket_count_[b];
  }

  /// Move overflow events that entered the window [now_, now_ + span) into
  /// their buckets.  Overflow refs migrate in (at, seq) order, and any event
  /// still in the heap was scheduled earlier (lower seq) than any event the
  /// caller is about to link, so global FIFO order within each time holds
  /// PROVIDED every in-ring link is preceded by a migration under the
  /// current window: next_slot() migrates before scanning (and re-migrates
  /// after the overflow clock jump), and schedule_at() migrates before
  /// linking in-ring — which also covers now_ advances that happen without
  /// a scan (run_until's horizon jump, next_slot landing on a later bucket).
  void migrate_overflow() {
    const Step limit = now_ + static_cast<Step>(mask_);
    while (!overflow_.empty() && overflow_.top().at <= limit) {
      const OverflowRef ref = overflow_.top();
      overflow_.pop();
      Slot& slot = slots_[ref.slot];
      if (slot.state == SlotState::kOverflowCancelled && slot.seq == ref.seq) {
        free_slot(ref.slot);  // reclaim a cancelled far-future event
        continue;
      }
      if (slot.state != SlotState::kOverflow || slot.seq != ref.seq)
        continue;  // stale reference (should not happen; be safe)
      slot.state = SlotState::kInRing;
      link_back(bucket(slot.at), ref.slot);
    }
  }

  /// Find the slot of the next event with time <= cap, advancing now() to
  /// its time; returns kNil (leaving now() <= cap) when no such event
  /// exists.  The scan touches at most one full ring sweep before jumping
  /// the clock to the overflow heap's minimum; the dense case (engines:
  /// ticks every step) finds its event in the first bucket or two.
  std::uint32_t next_slot(Step cap) {
    if (live_ == 0) return kNil;
    for (;;) {
      migrate_overflow();
      const Step window_end = now_ + static_cast<Step>(mask_);
      for (Step t = now_; t <= window_end; ++t) {
        if (t > cap) return kNil;
        const std::uint32_t s = head_[bucket(t)];
        if (s != kNil) {
          // One time per bucket inside the window, so the head's time is t.
          now_ = t;
          return s;
        }
      }
      // Ring empty: every remaining event is in overflow.  Jump the clock
      // to the earliest one and migrate (live_ > 0 guarantees progress).
      CG_CHECK(!overflow_.empty());
      if (overflow_.top().at > cap) return kNil;
      now_ = overflow_.top().at;
    }
  }

  void fire(std::uint32_t s) {
    Slot& slot = slots_[s];
    unlink(bucket(slot.at), s);
    // Copy the handler out before recycling: the callable may schedule new
    // events, growing (reallocating) the slab or reusing this very slot.
    alignas(alignof(std::max_align_t)) unsigned char buf[kInlineHandlerBytes];
    std::memcpy(buf, slot.handler, sizeof(buf));
    const auto invoke = slot.invoke;
    free_slot(s);
    --live_;
    ++stats_.fired;
    invoke(buf);
  }

  std::size_t mask_ = 0;
  std::vector<std::uint32_t> head_;          // bucket list heads
  std::vector<std::uint32_t> tail_;          // bucket list tails
  std::vector<std::int64_t> bucket_count_;   // occupancy (stats watermark)
  std::vector<Slot> slots_;                  // slab; grows, never shrinks
  std::uint32_t free_head_ = kNil;           // recycled-slot list
  std::priority_queue<OverflowRef, std::vector<OverflowRef>,
                      std::greater<>>
      overflow_;                             // far-future events (rare)
  std::int64_t live_ = 0;
  std::uint64_t seq_ = 0;
  Step now_ = 0;
  Stats stats_{};
};

}  // namespace cg

// Generic discrete-event kernel.
//
// The stepped engine (engine.hpp) is the fast path for the paper's
// synchronous LogP model; this binary-heap kernel underlies components
// with irregular timing: the threaded runtime's virtual-time test mode and
// any future g>0 / heterogeneous-latency extensions.  Events scheduled for
// the same time fire in insertion order (stable), which keeps runs
// deterministic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace cg {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedule `fn` at absolute time `at` (must be >= now()).
  /// Returns an id usable with cancel().
  std::uint64_t schedule_at(Step at, Handler fn) {
    CG_CHECK(at >= now_);
    const std::uint64_t id = next_id_++;
    heap_.push(Entry{at, id, std::move(fn)});
    scheduled_.insert(id);
    return id;
  }

  /// Schedule `fn` `delay` ticks from now.
  std::uint64_t schedule_in(Step delay, Handler fn) {
    CG_CHECK(delay >= 0);
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a scheduled event; returns false if it already fired or was
  /// cancelled before (the heap entry becomes a tombstone).
  bool cancel(std::uint64_t id) { return scheduled_.erase(id) > 0; }

  Step now() const { return now_; }
  bool empty() const { return scheduled_.empty(); }
  std::size_t pending() const { return scheduled_.size(); }

  /// Fire the next event; returns false if none remain.
  bool run_one() {
    while (!heap_.empty()) {
      Entry e = heap_.top();
      heap_.pop();
      if (scheduled_.erase(e.id) == 0) continue;  // tombstone (cancelled)
      CG_CHECK(e.at >= now_);
      now_ = e.at;
      e.fn();
      return true;
    }
    return false;
  }

  /// Run until the queue is empty or `max_events` fired. Returns events fired.
  std::size_t run(std::size_t max_events = SIZE_MAX) {
    std::size_t fired = 0;
    while (fired < max_events && run_one()) ++fired;
    return fired;
  }

  /// Fire all events with time <= horizon. Returns events fired.
  /// Advances now() to horizon even if the queue drains earlier.
  std::size_t run_until(Step horizon) {
    std::size_t fired = 0;
    for (;;) {
      // Skip tombstones to see the true next event time.
      while (!heap_.empty() && scheduled_.count(heap_.top().id) == 0) heap_.pop();
      if (heap_.empty() || heap_.top().at > horizon) break;
      if (run_one()) ++fired;
    }
    now_ = std::max(now_, horizon);
    return fired;
  }

 private:
  struct Entry {
    Step at;
    std::uint64_t id;
    Handler fn;
    bool operator>(const Entry& o) const {
      return at != o.at ? at > o.at : id > o.id;  // stable: FIFO within a time
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<std::uint64_t> scheduled_;
  std::uint64_t next_id_ = 0;
  Step now_ = 0;
};

}  // namespace cg

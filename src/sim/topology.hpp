// Deterministic per-link latency models (RunConfig::link_extra).
//
// The paper assumes a flat network (any-to-any latency L).  Real machines
// are hierarchical: rack-local hops are cheaper than cross-rack hops.
// These helpers build link_extra functions for such studies; the
// interesting observation (bench/ext_hierarchical) is that with
// rack-contiguous node ids the correction phase of corrected gossip is
// ring-local and therefore almost entirely intra-rack, while BIG's
// power-of-two offsets and the gossip phase's uniform targets pay the
// cross-rack penalty on most messages.
#pragma once

#include <functional>

#include "common/check.hpp"
#include "common/types.hpp"

namespace cg {

/// Two-level hierarchy: nodes i and j in the same rack (i / rack_size ==
/// j / rack_size) communicate with no extra delay; cross-rack messages pay
/// `inter_extra` additional steps.
inline std::function<Step(NodeId, NodeId)> two_level_topology(
    NodeId rack_size, Step inter_extra) {
  CG_CHECK(rack_size >= 1);
  CG_CHECK(inter_extra >= 0);
  return [rack_size, inter_extra](NodeId from, NodeId to) -> Step {
    return (from / rack_size == to / rack_size) ? 0 : inter_extra;
  };
}

/// Fraction of a protocol's messages that crossed racks, given a trace of
/// (from, to) pairs - used by tests and the hierarchical bench.
struct CrossRackCounter {
  NodeId rack_size;
  std::int64_t local = 0;
  std::int64_t cross = 0;

  void count(NodeId from, NodeId to) {
    if (from / rack_size == to / rack_size)
      ++local;
    else
      ++cross;
  }
  double cross_fraction() const {
    const auto total = local + cross;
    return total == 0 ? 0.0
                      : static_cast<double>(cross) / static_cast<double>(total);
  }
};

}  // namespace cg

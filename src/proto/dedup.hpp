// Multi-broadcast bookkeeping per the paper's Claim 1: in a system issuing
// many broadcasts, integrity (I) and no-duplicates (II) are obtained by
// counting broadcasts per root - "the initiating root node can increment
// this counter before calling bcast() and each message can carry this
// counter.  Each node can keep a received-bcast counter, c[i], per
// root-node i, then discard all messages with root-node i and a counter
// smaller or equal than c[i].  When new nodes join, they should run a
// special protocol to reset their c[i] for all active nodes."
//
// BroadcastFilter is that per-node state machine; BroadcastStamp is what a
// root attaches to each outgoing broadcast.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace cg {

/// (root, sequence) identity of one broadcast instance.
struct BroadcastStamp {
  NodeId root = kNoNode;
  std::uint64_t sequence = 0;  ///< per-root counter, starts at 1

  friend bool operator==(const BroadcastStamp&, const BroadcastStamp&) =
      default;
};

/// Root-side counter: stamps successive bcast() calls.
class BroadcastCounter {
 public:
  explicit BroadcastCounter(NodeId self) : self_(self) {}

  /// Stamp for the next broadcast this root initiates.
  BroadcastStamp next() { return {self_, ++count_}; }

  std::uint64_t issued() const { return count_; }

 private:
  NodeId self_;
  std::uint64_t count_ = 0;
};

/// Receiver-side filter: accepts each (root, sequence) exactly once and
/// discards replays and stragglers of delivered broadcasts.
class BroadcastFilter {
 public:
  explicit BroadcastFilter(NodeId n)
      : delivered_(static_cast<std::size_t>(n), 0) {
    CG_CHECK(n >= 1);
  }

  /// True exactly once per broadcast: the first time this stamp (or a
  /// NEWER one from the same root, which supersedes the older) is seen.
  /// Per Claim 1, anything with sequence <= c[root] is discarded.
  bool accept(const BroadcastStamp& stamp) {
    CG_CHECK(stamp.root >= 0 &&
             stamp.root < static_cast<NodeId>(delivered_.size()));
    auto& c = delivered_[static_cast<std::size_t>(stamp.root)];
    if (stamp.sequence <= c) return false;
    c = stamp.sequence;
    return true;
  }

  /// Would `accept` return true, without consuming it?
  bool fresh(const BroadcastStamp& stamp) const {
    return stamp.sequence >
           delivered_[static_cast<std::size_t>(stamp.root)];
  }

  /// Highest sequence delivered from `root`.
  std::uint64_t last_from(NodeId root) const {
    return delivered_[static_cast<std::size_t>(root)];
  }

  /// The paper's join protocol: a (re)joining node resets its counters to
  /// the values reported by active nodes, so it never re-delivers old
  /// broadcasts it may observe in flight.
  void reset_from(const BroadcastFilter& active_peer) {
    delivered_ = active_peer.delivered_;
  }

  /// Explicit counter injection (e.g., from a state snapshot).
  void reset_counter(NodeId root, std::uint64_t sequence) {
    delivered_[static_cast<std::size_t>(root)] = sequence;
  }

 private:
  std::vector<std::uint64_t> delivered_;
};

}  // namespace cg

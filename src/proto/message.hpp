// Wire format shared by all broadcast protocols.
//
// A single fixed-size POD covers every algorithm in the paper:
//   * GOS/OCG/CCG/FCG gossip messages carry the virtual time counter;
//   * OCG correction messages carry the stop time C;
//   * CCG/FCG ring-correction messages are tagged forward/backward;
//   * FCG messages additionally carry up to f+1 known g-node ids
//     (the paper's k-arrays); f <= kMaxKnownF is enforced at setup;
//   * SOS messages implement FCG's pathological-case backstop;
//   * tree messages serve the BIG/BFB baselines.
#pragma once

#include <array>
#include <span>
#include <string_view>

#include "common/check.hpp"
#include "common/ring.hpp"
#include "common/types.hpp"

namespace cg {

enum class Tag : std::uint8_t {
  kGossip = 0,  ///< random push-gossip message (carries virtual time)
  kOcgCorr,     ///< OCG ring correction (receiver never forwards)
  kFwd,         ///< CCG/FCG forward correction (travels towards i+1, i+2, ...)
  kBwd,         ///< CCG/FCG backward correction (travels towards i-1, i-2, ...)
  kSos,         ///< FCG SOS flood
  kTree,        ///< BIG / BFB dissemination message
  kNack,        ///< BFB failure notification towards the root
  kAck,         ///< BFB subtree-complete acknowledgment / barrier gather
  kPullReq,     ///< push-pull gossip: payload request from an uncolored node
  kSbrbSubEcho,  ///< SBRB Sieve: subscribe to the receiver's Echo stream
  kSbrbSubReady, ///< SBRB Contagion: subscribe to the receiver's Ready stream
  kSbrbEcho,     ///< SBRB Sieve: echo of the sender's candidate payload
  kSbrbReady,    ///< SBRB Contagion: sender is ready to deliver `payload`
};

/// Number of Tag values (for per-tag counter arrays).
inline constexpr int kTagCount = 13;

constexpr const char* tag_name(Tag t) {
  switch (t) {
    case Tag::kGossip: return "gossip";
    case Tag::kOcgCorr: return "ocg-corr";
    case Tag::kFwd: return "fwd";
    case Tag::kBwd: return "bwd";
    case Tag::kSos: return "sos";
    case Tag::kTree: return "tree";
    case Tag::kNack: return "nack";
    case Tag::kAck: return "ack";
    case Tag::kPullReq: return "pull-req";
    case Tag::kSbrbSubEcho: return "sbrb-sub-echo";
    case Tag::kSbrbSubReady: return "sbrb-sub-ready";
    case Tag::kSbrbEcho: return "sbrb-echo";
    case Tag::kSbrbReady: return "sbrb-ready";
  }
  return "?";
}

/// Inverse of tag_name; returns false for unknown names.
constexpr bool tag_from_name(std::string_view name, Tag& out) {
  for (int t = 0; t < kTagCount; ++t) {
    const auto tag = static_cast<Tag>(t);
    if (name == tag_name(tag)) {
      out = tag;
      return true;
    }
  }
  return false;
}

/// True for CCG/FCG ring-correction tags.
constexpr bool is_ring_corr(Tag t) { return t == Tag::kFwd || t == Tag::kBwd; }

/// Direction a ring-correction message travels in.
constexpr Dir tag_dir(Tag t) { return t == Tag::kFwd ? Dir::kFwd : Dir::kBwd; }
constexpr Tag dir_tag(Dir d) { return d == Dir::kFwd ? Tag::kFwd : Tag::kBwd; }

/// Maximum supported FCG resilience parameter f (k-arrays hold f+1 ids).
inline constexpr int kMaxKnownF = 7;

struct Message {
  Tag tag = Tag::kGossip;
  std::uint8_t known_count = 0;
  /// Set by the reliable-delivery sublayer on retransmitted copies; counted
  /// as msgs_retrans.  Not part of the canonical rx order - a retransmit is
  /// content-identical to (interchangeable with) its original.
  std::uint8_t retrans = 0;
  NodeId src = kNoNode;
  /// Payload digest the message carries (0 = none).  Engines stamp the
  /// sender's held digest at send time when the protocol leaves it 0, so
  /// the crash-model protocols need no changes; SBRB reads and sets it
  /// explicitly.  kTruePayload/kAltPayload are validly signed; a digest
  /// with kForgedBit set fails signature verification (see
  /// sim/fault/byzantine.hpp).  Not part of the canonical rx order except
  /// as a final tiebreak (identical in every non-Byzantine run).
  std::uint32_t payload = 0;
  /// Virtual time counter (gossip) or generation/epoch (BFB restarts).
  Step time = 0;
  /// FCG: g-nodes known to the sender in the direction opposite to travel
  /// (a forward message lists g-nodes *behind* its sender, so receivers
  /// extend their backward knowledge; symmetrically for backward messages).
  std::array<NodeId, kMaxKnownF + 1> known{};

  std::span<const NodeId> known_nodes() const {
    return {known.data(), known_count};
  }

  void set_known(std::span<const NodeId> ids) {
    CG_CHECK(ids.size() <= known.size());
    known_count = static_cast<std::uint8_t>(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) known[i] = ids[i];
  }
};

}  // namespace cg

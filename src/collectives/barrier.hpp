// Corrected-gossip barrier: the BSP-style synchronization primitive the
// paper's Section II motivates, built from two phases:
//
//   1. GATHER: arrival notifications aggregate up a binomial tree rooted
//      at the coordinator (ranks relative to it) - each node acks its
//      parent once it has arrived and every child subtree has acked.
//   2. RELEASE: the coordinator runs a full corrected-gossip broadcast
//      (gossip + checked ring correction via CcgCore): release messages
//      carry the release step so receivers can align their phase windows.
//
// The barrier property - NO node releases before EVERY node arrived - is
// structural: the release broadcast starts only after the gather completed.
// Release latency inherits corrected gossip's guarantees: all nodes
// released deterministically, ~T_rel + 2L + 2*K_bar*O after the last
// arrival plus one tree depth.
#pragma once

#include <optional>
#include <vector>

#include "baselines/bfb.hpp"  // binomial tree helpers
#include "common/check.hpp"
#include "common/types.hpp"
#include "session/multibcast.hpp"

namespace cg {

class BarrierNode {
 public:
  struct Params {
    NodeId coordinator = 0;
    Step T_release = 0;  ///< gossip length of the release broadcast
    /// Arrival step per node (models compute skew); nullptr = everyone at 0.
    std::shared_ptr<const std::vector<Step>> arrivals;
  };

  BarrierNode(const Params& p, NodeId self, NodeId n)
      : p_(p), self_(self), n_(n),
        rank_(static_cast<NodeId>(
            (static_cast<std::int64_t>(self) - p.coordinator + n) % n)),
        children_(bfb_children(rank_, n)),
        release_core_(BcastPlan{p.coordinator, kNever / 4, p.T_release},
                      self, n) {
    CG_CHECK(p.T_release >= 0);
  }

  template <class Ctx>
  void on_start(Ctx& ctx) {
    arrival_ = p_.arrivals
                   ? (*p_.arrivals)[static_cast<std::size_t>(self_)]
                   : 0;
    ctx.activate();  // every participant acts from the start
    if (n_ == 1) {
      released_at_ = 0;
      ctx.mark_colored();
      ctx.deliver();
      ctx.complete();
    }
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message& m) {
    if (m.tag == Tag::kAck) {
      ++acks_;
      return;
    }
    // Release traffic: messages carry the release step so this node can
    // align its gossip/correction windows with the coordinator's clock.
    if (!armed_) arm(m.time);
    release_core_.on_receive(ctx.now(), m);
    maybe_release(ctx);
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    const Step now = ctx.now();

    // --- gather phase ---
    if (!acked_ && now >= arrival_ &&
        acks_ >= static_cast<int>(children_.size())) {
      acked_ = true;
      if (rank_ == 0) {
        // Coordinator: everyone arrived; start the release broadcast one
        // step from now.
        arm(now + 1);
      } else {
        Message m;
        m.tag = Tag::kAck;
        ctx.send(member(bfb_parent(rank_)), m);
        return;
      }
    }

    // --- release phase ---
    if (armed_) {
      if (auto intent =
              release_core_.poll_send(now, ctx.logp(), ctx.rng())) {
        Message m;
        m.tag = intent->tag;
        m.time = release_start_;
        ctx.send(intent->to, m);
      }
      maybe_release(ctx);
      if (release_core_.finished() && released_at_ != kNever) ctx.complete();
    }
  }

  /// Step at which this node observed the release (kNever if not yet).
  Step released_at() const { return released_at_; }
  Step arrival() const { return arrival_; }

 private:
  NodeId member(NodeId rank) const {
    return static_cast<NodeId>(
        (static_cast<std::int64_t>(rank) + p_.coordinator) % n_);
  }

  void arm(Step start) {
    if (armed_) return;
    armed_ = true;
    release_start_ = start;
    release_core_ =
        CcgCore(BcastPlan{p_.coordinator, start, p_.T_release}, self_, n_);
  }

  template <class Ctx>
  void maybe_release(Ctx& ctx) {
    if (released_at_ == kNever && release_core_.colored()) {
      released_at_ = ctx.now();
      ctx.mark_colored();
      ctx.deliver();
    }
    if (released_at_ != kNever && release_core_.finished()) ctx.complete();
  }

  Params p_;
  NodeId self_;
  NodeId n_;
  NodeId rank_;
  std::vector<NodeId> children_;
  Step arrival_ = 0;
  int acks_ = 0;
  bool acked_ = false;
  bool armed_ = false;
  Step release_start_ = 0;
  CcgCore release_core_;
  Step released_at_ = kNever;
};

}  // namespace cg

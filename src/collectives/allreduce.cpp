#include "collectives/allreduce.hpp"

#include <unordered_set>

#include "common/check.hpp"

namespace cg {

int allreduce_sweeps(NodeId n, Step T, const LogP& logp, double eps) {
  CG_CHECK(n >= 1);
  // Union bound over the n contribution sources; each source's miss set
  // behaves like a broadcast coloring gap (Eq. 2).
  const double per_value_eps = eps / static_cast<double>(n);
  return k_bar_for(n, n, T, logp, per_value_eps) + 1;
}

double AllreduceResult::accuracy() const {
  std::size_t active_count = 0, correct = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!active[i]) continue;
    ++active_count;
    if (values[i] == expected) ++correct;
  }
  return active_count == 0 ? 1.0
                           : static_cast<double>(correct) /
                                 static_cast<double>(active_count);
}

AllreduceResult run_allreduce(const AllreduceNode::Params& params,
                              const RunConfig& cfg) {
  Engine<AllreduceNode> eng(cfg, params);
  const RunMetrics m = eng.run();

  AllreduceResult res;
  res.values.resize(static_cast<std::size_t>(cfg.n));
  res.active.assign(static_cast<std::size_t>(cfg.n), true);
  std::unordered_set<NodeId> dead(cfg.failures.pre_failed.begin(),
                                  cfg.failures.pre_failed.end());
  for (const auto& of : cfg.failures.online) dead.insert(of.node);

  res.expected = reduce_identity(params.op);
  for (NodeId i = 0; i < cfg.n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    res.values[idx] = eng.node(i).value();
    if (dead.count(i) != 0) res.active[idx] = false;
  }
  // The expected aggregate covers every node that was alive at the start:
  // a node that crashes mid-run may already have spread its contribution,
  // so the reduction is over initial contributions of non-pre-failed
  // nodes; online crashers' values MAY be included - for idempotent ops
  // both results are acceptable, and we report the all-alive reduction.
  for (NodeId i = 0; i < cfg.n; ++i) {
    if (std::find(cfg.failures.pre_failed.begin(),
                  cfg.failures.pre_failed.end(),
                  i) != cfg.failures.pre_failed.end())
      continue;
    const std::int64_t contrib = params.contribution
                                     ? params.contribution(i)
                                     : static_cast<std::int64_t>(i);
    res.expected = reduce_apply(params.op, res.expected, contrib);
  }
  res.t_complete = m.t_complete == kNever ? m.t_end : m.t_complete;
  res.messages = m.msgs_total;

  res.all_correct = true;
  for (NodeId i = 0; i < cfg.n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (res.active[idx] && res.values[idx] != res.expected) {
      res.all_correct = false;
      break;
    }
  }
  return res;
}

}  // namespace cg

// Corrected-gossip all-reduce: the paper's conclusion sketches extending
// corrected gossip to "other communication operations such as MPI's
// collective communications"; this module realizes that for idempotent
// reductions (max / min / bitwise-or), the class that tolerates the
// at-least-once delivery of gossip.
//
// Algorithm (mirrors OCG's two phases):
//   * Every node starts "colored" with its own contribution.  For T steps
//     each node pushes its current partial aggregate to a uniformly random
//     peer; receivers merge.  After the drain window, each node whp holds
//     the global aggregate - but, exactly as with broadcast coloring, a
//     value's reach can have gaps on the ring.
//   * Deterministic correction: every node sweeps the ring alternately
//     (+off/-off, off = 1..C) sending its aggregate; receivers merge.
//     Because later sweep messages carry everything merged so far, a
//     value's reach compounds transitively, so a sweep of C offsets closes
//     any per-value gap of length <= C from both sides simultaneously.
//
// Tuning: a fixed value v spreads exactly like a broadcast color rooted at
// v's owner, so the Eq. 2 chain machinery applies per value; a union bound
// over the n sources gives C = K_bar(eps/n) + margin.  allreduce_sweeps()
// implements that rule.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/tuning.hpp"
#include "sim/engine.hpp"
#include "common/ring.hpp"
#include "common/types.hpp"
#include "gossip/timing.hpp"
#include "proto/message.hpp"

namespace cg {

/// Idempotent reduction operators (safe under duplicated delivery).
enum class ReduceOp : std::uint8_t { kMax, kMin, kOr };

constexpr std::int64_t reduce_identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::kMax: return INT64_MIN;
    case ReduceOp::kMin: return INT64_MAX;
    case ReduceOp::kOr: return 0;
  }
  return 0;
}

constexpr std::int64_t reduce_apply(ReduceOp op, std::int64_t a,
                                    std::int64_t b) {
  switch (op) {
    case ReduceOp::kMax: return a > b ? a : b;
    case ReduceOp::kMin: return a < b ? a : b;
    case ReduceOp::kOr: return a | b;
  }
  return a;
}

/// Correction sweep length for an eps-reliable all-reduce on N nodes:
/// per-value miss chains are broadcast chains, union-bounded over N
/// sources (see header comment).
int allreduce_sweeps(NodeId n, Step T, const LogP& logp, double eps);

class AllreduceNode {
 public:
  struct Params {
    Step T = 0;          ///< gossip (aggregation) steps
    Step corr_sends = 0; ///< ring sweep length C
    ReduceOp op = ReduceOp::kMax;
    /// Per-node contribution; by default the node id (handy for tests:
    /// the global max is then n-1).
    std::function<std::int64_t(NodeId)> contribution;
  };

  AllreduceNode(const Params& p, NodeId self, NodeId n)
      : p_(p), self_(self), ring_(n) {
    value_ = p_.contribution ? p_.contribution(self)
                             : static_cast<std::int64_t>(self);
  }

  template <class Ctx>
  void on_start(Ctx& ctx) {
    // Everyone participates from step 0 (all-reduce has no single root).
    ctx.activate();
    ctx.mark_colored();
    if (ring_.size() == 1) {
      ctx.deliver();
      ctx.complete();
    }
  }

  template <class Ctx>
  void on_receive(Ctx&, const Message& m) {
    value_ = reduce_apply(p_.op, value_, m.time);
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    const Step now = ctx.now();
    if (now < p_.T) {
      Message m;
      m.tag = Tag::kGossip;
      m.time = value_;
      ctx.send(ctx.rng().other_node(self_, ring_.size()), m);
      return;
    }
    const Step start = corr_start(p_.T, ctx.logp());
    if (now < start) return;  // drain window
    const Step end = start + 2 * p_.corr_sends;
    if (now >= end + ctx.logp().delivery_delay()) {
      ctx.deliver();
      ctx.complete();
      return;
    }
    if (now < end) {
      const Step k = now - start;
      const auto off = static_cast<std::int64_t>(k / 2 + 1);
      const Dir dir = (k % 2 == 0) ? Dir::kFwd : Dir::kBwd;
      if (off < ring_.size()) {
        const NodeId target = ring_.step(self_, dir, off);
        if (target != self_) {
          Message m;
          m.tag = dir_tag(dir);
          m.time = value_;
          ctx.send(target, m);
        }
      }
    }
  }

  std::int64_t value() const { return value_; }

 private:
  Params p_;
  NodeId self_;
  Ring ring_;
  std::int64_t value_ = 0;
};

/// Result of a simulated all-reduce.
struct AllreduceResult {
  std::vector<std::int64_t> values;  ///< final aggregate per node (active)
  std::vector<bool> active;
  std::int64_t expected = 0;  ///< reduction over ACTIVE nodes' inputs
  Step t_complete = 0;
  std::int64_t messages = 0;
  bool all_correct = false;   ///< every active node holds `expected`

  /// Fraction of active nodes with the exact global aggregate.
  double accuracy() const;
};

/// Run one corrected-gossip all-reduce on the stepped simulator.
AllreduceResult run_allreduce(const AllreduceNode::Params& params,
                              const RunConfig& cfg);

}  // namespace cg

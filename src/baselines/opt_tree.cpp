#include "baselines/opt_tree.hpp"

namespace cg {

std::int64_t opt_colored_at(Step t, const LogP& logp) {
  const Step d = logp.delivery_delay() + 1;  // emit->ready-to-emit lag
  if (t < 0) return 0;
  std::vector<std::int64_t> f(static_cast<std::size_t>(t) + 1, 1);
  for (Step s = 1; s <= t; ++s) {
    const std::int64_t prev = f[static_cast<std::size_t>(s - 1)];
    const std::int64_t born =
        s >= d ? f[static_cast<std::size_t>(s - d)] : 0;
    // Cap to avoid overflow on large t (counts beyond ~1e18 are meaningless).
    f[static_cast<std::size_t>(s)] =
        prev > (INT64_MAX >> 1) ? prev : prev + born;
  }
  return f[static_cast<std::size_t>(t)];
}

Step opt_latency_steps(NodeId n, const LogP& logp) {
  const Step d = logp.delivery_delay() + 1;
  std::int64_t prev = 1;
  std::vector<std::int64_t> f{1};
  Step t = 0;
  while (prev < n) {
    ++t;
    const std::int64_t born =
        t >= d ? f[static_cast<std::size_t>(t - d)] : 0;
    prev = prev + born;
    f.push_back(prev);
  }
  return t;
}

std::shared_ptr<const OptSchedule> OptSchedule::build(NodeId n,
                                                      const LogP& logp) {
  auto sched = std::make_shared<OptSchedule>();
  sched->sends.resize(static_cast<std::size_t>(n));
  sched->colored_at.assign(static_cast<std::size_t>(n), kNever);
  sched->colored_at[0] = 0;
  if (n == 1) return sched;

  const Step delay = logp.delivery_delay();
  // Greedy: every step, every node colored before this step emits to the
  // next unassigned rank; arrivals color ranks `delay` steps later.  This
  // attains f(t) = f(t-1) + f(t-(delay+1)).
  NodeId next_rank = 1;
  std::vector<NodeId> colored{0};  // ranks in coloring order
  std::size_t can_send = 1;        // prefix of `colored` able to emit now
  for (Step s = 1; next_rank < n; ++s) {
    // Nodes colored at step <= s-1 may emit at s.
    while (can_send < colored.size() &&
           sched->colored_at[static_cast<std::size_t>(
               colored[can_send])] <= s - 1)
      ++can_send;
    for (std::size_t i = 0; i < can_send && next_rank < n; ++i) {
      const NodeId sender = colored[i];
      sched->sends[static_cast<std::size_t>(sender)].push_back(
          {s, next_rank});
      sched->colored_at[static_cast<std::size_t>(next_rank)] = s + delay;
      colored.push_back(next_rank);
      ++next_rank;
    }
  }
  return sched;
}

}  // namespace cg

// BFB: Buntinas' fault-tolerant consistent broadcast (paper Section IV-B2,
// [8]) - the restart-tree baseline.
//
// The root disseminates over a binomial tree of the nodes it believes
// alive; leaves acknowledge, internal nodes aggregate acks upward; when a
// failure detector reports a dead child, a NACK travels straight to the
// root, which restarts the whole broadcast over a modified tree (a higher
// epoch).  An epoch only completes ("delivery acknowledged back to the
// root") if no failure was detected inside it.  The paper evaluates BFB
// with an analytic model (latency 2(2O+L)log2 N plus one tree latency per
// online restart, work N*(1+restarts)); this simulation cross-checks it.
//
// Modeling notes (see DESIGN.md):
//  * the failure detector is an oracle over the run's FailureSchedule
//    (Buntinas assumes a detector; ours is perfect with a one-round-trip
//    detection delay);
//  * following the paper's Table 7 assumptions, pre-failed nodes are
//    already excluded from the epoch-0 tree (only ONLINE failures force
//    restarts);
//  * tree membership per epoch is shared through BfbShared, standing in
//    for the child lists Buntinas embeds in each message;
//  * non-root nodes quiesce (complete) after a quiet period without
//    traffic; BFB latency is the ROOT's completion step.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "proto/message.hpp"
#include "sim/failure.hpp"

namespace cg {

/// Run-wide shared state (one instance per run, shared via Params).
/// NOT thread-safe: `excluded` and `epoch_members` mutate during the run,
/// so BFB must execute on the single-threaded engines (it models the
/// child lists Buntinas serializes into messages; see the header note).
struct BfbShared {
  /// Members (tree order, root first) per epoch.
  std::vector<std::vector<NodeId>> epoch_members;
  /// Nodes known to be dead (root's view; updated on detection).
  std::unordered_set<NodeId> excluded;
  /// Failure oracle: node -> crash step (pre-failed = step -1).
  std::vector<Step> crash_at;
  NodeId root = 0;
  NodeId n = 0;

  static std::shared_ptr<BfbShared> make(NodeId n, NodeId root,
                                         const FailureSchedule& fs) {
    auto sh = std::make_shared<BfbShared>();
    sh->root = root;
    sh->n = n;
    sh->crash_at.assign(static_cast<std::size_t>(n), kNever);
    for (const NodeId i : fs.pre_failed) {
      sh->crash_at[static_cast<std::size_t>(i)] = -1;
      sh->excluded.insert(i);  // paper: pre-failures are known up front
    }
    for (const auto& of : fs.online)
      sh->crash_at[static_cast<std::size_t>(of.node)] = of.at_step;
    sh->push_epoch();
    return sh;
  }

  bool alive_at(NodeId node, Step t) const {
    return crash_at[static_cast<std::size_t>(node)] > t;
  }

  /// Build the member list for a new epoch; returns its index.
  int push_epoch() {
    std::vector<NodeId> members;
    members.push_back(root);
    for (NodeId i = 0; i < n; ++i)
      if (i != root && excluded.count(i) == 0) members.push_back(i);
    epoch_members.push_back(std::move(members));
    return static_cast<int>(epoch_members.size()) - 1;
  }
};

/// Binomial-tree children in rank space 0..m-1 (rank 0 = root):
/// children(r) = { r + 2^k : 2^k > r, r + 2^k < m }.
inline std::vector<NodeId> bfb_children(NodeId rank, NodeId m) {
  std::vector<NodeId> ch;
  for (NodeId p = 1; p < m; p <<= 1)
    if (p > rank && rank + p < m) ch.push_back(rank + p);
  return ch;
}

inline NodeId bfb_parent(NodeId rank) {
  CG_CHECK(rank > 0);
  NodeId p = 1;
  while (p * 2 <= rank) p <<= 1;  // highest power of two <= rank
  return rank - p;
}

class BfbNode {
 public:
  struct Params {
    std::shared_ptr<BfbShared> shared;
    Step quiet_period = 64;  ///< silence before a non-root quiesces
  };

  BfbNode(const Params& p, NodeId self, NodeId n)
      : p_(p), self_(self), n_(n) {
    CG_CHECK(p_.shared != nullptr);
  }

  template <class Ctx>
  void on_start(Ctx& ctx) {
    if (ctx.is_root()) {
      colored_ = true;
      ctx.mark_colored();
      ctx.deliver();
      enter_epoch(0, 0, ctx.now());
      if (member_count() == 1) ctx.complete();
    }
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message& m) {
    last_rx_ = ctx.now();
    const int ep = static_cast<int>(m.time);
    switch (m.tag) {
      case Tag::kTree: {
        if (!colored_) {
          colored_ = true;
          ctx.mark_colored();
          ctx.deliver();
        }
        if (ep > epoch_) enter_epoch(ep, m.known_nodes()[0], ctx.now());
        break;
      }
      case Tag::kAck: {
        if (ep != epoch_) break;  // stale epoch
        mark_acked(m.src);
        break;
      }
      case Tag::kNack: {
        CG_CHECK(ctx.is_root());
        restart_excluding(m.known_nodes()[0], ctx.now());
        break;
      }
      default:
        break;
    }
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    const Step now = ctx.now();
    if (epoch_ < 0) return;  // not part of any tree yet

    detect_rtt_ = ctx.logp().delivery_delay();
    poll_detector(now);

    // A queued NACK towards the root takes priority.
    if (!nack_queue_.empty()) {
      const NodeId dead = nack_queue_.front();
      nack_queue_.erase(nack_queue_.begin());
      if (ctx.is_root()) {
        restart_excluding(dead, now);
      } else {
        Message m;
        m.tag = Tag::kNack;
        m.time = epoch_;
        m.set_known(std::span<const NodeId>(&dead, 1));
        ctx.send(ctx.root(), m);
      }
      return;
    }

    // Forward the payload to the next child.
    if (next_child_ < children_.size()) {
      const NodeId child_rank = children_[next_child_];
      const NodeId child = member(child_rank);
      ++next_child_;
      Message m;
      m.tag = Tag::kTree;
      m.time = epoch_;
      m.set_known(std::span<const NodeId>(&child_rank, 1));
      ctx.send(child, m);
      sent_at_[next_child_ - 1] = now;
      return;
    }

    maybe_finish(ctx);

    if (!ctx.is_root() && acked_ && now - last_rx_ > p_.quiet_period)
      ctx.complete();
  }

  int epoch() const { return epoch_; }
  bool colored() const { return colored_; }

 private:
  NodeId member_count() const {
    return static_cast<NodeId>(
        p_.shared->epoch_members[static_cast<std::size_t>(epoch_)].size());
  }
  NodeId member(NodeId rank) const {
    return p_.shared
        ->epoch_members[static_cast<std::size_t>(epoch_)]
                       [static_cast<std::size_t>(rank)];
  }

  void enter_epoch(int ep, NodeId my_rank, Step now) {
    epoch_ = ep;
    rank_ = my_rank;
    children_ = bfb_children(rank_, member_count());
    child_acked_.assign(children_.size(), false);
    child_nacked_.assign(children_.size(), false);
    sent_at_.assign(children_.size(), kNever);
    next_child_ = 0;
    acked_ = false;
    failure_seen_ = false;
    nack_queue_.clear();
    last_rx_ = now;
  }

  void restart_excluding(NodeId dead, Step now) {
    const bool news = p_.shared->excluded.insert(dead).second;
    if (!news && !epoch_has_member(dead))
      return;  // current epoch already excludes it; duplicate NACK
    const int next = p_.shared->push_epoch();
    enter_epoch(next, 0, now);
  }

  bool epoch_has_member(NodeId node) const {
    const auto& members =
        p_.shared->epoch_members[static_cast<std::size_t>(epoch_)];
    for (const NodeId m : members)
      if (m == node) return true;
    return false;
  }

  void mark_acked(NodeId from) {
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (member(children_[i]) == from) {
        child_acked_[i] = true;
        return;
      }
    }
  }

  /// Perfect failure detector with one-round-trip latency: a child we are
  /// awaiting that died is detected 2*(L/O+1) steps after its crash (or
  /// after our send, whichever is later).
  void poll_detector(Step now) {
    for (std::size_t i = 0; i < children_.size() && i < next_child_; ++i) {
      if (child_acked_[i] || child_nacked_[i]) continue;
      const NodeId child = member(children_[i]);
      const Step crash = p_.shared->crash_at[static_cast<std::size_t>(child)];
      if (crash == kNever) continue;
      const Step detect_at = std::max(crash, sent_at_[i]) + 2 * detect_rtt_;
      if (now >= detect_at) {
        child_nacked_[i] = true;
        failure_seen_ = true;
        nack_queue_.push_back(child);
      }
    }
  }

  template <class Ctx>
  void maybe_finish(Ctx& ctx) {
    if (acked_ || failure_seen_) return;  // failed epochs never complete
    for (std::size_t i = 0; i < children_.size(); ++i)
      if (!child_acked_[i]) return;
    acked_ = true;
    if (ctx.is_root()) {
      ctx.complete();  // delivery acknowledged back to the root
    } else {
      Message m;
      m.tag = Tag::kAck;
      m.time = epoch_;
      ctx.send(member(bfb_parent(rank_)), m);
    }
  }

  Params p_;
  NodeId self_;
  NodeId n_;
  bool colored_ = false;
  int epoch_ = -1;
  NodeId rank_ = 0;
  std::vector<NodeId> children_;  // ranks in the current epoch
  std::vector<bool> child_acked_;
  std::vector<bool> child_nacked_;
  std::vector<Step> sent_at_;
  std::size_t next_child_ = 0;
  bool acked_ = false;
  bool failure_seen_ = false;
  Step last_rx_ = 0;
  Step detect_rtt_ = 2;
  std::vector<NodeId> nack_queue_;
};

}  // namespace cg

// OPT: the theoretically optimal non-fault-tolerant broadcast under the
// step model (the "opt" lower-bound line in Figures 1 and 7a).
//
// In the optimal schedule every colored node emits to a fresh node each
// step, so the colored count obeys f(t) = f(t-1) + f(t - (L/O+2)) with
// f(t) = 1 for 0 <= t < L/O+2.  opt_schedule() materializes one concrete
// schedule attaining the bound, executable on the simulator via OptNode.
#pragma once

#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "proto/message.hpp"
#include "sim/logp.hpp"

namespace cg {

/// Colored-node count of the optimal broadcast at step t.
std::int64_t opt_colored_at(Step t, const LogP& logp);

/// Smallest step t with opt_colored_at(t) >= n.
Step opt_latency_steps(NodeId n, const LogP& logp);

/// A concrete optimal schedule: for every node, the list of (emit step,
/// target) pairs it must send.  Node ids are "virtual ranks" relative to
/// the root (rank 0); OptNode adds the root id modulo N.
struct OptSchedule {
  struct Send {
    Step at;
    NodeId target;  // virtual rank
  };
  std::vector<std::vector<Send>> sends;  // indexed by virtual rank
  std::vector<Step> colored_at;          // expected coloring step per rank

  static std::shared_ptr<const OptSchedule> build(NodeId n, const LogP& logp);
};

class OptNode {
 public:
  struct Params {
    std::shared_ptr<const OptSchedule> schedule;
  };

  OptNode(const Params& p, NodeId self, NodeId n)
      : p_(p), self_(self), n_(n) {
    CG_CHECK(p_.schedule != nullptr);
  }

  template <class Ctx>
  void on_start(Ctx& ctx) {
    if (ctx.is_root()) {
      rank_ = 0;
      ctx.mark_colored();
      ctx.deliver();
      if (n_ == 1) ctx.complete();
    }
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message& m) {
    if (m.tag != Tag::kTree || rank_ >= 0) return;
    rank_ = m.known_nodes()[0];
    ctx.mark_colored();
    ctx.deliver();
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    if (rank_ < 0) return;
    const auto& mine = p_.schedule->sends[static_cast<std::size_t>(rank_)];
    if (next_ >= mine.size()) {
      ctx.complete();
      return;
    }
    // Under the exact base model every slot is hit on time; model
    // extensions (receive serialization, jitter) can shift coloring, in
    // which case the schedule degrades gracefully to sending late.
    if (ctx.now() < mine[next_].at) return;
    const NodeId target_rank = mine[next_].target;
    Message m;
    m.tag = Tag::kTree;
    m.set_known(std::span<const NodeId>(&target_rank, 1));
    ctx.send(static_cast<NodeId>(
                 (static_cast<std::int64_t>(ctx.root()) + target_rank) % n_),
             m);
    ++next_;
  }

 private:
  Params p_;
  NodeId self_;
  NodeId n_;
  NodeId rank_ = -1;
  std::size_t next_ = 0;
};

}  // namespace cg

// BIG: binomial-graph dissemination broadcast (paper Section IV-B3,
// Angskun, Bosilca & Dongarra [2]).
//
// Node p is connected to the neighbor set {(p + 2^x) mod N}; every node
// blindly forwards the first received message to ALL its neighbors (one
// per step, LogP overhead O each), which yields log2(N) vertex-disjoint
// paths and tolerance of up to log2(N)-1 failures with static routing.
// Work is always N * |neighbors|; latency is modeled analytically in the
// paper ((2O+L)log2 P + O log2 P) and cross-checked by this simulation.
#pragma once

#include <limits>
#include <vector>

#include "common/types.hpp"
#include "proto/message.hpp"

namespace cg {

/// Neighbor offsets of the binomial graph on n nodes: powers of two
/// 2^0, 2^1, ... below n (offsets that are multiples of n are dropped
/// because they would address the node self).
inline std::vector<NodeId> big_neighbor_offsets(NodeId n) {
  std::vector<NodeId> offs;
  for (std::int64_t p = 1; p < n; p <<= 1) offs.push_back(static_cast<NodeId>(p));
  return offs;
}

/// Send order attaining the binomial-tree latency the paper's BIG model
/// assumes: a node at rank `rel` relative to the root first serves its
/// binomial-tree children (offsets below its least-significant set bit,
/// largest first), then emits the redundant fault-tolerance copies to its
/// remaining neighbors.  The root (rel = 0) has no redundant prefix.
inline std::vector<NodeId> big_send_order(NodeId rel, NodeId n) {
  const std::vector<NodeId> offs = big_neighbor_offsets(n);
  const NodeId lsb =
      rel == 0 ? std::numeric_limits<NodeId>::max() : (rel & -rel);
  std::vector<NodeId> order;
  order.reserve(offs.size());
  for (auto it = offs.rbegin(); it != offs.rend(); ++it)
    if (*it < lsb) order.push_back(*it);  // tree children, largest first
  for (auto it = offs.rbegin(); it != offs.rend(); ++it)
    if (*it >= lsb) order.push_back(*it);  // redundant copies
  return order;
}

class BigNode {
 public:
  struct Params {};

  BigNode(const Params&, NodeId self, NodeId n) : self_(self), n_(n) {}

  template <class Ctx>
  void on_start(Ctx& ctx) {
    if (ctx.is_root()) {
      color(ctx);
      if (n_ == 1) ctx.complete();
    }
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message& m) {
    if (m.tag != Tag::kTree || colored_) return;
    color(ctx);
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    if (!colored_) return;
    if (next_ < order_.size()) {
      Message m;
      m.tag = Tag::kTree;
      ctx.send(static_cast<NodeId>(
                   (static_cast<std::int64_t>(self_) + order_[next_]) % n_),
               m);
      ++next_;
      return;
    }
    ctx.complete();
  }

  bool colored() const { return colored_; }

 private:
  template <class Ctx>
  void color(Ctx& ctx) {
    colored_ = true;
    ctx.mark_colored();
    ctx.deliver();
    const NodeId rel = static_cast<NodeId>(
        (static_cast<std::int64_t>(self_) - ctx.root() + n_) % n_);
    order_ = big_send_order(rel, n_);
  }

  NodeId self_;
  NodeId n_;
  std::vector<NodeId> order_;
  std::size_t next_ = 0;
  bool colored_ = false;
};

}  // namespace cg

#include "obs/report.hpp"

#include "obs/json.hpp"

namespace cg::obs {

namespace {

void step_kv(JsonWriter& w, std::string_view key, Step s) {
  if (s == kNever)
    w.kv_null(key);
  else
    w.kv(key, static_cast<std::int64_t>(s));
}

void samples_kv(JsonWriter& w, std::string_view key, const Samples& s) {
  w.key(key);
  w.begin_object();
  w.kv("count", static_cast<std::int64_t>(s.count()));
  if (!s.empty()) {
    w.kv("mean", s.mean());
    w.kv("min", s.min());
    w.kv("max", s.max());
    w.kv("p50", s.p50());
    w.kv("p90", s.p90());
    w.kv("p99", s.p99());
  }
  w.end_object();
}

void summary_kv(JsonWriter& w, std::string_view key, const SummaryStat& s) {
  w.key(key);
  w.begin_object();
  w.kv("count", static_cast<std::int64_t>(s.count()));
  if (!s.empty()) {
    w.kv("mean", s.mean());
    w.kv("stddev", s.stddev());
    w.kv("ci95", s.ci95_halfwidth());
    w.kv("min", s.min());
    w.kv("max", s.max());
    w.kv("p50", s.p50());
    w.kv("p90", s.p90());
    w.kv("p99", s.p99());
  }
  w.end_object();
}

}  // namespace

void write_json(JsonWriter& w, const RunMetrics& m) {
  w.begin_object();
  w.kv("n_total", static_cast<std::int64_t>(m.n_total));
  w.kv("n_active", static_cast<std::int64_t>(m.n_active));
  w.kv("n_colored", static_cast<std::int64_t>(m.n_colored));
  w.kv("n_delivered", static_cast<std::int64_t>(m.n_delivered));
  step_kv(w, "t_last_colored", m.t_last_colored);
  step_kv(w, "t_last_colored_partial", m.t_last_colored_partial);
  step_kv(w, "t_last_delivered", m.t_last_delivered);
  step_kv(w, "t_complete", m.t_complete);
  step_kv(w, "t_root_complete", m.t_root_complete);
  w.kv("t_end", static_cast<std::int64_t>(m.t_end));
  w.kv("msgs_total", m.msgs_total);
  w.kv("msgs_gossip", m.msgs_gossip);
  w.kv("msgs_correction", m.msgs_correction);
  w.kv("msgs_sos", m.msgs_sos);
  w.kv("msgs_tree", m.msgs_tree);
  w.kv("msgs_retrans", m.msgs_retrans);
  w.kv("msgs_dropped", m.msgs_dropped);
  w.kv("all_active_colored", m.all_active_colored);
  w.kv("all_active_delivered", m.all_active_delivered);
  w.kv("all_or_nothing_delivery", m.all_or_nothing_delivery());
  w.kv("sos_triggered", m.sos_triggered);
  w.kv("hit_max_steps", m.hit_max_steps);
  w.kv("bfb_restarts", m.bfb_restarts);
  w.kv("inconsistency", m.inconsistency());
  if (m.n_byzantine > 0) {
    w.kv("n_byzantine", static_cast<std::int64_t>(m.n_byzantine));
    w.kv("n_delivered_true", static_cast<std::int64_t>(m.n_delivered_true));
    w.kv("n_delivered_forged",
         static_cast<std::int64_t>(m.n_delivered_forged));
    w.kv("distinct_delivered_payloads",
         static_cast<std::int64_t>(m.distinct_delivered_payloads));
    w.kv("consistent_delivery", m.consistent_delivery);
    w.kv("msgs_forged", m.msgs_forged);
    w.kv("msgs_equivocated", m.msgs_equivocated);
    w.kv("msgs_suppressed", m.msgs_suppressed);
  }
  w.end_object();
}

void write_json(JsonWriter& w, const TrialAggregate& agg) {
  w.begin_object();
  w.kv("trials", agg.trials);
  samples_kv(w, "t_last_colored", agg.t_last_colored);
  samples_kv(w, "t_last_colored_partial", agg.t_last_colored_partial);
  samples_kv(w, "t_complete", agg.t_complete);
  samples_kv(w, "t_root_complete", agg.t_root_complete);
  summary_kv(w, "work", agg.work);
  summary_kv(w, "work_gossip", agg.work_gossip);
  summary_kv(w, "work_correction", agg.work_correction);
  summary_kv(w, "work_retrans", agg.work_retrans);
  summary_kv(w, "inconsistency", agg.inconsistency);
  w.kv("all_colored_trials", agg.all_colored_trials);
  w.kv("all_delivered_trials", agg.all_delivered_trials);
  w.kv("sos_trials", agg.sos_trials);
  w.kv("all_or_nothing_violations", agg.all_or_nothing_violations);
  w.kv("sos_incomplete_trials", agg.sos_incomplete_trials);
  w.kv("hit_max_steps_trials", agg.hit_max_steps_trials);
  w.kv("bfb_restarts_total", agg.bfb_restarts_total);
  w.kv("msgs_dropped_total", agg.msgs_dropped_total);
  w.kv("consistency_violations", agg.consistency_violations);
  w.kv("forged_delivery_trials", agg.forged_delivery_trials);
  w.kv("msgs_equivocated_total", agg.msgs_equivocated_total);
  w.kv("msgs_forged_total", agg.msgs_forged_total);
  w.kv("msgs_suppressed_total", agg.msgs_suppressed_total);
  w.kv("all_colored_rate", agg.all_colored_rate());
  w.end_object();
}

void write_json(JsonWriter& w, const EngineProfile& prof) {
  w.begin_object();
  w.kv("events", prof.events());
  w.kv("callbacks_start", prof.callbacks_start);
  w.kv("callbacks_receive", prof.callbacks_receive);
  w.kv("callbacks_tick", prof.callbacks_tick);
  w.kv("events_scheduled", prof.events_scheduled);
  w.kv("events_fired", prof.events_fired);
  w.kv("events_cancelled", prof.events_cancelled);
  w.kv("queue_max_bucket", prof.queue_max_bucket);
  w.kv("queue_slot_capacity", prof.queue_slot_capacity);
  w.kv("steps", static_cast<std::int64_t>(prof.steps));
  w.kv("wall_s", prof.wall_s);
  w.kv("deliver_s", prof.deliver_s);
  w.kv("tick_s", prof.tick_s);
  w.kv("route_s", prof.route_s);
  w.kv("events_per_sec", prof.events_per_sec());
  w.kv("bytes_per_node", prof.bytes_per_node);
  w.kv("peak_rss_bytes", prof.peak_rss_bytes);
  if (prof.shards > 0) {
    w.kv("shards", static_cast<std::int64_t>(prof.shards));
    w.kv("windows", prof.windows);
    w.kv("window_stalls", prof.window_stalls);
    w.kv("boundary_msgs", prof.boundary_msgs);
    w.key("shard_stats");
    w.begin_array();
    for (const auto& s : prof.shard_stats) {
      w.begin_object();
      w.kv("events_fired", s.events_fired);
      w.kv("boundary_msgs", s.boundary_msgs);
      w.kv("window_stalls", s.window_stalls);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

std::string to_json(const RunMetrics& m) {
  JsonWriter w;
  write_json(w, m);
  return w.str();
}

std::string to_json(const TrialAggregate& agg) {
  JsonWriter w;
  write_json(w, agg);
  return w.str();
}

std::string to_json(const EngineProfile& prof) {
  JsonWriter w;
  write_json(w, prof);
  return w.str();
}

void write_json(JsonWriter& w, const CampaignResult& result) {
  w.begin_object();
  w.kv("cells", static_cast<std::int64_t>(result.cells.size()));
  w.kv("failed_cells", static_cast<std::int64_t>(result.failed_cells));
  w.kv("all_pass", result.all_pass());
  w.key("results");
  w.begin_array();
  for (const auto& cell : result.cells) {
    w.begin_object();
    w.kv("scenario", cell.scenario);
    w.kv("entry", cell.entry);
    w.kv("guarantee", guarantee_name(cell.guarantee));
    w.kv("pass", cell.pass);
    w.key("aggregate");
    write_json(w, cell.agg);
    w.end_object();
  }
  w.end_array();
  if (!result.artifacts.empty()) {
    w.key("artifacts");
    w.begin_array();
    for (const auto& art : result.artifacts) {
      w.begin_object();
      w.kv("scenario", art.scenario);
      w.kv("entry", art.entry);
      w.kv("trial", art.trial);
      w.kv("seed", static_cast<std::int64_t>(art.seed));
      w.kv("path", art.path);
      w.kv("truncated_run", art.truncated_run);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

std::string to_json(const CampaignResult& result) {
  JsonWriter w;
  write_json(w, result);
  return w.str();
}

}  // namespace cg::obs

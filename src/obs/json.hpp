// Minimal streaming JSON writer for the observability layer (trace sinks,
// series dumps, run reports).  No DOM, no allocation beyond the output
// string; comma placement is tracked with a small container stack, so the
// caller composes begin_object()/key()/value() calls freely and always gets
// syntactically valid JSON.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"

namespace cg::obs {

/// Escape a string for inclusion inside JSON quotes (appends to `out`).
inline void json_escape(std::string_view s, std::string& out) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

class JsonWriter {
 public:
  const std::string& str() const {
    CG_CHECK_MSG(stack_.empty(), "unclosed JSON container");
    return out_;
  }

  void begin_object() {
    sep();
    out_ += '{';
    stack_.push_back(false);
  }
  void end_object() {
    pop();
    out_ += '}';
  }
  void begin_array() {
    sep();
    out_ += '[';
    stack_.push_back(false);
  }
  void end_array() {
    pop();
    out_ += ']';
  }

  /// Object member key; must be followed by exactly one value/container.
  void key(std::string_view k) {
    sep();
    out_ += '"';
    json_escape(k, out_);
    out_ += "\":";
    pending_value_ = true;
  }

  void value(std::string_view s) {
    sep();
    out_ += '"';
    json_escape(s, out_);
    out_ += '"';
  }
  void value(const char* s) { value(std::string_view(s)); }
  void value(double d) {
    sep();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out_ += buf;
  }
  void value(std::int64_t v) {
    sep();
    out_ += std::to_string(v);
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool b) {
    sep();
    out_ += b ? "true" : "false";
  }
  void null() {
    sep();
    out_ += "null";
  }

  // Shorthands for object members.
  template <class T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }
  void kv_null(std::string_view k) {
    key(k);
    null();
  }

 private:
  // Emit the separating comma unless this is a container's first element or
  // the value immediately following a key.
  void sep() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) out_ += ',';
      stack_.back() = true;
    }
  }

  void pop() {
    CG_CHECK_MSG(!stack_.empty(), "JSON container underflow");
    CG_CHECK_MSG(!pending_value_, "JSON key without a value");
    stack_.pop_back();
    if (!stack_.empty()) stack_.back() = true;
  }

  std::string out_;
  std::vector<char> stack_;  // one flag per open container: "has elements"
  bool pending_value_ = false;
};

}  // namespace cg::obs

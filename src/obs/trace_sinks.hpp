// Structured trace sinks: the observability layer's export side of the
// engines' TraceSink hook (RunConfig::trace).
//
// All sinks here work with every execution engine: the stepped and async
// engines call on_event() inline, and the parallel engine merges per-worker
// buffers at the step barrier (single-threaded), so no sink needs locking.
//
//   JsonlTraceSink    - one JSON object per line; lossless (from_jsonl()
//                       parses back the exact event), greppable, streamable.
//   ChromeTraceSink   - Chrome trace-event JSON ("chrome://tracing" /
//                       https://ui.perfetto.dev): one track per node,
//                       phase-colored slices for gossip / correction / SOS.
//   CountingTraceSink - O(1)-memory per-kind and per-tag counters for
//                       always-on accounting.
//   TeeTraceSink      - fan one engine trace out to several sinks.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "proto/message.hpp"
#include "sim/trace.hpp"

namespace cg::obs {

/// Message phase a Tag belongs to (the paper's work taxonomy, matching
/// MessageCounts): gossip, ring correction, SOS flood, baseline tree.
enum class Phase : std::uint8_t { kGossip = 0, kCorrection, kSos, kTree };
inline constexpr int kPhaseCount = 4;

constexpr Phase phase_of(Tag t) {
  switch (t) {
    case Tag::kGossip:
    case Tag::kPullReq:
    case Tag::kSbrbSubEcho:
    case Tag::kSbrbSubReady: return Phase::kGossip;
    case Tag::kOcgCorr:
    case Tag::kFwd:
    case Tag::kBwd:
    case Tag::kSbrbEcho:
    case Tag::kSbrbReady: return Phase::kCorrection;
    case Tag::kSos: return Phase::kSos;
    case Tag::kTree:
    case Tag::kNack:
    case Tag::kAck: return Phase::kTree;
  }
  return Phase::kGossip;
}

constexpr const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kGossip: return "gossip";
    case Phase::kCorrection: return "correction";
    case Phase::kSos: return "sos";
    case Phase::kTree: return "tree";
  }
  return "?";
}

/// Serialize one event as a single JSONL line (no trailing newline).
std::string to_jsonl(const TraceEvent& ev);

/// Serialize a whole trace, one event per line, trailing newline per line.
std::string to_jsonl(const std::vector<TraceEvent>& events);

/// Parse a line produced by to_jsonl(); returns false on malformed input.
bool from_jsonl(std::string_view line, TraceEvent& out);

/// Canonical event order: by step, then kind, node, peer, tag.  Engines
/// agree on the event MULTISET per step but not on intra-step emission
/// order (worker interleaving, heap order), so byte-stable trace comparison
/// and deterministic file output sort with this first.
void canonical_sort(std::vector<TraceEvent>& events);

/// Writes one JSONL line per event to a file, streaming (nothing retained).
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;
  JsonlTraceSink(const JsonlTraceSink&) = delete;
  JsonlTraceSink& operator=(const JsonlTraceSink&) = delete;

  bool ok() const { return f_ != nullptr; }
  void on_event(const TraceEvent& ev) override;
  /// Flush and close early (also done by the destructor).
  void close();

 private:
  std::FILE* f_ = nullptr;
};

/// Streams Chrome trace-event JSON ("chrome://tracing" / Perfetto) with
/// bounded memory: events buffer up to `flush_threshold`, are sorted
/// canonically chunk-locally (both viewers re-sort by ts on load, so
/// chunk-local order only serves byte-stable output for equal event
/// multisets), and stream to disk.  A big run therefore never holds more
/// than one chunk in memory - the old buffer-everything design ran out of
/// memory on n >= 65536 full traces.
///
/// Layout: one thread ("track") per node under a single process; sends and
/// deliveries are duration slices of one step (the LogP overhead O) colored
/// by phase; colorings / deliveries / completions / crashes are instant
/// events.  `us_per_step` scales simulated steps to trace microseconds
/// (pass LogP::o_us to get real simulated time).
///
/// `max_events > 0` hard-caps the file: further events are counted, not
/// written, and close() appends a `trace_truncated` instant event carrying
/// the dropped count.  Per-node track metadata is emitted only for traces
/// whose max node id stays below 65536 (at 1M nodes the labels alone would
/// dwarf the trace; viewers fall back to numeric tids).
class ChromeTraceSink final : public TraceSink {
 public:
  static constexpr std::size_t kDefaultFlushThreshold = 65536;

  explicit ChromeTraceSink(const std::string& path, double us_per_step = 1.0,
                           std::size_t flush_threshold = kDefaultFlushThreshold,
                           std::int64_t max_events = 0);
  ~ChromeTraceSink() override;
  ChromeTraceSink(const ChromeTraceSink&) = delete;
  ChromeTraceSink& operator=(const ChromeTraceSink&) = delete;

  void on_event(const TraceEvent& ev) override {
    if (max_events_ > 0 &&
        emitted_ + static_cast<std::int64_t>(buf_.size()) >= max_events_) {
      ++dropped_;
      return;
    }
    buf_.push_back(ev);
    if (buf_.size() >= flush_threshold_) flush_chunk();
  }

  /// Flush the tail, append track metadata + truncation marker, close the
  /// file.  Returns false if any write failed.  Idempotent.
  bool close();

  std::int64_t emitted() const { return emitted_; }
  /// Events beyond max_events (recorded in the truncation marker).
  std::int64_t dropped() const { return dropped_; }

 private:
  void flush_chunk();          ///< sort + stream the buffer, lazily opening
  void write(std::string_view s);

  std::string path_;
  double us_per_step_;
  std::size_t flush_threshold_;
  std::int64_t max_events_;
  std::vector<TraceEvent> buf_;
  std::FILE* f_ = nullptr;
  bool opened_ = false;
  bool first_event_ = true;    ///< comma bookkeeping inside traceEvents[]
  bool ok_ = true;
  bool closed_ = false;
  NodeId max_node_ = -1;
  std::int64_t emitted_ = 0;
  std::int64_t dropped_ = 0;
};

/// O(1)-memory counters: events by kind, sends by tag and by phase.
class CountingTraceSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& ev) override {
    ++total_;
    ++by_kind_[static_cast<int>(ev.kind)];
    if (ev.kind == TraceEvent::Kind::kSend) {
      ++sends_by_tag_[static_cast<int>(ev.tag)];
      ++sends_by_phase_[static_cast<int>(phase_of(ev.tag))];
    }
  }

  std::int64_t total() const { return total_; }
  std::int64_t count(TraceEvent::Kind k) const {
    return by_kind_[static_cast<int>(k)];
  }
  std::int64_t sends(Tag t) const {
    return sends_by_tag_[static_cast<int>(t)];
  }
  std::int64_t sends(Phase p) const {
    return sends_by_phase_[static_cast<int>(p)];
  }

  void clear() { *this = CountingTraceSink{}; }

 private:
  std::int64_t total_ = 0;
  std::int64_t by_kind_[kTraceKindCount] = {};
  std::int64_t sends_by_tag_[kTagCount] = {};
  std::int64_t sends_by_phase_[kPhaseCount] = {};
};

/// Forwards every event to each registered sink (none owned).
class TeeTraceSink final : public TraceSink {
 public:
  void add(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  void on_event(const TraceEvent& ev) override {
    for (TraceSink* s : sinks_) s->on_event(ev);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace cg::obs

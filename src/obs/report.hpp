// Machine-readable run reports: JSON serialization of RunMetrics,
// TrialAggregate and EngineProfile, so external tooling consumes simulation
// results without scraping tables.  Step fields use `null` for kNever.
#pragma once

#include <string>

#include "harness/campaign.hpp"
#include "harness/experiment.hpp"
#include "obs/telemetry.hpp"
#include "sim/core/profile.hpp"
#include "sim/metrics.hpp"

namespace cg::obs {

class JsonWriter;

std::string to_json(const RunMetrics& m);
std::string to_json(const TrialAggregate& agg);
std::string to_json(const EngineProfile& prof);
/// Reliability report: one record per campaign cell with the scenario,
/// entry, claimed guarantee, pass/fail and the full aggregate (including
/// work_retrans, the price of the hardening), plus the flight-recorder
/// artifact index when forensics were enabled.
std::string to_json(const CampaignResult& result);
/// Telemetry registry: counters plus each histogram as count / mean /
/// quantile bounds / non-empty `[bucket_lo, count]` pairs.
std::string to_json(const Telemetry& t);

// Streaming variants for embedding into a larger document (cgsim's
// --report-json wraps the aggregate with the run configuration).
void write_json(JsonWriter& w, const RunMetrics& m);
void write_json(JsonWriter& w, const TrialAggregate& agg);
void write_json(JsonWriter& w, const EngineProfile& prof);
void write_json(JsonWriter& w, const CampaignResult& result);
void write_json(JsonWriter& w, const Telemetry& t);
void write_json(JsonWriter& w, const LogHistogram& h);

}  // namespace cg::obs

// Machine-readable run reports: JSON serialization of RunMetrics,
// TrialAggregate and EngineProfile, so external tooling consumes simulation
// results without scraping tables.  Step fields use `null` for kNever.
#pragma once

#include <string>

#include "harness/campaign.hpp"
#include "harness/experiment.hpp"
#include "sim/core/profile.hpp"
#include "sim/metrics.hpp"

namespace cg::obs {

class JsonWriter;

std::string to_json(const RunMetrics& m);
std::string to_json(const TrialAggregate& agg);
std::string to_json(const EngineProfile& prof);
/// Reliability report: one record per campaign cell with the scenario,
/// entry, claimed guarantee, pass/fail and the full aggregate (including
/// work_retrans, the price of the hardening).
std::string to_json(const CampaignResult& result);

// Streaming variants for embedding into a larger document (cgsim's
// --report-json wraps the aggregate with the run configuration).
void write_json(JsonWriter& w, const RunMetrics& m);
void write_json(JsonWriter& w, const TrialAggregate& agg);
void write_json(JsonWriter& w, const EngineProfile& prof);
void write_json(JsonWriter& w, const CampaignResult& result);

}  // namespace cg::obs

// Deterministic bottom-k trace sampling: a bounded, representative sample
// of a run's trace whose BYTES are identical across engines and
// shard/thread counts.
//
// Plain reservoir sampling (Vitter's R) depends on arrival order, which
// differs between engines within a step.  Instead each event gets a
// priority h = mix(seed, event fields) and the sink keeps the k events
// with the smallest (h, canonical key) - a pure function of the event
// MULTISET, which the engine parity suite guarantees identical.  Ties on
// the full tuple are exact duplicates, and "keep the k smallest of a
// multiset" is order-independent, so the retained sample is too.  Each
// distinct event's priority is an independent uniform draw seeded by the
// run seed, so the sample is a uniform random subset of the distinct
// trace events, not biased toward any phase or step range.
//
// Memory: k entries (~32 B each) + O(1); per event one 4-round mix and a
// compare against the heap root, O(log k) only on the (rare) replacement.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <tuple>
#include <vector>

#include "sim/trace.hpp"

namespace cg::obs {

class SamplingTraceSink final : public TraceSink {
 public:
  /// `seed` should be the run seed (RunConfig::seed) so the sample is
  /// reproducible from the run's command line alone.
  explicit SamplingTraceSink(std::uint64_t seed, std::size_t k = 4096)
      : seed_(seed), k_(k) {
    heap_.reserve(k_);
  }

  /// Stable, documented event priority (splitmix64 finalizer rounds over
  /// the event fields).  Exposed so tests can pin the mixing function.
  static std::uint64_t priority(std::uint64_t seed, const TraceEvent& ev) {
    auto mix = [](std::uint64_t x) {
      x += 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    };
    std::uint64_t h = mix(seed ^ 0x736d706c2d73696bULL);  // "smpl-sik"
    h = mix(h ^ static_cast<std::uint64_t>(ev.step));
    h = mix(h ^
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.node)) |
             (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.peer))
              << 32)));
    h = mix(h ^ (static_cast<std::uint64_t>(ev.kind) |
                 (static_cast<std::uint64_t>(ev.tag) << 8)));
    return h;
  }

  void on_event(const TraceEvent& ev) override {
    ++seen_;
    if (k_ == 0) return;
    const Entry e{priority(seed_, ev), ev};
    if (heap_.size() < k_) {
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end(), entry_less);
      return;
    }
    if (!entry_less(e, heap_.front())) return;  // >= k-th smallest: drop
    std::pop_heap(heap_.begin(), heap_.end(), entry_less);
    heap_.back() = e;
    std::push_heap(heap_.begin(), heap_.end(), entry_less);
  }

  /// Retained events in canonical trace order (step, kind, node, peer,
  /// tag) - byte-stable regardless of arrival order.
  std::vector<TraceEvent> sample() const {
    std::vector<TraceEvent> out;
    out.reserve(heap_.size());
    for (const auto& e : heap_) out.push_back(e.ev);
    std::sort(out.begin(), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return key(a) < key(b);
              });
    return out;
  }

  std::int64_t seen() const { return seen_; }
  std::size_t size() const { return heap_.size(); }
  std::size_t capacity() const { return k_; }
  std::uint64_t seed() const { return seed_; }

  void clear() {
    heap_.clear();
    seen_ = 0;
  }

 private:
  struct Entry {
    std::uint64_t h;
    TraceEvent ev;
  };

  static std::tuple<Step, int, NodeId, NodeId, int> key(const TraceEvent& ev) {
    return {ev.step, static_cast<int>(ev.kind), ev.node, ev.peer,
            static_cast<int>(ev.tag)};
  }

  /// Strict total order on entries: priority first, canonical event key
  /// breaks priority collisions so the retained set is well-defined.
  /// std::push_heap builds a MAX-heap under this order, leaving the
  /// largest retained entry (the current k-th smallest) at the root.
  static bool entry_less(const Entry& a, const Entry& b) {
    if (a.h != b.h) return a.h < b.h;
    return key(a.ev) < key(b.ev);
  }

  std::uint64_t seed_;
  std::size_t k_;
  std::vector<Entry> heap_;  ///< max-heap under entry_less
  std::int64_t seen_ = 0;
};

}  // namespace cg::obs

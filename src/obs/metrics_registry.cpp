#include "obs/metrics_registry.hpp"

#include "obs/json.hpp"
#include "sim/core/profile.hpp"
#include "sim/metrics.hpp"

namespace cg::obs {

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c.value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) w.kv(name, g.value());
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.kv("count", static_cast<std::int64_t>(h.count()));
    if (!h.empty()) {
      w.kv("mean", h.mean());
      w.kv("min", h.min());
      w.kv("max", h.max());
      w.kv("p50", h.p50());
      w.kv("p90", h.p90());
      w.kv("p99", h.p99());
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

void fill_registry(MetricsRegistry& reg, const RunMetrics& m,
                   const EngineProfile* prof) {
  reg.counter("nodes.total").add(m.n_total);
  reg.counter("nodes.active").add(m.n_active);
  reg.counter("nodes.colored").add(m.n_colored);
  reg.counter("nodes.delivered").add(m.n_delivered);
  reg.counter("msgs.total").add(m.msgs_total);
  reg.counter("msgs.gossip").add(m.msgs_gossip);
  reg.counter("msgs.correction").add(m.msgs_correction);
  reg.counter("msgs.sos").add(m.msgs_sos);
  reg.counter("msgs.tree").add(m.msgs_tree);
  reg.gauge("run.inconsistency").set(m.inconsistency());
  reg.gauge("run.t_end").set(static_cast<double>(m.t_end));

  // Per-node latency distributions (available with record_node_detail).
  auto& colored = reg.histogram("node.colored_at");
  for (const Step s : m.colored_at)
    if (s != kNever) colored.observe(static_cast<double>(s));
  auto& completed = reg.histogram("node.completed_at");
  for (const Step s : m.completed_at)
    if (s != kNever) completed.observe(static_cast<double>(s));

  if (prof != nullptr) {
    reg.counter("engine.events").add(prof->events());
    reg.counter("engine.callbacks_start").add(prof->callbacks_start);
    reg.counter("engine.callbacks_receive").add(prof->callbacks_receive);
    reg.counter("engine.callbacks_tick").add(prof->callbacks_tick);
    reg.counter("engine.events_scheduled").add(prof->events_scheduled);
    reg.counter("engine.events_fired").add(prof->events_fired);
    reg.counter("engine.events_cancelled").add(prof->events_cancelled);
    reg.gauge("engine.queue_max_bucket").set(
        static_cast<double>(prof->queue_max_bucket));
    reg.gauge("engine.queue_slot_capacity").set(
        static_cast<double>(prof->queue_slot_capacity));
    reg.counter("engine.steps").add(prof->steps);
    reg.gauge("engine.wall_s").set(prof->wall_s);
    reg.gauge("engine.deliver_s").set(prof->deliver_s);
    reg.gauge("engine.tick_s").set(prof->tick_s);
    reg.gauge("engine.route_s").set(prof->route_s);
    reg.gauge("engine.events_per_sec").set(prof->events_per_sec());
  }
}

}  // namespace cg::obs

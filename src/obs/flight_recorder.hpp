// Always-on failure forensics: a bounded ring of the most recent
// TraceEvents, cheap enough to leave attached to every campaign trial
// (fixed memory, ~O(64KB) per recorder at the default capacity; O(1) per
// event, no allocation after construction).
//
// When a guarantee predicate fails, a trial truncates, or a run aborts,
// the campaign runner dumps the ring to a JSONL artifact whose first line
// records the exact re-run command; the remaining lines use the same
// format as obs::to_jsonl(), so obs::from_jsonl() parses them back.  The
// campaign executes trials on the stepped engine, whose TraceSink emission
// order IS arrival order - the ring is therefore the exact suffix of the
// full stepped-engine replay trace (verified in test_telemetry.cpp).
//
// Layering note: header-only with its own inline JSONL writer (matching
// the obs::to_jsonl() byte format) because cg_harness cannot link cg_obs;
// tag_name()/trace_kind_name() come from cg_proto/cg_sim, which every
// consumer already links.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "proto/message.hpp"
#include "sim/trace.hpp"

namespace cg::obs {

class FlightRecorder final : public TraceSink {
 public:
  /// 2048 events * 24 B/event ~= 48 KB per recorder.
  static constexpr std::size_t kDefaultCapacity = 2048;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity > 0 ? capacity : 1) {}

  void on_event(const TraceEvent& ev) override {
    ring_[head_] = ev;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size())
      ++size_;
    else
      ++dropped_;
  }

  /// Forget recorded events (capacity retained) - call between trials.
  void clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return size_; }
  /// Events that fell off the front of the ring.
  std::int64_t dropped() const { return dropped_; }

  /// Recorded events, oldest first (arrival order).
  void snapshot(std::vector<TraceEvent>& out) const {
    out.clear();
    out.reserve(size_);
    const std::size_t start =
        size_ < ring_.size() ? 0 : head_;  // oldest retained event
    for (std::size_t i = 0; i < size_; ++i)
      out.push_back(ring_[(start + i) % ring_.size()]);
  }

  /// Context for dump_jsonl()'s header line.
  struct DumpInfo {
    std::string_view rerun;     ///< exact command line reproducing the trial
    std::string_view scenario;  ///< fault-scenario name ("" outside campaigns)
    std::string_view entry;     ///< campaign entry label ("" outside campaigns)
    int trial = 0;
    std::uint64_t seed = 0;
    bool truncated_run = false;  ///< trial hit max_steps
  };

  /// Write the artifact: one header object line, then one obs::to_jsonl()-
  /// format line per recorded event in arrival order.  Returns false if
  /// the file could not be written.
  bool dump_jsonl(const std::string& path, const DumpInfo& info) const {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    std::fprintf(f,
                 "{\"flight_recorder\":1,\"scenario\":\"%s\","
                 "\"entry\":\"%s\",\"trial\":%d,\"seed\":%llu,"
                 "\"capacity\":%zu,\"recorded\":%zu,\"dropped\":%lld,"
                 "\"truncated_run\":%s,\"rerun\":\"%s\"}\n",
                 escaped(info.scenario).c_str(), escaped(info.entry).c_str(),
                 info.trial, static_cast<unsigned long long>(info.seed),
                 ring_.size(), size_, static_cast<long long>(dropped_),
                 info.truncated_run ? "true" : "false",
                 escaped(info.rerun).c_str());
    const std::size_t start = size_ < ring_.size() ? 0 : head_;
    for (std::size_t i = 0; i < size_; ++i) {
      const TraceEvent& ev = ring_[(start + i) % ring_.size()];
      std::fprintf(f,
                   "{\"step\":%lld,\"kind\":\"%s\",\"node\":%d,"
                   "\"peer\":%d,\"tag\":\"%s\"}\n",
                   static_cast<long long>(ev.step), trace_kind_name(ev.kind),
                   static_cast<int>(ev.node), static_cast<int>(ev.peer),
                   tag_name(ev.tag));
    }
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
  }

 private:
  static std::string escaped(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::int64_t dropped_ = 0;
};

}  // namespace cg::obs

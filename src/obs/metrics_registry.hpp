// Named counters / gauges / histograms with JSON export - the run-report
// side of the observability layer.  Intentionally minimal: deterministic
// (sorted) output, no labels, no locking (populate from one thread or
// behind the engines' single-threaded merge points).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hpp"

namespace cg {
struct RunMetrics;
struct EngineProfile;
}  // namespace cg

namespace cg::obs {

class Counter {
 public:
  void add(std::int64_t d = 1) { v_ += d; }
  std::int64_t value() const { return v_; }

 private:
  std::int64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  double value() const { return v_; }

 private:
  double v_ = 0;
};

/// Sample distribution reported as count/mean/min/max/p50/p90/p99.
class Histogram {
 public:
  void observe(double x) { s_.add(x); }
  std::size_t count() const { return s_.count(); }
  bool empty() const { return s_.count() == 0; }
  double mean() const { return s_.mean(); }
  double min() const { return s_.min(); }
  double max() const { return s_.max(); }
  double p50() const { return s_.p50(); }
  double p90() const { return s_.p90(); }
  double p99() const { return s_.p99(); }

 private:
  SummaryStat s_;
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
  std::string to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Populate a registry from a finished run: population and message counters
/// from RunMetrics (as maintained by NodeStateStore / the engines'
/// MessageCounts), per-node latency histograms when record_node_detail was
/// on, and engine self-profiling counters when a profile was attached.
void fill_registry(MetricsRegistry& reg, const RunMetrics& m,
                   const EngineProfile* prof = nullptr);

}  // namespace cg::obs

#include "obs/trace_sinks.hpp"

#include <algorithm>
#include <charconv>
#include <tuple>

#include "obs/json.hpp"

namespace cg::obs {

// ---------------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------------

std::string to_jsonl(const TraceEvent& ev) {
  JsonWriter w;
  w.begin_object();
  w.kv("step", static_cast<std::int64_t>(ev.step));
  w.kv("kind", trace_kind_name(ev.kind));
  w.kv("node", static_cast<std::int64_t>(ev.node));
  w.kv("peer", static_cast<std::int64_t>(ev.peer));
  w.kv("tag", tag_name(ev.tag));
  w.end_object();
  return w.str();
}

std::string to_jsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const auto& ev : events) {
    out += to_jsonl(ev);
    out += '\n';
  }
  return out;
}

namespace {

// Find `"key":` in `line` and return a view of the raw value token
// (number, or quoted-string content without the quotes).  Empty optional
// on absence / malformed value.
bool value_token(std::string_view line, std::string_view key,
                 std::string_view& out) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return false;
  std::string_view rest = line.substr(pos + needle.size());
  if (rest.empty()) return false;
  if (rest.front() == '"') {
    rest.remove_prefix(1);
    const auto end = rest.find('"');
    if (end == std::string_view::npos) return false;
    out = rest.substr(0, end);
    return true;
  }
  std::size_t end = 0;
  while (end < rest.size() &&
         (rest[end] == '-' || (rest[end] >= '0' && rest[end] <= '9')))
    ++end;
  if (end == 0) return false;
  out = rest.substr(0, end);
  return true;
}

template <class Int>
bool parse_int(std::string_view tok, Int& out) {
  const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), out);
  return res.ec == std::errc{} && res.ptr == tok.data() + tok.size();
}

}  // namespace

bool from_jsonl(std::string_view line, TraceEvent& out) {
  std::string_view step_tok, kind_tok, node_tok, peer_tok, tag_tok;
  if (!value_token(line, "step", step_tok) ||
      !value_token(line, "kind", kind_tok) ||
      !value_token(line, "node", node_tok) ||
      !value_token(line, "peer", peer_tok) ||
      !value_token(line, "tag", tag_tok))
    return false;
  TraceEvent ev;
  if (!parse_int(step_tok, ev.step) || !parse_int(node_tok, ev.node) ||
      !parse_int(peer_tok, ev.peer))
    return false;
  if (!trace_kind_from_name(kind_tok, ev.kind)) return false;
  if (!tag_from_name(tag_tok, ev.tag)) return false;
  out = ev;
  return true;
}

void canonical_sort(std::vector<TraceEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tuple(a.step, static_cast<int>(a.kind), a.node,
                                a.peer, static_cast<int>(a.tag)) <
                     std::tuple(b.step, static_cast<int>(b.kind), b.node,
                                b.peer, static_cast<int>(b.tag));
            });
}

// ---------------------------------------------------------------------------
// JsonlTraceSink
// ---------------------------------------------------------------------------

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : f_(std::fopen(path.c_str(), "w")) {}

JsonlTraceSink::~JsonlTraceSink() { close(); }

void JsonlTraceSink::on_event(const TraceEvent& ev) {
  if (f_ == nullptr) return;
  const std::string line = to_jsonl(ev);
  std::fwrite(line.data(), 1, line.size(), f_);
  std::fputc('\n', f_);
}

void JsonlTraceSink::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// ChromeTraceSink
// ---------------------------------------------------------------------------

namespace {

// chrome://tracing reserved color names per phase (Perfetto accepts and
// ignores unknown cnames, so this degrades gracefully there).
const char* phase_cname(Phase p) {
  switch (p) {
    case Phase::kGossip: return "good";
    case Phase::kCorrection: return "bad";
    case Phase::kSos: return "terrible";
    case Phase::kTree: return "generic_work";
  }
  return "generic_work";
}

}  // namespace

namespace {

/// One standalone trace-event object (the body of one traceEvents entry).
void append_trace_event(JsonWriter& w, const TraceEvent& ev,
                        double us_per_step) {
  const double ts = static_cast<double>(ev.step) * us_per_step;
  w.begin_object();
  w.kv("pid", 0);
  w.kv("tid", static_cast<std::int64_t>(ev.node));
  w.kv("ts", ts);
  switch (ev.kind) {
    case TraceEvent::Kind::kSend:
    case TraceEvent::Kind::kDeliver: {
      const Phase phase = phase_of(ev.tag);
      std::string name = ev.kind == TraceEvent::Kind::kSend ? "send " : "recv ";
      name += tag_name(ev.tag);
      w.kv("ph", "X");  // complete event: one slice of one step (= O)
      w.kv("dur", us_per_step);
      w.kv("name", name);
      w.kv("cat", phase_name(phase));
      w.kv("cname", phase_cname(phase));
      w.key("args");
      w.begin_object();
      w.kv(ev.kind == TraceEvent::Kind::kSend ? "to" : "from",
           static_cast<std::int64_t>(ev.peer));
      w.end_object();
      break;
    }
    default: {
      w.kv("ph", "i");  // instant event
      w.kv("s", "t");
      w.kv("name", trace_kind_name(ev.kind));
      const bool adversarial = ev.kind == TraceEvent::Kind::kForged ||
                               ev.kind == TraceEvent::Kind::kEquivocated;
      w.kv("cat", ev.kind == TraceEvent::Kind::kLost || adversarial
                      ? "fault"
                      : "lifecycle");
      if (ev.kind == TraceEvent::Kind::kFail ||
          ev.kind == TraceEvent::Kind::kLost || adversarial)
        w.kv("cname", "terrible");
      else if (ev.kind == TraceEvent::Kind::kRestart)
        w.kv("cname", "good");
      break;
    }
  }
  w.end_object();
}

/// Per-node track metadata (name + sort order) for one node.
void append_track_metadata(JsonWriter& w, NodeId i) {
  w.begin_object();
  w.kv("ph", "M");
  w.kv("name", "thread_name");
  w.kv("pid", 0);
  w.kv("tid", static_cast<std::int64_t>(i));
  w.key("args");
  w.begin_object();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "node %d", i);
  w.kv("name", buf);
  w.end_object();
  w.end_object();
  w.begin_object();
  w.kv("ph", "M");
  w.kv("name", "thread_sort_index");
  w.kv("pid", 0);
  w.kv("tid", static_cast<std::int64_t>(i));
  w.key("args");
  w.begin_object();
  w.kv("sort_index", static_cast<std::int64_t>(i));
  w.end_object();
  w.end_object();
}

/// Track metadata balloons with node count; past this many tracks the
/// labels would dominate the file, so viewers get numeric tids instead.
constexpr NodeId kMaxLabeledTracks = 65536;

}  // namespace

ChromeTraceSink::ChromeTraceSink(const std::string& path, double us_per_step,
                                 std::size_t flush_threshold,
                                 std::int64_t max_events)
    : path_(path),
      us_per_step_(us_per_step),
      flush_threshold_(flush_threshold > 0 ? flush_threshold : 1),
      max_events_(max_events) {
  buf_.reserve(std::min<std::size_t>(flush_threshold_, 1 << 16));
}

ChromeTraceSink::~ChromeTraceSink() { close(); }

void ChromeTraceSink::write(std::string_view s) {
  if (f_ == nullptr) return;
  if (std::fwrite(s.data(), 1, s.size(), f_) != s.size()) ok_ = false;
}

void ChromeTraceSink::flush_chunk() {
  if (!opened_) {
    opened_ = true;
    f_ = std::fopen(path_.c_str(), "w");
    if (f_ == nullptr) {
      ok_ = false;
    } else {
      JsonWriter meta;
      meta.begin_object();
      meta.kv("generator", "corrected-gossip ChromeTraceSink");
      meta.kv("us_per_step", us_per_step_);
      meta.end_object();
      std::string prologue = "{\"displayTimeUnit\":\"ms\",\"otherData\":";
      prologue += meta.str();
      prologue += ",\"traceEvents\":[";
      write(prologue);
    }
  }
  canonical_sort(buf_);
  std::string chunk;
  chunk.reserve(buf_.size() * 96);
  for (const auto& ev : buf_) {
    max_node_ = std::max(max_node_, ev.node);
    if (!first_event_) chunk += ',';
    first_event_ = false;
    JsonWriter w;
    append_trace_event(w, ev, us_per_step_);
    chunk += w.str();
  }
  write(chunk);
  emitted_ += static_cast<std::int64_t>(buf_.size());
  buf_.clear();  // capacity retained for the next chunk
}

bool ChromeTraceSink::close() {
  if (closed_) return ok_;
  closed_ = true;
  flush_chunk();  // tail (and prologue, if nothing ever flushed)
  std::string epilogue;
  if (max_node_ >= 0 && max_node_ < kMaxLabeledTracks) {
    // Metadata events are position-independent; emitting them last keeps
    // the streaming path single-pass.
    JsonWriter w;
    w.begin_array();
    for (NodeId i = 0; i <= max_node_; ++i) append_track_metadata(w, i);
    w.end_array();
    const std::string& arr = w.str();
    if (arr.size() > 2) {  // strip the [ ] around the comma-joined objects
      if (!first_event_) epilogue += ',';
      first_event_ = false;
      epilogue.append(arr, 1, arr.size() - 2);
    }
  }
  if (dropped_ > 0) {
    // Truncation marker: the file is a prefix, not the whole run.
    JsonWriter w;
    w.begin_object();
    w.kv("ph", "i");
    w.kv("s", "g");
    w.kv("pid", 0);
    w.kv("tid", 0);
    w.kv("ts", 0.0);
    w.kv("name", "trace_truncated");
    w.kv("cat", "meta");
    w.kv("cname", "terrible");
    w.key("args");
    w.begin_object();
    w.kv("dropped_events", dropped_);
    w.kv("max_events", max_events_);
    w.end_object();
    w.end_object();
    if (!first_event_) epilogue += ',';
    first_event_ = false;
    epilogue += w.str();
  }
  epilogue += "]}";
  write(epilogue);
  if (f_ != nullptr) {
    if (std::fclose(f_) != 0) ok_ = false;
    f_ = nullptr;
  } else {
    ok_ = false;  // never managed to open the output
  }
  return ok_;
}

}  // namespace cg::obs

#include "obs/trace_sinks.hpp"

#include <algorithm>
#include <charconv>
#include <tuple>

#include "obs/json.hpp"

namespace cg::obs {

// ---------------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------------

std::string to_jsonl(const TraceEvent& ev) {
  JsonWriter w;
  w.begin_object();
  w.kv("step", static_cast<std::int64_t>(ev.step));
  w.kv("kind", trace_kind_name(ev.kind));
  w.kv("node", static_cast<std::int64_t>(ev.node));
  w.kv("peer", static_cast<std::int64_t>(ev.peer));
  w.kv("tag", tag_name(ev.tag));
  w.end_object();
  return w.str();
}

std::string to_jsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const auto& ev : events) {
    out += to_jsonl(ev);
    out += '\n';
  }
  return out;
}

namespace {

// Find `"key":` in `line` and return a view of the raw value token
// (number, or quoted-string content without the quotes).  Empty optional
// on absence / malformed value.
bool value_token(std::string_view line, std::string_view key,
                 std::string_view& out) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return false;
  std::string_view rest = line.substr(pos + needle.size());
  if (rest.empty()) return false;
  if (rest.front() == '"') {
    rest.remove_prefix(1);
    const auto end = rest.find('"');
    if (end == std::string_view::npos) return false;
    out = rest.substr(0, end);
    return true;
  }
  std::size_t end = 0;
  while (end < rest.size() &&
         (rest[end] == '-' || (rest[end] >= '0' && rest[end] <= '9')))
    ++end;
  if (end == 0) return false;
  out = rest.substr(0, end);
  return true;
}

template <class Int>
bool parse_int(std::string_view tok, Int& out) {
  const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), out);
  return res.ec == std::errc{} && res.ptr == tok.data() + tok.size();
}

}  // namespace

bool from_jsonl(std::string_view line, TraceEvent& out) {
  std::string_view step_tok, kind_tok, node_tok, peer_tok, tag_tok;
  if (!value_token(line, "step", step_tok) ||
      !value_token(line, "kind", kind_tok) ||
      !value_token(line, "node", node_tok) ||
      !value_token(line, "peer", peer_tok) ||
      !value_token(line, "tag", tag_tok))
    return false;
  TraceEvent ev;
  if (!parse_int(step_tok, ev.step) || !parse_int(node_tok, ev.node) ||
      !parse_int(peer_tok, ev.peer))
    return false;
  if (!trace_kind_from_name(kind_tok, ev.kind)) return false;
  if (!tag_from_name(tag_tok, ev.tag)) return false;
  out = ev;
  return true;
}

void canonical_sort(std::vector<TraceEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tuple(a.step, static_cast<int>(a.kind), a.node,
                                a.peer, static_cast<int>(a.tag)) <
                     std::tuple(b.step, static_cast<int>(b.kind), b.node,
                                b.peer, static_cast<int>(b.tag));
            });
}

// ---------------------------------------------------------------------------
// JsonlTraceSink
// ---------------------------------------------------------------------------

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : f_(std::fopen(path.c_str(), "w")) {}

JsonlTraceSink::~JsonlTraceSink() { close(); }

void JsonlTraceSink::on_event(const TraceEvent& ev) {
  if (f_ == nullptr) return;
  const std::string line = to_jsonl(ev);
  std::fwrite(line.data(), 1, line.size(), f_);
  std::fputc('\n', f_);
}

void JsonlTraceSink::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// ChromeTraceSink
// ---------------------------------------------------------------------------

namespace {

// chrome://tracing reserved color names per phase (Perfetto accepts and
// ignores unknown cnames, so this degrades gracefully there).
const char* phase_cname(Phase p) {
  switch (p) {
    case Phase::kGossip: return "good";
    case Phase::kCorrection: return "bad";
    case Phase::kSos: return "terrible";
    case Phase::kTree: return "generic_work";
  }
  return "generic_work";
}

}  // namespace

ChromeTraceSink::ChromeTraceSink(const std::string& path, double us_per_step)
    : path_(path), us_per_step_(us_per_step) {}

ChromeTraceSink::~ChromeTraceSink() { close(); }

bool ChromeTraceSink::close() {
  if (closed_) return true;
  closed_ = true;
  canonical_sort(events_);

  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.kv("generator", "corrected-gossip ChromeTraceSink");
  w.kv("us_per_step", us_per_step_);
  w.end_object();
  w.key("traceEvents");
  w.begin_array();

  // Track metadata: name each node's track and keep ring order top-down.
  NodeId max_node = -1;
  for (const auto& ev : events_) max_node = std::max(max_node, ev.node);
  for (NodeId i = 0; i <= max_node; ++i) {
    w.begin_object();
    w.kv("ph", "M");
    w.kv("name", "thread_name");
    w.kv("pid", 0);
    w.kv("tid", static_cast<std::int64_t>(i));
    w.key("args");
    w.begin_object();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "node %d", i);
    w.kv("name", buf);
    w.end_object();
    w.end_object();
    w.begin_object();
    w.kv("ph", "M");
    w.kv("name", "thread_sort_index");
    w.kv("pid", 0);
    w.kv("tid", static_cast<std::int64_t>(i));
    w.key("args");
    w.begin_object();
    w.kv("sort_index", static_cast<std::int64_t>(i));
    w.end_object();
    w.end_object();
  }

  for (const auto& ev : events_) {
    const double ts = static_cast<double>(ev.step) * us_per_step_;
    w.begin_object();
    w.kv("pid", 0);
    w.kv("tid", static_cast<std::int64_t>(ev.node));
    w.kv("ts", ts);
    switch (ev.kind) {
      case TraceEvent::Kind::kSend:
      case TraceEvent::Kind::kDeliver: {
        const Phase phase = phase_of(ev.tag);
        std::string name = ev.kind == TraceEvent::Kind::kSend ? "send " : "recv ";
        name += tag_name(ev.tag);
        w.kv("ph", "X");  // complete event: one slice of one step (= O)
        w.kv("dur", us_per_step_);
        w.kv("name", name);
        w.kv("cat", phase_name(phase));
        w.kv("cname", phase_cname(phase));
        w.key("args");
        w.begin_object();
        w.kv(ev.kind == TraceEvent::Kind::kSend ? "to" : "from",
             static_cast<std::int64_t>(ev.peer));
        w.end_object();
        break;
      }
      default: {
        w.kv("ph", "i");  // instant event
        w.kv("s", "t");
        w.kv("name", trace_kind_name(ev.kind));
        w.kv("cat", ev.kind == TraceEvent::Kind::kLost ? "fault" : "lifecycle");
        if (ev.kind == TraceEvent::Kind::kFail ||
            ev.kind == TraceEvent::Kind::kLost)
          w.kv("cname", "terrible");
        else if (ev.kind == TraceEvent::Kind::kRestart)
          w.kv("cname", "good");
        break;
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();

  events_.clear();
  events_.shrink_to_fit();
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) return false;
  const std::string& json = w.str();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace cg::obs

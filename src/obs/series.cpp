#include "obs/series.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/coloring.hpp"
#include "common/check.hpp"
#include "obs/json.hpp"

namespace cg::obs {

void StepSeries::ensure_step(Step s) {
  CG_CHECK(s >= 0);
  const auto need = static_cast<std::size_t>(s) + 1;
  if (newly_colored_.size() >= need) return;
  newly_colored_.resize(need, 0);
  sends_total_.resize(need, 0);
  for (auto& v : sends_by_phase_) v.resize(need, 0);
  delivers_.resize(need, 0);
  lost_.resize(need, 0);
  new_ring_senders_.resize(need, 0);
}

void StepSeries::set_stride(Step k) {
  CG_CHECK_MSG(k >= 1, "series stride must be >= 1");
  CG_CHECK_MSG(newly_colored_.empty(), "set_stride() before recording");
  stride_ = k;
}

void StepSeries::clear() {
  const Step stride = stride_;
  const bool track_ring = track_ring_;
  *this = StepSeries{};
  stride_ = stride;
  track_ring_ = track_ring;
}

void StepSeries::on_event(const TraceEvent& ev) {
  const Step bucket = stride_ > 1 ? ev.step / stride_ : ev.step;
  ensure_step(bucket);
  const auto s = static_cast<std::size_t>(bucket);
  switch (ev.kind) {
    case TraceEvent::Kind::kSend: {
      ++sends_total_[s];
      ++sends_by_phase_[static_cast<int>(phase_of(ev.tag))][s];
      if (track_ring_ && (is_ring_corr(ev.tag) || ev.tag == Tag::kOcgCorr)) {
        const auto node = static_cast<std::size_t>(ev.node);
        if (ring_seen_.size() <= node) ring_seen_.resize(node + 1, 0);
        if (ring_seen_[node] == 0) {
          ring_seen_[node] = 1;
          ++new_ring_senders_[s];
        }
      }
      break;
    }
    case TraceEvent::Kind::kDeliver: ++delivers_[s]; break;
    case TraceEvent::Kind::kColored: ++newly_colored_[s]; break;
    case TraceEvent::Kind::kLost: ++lost_[s]; break;
    default: break;  // delivered/complete/fail/restart don't feed a series
  }
}

namespace {

std::vector<std::int64_t> cumulative(const std::vector<std::int64_t>& per_step) {
  std::vector<std::int64_t> out(per_step.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < per_step.size(); ++i) {
    acc += per_step[i];
    out[i] = acc;
  }
  return out;
}

}  // namespace

std::vector<std::int64_t> StepSeries::colored_cumulative() const {
  return cumulative(newly_colored_);
}

std::vector<std::int64_t> StepSeries::ring_watermark() const {
  return cumulative(new_ring_senders_);
}

std::vector<std::int64_t> StepSeries::in_flight() const {
  std::vector<std::int64_t> out(sends_total_.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < sends_total_.size(); ++i) {
    acc += sends_total_[i] - delivers_[i];
    out[i] = acc;
  }
  return out;
}

std::string StepSeries::to_csv() const {
  std::string out =
      "step,colored,newly_colored,sends,sends_gossip,sends_correction,"
      "sends_sos,sends_tree,delivers,lost,in_flight,ring_watermark\n";
  const auto colored = colored_cumulative();
  const auto flight = in_flight();
  const auto ring = ring_watermark();
  char buf[256];
  for (std::size_t s = 0; s < newly_colored_.size(); ++s) {
    const int n = std::snprintf(
        buf, sizeof(buf),
        "%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld\n",
        static_cast<long long>(static_cast<Step>(s) * stride_),
        static_cast<long long>(colored[s]),
        static_cast<long long>(newly_colored_[s]),
        static_cast<long long>(sends_total_[s]),
        static_cast<long long>(sends_by_phase_[0][s]),
        static_cast<long long>(sends_by_phase_[1][s]),
        static_cast<long long>(sends_by_phase_[2][s]),
        static_cast<long long>(sends_by_phase_[3][s]),
        static_cast<long long>(delivers_[s]), static_cast<long long>(lost_[s]),
        static_cast<long long>(flight[s]), static_cast<long long>(ring[s]));
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

namespace {

void write_series(JsonWriter& w, std::string_view key,
                  const std::vector<std::int64_t>& v) {
  w.key(key);
  w.begin_array();
  for (const auto x : v) w.value(x);
  w.end_array();
}

}  // namespace

std::string StepSeries::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("steps", static_cast<std::int64_t>(steps()));
  w.kv("stride", static_cast<std::int64_t>(stride_));
  write_series(w, "colored", colored_cumulative());
  write_series(w, "newly_colored", newly_colored_);
  w.key("sends");
  w.begin_object();
  write_series(w, "total", sends_total_);
  for (int p = 0; p < kPhaseCount; ++p)
    write_series(w, phase_name(static_cast<Phase>(p)), sends_by_phase_[p]);
  w.end_object();
  write_series(w, "delivers", delivers_);
  write_series(w, "lost", lost_);
  write_series(w, "in_flight", in_flight());
  write_series(w, "ring_watermark", ring_watermark());
  w.end_object();
  return w.str();
}

DriftReport compare_to_model(const std::vector<std::int64_t>& observed,
                             const std::vector<double>& model,
                             NodeId n_active) {
  CG_CHECK(n_active >= 1);
  DriftReport r;
  r.compared_steps = static_cast<Step>(std::min(observed.size(), model.size()));
  if (r.compared_steps == 0) return r;
  double sum_abs = 0;
  for (Step s = 0; s < r.compared_steps; ++s) {
    const double d = std::abs(
        static_cast<double>(observed[static_cast<std::size_t>(s)]) -
        model[static_cast<std::size_t>(s)]);
    sum_abs += d;
    if (d > r.max_abs) {
      r.max_abs = d;
      r.max_abs_at = s;
    }
  }
  r.max_frac = r.max_abs / static_cast<double>(n_active);
  r.mean_abs = sum_abs / static_cast<double>(r.compared_steps);
  return r;
}

DriftReport compare_to_model(const StepSeries& series, NodeId N,
                             NodeId n_active, Step T, const LogP& logp) {
  const auto observed = series.colored_cumulative();
  const Step t_max = series.steps() > 0 ? series.steps() - 1 : 0;
  const auto model = expected_colored(N, n_active, T, logp, t_max);
  return compare_to_model(observed, model, n_active);
}

std::string to_json(const DriftReport& drift) {
  JsonWriter w;
  w.begin_object();
  w.kv("compared_steps", static_cast<std::int64_t>(drift.compared_steps));
  w.kv("max_abs", drift.max_abs);
  w.kv("max_abs_at", static_cast<std::int64_t>(drift.max_abs_at));
  w.kv("max_frac", drift.max_frac);
  w.kv("mean_abs", drift.mean_abs);
  w.end_object();
  return w.str();
}

}  // namespace cg::obs

// JSON surface of the telemetry registry (the registry itself is
// header-only in obs/telemetry.hpp - see the layering note there) and a
// human-readable histogram table for cgsim --histograms.
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"

namespace cg::obs {

void write_json(JsonWriter& w, const LogHistogram& h) {
  w.begin_object();
  w.kv("count", h.count());
  w.kv("mean", h.mean());
  w.kv("p50", h.quantile(0.50));
  w.kv("p90", h.quantile(0.90));
  w.kv("p99", h.quantile(0.99));
  w.kv("max", h.max_bound());
  w.key("buckets");
  w.begin_array();
  for (int b = 0; b < LogHistogram::kBuckets; ++b) {
    if (h.bucket_count(b) == 0) continue;
    w.begin_array();
    w.value(LogHistogram::bucket_lo(b));
    w.value(h.bucket_count(b));
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

void write_json(JsonWriter& w, const Telemetry& t) {
  const TelemetryCell& m = t.merged();
  w.begin_object();
  w.kv("runs", t.runs());
  w.kv("colorings", m.colorings);
  w.kv("deliveries", m.deliveries);
  w.key("coloring_latency");
  write_json(w, m.coloring_latency);
  w.key("inbox_depth");
  write_json(w, m.inbox_depth);
  w.key("window_boundary");
  write_json(w, m.window_boundary);
  w.key("retransmits");
  write_json(w, t.retransmits());
  w.end_object();
}

std::string to_json(const Telemetry& t) {
  JsonWriter w;
  write_json(w, t);
  return w.str();
}

}  // namespace cg::obs

// Scale-ready telemetry: per-shard counter/histogram cells that stay O(1)
// per event, allocation-free in steady state, and deterministic across
// engines and shard/thread counts.
//
// Layering note: this header is engine-facing and therefore HEADER-ONLY in
// namespace cg - the engines (cg_sim / cg_runtime headers) and the harness
// (cg_harness) cannot link cg_obs (cg_obs links cg_harness), but every
// target shares the src/ include root.  Only the JSON/report surface lives
// in telemetry.cpp (cg_obs, namespace cg::obs).
//
// Determinism contract (tested in test_telemetry.cpp): the coloring-latency
// and inbox-depth histograms, the counters, and the retransmit histogram
// depend only on the per-step event MULTISET, which the engine parity suite
// already guarantees identical across the stepped / async / parallel /
// sharded engines at any shard or thread count.  Merging per-shard cells is
// commutative bucket-count addition, so the partition into cells is
// invisible in the merged result.  The per-window boundary-traffic
// histogram is the deliberate exception: boundary traffic is a property of
// the shard layout itself, so it is excluded from invariant_fingerprint().
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/core/profile.hpp"
#include "sim/metrics.hpp"

namespace cg {

/// Fixed-bucket log-scale histogram (HDR-style) for non-negative integer
/// values.  Values 0..31 get exact linear buckets; from 32 up, each octave
/// [2^m, 2^(m+1)) is split into 4 sub-buckets, bounding the relative
/// quantile error at 25%.  Octaves cover m = 5..40 (values < 2^41); larger
/// values land in one overflow bucket.  Everything is plain int64 counts,
/// so merge() is commutative addition and the result is independent of how
/// recording was partitioned across shards or interleaved in time.
class LogHistogram {
 public:
  static constexpr int kLinear = 32;     ///< exact buckets for 0..31
  static constexpr int kSub = 4;         ///< sub-buckets per octave
  static constexpr int kFirstOctave = 5; ///< first binary octave (2^5 = 32)
  static constexpr int kOctaves = 36;    ///< octaves 5..40
  static constexpr int kBuckets = kLinear + kOctaves * kSub + 1;  // 177

  static constexpr int bucket_of(std::int64_t v) {
    if (v < 0) v = 0;
    if (v < kLinear) return static_cast<int>(v);
    const int msb =
        63 - std::countl_zero(static_cast<std::uint64_t>(v));
    if (msb >= kFirstOctave + kOctaves) return kBuckets - 1;  // overflow
    const int sub = static_cast<int>((v >> (msb - 2)) & 3);
    return kLinear + (msb - kFirstOctave) * kSub + sub;
  }

  /// Inclusive lower bound of bucket b's value range.
  static constexpr std::int64_t bucket_lo(int b) {
    if (b < kLinear) return b;
    if (b >= kBuckets - 1)
      return std::int64_t{1} << (kFirstOctave + kOctaves);
    const int oct = (b - kLinear) / kSub;
    const int sub = (b - kLinear) % kSub;
    const int msb = kFirstOctave + oct;
    return (std::int64_t{1} << msb) +
           (static_cast<std::int64_t>(sub) << (msb - 2));
  }

  /// Exclusive upper bound of bucket b's value range.
  static constexpr std::int64_t bucket_hi(int b) {
    return b + 1 < kBuckets ? bucket_lo(b + 1)
                            : std::numeric_limits<std::int64_t>::max();
  }

  void record(std::int64_t v) {
    ++counts_[bucket_of(v)];
    ++count_;
    sum_ += v < 0 ? 0 : v;
  }

  void merge(const LogHistogram& o) {
    for (int b = 0; b < kBuckets; ++b) counts_[b] += o.counts_[b];
    count_ += o.count_;
    sum_ += o.sum_;
  }

  void clear() {
    counts_.fill(0);
    count_ = 0;
    sum_ = 0;
  }

  std::int64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / count_ : 0.0;
  }
  std::int64_t bucket_count(int b) const { return counts_[b]; }

  /// Lower bound of the bucket holding the q-quantile (q in [0,1]);
  /// deterministic because it is computed from counts alone.  0 when empty.
  std::int64_t quantile(double q) const {
    if (count_ == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    const std::int64_t rank =
        static_cast<std::int64_t>(q * static_cast<double>(count_ - 1));
    std::int64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts_[b];
      if (seen > rank) return bucket_lo(b);
    }
    return bucket_lo(kBuckets - 1);
  }

  /// Lower bound of the highest non-empty bucket; 0 when empty.
  std::int64_t max_bound() const {
    for (int b = kBuckets - 1; b >= 0; --b)
      if (counts_[b] > 0) return bucket_lo(b);
    return 0;
  }

  friend bool operator==(const LogHistogram& a, const LogHistogram& b) {
    return a.count_ == b.count_ && a.sum_ == b.sum_ &&
           a.counts_ == b.counts_;
  }

 private:
  std::array<std::int64_t, kBuckets> counts_{};
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
};

/// One per worker/shard.  Plain (non-atomic) fields: each engine hands
/// every cell to exactly one worker, and cells are merged single-threaded
/// at run end.  64-aligned so adjacent cells never share a cache line.
struct alignas(64) TelemetryCell {
  LogHistogram coloring_latency;  ///< step at which each node got colored
  LogHistogram inbox_depth;       ///< deliveries per (node, step) pair
  LogHistogram window_boundary;   ///< boundary msgs per (shard, window);
                                  ///< sharded engine only, layout-dependent
  /// Derived, not hot-path-maintained: colorings = coloring_latency.count()
  /// and deliveries = inbox_depth.sum() (each histogram sample is one
  /// (node, step) group of that many deliveries).  Telemetry::finish_run()
  /// fills them in so the hot path writes histograms only.
  std::int64_t colorings = 0;
  std::int64_t deliveries = 0;

  void clear() {
    coloring_latency.clear();
    inbox_depth.clear();
    window_boundary.clear();
    colorings = 0;
    deliveries = 0;
  }

  void merge_into(TelemetryCell& dst) const {
    dst.coloring_latency.merge(coloring_latency);
    dst.inbox_depth.merge(inbox_depth);
    dst.window_boundary.merge(window_boundary);
    dst.colorings += colorings;
    dst.deliveries += deliveries;
  }
};

/// Attach via RunConfig::telemetry.  The engine calls attach() at run
/// start, the per-event hooks from its workers (cell index = worker/shard;
/// node ownership keeps the stamp/pend arrays race-free), and finish_run()
/// single-threaded after metrics are final.  Results accumulate across
/// runs in merged(); capacity is kept across runs so steady-state trials
/// allocate nothing (tested by the counting-allocator guard).
class Telemetry {
 public:
  /// Size per-run state.  Grows capacity only when needed; never shrinks.
  void attach(NodeId n, int cells) {
    CG_CHECK_MSG(cells >= 1, "telemetry needs at least one cell");
    if (static_cast<int>(cells_.size()) < cells) cells_.resize(cells);
    const auto nn = static_cast<std::size_t>(n);
    if (marks_.size() < nn) marks_.resize(nn, Mark{-1, 0});
    live_cells_ = cells;
  }

  // --- hot path (engines call these behind `if (cfg.telemetry)`) ---

  void record_colored(int cell, Step step) {
    cells_[static_cast<std::size_t>(cell)].coloring_latency.record(step);
  }

  /// Per-node inbox depth: consecutive deliveries to `node` at the same
  /// step accumulate; a delivery at a later step flushes the previous
  /// (node, step) count as one histogram sample.  Engines deliver to each
  /// node at non-decreasing steps, so grouping is exact.  The (stamp,
  /// count) pair is packed into one 8-byte mark so the hot path touches a
  /// single extra cache line per delivery - at 1M nodes the marks array is
  /// the only randomly-indexed telemetry state, and this packing is what
  /// keeps the telemetry-on overhead inside the <=5% contract.
  void record_delivery(int cell, NodeId node, Step step) {
    Mark& mk = marks_[static_cast<std::size_t>(node)];
    // Steps fit in 31 bits: effective_max_steps() is linear in n and
    // NodeId is 32-bit, so truncation never aliases in practice.
    const auto s32 = static_cast<std::int32_t>(step);
    if (mk.stamp == s32) {  // common case: only the mark's line is touched
      ++mk.pend;
      return;
    }
    if (mk.stamp >= 0)
      cells_[static_cast<std::size_t>(cell)].inbox_depth.record(mk.pend);
    mk.stamp = s32;
    mk.pend = 1;
  }

  void record_window_boundary(int cell, std::int64_t msgs) {
    cells_[static_cast<std::size_t>(cell)].window_boundary.record(msgs);
  }

  // --- run end (single-threaded) ---

  /// Flush pending inbox-depth samples, fold per-cell state into the
  /// accumulated totals, and record run-level values from the metrics.
  void finish_run(const RunMetrics& m) {
    for (auto& mk : marks_) {
      if (mk.stamp >= 0) {
        cells_[0].inbox_depth.record(mk.pend);
        mk.stamp = -1;
      }
    }
    for (int c = 0; c < live_cells_; ++c) {
      TelemetryCell& cell = cells_[static_cast<std::size_t>(c)];
      cell.colorings = cell.coloring_latency.count();
      cell.deliveries = cell.inbox_depth.sum();
      cell.merge_into(total_);
      cell.clear();
    }
    retransmits_.record(m.msgs_retrans);
    ++runs_;
  }

  // --- results ---

  /// Totals accumulated over every finished run.
  const TelemetryCell& merged() const { return total_; }
  /// One sample per finished run: that run's retransmitted-message count.
  const LogHistogram& retransmits() const { return retransmits_; }
  std::int64_t runs() const { return runs_; }

  /// Drop accumulated results; keeps capacity.
  void reset() {
    total_.clear();
    retransmits_.clear();
    runs_ = 0;
    for (auto& c : cells_) c.clear();
    for (auto& mk : marks_) mk.stamp = -1;
  }

  /// Byte-stable digest of the engine-invariant slice (counters plus the
  /// coloring-latency / inbox-depth / retransmit histograms; the
  /// window-boundary histogram is layout-dependent and excluded).  Equal
  /// strings <=> equal invariant telemetry; used by the determinism tests.
  std::string invariant_fingerprint() const {
    std::string out;
    char buf[64];
    auto put = [&](const char* name, std::int64_t v) {
      std::snprintf(buf, sizeof buf, "%s=%lld;", name,
                    static_cast<long long>(v));
      out += buf;
    };
    put("runs", runs_);
    put("colorings", total_.colorings);
    put("deliveries", total_.deliveries);
    auto put_hist = [&](const char* name, const LogHistogram& h) {
      put(name, h.count());
      for (int b = 0; b < LogHistogram::kBuckets; ++b) {
        if (h.bucket_count(b) == 0) continue;
        std::snprintf(buf, sizeof buf, "%d:%lld,", b,
                      static_cast<long long>(h.bucket_count(b)));
        out += buf;
      }
      out += ';';
    };
    put_hist("coloring_latency", total_.coloring_latency);
    put_hist("inbox_depth", total_.inbox_depth);
    put_hist("retransmits", retransmits_);
    return out;
  }

 private:
  /// Per-node inbox-grouping state, packed to one 8-byte slot.
  struct Mark {
    std::int32_t stamp;  ///< last delivery step (-1 = none pending)
    std::int32_t pend;   ///< deliveries seen at that step
  };

  std::vector<TelemetryCell> cells_;
  std::vector<Mark> marks_;
  TelemetryCell total_;
  LogHistogram retransmits_;
  std::int64_t runs_ = 0;
  int live_cells_ = 0;
};

/// Progress/heartbeat channel: single-line JSON on a configurable
/// interval, so multi-minute 1M-node runs and 500-trial campaigns are not
/// silent.  Thread-safe; beat() is one relaxed atomic load plus a clock
/// read when not due, so it is safe to call once per trial or once per
/// simulated step.  Attach via RunConfig::heartbeat (engines report
/// steps/max_steps) or TrialSpec/CampaignConfig::heartbeat (farm and
/// campaign report trials done / failures).
class Heartbeat {
 public:
  /// `out` is not owned (typically stderr); interval_s <= 0 emits every
  /// beat.  `label` names the channel in the JSON ("trials", "campaign",
  /// "engine", ...).
  Heartbeat(std::FILE* out, double interval_s, const char* label)
      : out_(out), interval_(interval_s), label_(label),
        start_(std::chrono::steady_clock::now()) {}

  /// Emit at most once per interval.  `done`/`total` are progress units
  /// (trials, steps); total <= 0 means unknown (eta omitted as 0).
  void beat(std::int64_t done, std::int64_t total, std::int64_t failures) {
    if (out_ == nullptr) return;
    const double t = elapsed_s();
    if (t < next_due_s_.load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (t < next_due_s_.load(std::memory_order_relaxed)) return;
    emit(done, total, failures, t);
    next_due_s_.store(t + (interval_ > 0 ? interval_ : 0),
                      std::memory_order_relaxed);
  }

  /// Unconditional emit (final summary line).
  void force(std::int64_t done, std::int64_t total, std::int64_t failures) {
    if (out_ == nullptr) return;
    std::lock_guard<std::mutex> lock(mu_);
    emit(done, total, failures, elapsed_s());
  }

  std::int64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }

 private:
  double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void emit(std::int64_t done, std::int64_t total, std::int64_t failures,
            double t) {
    const double eta =
        (total > 0 && done > 0 && done < total)
            ? t / static_cast<double>(done) *
                  static_cast<double>(total - done)
            : 0.0;
    std::fprintf(
        out_,
        "{\"heartbeat\":\"%s\",\"done\":%lld,\"total\":%lld,"
        "\"failures\":%lld,\"elapsed_s\":%.3f,\"eta_s\":%.3f,"
        "\"rss_mb\":%.1f,\"peak_rss_mb\":%.1f}\n",
        label_, static_cast<long long>(done), static_cast<long long>(total),
        static_cast<long long>(failures), t, eta,
        static_cast<double>(current_rss_bytes()) / (1024.0 * 1024.0),
        static_cast<double>(current_peak_rss_bytes()) / (1024.0 * 1024.0));
    std::fflush(out_);
    emitted_.fetch_add(1, std::memory_order_relaxed);
  }

  std::FILE* out_;
  double interval_;
  const char* label_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<double> next_due_s_{0.0};
  std::atomic<std::int64_t> emitted_{0};
  std::mutex mu_;
};

}  // namespace cg

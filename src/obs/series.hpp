// Per-step time-series metrics recorded from the engine trace stream, and
// the analytic-drift check that compares an observed coloring trajectory to
// the paper's c(t) recurrence (Lemma 1 / Eq. 1).
//
// StepSeries is a TraceSink, so it plugs into RunConfig::trace on any
// engine (the parallel engine's barrier merge delivers events in step
// order, same as the serial engines).  It turns the event stream into
// per-step vectors:
//   * colored(t)        - cumulative colored-node count at end of step t;
//   * sends by phase    - gossip / correction / SOS / tree emissions;
//   * delivers(t)       - messages processed at step t;
//   * in_flight(t)      - sends so far minus deliveries so far.  A final
//                         residue counts sends that were never processed:
//                         messages lost on the wire (drop_prob > 0) and
//                         messages that reached crashed or already-completed
//                         nodes, which the engines drop silently;
//   * lost(t)           - messages lost on the wire at step t (i.i.d. loss,
//                         burst loss or a partition - the fault timeline);
//   * ring_watermark(t) - distinct nodes that have emitted a ring-
//                         correction message by step t (progress of the
//                         correction wave around the ring).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace_sinks.hpp"
#include "sim/logp.hpp"

namespace cg::obs {

class StepSeries final : public TraceSink {
 public:
  void on_event(const TraceEvent& ev) override;
  /// Drop recorded data; keeps the stride / track-ring configuration.
  void clear();

  /// Decimation for big runs: fold every `k` consecutive steps into one
  /// bucket (the CSV/JSON `step` column becomes the bucket's first step).
  /// Totals and cumulative curves are invariant under any stride; only the
  /// time resolution drops.  compare_to_model() requires stride 1.  Must
  /// be called before recording.
  void set_stride(Step k);
  Step stride() const { return stride_; }

  /// The ring-watermark series is the sink's only O(n)-memory part (one
  /// byte per node).  Disable it for aggregate-only million-node series;
  /// ring_watermark() then reads all zeros.
  void set_track_ring(bool on) { track_ring_ = on; }
  bool track_ring() const { return track_ring_; }

  /// Number of recorded buckets (highest event step / stride + 1).
  Step steps() const { return static_cast<Step>(newly_colored_.size()); }

  // Cumulative / per-step series, each of size steps().
  std::vector<std::int64_t> colored_cumulative() const;
  std::vector<std::int64_t> in_flight() const;
  std::vector<std::int64_t> ring_watermark() const;
  const std::vector<std::int64_t>& newly_colored() const {
    return newly_colored_;
  }
  const std::vector<std::int64_t>& delivers() const { return delivers_; }
  const std::vector<std::int64_t>& lost() const { return lost_; }
  const std::vector<std::int64_t>& sends_total() const { return sends_total_; }
  const std::vector<std::int64_t>& sends(Phase p) const {
    return sends_by_phase_[static_cast<int>(p)];
  }

  /// CSV dump: one row per step, header included.
  std::string to_csv() const;
  /// JSON dump: {"steps": K, "colored": [...], ...}.
  std::string to_json() const;

 private:
  void ensure_step(Step s);

  std::vector<std::int64_t> newly_colored_;
  std::vector<std::int64_t> sends_total_;
  std::vector<std::int64_t> sends_by_phase_[kPhaseCount];
  std::vector<std::int64_t> delivers_;
  std::vector<std::int64_t> lost_;
  std::vector<std::int64_t> new_ring_senders_;
  std::vector<std::uint8_t> ring_seen_;  // indexed by node id
  Step stride_ = 1;
  bool track_ring_ = true;
};

/// Result of overlaying an observed coloring curve on the analytic c(t).
struct DriftReport {
  Step compared_steps = 0;  ///< prefix length both curves cover
  double max_abs = 0;       ///< max |observed - model| over that prefix
  Step max_abs_at = 0;      ///< step where the max occurs
  double max_frac = 0;      ///< max_abs / n_active
  double mean_abs = 0;      ///< mean |observed - model|
};

/// Compare the observed colored(t) trajectory against the analytic
/// recurrence c(t) from src/analysis/coloring.* for the same N / n_active /
/// gossip time T / LogP.  Makes model-vs-simulation divergence a testable
/// signal: a correct GOS simulation stays within sampling noise of c(t).
DriftReport compare_to_model(const StepSeries& series, NodeId N,
                             NodeId n_active, Step T, const LogP& logp);

/// Same check against an externally supplied model curve.
DriftReport compare_to_model(const std::vector<std::int64_t>& observed,
                             const std::vector<double>& model,
                             NodeId n_active);

std::string to_json(const DriftReport& drift);

}  // namespace cg::obs

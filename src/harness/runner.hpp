// Uniform entry point: run one simulated broadcast of any algorithm.
#pragma once

#include <memory>
#include <string_view>

#include "common/types.hpp"
#include "gossip/reliable.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"

namespace cg {

enum class Algo : std::uint8_t {
  kGos,       ///< plain gossip
  kOcg,       ///< opportunistic corrected-gossip
  kCcg,       ///< checked corrected-gossip
  kFcg,       ///< failure-proof corrected-gossip
  kOcgChain,  ///< OCG with chained correction (paper Sec. III-B discussion)
  kBig,       ///< binomial graph (simulated baseline)
  kBfb,       ///< Buntinas restart tree (simulated baseline)
  kOpt,       ///< optimal pipelined broadcast (simulated lower bound)
  kSbrb,      ///< sample-based Byzantine reliable broadcast (gossip/sbrb.hpp)
};

const char* algo_name(Algo a);

/// Per-algorithm knobs (fields are used only by the relevant algorithm).
struct AlgoConfig {
  Step T = 0;              ///< gossip time (GOS/OCG/CCG/FCG/OCG-CHAIN)
  Step ocg_corr_sends = 0; ///< OCG: correction emissions (K_bar + margin);
                           ///< OCG-CHAIN: the K_bar used to size the horizon
  int fcg_f = 1;           ///< FCG resilience parameter
  Step fcg_sos_timeout = 0;    ///< 0 = auto
  bool fcg_sos_enabled = true;
  Step drain_extra = 0;    ///< pad the gossip drain window (OCG/CCG/FCG)
  /// Ack/retransmit hardening of correction/SOS traffic (CCG/FCG only;
  /// see gossip/reliable.hpp).  Off by default.
  ReliableParams reliable;
  /// SBRB: target per-property failure probability eps (samples scale as
  /// ln(n) + ln(1/eps)) and the Byzantine fraction the thresholds margin
  /// against.  Used only by Algo::kSbrb.
  double sbrb_eps = 1e-3;
  double sbrb_byz_frac = 0.15;
};

/// Run one trial; RunConfig supplies N, root, LogP, seed, and failures.
/// Aborts (CG_CHECK) if cg::config_error(rcfg) reports a problem - callers
/// that take user input should surface config_error() themselves first.
RunMetrics run_once(Algo algo, const AlgoConfig& acfg, const RunConfig& rcfg);

/// Which execution engine carries the run.  All four share the simulation
/// core (src/sim/core/) and produce identical metrics for the same
/// RunConfig; they differ in scheduling strategy and wall-clock profile.
enum class EngineKind : std::uint8_t {
  kStepped,   ///< serial step loop (sim/engine.hpp) - the default
  kAsync,     ///< event-driven (sim/async_engine.hpp)
  kParallel,  ///< multi-threaded stepped (runtime/parallel_engine.hpp)
  kSharded,   ///< window-sharded SoA engine (sim/sharded_engine.hpp)
};

const char* engine_name(EngineKind k);

/// Parse an engine name ("stepped", "async", "parallel", "sharded") into
/// `out`.  Returns false (leaving `out` untouched) on an unknown name -
/// drivers share this so every --engine flag accepts the same spellings
/// and fails the same way.
bool engine_from_name(std::string_view name, EngineKind& out);

/// Comma-separated list of accepted engine names, for usage/error text.
const char* engine_names_list();

struct ExecConfig {
  EngineKind engine = EngineKind::kStepped;
  int threads = 1;  ///< kParallel: worker threads; kSharded: shard count
};

/// Run one trial on an explicitly chosen engine.
RunMetrics run_once(Algo algo, const AlgoConfig& acfg, const RunConfig& rcfg,
                    const ExecConfig& exec);

/// Reusable stepped-engine storage for bulk trials.
///
/// run_once constructs a fresh Engine per call - node slab, RNG streams,
/// calendar slots, inboxes - which dominates the cost of short trials.
/// An EngineCache keeps the last engine alive (one per node type; switching
/// algorithms rebuilds it) and re-enters it through Engine::run(cfg,
/// params), so steady-state trials reuse every allocation.  Produces
/// exactly the metrics run_once would for the same inputs.
///
/// One instance per worker thread; a single instance is not thread-safe.
class EngineCache {
 public:
  EngineCache();
  ~EngineCache();
  EngineCache(EngineCache&&) noexcept;
  EngineCache& operator=(EngineCache&&) noexcept;

  /// Stepped-engine equivalent of the free run_once (same CG_CHECK
  /// config-validation behavior).
  RunMetrics run_once(Algo algo, const AlgoConfig& acfg,
                      const RunConfig& rcfg);

  /// Type-erased holder for the cached Engine<Node> (detail).
  struct SlotBase {
    virtual ~SlotBase() = default;
  };

 private:
  std::unique_ptr<SlotBase> slot_;
};

}  // namespace cg

#include "harness/experiment.hpp"

#include <algorithm>
#include <vector>

#include <atomic>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "obs/telemetry.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/fault/burst_loss.hpp"
#include "sim/fault/partition.hpp"
#include "sim/fault/stragglers.hpp"

namespace cg {

void TrialAggregate::absorb(const RunMetrics& m) {
  ++trials;
  if (m.t_last_colored != kNever)
    t_last_colored.add(static_cast<double>(m.t_last_colored));
  if (m.t_last_colored_partial != kNever)
    t_last_colored_partial.add(static_cast<double>(m.t_last_colored_partial));
  if (m.t_complete != kNever)
    t_complete.add(static_cast<double>(m.t_complete));
  if (m.t_root_complete != kNever)
    t_root_complete.add(static_cast<double>(m.t_root_complete));
  work.add(static_cast<double>(m.msgs_total));
  work_gossip.add(static_cast<double>(m.msgs_gossip));
  work_correction.add(static_cast<double>(m.msgs_correction));
  work_retrans.add(static_cast<double>(m.msgs_retrans));
  inconsistency.add(m.inconsistency());
  if (m.all_active_colored) ++all_colored_trials;
  if (m.all_active_delivered) ++all_delivered_trials;
  if (m.sos_triggered) {
    ++sos_trials;
    if (!m.all_active_delivered) ++sos_incomplete_trials;
  }
  if (!m.all_or_nothing_delivery()) ++all_or_nothing_violations;
  if (m.hit_max_steps) ++hit_max_steps_trials;
  bfb_restarts_total += m.bfb_restarts;
  msgs_dropped_total += m.msgs_dropped;
  if (!m.consistent_delivery) ++consistency_violations;
  if (m.n_delivered_forged > 0) ++forged_delivery_trials;
  msgs_equivocated_total += m.msgs_equivocated;
  msgs_forged_total += m.msgs_forged;
  msgs_suppressed_total += m.msgs_suppressed;
}

void TrialAggregate::merge(const TrialAggregate& o) {
  trials += o.trials;
  t_last_colored.merge(o.t_last_colored);
  t_last_colored_partial.merge(o.t_last_colored_partial);
  t_complete.merge(o.t_complete);
  t_root_complete.merge(o.t_root_complete);
  work.merge(o.work);
  work_gossip.merge(o.work_gossip);
  work_correction.merge(o.work_correction);
  work_retrans.merge(o.work_retrans);
  inconsistency.merge(o.inconsistency);
  all_colored_trials += o.all_colored_trials;
  all_delivered_trials += o.all_delivered_trials;
  sos_trials += o.sos_trials;
  all_or_nothing_violations += o.all_or_nothing_violations;
  sos_incomplete_trials += o.sos_incomplete_trials;
  hit_max_steps_trials += o.hit_max_steps_trials;
  bfb_restarts_total += o.bfb_restarts_total;
  msgs_dropped_total += o.msgs_dropped_total;
  consistency_violations += o.consistency_violations;
  forged_delivery_trials += o.forged_delivery_trials;
  msgs_equivocated_total += o.msgs_equivocated_total;
  msgs_forged_total += o.msgs_forged_total;
  msgs_suppressed_total += o.msgs_suppressed_total;
}

void trial_run_config_into(const TrialSpec& spec, int trial, RunConfig& out) {
  RunConfig& rcfg = out;
  // Reset every field a previous trial could have touched; the vectors
  // keep their capacity (the clean path never refills them, so the reused
  // config performs no heap allocation at all).
  rcfg.n = spec.n;
  rcfg.root = spec.root;
  rcfg.logp = spec.logp;
  rcfg.rx = spec.rx;
  rcfg.jitter_max = spec.jitter_max;
  rcfg.drop_prob = spec.drop_prob;
  rcfg.seed = derive_seed(spec.seed, static_cast<std::uint64_t>(trial) * 2 + 1);
  rcfg.max_steps = spec.max_steps;
  rcfg.record_node_detail = false;
  rcfg.trace = nullptr;
  rcfg.profile = nullptr;
  rcfg.telemetry = nullptr;
  rcfg.heartbeat = nullptr;
  rcfg.link_extra = nullptr;
  rcfg.link_extra_max = 0;
  rcfg.burst = BurstLoss{};
  rcfg.failures.pre_failed.clear();
  rcfg.failures.online.clear();
  rcfg.failures.restarts.clear();
  rcfg.stragglers.clear();
  rcfg.partitions.clear();
  rcfg.byzantine.nodes.clear();
  if (spec.burst_loss > 0)
    rcfg.burst = BurstLoss::from_rate(spec.burst_loss, spec.burst_mean);

  Step horizon = spec.online_horizon;
  if (horizon <= 0) horizon = spec.acfg.T + 4 * spec.logp.delivery_delay() + 32;

  // One failure RNG stream per trial; draws happen in a fixed order
  // (failures, restarts, stragglers, partition) so adding a later fault
  // class never perturbs an earlier one's schedule for the same seed.
  const bool wants_rng = spec.pre_failures > 0 || spec.online_failures > 0 ||
                         spec.restarts > 0 || spec.stragglers > 0 ||
                         spec.partition_nodes > 0 || spec.byz_count > 0;
  if (wants_rng) {
    Xoshiro256 frng(
        derive_seed(spec.seed, static_cast<std::uint64_t>(trial) * 2 + 2));
    if (spec.pre_failures > 0 || spec.online_failures > 0) {
      rcfg.failures = FailureSchedule::random(
          spec.n, spec.pre_failures, spec.online_failures, horizon, frng,
          spec.root, spec.root_can_fail);
    }
    if (spec.restarts > 0) {
      Step outage = spec.restart_outage;
      if (outage <= 0) outage = 2 * spec.logp.delivery_delay() + 4;
      rcfg.failures.add_random_restarts(spec.n, spec.restarts, horizon, outage,
                                        frng, spec.root);
    }
    if (spec.stragglers > 0) {
      rcfg.stragglers = random_stragglers(spec.n, spec.stragglers,
                                          spec.straggler_factor, frng,
                                          spec.root);
    }
    if (spec.partition_nodes > 0) {
      Step from = spec.partition_from;
      Step until = spec.partition_until;
      if (until <= from) {  // auto window: second half of the gossip phase
        from = spec.acfg.T / 2;
        until = from + std::max<Step>(horizon / 4, 1);
      }
      rcfg.partitions.push_back(random_partition(
          spec.n, spec.partition_nodes, from, until, frng, spec.root));
    }
    if (spec.byz_count > 0) {
      // Rejection-sample against the crash/restart sets so the validated
      // disjointness invariant holds by construction (validate.cpp rejects
      // overlap).  Drawn LAST so byz-free specs replay identically.
      const auto taken = [&rcfg](NodeId i) {
        for (const NodeId p : rcfg.failures.pre_failed)
          if (p == i) return true;
        for (const auto& of : rcfg.failures.online)
          if (of.node == i) return true;
        for (const auto& r : rcfg.failures.restarts)
          if (r.node == i) return true;
        for (const auto& b : rcfg.byzantine.nodes)
          if (b.node == i) return true;
        return false;
      };
      if (spec.byz_include_root && !taken(spec.root))
        rcfg.byzantine.nodes.push_back({spec.root, spec.byz_mode});
      const std::int64_t max_tries = 64 * static_cast<std::int64_t>(spec.n);
      for (std::int64_t tries = 0;
           static_cast<int>(rcfg.byzantine.nodes.size()) < spec.byz_count &&
           tries < max_tries;
           ++tries) {
        const NodeId c = frng.bounded(spec.n);
        if (c == spec.root || taken(c)) continue;
        rcfg.byzantine.nodes.push_back({c, spec.byz_mode});
      }
    }
  }
}

RunConfig trial_run_config(const TrialSpec& spec, int trial) {
  RunConfig rcfg;
  trial_run_config_into(spec, trial, rcfg);
  return rcfg;
}

// ---------------------------------------------------------------------------
// TrialWorkspace
// ---------------------------------------------------------------------------

struct TrialWorkspace::Impl {
  RunConfig rcfg;     // reused: vectors keep their capacity across trials
  EngineCache cache;  // reused: engine slabs keep their capacity too
};

TrialWorkspace::TrialWorkspace() : impl_(std::make_unique<Impl>()) {}
TrialWorkspace::~TrialWorkspace() = default;
TrialWorkspace::TrialWorkspace(TrialWorkspace&&) noexcept = default;
TrialWorkspace& TrialWorkspace::operator=(TrialWorkspace&&) noexcept = default;

RunMetrics TrialWorkspace::run(const TrialSpec& spec, int trial) {
  return run(spec, trial, nullptr);
}

RunMetrics TrialWorkspace::run(const TrialSpec& spec, int trial,
                               TraceSink* trace) {
  trial_run_config_into(spec, trial, impl_->rcfg);
  impl_->rcfg.trace = trace;
  // The zero-alloc reuse path exists only for the stepped engine; other
  // engines run fresh (their trial cost is dominated by the run itself).
  if (spec.exec.engine != EngineKind::kStepped)
    return run_once(spec.algo, spec.acfg, impl_->rcfg, spec.exec);
  return impl_->cache.run_once(spec.algo, spec.acfg, impl_->rcfg);
}

// ---------------------------------------------------------------------------
// run_trials
// ---------------------------------------------------------------------------

namespace {

// Chunk size for the pool: small enough that ~8 chunks per participant
// keep the tail balanced when trial durations vary, large enough to
// amortize the claim (one relaxed fetch_add per chunk).
std::int64_t farm_chunk(int trials, int threads) {
  return std::clamp<std::int64_t>(trials / (8 * threads), 1, 64);
}

}  // namespace

TrialAggregate run_trials(const TrialSpec& spec) {
  CG_CHECK(spec.trials >= 1);
  const int threads = std::min(resolve_threads(spec.threads), spec.trials);
  TrialAggregate agg;
  if (threads <= 1) {
    TrialWorkspace ws;
    std::int64_t failures = 0;
    for (int t = 0; t < spec.trials; ++t) {
      const RunMetrics m = ws.run(spec, t);
      if (m.hit_max_steps) ++failures;
      agg.absorb(m);
      if (spec.heartbeat != nullptr)
        spec.heartbeat->beat(t + 1, spec.trials, failures);
    }
    return agg;
  }

  // Workers write results into per-trial slots; the reduction below runs
  // in trial order, so the aggregate is byte-identical to the serial path
  // no matter how the pool interleaved the work.
  std::vector<RunMetrics> results(static_cast<std::size_t>(spec.trials));
  std::vector<TrialWorkspace> ws(static_cast<std::size_t>(threads));
  std::atomic<std::int64_t> done{0};
  std::atomic<std::int64_t> failed{0};
  ThreadPool::global(threads).parallel_for(
      spec.trials, farm_chunk(spec.trials, threads), threads,
      [&](std::int64_t begin, std::int64_t end, int slot) {
        auto& w = ws[static_cast<std::size_t>(slot)];
        for (std::int64_t t = begin; t < end; ++t) {
          const RunMetrics& m = results[static_cast<std::size_t>(t)] =
              w.run(spec, static_cast<int>(t));
          if (spec.heartbeat != nullptr) {
            if (m.hit_max_steps)
              failed.fetch_add(1, std::memory_order_relaxed);
            spec.heartbeat->beat(
                done.fetch_add(1, std::memory_order_relaxed) + 1, spec.trials,
                failed.load(std::memory_order_relaxed));
          }
        }
      });
  for (const auto& m : results) agg.absorb(m);
  return agg;
}

}  // namespace cg

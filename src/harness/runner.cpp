#include "harness/runner.hpp"

#include <optional>
#include <string>

#include "baselines/bfb.hpp"
#include "baselines/big.hpp"
#include "baselines/opt_tree.hpp"
#include "common/check.hpp"
#include "gossip/ccg.hpp"
#include "gossip/fcg.hpp"
#include "gossip/gos.hpp"
#include "gossip/ocg.hpp"
#include "gossip/ocg_chain.hpp"
#include "gossip/sbrb.hpp"
#include "runtime/parallel_engine.hpp"
#include "sim/async_engine.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/fault/validate.hpp"

namespace cg {

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kGos: return "GOS";
    case Algo::kOcg: return "OCG";
    case Algo::kCcg: return "CCG";
    case Algo::kFcg: return "FCG";
    case Algo::kOcgChain: return "OCG-CHAIN";
    case Algo::kBig: return "BIG";
    case Algo::kBfb: return "BFB";
    case Algo::kOpt: return "opt";
    case Algo::kSbrb: return "SBRB";
  }
  return "?";
}

const char* engine_name(EngineKind k) {
  switch (k) {
    case EngineKind::kStepped: return "stepped";
    case EngineKind::kAsync: return "async";
    case EngineKind::kParallel: return "parallel";
    case EngineKind::kSharded: return "sharded";
  }
  return "?";
}

bool engine_from_name(std::string_view name, EngineKind& out) {
  for (EngineKind k : {EngineKind::kStepped, EngineKind::kAsync,
                       EngineKind::kParallel, EngineKind::kSharded}) {
    if (name == engine_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

const char* engine_names_list() { return "stepped, async, parallel, sharded"; }

namespace {

// Build Node::Params for `algo` and hand <Node, params> to the runner
// functor (the one place the algo -> node-type mapping lives; shared by
// run_once and EngineCache).
template <class Runner>
RunMetrics dispatch_algo(Runner&& r, Algo algo, const AlgoConfig& acfg,
                         const RunConfig& rcfg) {
  switch (algo) {
    case Algo::kGos:
      return r.template run<GosNode>(GosNode::Params{acfg.T});
    case Algo::kOcg: {
      CG_CHECK_MSG(acfg.ocg_corr_sends > 0, "OCG needs ocg_corr_sends");
      OcgNode::Params params;
      params.T = acfg.T;
      params.corr_sends = acfg.ocg_corr_sends;
      params.drain_extra = acfg.drain_extra;
      return r.template run<OcgNode>(params);
    }
    case Algo::kCcg: {
      CcgNode::Params params;
      params.T = acfg.T;
      params.drain_extra = acfg.drain_extra;
      params.reliable = acfg.reliable;
      return r.template run<CcgNode>(params);
    }
    case Algo::kFcg: {
      FcgNode::Params params;
      params.T = acfg.T;
      params.f = acfg.fcg_f;
      params.drain_extra = acfg.drain_extra;
      params.sos_timeout = acfg.fcg_sos_timeout;
      params.sos_enabled = acfg.fcg_sos_enabled;
      params.reliable = acfg.reliable;
      return r.template run<FcgNode>(params);
    }
    case Algo::kOcgChain: {
      CG_CHECK_MSG(acfg.ocg_corr_sends > 0, "OCG-CHAIN needs a K_bar");
      OcgChainNode::Params params;
      params.T = acfg.T;
      params.horizon = OcgChainNode::chain_horizon(
          acfg.T, static_cast<int>(acfg.ocg_corr_sends), rcfg.logp);
      return r.template run<OcgChainNode>(params);
    }
    case Algo::kBig:
      return r.template run<BigNode>(BigNode::Params{});
    case Algo::kBfb: {
      BfbNode::Params params;
      params.shared = BfbShared::make(rcfg.n, rcfg.root, rcfg.failures);
      params.quiet_period = 16 * rcfg.logp.delivery_delay() + 32;
      return r.template run<BfbNode>(params);
    }
    case Algo::kOpt: {
      OptNode::Params params;
      params.schedule = OptSchedule::build(rcfg.n, rcfg.logp);
      return r.template run<OptNode>(params);
    }
    case Algo::kSbrb: {
      SbrbNode::Params params;
      params.s = sbrb_samples(rcfg.n, acfg.sbrb_eps, acfg.sbrb_byz_frac);
      params.deadline = sbrb_deadline(params.s, rcfg.logp);
      return r.template run<SbrbNode>(params);
    }
  }
  CG_CHECK_MSG(false, "unknown algorithm");
  return {};
}

struct FreshEngineRunner {
  const RunConfig& rcfg;
  const ExecConfig& exec;

  template <class Node>
  RunMetrics run(typename Node::Params params) const {
    switch (exec.engine) {
      case EngineKind::kStepped: {
        Engine<Node> eng(rcfg, std::move(params));
        return eng.run();
      }
      case EngineKind::kAsync: {
        AsyncEngine<Node> eng(rcfg, std::move(params));
        return eng.run();
      }
      case EngineKind::kParallel: {
        ParallelEngine<Node> eng(rcfg, std::move(params), exec.threads);
        return eng.run();
      }
      case EngineKind::kSharded: {
        ShardedEngine<Node> eng(rcfg, std::move(params), exec.threads);
        return eng.run();
      }
    }
    CG_CHECK_MSG(false, "unknown engine");
    return {};
  }
};

void check_config(const RunConfig& rcfg) {
  const std::string cfg_err = config_error(rcfg);
  CG_CHECK_MSG(cfg_err.empty(), cfg_err.c_str());
}

}  // namespace

RunMetrics run_once(Algo algo, const AlgoConfig& acfg, const RunConfig& rcfg,
                    const ExecConfig& exec) {
  check_config(rcfg);
  return dispatch_algo(FreshEngineRunner{rcfg, exec}, algo, acfg, rcfg);
}

RunMetrics run_once(Algo algo, const AlgoConfig& acfg, const RunConfig& rcfg) {
  return run_once(algo, acfg, rcfg, ExecConfig{});
}

// ---------------------------------------------------------------------------
// EngineCache
// ---------------------------------------------------------------------------

namespace {

template <class Node>
struct EngineSlot final : EngineCache::SlotBase {
  // optional: Engine has no default construction; emplaced on first use.
  std::optional<Engine<Node>> eng;
};

struct CachedEngineRunner {
  std::unique_ptr<EngineCache::SlotBase>& slot;
  const RunConfig& rcfg;

  template <class Node>
  RunMetrics run(typename Node::Params params) const {
    auto* s = dynamic_cast<EngineSlot<Node>*>(slot.get());
    if (s == nullptr) {  // first use, or the cached node type changed
      auto fresh = std::make_unique<EngineSlot<Node>>();
      s = fresh.get();
      slot = std::move(fresh);
    }
    if (!s->eng) {
      s->eng.emplace(rcfg, std::move(params));
      return s->eng->run();
    }
    return s->eng->run(rcfg, params);
  }
};

}  // namespace

EngineCache::EngineCache() = default;
EngineCache::~EngineCache() = default;
EngineCache::EngineCache(EngineCache&&) noexcept = default;
EngineCache& EngineCache::operator=(EngineCache&&) noexcept = default;

RunMetrics EngineCache::run_once(Algo algo, const AlgoConfig& acfg,
                                 const RunConfig& rcfg) {
  check_config(rcfg);
  return dispatch_algo(CachedEngineRunner{slot_, rcfg}, algo, acfg, rcfg);
}

}  // namespace cg

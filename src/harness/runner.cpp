#include "harness/runner.hpp"

#include "baselines/bfb.hpp"
#include "baselines/big.hpp"
#include "baselines/opt_tree.hpp"
#include "common/check.hpp"
#include "gossip/ccg.hpp"
#include "gossip/fcg.hpp"
#include "gossip/gos.hpp"
#include "gossip/ocg.hpp"
#include "gossip/ocg_chain.hpp"

namespace cg {

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kGos: return "GOS";
    case Algo::kOcg: return "OCG";
    case Algo::kCcg: return "CCG";
    case Algo::kFcg: return "FCG";
    case Algo::kOcgChain: return "OCG-CHAIN";
    case Algo::kBig: return "BIG";
    case Algo::kBfb: return "BFB";
    case Algo::kOpt: return "opt";
  }
  return "?";
}

RunMetrics run_once(Algo algo, const AlgoConfig& acfg, const RunConfig& rcfg) {
  switch (algo) {
    case Algo::kGos: {
      Engine<GosNode> eng(rcfg, GosNode::Params{acfg.T});
      return eng.run();
    }
    case Algo::kOcg: {
      CG_CHECK_MSG(acfg.ocg_corr_sends > 0, "OCG needs ocg_corr_sends");
      OcgNode::Params params;
      params.T = acfg.T;
      params.corr_sends = acfg.ocg_corr_sends;
      params.drain_extra = acfg.drain_extra;
      Engine<OcgNode> eng(rcfg, params);
      return eng.run();
    }
    case Algo::kCcg: {
      CcgNode::Params params;
      params.T = acfg.T;
      params.drain_extra = acfg.drain_extra;
      Engine<CcgNode> eng(rcfg, params);
      return eng.run();
    }
    case Algo::kFcg: {
      FcgNode::Params params;
      params.T = acfg.T;
      params.f = acfg.fcg_f;
      params.drain_extra = acfg.drain_extra;
      params.sos_timeout = acfg.fcg_sos_timeout;
      params.sos_enabled = acfg.fcg_sos_enabled;
      Engine<FcgNode> eng(rcfg, params);
      return eng.run();
    }
    case Algo::kOcgChain: {
      CG_CHECK_MSG(acfg.ocg_corr_sends > 0, "OCG-CHAIN needs a K_bar");
      OcgChainNode::Params params;
      params.T = acfg.T;
      params.horizon = OcgChainNode::chain_horizon(
          acfg.T, static_cast<int>(acfg.ocg_corr_sends), rcfg.logp);
      Engine<OcgChainNode> eng(rcfg, params);
      return eng.run();
    }
    case Algo::kBig: {
      Engine<BigNode> eng(rcfg, BigNode::Params{});
      return eng.run();
    }
    case Algo::kBfb: {
      BfbNode::Params params;
      params.shared = BfbShared::make(rcfg.n, rcfg.root, rcfg.failures);
      params.quiet_period = 16 * rcfg.logp.delivery_delay() + 32;
      Engine<BfbNode> eng(rcfg, params);
      return eng.run();
    }
    case Algo::kOpt: {
      OptNode::Params params;
      params.schedule = OptSchedule::build(rcfg.n, rcfg.logp);
      Engine<OptNode> eng(rcfg, params);
      return eng.run();
    }
  }
  CG_CHECK_MSG(false, "unknown algorithm");
  return {};
}

}  // namespace cg

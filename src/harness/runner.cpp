#include "harness/runner.hpp"

#include "baselines/bfb.hpp"
#include "baselines/big.hpp"
#include "baselines/opt_tree.hpp"
#include "common/check.hpp"
#include "gossip/ccg.hpp"
#include "gossip/fcg.hpp"
#include "gossip/gos.hpp"
#include "gossip/ocg.hpp"
#include "gossip/ocg_chain.hpp"
#include "runtime/parallel_engine.hpp"
#include "sim/async_engine.hpp"
#include "sim/fault/validate.hpp"

namespace cg {

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kGos: return "GOS";
    case Algo::kOcg: return "OCG";
    case Algo::kCcg: return "CCG";
    case Algo::kFcg: return "FCG";
    case Algo::kOcgChain: return "OCG-CHAIN";
    case Algo::kBig: return "BIG";
    case Algo::kBfb: return "BFB";
    case Algo::kOpt: return "opt";
  }
  return "?";
}

const char* engine_name(EngineKind k) {
  switch (k) {
    case EngineKind::kStepped: return "stepped";
    case EngineKind::kAsync: return "async";
    case EngineKind::kParallel: return "parallel";
  }
  return "?";
}

namespace {

template <class Node>
RunMetrics run_engine(const RunConfig& rcfg, typename Node::Params params,
                      const ExecConfig& exec) {
  switch (exec.engine) {
    case EngineKind::kStepped: {
      Engine<Node> eng(rcfg, std::move(params));
      return eng.run();
    }
    case EngineKind::kAsync: {
      AsyncEngine<Node> eng(rcfg, std::move(params));
      return eng.run();
    }
    case EngineKind::kParallel: {
      ParallelEngine<Node> eng(rcfg, std::move(params), exec.threads);
      return eng.run();
    }
  }
  CG_CHECK_MSG(false, "unknown engine");
  return {};
}

}  // namespace

RunMetrics run_once(Algo algo, const AlgoConfig& acfg, const RunConfig& rcfg,
                    const ExecConfig& exec) {
  const std::string cfg_err = config_error(rcfg);
  CG_CHECK_MSG(cfg_err.empty(), cfg_err.c_str());
  switch (algo) {
    case Algo::kGos:
      return run_engine<GosNode>(rcfg, GosNode::Params{acfg.T}, exec);
    case Algo::kOcg: {
      CG_CHECK_MSG(acfg.ocg_corr_sends > 0, "OCG needs ocg_corr_sends");
      OcgNode::Params params;
      params.T = acfg.T;
      params.corr_sends = acfg.ocg_corr_sends;
      params.drain_extra = acfg.drain_extra;
      return run_engine<OcgNode>(rcfg, params, exec);
    }
    case Algo::kCcg: {
      CcgNode::Params params;
      params.T = acfg.T;
      params.drain_extra = acfg.drain_extra;
      params.reliable = acfg.reliable;
      return run_engine<CcgNode>(rcfg, params, exec);
    }
    case Algo::kFcg: {
      FcgNode::Params params;
      params.T = acfg.T;
      params.f = acfg.fcg_f;
      params.drain_extra = acfg.drain_extra;
      params.sos_timeout = acfg.fcg_sos_timeout;
      params.sos_enabled = acfg.fcg_sos_enabled;
      params.reliable = acfg.reliable;
      return run_engine<FcgNode>(rcfg, params, exec);
    }
    case Algo::kOcgChain: {
      CG_CHECK_MSG(acfg.ocg_corr_sends > 0, "OCG-CHAIN needs a K_bar");
      OcgChainNode::Params params;
      params.T = acfg.T;
      params.horizon = OcgChainNode::chain_horizon(
          acfg.T, static_cast<int>(acfg.ocg_corr_sends), rcfg.logp);
      return run_engine<OcgChainNode>(rcfg, params, exec);
    }
    case Algo::kBig:
      return run_engine<BigNode>(rcfg, BigNode::Params{}, exec);
    case Algo::kBfb: {
      BfbNode::Params params;
      params.shared = BfbShared::make(rcfg.n, rcfg.root, rcfg.failures);
      params.quiet_period = 16 * rcfg.logp.delivery_delay() + 32;
      return run_engine<BfbNode>(rcfg, params, exec);
    }
    case Algo::kOpt: {
      OptNode::Params params;
      params.schedule = OptSchedule::build(rcfg.n, rcfg.logp);
      return run_engine<OptNode>(rcfg, params, exec);
    }
  }
  CG_CHECK_MSG(false, "unknown algorithm");
  return {};
}

RunMetrics run_once(Algo algo, const AlgoConfig& acfg, const RunConfig& rcfg) {
  return run_once(algo, acfg, rcfg, ExecConfig{});
}

}  // namespace cg

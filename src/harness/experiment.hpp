// Monte-Carlo trial runner: repeats run_once over derived seeds and
// aggregates the metrics the paper reports (latency, work, consistency).
#pragma once

#include <cstdint>
#include <memory>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "harness/runner.hpp"
#include "sim/failure.hpp"
#include "sim/logp.hpp"

namespace cg {

struct TrialSpec {
  Algo algo = Algo::kGos;
  AlgoConfig acfg{};
  NodeId n = 0;
  NodeId root = 0;
  LogP logp{};
  RxPolicy rx = RxPolicy::kDrainAll;
  Step jitter_max = 0;   ///< per-message extra delay 0..jitter_max steps
  double drop_prob = 0;  ///< i.i.d. message loss probability
  std::uint64_t seed = 1;
  int trials = 1000;
  /// Worker threads (trials are embarrassingly parallel); <= 0 = auto
  /// (hardware_concurrency).  The aggregate is byte-identical for every
  /// value - see run_trials.
  int threads = 1;
  /// Execution engine carrying each trial.  Every engine produces
  /// identical RunMetrics, so this only changes the wall-clock profile;
  /// non-stepped engines bypass the EngineCache reuse path (they
  /// construct fresh per trial).
  ExecConfig exec{};
  /// Optional progress channel (obs/telemetry.hpp): run_trials beats it
  /// after every finished trial (the beat itself rate-limits output).
  /// Not owned; never attached to individual runs.
  Heartbeat* heartbeat = nullptr;

  // Failure sampling per trial (fresh schedule each trial).
  int pre_failures = 0;
  int online_failures = 0;
  Step online_horizon = 0;  ///< window for online-failure times
  bool root_can_fail = false;

  // Fault injection, sampled per trial from the same failure RNG stream
  // (see docs/FAULTS.md).  All off by default.
  double burst_loss = 0;     ///< overall Gilbert-Elliott loss rate (0 = off)
  Step burst_mean = 4;       ///< mean burst length in steps (>= 1)
  int restarts = 0;          ///< nodes that crash and later rejoin
  Step restart_outage = 0;   ///< steps down; 0 = auto (~2 delivery delays)
  int stragglers = 0;        ///< nodes with a slowed send path
  Step straggler_factor = 4; ///< delay multiplier for straggler sends
  int partition_nodes = 0;   ///< size of a transient bidirectional partition
  Step partition_from = 0;   ///< partition window [from, until); until<=from
  Step partition_until = 0;  ///<   with partition_nodes>0 = auto window
  Step max_steps = 0;        ///< RunConfig::max_steps override (0 = auto)

  // Byzantine adversaries (sim/fault/byzantine.hpp), sampled per trial
  // from the same failure RNG stream AFTER every crash-era draw (so adding
  // them never perturbs an existing schedule) and kept disjoint from the
  // crash/restart sets.
  int byz_count = 0;  ///< Byzantine nodes per trial (byz_include_root counts
                      ///< the root towards this total)
  ByzMode byz_mode = ByzMode::kEquivocator;
  bool byz_include_root = false;  ///< force the root into the Byzantine set
                                  ///< (the canonical equivocation attack)
};

struct TrialAggregate {
  std::int64_t trials = 0;

  // Timing distributions, in steps (convert with LogP::us).
  Samples t_last_colored;   ///< only trials where all active nodes colored
  Samples t_last_colored_partial;  ///< last coloring among reached nodes
                                   ///< (trials where at least one colored)
  Samples t_complete;       ///< only trials where all colored nodes exited
  Samples t_root_complete;  ///< only trials where the root completed

  SummaryStat work;             ///< msgs_total per trial
  SummaryStat work_gossip;
  SummaryStat work_correction;
  SummaryStat work_retrans;     ///< msgs_retrans per trial (reliable mode)
  SummaryStat inconsistency;    ///< share of active nodes not reached

  std::int64_t all_colored_trials = 0;
  std::int64_t all_delivered_trials = 0;
  std::int64_t sos_trials = 0;
  std::int64_t all_or_nothing_violations = 0;  ///< FCG safety failures
  /// Trials where SOS fired but still not every active node delivered:
  /// the SOS fallback itself was defeated (e.g. the flood was lost).
  std::int64_t sos_incomplete_trials = 0;
  std::int64_t hit_max_steps_trials = 0;
  std::int64_t bfb_restarts_total = 0;
  std::int64_t msgs_dropped_total = 0;  ///< backpressure drops (pull caps)
  /// Byzantine tier: trials where two correct nodes delivered different
  /// payloads (the kConsistent guarantee's violation count) and where any
  /// correct node delivered a forged digest.
  std::int64_t consistency_violations = 0;
  std::int64_t forged_delivery_trials = 0;
  std::int64_t msgs_equivocated_total = 0;
  std::int64_t msgs_forged_total = 0;
  std::int64_t msgs_suppressed_total = 0;

  void absorb(const RunMetrics& m);
  void merge(const TrialAggregate& other);

  /// Convenience: fraction of trials that reached every active node.
  double all_colored_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(all_colored_trials) /
                             static_cast<double>(trials);
  }
};

/// The exact RunConfig trial #`trial` of `spec` executes with (seed and
/// failure schedule included).  Lets callers replay a single trial with
/// extra instrumentation (trace sinks, profiles) attached.
RunConfig trial_run_config(const TrialSpec& spec, int trial);

/// In-place variant: fill `out` (reusing its vectors' capacity) instead of
/// returning a fresh RunConfig.  The trial farm's zero-alloc path.
void trial_run_config_into(const TrialSpec& spec, int trial, RunConfig& out);

/// Per-worker trial executor: owns a reused RunConfig and an EngineCache
/// so consecutive trials reset-and-reuse the engine's slabs instead of
/// reconstructing them.  After warm-up, run() performs zero heap
/// allocations for fault-free specs whose node constructor is
/// allocation-free (GOS/OCG/CCG without the reliable sublayer) - pinned
/// by tests/test_trial_farm.cpp.  Not thread-safe; make one per worker.
class TrialWorkspace {
 public:
  TrialWorkspace();
  ~TrialWorkspace();
  TrialWorkspace(TrialWorkspace&&) noexcept;
  TrialWorkspace& operator=(TrialWorkspace&&) noexcept;

  /// Execute trial #`trial` of `spec`; same result as
  /// run_once(spec.algo, spec.acfg, trial_run_config(spec, trial)).
  RunMetrics run(const TrialSpec& spec, int trial);

  /// Same, with `trace` attached to the trial's RunConfig - the campaign
  /// runner's flight recorder hooks in here.  `trace` may be null.
  RunMetrics run(const TrialSpec& spec, int trial, TraceSink* trace);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Run `spec.trials` independent trials (seeded from spec.seed) on the
/// process-wide ThreadPool (spec.threads participants; <= 0 = auto).
///
/// Determinism contract: per-trial results are written into a slot indexed
/// by trial number and reduced in trial order, so the aggregate - samples,
/// percentiles, every counter - is byte-identical for ANY thread count or
/// pool shape (tests/test_trial_farm.cpp).
TrialAggregate run_trials(const TrialSpec& spec);

}  // namespace cg

// Monte-Carlo trial runner: repeats run_once over derived seeds and
// aggregates the metrics the paper reports (latency, work, consistency).
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "harness/runner.hpp"
#include "sim/failure.hpp"
#include "sim/logp.hpp"

namespace cg {

struct TrialSpec {
  Algo algo = Algo::kGos;
  AlgoConfig acfg{};
  NodeId n = 0;
  NodeId root = 0;
  LogP logp{};
  RxPolicy rx = RxPolicy::kDrainAll;
  Step jitter_max = 0;   ///< per-message extra delay 0..jitter_max steps
  double drop_prob = 0;  ///< i.i.d. message loss probability
  std::uint64_t seed = 1;
  int trials = 1000;
  int threads = 1;  ///< worker threads (trials are embarrassingly parallel)

  // Failure sampling per trial (fresh schedule each trial).
  int pre_failures = 0;
  int online_failures = 0;
  Step online_horizon = 0;  ///< window for online-failure times
  bool root_can_fail = false;
};

struct TrialAggregate {
  std::int64_t trials = 0;

  // Timing distributions, in steps (convert with LogP::us).
  Samples t_last_colored;   ///< only trials where all active nodes colored
  Samples t_last_colored_partial;  ///< last coloring among reached nodes
                                   ///< (trials where at least one colored)
  Samples t_complete;       ///< only trials where all colored nodes exited
  Samples t_root_complete;  ///< only trials where the root completed

  SummaryStat work;             ///< msgs_total per trial
  SummaryStat work_gossip;
  SummaryStat work_correction;
  SummaryStat inconsistency;    ///< share of active nodes not reached

  std::int64_t all_colored_trials = 0;
  std::int64_t all_delivered_trials = 0;
  std::int64_t sos_trials = 0;
  std::int64_t all_or_nothing_violations = 0;  ///< FCG safety failures
  std::int64_t hit_max_steps_trials = 0;
  std::int64_t bfb_restarts_total = 0;

  void absorb(const RunMetrics& m);
  void merge(const TrialAggregate& other);

  /// Convenience: fraction of trials that reached every active node.
  double all_colored_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(all_colored_trials) /
                             static_cast<double>(trials);
  }
};

/// The exact RunConfig trial #`trial` of `spec` executes with (seed and
/// failure schedule included).  Lets callers replay a single trial with
/// extra instrumentation (trace sinks, profiles) attached.
RunConfig trial_run_config(const TrialSpec& spec, int trial);

/// Run `spec.trials` independent trials (seeded from spec.seed).
TrialAggregate run_trials(const TrialSpec& spec);

}  // namespace cg

// Paper scenarios: the tuning pipeline and canned experiment setups behind
// Table 7 and Figures 1, 3, 5, 7 and 9 (see DESIGN.md Section 5).
#pragma once

#include <string>

#include "harness/experiment.hpp"
#include "harness/runner.hpp"

namespace cg {

/// The paper's headline failure budget: eps = 1-(1-0.5)^(1/1e6) = 6.93e-7
/// (50% chance that all 10^6 trials succeed).
double paper_eps();

/// An algorithm with its model-tuned parameters.
struct TunedAlgo {
  Algo algo = Algo::kGos;
  AlgoConfig acfg{};
  Step predicted_latency_steps = 0;  ///< per the respective Eq. (3/4/5)
};

/// Reproduce the paper's tuning pipeline: pick T (and OCG's C) from the
/// analytic models, including the recommended +O margins.  `f` is FCG's
/// resilience parameter.
TunedAlgo tune_for(Algo algo, NodeId N, NodeId n_active, const LogP& logp,
                   double eps, int f = 1);

/// Simulated latency the paper reports for this algorithm (steps):
/// completion for the gossip family, last coloring for BIG/opt,
/// ack-to-root for BFB.  Returns the MEAN of the aggregate.
double reported_latency_steps(Algo algo, const TrialAggregate& agg);

struct ScenarioResult {
  TunedAlgo tuned;
  TrialAggregate agg;
  double lat_us = 0;        ///< simulated (mean)
  double predicted_us = 0;  ///< model prediction
  double work = 0;          ///< mean messages per trial
  double incon = 0;         ///< mean share of active nodes not reached
};

/// Tune and simulate one algorithm at one scale with `pre_failures`
/// initially-failed nodes (the Table 7 / Figure 7 setup).  threads <= 0 =
/// auto (hardware_concurrency); results are thread-count-independent, and
/// engine-independent too (`exec` picks the engine that carries the
/// trials; useful to push the figure sweeps to large N).
ScenarioResult run_scenario(Algo algo, NodeId N, int pre_failures,
                            const LogP& logp, int trials, std::uint64_t seed,
                            double eps, int f = 1, int threads = 0,
                            const ExecConfig& exec = {});

/// Analytic rows for the baselines (exactly the paper's models).
struct ModelRow {
  double lat_us = 0;
  std::int64_t work = 0;
  double incon = 0;
};
ModelRow big_model_row(NodeId N, const LogP& logp);
ModelRow bfb_model_row(NodeId N, int f_hat, const LogP& logp);

}  // namespace cg

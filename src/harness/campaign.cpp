#include "harness/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "runtime/thread_pool.hpp"

namespace cg {

const char* guarantee_name(Guarantee g) {
  switch (g) {
    case Guarantee::kNone: return "none";
    case Guarantee::kAllReached: return "all-reached";
    case Guarantee::kAllOrNothing: return "all-or-nothing";
    case Guarantee::kSosConsistent: return "sos-consistent";
    case Guarantee::kConsistent: return "consistent";
  }
  return "?";
}

bool guarantee_holds(Guarantee g, const TrialAggregate& agg) {
  switch (g) {
    case Guarantee::kNone:
      return true;
    case Guarantee::kAllReached:
      return agg.all_colored_trials == agg.trials;
    case Guarantee::kAllOrNothing:
      return agg.all_or_nothing_violations == 0;
    case Guarantee::kSosConsistent:
      return agg.all_or_nothing_violations == 0 &&
             agg.sos_incomplete_trials == 0;
    case Guarantee::kConsistent:
      return agg.consistency_violations == 0;
  }
  return false;
}

bool trial_violates(Guarantee g, const RunMetrics& m) {
  if (m.hit_max_steps) return true;  // truncated: always forensic-worthy
  switch (g) {
    case Guarantee::kNone:
      return false;
    case Guarantee::kAllReached:
      return !m.all_active_colored;
    case Guarantee::kAllOrNothing:
      return !m.all_or_nothing_delivery();
    case Guarantee::kSosConsistent:
      return !m.all_or_nothing_delivery() ||
             (m.sos_triggered && !m.all_active_delivered);
    case Guarantee::kConsistent:
      return !m.consistent_delivery;
  }
  return false;
}

/// What an entry may still claim in a given environment.  Crash faults void
/// claims the algorithms never made: CCG's consistency assumes no failure
/// during correction, and a restarted node rejoins uncolored (nobody owes
/// it a resend once the sweep has passed), so reach/all-or-nothing
/// predicates degrade to observation-only cells there.
Guarantee campaign_effective_guarantee(Guarantee g, const FaultScenario& sc) {
  // Byzantine senders void every crash-model claim (reach and
  // all-or-nothing assume honest forwarding); only kConsistent - the claim
  // the Byzantine tier exists to test - stays asserted.  It is also immune
  // to the crash rules below: crashes can only suppress deliveries, never
  // split the delivered payload.
  if (sc.byz_count > 0 && g != Guarantee::kConsistent &&
      g != Guarantee::kNone)
    return Guarantee::kNone;
  if (g == Guarantee::kConsistent) return g;
  const bool crashes = sc.online_failures > 0 || sc.restarts > 0;
  if (!crashes || g == Guarantee::kNone) return g;
  if (g == Guarantee::kAllReached) return Guarantee::kNone;
  if (sc.restarts > 0) return Guarantee::kNone;
  return g;  // FCG-style claims survive plain crashes (f is sized below)
}

namespace {

/// Collects flight-recorder dumps across workers.  Dumps are rare
/// (violating trials only) and capped per cell, so a single mutex around
/// the whole dump path costs nothing in the steady state.
class ArtifactSink {
 public:
  ArtifactSink(const CampaignConfig& cfg, const std::vector<CampaignCell>& cells)
      : cfg_(cfg), cells_(cells), dumped_(cells.size(), 0) {}

  /// Called after a violating trial: dump `fr` and remember the artifact.
  void dump(int cell, int trial, std::uint64_t seed,
            const obs::FlightRecorder& fr, const RunMetrics& m) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto c = static_cast<std::size_t>(cell);
    if (dumped_[c] >= cfg_.max_artifacts_per_cell) return;
    FailureArtifact art;
    art.scenario = cells_[c].scenario;
    art.entry = cells_[c].entry;
    art.trial = trial;
    art.seed = seed;
    art.truncated_run = m.hit_max_steps;
    art.path = cfg_.artifacts_dir + "/" + art.scenario + "__" + art.entry +
               "__t" + std::to_string(trial) + ".jsonl";
    obs::FlightRecorder::DumpInfo info;
    std::string rerun = cfg_.rerun_prefix;
    if (!rerun.empty()) rerun += ' ';
    rerun += "--replay=" + art.scenario + "/" + art.entry + "/" +
             std::to_string(trial);
    info.rerun = rerun;
    info.scenario = art.scenario;
    info.entry = art.entry;
    info.trial = trial;
    info.seed = seed;
    info.truncated_run = m.hit_max_steps;
    if (!fr.dump_jsonl(art.path, info)) return;
    ++dumped_[c];
    recs_.push_back({cell, std::move(art)});
  }

  /// Artifacts in deterministic (cell, trial) order.
  std::vector<FailureArtifact> take_sorted() {
    std::sort(recs_.begin(), recs_.end(), [](const Rec& a, const Rec& b) {
      return a.cell != b.cell ? a.cell < b.cell : a.art.trial < b.art.trial;
    });
    std::vector<FailureArtifact> out;
    out.reserve(recs_.size());
    for (auto& r : recs_) out.push_back(std::move(r.art));
    recs_.clear();
    return out;
  }

 private:
  struct Rec {
    int cell;
    FailureArtifact art;
  };
  const CampaignConfig& cfg_;
  const std::vector<CampaignCell>& cells_;
  std::mutex mu_;
  std::vector<int> dumped_;
  std::vector<Rec> recs_;
};

}  // namespace

TrialSpec campaign_trial_spec(const CampaignConfig& cfg,
                              const FaultScenario& scenario,
                              const CampaignEntry& entry) {
  TrialSpec spec;
  spec.algo = entry.algo;
  spec.acfg = entry.acfg;
  spec.n = cfg.n;
  spec.root = cfg.root;
  spec.logp = cfg.logp;
  spec.rx = cfg.rx;
  spec.seed = cfg.seed;
  spec.trials = cfg.trials;
  spec.threads = cfg.threads;
  spec.max_steps = cfg.max_steps;
  spec.exec = cfg.exec;

  spec.drop_prob = scenario.drop_prob;
  spec.burst_loss = scenario.burst_loss;
  spec.burst_mean = scenario.burst_mean;
  spec.jitter_max = scenario.jitter_max;
  spec.pre_failures = scenario.pre_failures;
  spec.online_failures = scenario.online_failures;
  spec.restarts = scenario.restarts;
  spec.stragglers = scenario.stragglers;
  spec.straggler_factor = scenario.straggler_factor;
  spec.partition_nodes = scenario.partition_nodes;
  spec.byz_count = scenario.byz_count;
  spec.byz_mode = scenario.byz_mode;
  spec.byz_include_root = scenario.byz_include_root;

  // FCG is configured for the crash level it is asked to survive.
  if (entry.algo == Algo::kFcg)
    spec.acfg.fcg_f = std::max(spec.acfg.fcg_f, scenario.online_failures);
  return spec;
}

CampaignResult run_campaign(const CampaignConfig& cfg,
                            const std::vector<FaultScenario>& scenarios,
                            const std::vector<CampaignEntry>& entries) {
  CG_CHECK(cfg.trials >= 1);
  CampaignResult result;
  const std::size_t n_cells = scenarios.size() * entries.size();
  result.cells.reserve(n_cells);
  std::vector<TrialSpec> specs;
  specs.reserve(n_cells);
  for (const auto& sc : scenarios) {
    for (const auto& e : entries) {
      CampaignCell cell;
      cell.scenario = sc.name;
      cell.entry = e.label;
      cell.guarantee = campaign_effective_guarantee(e.guarantee, sc);
      result.cells.push_back(std::move(cell));
      specs.push_back(campaign_trial_spec(cfg, sc, e));
    }
  }

  // Flatten the grid into (cell, trial) units so parallelism spans cells,
  // not just trials within one: a campaign of many small cells would
  // otherwise leave most workers idle at every cell boundary.  Units
  // never straddle cells (each worker's cached engine switches workload
  // at most once per unit), and each unit covers several trials so the
  // engine reuse amortizes.
  const std::int64_t total =
      static_cast<std::int64_t>(n_cells) * cfg.trials;
  const int threads = static_cast<int>(std::min<std::int64_t>(
      resolve_threads(cfg.threads), std::max<std::int64_t>(total, 1)));
  struct Unit {
    int cell;
    int t0;
    int t1;
  };
  std::vector<Unit> units;
  if (threads > 1 && total > 0) {
    const int unit = static_cast<int>(std::clamp<std::int64_t>(
        total / (8 * threads), 1, cfg.trials));
    for (std::size_t c = 0; c < n_cells; ++c)
      for (int t0 = 0; t0 < cfg.trials; t0 += unit)
        units.push_back({static_cast<int>(c), t0,
                         std::min(t0 + unit, cfg.trials)});
  }

  // Forensics: one flight recorder per worker, cleared between trials and
  // dumped (under ArtifactSink's cap) whenever the cell's per-trial
  // predicate fires.  The sinks observe only, so attaching them cannot
  // perturb the metrics - the campaign stays byte-identical with and
  // without an artifacts_dir.
  const bool forensics = !cfg.artifacts_dir.empty();
  const std::size_t flight_cap =
      cfg.flight_capacity > 0 ? static_cast<std::size_t>(cfg.flight_capacity)
                              : obs::FlightRecorder::kDefaultCapacity;
  ArtifactSink artifacts(cfg, result.cells);
  std::atomic<std::int64_t> done{0};
  std::atomic<std::int64_t> violations{0};
  const auto run_trial = [&](TrialWorkspace& w, obs::FlightRecorder* fr,
                             int cell, int t) {
    if (fr != nullptr) fr->clear();
    const RunMetrics m = w.run(specs[static_cast<std::size_t>(cell)], t, fr);
    if (trial_violates(result.cells[static_cast<std::size_t>(cell)].guarantee,
                       m)) {
      violations.fetch_add(1, std::memory_order_relaxed);
      if (fr != nullptr)
        artifacts.dump(cell, t,
                       derive_seed(cfg.seed,
                                   static_cast<std::uint64_t>(t) * 2 + 1),
                       *fr, m);
    }
    if (cfg.heartbeat != nullptr)
      cfg.heartbeat->beat(done.fetch_add(1, std::memory_order_relaxed) + 1,
                          total, violations.load(std::memory_order_relaxed));
    return m;
  };

  if (units.empty()) {  // serial path: one workspace, cells in order
    TrialWorkspace ws;
    obs::FlightRecorder fr(flight_cap);
    for (std::size_t c = 0; c < n_cells; ++c) {
      auto& cell = result.cells[c];
      for (int t = 0; t < cfg.trials; ++t)
        cell.agg.absorb(run_trial(ws, forensics ? &fr : nullptr,
                                  static_cast<int>(c), t));
    }
  } else {
    // Per-(cell, trial) result slots, reduced in (cell, trial) order
    // below - same determinism contract as run_trials.
    std::vector<RunMetrics> results(static_cast<std::size_t>(total));
    std::vector<TrialWorkspace> ws(static_cast<std::size_t>(threads));
    std::vector<obs::FlightRecorder> frs;
    if (forensics) {
      frs.reserve(static_cast<std::size_t>(threads));
      for (int i = 0; i < threads; ++i) frs.emplace_back(flight_cap);
    }
    ThreadPool::global(threads).parallel_for(
        static_cast<std::int64_t>(units.size()), 1, threads,
        [&](std::int64_t begin, std::int64_t end, int slot) {
          auto& w = ws[static_cast<std::size_t>(slot)];
          obs::FlightRecorder* fr =
              forensics ? &frs[static_cast<std::size_t>(slot)] : nullptr;
          for (std::int64_t u = begin; u < end; ++u) {
            const Unit& un = units[static_cast<std::size_t>(u)];
            const auto base =
                static_cast<std::int64_t>(un.cell) * cfg.trials;
            for (int t = un.t0; t < un.t1; ++t)
              results[static_cast<std::size_t>(base + t)] =
                  run_trial(w, fr, un.cell, t);
          }
        });
    for (std::size_t c = 0; c < n_cells; ++c) {
      auto& cell = result.cells[c];
      const auto base = static_cast<std::int64_t>(c) * cfg.trials;
      for (int t = 0; t < cfg.trials; ++t)
        cell.agg.absorb(results[static_cast<std::size_t>(base + t)]);
    }
  }
  result.artifacts = artifacts.take_sorted();
  if (cfg.heartbeat != nullptr)
    cfg.heartbeat->force(done.load(std::memory_order_relaxed), total,
                         violations.load(std::memory_order_relaxed));

  for (auto& cell : result.cells) {
    cell.pass = guarantee_holds(cell.guarantee, cell.agg);
    if (!cell.pass) ++result.failed_cells;
  }
  return result;
}

std::vector<FaultScenario> default_fault_scenarios() {
  std::vector<FaultScenario> v;
  {
    FaultScenario s;
    s.name = "clean";
    v.push_back(s);
  }
  {
    FaultScenario s;
    s.name = "iid-loss-2pct";
    s.drop_prob = 0.02;
    v.push_back(s);
  }
  {
    FaultScenario s;
    s.name = "burst-loss";  // mean burst 4 steps, 3% overall loss
    s.burst_loss = 0.03;
    s.burst_mean = 4;
    v.push_back(s);
  }
  {
    FaultScenario s;
    s.name = "jittery-burst";
    s.burst_loss = 0.02;
    s.burst_mean = 3;
    s.jitter_max = 2;
    v.push_back(s);
  }
  {
    FaultScenario s;
    s.name = "crash";
    s.pre_failures = 1;
    s.online_failures = 1;
    v.push_back(s);
  }
  {
    FaultScenario s;
    s.name = "crash-restart";
    s.restarts = 2;
    v.push_back(s);
  }
  {
    FaultScenario s;
    s.name = "stragglers";
    s.stragglers = 3;
    s.straggler_factor = 4;
    v.push_back(s);
  }
  {
    FaultScenario s;
    s.name = "partition";
    s.partition_nodes = 4;
    v.push_back(s);
  }
  {
    FaultScenario s;
    s.name = "kitchen-sink";
    s.burst_loss = 0.02;
    s.burst_mean = 3;
    s.jitter_max = 1;
    s.online_failures = 1;
    s.stragglers = 2;
    v.push_back(s);
  }
  return v;
}

std::vector<CampaignEntry> default_entries(Algo algo, const AlgoConfig& base) {
  std::vector<CampaignEntry> v;
  CampaignEntry plain;
  plain.label = algo_name(algo);
  plain.algo = algo;
  plain.acfg = base;
  plain.acfg.reliable.enabled = false;

  CampaignEntry hard = plain;
  hard.label = std::string(algo_name(algo)) + "+rel";
  hard.acfg.reliable.enabled = true;

  switch (algo) {
    case Algo::kCcg:
      plain.guarantee = Guarantee::kNone;  // loss voids Claim 3 unhardened
      hard.guarantee = Guarantee::kAllReached;
      v.push_back(plain);
      v.push_back(hard);
      break;
    case Algo::kFcg:
      plain.guarantee = Guarantee::kNone;
      hard.guarantee = Guarantee::kSosConsistent;
      v.push_back(plain);
      v.push_back(hard);
      break;
    default:
      // No hardened variant: the sublayer only covers correction/SOS tags.
      plain.guarantee = Guarantee::kNone;
      v.push_back(plain);
      break;
  }
  return v;
}

std::vector<FaultScenario> byzantine_fault_scenarios(NodeId n) {
  std::vector<FaultScenario> v;
  {
    FaultScenario s;
    s.name = "byz-clean";  // baseline: same entries, no adversary
    v.push_back(s);
  }
  {
    FaultScenario s;
    s.name = "byz-5pct";
    s.byz_count = std::max<int>(1, static_cast<int>(n / 20));
    s.byz_mode = ByzMode::kEquivocator;
    v.push_back(s);
  }
  {
    FaultScenario s;
    s.name = "byz-10pct";
    s.byz_count = std::max<int>(1, static_cast<int>(n / 10));
    s.byz_mode = ByzMode::kEquivocator;
    v.push_back(s);
  }
  {
    FaultScenario s;
    s.name = "byz-root-equiv";  // the canonical consistency attack
    s.byz_count = 1;
    s.byz_mode = ByzMode::kEquivocator;
    s.byz_include_root = true;
    v.push_back(s);
  }
  return v;
}

std::vector<CampaignEntry> byzantine_entries(const AlgoConfig& ccg,
                                             const AlgoConfig& fcg,
                                             const AlgoConfig& sbrb) {
  std::vector<CampaignEntry> v;
  CampaignEntry e;
  e.label = "CCG";
  e.algo = Algo::kCcg;
  e.acfg = ccg;
  e.guarantee = Guarantee::kConsistent;
  v.push_back(e);
  e.label = "FCG";
  e.algo = Algo::kFcg;
  e.acfg = fcg;
  v.push_back(e);
  e.label = "SBRB";
  e.algo = Algo::kSbrb;
  e.acfg = sbrb;
  v.push_back(e);
  return v;
}

}  // namespace cg

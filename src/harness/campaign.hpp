// Fault-injection campaign runner: a named grid of fault scenarios crossed
// with algorithm variants, each cell a Monte-Carlo batch whose aggregate is
// checked against the guarantee the variant claims.  This turns the paper's
// consistency claims into machine-checkable predicates under hostile
// channels (docs/FAULTS.md):
//   * all-reached        - every trial colored every active node;
//   * all-or-nothing     - no trial delivered to some-but-not-all;
//   * SOS-consistent     - all-or-nothing AND no trial where the SOS
//                          fallback fired yet failed to reach everyone.
// The result serializes to a JSON reliability report via obs::to_json()
// (src/obs/report.*) and drives examples/fault_campaign.cpp.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace cg {

/// One named fault environment; fields mirror the TrialSpec fault knobs
/// they are copied onto (per-trial sampling included).
struct FaultScenario {
  std::string name;
  double drop_prob = 0;       ///< i.i.d. loss
  double burst_loss = 0;      ///< Gilbert-Elliott overall loss (0 = off)
  Step burst_mean = 4;        ///< mean burst length in steps
  Step jitter_max = 0;
  int pre_failures = 0;
  int online_failures = 0;
  int restarts = 0;           ///< crash-and-rejoin nodes
  int stragglers = 0;
  Step straggler_factor = 4;
  int partition_nodes = 0;    ///< transient bidirectional partition size
  // Byzantine adversaries (sim/fault/byzantine.hpp); sampled per trial,
  // disjoint from the crash/restart sets.
  int byz_count = 0;
  ByzMode byz_mode = ByzMode::kEquivocator;
  bool byz_include_root = false;  ///< root equivocation: the strongest attack
};

/// Which predicate a campaign cell asserts over its aggregate.
enum class Guarantee : std::uint8_t {
  kNone,          ///< observation only - always passes
  kAllReached,    ///< all_colored_trials == trials
  kAllOrNothing,  ///< all_or_nothing_violations == 0
  kSosConsistent, ///< all-or-nothing and sos_incomplete_trials == 0
  kConsistent,    ///< no two correct nodes delivered different payloads
                  ///< (consistency_violations == 0; the Byzantine-tier claim)
};

const char* guarantee_name(Guarantee g);

/// An algorithm variant under test, with the guarantee it claims.
struct CampaignEntry {
  std::string label;  ///< e.g. "CCG+rel"
  Algo algo = Algo::kCcg;
  AlgoConfig acfg{};
  Guarantee guarantee = Guarantee::kNone;
};

/// Shared dimensions of every cell (scenario and entry fill in the rest).
struct CampaignConfig {
  NodeId n = 64;
  NodeId root = 0;
  LogP logp{};
  RxPolicy rx = RxPolicy::kDrainAll;
  std::uint64_t seed = 1;
  int trials = 100;
  /// Pool participants; <= 0 = auto (hardware_concurrency).  The campaign
  /// parallelizes across cells x trials, not just within a cell, and its
  /// result is byte-identical for every thread count (see run_campaign).
  int threads = 0;
  Step max_steps = 0;  ///< 0 = engine auto limit
  /// Engine carrying every cell's trials (identical results either way).
  ExecConfig exec{};

  // --- Failure forensics (src/obs/flight_recorder.hpp) -------------------
  /// When non-empty, every trial runs with a flight recorder attached and
  /// each guarantee-violating or truncated trial dumps its ring to
  /// `<artifacts_dir>/<scenario>__<entry>__t<trial>.jsonl`.  The directory
  /// must already exist (examples/fault_campaign.cpp creates it).
  std::string artifacts_dir;
  /// Command prefix baked into each artifact's `rerun` field (e.g.
  /// "./fault_campaign --n=64 --seed=1 --trials=100"); the runner appends
  /// " --replay=<scenario>/<entry>/<trial>".
  std::string rerun_prefix;
  /// Flight-recorder ring capacity per worker; 0 = default (2048 events).
  int flight_capacity = 0;
  /// A systematically failing cell dumps at most this many artifacts -
  /// forensics needs a few exemplars, not thousands of files.
  int max_artifacts_per_cell = 4;
  /// Optional progress channel; beaten once per finished trial with
  /// failures = guarantee-violating or truncated trials so far.
  Heartbeat* heartbeat = nullptr;
};

struct CampaignCell {
  std::string scenario;
  std::string entry;
  Guarantee guarantee = Guarantee::kNone;
  bool pass = true;
  TrialAggregate agg;
};

/// One dumped flight-recorder ring (see CampaignConfig::artifacts_dir).
struct FailureArtifact {
  std::string scenario;
  std::string entry;
  int trial = 0;
  std::uint64_t seed = 0;      ///< the trial's RunConfig seed
  std::string path;            ///< artifact JSONL on disk
  bool truncated_run = false;  ///< trial hit max_steps
};

struct CampaignResult {
  std::vector<CampaignCell> cells;
  /// Flight-recorder dumps, sorted in (cell, trial) order - deterministic
  /// for every thread count, like the cells themselves.
  std::vector<FailureArtifact> artifacts;
  int failed_cells = 0;
  bool all_pass() const { return failed_cells == 0; }
};

/// Evaluate `guarantee` over an aggregate (exposed for tests).
bool guarantee_holds(Guarantee g, const TrialAggregate& agg);

/// Per-trial forensics predicate: should this trial's flight-recorder
/// ring be dumped?  True when the single-trial analogue of `g` is
/// violated, and always when the trial truncated (hit max_steps).
bool trial_violates(Guarantee g, const RunMetrics& m);

/// The guarantee a cell actually asserts: crash faults void claims the
/// algorithms never made (see the rationale in campaign.cpp).  Exposed so
/// fault_campaign --replay evaluates the same predicate as the campaign.
Guarantee campaign_effective_guarantee(Guarantee g, const FaultScenario& sc);

/// The TrialSpec a given cell runs - exposed so a failing cell can be
/// replayed with instrumentation attached.
TrialSpec campaign_trial_spec(const CampaignConfig& cfg,
                              const FaultScenario& scenario,
                              const CampaignEntry& entry);

/// Run the full scenarios x entries grid.  Work is flattened across
/// cells x trials onto the process-wide ThreadPool, so small per-cell
/// trial counts still use every worker; per-trial results are reduced in
/// (cell, trial) order, making the whole CampaignResult byte-identical
/// for any cfg.threads (tests/test_trial_farm.cpp).
CampaignResult run_campaign(const CampaignConfig& cfg,
                            const std::vector<FaultScenario>& scenarios,
                            const std::vector<CampaignEntry>& entries);

/// The stock scenario grid used by examples/fault_campaign.cpp and the
/// failure drill: clean channel, i.i.d. loss, burst loss, crash/restart
/// mixes, stragglers, a transient partition, and a kitchen-sink combo.
std::vector<FaultScenario> default_fault_scenarios();

/// Stock entries for `algo` (= the variant with and, where meaningful,
/// without the reliable sublayer), claiming the guarantees the paper +
/// hardening give it under message loss.
std::vector<CampaignEntry> default_entries(Algo algo, const AlgoConfig& base);

/// The Byzantine scenario grid (opt-in; fault_campaign --byz-grid): clean
/// baseline, 5% and 10% equivocators, and single-root equivocation -
/// crossed with byzantine_entries this demonstrates CCG/FCG violating
/// kConsistent while SBRB holds it.  Counts are derived from `n`.
std::vector<FaultScenario> byzantine_fault_scenarios(NodeId n);

/// Entries for the Byzantine grid: CCG, FCG and SBRB, all claiming
/// kConsistent.  The crash-model protocols are EXPECTED to fail it under
/// equivocation (their violation artifacts are the point); SBRB must hold.
std::vector<CampaignEntry> byzantine_entries(const AlgoConfig& ccg,
                                             const AlgoConfig& fcg,
                                             const AlgoConfig& sbrb);

}  // namespace cg

#include "harness/scenarios.hpp"

#include "analysis/baseline_models.hpp"
#include "analysis/coloring.hpp"
#include "analysis/fcg_bound.hpp"
#include "analysis/tuning.hpp"
#include "baselines/opt_tree.hpp"
#include "common/check.hpp"
#include "gossip/ocg_chain.hpp"
#include "gossip/sbrb.hpp"

namespace cg {

double paper_eps() { return eps_for_runs(0.5, 1e6); }

TunedAlgo tune_for(Algo algo, NodeId N, NodeId n_active, const LogP& logp,
                   double eps, int f) {
  TunedAlgo out;
  out.algo = algo;
  switch (algo) {
    case Algo::kGos: {
      // Gossip alone must color everyone: pick T with expected miss < eps
      // (Section III-A), no correction to fall back on.
      out.acfg.T = gossip_time_for_target(N, n_active, eps, logp);
      out.predicted_latency_steps = out.acfg.T + logp.delivery_delay();
      break;
    }
    case Algo::kOcg: {
      const Tuning t = tune_ocg(N, n_active, logp, eps);
      out.acfg.T = t.T_opt + 1;  // the paper's "+O to T" margin
      const int k = k_bar_for(N, n_active, out.acfg.T, logp, eps);
      out.acfg.ocg_corr_sends = k + 1;  // Claim 2's "+O to C" margin
      out.predicted_latency_steps =
          ocg_predicted_latency(N, n_active, out.acfg.T, logp, eps);
      break;
    }
    case Algo::kCcg: {
      const Tuning t = tune_ccg(N, n_active, logp, eps);
      out.acfg.T = t.T_opt + 1;
      out.predicted_latency_steps =
          ccg_predicted_latency(N, n_active, out.acfg.T, logp, eps);
      break;
    }
    case Algo::kOcgChain: {
      // Same gossip optimum as OCG; the horizon is sized from K_bar.
      const Tuning t = tune_ocg(N, n_active, logp, eps);
      out.acfg.T = t.T_opt + 1;
      out.acfg.ocg_corr_sends =
          k_bar_for(N, n_active, out.acfg.T, logp, eps) + 1;
      out.predicted_latency_steps = OcgChainNode::chain_horizon(
          out.acfg.T, static_cast<int>(out.acfg.ocg_corr_sends), logp);
      break;
    }
    case Algo::kFcg: {
      const FcgTuning t = tune_fcg(N, n_active, logp, eps, f);
      out.acfg.T = t.T_opt + 1;
      out.acfg.fcg_f = f;
      out.predicted_latency_steps =
          fcg_predicted_upper(N, n_active, out.acfg.T, logp, eps, f);
      break;
    }
    case Algo::kBig: {
      out.predicted_latency_steps = static_cast<Step>(
          big_latency_us(N, logp) / logp.o_us);
      break;
    }
    case Algo::kBfb: {
      out.predicted_latency_steps = static_cast<Step>(
          bfb_latency_us(N, 0, logp) / logp.o_us);
      break;
    }
    case Algo::kOpt: {
      out.predicted_latency_steps = opt_latency_steps(N, logp);
      break;
    }
    case Algo::kSbrb: {
      // Sample sizes come from eps directly; latency is bounded by the
      // protocol's own completion deadline (runner.cpp derives the same
      // SbrbSamples from acfg, so prediction and run agree).
      out.acfg.sbrb_eps = eps;
      out.predicted_latency_steps =
          sbrb_deadline(sbrb_samples(N, eps, out.acfg.sbrb_byz_frac), logp);
      break;
    }
  }
  return out;
}

double reported_latency_steps(Algo algo, const TrialAggregate& agg) {
  switch (algo) {
    case Algo::kGos:
    case Algo::kOcg:
    case Algo::kCcg:
    case Algo::kFcg:
    case Algo::kOcgChain:
      return agg.t_complete.empty() ? 0.0 : agg.t_complete.mean();
    case Algo::kSbrb:  // delivery, not the (fixed-deadline) completion
      return agg.t_last_colored.empty() ? 0.0 : agg.t_last_colored.mean();
    case Algo::kBig:
    case Algo::kOpt:
      return agg.t_last_colored.empty() ? 0.0 : agg.t_last_colored.mean();
    case Algo::kBfb:
      return agg.t_root_complete.empty() ? 0.0 : agg.t_root_complete.mean();
  }
  return 0.0;
}

ScenarioResult run_scenario(Algo algo, NodeId N, int pre_failures,
                            const LogP& logp, int trials, std::uint64_t seed,
                            double eps, int f, int threads,
                            const ExecConfig& exec) {
  CG_CHECK(pre_failures >= 0 && pre_failures < N);
  ScenarioResult res;
  res.tuned = tune_for(algo, N, N - pre_failures, logp, eps, f);

  TrialSpec spec;
  spec.algo = algo;
  spec.acfg = res.tuned.acfg;
  spec.n = N;
  spec.logp = logp;
  spec.seed = seed;
  spec.trials = trials;
  spec.threads = threads;
  spec.exec = exec;
  spec.pre_failures = pre_failures;
  res.agg = run_trials(spec);

  res.lat_us = logp.us(1) * reported_latency_steps(algo, res.agg);
  res.predicted_us = logp.us(res.tuned.predicted_latency_steps);
  res.work = res.agg.work.mean();
  res.incon = res.agg.inconsistency.mean();
  return res;
}

ModelRow big_model_row(NodeId N, const LogP& logp) {
  return {big_latency_us(N, logp), big_work(N), 0.0};
}

ModelRow bfb_model_row(NodeId N, int f_hat, const LogP& logp) {
  const int online = bfb_online_failures(f_hat);
  return {bfb_latency_us(N, online, logp), bfb_work(N, online), 0.0};
}

}  // namespace cg

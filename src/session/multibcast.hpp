// Concurrent broadcast sessions: several roots broadcast at once over the
// same nodes, multiplexed onto the shared LogP injection capacity (one
// message per node per step TOTAL, not per broadcast).
//
// This is the situation a communication library actually faces (the paper
// targets MPI-style runtimes and handles it abstractly through Claim 1's
// per-root counters).  Each in-flight broadcast runs an independent
// checked-corrected-gossip instance; a node's per-step send slot is
// arbitrated round-robin across its unfinished instances.  CCG's stop
// rules are pull-tolerant - they depend only on WHICH offsets have been
// covered and the min over received stop signals, not on synchronized
// slots - so correctness survives arbitrary send-slot delays; only
// latency stretches with the number of concurrent broadcasts
// (bench/ext_concurrent quantifies the scaling).
//
// Messages are tagged with (root, seq) stamps; stale duplicates are
// filtered per Claim 1 semantics by instance lookup.
#pragma once

#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/ring.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "gossip/timing.hpp"
#include "proto/message.hpp"
#include "sim/logp.hpp"

namespace cg {

/// One broadcast to run within a session.
struct BcastPlan {
  NodeId root = 0;
  Step start = 0;  ///< gossip begins (root emits from start+1)
  Step T = 0;      ///< gossip duration: emissions while now < start + T
};

/// Per-(node, broadcast) checked-corrected-gossip core in pull style:
/// receives are pushed in; sends are produced on demand when the host
/// grants this instance the node's send slot.
class CcgCore {
 public:
  CcgCore(const BcastPlan& plan, NodeId self, NodeId n)
      : plan_(plan), self_(self), ring_(n) {
    if (self == plan.root) {
      colored_ = true;
      g_node_ = true;
      if (n == 1) done_ = true;
    }
  }

  struct SendIntent {
    NodeId to;
    Tag tag;
  };

  void on_receive(Step /*now*/, const Message& m) {
    if (done_ && !g_node_) return;
    if (!colored_) {
      colored_ = true;
      if (m.tag == Tag::kGossip) {
        g_node_ = true;
      } else {
        done_ = true;  // c-node: delivered, never sends
        return;
      }
    }
    if (!g_node_) return;
    if (m.tag == Tag::kBwd) {
      m_fwd_ = std::min<Step>(m_fwd_, ring_.dist_fwd(self_, m.src));
    } else if (m.tag == Tag::kFwd) {
      m_bwd_ = std::min<Step>(m_bwd_, ring_.dist_bwd(self_, m.src));
    }
  }

  /// Offered the node's send slot at step `now`; returns the message this
  /// instance wants to emit, or nullopt (slot passes to the next one).
  std::optional<SendIntent> poll_send(Step now, const LogP& logp,
                                      Xoshiro256& rng) {
    if (done_ || !colored_ || !g_node_) return std::nullopt;
    if (now < plan_.start + 1) return std::nullopt;
    if (now < plan_.start + plan_.T) {
      return SendIntent{rng.other_node(self_, ring_.size()), Tag::kGossip};
    }
    if (now < corr_start(plan_.start + plan_.T, logp)) return std::nullopt;

    // Correction sweep; slots advance only when this instance actually
    // gets to act, so contention stretches time but never skips offsets.
    while (s_fwd_ || s_bwd_) {
      const Dir dir = (slot_ % 2 == 0) ? Dir::kFwd : Dir::kBwd;
      ++slot_;
      bool& sending = dir == Dir::kFwd ? s_fwd_ : s_bwd_;
      const Step nearest = dir == Dir::kFwd ? m_fwd_ : m_bwd_;
      if (sending && off_ > nearest) sending = false;
      std::optional<SendIntent> out;
      if (sending) {
        const NodeId target = ring_.step(self_, dir, off_);
        if (target != self_) out = SendIntent{target, dir_tag(dir)};
      }
      if (dir == Dir::kBwd) ++off_;
      if (off_ >= ring_.size() || (!s_fwd_ && !s_bwd_)) done_ = true;
      if (out) return out;
      if (done_) break;
      // A skipped direction slot costs nothing here: unlike the
      // synchronous engine there is no dedicated O to burn, the slot
      // belongs to whichever instance can use it.
    }
    done_ = true;
    return std::nullopt;
  }

  bool colored() const { return colored_; }
  bool is_g_node() const { return g_node_; }
  bool finished() const { return done_; }

 private:
  BcastPlan plan_;
  NodeId self_;
  Ring ring_;
  bool colored_ = false;
  bool g_node_ = false;
  bool done_ = false;
  bool s_fwd_ = true;
  bool s_bwd_ = true;
  Step m_fwd_ = kNever;
  Step m_bwd_ = kNever;
  Step off_ = 1;
  Step slot_ = 0;
};

/// Engine protocol hosting one CcgCore per planned broadcast.
class MultiBcastNode {
 public:
  struct Params {
    std::vector<BcastPlan> plans;
  };

  MultiBcastNode(const Params& p, NodeId self, NodeId n) : self_(self) {
    CG_CHECK(!p.plans.empty());
    CG_CHECK(p.plans.size() <= 64);  // stamp fits Message::time's low bits
    cores_.reserve(p.plans.size());
    for (const auto& plan : p.plans) cores_.emplace_back(plan, self, n);
  }

  template <class Ctx>
  void on_start(Ctx& ctx) {
    bool any_root = false;
    for (const auto& core : cores_) {
      if (core.is_g_node()) any_root = true;
    }
    if (any_root) ctx.activate();
    refresh_marks(ctx);
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message& m) {
    const auto idx = static_cast<std::size_t>(m.time & 0x3F);
    if (idx >= cores_.size()) return;  // unknown session (stale/foreign)
    cores_[idx].on_receive(ctx.now(), m);
    refresh_marks(ctx);
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    // Round-robin the node's single send slot across unfinished cores.
    const std::size_t k = cores_.size();
    for (std::size_t probe = 0; probe < k; ++probe) {
      const std::size_t i = (rr_ + probe) % k;
      if (cores_[i].finished()) continue;
      if (auto intent = cores_[i].poll_send(ctx.now(), ctx.logp(), ctx.rng())) {
        Message m;
        m.tag = intent->tag;
        m.time = static_cast<Step>(i);  // session stamp
        ctx.send(intent->to, m);
        rr_ = i + 1;  // fairness: next slot starts after the sender
        refresh_marks(ctx);
        return;
      }
    }
    refresh_marks(ctx);
    bool all_done = true;
    for (const auto& core : cores_) {
      if (!core.finished()) {
        all_done = false;
        break;
      }
    }
    if (all_done) ctx.complete();
  }

  const CcgCore& core(std::size_t i) const { return cores_[i]; }
  std::size_t core_count() const { return cores_.size(); }

 private:
  template <class Ctx>
  void refresh_marks(Ctx& ctx) {
    // Engine-level "colored"/"delivered" = every broadcast arrived.
    for (const auto& core : cores_) {
      if (!core.colored()) return;
    }
    ctx.mark_colored();
    ctx.deliver();
  }

  NodeId self_;
  std::vector<CcgCore> cores_;
  std::size_t rr_ = 0;
};

}  // namespace cg

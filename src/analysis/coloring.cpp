#include "analysis/coloring.hpp"

#include <cmath>

#include "common/check.hpp"

namespace cg {

std::vector<double> expected_colored(NodeId N, NodeId n_active, Step T,
                                     const LogP& logp, Step t_max) {
  CG_CHECK(N >= 1 && n_active >= 1 && n_active <= N);
  CG_CHECK(T >= 0 && t_max >= 0);
  std::vector<double> c(static_cast<std::size_t>(t_max) + 1, 0.0);
  c[0] = 1.0;
  if (N == 1) return c;
  const double n = static_cast<double>(n_active);
  const double miss = std::log1p(-1.0 / (static_cast<double>(N) - 1.0));
  const Step lag = logp.delivery_delay();  // emission -> arrival steps
  for (Step s = 1; s <= t_max; ++s) {
    const Step emit = s - lag;           // emission step feeding arrivals at s
    const Step colored_by = emit - 1;    // senders were colored by then
    double senders = 0.0;
    if (emit >= 1 && emit < T && colored_by >= 0)
      senders = c[static_cast<std::size_t>(colored_by)];
    const double prev = c[static_cast<std::size_t>(s - 1)];
    const double newly =
        (n - prev) * (-std::expm1(senders * miss));  // 1-(1-1/(N-1))^senders
    c[static_cast<std::size_t>(s)] = std::min(n, prev + newly);
  }
  return c;
}

double colored_at_corr_start(NodeId N, NodeId n_active, Step T,
                             const LogP& logp) {
  const Step t = T + logp.delivery_delay();  // last arrival step + done
  return expected_colored(N, n_active, T, logp, t).back();
}

Step gossip_time_for_target(NodeId N, NodeId n_active, double delta,
                            const LogP& logp) {
  CG_CHECK(delta > 0.0);
  // c(T+L+O) grows monotonically in T; scan until the target is met.
  const double target = static_cast<double>(n_active) - delta;
  for (Step T = 1;; ++T) {
    if (colored_at_corr_start(N, n_active, T, logp) >= target) return T;
    CG_CHECK_MSG(T < 100000, "gossip target unreachable");
  }
}

}  // namespace cg

// Longest uncolored-chain distribution - Eq. (2) of the paper.
//
// Given cbar = c(T+L+O) expected g-nodes among N ring positions:
//   p(K)  = cbar^2 (N-cbar)^K / N^(K+2)      (a specific colored-gap-colored
//                                             pattern of gap length K)
//   pi_K  = 1 - (1 - p(K))^N                 (such a gap exists anywhere)
//   p_K   = pi_K * prod_{j>K} (1 - pi_j)     (K is the MAXIMAL gap)
// K_bar(eps) is the smallest K whose upper tail sum_{i>K} p_i < eps: with
// probability >= 1-eps no uncolored chain longer than K_bar exists, which
// sizes the OCG/CCG correction sweeps (Claim 2).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace cg {

class ChainDist {
 public:
  /// Build the distribution for N ring positions and expected colored
  /// count cbar (clamped to [1, N]).
  ChainDist(NodeId N, double cbar);

  /// P[maximal uncolored chain == K], K in [0, N-1].
  double pmf(int K) const { return pmf_[static_cast<std::size_t>(K)]; }

  /// P[maximal uncolored chain >= K] (upper tail including K).
  double tail(int K) const;

  /// Smallest K with tail(K+1) < eps.
  int k_bar(double eps) const;

  NodeId n() const { return N_; }

 private:
  NodeId N_;
  std::vector<double> pmf_;   // index K = 0..N-1
  std::vector<double> tail_;  // tail_[K] = sum_{i>=K} pmf_[i]
};

}  // namespace cg

// Log-space numerics for the tail probabilities in Eq. 2 and Appendix B.
#pragma once

#include <cmath>

namespace cg {

/// log(1 - exp(x)) for x <= 0, numerically stable (Maechler's recipe).
inline double log1mexp(double x) {
  // x <= 0 required; exp(x) in (0,1].
  if (x >= 0.0) return -std::numeric_limits<double>::infinity();
  return x > -0.6931471805599453  // -ln 2
             ? std::log(-std::expm1(x))
             : std::log1p(-std::exp(x));
}

/// 1 - (1 - p)^n computed stably for tiny p (via logs).
inline double one_minus_pow(double p, double n) {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  // (1-p)^n = exp(n*log1p(-p)); result = -expm1(n*log1p(-p)).
  return -std::expm1(n * std::log1p(-p));
}

/// log of the binomial coefficient C(n, k) for real-valued n,k >= 0.
inline double log_choose(double n, double k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

}  // namespace cg

#include "analysis/chain.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/logmath.hpp"
#include "common/check.hpp"

namespace cg {

ChainDist::ChainDist(NodeId N, double cbar) : N_(N) {
  CG_CHECK(N >= 1);
  cbar = std::clamp(cbar, 1.0, static_cast<double>(N));
  const auto n = static_cast<std::size_t>(N);
  pmf_.assign(n, 0.0);
  tail_.assign(n + 1, 0.0);

  const double logN = std::log(static_cast<double>(N));
  const double logc = std::log(cbar);
  const double gap = static_cast<double>(N) - cbar;
  const double loggap = gap > 0.0 ? std::log(gap) : -INFINITY;

  // pi_K for K = 0..N-1.
  std::vector<double> pi(n, 0.0);
  for (std::size_t K = 0; K < n; ++K) {
    const double logp = 2.0 * logc +
                        static_cast<double>(K) * loggap -
                        (static_cast<double>(K) + 2.0) * logN;
    const double p = std::exp(std::min(logp, 0.0));
    pi[K] = one_minus_pow(p, static_cast<double>(N));
  }

  // suffix product S(K) = prod_{j > K} (1 - pi_j), then p_K = pi_K * S(K).
  double log_suffix = 0.0;  // log prod over j > K, built from the top down
  for (std::size_t K = n; K-- > 0;) {
    pmf_[K] = pi[K] * std::exp(log_suffix);
    if (pi[K] >= 1.0)
      log_suffix = -INFINITY;
    else
      log_suffix += std::log1p(-pi[K]);
  }

  // Upper tails.
  double acc = 0.0;
  for (std::size_t K = n; K-- > 0;) {
    acc += pmf_[K];
    tail_[K] = acc;
  }
}

double ChainDist::tail(int K) const {
  if (K <= 0) return tail_[0];
  if (K >= N_) return 0.0;
  return tail_[static_cast<std::size_t>(K)];
}

int ChainDist::k_bar(double eps) const {
  CG_CHECK(eps > 0.0);
  for (int K = 0; K < N_; ++K)
    if (tail(K + 1) < eps) return K;
  return N_ - 1;
}

}  // namespace cg

// Model-driven selection of the gossip time T (Eqs. 3-5 of the paper).
//
// For a failure budget eps the correction sweep must cover the 1-eps
// quantile of the longest uncolored chain, K_bar(T); longer gossip shrinks
// K_bar but costs time, so T_opt minimizes the end-to-end latency.
#pragma once

#include "analysis/chain.hpp"
#include "common/types.hpp"
#include "sim/logp.hpp"

namespace cg {

/// eps such that m runs all succeed with probability >= 1 - psi:
/// eps = 1 - (1 - psi)^(1/m)  (paper Section III-B).
double eps_for_runs(double psi, double m);

/// K_bar(N, n, T, L, eps): 1-eps quantile of the longest uncolored chain
/// after a gossip phase of length T (uses Eq. 1 then Eq. 2).
int k_bar_for(NodeId N, NodeId n_active, Step T, const LogP& logp, double eps);

struct Tuning {
  Step T_opt = 0;                  ///< recommended gossip time (argmin)
  int k_bar = 0;                   ///< K_bar at T_opt
  Step predicted_latency = 0;      ///< predicted total latency in steps
};

/// OCG (Eq. 3): latency(T) = T + 2L + (2 + K_bar(T)) O.
Tuning tune_ocg(NodeId N, NodeId n_active, const LogP& logp, double eps,
                Step t_lo = 1, Step t_hi = 0);

/// CCG (Eq. 4): latency(T) = T + 2L + (2 + 2 K_bar(T)) O.
Tuning tune_ccg(NodeId N, NodeId n_active, const LogP& logp, double eps,
                Step t_lo = 1, Step t_hi = 0);

/// Predicted latency in steps for a GIVEN T (useful for Figures 3 and 5).
Step ocg_predicted_latency(NodeId N, NodeId n_active, Step T,
                           const LogP& logp, double eps);
Step ccg_predicted_latency(NodeId N, NodeId n_active, Step T,
                           const LogP& logp, double eps);

}  // namespace cg

#include "analysis/fcg_bound.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/coloring.hpp"
#include "analysis/logmath.hpp"
#include "common/check.hpp"

namespace cg {

GChainDist::GChainDist(NodeId N, double cbar, int V) : N_(N), V_(V) {
  CG_CHECK(N >= 1 && V >= 2);
  cbar = std::clamp(cbar, 1.0, static_cast<double>(N));
  const int count = std::max(0, N - V + 1);  // G = V..N
  pmf_.assign(static_cast<std::size_t>(count), 0.0);
  tail_.assign(static_cast<std::size_t>(count) + 1, 0.0);
  if (count == 0) return;

  const double logN = std::log(static_cast<double>(N));
  const double logc = std::log(cbar);
  const double gap = static_cast<double>(N) - cbar;
  const double loggap = gap > 0.0 ? std::log(gap) : -INFINITY;
  const double v = static_cast<double>(V);

  std::vector<double> pi(static_cast<std::size_t>(count), 0.0);
  for (int G = V; G <= N; ++G) {
    const double g = static_cast<double>(G);
    // log q(G,V); (G-2)! / ((V-2)! (G-V)!) via lgamma.
    double logq = v * logc - g * logN + std::lgamma(g - 1.0) -
                  std::lgamma(v - 1.0) - std::lgamma(g - v + 1.0);
    if (G > V) logq += (g - v) * loggap;  // 0^0 = 1 when G == V and gap == 0
    const double q = std::exp(std::min(logq, 0.0));
    pi[static_cast<std::size_t>(G - V)] =
        one_minus_pow(q, static_cast<double>(N));
  }

  double log_suffix = 0.0;  // log prod_{j > G} (1 - pi_j)
  for (std::size_t i = pi.size(); i-- > 0;) {
    pmf_[i] = pi[i] * std::exp(log_suffix);
    log_suffix =
        pi[i] >= 1.0 ? -INFINITY : log_suffix + std::log1p(-pi[i]);
  }
  double acc = 0.0;
  for (std::size_t i = pmf_.size(); i-- > 0;) {
    acc += pmf_[i];
    tail_[i] = acc;
  }
}

double GChainDist::pmf(int G) const {
  if (G < V_ || G > N_) return 0.0;
  return pmf_[static_cast<std::size_t>(G - V_)];
}

double GChainDist::tail(int G) const {
  if (G <= V_) return tail_.empty() ? 0.0 : tail_[0];
  if (G > N_) return 0.0;
  return tail_[static_cast<std::size_t>(G - V_)];
}

int GChainDist::g_v(double eps) const {
  CG_CHECK(eps > 0.0);
  // The pmf's total mass is P[a window of V consecutive g-nodes exists at
  // all]; when the coloring is too sparse for that (cbar ~ V or less) the
  // span bound is undefined and only the whole ring is a safe answer -
  // without this, every pattern probability rounds to zero and the
  // "bound" would degenerate to its minimum V.
  if (tail(V_) < 1.0 - eps) return N_;
  for (int G = V_; G <= N_; ++G)
    if (tail(G + 1) < eps) return G;
  return N_;
}

int g_v_for(NodeId N, NodeId n_active, Step T, const LogP& logp, double eps,
            int f) {
  const double cbar = colored_at_corr_start(N, n_active, T, logp);
  return GChainDist(N, cbar, 2 * f + 3).g_v(eps);
}

Step fcg_predicted_upper(NodeId N, NodeId n_active, Step T, const LogP& logp,
                         double eps, int f) {
  const int gv = g_v_for(N, n_active, T, logp, eps, f);
  if (f == 1)  // exact Appendix-B constant
    return T + 4 * static_cast<Step>(gv) + logp.l_over_o - 13;
  return T + 2 * static_cast<Step>(f + 1) * static_cast<Step>(gv) +
         logp.l_over_o;
}

FcgTuning tune_fcg(NodeId N, NodeId n_active, const LogP& logp, double eps,
                   int f, Step t_lo, Step t_hi) {
  if (t_hi <= 0)
    t_hi = static_cast<Step>(
        4.0 *
            std::ceil(std::log2(static_cast<double>(std::max<NodeId>(N, 2)))) +
        48.0);
  CG_CHECK(t_lo >= 1 && t_lo <= t_hi);
  FcgTuning best;
  Step best_bound = kNever;
  for (Step T = t_lo; T <= t_hi; ++T) {
    const Step bound = fcg_predicted_upper(N, n_active, T, logp, eps, f);
    if (bound < best_bound) {  // ties -> smallest T (least gossip work)
      best_bound = bound;
      best = FcgTuning{T, g_v_for(N, n_active, T, logp, eps, f), bound};
    }
  }
  return best;
}

}  // namespace cg

#include "analysis/work_model.hpp"

#include "analysis/coloring.hpp"
#include "common/check.hpp"

namespace cg {

double expected_gossip_work(NodeId N, NodeId n_active, Step T,
                            const LogP& logp) {
  if (T <= 1) return 0.0;
  const auto c = expected_colored(N, n_active, T, logp, T - 1);
  double work = 0.0;
  // Emission at step t (1 <= t <= T-1) by every node colored by t-1.
  for (Step t = 1; t <= T - 1; ++t)
    work += c[static_cast<std::size_t>(t - 1)];
  return work;
}

double expected_ocg_corr_work(NodeId N, NodeId n_active, Step T,
                              const LogP& logp, Step corr_sends) {
  CG_CHECK(corr_sends >= 0);
  const double g = colored_at_corr_start(N, n_active, T, logp);
  return g * static_cast<double>(corr_sends);
}

double expected_ccg_corr_work(NodeId N, NodeId n_active, Step T,
                              const LogP& logp, double slack) {
  const double g = colored_at_corr_start(N, n_active, T, logp);
  // Nearest-g-node distances sum to the ring size per direction.
  return 2.0 * static_cast<double>(n_active) + 2.0 * g * slack;
}

double expected_fcg_corr_work(NodeId n_active, int f) {
  CG_CHECK(f >= 0);
  return 4.0 * static_cast<double>(f + 1) * static_cast<double>(n_active);
}

double expected_ocg_work(NodeId N, NodeId n_active, Step T, const LogP& logp,
                         Step corr_sends) {
  return expected_gossip_work(N, n_active, T, logp) +
         expected_ocg_corr_work(N, n_active, T, logp, corr_sends);
}

double expected_ccg_work(NodeId N, NodeId n_active, Step T,
                         const LogP& logp) {
  return expected_gossip_work(N, n_active, T, logp) +
         expected_ccg_corr_work(N, n_active, T, logp);
}

double expected_fcg_work(NodeId N, NodeId n_active, Step T, const LogP& logp,
                         int f) {
  return expected_gossip_work(N, n_active, T, logp) +
         expected_fcg_corr_work(n_active, f);
}

}  // namespace cg

// FCG gossip-time selection - Appendix B of the paper.
//
// A chain of V = 2f+3 consecutive g-nodes (the A..E window of Figure 8 for
// f=1) spans at most G_V ring positions with probability >= 1-eps, where
// G_V comes from the pattern probability
//   q(G,V) = cbar^V (N-cbar)^(G-V) (G-2)! / (N^G (V-2)! (G-V)!).
// The worst-case FCG completion for f=1 is bounded by
//   T + 4 G_V O + L - 13 O                                  (Eq. 5)
// and T_opt minimizes that bound.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sim/logp.hpp"

namespace cg {

/// Distribution of the maximal span G of a window of V consecutive g-nodes.
class GChainDist {
 public:
  GChainDist(NodeId N, double cbar, int V);

  double pmf(int G) const;     ///< P[max span == G], G in [V, N]
  double tail(int G) const;    ///< P[max span >= G]
  int g_v(double eps) const;   ///< smallest G with tail(G+1) < eps

 private:
  NodeId N_;
  int V_;
  std::vector<double> pmf_;    // index G-V_, G = V..N
  std::vector<double> tail_;
};

/// G_V(N, n, T, eps) with V = 2f+3 (uses Eq. 1 for cbar).
int g_v_for(NodeId N, NodeId n_active, Step T, const LogP& logp, double eps,
            int f);

/// Upper bound on FCG completion (steps) for a given T; exact Appendix-B
/// constant for f=1, a conservative generalization 2(f+1) G_V O + L for
/// other f (the paper derives the constant only for f=1).
Step fcg_predicted_upper(NodeId N, NodeId n_active, Step T, const LogP& logp,
                         double eps, int f);

struct FcgTuning {
  Step T_opt = 0;
  int g_v = 0;
  Step predicted_upper = 0;
};

/// T minimizing the Appendix-B bound (Eq. 5).
FcgTuning tune_fcg(NodeId N, NodeId n_active, const LogP& logp, double eps,
                   int f, Step t_lo = 1, Step t_hi = 0);

}  // namespace cg

#include "analysis/tuning.hpp"

#include <cmath>

#include "analysis/coloring.hpp"
#include "common/check.hpp"

namespace cg {

double eps_for_runs(double psi, double m) {
  CG_CHECK(psi > 0.0 && psi < 1.0 && m >= 1.0);
  return -std::expm1(std::log1p(-psi) / m);  // 1 - (1-psi)^(1/m)
}

int k_bar_for(NodeId N, NodeId n_active, Step T, const LogP& logp,
              double eps) {
  const double cbar = colored_at_corr_start(N, n_active, T, logp);
  return ChainDist(N, cbar).k_bar(eps);
}

namespace {

Step default_t_hi(NodeId N) {
  // The optimum is near 1.6..2.5 log2 N; scan generously past it.
  return static_cast<Step>(
      4.0 * std::ceil(std::log2(static_cast<double>(std::max<NodeId>(N, 2)))) +
      32.0);
}

/// Scan T in [t_lo, t_hi], minimizing latency(T) = T + 2L/O + 2 + w*K_bar(T)
/// steps.  Among ties prefer the SMALLEST T: it costs the least work
/// (fewer gossip emissions), and the caller's recommended "+O" margin
/// already restores eps headroom.  (The paper's own choices - T=24 in
/// Fig. 3, T=32 in Table 7 - sit at the small end of the plateau.)
Tuning tune(NodeId N, NodeId n_active, const LogP& logp, double eps, int w,
            Step t_lo, Step t_hi) {
  CG_CHECK(eps > 0.0 && eps < 1.0);
  if (t_hi <= 0) t_hi = default_t_hi(N);
  CG_CHECK(t_lo >= 1 && t_lo <= t_hi);
  Tuning best;
  Step best_lat = kNever;
  for (Step T = t_lo; T <= t_hi; ++T) {
    const int k = k_bar_for(N, n_active, T, logp, eps);
    const Step lat =
        T + 2 * logp.l_over_o + 2 + static_cast<Step>(w) * static_cast<Step>(k);
    if (lat < best_lat) {
      best_lat = lat;
      best = Tuning{T, k, lat};
    }
  }
  return best;
}

}  // namespace

Tuning tune_ocg(NodeId N, NodeId n_active, const LogP& logp, double eps,
                Step t_lo, Step t_hi) {
  return tune(N, n_active, logp, eps, 1, t_lo, t_hi);
}

Tuning tune_ccg(NodeId N, NodeId n_active, const LogP& logp, double eps,
                Step t_lo, Step t_hi) {
  return tune(N, n_active, logp, eps, 2, t_lo, t_hi);
}

Step ocg_predicted_latency(NodeId N, NodeId n_active, Step T,
                           const LogP& logp, double eps) {
  const int k = k_bar_for(N, n_active, T, logp, eps);
  return T + 2 * logp.l_over_o + 2 + static_cast<Step>(k);
}

Step ccg_predicted_latency(NodeId N, NodeId n_active, Step T,
                           const LogP& logp, double eps) {
  const int k = k_bar_for(N, n_active, T, logp, eps);
  return T + 2 * logp.l_over_o + 2 + 2 * static_cast<Step>(k);
}

}  // namespace cg

#include "analysis/baseline_models.hpp"

#include <cmath>

#include "common/check.hpp"

namespace cg {

int ceil_log2(NodeId n) {
  CG_CHECK(n >= 1);
  int bits = 0;
  NodeId v = 1;
  while (v < n) {
    v = v << 1;
    ++bits;
  }
  return bits;
}

double big_latency_us(NodeId n, const LogP& logp) {
  const double lg = static_cast<double>(ceil_log2(n));
  const double O = logp.o_us;
  const double L = logp.l_us();
  return (2.0 * O + L) * lg + O * lg;
}

std::int64_t big_work(NodeId n) {
  return static_cast<std::int64_t>(n) * ceil_log2(n);
}

int big_max_failures(NodeId n) { return ceil_log2(n) - 1; }

int bfb_online_failures(int f_hat) {
  CG_CHECK(f_hat >= 0);
  return static_cast<int>(std::ceil(0.2 * f_hat));
}

double bfb_latency_us(NodeId n, int online_failures, const LogP& logp) {
  const double lg = static_cast<double>(ceil_log2(n));
  const double tree = (2.0 * logp.o_us + logp.l_us()) * lg;
  return 2.0 * tree + static_cast<double>(online_failures) * tree;
}

std::int64_t bfb_work(NodeId n, int online_failures) {
  return static_cast<std::int64_t>(n) * (1 + online_failures);
}

double gos_latency_us(Step T, const LogP& logp) {
  return logp.us(T) + logp.l_us() + logp.o_us;
}

}  // namespace cg

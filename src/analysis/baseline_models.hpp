// Analytic latency/work models for the baseline broadcasts, exactly as the
// paper uses them in Table 7 and Figure 7 (Section IV-B).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "sim/logp.hpp"

namespace cg {

/// ceil(log2 n) (the paper's log2 P on power-of-two systems).
int ceil_log2(NodeId n);

// --- BIG: binomial graph [2] ------------------------------------------

/// T_BIG = (2O + L) log2 P + O log2 P.
double big_latency_us(NodeId n, const LogP& logp);

/// Every node sends to each of its log2 P neighbors: N log2 P messages.
std::int64_t big_work(NodeId n);

/// Failures tolerated by static routing: log2 P - 1.
int big_max_failures(NodeId n);

// --- BFB: Buntinas' restart tree [8] -----------------------------------

/// The paper's Table-7 assumption: ceil(20%) of the f_hat failures happen
/// while the operation runs; each one restarts the tree.
int bfb_online_failures(int f_hat);

/// T_BFB = 2(2O + L) log2 N, plus one tree latency (2O+L) log2 N per
/// online restart (matches Table 7: 96 -> 144 us for one restart).
double bfb_latency_us(NodeId n, int online_failures, const LogP& logp);

/// Work = N per attempt (paper's Table 7: 4096 / 8192 messages).
std::int64_t bfb_work(NodeId n, int online_failures);

// --- GOS end-of-phase latency ------------------------------------------

/// GOS runs to the fixed schedule T + L + O regardless of coloring.
double gos_latency_us(Step T, const LogP& logp);

}  // namespace cg

// Closed-form expected WORK (message counts) for the gossip family,
// derived from the Eq. 1 coloring curve.  The paper reports simulated
// work; these models predict it and pin down the counting conventions
// (DESIGN.md Section 4.12).
//
// Gossip phase: every node colored by step t-1 emits one message at step
// t (while t < T), so  E[gossip work] = sum_{t=1}^{T-1} c(t-1).
//
// Correction phases (g = c(T+L+O) expected g-nodes, ring of n active
// positions among N names; below n denotes the ACTIVE ring size):
//   * OCG:  every g-node makes exactly `corr_sends` emissions: g * C.
//   * CCG:  a g-node sweeps direction d up to its nearest g-node at
//           distance m_d, plus an overshoot of `slack` offsets while the
//           stop signal is in flight (the alternation race,
//           tests/test_ccg.cpp).  Summing nearest-neighbor distances
//           around the ring gives exactly N per direction:
//              E ~ 2N + 2 g slack          (slack ~ 0.5 empirically)
//   * FCG:  sweeps run to the (f+1)-th g-node (distance sums to (f+1)N
//           per direction) and the finalization round re-sweeps the same
//           span, so
//              E ~ 4 (f+1) N
//           (validated to <0.1% against simulation at N = 4096, f = 1).
#pragma once

#include "common/types.hpp"
#include "sim/logp.hpp"

namespace cg {

/// E[number of gossip emissions] for a gossip phase of length T:
/// sum_{t=1}^{T-1} c(t-1).
double expected_gossip_work(NodeId N, NodeId n_active, Step T,
                            const LogP& logp);

/// E[OCG correction emissions] given `corr_sends` per g-node.
double expected_ocg_corr_work(NodeId N, NodeId n_active, Step T,
                              const LogP& logp, Step corr_sends);

/// E[CCG correction emissions]; `slack` is the mean per-direction
/// overshoot from the alternation race.
double expected_ccg_corr_work(NodeId N, NodeId n_active, Step T,
                              const LogP& logp, double slack = 0.5);

/// E[FCG correction emissions] for resilience f.
double expected_fcg_corr_work(NodeId n_active, int f);

/// Convenience: expected TOTAL work (gossip + correction).
double expected_ocg_work(NodeId N, NodeId n_active, Step T, const LogP& logp,
                         Step corr_sends);
double expected_ccg_work(NodeId N, NodeId n_active, Step T, const LogP& logp);
double expected_fcg_work(NodeId N, NodeId n_active, Step T, const LogP& logp,
                         int f);

}  // namespace cg

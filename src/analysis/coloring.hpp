// Expected gossip coloring c(t) - Lemma 1 / Eq. (1) of the paper.
//
//   c(t+O) = c(t) + (n - c(t)) * [1 - (1 - 1/(N-1))^{c(t-L-O)}]
//
// discretized in steps of O with the emission convention of DESIGN.md:
// arrivals at step s originate from emissions at step s - (L/O+1), whose
// senders are the nodes colored by step s - (L/O+1) - 1; gossip emissions
// stop at step T.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sim/logp.hpp"

namespace cg {

/// Expected colored-node counts c[0..t_max] for a gossip phase of length T
/// on N named nodes of which n_active are active (root active, colored at 0).
std::vector<double> expected_colored(NodeId N, NodeId n_active, Step T,
                                     const LogP& logp, Step t_max);

/// c(T+L+O): expected g-node count when the correction phase starts.
double colored_at_corr_start(NodeId N, NodeId n_active, Step T,
                             const LogP& logp);

/// Smallest T with c(T+L+O) >= n_active - delta (gossip-only coloring
/// target; paper Section III-A "selecting t such that c(t) >= n - delta").
Step gossip_time_for_target(NodeId N, NodeId n_active, double delta,
                            const LogP& logp);

}  // namespace cg

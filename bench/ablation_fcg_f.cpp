// Ablation: FCG's resilience parameter f.  The paper always runs f=1
// (double online failure probability ~7e-19); this bench shows what
// higher resilience would cost in latency and work.
//
//   ./ablation_fcg_f [--n=1024] [--threads=0] [--trials=300] [--seed=1]
#include <cstdio>

#include "analysis/fcg_bound.hpp"
#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 1024));
  const int trials = static_cast<int>(flags.get_int("trials", 300));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const LogP logp = LogP::piz_daint();
  const double eps = 1e-5;

  bench::print_header("Ablation: FCG resilience parameter f");
  std::printf("# N=%d, L=2us, O=1us, %d trials, online failures = f each "
              "run\n", n, trials);

  Table table({"f", "T", "lat[us]", "work", "SOS", "violations"});
  for (const int f : {0, 1, 2, 3}) {
    const FcgTuning t = tune_fcg(n, n, logp, eps, f);
    TrialSpec spec;
    spec.threads = bench::threads_flag(flags);
    spec.algo = Algo::kFcg;
    spec.acfg.T = t.T_opt + 1;
    spec.acfg.fcg_f = f;
    spec.n = n;
    spec.logp = logp;
    spec.seed = derive_seed(seed, static_cast<std::uint64_t>(f));
    spec.trials = trials;
    spec.online_failures = f;  // stress exactly at the tolerance
    spec.online_horizon = spec.acfg.T + 30;
    const TrialAggregate agg = run_trials(spec);
    table.add_row(
        {Table::cell("%d", f),
         Table::cell("%lld", static_cast<long long>(spec.acfg.T)),
         Table::cell("%.1f", logp.us(1) * agg.t_complete.mean()),
         Table::cell("%.0f", agg.work.mean()),
         Table::cell("%lld", static_cast<long long>(agg.sos_trials)),
         Table::cell("%lld",
                     static_cast<long long>(agg.all_or_nothing_violations))});
  }
  table.print();
  std::printf("\n# expectation: zero all-or-nothing violations at every f; "
              "work grows with f (wider sweeps, larger k-arrays)\n");
  return 0;
}

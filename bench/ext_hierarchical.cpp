// Extension: broadcast latency on a two-level (rack) hierarchy.  The paper
// assumes a flat network; here cross-rack messages pay extra latency.
// With rack-contiguous ids the ring-based correction of corrected gossip
// is almost entirely intra-rack, while BIG's power-of-two offsets cross
// racks on most hops - so corrected gossip's advantage WIDENS on
// hierarchical machines.
//
//   ./ext_hierarchical [--n=1024] [--rack=32] [--trials=200] [--seed=1]
#include <cstdio>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/scenarios.hpp"
#include "sim/topology.hpp"

namespace {

/// Trace sink that classifies sends by rack locality.
class RackTrace final : public cg::TraceSink {
 public:
  explicit RackTrace(cg::NodeId rack) : counter_{rack} {}
  void on_event(const cg::TraceEvent& ev) override {
    if (ev.kind == cg::TraceEvent::Kind::kSend)
      counter_.count(ev.node, ev.peer);
  }
  double cross_fraction() const { return counter_.cross_fraction(); }

 private:
  cg::CrossRackCounter counter_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 1024));
  const auto rack = static_cast<NodeId>(flags.get_int("rack", 32));
  const int trials = static_cast<int>(flags.get_int("trials", 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const LogP logp = LogP::piz_daint();
  const double eps = 1e-4;

  bench::print_header("Extension: two-level rack hierarchy");
  std::printf("# N=%d, racks of %d, base L=2us O=1us; cross-rack messages "
              "pay +X us; %d trials\n", n, rack, trials);

  Table table({"extra X", "algo", "tuning", "lat[us]", "cross-rack msgs",
               "all-reached"});
  for (const Step extra : {0, 2, 4, 8}) {
    for (const Algo a : {Algo::kOcg, Algo::kCcg, Algo::kFcg, Algo::kBig}) {
      // flat = paper tuning (assumes uniform L); aware = drain window
      // padded by the cross-rack worst case (+ a T margin for the slower
      // gossip spread).
      for (const bool aware : {false, true}) {
        if (aware && (a == Algo::kBig || extra == 0)) continue;
        TunedAlgo tuned = tune_for(a, n, n, logp, eps, 1);
        if (aware) {
          tuned.acfg.drain_extra = extra;
          tuned.acfg.T += extra;  // gossip needs longer to spread too
          if (a == Algo::kOcg) tuned.acfg.ocg_corr_sends += 2;
        }
      RunningStat lat;
      double cross_frac = 0;
      std::int64_t reached = 0;
      for (int t = 0; t < trials; ++t) {
        RackTrace rt(rack);
        RunConfig cfg;
        cfg.n = n;
        cfg.logp = logp;
        cfg.seed = derive_seed(seed, static_cast<std::uint64_t>(extra) * 997 +
                                         static_cast<std::uint64_t>(a) * 131 +
                                         static_cast<std::uint64_t>(t));
        cfg.link_extra = two_level_topology(rack, extra);
        cfg.link_extra_max = extra;
        cfg.trace = &rt;
        const RunMetrics m = run_once(a, tuned.acfg, cfg);
        const Step l = a == Algo::kBig
                           ? m.t_last_colored
                           : (m.t_complete == kNever ? m.t_end : m.t_complete);
        if (l != kNever) lat.add(logp.us(l));
        cross_frac += rt.cross_fraction();
        if (m.all_active_colored) ++reached;
      }
      table.add_row({Table::cell("%lld", static_cast<long long>(extra)),
                     algo_name(a), aware ? "aware" : "flat",
                     Table::cell("%.1f", lat.mean()),
                     Table::cell("%.0f%%", 100.0 * cross_frac / trials),
                     Table::cell("%lld/%d", static_cast<long long>(reached),
                                 trials)});
      }
    }
  }
  table.print();
  std::printf(
      "\n# reading: the CORRECTION phase is ring-local (watch the "
      "cross-rack share drop), but flat-tuned schedules assume the "
      "uniform L: OCG silently loses reach and CCG/FCG pay full-lap "
      "latency when gossip stragglers miss the drain window.  Padding "
      "the drain window by the cross-rack worst case ('aware' rows) "
      "restores reliability for moderate X; at extreme skew Eq. 1's "
      "uniform-L coloring forecast itself turns optimistic and the "
      "self-checking variants (CCG/FCG) are the robust choice.\n");
  return 0;
}

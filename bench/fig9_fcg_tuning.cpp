// Figure 9: FCG predicted upper bound (Eq. 5 / Appendix B) vs simulated
// completion time as a function of the gossip time T.
// N = n = 1024, L = O = 1, f = 1.
//
//   ./fig9_fcg_tuning [--n=1024] [--threads=0] [--trials=800] [--seed=1] [--f=1]
//                     [--tmin=22] [--tmax=44] [--eps=...]
#include <cstdio>
#include <vector>

#include "analysis/fcg_bound.hpp"
#include "analysis/tuning.hpp"
#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 1024));
  const int trials = static_cast<int>(flags.get_int("trials", 800));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int f = static_cast<int>(flags.get_int("f", 1));
  const Step tmin = flags.get_int("tmin", 22);
  const Step tmax = flags.get_int("tmax", 44);
  const double eps =
      flags.get_double("eps", eps_for_runs(0.5, static_cast<double>(trials)));
  const LogP logp = LogP::unit();

  bench::print_header("Figure 9: FCG completion time vs gossip time T");
  std::printf("# N=n=%d, L=O=1, f=%d, %d trials, eps=%.3g\n", n, f, trials,
              eps);
  const FcgTuning opt = tune_fcg(n, n, logp, eps, f, tmin, tmax);
  std::printf("# model optimum: T=%lld (upper bound %lld steps)\n",
              static_cast<long long>(opt.T_opt),
              static_cast<long long>(opt.predicted_upper));

  Table table({"T", "upper bound (Eq.5)", "simulated max", "simulated p99",
               "simulated mean", "SOS"});
  std::vector<std::pair<double, double>> pred_pts, sim_pts;
  for (Step T = tmin; T <= tmax; T += 2) {
    TrialSpec spec;
    spec.threads = bench::threads_flag(flags);
    spec.algo = Algo::kFcg;
    spec.acfg.T = T;
    spec.acfg.fcg_f = f;
    spec.n = n;
    spec.logp = logp;
    spec.seed = derive_seed(seed, static_cast<std::uint64_t>(T));
    spec.trials = trials;
    const TrialAggregate agg = run_trials(spec);
    const Step bound = fcg_predicted_upper(n, n, T, logp, eps, f);
    pred_pts.emplace_back(static_cast<double>(T), static_cast<double>(bound));
    sim_pts.emplace_back(static_cast<double>(T), agg.t_complete.max());
    table.add_row(
        {Table::cell("%lld", static_cast<long long>(T)),
         Table::cell("%lld", static_cast<long long>(bound)),
         Table::cell("%.0f", agg.t_complete.max()),
         Table::cell("%.0f", agg.t_complete.quantile(0.99)),
         Table::cell("%.1f", agg.t_complete.mean()),
         Table::cell("%lld", static_cast<long long>(agg.sos_trials))});
  }
  table.print();
  bench::maybe_write_csv(flags, table);

  std::printf("\n");
  AsciiPlot plot(static_cast<int>(2 * (tmax - tmin) + 2), 14);
  plot.add_series("predicted (Eq. 5 bound)", '-', pred_pts);
  plot.add_series("simulated max", '*', sim_pts);
  plot.print();
  return 0;
}

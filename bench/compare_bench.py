#!/usr/bin/env python3
"""Engine-throughput regression gate.

Runs the micro_engine google-benchmark binary REPS times (default twice),
takes the best items_per_second per benchmark across runs, and compares it
against the committed baseline: the newest entry of BENCH_engine.json whose
results carry after-throughput numbers.  Any benchmark slower than
(1 - tolerance) * baseline fails the gate.

Best-of-N across separate process invocations is deliberate: the benchmark
boxes are single shared cores where per-run noise exceeds 5%, and the best
observed rate is the most stable estimator of achievable throughput there
(see docs/PERF.md for the measurement protocol).

Usage:
  bench/compare_bench.py --binary build/bench/micro_engine \
      [--baseline BENCH_engine.json] [--tolerance 0.05] [--reps 2] \
      [--filter 'BM_(Engine(Serial|Async|Parallel|Sbrb)|EngineSharded/4096|TrialFarm)'] \
      [--overhead BASE:PROBE:FRAC ...]

--overhead compares two benchmarks WITHIN the current run (no baseline
needed): PROBE must reach at least (1 - FRAC) * BASE items/s.  This is how
the telemetry-on probe is held to the observability contract, e.g.:
  --overhead 'BM_EngineSharded/4096/1:BM_EngineShardedTelemetry/4096/1:0.05'

Exit status: 0 = no regression, 1 = regression, 2 = usage/setup error.
"""

import argparse
import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path


def load_baseline(path: Path) -> dict[str, float]:
    """Per-benchmark after-throughput in M items/s, newest entry winning.

    Entries are merged oldest-to-newest so an entry that re-measures only a
    subset of benchmarks (or introduces a new one, e.g. BM_EngineSbrb)
    updates those names without dropping the rest of the baseline.
    """
    doc = json.loads(path.read_text())
    entries = doc["entries"] if isinstance(doc, dict) else doc
    rates: dict[str, float] = {}
    for entry in entries:
        for row in entry.get("results", []):
            for key in ("after_M_per_s", "after_best_M_per_s"):
                if key in row:
                    rates[row["name"]] = float(row[key])
                    break
    if not rates:
        raise SystemExit(f"error: no usable baseline entry in {path}")
    return rates


def run_bench(binary: Path, bench_filter: str) -> dict[str, float]:
    """One benchmark run; returns items_per_second in M items/s per name."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = Path(tmp.name)
    cmd = [
        str(binary),
        f"--benchmark_filter={bench_filter}",
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
    ]
    try:
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        report = json.loads(out_path.read_text())
    finally:
        out_path.unlink(missing_ok=True)
    rates = {}
    for bm in report.get("benchmarks", []):
        if bm.get("run_type") == "aggregate":
            continue
        ips = bm.get("items_per_second")
        if ips is not None:
            rates[bm["name"]] = ips / 1e6
    return rates


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--binary", type=Path,
                    default=repo / "build" / "bench" / "micro_engine")
    ap.add_argument("--baseline", type=Path,
                    default=repo / "BENCH_engine.json")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed fractional slowdown (default 0.05)")
    ap.add_argument("--reps", type=int, default=2,
                    help="benchmark process invocations; best rate wins")
    ap.add_argument("--filter", default="BM_(Engine(Serial|Async|Parallel)|EngineSbrb(Sharded)?/(1024|4096)|EngineSharded/4096|TrialFarm)",
                    help="regex passed to --benchmark_filter")
    ap.add_argument("--overhead", action="append", default=[],
                    metavar="BASE:PROBE:FRAC",
                    help="require PROBE >= (1-FRAC)*BASE within this run; "
                         "repeatable")
    args = ap.parse_args()

    overhead_checks = []
    for spec in args.overhead:
        parts = spec.rsplit(":", 1)
        names = parts[0].split(":") if len(parts) == 2 else []
        if len(parts) != 2 or len(names) != 2:
            print(f"error: bad --overhead spec {spec!r} "
                  "(want BASE:PROBE:FRAC)", file=sys.stderr)
            return 2
        try:
            frac = float(parts[1])
        except ValueError:
            print(f"error: bad --overhead fraction in {spec!r}",
                  file=sys.stderr)
            return 2
        overhead_checks.append((names[0], names[1], frac))

    if not args.binary.is_file():
        print(f"error: benchmark binary not found: {args.binary}",
              file=sys.stderr)
        return 2
    baseline = load_baseline(args.baseline)

    best: dict[str, float] = {}
    for rep in range(max(1, args.reps)):
        for name, rate in run_bench(args.binary, args.filter).items():
            best[name] = max(best.get(name, 0.0), rate)
        print(f"run {rep + 1}/{args.reps} done", file=sys.stderr)

    pat = re.compile(args.filter)
    checked, regressed = 0, []
    print(f"{'benchmark':35} {'baseline':>9} {'now':>9} {'ratio':>7}")
    for name, base_rate in sorted(baseline.items()):
        if not pat.search(name):
            continue
        if name not in best:
            print(f"warning: baseline benchmark {name} not in output",
                  file=sys.stderr)
            continue
        checked += 1
        ratio = best[name] / base_rate
        flag = "" if ratio >= 1.0 - args.tolerance else "  << REGRESSION"
        print(f"{name:35} {base_rate:9.3f} {best[name]:9.3f} "
              f"{ratio:7.3f}{flag}")
        if flag:
            regressed.append(name)

    # Same-run overhead gates (probe vs base, independent of the baseline).
    for base_name, probe_name, frac in overhead_checks:
        missing = [n for n in (base_name, probe_name) if n not in best]
        if missing:
            print(f"error: --overhead benchmark(s) not in output: "
                  f"{', '.join(missing)} (widen --filter?)", file=sys.stderr)
            return 2
        checked += 1
        ratio = best[probe_name] / best[base_name]
        flag = "" if ratio >= 1.0 - frac else "  << REGRESSION"
        print(f"{probe_name:35} {best[base_name]:9.3f} "
              f"{best[probe_name]:9.3f} {ratio:7.3f}{flag}"
              f"  (overhead gate {frac:.0%})")
        if flag:
            regressed.append(probe_name)

    if checked == 0:
        print("error: no benchmarks compared (filter too narrow?)",
              file=sys.stderr)
        return 2
    if regressed:
        print(f"FAIL: {len(regressed)} benchmark(s) regressed more than "
              f"{args.tolerance:.0%}: {', '.join(regressed)}",
              file=sys.stderr)
        return 1
    print(f"OK: {checked} benchmark(s) within {args.tolerance:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

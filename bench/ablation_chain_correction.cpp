// Ablation: plain OCG sweep vs the chained correction the paper sketches
// for O > L (Section III-B discussion).  Chains relay hop-by-hop through
// c-nodes: minimal work, but each hop pays a serial L+2O, so the latency
// winner flips with the L/O ratio.
//
//   ./ablation_chain_correction [--n=1024] [--threads=0] [--trials=300] [--seed=1]
#include <cstdio>

#include "analysis/tuning.hpp"
#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 1024));
  const int trials = static_cast<int>(flags.get_int("trials", 300));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double eps = 1e-4;

  bench::print_header("Ablation: OCG sweep vs chained correction");
  std::printf("# N=%d, %d trials; latency = completion mean [us]\n", n, trials);

  Table table({"L/O", "algo", "lat[us]", "corr work", "total work",
               "all-reached"});
  for (const Step l_over_o : {0, 1, 2, 4}) {
    const LogP logp{.l_over_o = l_over_o, .o_us = 1.0};
    const Tuning t = tune_ocg(n, n, logp, eps);
    const int k = k_bar_for(n, n, t.T_opt + 1, logp, eps);
    for (const Algo a : {Algo::kOcg, Algo::kOcgChain}) {
      TrialSpec spec;
      spec.threads = bench::threads_flag(flags);
      spec.algo = a;
      spec.acfg.T = t.T_opt + 1;
      spec.acfg.ocg_corr_sends = a == Algo::kOcg ? k + 1 : k;
      spec.n = n;
      spec.logp = logp;
      spec.seed = derive_seed(seed, static_cast<std::uint64_t>(l_over_o) * 4 +
                                        static_cast<std::uint64_t>(a));
      spec.trials = trials;
      const TrialAggregate agg = run_trials(spec);
      table.add_row(
          {Table::cell("%lld", static_cast<long long>(l_over_o)),
           algo_name(a),
           Table::cell("%.1f",
                       logp.us(1) * (agg.t_complete.empty()
                                         ? 0.0
                                         : agg.t_complete.mean())),
           Table::cell("%.0f", agg.work_correction.mean()),
           Table::cell("%.0f", agg.work.mean()),
           Table::cell("%lld/%lld",
                       static_cast<long long>(agg.all_colored_trials),
                       static_cast<long long>(agg.trials))});
    }
  }
  table.print();
  std::printf("\n# expectation: OCG-CHAIN always wins correction work by a "
              "wide margin; its latency premium grows with L/O (each hop "
              "pays the wire), matching the paper's O<=L guidance\n");
  return 0;
}

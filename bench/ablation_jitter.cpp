// Ablation: robustness to network jitter.  The paper's model assumes an
// exact latency L; real networks wobble.  We add uniform extra delay of
// 0..J steps per message and watch each algorithm's consistency and
// latency.  Corrected gossip's stop rules are order-insensitive (min /
// set-merge), so correctness should hold; only the schedules stretch.
//
//   ./ablation_jitter [--n=1024] [--threads=0] [--trials=300] [--seed=1]
#include <cstdio>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 1024));
  const int trials = static_cast<int>(flags.get_int("trials", 300));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const LogP logp = LogP::piz_daint();
  const double eps = 1e-4;

  bench::print_header("Ablation: uniform per-message jitter of 0..J steps");
  std::printf("# N=%d, L=2us, O=1us, %d trials; parameters tuned for J=0\n",
              n, trials);

  Table table({"J", "algo", "lat[us]", "all-reached", "all-or-nothing"});
  for (const Step jitter : {0, 1, 2, 4}) {
    for (const Algo a : {Algo::kOcg, Algo::kCcg, Algo::kFcg}) {
      const TunedAlgo tuned = tune_for(a, n, n, logp, eps, 1);
      TrialSpec spec;
      spec.threads = bench::threads_flag(flags);
      spec.algo = a;
      spec.acfg = tuned.acfg;
      spec.n = n;
      spec.logp = logp;
      spec.jitter_max = jitter;
      spec.seed = derive_seed(seed, static_cast<std::uint64_t>(jitter) * 8 +
                                        static_cast<std::uint64_t>(a));
      spec.trials = trials;
      const TrialAggregate agg = run_trials(spec);
      table.add_row(
          {Table::cell("%lld", static_cast<long long>(jitter)), algo_name(a),
           Table::cell("%.1f", logp.us(1) * reported_latency_steps(a, agg)),
           Table::cell("%lld/%lld",
                       static_cast<long long>(agg.all_colored_trials),
                       static_cast<long long>(agg.trials)),
           a == Algo::kFcg
               ? Table::cell("%lld/%lld",
                             static_cast<long long>(
                                 agg.trials - agg.all_or_nothing_violations),
                             static_cast<long long>(agg.trials))
               : std::string("n/a")});
    }
  }
  table.print();
  std::printf("\n# expectation: CCG/FCG stay consistent at every J (their "
              "stop rules are order-insensitive); OCG's fixed schedule can "
              "start missing nodes once jitter eats its +O margins\n");
  return 0;
}

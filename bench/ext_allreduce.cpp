// Extension benchmark: corrected-gossip all-reduce (max) - latency, work,
// and exactness across scales, with the BIG-style alternative (broadcast
// of a tree-reduced value) modeled for comparison.  Realizes the paper's
// conclusion that corrected gossip should extend to other collectives.
//
//   ./ext_allreduce [--max-n=4096] [--trials=150] [--seed=1]
#include <cstdio>

#include "analysis/baseline_models.hpp"
#include "analysis/tuning.hpp"
#include "bench_util.hpp"
#include "collectives/allreduce.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto max_n = static_cast<NodeId>(flags.get_int("max-n", 4096));
  const int trials = static_cast<int>(flags.get_int("trials", 150));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const LogP logp = LogP::piz_daint();
  const double eps = 1e-4;

  bench::print_header("Extension: corrected-gossip all-reduce (max)");
  std::printf("# L=2us, O=1us, eps=%.0e, %d trials per point\n", eps, trials);

  Table table({"N", "T", "sweeps C", "lat[us]", "work", "exact",
               "2x BIG bcast [us]"});
  for (NodeId n = 64; n <= max_n; n *= 2) {
    const Tuning t = tune_ocg(n, n, logp, eps);
    AllreduceNode::Params p;
    p.T = t.T_opt + 1;
    p.corr_sends = allreduce_sweeps(n, p.T, logp, eps);

    RunningStat lat, work;
    int exact = 0;
    for (int k = 0; k < trials; ++k) {
      RunConfig cfg;
      cfg.n = n;
      cfg.logp = logp;
      cfg.seed = derive_seed(seed, static_cast<std::uint64_t>(n) * 1000 +
                                       static_cast<std::uint64_t>(k));
      const AllreduceResult r = run_allreduce(p, cfg);
      lat.add(logp.us(r.t_complete));
      work.add(static_cast<double>(r.messages));
      if (r.all_correct) ++exact;
    }
    table.add_row({Table::cell("%d", n),
                   Table::cell("%lld", static_cast<long long>(p.T)),
                   Table::cell("%lld", static_cast<long long>(p.corr_sends)),
                   Table::cell("%.1f", lat.mean()),
                   Table::cell("%.0f", work.mean()),
                   Table::cell("%d/%d", exact, trials),
                   // reduce-then-broadcast alternative: 2x a BIG traversal
                   Table::cell("%.0f", 2.0 * big_latency_us(n, logp))});
  }
  table.print();
  std::printf("\n# reading: every node converges to the exact global max "
              "with probability >= 1-eps; latency tracks the broadcast "
              "optimum + one sweep, well under a reduce-then-broadcast\n");
  return 0;
}

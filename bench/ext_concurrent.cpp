// Extension: K concurrent broadcasts sharing each node's injection slot.
// A communication library rarely runs one broadcast at a time; this bench
// measures how corrected gossip's latency scales with concurrency when
// the per-node LogP send capacity is the bottleneck.
//
//   ./ext_concurrent [--n=512] [--trials=100] [--seed=1]
#include <cstdio>

#include "analysis/tuning.hpp"
#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "session/multibcast.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 512));
  const int trials = static_cast<int>(flags.get_int("trials", 100));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const LogP logp = LogP::piz_daint();
  const double eps = 1e-4;

  const Tuning t = tune_ccg(n, n, logp, eps);
  const Step T = t.T_opt + 1;

  bench::print_header("Extension: K concurrent CCG broadcasts");
  std::printf("# N=%d, L=2us, O=1us, per-broadcast T=%lld, %d trials\n", n,
              static_cast<long long>(T), trials);

  Table table({"K", "lat[us] (all done)", "per-bcast overhead", "work",
               "all-reached"});
  double base = 0;
  for (const int k : {1, 2, 4, 8, 16}) {
    RunningStat lat, work;
    std::int64_t reached = 0;
    for (int tr = 0; tr < trials; ++tr) {
      MultiBcastNode::Params p;
      for (int b = 0; b < k; ++b)
        p.plans.push_back({static_cast<NodeId>(b * (n / k)), 0, T});
      RunConfig cfg;
      cfg.n = n;
      cfg.logp = logp;
      cfg.seed = derive_seed(seed, static_cast<std::uint64_t>(k) * 1000 +
                                       static_cast<std::uint64_t>(tr));
      Engine<MultiBcastNode> eng(cfg, p);
      const RunMetrics m = eng.run();
      if (m.all_active_colored) ++reached;
      lat.add(logp.us(m.t_complete == kNever ? m.t_end : m.t_complete));
      work.add(static_cast<double>(m.msgs_total));
    }
    if (k == 1) base = lat.mean();
    table.add_row({Table::cell("%d", k), Table::cell("%.1f", lat.mean()),
                   Table::cell("%.2fx", lat.mean() / base),
                   Table::cell("%.0f", work.mean()),
                   Table::cell("%lld/%d", static_cast<long long>(reached),
                               trials)});
  }
  table.print();
  std::printf("\n# reading: each extra in-flight broadcast shares the "
              "send slots, so completion grows sub-linearly in K while "
              "every broadcast still reaches every node (CCG's stop rules "
              "are slot-schedule independent)\n");
  return 0;
}

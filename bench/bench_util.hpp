// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "common/types.hpp"
#include "harness/runner.hpp"

namespace cg::bench {

/// Longest circular run of nodes NOT colored by step `t`
/// (colored_at[i] == kNever counts as uncolored).
inline int max_uncolored_gap(const std::vector<Step>& colored_at, Step t) {
  const auto n = static_cast<int>(colored_at.size());
  auto is_colored = [&](int i) {
    return colored_at[static_cast<std::size_t>(i)] != kNever &&
           colored_at[static_cast<std::size_t>(i)] <= t;
  };
  int first_colored = -1;
  for (int i = 0; i < n; ++i) {
    if (is_colored(i)) {
      first_colored = i;
      break;
    }
  }
  if (first_colored < 0) return n;  // nobody colored
  int max_gap = 0, cur = 0;
  for (int k = 1; k <= n; ++k) {  // walk one full circle from a colored node
    const int i = (first_colored + k) % n;
    if (is_colored(i)) {
      max_gap = std::max(max_gap, cur);
      cur = 0;
    } else {
      ++cur;
    }
  }
  return std::max(max_gap, cur);
}

inline void print_header(const char* title) {
  std::printf("# %s\n", title);
}

/// Shared --threads flag for the trial-farm drivers: 0 (the default)
/// means auto-detect (see cg::resolve_threads).  Results are identical
/// for every value - the farm's determinism contract (docs/PERF.md §5).
inline int threads_flag(const Flags& flags) {
  return static_cast<int>(flags.get_int("threads", 0));
}

/// Shared --engine / --shards flags: pick the execution engine carrying
/// the runs (identical results across engines; the wall-clock profile
/// differs).  Exits with a clean error on an unknown engine name.
inline ExecConfig exec_flag(const Flags& flags) {
  ExecConfig exec;
  const std::string name = flags.get_string("engine", "stepped");
  if (!engine_from_name(name, exec.engine)) {
    std::fprintf(stderr, "unknown --engine=%s (%s)\n", name.c_str(),
                 engine_names_list());
    std::exit(2);
  }
  exec.threads = static_cast<int>(flags.get_int("shards", 1));
  return exec;
}

/// If --csv=<path> was passed, write the table's CSV there (for plotting
/// the figure with external tools).  Returns true if written.
bool maybe_write_csv(const Flags& flags, const Table& table);

}  // namespace cg::bench

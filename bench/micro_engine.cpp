// google-benchmark microbenchmarks: simulator throughput and the cost of
// the analytic tuning pipeline (the "model-driven tuning is cheap" claim).
#include <benchmark/benchmark.h>

#include "analysis/chain.hpp"
#include "analysis/coloring.hpp"
#include "analysis/tuning.hpp"
#include "common/rng.hpp"
#include "gossip/ccg.hpp"
#include "gossip/fcg.hpp"
#include "gossip/sbrb.hpp"
#include "harness/experiment.hpp"
#include "harness/runner.hpp"
#include "obs/telemetry.hpp"
#include "runtime/parallel_engine.hpp"
#include "sim/async_engine.hpp"
#include "sim/sharded_engine.hpp"

namespace cg {
namespace {

void BM_Rng(benchmark::State& state) {
  Xoshiro256 g(1);
  for (auto _ : state) benchmark::DoNotOptimize(g.other_node(0, 4096));
}
BENCHMARK(BM_Rng);

void BM_GosRun(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = LogP::piz_daint();
    cfg.seed = seed++;
    AlgoConfig acfg;
    acfg.T = 30;
    benchmark::DoNotOptimize(run_once(Algo::kGos, acfg, cfg));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GosRun)->Arg(1024)->Arg(4096);

void BM_CcgRun(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = LogP::piz_daint();
    cfg.seed = seed++;
    AlgoConfig acfg;
    acfg.T = 30;
    benchmark::DoNotOptimize(run_once(Algo::kCcg, acfg, cfg));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CcgRun)->Arg(1024)->Arg(4096);

void BM_FcgRun(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = LogP::piz_daint();
    cfg.seed = seed++;
    AlgoConfig acfg;
    acfg.T = 30;
    acfg.fcg_f = 1;
    benchmark::DoNotOptimize(run_once(Algo::kFcg, acfg, cfg));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FcgRun)->Arg(1024)->Arg(4096);

// Engine-layer throughput probes (BENCH_engine.json): the same CCG workload
// through each execution engine, items/sec = simulated node-steps/sec.
void BM_EngineSerial(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = LogP::piz_daint();
    cfg.seed = seed++;
    CcgNode::Params p;
    p.T = 30;
    Engine<CcgNode> eng(cfg, p);
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineSerial)->Arg(1024)->Arg(4096);

void BM_EngineAsync(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = LogP::piz_daint();
    cfg.seed = seed++;
    CcgNode::Params p;
    p.T = 30;
    AsyncEngine<CcgNode> eng(cfg, p);
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineAsync)->Arg(1024)->Arg(4096);

void BM_EngineParallel(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = LogP::piz_daint();
    cfg.seed = seed++;
    CcgNode::Params p;
    p.T = 30;
    ParallelEngine<CcgNode> eng(cfg, p, threads);
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineParallel)
    ->Args({4096, 1})
    ->Args({4096, 2})
    ->Args({4096, 4})
    ->Args({4096, 8});

// SBRB (sample-based Byzantine reliable broadcast) through the serial
// engine, tuned for eps = 1e-4 against a 10% adversary.  Every node runs
// echo/ready/delivery quorums over its samples, so this is far chattier
// than CCG by design - the number tracks the cost of the Byzantine
// defense, not a regression against BM_EngineSerial.
void BM_EngineSbrb(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  SbrbNode::Params p;
  p.s = sbrb_samples(n, 1e-4, 0.1);
  p.deadline = sbrb_deadline(p.s, LogP::piz_daint());
  for (auto _ : state) {
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = LogP::piz_daint();
    cfg.seed = seed++;
    Engine<SbrbNode> eng(cfg, p);
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineSbrb)->Arg(1024)->Arg(4096);

// SBRB on the window-sharded SoA engine: the staged-send step kernel
// sweeps the pending-sends bitmap instead of ticking every active node,
// which is what makes the 65536-node runs feasible (docs/PERF.md §7).
void BM_EngineSbrbSharded(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto shards = static_cast<int>(state.range(1));
  std::uint64_t seed = 1;
  SbrbNode::Params p;
  p.s = sbrb_samples(n, 1e-4, 0.1);
  p.deadline = sbrb_deadline(p.s, LogP::piz_daint());
  for (auto _ : state) {
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = LogP::piz_daint();
    cfg.seed = seed++;
    ShardedEngine<SbrbNode> eng(cfg, p, shards);
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineSbrbSharded)->Args({4096, 1})->Args({4096, 8});

// The window-sharded SoA engine, same CCG workload, at bench scale and at
// the scales it exists for ({65536, 1M} nodes x {1, 8} shards).  The big
// arguments run ONE iteration per repetition by design - a 1M-node run is
// seconds, not microseconds; use --benchmark_min_time=1x when eyeballing.
void BM_EngineSharded(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto shards = static_cast<int>(state.range(1));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = LogP::piz_daint();
    cfg.seed = seed++;
    CcgNode::Params p;
    p.T = 30;
    ShardedEngine<CcgNode> eng(cfg, p, shards);
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineSharded)
    ->Args({4096, 1})
    ->Args({4096, 8})
    ->Args({65536, 1})
    ->Args({65536, 8})
    ->Args({1048576, 1})
    ->Unit(benchmark::kMillisecond);

// Telemetry overhead probe: BM_EngineSharded with a Telemetry registry
// attached.  The PR 2 observability contract caps the regression vs the
// plain run at 5% (compare_bench.py --overhead gates it in bench-smoke;
// the measured numbers live in BENCH_engine.json).
void BM_EngineShardedTelemetry(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto shards = static_cast<int>(state.range(1));
  std::uint64_t seed = 1;
  Telemetry telemetry;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = LogP::piz_daint();
    cfg.seed = seed++;
    cfg.telemetry = &telemetry;
    CcgNode::Params p;
    p.T = 30;
    ShardedEngine<CcgNode> eng(cfg, p, shards);
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineShardedTelemetry)
    ->Args({4096, 1})
    ->Args({1048576, 1})
    ->Unit(benchmark::kMillisecond);

// The 65536-node cross-engine comparison points BENCH_engine.json cites
// (serial/async/SBRB at the sharded engine's home scale).  Excluded from
// the bench-smoke filter - these are ms-per-run data points, not gates.
BENCHMARK(BM_EngineSerial)->Arg(65536)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineSbrb)->Arg(65536)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineSbrbSharded)
    ->Args({65536, 1})
    ->Args({65536, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineAsync)->Arg(65536)->Unit(benchmark::kMillisecond);

// Trial-farm throughput: run_trials() end to end (pool scheduling, engine
// reuse, deterministic reduction included), items/sec = trials/sec.  The
// seed advances every iteration so engine reuse cannot cache results, and
// the aggregate mean is consumed so the work is not dead.  NOTE on the
// thread sweep: the caller participates as worker 0, so on a 1-core box
// items/sec stays roughly flat across thread counts instead of showing
// fictitious speedups (see docs/PERF.md §5 for the accounting argument).
void BM_TrialFarm(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  constexpr int kTrials = 512;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    TrialSpec spec;
    spec.algo = Algo::kCcg;
    spec.acfg.T = 22;
    spec.n = 256;
    spec.logp = LogP::piz_daint();
    spec.trials = kTrials;
    spec.threads = threads;
    spec.seed = seed++;
    const TrialAggregate agg = run_trials(spec);
    benchmark::DoNotOptimize(agg.work.mean());
  }
  state.SetItemsProcessed(state.iterations() * kTrials);
}
BENCHMARK(BM_TrialFarm)->Arg(1)->Arg(4)->Arg(8);

// Self-profiling probes: the serial workload with an EngineProfile attached
// (RunConfig::profile).  Reports the engine's own callbacks/sec counter so
// BENCH_engine.json can track event throughput, and lets an A/B against
// BM_EngineSerial measure the cost of profiling itself.
void BM_EngineSerialProfiled(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  std::int64_t events = 0;
  double wall = 0;
  for (auto _ : state) {
    EngineProfile prof;
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = LogP::piz_daint();
    cfg.seed = seed++;
    cfg.profile = &prof;
    CcgNode::Params p;
    p.T = 30;
    Engine<CcgNode> eng(cfg, p);
    benchmark::DoNotOptimize(eng.run());
    events += prof.events();
    wall += prof.wall_s;
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["engine_events_per_sec"] =
      wall > 0 ? static_cast<double>(events) / wall : 0;
}
BENCHMARK(BM_EngineSerialProfiled)->Arg(4096);

void BM_EngineParallelProfiled(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  std::uint64_t seed = 1;
  std::int64_t events = 0;
  double wall = 0;
  for (auto _ : state) {
    EngineProfile prof;
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = LogP::piz_daint();
    cfg.seed = seed++;
    cfg.profile = &prof;
    CcgNode::Params p;
    p.T = 30;
    ParallelEngine<CcgNode> eng(cfg, p, threads);
    benchmark::DoNotOptimize(eng.run());
    events += prof.events();
    wall += prof.wall_s;
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["engine_events_per_sec"] =
      wall > 0 ? static_cast<double>(events) / wall : 0;
}
BENCHMARK(BM_EngineParallelProfiled)->Args({4096, 4});

void BM_ExpectedColored(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        expected_colored(4096, 4096, 40, LogP::piz_daint(), 44));
}
BENCHMARK(BM_ExpectedColored);

void BM_ChainDist(benchmark::State& state) {
  for (auto _ : state) {
    ChainDist d(4096, 4050.0);
    benchmark::DoNotOptimize(d.k_bar(1e-6));
  }
}
BENCHMARK(BM_ChainDist);

void BM_TuneOcg(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        tune_ocg(4096, 4096, LogP::piz_daint(), 6.93e-7));
}
BENCHMARK(BM_TuneOcg);

void BM_KnownGNodesInsert(benchmark::State& state) {
  Xoshiro256 g(3);
  for (auto _ : state) {
    KnownGNodes k(Ring(4096), 0, Dir::kFwd, 4);
    for (int i = 0; i < 32; ++i)
      k.insert(static_cast<NodeId>(g.bounded(4095) + 1));
    benchmark::DoNotOptimize(k.size());
  }
}
BENCHMARK(BM_KnownGNodesInsert);

}  // namespace
}  // namespace cg

BENCHMARK_MAIN();

// Ablation: receive-overhead modeling (DESIGN.md Section 2).  The paper's
// pseudo-code drains every pending message per loop iteration while strict
// LogP charges O per receive; this bench quantifies how much the choice
// changes the reported metrics.
//
//   ./ablation_rx_policy [--n=1024] [--threads=0] [--trials=300] [--seed=1]
#include <cstdio>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 1024));
  const int trials = static_cast<int>(flags.get_int("trials", 300));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const LogP logp = LogP::piz_daint();
  const double eps = 1e-5;

  bench::print_header("Ablation: drain-all vs one-receive-per-step");
  std::printf("# N=%d, L=2us, O=1us, %d trials\n", n, trials);

  Table table({"algo", "rx policy", "lat[us]", "work", "all-reached"});
  for (const Algo a : {Algo::kGos, Algo::kOcg, Algo::kCcg, Algo::kFcg}) {
    const TunedAlgo tuned = tune_for(a, n, n, logp, eps, 1);
    for (const RxPolicy rx : {RxPolicy::kDrainAll, RxPolicy::kOnePerStep}) {
      TrialSpec spec;
      spec.threads = bench::threads_flag(flags);
      spec.algo = a;
      spec.acfg = tuned.acfg;
      spec.n = n;
      spec.logp = logp;
      spec.rx = rx;
      spec.seed = seed;
      spec.trials = trials;
      const TrialAggregate agg = run_trials(spec);
      table.add_row(
          {algo_name(a),
           rx == RxPolicy::kDrainAll ? "drain-all" : "one-per-step",
           Table::cell("%.1f", logp.us(1) * reported_latency_steps(a, agg)),
           Table::cell("%.0f", agg.work.mean()),
           Table::cell("%lld/%lld",
                       static_cast<long long>(agg.all_colored_trials),
                       static_cast<long long>(agg.trials))});
    }
  }
  table.print();
  std::printf("\n# expectation: serializing receives delays coloring "
              "slightly during the dense gossip phase; correction phases "
              "are sparse and barely move\n");
  return 0;
}

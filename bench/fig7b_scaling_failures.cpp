// Figure 7b: latency scaling with N/64 (1.5625%) failed nodes.  Simulated
// medians for OCG, CCG, FCG (tuned for the reduced active count); analytic
// lines for BIG and BFB.  "opt" is omitted, as in the paper (it would not
// be consistent under failures).
//
//   ./fig7b_scaling_failures [--max-n=16384] [--trials=200] [--seed=1]
//                            [--threads=0] [--engine=...] [--shards=K]
#include <cstdio>
#include <vector>

#include "analysis/baseline_models.hpp"
#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto max_n = static_cast<NodeId>(flags.get_int("max-n", 16384));
  const int base_trials = static_cast<int>(flags.get_int("trials", 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2));
  const double eps = flags.get_double("eps", paper_eps());
  const ExecConfig exec = bench::exec_flag(flags);
  const LogP logp = LogP::piz_daint();

  bench::print_header("Figure 7b: latency scaling with N/64 node failures");
  std::printf("# L=2us, O=1us, eps=%.3g; pre-failed = N/64\n", eps);

  Table table({"N", "fails", "OCG", "OCG incon", "CCG", "FCG", "BIG", "BFB"});
  for (NodeId n = 64; n <= max_n; n *= 2) {
    const int trials =
        std::max(30, base_trials * 2048 / std::max<NodeId>(n, 2048));
    const int fails = n / 64;
    std::vector<std::string> row{Table::cell("%d", n),
                                 Table::cell("%d", fails)};
    double ocg_incon = 0;
    for (const Algo a : {Algo::kOcg, Algo::kCcg, Algo::kFcg}) {
      const ScenarioResult r =
          run_scenario(a, n, fails, logp, trials,
                       derive_seed(seed, static_cast<std::uint64_t>(n) * 8 +
                                             static_cast<std::uint64_t>(a)),
                       eps, 1, bench::threads_flag(flags), exec);
      row.push_back(Table::cell(
          "%.0f", logp.us(1) * (r.agg.t_complete.empty()
                                    ? 0.0
                                    : r.agg.t_complete.median())));
      if (a == Algo::kOcg) {
        ocg_incon = r.incon;
        row.push_back(Table::cell("%.2g%%", ocg_incon * 100.0));
      }
    }
    row.push_back(Table::cell("%.0f", big_latency_us(n, logp)));
    // BFB: ceil(20%) of the failures counted as online restarts.
    row.push_back(Table::cell(
        "%.0f", bfb_latency_us(n, bfb_online_failures(fails), logp)));
    table.add_row(std::move(row));
  }
  table.print();
  bench::maybe_write_csv(flags, table);
  std::printf("\n# paper shape: all strongly consistent except OCG "
              "(>=99.999%% consistent); FCG beats BIG from N>256; BIG may "
              "lose consistency for N>22001 on TSUBAME2 failure rates\n");
  return 0;
}

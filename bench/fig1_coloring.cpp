// Figure 1: expected number of g-nodes c(t) and the 99%-probable longest
// uncolored chain K over time, N = n = 1024, L = O = 1; the "opt" marker
// is the optimal-broadcast completion time.
//
//   ./fig1_coloring [--n=1024] [--trials=400] [--seed=1] [--tmax=34]
//                   [--rounds]   (also show the Drezner-Barak round model)
#include <cstdio>
#include <vector>

#include "analysis/chain.hpp"
#include "analysis/coloring.hpp"
#include "baselines/opt_tree.hpp"
#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "gossip/round_gossip.hpp"
#include "harness/runner.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 1024));
  const int trials = static_cast<int>(flags.get_int("trials", 400));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const Step tmax = flags.get_int("tmax", 34);
  const LogP logp = LogP::unit();

  bench::print_header(
      "Figure 1: expected g-nodes c(t) and 99%-longest uncolored chain K");
  std::printf("# N=n=%d, L=O=1, %d trials; opt completes at t=%lld\n", n,
              trials, static_cast<long long>(opt_latency_steps(n, logp)));

  // Simulate plain gossip with a long window and collect coloring times.
  std::vector<std::vector<Step>> runs;
  runs.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = logp;
    cfg.seed = derive_seed(seed, static_cast<std::uint64_t>(t));
    cfg.record_node_detail = true;
    AlgoConfig acfg;
    acfg.T = tmax + 4;
    runs.push_back(run_once(Algo::kGos, acfg, cfg).colored_at);
  }

  const auto c = expected_colored(n, n, tmax + 4, logp, tmax);

  Table table({"t", "c(t) analytic", "c(t) simulated", "K99 simulated",
               "K99 analytic (Eq.2)"});
  std::vector<std::pair<double, double>> c_pts, k_pts;
  for (Step t = 0; t <= tmax; t += 2) {
    RunningStat colored;
    Samples gaps;
    for (const auto& run : runs) {
      int count = 0;
      for (const Step ct : run) {
        if (ct != kNever && ct <= t) ++count;
      }
      colored.add(count);
      gaps.add(bench::max_uncolored_gap(run, t));
    }
    const ChainDist cd(n, c[static_cast<std::size_t>(t)]);
    c_pts.emplace_back(static_cast<double>(t), colored.mean());
    k_pts.emplace_back(static_cast<double>(t), gaps.quantile(0.99));
    table.add_row({Table::cell("%lld", static_cast<long long>(t)),
                   Table::cell("%.1f", c[static_cast<std::size_t>(t)]),
                   Table::cell("%.1f", colored.mean()),
                   Table::cell("%.0f", gaps.quantile(0.99)),
                   Table::cell("%d", cd.k_bar(0.01))});
  }
  table.print();
  bench::maybe_write_csv(flags, table);

  std::printf("\n");
  AsciiPlot plot(static_cast<int>(2 * tmax + 2), 14);
  plot.add_series("c(t) simulated (g-nodes)", '*', c_pts);
  plot.add_series("K99 (longest uncolored chain)", 'k', k_pts);
  plot.print();

  if (flags.get_bool("rounds", false)) {
    std::printf(
        "\n# Drezner-Barak round model: success rate of full coloring\n");
    Table rt({"rounds", "success rate", "mean informed"});
    Xoshiro256 rng(seed);
    for (int rounds = 14; rounds <= 22; ++rounds) {
      int full = 0;
      RunningStat informed;
      for (int t = 0; t < trials; ++t) {
        const auto res = round_gossip(1000, rounds, rng);
        informed.add(res.informed);
        if (res.informed == 1000) ++full;
      }
      rt.add_row({Table::cell("%d", rounds),
                  Table::cell("%.3f", static_cast<double>(full) / trials),
                  Table::cell("%.1f", informed.mean())});
    }
    rt.print();
  }
  return 0;
}

// Figure 5: CCG predicted vs simulated total time (reach all nodes AND
// complete the algorithm) as a function of the gossip time T.
// N = n = 1024, L = O = 1.
//
//   ./fig5_ccg_tuning [--n=1024] [--threads=0] [--trials=1500] [--seed=1]
//                     [--tmin=18] [--tmax=36] [--eps=...]
#include <cstdio>
#include <vector>

#include "analysis/tuning.hpp"
#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 1024));
  const int trials = static_cast<int>(flags.get_int("trials", 1500));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const Step tmin = flags.get_int("tmin", 18);
  const Step tmax = flags.get_int("tmax", 36);
  const double eps =
      flags.get_double("eps", eps_for_runs(0.5, static_cast<double>(trials)));
  const LogP logp = LogP::unit();

  bench::print_header("Figure 5: CCG completion time vs gossip time T");
  std::printf("# N=n=%d, L=O=1, %d trials, eps=%.3g\n", n, trials, eps);
  const Tuning opt = tune_ccg(n, n, logp, eps, tmin, tmax);
  std::printf("# model optimum: T=%lld (predicted %lld steps)\n",
              static_cast<long long>(opt.T_opt),
              static_cast<long long>(opt.predicted_latency));

  Table table({"T", "predicted (Eq.4)", "simulated max", "simulated p99",
               "simulated mean", "all-reached"});
  std::vector<std::pair<double, double>> pred_pts, sim_pts;
  for (Step T = tmin; T <= tmax; ++T) {
    TrialSpec spec;
    spec.threads = bench::threads_flag(flags);
    spec.algo = Algo::kCcg;
    spec.acfg.T = T;
    spec.n = n;
    spec.logp = logp;
    spec.seed = derive_seed(seed, static_cast<std::uint64_t>(T));
    spec.trials = trials;
    const TrialAggregate agg = run_trials(spec);
    const Step pred = ccg_predicted_latency(n, n, T, logp, eps);
    pred_pts.emplace_back(static_cast<double>(T), static_cast<double>(pred));
    sim_pts.emplace_back(static_cast<double>(T), agg.t_complete.max());
    table.add_row(
        {Table::cell("%lld", static_cast<long long>(T)),
         Table::cell("%lld", static_cast<long long>(pred)),
         Table::cell("%.0f", agg.t_complete.max()),
         Table::cell("%.0f", agg.t_complete.quantile(0.99)),
         Table::cell("%.1f", agg.t_complete.mean()),
         Table::cell("%lld/%lld", static_cast<long long>(agg.all_colored_trials),
                     static_cast<long long>(agg.trials))});
  }
  table.print();
  bench::maybe_write_csv(flags, table);

  std::printf("\n");
  AsciiPlot plot(static_cast<int>(2 * (tmax - tmin) + 2), 14);
  plot.add_series("predicted (Eq. 4)", '-', pred_pts);
  plot.add_series("simulated max", '*', sim_pts);
  plot.print();
  return 0;
}

// Ablation: breaking the paper's reliable-channel assumption.  Each
// message is lost independently with probability p.  Which guarantees
// survive?
//   * GOS/OCG gossip is naturally redundant: coloring barely notices
//     small p, but OCG's one-shot correction messages are single points
//     of failure for their targets.
//   * CCG keeps terminating (a g-node that never hears its neighbor
//     sweeps the full lap) and usually still reaches everyone - the gap
//     survives only if BOTH directions' covering messages die.
//   * FCG's redundancy (f+1 g-nodes per direction, transitive k-arrays)
//     makes it the most loss-tolerant; in the worst case c-nodes time out
//     into SOS, which retries the flood.
//
//   ./ablation_message_loss [--n=512] [--trials=400] [--seed=1]
#include <cstdio>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 512));
  const int trials = static_cast<int>(flags.get_int("trials", 400));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const LogP logp = LogP::piz_daint();
  const double eps = 1e-4;

  bench::print_header("Ablation: i.i.d. message loss with probability p");
  std::printf("# N=%d, L=2us, O=1us, %d trials; parameters tuned for p=0\n",
              n, trials);

  Table table({"p", "algo", "reached (mean%)", "all-reached", "SOS",
               "mean lat[us]"});
  for (const double p : {0.0, 0.01, 0.05, 0.2}) {
    for (const Algo a : {Algo::kGos, Algo::kOcg, Algo::kCcg, Algo::kFcg}) {
      const TunedAlgo tuned = tune_for(a, n, n, logp, eps, 1);
      RunningStat reached, lat;
      std::int64_t all = 0, sos = 0;
      for (int t = 0; t < trials; ++t) {
        RunConfig cfg;
        cfg.n = n;
        cfg.logp = logp;
        cfg.drop_prob = p;
        cfg.seed = derive_seed(
            seed, static_cast<std::uint64_t>(p * 10000) * 64 +
                      static_cast<std::uint64_t>(a) * 8 +
                      static_cast<std::uint64_t>(t) * 1024);
        const RunMetrics m = run_once(a, tuned.acfg, cfg);
        reached.add(100.0 * m.n_colored / m.n_active);
        if (m.all_active_colored) ++all;
        if (m.sos_triggered) ++sos;
        const Step l = m.t_complete == kNever ? m.t_end : m.t_complete;
        lat.add(logp.us(l));
      }
      table.add_row({Table::cell("%.3f", p), algo_name(a),
                     Table::cell("%.3f%%", reached.mean()),
                     Table::cell("%lld/%d", static_cast<long long>(all),
                                 trials),
                     Table::cell("%lld", static_cast<long long>(sos)),
                     Table::cell("%.1f", lat.mean())});
    }
  }
  table.print();
  std::printf("\n# reading: corrected gossip degrades gracefully - CCG/FCG "
              "still terminate and miss at most isolated nodes whose "
              "covering messages all died; FCG's redundancy keeps it "
              "near-perfect the longest\n");
  return 0;
}

// Table 7 (the table inside Figure 7): case study with N = 4096 nodes,
// L = 2 us, O = 1 us - latency, work, and inconsistency of GOS, OCG, CCG,
// FCG (simulated) and BIG, BFB (modeled analytically, as in the paper) for
// f_hat in {0, 3} failures.  Paper reference values are printed alongside.
//
// Failure semantics follow the paper's setup: the f_hat failures of a
// 12-hour job window are pre-failed nodes from the broadcast's point of
// view (a failure DURING the ~50 us broadcast has probability ~3.4e-9);
// only BFB's model charges ceil(20%) of them as online restarts.  FCG runs
// with f = 1 ("we always choose f=1").
//
//   ./table7_case_study [--n=4096] [--trials=200] [--seed=1] [--eps=6.93e-7] [--threads=0]
#include <cstdio>
#include <string>

#include "analysis/baseline_models.hpp"
#include "analysis/work_model.hpp"
#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness/scenarios.hpp"

namespace {

struct PaperRow {
  const char* lat;
  const char* work;
  const char* incon;
};

cg::Table make_table() {
  // "corr work" decomposes the total: the paper's CCG/FCG work rows
  // (19,057 / 23,153) are only consistent with correction-phase-only
  // counting - their own GOS/OCG rows pin total counting above that -
  // so we print both views (see EXPERIMENTS.md).
  return cg::Table({"algorithm", "f^", "T", "lat[us]", "work", "corr work",
                    "incon", "paper lat", "paper work", "paper incon"});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 4096));
  const int trials = static_cast<int>(flags.get_int("trials", 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double eps = flags.get_double("eps", paper_eps());
  const LogP logp = LogP::piz_daint();
  const bool is_paper_n = (n == 4096);

  bench::print_header("Table 7: reliable-broadcast case study");
  std::printf("# N=%d, L=2us, O=1us, eps=%.3g, %d trials per row\n", n, eps,
              trials);
  std::printf("# expected failures in a 12h job at this scale: %.2f\n",
              FailureSchedule::expected_failures(n));

  Table table = make_table();
  const Algo sims[] = {Algo::kGos, Algo::kOcg, Algo::kCcg, Algo::kFcg};
  // Paper values for N=4096 (from the Table 7 figure).
  const PaperRow paper[4][2] = {
      {{"53", "95418", "2e-5%"}, {"53", "95331", "8e-6%"}},   // GOS
      {{"42", "38400", "1e-4%"}, {"42", "38355", "3e-4%"}},   // OCG
      {{"44", "19057", "0%"}, {"46", "16952", "0%"}},         // CCG
      {{"48", "23153", "0%"}, {"51", "23101", "0%"}},         // FCG
  };

  for (int a = 0; a < 4; ++a) {
    for (const int f_hat : {0, 3}) {
      const ScenarioResult r = run_scenario(
          sims[a], n, f_hat, logp, trials,
          derive_seed(seed, static_cast<std::uint64_t>(a * 2 + (f_hat > 0))),
          eps, /*f=*/1, bench::threads_flag(flags));
      const PaperRow& p = paper[a][f_hat > 0 ? 1 : 0];
      table.add_row(
          {algo_name(sims[a]), Table::cell("%d", f_hat),
           Table::cell("%lld", static_cast<long long>(r.tuned.acfg.T)),
           Table::cell("%.0f", r.lat_us), Table::cell("%.0f", r.work),
           Table::cell("%.0f", r.agg.work_correction.mean()),
           Table::cell("%.2g%%", r.incon * 100.0),
           is_paper_n ? p.lat : "-", is_paper_n ? p.work : "-",
           is_paper_n ? p.incon : "-"});
    }
  }

  // Analytic baselines, exactly as the paper models them.
  for (const int f_hat : {0, 3}) {
    const ModelRow big = big_model_row(n, logp);
    table.add_row({"BIG", Table::cell("%d", f_hat), "-",
                   Table::cell("%.0f", big.lat_us),
                   Table::cell("%lld", static_cast<long long>(big.work)), "-",
                   "0%", is_paper_n ? "60" : "-", is_paper_n ? "49152" : "-",
                   is_paper_n ? "0%" : "-"});
  }
  for (const int f_hat : {0, 3}) {
    const ModelRow bfb = bfb_model_row(n, f_hat, logp);
    table.add_row({"BFB", Table::cell("%d", f_hat), "-",
                   Table::cell("%.0f", bfb.lat_us),
                   Table::cell("%lld", static_cast<long long>(bfb.work)), "-",
                   "0%", is_paper_n ? (f_hat ? "144" : "96") : "-",
                   is_paper_n ? (f_hat ? "8192" : "4096") : "-",
                   is_paper_n ? "0%" : "-"});
  }
  table.print();
  bench::maybe_write_csv(flags, table);

  // Expected-work models (analysis/work_model.hpp) next to the simulation.
  std::printf("\n");
  Table wm({"algorithm", "model: gossip", "model: corr", "model: total"});
  {
    const TunedAlgo g = tune_for(Algo::kGos, n, n, logp, eps, 1);
    wm.add_row({"GOS",
                Table::cell("%.0f", expected_gossip_work(n, n, g.acfg.T, logp)),
                "0",
                Table::cell("%.0f", expected_gossip_work(n, n, g.acfg.T, logp))});
    const TunedAlgo o = tune_for(Algo::kOcg, n, n, logp, eps, 1);
    wm.add_row({"OCG",
                Table::cell("%.0f", expected_gossip_work(n, n, o.acfg.T, logp)),
                Table::cell("%.0f", expected_ocg_corr_work(
                                        n, n, o.acfg.T, logp,
                                        o.acfg.ocg_corr_sends)),
                Table::cell("%.0f", expected_ocg_work(n, n, o.acfg.T, logp,
                                                      o.acfg.ocg_corr_sends))});
    const TunedAlgo c = tune_for(Algo::kCcg, n, n, logp, eps, 1);
    wm.add_row({"CCG",
                Table::cell("%.0f", expected_gossip_work(n, n, c.acfg.T, logp)),
                Table::cell("%.0f", expected_ccg_corr_work(n, n, c.acfg.T, logp)),
                Table::cell("%.0f", expected_ccg_work(n, n, c.acfg.T, logp))});
    const TunedAlgo f = tune_for(Algo::kFcg, n, n, logp, eps, 1);
    wm.add_row({"FCG",
                Table::cell("%.0f", expected_gossip_work(n, n, f.acfg.T, logp)),
                Table::cell("%.0f", expected_fcg_corr_work(n, 1)),
                Table::cell("%.0f", expected_fcg_work(n, n, f.acfg.T, logp, 1))});
  }
  wm.print();

  std::printf(
      "\n# headline ratios (paper: OCG saves 60%% work / 20%% latency vs "
      "GOS; FCG saves >50%% work / 15%% latency vs BIG)\n");
  return 0;
}

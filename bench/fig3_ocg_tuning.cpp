// Figure 3: OCG predicted vs simulated total time (reach all nodes) as a
// function of the gossip time T.  N = n = 1024, L = O = 1.
//
// The paper plots the MAX over 10^7 runs against a prediction at
// eps = 6.93e-7; at bench scale we match eps to the trial count
// (eps = 1-(1-0.5)^(1/trials)) so the predicted quantile corresponds to
// the observed maximum.  Pass --eps=... to override.
//
//   ./fig3_ocg_tuning [--n=1024] [--threads=0] [--trials=1500] [--seed=1]
//                     [--tmin=18] [--tmax=36] [--eps=...]
#include <algorithm>
#include <cstdio>

#include "analysis/tuning.hpp"
#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 1024));
  const int trials = static_cast<int>(flags.get_int("trials", 1500));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const Step tmin = flags.get_int("tmin", 18);
  const Step tmax = flags.get_int("tmax", 36);
  const double eps =
      flags.get_double("eps", eps_for_runs(0.5, static_cast<double>(trials)));
  const LogP logp = LogP::unit();

  bench::print_header("Figure 3: OCG total time vs gossip time T");
  std::printf("# N=n=%d, L=O=1, %d trials, eps=%.3g\n", n, trials, eps);
  const Tuning opt = tune_ocg(n, n, logp, eps, tmin, tmax);
  std::printf("# model optimum: T=%lld (predicted %lld steps)\n",
              static_cast<long long>(opt.T_opt),
              static_cast<long long>(opt.predicted_latency));

  Table table({"T", "predicted (Eq.3)", "simulated max", "simulated p99",
               "simulated mean", "all-reached"});
  std::vector<std::pair<double, double>> pred_pts, sim_pts;
  for (Step T = tmin; T <= tmax; ++T) {
    TrialSpec spec;
    spec.threads = bench::threads_flag(flags);
    spec.algo = Algo::kOcg;
    spec.acfg.T = T;
    // Generous sweep so that (essentially) every run reaches all nodes;
    // the metric is the time the last node is colored, as in the paper.
    // 4*K_bar + 32 is far beyond any chain these trials can produce (the
    // "all-reached" column verifies this).
    spec.acfg.ocg_corr_sends = std::min<Step>(
        n, 4 * k_bar_for(n, n, T, logp, eps) + 32);
    spec.n = n;
    spec.logp = logp;
    spec.seed = derive_seed(seed, static_cast<std::uint64_t>(T));
    spec.trials = trials;
    const TrialAggregate agg = run_trials(spec);
    const Step pred = ocg_predicted_latency(n, n, T, logp, eps);
    pred_pts.emplace_back(static_cast<double>(T), static_cast<double>(pred));
    sim_pts.emplace_back(static_cast<double>(T), agg.t_last_colored.max());
    table.add_row(
        {Table::cell("%lld", static_cast<long long>(T)),
         Table::cell("%lld", static_cast<long long>(pred)),
         Table::cell("%.0f", agg.t_last_colored.max()),
         Table::cell("%.0f", agg.t_last_colored.quantile(0.99)),
         Table::cell("%.1f", agg.t_last_colored.mean()),
         Table::cell("%lld/%lld", static_cast<long long>(agg.all_colored_trials),
                     static_cast<long long>(agg.trials))});
  }
  table.print();
  bench::maybe_write_csv(flags, table);

  std::printf("\n");
  AsciiPlot plot(static_cast<int>(2 * (tmax - tmin) + 2), 14);
  plot.add_series("predicted (Eq. 3)", '-', pred_pts);
  plot.add_series("simulated max", '*', sim_pts);
  plot.print();
  return 0;
}

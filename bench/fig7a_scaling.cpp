// Figure 7a: latency scaling for failure-free execution.  Simulated
// medians for OCG, CCG, FCG; analytic best-case lines for BIG and BFB and
// the "opt" lower bound.  L = 2 us, O = 1 us, eps = 6.93e-7.
//
//   ./fig7a_scaling [--max-n=16384] [--threads=0] [--trials=200] [--seed=1]
//                   [--eps=...] [--engine=stepped|async|parallel|sharded]
//                   [--shards=K]
#include <cstdio>
#include <vector>

#include "analysis/baseline_models.hpp"
#include "baselines/opt_tree.hpp"
#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto max_n = static_cast<NodeId>(flags.get_int("max-n", 16384));
  const int base_trials = static_cast<int>(flags.get_int("trials", 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double eps = flags.get_double("eps", paper_eps());
  const ExecConfig exec = bench::exec_flag(flags);
  const LogP logp = LogP::piz_daint();

  bench::print_header("Figure 7a: latency scaling, failure-free");
  std::printf("# L=2us, O=1us, eps=%.3g (simulated median; BIG/BFB/opt "
              "analytic)\n", eps);

  Table table({"N", "OCG", "CCG", "FCG", "BIG", "BFB", "opt"});
  for (NodeId n = 64; n <= max_n; n *= 2) {
    // Keep per-point cost roughly constant: fewer trials at larger N.
    const int trials =
        std::max(30, base_trials * 2048 / std::max<NodeId>(n, 2048));
    std::vector<std::string> row{Table::cell("%d", n)};
    for (const Algo a : {Algo::kOcg, Algo::kCcg, Algo::kFcg}) {
      const ScenarioResult r =
          run_scenario(a, n, 0, logp, trials,
                       derive_seed(seed, static_cast<std::uint64_t>(n) * 8 +
                                             static_cast<std::uint64_t>(a)),
                       eps, 1, bench::threads_flag(flags), exec);
      row.push_back(Table::cell(
          "%.0f", logp.us(1) * (r.agg.t_complete.empty()
                                    ? 0.0
                                    : r.agg.t_complete.median())));
    }
    row.push_back(Table::cell("%.0f", big_latency_us(n, logp)));
    row.push_back(Table::cell("%.0f", bfb_latency_us(n, 0, logp)));
    row.push_back(
        Table::cell("%.0f", logp.us(opt_latency_steps(n, logp))));
    table.add_row(std::move(row));
  }
  table.print();
  bench::maybe_write_csv(flags, table);
  std::printf("\n# paper shape: OCG fastest throughout; FCG beats BIG from "
              "N>=512; BFB slowest; all corrected-gossip curves grow ~log N\n");
  return 0;
}

// Ablation: the paper's "+O" safety margins (Section III-B Discussion).
// OCG is tuned to T_opt and C = K_bar; this bench sweeps extra margin on
// both and reports the miss rate, demonstrating why the paper recommends
// adding one O to each.
//
//   ./ablation_margin [--n=1024] [--threads=0] [--trials=3000] [--seed=1] [--eps=...]
#include <cstdio>

#include "analysis/tuning.hpp"
#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 1024));
  const int trials = static_cast<int>(flags.get_int("trials", 3000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const LogP logp = LogP::unit();
  // A deliberately loose default budget so the zero-margin row's misses
  // are visible at bench-scale trial counts.
  const double eps = flags.get_double("eps", 1e-3);

  const Tuning t = tune_ocg(n, n, logp, eps);
  bench::print_header("Ablation: OCG tuning margins");
  std::printf("# N=%d, L=O=1, eps=%.3g, T_opt=%lld, K_bar=%d, %d trials\n",
              n, eps, static_cast<long long>(t.T_opt), t.k_bar, trials);

  Table table({"T margin", "C margin", "T", "corr sends", "miss rate",
               "mean lat (steps)", "mean work"});
  for (const int tm : {0, 1, 2}) {
    for (const int cm : {0, 1, 2}) {
      TrialSpec spec;
      spec.threads = bench::threads_flag(flags);
      spec.algo = Algo::kOcg;
      spec.acfg.T = t.T_opt + tm;
      spec.acfg.ocg_corr_sends =
          k_bar_for(n, n, spec.acfg.T, logp, eps) + cm;
      if (spec.acfg.ocg_corr_sends < 1) spec.acfg.ocg_corr_sends = 1;
      spec.n = n;
      spec.logp = logp;
      spec.seed = derive_seed(seed, static_cast<std::uint64_t>(tm * 8 + cm));
      spec.trials = trials;
      const TrialAggregate agg = run_trials(spec);
      const double miss_rate =
          1.0 - agg.all_colored_rate();
      table.add_row({Table::cell("%d", tm), Table::cell("%d", cm),
                     Table::cell("%lld", static_cast<long long>(spec.acfg.T)),
                     Table::cell("%lld",
                                 static_cast<long long>(spec.acfg.ocg_corr_sends)),
                     Table::cell("%.4f", miss_rate),
                     Table::cell("%.1f", agg.t_complete.mean()),
                     Table::cell("%.0f", agg.work.mean())});
    }
  }
  table.print();
  std::printf("\n# expectation: zero margin misses a small share of runs; "
              "one extra O on T and C drives the miss rate toward eps at "
              "negligible latency/work cost\n");
  return 0;
}

// Extension: push-pull vs push-only gossip under the LogP model.  The
// classic synchronous analysis promises a much faster tail for pull; here
// requests and responses consume real send slots, so this bench measures
// what actually survives of that advantage - and what it would buy a
// corrected variant (a smaller T for the same coverage).
//
//   ./ext_push_pull [--n=1024] [--trials=300] [--seed=1]
#include <cstdio>

#include "analysis/coloring.hpp"
#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "analysis/tuning.hpp"
#include "gossip/ccg.hpp"
#include "gossip/ccg_pushpull.hpp"
#include "gossip/push_pull.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 1024));
  const int trials = static_cast<int>(flags.get_int("trials", 300));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const LogP logp = LogP::unit();

  bench::print_header("Extension: push-pull vs push-only gossip");
  std::printf("# N=%d, L=O=1, %d trials per row\n", n, trials);

  Table table({"T", "mode", "colored (mean)", "full-coverage runs",
               "work (mean)", "forecast c(T+L+O)"});
  for (const Step T : {16, 20, 24, 28, 32}) {
    for (const bool pull : {false, true}) {
      RunningStat colored, work;
      int full = 0;
      for (int t = 0; t < trials; ++t) {
        PushPullNode::Params p;
        p.T = T;
        p.pull = pull;
        RunConfig cfg;
        cfg.n = n;
        cfg.logp = logp;
        cfg.seed = derive_seed(seed, static_cast<std::uint64_t>(T) * 64 +
                                         (pull ? 32 : 0) +
                                         static_cast<std::uint64_t>(t) * 512);
        Engine<PushPullNode> eng(cfg, p);
        const RunMetrics m = eng.run();
        colored.add(m.n_colored);
        work.add(static_cast<double>(m.msgs_total));
        if (m.all_active_colored) ++full;
      }
      const double forecast =
          pull ? pushpull_expected_colored(n, n, T, logp,
                                           T + logp.delivery_delay())
                     .back()
               : expected_colored(n, n, T, logp, T + logp.delivery_delay())
                     .back();
      table.add_row({Table::cell("%lld", static_cast<long long>(T)),
                     pull ? "push-pull" : "push",
                     Table::cell("%.1f", colored.mean()),
                     Table::cell("%d/%d", full, trials),
                     Table::cell("%.0f", work.mean()),
                     Table::cell("%.1f", forecast)});
    }
  }
  table.print();

  // Corrected push-pull vs plain CCG, each at its own tuned T.
  const double eps = 1e-4;
  const Tuning ccg_t = tune_ccg(n, n, logp, eps);
  const PpTuning pp_t = tune_ccg_pushpull(n, n, logp, eps);
  std::printf("\n# corrected variants, each model-tuned at eps=%.0e:\n", eps);
  Table ct({"variant", "T", "lat (mean)", "lat (max)", "work", "all-reached"});
  {
    RunningStat lat, work;
    Samples lmax;
    int full = 0;
    for (int t = 0; t < trials; ++t) {
      CcgNode::Params p;
      p.T = ccg_t.T_opt + 1;
      RunConfig cfg;
      cfg.n = n;
      cfg.logp = logp;
      cfg.seed = derive_seed(seed, 777000 + static_cast<std::uint64_t>(t));
      Engine<CcgNode> eng(cfg, p);
      const RunMetrics m = eng.run();
      lat.add(static_cast<double>(m.t_complete));
      lmax.add(static_cast<double>(m.t_complete));
      work.add(static_cast<double>(m.msgs_total));
      if (m.all_active_colored) ++full;
    }
    ct.add_row({"CCG (push)",
                Table::cell("%lld", static_cast<long long>(ccg_t.T_opt + 1)),
                Table::cell("%.1f", lat.mean()),
                Table::cell("%.0f", lmax.max()),
                Table::cell("%.0f", work.mean()),
                Table::cell("%d/%d", full, trials)});
  }
  {
    RunningStat lat, work;
    Samples lmax;
    int full = 0;
    for (int t = 0; t < trials; ++t) {
      CcgPushPullNode::Params p;
      p.T = pp_t.T_opt + 1;
      RunConfig cfg;
      cfg.n = n;
      cfg.logp = logp;
      cfg.seed = derive_seed(seed, 888000 + static_cast<std::uint64_t>(t));
      Engine<CcgPushPullNode> eng(cfg, p);
      const RunMetrics m = eng.run();
      lat.add(static_cast<double>(m.t_complete));
      lmax.add(static_cast<double>(m.t_complete));
      work.add(static_cast<double>(m.msgs_total));
      if (m.all_active_colored) ++full;
    }
    ct.add_row({"CCG (push-pull)",
                Table::cell("%lld", static_cast<long long>(pp_t.T_opt + 1)),
                Table::cell("%.1f", lat.mean()),
                Table::cell("%.0f", lmax.max()),
                Table::cell("%.0f", work.mean()),
                Table::cell("%d/%d", full, trials)});
  }
  ct.print();

  std::printf("\n# reading: pull attacks the tail (full-coverage runs rise "
              "much earlier in T), so the corrected variant runs a smaller "
              "tuned T and completes earlier - paid for in request "
              "traffic\n");
  return 0;
}

#include "bench_util.hpp"

#include <cstdio>

namespace cg::bench {

bool maybe_write_csv(const Flags& flags, const Table& table) {
  const std::string path = flags.get_string("csv", "");
  if (path.empty()) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string csv = table.csv();
  std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
  std::printf("# csv written to %s\n", path.c_str());
  return true;
}

}  // namespace cg::bench

// Distributed-OS membership management (the paper's introduction names
// MOSIX-style systems and cluster schedulers as the motivating users).
//
// A manager node periodically broadcasts membership epochs while nodes
// keep crashing.  Each epoch announcement uses FCG (all-or-nothing
// delivery), messages carry Claim-1 broadcast stamps, and every surviving
// node's view is checked for consistency after each round: either a node
// has the current epoch, or it is itself dead - never a torn view.
//
//   ./membership_monitor [--n=256] [--rounds=6] [--seed=11]
#include <cstdio>
#include <vector>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "harness/scenarios.hpp"
#include "proto/dedup.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 256));
  const int rounds = static_cast<int>(flags.get_int("rounds", 6));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  const LogP logp = LogP::piz_daint();

  std::printf("membership monitor: %d nodes, manager = node 0, FCG epoch "
              "broadcasts, crashes every round\n\n", n);

  Xoshiro256 rng(seed);
  std::vector<bool> alive(static_cast<std::size_t>(n), true);
  std::vector<std::uint64_t> view(static_cast<std::size_t>(n), 0);  // epoch
  BroadcastCounter manager(0);
  std::vector<BroadcastFilter> filters(static_cast<std::size_t>(n),
                                       BroadcastFilter(n));

  for (int round = 1; round <= rounds; ++round) {
    // A couple of random nodes crash between epochs (never the manager).
    int crashed = 0;
    for (int k = 0; k < 2; ++k) {
      const auto victim =
          static_cast<NodeId>(1 + rng.bounded(static_cast<std::uint64_t>(n - 1)));
      if (alive[static_cast<std::size_t>(victim)]) {
        alive[static_cast<std::size_t>(victim)] = false;
        ++crashed;
      }
    }

    // Manager announces the new epoch over FCG.
    const BroadcastStamp stamp = manager.next();
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = logp;
    cfg.seed = derive_seed(seed, static_cast<std::uint64_t>(round));
    cfg.record_node_detail = true;
    for (NodeId i = 1; i < n; ++i)
      if (!alive[static_cast<std::size_t>(i)])
        cfg.failures.pre_failed.push_back(i);

    const NodeId active =
        n - static_cast<NodeId>(cfg.failures.pre_failed.size());
    const TunedAlgo tuned = tune_for(Algo::kFcg, n, active, logp, 1e-5, 1);
    const RunMetrics m = run_once(Algo::kFcg, tuned.acfg, cfg);

    // Apply deliveries through the Claim-1 duplicate filter.
    int updated = 0;
    for (NodeId i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (!alive[idx]) continue;
      if (m.delivered_at[idx] != kNever && filters[idx].accept(stamp)) {
        view[idx] = stamp.sequence;
        ++updated;
      }
    }

    // Consistency audit: every alive node is on the current epoch.
    int stale = 0;
    for (NodeId i = 0; i < n; ++i)
      if (alive[static_cast<std::size_t>(i)] &&
          view[static_cast<std::size_t>(i)] != stamp.sequence)
        ++stale;

    std::printf("round %d: epoch %llu, %d crashed (now %d alive) - "
                "delivered to %d nodes in %.0f us, %d stale view(s)%s\n",
                round, static_cast<unsigned long long>(stamp.sequence),
                crashed, active, updated,
                logp.us(m.t_complete == kNever ? m.t_end : m.t_complete),
                stale, stale == 0 ? " [consistent]" : " [INCONSISTENT!]");
  }

  std::printf("\nreplayed announcement is filtered: node 1 re-offered epoch "
              "%llu -> accepted=%s\n",
              static_cast<unsigned long long>(manager.issued()),
              filters[1].accept({0, manager.issued()}) ? "yes (BUG)" : "no");
  return 0;
}

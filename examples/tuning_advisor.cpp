// Model-driven tuning advisor: the paper's Section III/Appendix-B pipeline
// as a command-line tool.  Give it your system size, LogP parameters, how
// many broadcasts you plan to run and the acceptable failure probability,
// and it prints ready-to-use parameters and predictions for every
// corrected-gossip variant plus the baselines.
//
//   ./tuning_advisor [--n=4096] [--l=2] [--o=1] [--runs=1e6] [--psi=0.5]
//                    [--f=1] [--active=<n>]
#include <cstdio>

#include "analysis/baseline_models.hpp"
#include "analysis/coloring.hpp"
#include "analysis/fcg_bound.hpp"
#include "analysis/tuning.hpp"
#include "baselines/opt_tree.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "sim/failure.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 4096));
  const auto active = static_cast<NodeId>(flags.get_int("active", n));
  const LogP logp{.l_over_o = flags.get_int("l", 2) / flags.get_int("o", 1),
                  .o_us = static_cast<double>(flags.get_int("o", 1))};
  const double runs = flags.get_double("runs", 1e6);
  const double psi = flags.get_double("psi", 0.5);
  const int f = static_cast<int>(flags.get_int("f", 1));
  const double eps = eps_for_runs(psi, runs);

  std::printf("corrected-gossip tuning advisor\n");
  std::printf("  system: N=%d (%d active), L=%.0fus, O=%.0fus\n", n, active,
              logp.l_us(), logp.o_us);
  std::printf("  budget: %.0g runs, overall failure chance <= %.2f  =>  "
              "eps = %.3g per run\n", runs, psi, eps);
  std::printf("  expected node failures in a 12h job (TSUBAME2 MTBF): %.2f\n\n",
              FailureSchedule::expected_failures(n));

  Table table({"algorithm", "consistency", "parameters",
               "predicted latency", "notes"});

  const Step gos_T = gossip_time_for_target(n, active, eps, logp);
  table.add_row({"GOS", "weak (1-eps)",
                 Table::cell("T=%lld", static_cast<long long>(gos_T)),
                 Table::cell("%.0f us", logp.us(gos_T) + logp.l_us() + logp.o_us),
                 "gossip only"});

  const Tuning ocg = tune_ocg(n, active, logp, eps);
  const int k = k_bar_for(n, active, ocg.T_opt + 1, logp, eps);
  table.add_row(
      {"OCG", "1-eps all nodes",
       Table::cell("T=%lld C=%d sends", static_cast<long long>(ocg.T_opt + 1),
                   k + 1),
       Table::cell("%.0f us", logp.us(ocg.predicted_latency)),
       "fixed schedule, no feedback"});

  const Tuning ccg = tune_ccg(n, active, logp, eps);
  table.add_row({"CCG", "strong if no crash during run",
                 Table::cell("T=%lld", static_cast<long long>(ccg.T_opt + 1)),
                 Table::cell("%.0f us", logp.us(ccg.predicted_latency)),
                 "self-terminating"});

  const FcgTuning fcg = tune_fcg(n, active, logp, eps, f);
  table.add_row({"FCG", Table::cell("all-or-nothing, <=%d crashes", f),
                 Table::cell("T=%lld f=%d",
                             static_cast<long long>(fcg.T_opt + 1), f),
                 Table::cell("<= %.0f us", logp.us(fcg.predicted_upper)),
                 "Appendix-B upper bound"});

  table.add_row({"BIG", Table::cell("up to %d failures", big_max_failures(n)),
                 "static binomial graph",
                 Table::cell("%.0f us", big_latency_us(n, logp)),
                 Table::cell("work %lld msgs",
                             static_cast<long long>(big_work(n)))});
  table.add_row({"BFB", "any #failures (detector)", "restart tree",
                 Table::cell("%.0f us", bfb_latency_us(n, 0, logp)),
                 "+1 tree latency per online failure"});
  table.add_row({"opt", "none (lower bound)", "-",
                 Table::cell("%.0f us", logp.us(opt_latency_steps(n, logp))),
                 "non-fault-tolerant optimum"});
  table.print();

  std::printf("\ngossip coloring forecast (Eq. 1): c(T+L+O) at OCG's T: "
              "%.1f of %d\n",
              colored_at_corr_start(n, active, ocg.T_opt + 1, logp), active);
  return 0;
}

// Worked examples in the style of the paper's Figures 2, 4 and 6: run one
// small broadcast (N = 10) with full event tracing and print every send,
// receive, coloring and completion, plus the final per-node outcome.
//
//   ./trace_ring [--algo=ocg|ccg|fcg] [--n=10] [--t=2] [--seed=3] [--f=1]
//                [--corr=6] [--trace-out=<file>]
//
// Figure 2 (OCG):  ./trace_ring --algo=ocg --t=2 --corr=6
// Figure 4 (CCG):  ./trace_ring --algo=ccg --t=4
// Figure 6 (FCG):  ./trace_ring --algo=fcg --t=4 --f=1
//
// --trace-out writes the same run as Chrome trace-event JSON (one track per
// node, phase-colored slices) for https://ui.perfetto.dev; a *.jsonl path
// gets the line-delimited JSON form instead.
#include <cstdio>
#include <memory>
#include <string>

#include "common/flags.hpp"
#include "harness/runner.hpp"
#include "obs/trace_sinks.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const std::string algo_s = flags.get_string("algo", "ccg");
  const auto n = static_cast<NodeId>(flags.get_int("n", 10));
  const Step T = flags.get_int("t", algo_s == "ocg" ? 2 : 4);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  Algo algo = Algo::kCcg;
  if (algo_s == "ocg") algo = Algo::kOcg;
  else if (algo_s == "fcg") algo = Algo::kFcg;
  else if (algo_s == "gos") algo = Algo::kGos;

  AlgoConfig acfg;
  acfg.T = T;
  acfg.ocg_corr_sends = flags.get_int("corr", 6);
  acfg.fcg_f = static_cast<int>(flags.get_int("f", 1));

  VectorTrace trace;
  obs::TeeTraceSink tee;
  tee.add(&trace);
  const std::string trace_out = flags.get_string("trace-out", "");
  std::unique_ptr<obs::JsonlTraceSink> jsonl;
  std::unique_ptr<obs::ChromeTraceSink> chrome;
  if (!trace_out.empty()) {
    if (trace_out.ends_with(".jsonl")) {
      jsonl = std::make_unique<obs::JsonlTraceSink>(trace_out);
      tee.add(jsonl.get());
    } else {
      chrome = std::make_unique<obs::ChromeTraceSink>(trace_out);
      tee.add(chrome.get());
    }
  }

  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP::unit();
  cfg.seed = seed;
  cfg.trace = &tee;
  cfg.record_node_detail = true;

  std::printf("%s broadcast on a %d-node ring, T=%lld, L=O=1, root 0\n\n",
              algo_name(algo), n, static_cast<long long>(T));
  const RunMetrics m = run_once(algo, acfg, cfg);
  std::fputs(trace.to_string().c_str(), stdout);
  if (!trace_out.empty()) {
    const bool ok = chrome ? chrome->close() : jsonl->ok();
    if (!ok) {
      std::fprintf(stderr, "trace_ring: cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("\ntrace written to %s%s\n", trace_out.c_str(),
                chrome ? " (open in https://ui.perfetto.dev)" : "");
  }

  std::printf("\nper-node outcome (g-node = colored during gossip):\n");
  for (NodeId i = 0; i < n; ++i) {
    const Step c = m.colored_at[static_cast<std::size_t>(i)];
    const Step done = m.completed_at[static_cast<std::size_t>(i)];
    if (c == kNever) {
      std::printf("  node %2d: NOT REACHED\n", i);
    } else {
      std::printf("  node %2d: colored at t=%-3lld completed at t=%lld\n", i,
                  static_cast<long long>(c),
                  done == kNever ? -1LL : static_cast<long long>(done));
    }
  }
  std::printf(
      "\nsummary: %d/%d active nodes reached, %lld messages "
      "(%lld gossip + %lld correction%s), finished at t=%lld\n",
      m.n_colored, m.n_active, static_cast<long long>(m.msgs_total),
      static_cast<long long>(m.msgs_gossip),
      static_cast<long long>(m.msgs_correction),
      m.msgs_sos ? " + SOS" : "", static_cast<long long>(m.t_end));
  return 0;
}

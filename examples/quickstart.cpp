// Quickstart: tune and run one reliable broadcast at each consistency
// level on a 1024-node system and print what happened.
//
//   ./quickstart [--n=1024] [--threads=0] [--seed=1]
#include <cstdio>

#include "common/flags.hpp"
#include "runtime/broadcast.hpp"

int main(int argc, char** argv) {
  const cg::Flags flags(argc, argv);
  const auto n = static_cast<cg::NodeId>(flags.get_int("n", 1024));
  const int threads = static_cast<int>(flags.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  std::printf("corrected-gossip quickstart: N=%d nodes, LogP L=2us O=1us\n\n",
              n);

  for (const auto consistency :
       {cg::Consistency::kWeak, cg::Consistency::kChecked,
        cg::Consistency::kFailProof}) {
    cg::BroadcastOptions opts;
    opts.n = n;
    opts.consistency = consistency;
    opts.threads = threads;
    const cg::BroadcastReport rep = cg::reliable_broadcast(opts, seed);
    std::printf("  %s\n", rep.summary().c_str());
  }

  std::printf(
      "\nWith one node crashing mid-broadcast (FCG tolerates it):\n");
  cg::BroadcastOptions opts;
  opts.n = n;
  opts.consistency = cg::Consistency::kFailProof;
  opts.threads = threads;
  opts.failures.online.push_back({static_cast<cg::NodeId>(n / 3), 20});
  const cg::BroadcastReport rep = cg::reliable_broadcast(opts, seed);
  std::printf("  %s\n", rep.summary().c_str());
  std::printf("  all-or-nothing delivery held: %s\n",
              rep.delivered_all_or_nothing ? "yes" : "NO (bug!)");
  return 0;
}

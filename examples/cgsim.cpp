// cgsim: general-purpose command-line driver for the simulator - run any
// algorithm at any configuration and print the aggregate metrics.  This is
// the "authors' simulator" workflow: every experiment in the paper (and in
// EXPERIMENTS.md) can be reproduced from this one binary, if you prefer
// flags over the canned bench targets.
//
//   ./cgsim --algo=fcg --n=4096 --l=2 --o=1 --trials=1000 [--t=37]
//           [--corr=6] [--f=1] [--pre-fail=3] [--online-fail=1]
//           [--jitter=0] [--drop-prob=0] [--eps=6.93e-7] [--seed=1]
//           [--rx=drain|one] [--threads=0] [--drain-extra=0] [--csv]
//           [--engine=stepped|async|parallel|sharded] [--shards=K]
//
// --engine picks the execution engine carrying every trial (identical
// results, different wall-clock profile; sharded is the scale engine for
// million-node runs).  --shards sets the shard count (sharded) or worker
// threads (parallel).
//
// Omitted --t/--corr are tuned from the analytic models at --eps.
//
// Fault injection (docs/FAULTS.md):
//   --drop-prob=P         i.i.d. loss (alias: --drop); 1.0 = blackhole
//   --burst-loss=P        Gilbert-Elliott burst loss, overall rate P
//   --burst-mean=K        mean burst length in steps (default 4)
//   --restart=K           K nodes crash and rejoin uncolored
//   --restart-outage=S    steps a restarted node stays down (0 = auto)
//   --stragglers=K        K nodes send at --straggler-factor x delay
//   --partition=K         K nodes transiently partitioned off
//   --reliable            ack/retransmit hardening for CCG/FCG correction
//   --byz=K               K Byzantine nodes per trial (docs/FAULTS.md)
//   --byz-mode=M          silent|equivocator|corruptor|spammer
//   --byz-root            force the root into the Byzantine set (root
//                         equivocation - the canonical consistency attack;
//                         --algo=sbrb is the defense)
//
// Observability outputs (each replays trial #0 with instrumentation):
//   --trace-out=<file>    event trace; *.jsonl gets one JSON object per
//                         event, anything else gets Chrome trace-event JSON
//                         (open in https://ui.perfetto.dev)
//   --series-out=<file>   per-step time series; *.csv or JSON by extension
//   --series-stride=K     fold K consecutive steps into one series row
//                         (big runs; drift check needs stride 1)
//   --sample-out=<file>   deterministic reservoir sample of the trace
//                         (--sample-k events, default 4096; byte-identical
//                         across engines and shard/thread counts); *.jsonl
//                         or Chrome JSON by extension
//   --histograms          telemetry histograms (coloring latency, inbox
//                         depth, boundary traffic, retransmits) as a table
//                         and a "telemetry" report-JSON object
//   --heartbeat=SECONDS   single-line JSON progress on stderr
//   --report-json=<file>  machine-readable report: config, aggregate with
//                         percentiles, trial-0 metrics / engine profile /
//                         drift vs the analytic c(t)
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/coloring.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness/scenarios.hpp"
#include "obs/json.hpp"
#include "obs/sampling_sink.hpp"
#include "obs/telemetry.hpp"
#include "sim/fault/validate.hpp"
#include "obs/report.hpp"
#include "obs/series.hpp"
#include "obs/trace_sinks.hpp"

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

bool is_gossip_family(cg::Algo a) {
  return a == cg::Algo::kGos || a == cg::Algo::kOcg || a == cg::Algo::kCcg ||
         a == cg::Algo::kFcg || a == cg::Algo::kOcgChain;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);

  const std::string algo_s = flags.get_string("algo", "ccg");
  Algo algo;
  if (algo_s == "gos") algo = Algo::kGos;
  else if (algo_s == "ocg") algo = Algo::kOcg;
  else if (algo_s == "ccg") algo = Algo::kCcg;
  else if (algo_s == "fcg") algo = Algo::kFcg;
  else if (algo_s == "chain") algo = Algo::kOcgChain;
  else if (algo_s == "big") algo = Algo::kBig;
  else if (algo_s == "bfb") algo = Algo::kBfb;
  else if (algo_s == "opt") algo = Algo::kOpt;
  else if (algo_s == "sbrb") algo = Algo::kSbrb;
  else {
    std::fprintf(stderr,
                 "unknown --algo=%s (gos|ocg|ccg|fcg|chain|big|bfb|opt|sbrb)\n",
                 algo_s.c_str());
    return 2;
  }

  const auto n = static_cast<NodeId>(flags.get_int("n", 1024));
  const LogP logp{.l_over_o = flags.get_int("l", 2) / flags.get_int("o", 1),
                  .o_us = static_cast<double>(flags.get_int("o", 1))};
  const double eps = flags.get_double("eps", 6.9315e-7);
  const int f = static_cast<int>(flags.get_int("f", 1));
  const int pre = static_cast<int>(flags.get_int("pre-fail", 0));
  const int online = static_cast<int>(flags.get_int("online-fail", 0));

  TrialSpec spec;
  spec.algo = algo;
  spec.n = n;
  spec.logp = logp;
  spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  spec.trials = static_cast<int>(flags.get_int("trials", 1000));
  spec.threads = static_cast<int>(flags.get_int("threads", 0));
  spec.jitter_max = flags.get_int("jitter", 0);
  spec.drop_prob = flags.get_double("drop-prob", flags.get_double("drop", 0.0));
  spec.burst_loss = flags.get_double("burst-loss", 0.0);
  spec.burst_mean = flags.get_int("burst-mean", 4);
  spec.restarts = static_cast<int>(flags.get_int("restart", 0));
  spec.restart_outage = flags.get_int("restart-outage", 0);
  spec.stragglers = static_cast<int>(flags.get_int("stragglers", 0));
  spec.straggler_factor = flags.get_int("straggler-factor", 4);
  spec.partition_nodes = static_cast<int>(flags.get_int("partition", 0));
  spec.byz_count = static_cast<int>(flags.get_int("byz", 0));
  spec.byz_include_root = flags.get_bool("byz-root", false);
  if (spec.byz_include_root && spec.byz_count == 0) spec.byz_count = 1;
  const std::string byz_mode_s = flags.get_string("byz-mode", "equivocator");
  if (!byz_mode_from_name(byz_mode_s, spec.byz_mode)) {
    std::fprintf(stderr, "unknown --byz-mode=%s (%s)\n", byz_mode_s.c_str(),
                 byz_mode_names_list());
    return 2;
  }
  spec.pre_failures = pre;
  spec.online_failures = online;
  spec.rx = flags.get_string("rx", "drain") == "one" ? RxPolicy::kOnePerStep
                                                     : RxPolicy::kDrainAll;

  const std::string engine_s = flags.get_string("engine", "stepped");
  if (!engine_from_name(engine_s, spec.exec.engine)) {
    std::fprintf(stderr, "unknown --engine=%s (%s)\n", engine_s.c_str(),
                 engine_names_list());
    return 2;
  }
  spec.exec.threads = static_cast<int>(flags.get_int("shards", 1));

  // Parameters: explicit flags override the model-tuned defaults.
  const TunedAlgo tuned = tune_for(algo, n, n - pre, logp, eps, f);
  spec.acfg = tuned.acfg;
  if (flags.has("t")) spec.acfg.T = flags.get_int("t", spec.acfg.T);
  if (flags.has("corr"))
    spec.acfg.ocg_corr_sends = flags.get_int("corr", spec.acfg.ocg_corr_sends);
  spec.acfg.fcg_f = f;
  spec.acfg.drain_extra = flags.get_int("drain-extra", 0);
  spec.acfg.reliable.enabled = flags.get_bool("reliable", false);

  // Surface configuration problems as a friendly error instead of the
  // engine's CG_CHECK abort (e.g. out-of-range probabilities, a schedule
  // that crashes the root, overlapping restart windows).
  const std::string cfg_err = config_error(trial_run_config(spec, 0));
  if (!cfg_err.empty()) {
    std::fprintf(stderr, "cgsim: invalid configuration: %s\n",
                 cfg_err.c_str());
    return 2;
  }

  std::printf("cgsim: %s on N=%d (L=%.0fus O=%.0fus), T=%lld, %d trials, "
              "%d pre-failed, %d online failures, jitter<=%lld, eps=%.3g\n",
              algo_name(algo), n, logp.l_us(), logp.o_us,
              static_cast<long long>(spec.acfg.T), spec.trials, pre, online,
              static_cast<long long>(spec.jitter_max), eps);

  // Progress heartbeat: single-line JSON on stderr, covering both the
  // trial farm and the observability replay.
  std::unique_ptr<Heartbeat> heartbeat;
  if (flags.has("heartbeat"))
    heartbeat = std::make_unique<Heartbeat>(
        stderr, flags.get_double("heartbeat", 5.0), "cgsim");
  spec.heartbeat = heartbeat.get();

  const TrialAggregate agg = run_trials(spec);

  // Observability replay: re-run trial #0 (exact same seed and failure
  // schedule) with trace sinks and an engine profile attached.
  const std::string trace_out = flags.get_string("trace-out", "");
  const std::string series_out = flags.get_string("series-out", "");
  const std::string report_out = flags.get_string("report-json", "");
  const std::string sample_out = flags.get_string("sample-out", "");
  const bool histograms = flags.get_bool("histograms", false);
  const Step series_stride = flags.get_int("series-stride", 1);
  if (series_stride < 1) {
    std::fprintf(stderr, "cgsim: --series-stride must be >= 1\n");
    return 2;
  }
  const bool observe = !trace_out.empty() || !series_out.empty() ||
                       !report_out.empty() || !sample_out.empty() ||
                       histograms;

  RunMetrics trial0;
  EngineProfile profile;
  Telemetry telemetry;
  obs::StepSeries series;
  series.set_stride(series_stride);
  obs::DriftReport drift;
  bool have_drift = false;
  bool trace_ok = true;
  bool sample_ok = true;
  if (observe) {
    obs::TeeTraceSink tee;
    tee.add(&series);
    std::unique_ptr<obs::JsonlTraceSink> jsonl;
    std::unique_ptr<obs::ChromeTraceSink> chrome;
    if (!trace_out.empty()) {
      if (trace_out.ends_with(".jsonl")) {
        jsonl = std::make_unique<obs::JsonlTraceSink>(trace_out);
        trace_ok = jsonl->ok();
        tee.add(jsonl.get());
      } else {
        chrome = std::make_unique<obs::ChromeTraceSink>(trace_out, logp.o_us);
        tee.add(chrome.get());
      }
    }
    RunConfig rcfg = trial_run_config(spec, 0);
    // The reservoir is seeded from the trial's run seed so the sampled
    // event set is a pure function of the run, not of the engine or its
    // shard/thread count.
    std::unique_ptr<obs::SamplingTraceSink> sampler;
    if (!sample_out.empty()) {
      const auto k = static_cast<std::size_t>(
          std::max<std::int64_t>(flags.get_int("sample-k", 4096), 1));
      sampler = std::make_unique<obs::SamplingTraceSink>(rcfg.seed, k);
      tee.add(sampler.get());
    }
    rcfg.trace = &tee;
    rcfg.profile = &profile;
    if (histograms) rcfg.telemetry = &telemetry;
    rcfg.heartbeat = heartbeat.get();
    trial0 = run_once(algo, spec.acfg, rcfg, spec.exec);
    if (chrome) trace_ok = chrome->close();
    if (sampler) {
      const std::vector<TraceEvent> sampled = sampler->sample();
      if (sample_out.ends_with(".jsonl")) {
        sample_ok = write_file(sample_out, obs::to_jsonl(sampled));
      } else {
        obs::ChromeTraceSink csink(sample_out, logp.o_us);
        for (const auto& ev : sampled) csink.on_event(ev);
        sample_ok = csink.close();
      }
      if (sample_ok)
        std::printf("sample (trial 0, %zu of %lld events): %s\n",
                    sampled.size(),
                    static_cast<long long>(sampler->seen()),
                    sample_out.c_str());
    }

    if (is_gossip_family(algo) && series_stride == 1 && series.steps() > 0) {
      // Compare against the analytic c(t) over the gossip window only: the
      // recurrence models gossip coloring, and for the corrected variants
      // the tail of the curve is correction work it does not describe.
      Step t_cmp = series.steps() - 1;
      if (algo != Algo::kGos)
        t_cmp = std::min(t_cmp, spec.acfg.T + logp.delivery_delay());
      const auto model =
          expected_colored(n, trial0.n_active, spec.acfg.T, logp, t_cmp);
      drift = obs::compare_to_model(series.colored_cumulative(), model,
                                    trial0.n_active);
      have_drift = true;
    }
  }

  Table table({"metric", "value"});
  const double lat = reported_latency_steps(algo, agg);
  table.add_row({"latency (mean, us)", Table::cell("%.2f", logp.us(1) * lat)});
  if (!agg.t_complete.empty()) {
    table.add_row({"latency p50 (us)",
                   Table::cell("%.2f", logp.us(1) * agg.t_complete.p50())});
    table.add_row({"latency p90 (us)",
                   Table::cell("%.2f", logp.us(1) * agg.t_complete.p90())});
    table.add_row({"latency p99 (us)",
                   Table::cell("%.2f", logp.us(1) * agg.t_complete.quantile(0.99))});
    table.add_row({"latency max (us)",
                   Table::cell("%.2f", logp.us(1) * agg.t_complete.max())});
  }
  if (!agg.t_last_colored_partial.empty())
    table.add_row(
        {"last coloring, reached nodes (mean, us)",
         Table::cell("%.2f", logp.us(1) * agg.t_last_colored_partial.mean())});
  table.add_row({"predicted (us)",
                 Table::cell("%.1f", logp.us(tuned.predicted_latency_steps))});
  table.add_row({"work (mean msgs)", Table::cell("%.1f", agg.work.mean())});
  table.add_row({"work p50/p90/p99 (msgs)",
                 Table::cell("%.0f / %.0f / %.0f", agg.work.p50(),
                             agg.work.p90(), agg.work.p99())});
  table.add_row({"  gossip part", Table::cell("%.1f", agg.work_gossip.mean())});
  table.add_row({"  correction part",
                 Table::cell("%.1f", agg.work_correction.mean())});
  if (spec.acfg.reliable.enabled)
    table.add_row({"  retransmissions",
                   Table::cell("%.1f", agg.work_retrans.mean())});
  table.add_row({"inconsistency (mean)",
                 Table::cell("%.3g", agg.inconsistency.mean())});
  table.add_row({"all-reached trials",
                 Table::cell("%lld/%lld",
                             static_cast<long long>(agg.all_colored_trials),
                             static_cast<long long>(agg.trials))});
  table.add_row({"SOS trials",
                 Table::cell("%lld", static_cast<long long>(agg.sos_trials))});
  table.add_row(
      {"all-or-nothing violations",
       Table::cell("%lld", static_cast<long long>(agg.all_or_nothing_violations))});
  table.add_row({"truncated (hit max steps)",
                 Table::cell("%lld",
                             static_cast<long long>(agg.hit_max_steps_trials))});
  if (spec.byz_count > 0) {
    table.add_row(
        {"consistency violations",
         Table::cell("%lld/%lld",
                     static_cast<long long>(agg.consistency_violations),
                     static_cast<long long>(agg.trials))});
    table.add_row({"forged-delivery trials",
                   Table::cell("%lld", static_cast<long long>(
                                           agg.forged_delivery_trials))});
    table.add_row(
        {"byz msgs (equiv/forged/suppr)",
         Table::cell("%lld / %lld / %lld",
                     static_cast<long long>(agg.msgs_equivocated_total),
                     static_cast<long long>(agg.msgs_forged_total),
                     static_cast<long long>(agg.msgs_suppressed_total))});
  }
  if (flags.get_bool("csv", false))
    std::fputs(table.csv().c_str(), stdout);
  else
    table.print();

  if (histograms) {
    const TelemetryCell& mc = telemetry.merged();
    std::printf("telemetry (trial 0): %lld colorings, %lld deliveries\n",
                static_cast<long long>(mc.colorings),
                static_cast<long long>(mc.deliveries));
    Table ht({"histogram", "count", "mean", "p50", "p90", "p99", "max"});
    const auto row = [&ht](const char* name, const LogHistogram& h) {
      ht.add_row({name, Table::cell("%lld", static_cast<long long>(h.count())),
                  Table::cell("%.2f", h.mean()),
                  Table::cell("%lld", static_cast<long long>(h.quantile(0.5))),
                  Table::cell("%lld", static_cast<long long>(h.quantile(0.9))),
                  Table::cell("%lld", static_cast<long long>(h.quantile(0.99))),
                  Table::cell("%lld", static_cast<long long>(h.max_bound()))});
    };
    row("coloring latency (steps)", mc.coloring_latency);
    row("inbox depth (msgs per node-step)", mc.inbox_depth);
    row("window boundary (msgs per shard-window)", mc.window_boundary);
    row("retransmits (msgs per run)", telemetry.retransmits());
    ht.print();
  }

  int rc = 0;
  if (observe) {
    if (!sample_out.empty() && !sample_ok) {
      std::fprintf(stderr, "cgsim: cannot write %s\n", sample_out.c_str());
      rc = 1;
    }
    if (!trace_out.empty()) {
      if (trace_ok) {
        std::printf("trace (trial 0): %s\n", trace_out.c_str());
      } else {
        std::fprintf(stderr, "cgsim: cannot write %s\n", trace_out.c_str());
        rc = 1;
      }
    }
    if (!series_out.empty()) {
      const std::string body = series_out.ends_with(".csv") ? series.to_csv()
                                                            : series.to_json();
      if (write_file(series_out, body)) {
        std::printf("series (trial 0, %lld steps): %s\n",
                    static_cast<long long>(series.steps()), series_out.c_str());
      } else {
        std::fprintf(stderr, "cgsim: cannot write %s\n", series_out.c_str());
        rc = 1;
      }
    }
    if (have_drift)
      std::printf("coloring drift vs analytic c(t) over %lld steps: "
                  "max %.1f nodes (%.2f%% of active, at t=%lld), mean %.2f\n",
                  static_cast<long long>(drift.compared_steps), drift.max_abs,
                  100.0 * drift.max_frac,
                  static_cast<long long>(drift.max_abs_at), drift.mean_abs);
    if (!report_out.empty()) {
      obs::JsonWriter w;
      w.begin_object();
      w.key("config");
      w.begin_object();
      w.kv("algo", algo_name(algo));
      w.kv("n", static_cast<std::int64_t>(n));
      w.kv("l_us", logp.l_us());
      w.kv("o_us", logp.o_us);
      w.kv("T", static_cast<std::int64_t>(spec.acfg.T));
      w.kv("corr", static_cast<std::int64_t>(spec.acfg.ocg_corr_sends));
      w.kv("f", static_cast<std::int64_t>(spec.acfg.fcg_f));
      w.kv("trials", static_cast<std::int64_t>(spec.trials));
      w.kv("seed", static_cast<std::int64_t>(spec.seed));
      w.kv("jitter_max", static_cast<std::int64_t>(spec.jitter_max));
      w.kv("drop_prob", spec.drop_prob);
      w.kv("burst_loss", spec.burst_loss);
      w.kv("burst_mean", static_cast<std::int64_t>(spec.burst_mean));
      w.kv("restarts", static_cast<std::int64_t>(spec.restarts));
      w.kv("stragglers", static_cast<std::int64_t>(spec.stragglers));
      w.kv("partition_nodes",
           static_cast<std::int64_t>(spec.partition_nodes));
      w.kv("byz_count", static_cast<std::int64_t>(spec.byz_count));
      w.kv("byz_mode", byz_mode_name(spec.byz_mode));
      w.kv("byz_include_root", spec.byz_include_root);
      w.kv("reliable", spec.acfg.reliable.enabled);
      w.kv("pre_failures", static_cast<std::int64_t>(spec.pre_failures));
      w.kv("online_failures",
           static_cast<std::int64_t>(spec.online_failures));
      w.kv("eps", eps);
      w.kv("engine", engine_name(spec.exec.engine));
      w.end_object();
      w.key("aggregate");
      obs::write_json(w, agg);
      w.key("trial0");
      w.begin_object();
      w.key("metrics");
      obs::write_json(w, trial0);
      w.key("engine_profile");
      obs::write_json(w, profile);
      if (histograms) {
        w.key("telemetry");
        obs::write_json(w, telemetry);
      }
      w.key("drift");
      w.begin_object();
      if (have_drift) {
        w.kv("compared_steps", static_cast<std::int64_t>(drift.compared_steps));
        w.kv("max_abs", drift.max_abs);
        w.kv("max_abs_at", static_cast<std::int64_t>(drift.max_abs_at));
        w.kv("max_frac", drift.max_frac);
        w.kv("mean_abs", drift.mean_abs);
      }
      w.end_object();
      w.end_object();
      w.end_object();
      if (write_file(report_out, w.str() + "\n")) {
        std::printf("report: %s\n", report_out.c_str());
      } else {
        std::fprintf(stderr, "cgsim: cannot write %s\n", report_out.c_str());
        rc = 1;
      }
    }
  }
  return rc;
}

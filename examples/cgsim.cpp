// cgsim: general-purpose command-line driver for the simulator - run any
// algorithm at any configuration and print the aggregate metrics.  This is
// the "authors' simulator" workflow: every experiment in the paper (and in
// EXPERIMENTS.md) can be reproduced from this one binary, if you prefer
// flags over the canned bench targets.
//
//   ./cgsim --algo=fcg --n=4096 --l=2 --o=1 --trials=1000 [--t=37]
//           [--corr=6] [--f=1] [--pre-fail=3] [--online-fail=1]
//           [--jitter=0] [--drop=0] [--eps=6.93e-7] [--seed=1]
//           [--rx=drain|one] [--threads=1] [--drain-extra=0] [--csv]
//
// Omitted --t/--corr are tuned from the analytic models at --eps.
#include <cstdio>
#include <string>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);

  const std::string algo_s = flags.get_string("algo", "ccg");
  Algo algo;
  if (algo_s == "gos") algo = Algo::kGos;
  else if (algo_s == "ocg") algo = Algo::kOcg;
  else if (algo_s == "ccg") algo = Algo::kCcg;
  else if (algo_s == "fcg") algo = Algo::kFcg;
  else if (algo_s == "chain") algo = Algo::kOcgChain;
  else if (algo_s == "big") algo = Algo::kBig;
  else if (algo_s == "bfb") algo = Algo::kBfb;
  else if (algo_s == "opt") algo = Algo::kOpt;
  else {
    std::fprintf(stderr, "unknown --algo=%s (gos|ocg|ccg|fcg|chain|big|bfb|opt)\n",
                 algo_s.c_str());
    return 2;
  }

  const auto n = static_cast<NodeId>(flags.get_int("n", 1024));
  const LogP logp{.l_over_o = flags.get_int("l", 2) / flags.get_int("o", 1),
                  .o_us = static_cast<double>(flags.get_int("o", 1))};
  const double eps = flags.get_double("eps", 6.9315e-7);
  const int f = static_cast<int>(flags.get_int("f", 1));
  const int pre = static_cast<int>(flags.get_int("pre-fail", 0));
  const int online = static_cast<int>(flags.get_int("online-fail", 0));

  TrialSpec spec;
  spec.algo = algo;
  spec.n = n;
  spec.logp = logp;
  spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  spec.trials = static_cast<int>(flags.get_int("trials", 1000));
  spec.threads = static_cast<int>(flags.get_int("threads", 1));
  spec.jitter_max = flags.get_int("jitter", 0);
  spec.drop_prob = flags.get_double("drop", 0.0);
  spec.pre_failures = pre;
  spec.online_failures = online;
  spec.rx = flags.get_string("rx", "drain") == "one" ? RxPolicy::kOnePerStep
                                                     : RxPolicy::kDrainAll;

  // Parameters: explicit flags override the model-tuned defaults.
  const TunedAlgo tuned = tune_for(algo, n, n - pre, logp, eps, f);
  spec.acfg = tuned.acfg;
  if (flags.has("t")) spec.acfg.T = flags.get_int("t", spec.acfg.T);
  if (flags.has("corr"))
    spec.acfg.ocg_corr_sends = flags.get_int("corr", spec.acfg.ocg_corr_sends);
  spec.acfg.fcg_f = f;
  spec.acfg.drain_extra = flags.get_int("drain-extra", 0);

  std::printf("cgsim: %s on N=%d (L=%.0fus O=%.0fus), T=%lld, %d trials, "
              "%d pre-failed, %d online failures, jitter<=%lld, eps=%.3g\n",
              algo_name(algo), n, logp.l_us(), logp.o_us,
              static_cast<long long>(spec.acfg.T), spec.trials, pre, online,
              static_cast<long long>(spec.jitter_max), eps);

  const TrialAggregate agg = run_trials(spec);

  Table table({"metric", "value"});
  const double lat = reported_latency_steps(algo, agg);
  table.add_row({"latency (mean, us)", Table::cell("%.2f", logp.us(1) * lat)});
  if (!agg.t_complete.empty()) {
    table.add_row({"latency p99 (us)",
                   Table::cell("%.2f", logp.us(1) * agg.t_complete.quantile(0.99))});
    table.add_row({"latency max (us)",
                   Table::cell("%.2f", logp.us(1) * agg.t_complete.max())});
  }
  table.add_row({"predicted (us)",
                 Table::cell("%.1f", logp.us(tuned.predicted_latency_steps))});
  table.add_row({"work (mean msgs)", Table::cell("%.1f", agg.work.mean())});
  table.add_row({"  gossip part", Table::cell("%.1f", agg.work_gossip.mean())});
  table.add_row({"  correction part",
                 Table::cell("%.1f", agg.work_correction.mean())});
  table.add_row({"inconsistency (mean)",
                 Table::cell("%.3g", agg.inconsistency.mean())});
  table.add_row({"all-reached trials",
                 Table::cell("%lld/%lld",
                             static_cast<long long>(agg.all_colored_trials),
                             static_cast<long long>(agg.trials))});
  table.add_row({"SOS trials",
                 Table::cell("%lld", static_cast<long long>(agg.sos_trials))});
  table.add_row(
      {"all-or-nothing violations",
       Table::cell("%lld", static_cast<long long>(agg.all_or_nothing_violations))});
  table.add_row({"runaway (hit max steps)",
                 Table::cell("%lld",
                             static_cast<long long>(agg.hit_max_steps_trials))});
  if (flags.get_bool("csv", false))
    std::fputs(table.csv().c_str(), stdout);
  else
    table.print();
  return 0;
}

// BSP-style iterative computation with consistent termination detection
// (the paper's Section II names Bulk Synchronous Parallel programs as the
// case where weakly consistent broadcast is unacceptable: nodes in
// different supersteps break the model).
//
// Each node runs a local fixed-point iteration whose residual decays at a
// node-specific random rate.  After every superstep the nodes agree on
// the GLOBAL maximum residual with a corrected-gossip all-reduce and stop
// when it drops below the tolerance - every node in the same superstep,
// every time.
//
//   ./bsp_convergence [--n=256] [--tol=1000] [--seed=5]
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "analysis/tuning.hpp"
#include "collectives/allreduce.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 256));
  const std::int64_t tol = flags.get_int("tol", 1000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  const LogP logp = LogP::piz_daint();
  const double eps = 1e-5;

  // Local state: residuals in fixed-point (integers for the idempotent
  // max-reduction); each node's residual decays by a private factor.
  std::vector<std::int64_t> residual(static_cast<std::size_t>(n));
  std::vector<double> decay(static_cast<std::size_t>(n));
  Xoshiro256 rng(seed);
  for (NodeId i = 0; i < n; ++i) {
    residual[static_cast<std::size_t>(i)] =
        1'000'000 + static_cast<std::int64_t>(rng.bounded(1'000'000));
    decay[static_cast<std::size_t>(i)] = 0.35 + 0.4 * rng.uniform01();
  }

  const Tuning t = tune_ocg(n, n, logp, eps);
  AllreduceNode::Params ar;
  ar.T = t.T_opt + 1;
  ar.corr_sends = allreduce_sweeps(n, ar.T, logp, eps);
  ar.op = ReduceOp::kMax;

  std::printf("BSP fixed-point on %d nodes, tol=%" PRId64
              "; per-superstep corrected-gossip all-reduce "
              "(T=%lld, C=%lld)\n\n", n, tol,
              static_cast<long long>(ar.T),
              static_cast<long long>(ar.corr_sends));

  double total_comm_us = 0;
  std::int64_t total_msgs = 0;
  for (int superstep = 1;; ++superstep) {
    // Local compute phase.
    for (NodeId i = 0; i < n; ++i) {
      auto& r = residual[static_cast<std::size_t>(i)];
      r = static_cast<std::int64_t>(static_cast<double>(r) *
                                    decay[static_cast<std::size_t>(i)]);
    }

    // Communication phase: agree on the global maximum residual.
    AllreduceNode::Params params = ar;
    params.contribution = [&](NodeId i) {
      return residual[static_cast<std::size_t>(i)];
    };
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = logp;
    cfg.seed = derive_seed(seed, static_cast<std::uint64_t>(superstep));
    const AllreduceResult res = run_allreduce(params, cfg);
    total_comm_us += logp.us(res.t_complete);
    total_msgs += res.messages;

    // Every node applies the same decision on ITS OWN aggregate: the BSP
    // invariant is that these decisions agree.
    int stopping = 0;
    for (NodeId i = 0; i < n; ++i)
      if (res.values[static_cast<std::size_t>(i)] < tol) ++stopping;

    std::printf("superstep %2d: global max residual %10" PRId64
                "  (exact at %s nodes)  stop votes %d/%d\n",
                superstep, res.expected, res.all_correct ? "all" : "NOT all",
                stopping, n);

    if (stopping == n) {
      std::printf("\nconverged: all %d nodes stop in superstep %d "
                  "TOGETHER (BSP invariant held)\n", n, superstep);
      break;
    }
    if (stopping != 0) {
      std::printf("\nBSP INVARIANT VIOLATED: %d of %d nodes would stop "
                  "early!\n", stopping, n);
      return 1;
    }
    if (superstep > 60) {
      std::printf("no convergence after 60 supersteps?!\n");
      return 1;
    }
  }

  std::printf("communication total: %.0f us over %" PRId64 " messages\n",
              total_comm_us, total_msgs);
  return 0;
}

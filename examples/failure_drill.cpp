// Failure drill: crash nodes at the worst moments - and optionally break
// the channel under them - and watch each consistency level respond.
// Demonstrates concretely why CCG's guarantee needs a failure-free, loss-
// free correction phase, how FCG's all-or-nothing semantics hold up
// (including the SOS backstop), and what the ack/retransmit sublayer
// (--reliable) buys back once messages can be lost (docs/FAULTS.md).
//
//   ./failure_drill [--n=512] [--threads=0] [--trials=300] [--seed=7]
//                   [--drop-prob=0] [--burst-loss=0] [--burst-mean=4]
//                   [--restart=0] [--stragglers=0] [--reliable]
//                   [--byz=K] [--byz-mode=silent|equivocator|corruptor|spammer]
//                   [--byz-root]
//                   [--engine=stepped|async|parallel|sharded] [--shards=K]
//                   [--heartbeat=SECONDS]
//
// With --byz=K the drill adds an SBRB row and a "consistent" column: the
// crash-model protocols keep their liveness numbers but lose payload
// consistency under equivocation, while SBRB's sampled echo/ready quorums
// hold it (docs/FAULTS.md, Byzantine tier).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "harness/scenarios.hpp"
#include "obs/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 512));
  const int trials = static_cast<int>(flags.get_int("trials", 300));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const double drop_prob = flags.get_double("drop-prob", 0.0);
  const double burst_loss = flags.get_double("burst-loss", 0.0);
  const Step burst_mean = flags.get_int("burst-mean", 4);
  const int restarts = static_cast<int>(flags.get_int("restart", 0));
  const int stragglers = static_cast<int>(flags.get_int("stragglers", 0));
  const bool reliable = flags.get_bool("reliable", false);
  int byz_count = static_cast<int>(flags.get_int("byz", 0));
  const bool byz_root = flags.get_bool("byz-root", false);
  if (byz_root && byz_count == 0) byz_count = 1;
  ByzMode byz_mode = ByzMode::kEquivocator;
  const std::string byz_mode_s = flags.get_string("byz-mode", "equivocator");
  if (!byz_mode_from_name(byz_mode_s, byz_mode)) {
    std::fprintf(stderr, "unknown --byz-mode=%s (%s)\n", byz_mode_s.c_str(),
                 byz_mode_names_list());
    return 2;
  }
  ExecConfig exec;
  const std::string engine_s = flags.get_string("engine", "stepped");
  if (!engine_from_name(engine_s, exec.engine)) {
    std::fprintf(stderr, "unknown --engine=%s (%s)\n", engine_s.c_str(),
                 engine_names_list());
    return 2;
  }
  exec.threads = static_cast<int>(flags.get_int("shards", 1));
  const LogP logp = LogP::piz_daint();
  const double eps = 1e-4;
  std::unique_ptr<Heartbeat> heartbeat;
  if (flags.has("heartbeat"))
    heartbeat = std::make_unique<Heartbeat>(
        stderr, flags.get_double("heartbeat", 5.0), "drill");

  std::printf("failure drill: N=%d, random crashes while the broadcast "
              "runs, %d trials per cell\n", n, trials);
  if (drop_prob > 0 || burst_loss > 0 || restarts > 0 || stragglers > 0)
    std::printf("faults: drop=%.3g burst=%.3g(mean %lld) restarts=%d "
                "stragglers=%d reliable=%s\n",
                drop_prob, burst_loss, static_cast<long long>(burst_mean),
                restarts, stragglers, reliable ? "on" : "off");
  if (byz_count > 0)
    std::printf("adversary: %d byzantine (%s)%s\n", byz_count,
                byz_mode_name(byz_mode), byz_root ? " incl. root" : "");
  std::printf("\n");

  std::vector<Algo> algos = {Algo::kCcg, Algo::kFcg};
  if (byz_count > 0) algos.push_back(Algo::kSbrb);
  Table table({"algo", "online crashes", "all reached", "all-or-nothing",
               "consistent", "SOS runs", "retrans", "truncated",
               "mean lat[us]"});
  for (const Algo a : algos) {
    for (const int crashes : {0, 1, 3}) {
      const TunedAlgo tuned = tune_for(a, n, n, logp, eps, /*f=*/1);
      TrialSpec spec;
      spec.threads = static_cast<int>(flags.get_int("threads", 0));
      spec.heartbeat = heartbeat.get();
      spec.exec = exec;
      spec.algo = a;
      spec.acfg = tuned.acfg;
      spec.acfg.reliable.enabled = reliable;
      spec.n = n;
      spec.logp = logp;
      spec.seed = derive_seed(seed, static_cast<std::uint64_t>(crashes) * 4 +
                                        static_cast<std::uint64_t>(a));
      spec.trials = trials;
      spec.online_failures = crashes;
      spec.online_horizon = tuned.predicted_latency_steps + 8;
      spec.drop_prob = drop_prob;
      spec.burst_loss = burst_loss;
      spec.burst_mean = burst_mean;
      spec.restarts = restarts;
      spec.stragglers = stragglers;
      spec.byz_count = byz_count;
      spec.byz_mode = byz_mode;
      spec.byz_include_root = byz_root;
      const TrialAggregate agg = run_trials(spec);
      table.add_row(
          {algo_name(a), Table::cell("%d", crashes),
           Table::cell("%lld/%lld",
                       static_cast<long long>(agg.all_colored_trials),
                       static_cast<long long>(agg.trials)),
           a == Algo::kFcg
               ? Table::cell("%lld/%lld",
                             static_cast<long long>(
                                 agg.trials - agg.all_or_nothing_violations),
                             static_cast<long long>(agg.trials))
               : std::string("n/a"),
           byz_count > 0
               ? Table::cell("%lld/%lld",
                             static_cast<long long>(
                                 agg.trials - agg.consistency_violations),
                             static_cast<long long>(agg.trials))
               : std::string("n/a"),
           Table::cell("%lld", static_cast<long long>(agg.sos_trials)),
           Table::cell("%.1f", agg.work_retrans.mean()),
           Table::cell("%lld",
                       static_cast<long long>(agg.hit_max_steps_trials)),
           Table::cell("%.1f",
                       logp.us(1) * reported_latency_steps(a, agg))});
    }
  }
  table.print();

  std::printf(
      "\nreading the table:\n"
      "  * CCG with 0 crashes reaches everyone, always (Claim 3) - on a\n"
      "    RELIABLE channel.  Re-run with --burst-loss=0.03 to watch the\n"
      "    claim die, and add --reliable to watch retransmission (the\n"
      "    retrans column is its price) buy it back.\n"
      "  * CCG under crashes degrades badly: a g-node that never hears its\n"
      "    neighbor (it died) sweeps on, up to a full O(N) lap - watch the\n"
      "    latency column - and if EVERY g-node covering a gap dies, nodes\n"
      "    stay unreached while others delivered (the inconsistency the\n"
      "    paper motivates FCG with in Section III-D).\n"
      "  * FCG keeps all-or-nothing delivery in every run (Claim 4) at\n"
      "    nearly flat latency; SOS fires only in pathological cases and\n"
      "    still delivers.\n"
      "  * 'truncated' counts trials stopped by the max-step safety rail\n"
      "    (RunConfig::effective_max_steps) - a run that long signals a\n"
      "    livelock, not a slow finish.\n");
  return 0;
}

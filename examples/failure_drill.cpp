// Failure drill: crash nodes at the worst moments and watch each
// consistency level respond.  Demonstrates concretely why CCG's guarantee
// needs a failure-free correction phase and how FCG's all-or-nothing
// semantics hold up (including the SOS backstop).
//
//   ./failure_drill [--n=512] [--trials=300] [--seed=7]
#include <cstdio>

#include "analysis/tuning.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "harness/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);
  const auto n = static_cast<NodeId>(flags.get_int("n", 512));
  const int trials = static_cast<int>(flags.get_int("trials", 300));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const LogP logp = LogP::piz_daint();
  const double eps = 1e-4;

  std::printf("failure drill: N=%d, random crashes while the broadcast "
              "runs, %d trials per cell\n\n", n, trials);

  Table table({"algo", "online crashes", "all reached", "all-or-nothing",
               "SOS runs", "mean lat[us]"});
  for (const Algo a : {Algo::kCcg, Algo::kFcg}) {
    for (const int crashes : {0, 1, 3}) {
      const TunedAlgo tuned = tune_for(a, n, n, logp, eps, /*f=*/1);
      TrialSpec spec;
      spec.algo = a;
      spec.acfg = tuned.acfg;
      spec.n = n;
      spec.logp = logp;
      spec.seed = derive_seed(seed, static_cast<std::uint64_t>(crashes) * 4 +
                                        static_cast<std::uint64_t>(a));
      spec.trials = trials;
      spec.online_failures = crashes;
      spec.online_horizon = tuned.predicted_latency_steps + 8;
      const TrialAggregate agg = run_trials(spec);
      table.add_row(
          {algo_name(a), Table::cell("%d", crashes),
           Table::cell("%lld/%lld",
                       static_cast<long long>(agg.all_colored_trials),
                       static_cast<long long>(agg.trials)),
           a == Algo::kFcg
               ? Table::cell("%lld/%lld",
                             static_cast<long long>(
                                 agg.trials - agg.all_or_nothing_violations),
                             static_cast<long long>(agg.trials))
               : std::string("n/a"),
           Table::cell("%lld", static_cast<long long>(agg.sos_trials)),
           Table::cell("%.1f", logp.us(1) * (agg.t_complete.empty()
                                                 ? 0.0
                                                 : agg.t_complete.mean()))});
    }
  }
  table.print();

  std::printf(
      "\nreading the table:\n"
      "  * CCG with 0 crashes reaches everyone, always (Claim 3).\n"
      "  * CCG under crashes degrades badly: a g-node that never hears its\n"
      "    neighbor (it died) sweeps on, up to a full O(N) lap - watch the\n"
      "    latency column - and if EVERY g-node covering a gap dies, nodes\n"
      "    stay unreached while others delivered (the inconsistency the\n"
      "    paper motivates FCG with in Section III-D).\n"
      "  * FCG keeps all-or-nothing delivery in every run (Claim 4) at\n"
      "    nearly flat latency; SOS fires only in pathological cases and\n"
      "    still delivers.\n");
  return 0;
}

// Fault-injection campaign: run CCG and FCG (plain and loss-hardened)
// through the stock grid of hostile channels - i.i.d. loss, Gilbert-
// Elliott burst loss, crashes, crash-restarts, stragglers, transient
// partitions - and check each variant's guarantee as a hard predicate
// over every trial.  Writes the machine-readable reliability report that
// docs/FAULTS.md describes.
//
//   ./fault_campaign [--n=128] [--trials=100] [--seed=21] [--threads=0]
//                    [--report-json=campaign.json] [--strict]
//                    [--artifacts-dir=<dir>] [--heartbeat=SECONDS]
//                    [--byz-grid] [--byz=K] [--byz-mode=MODE] [--byz-root]
//                    [--replay=scenario/entry/trial] [--replay-out=<file>]
//
// --strict makes a failed guarantee cell a non-zero exit (CI gate).
//
// Byzantine tier (docs/FAULTS.md): --byz-grid swaps in the adversarial
// grid - {clean, 5% equivocators, 10% equivocators, root equivocation} x
// {CCG, FCG, SBRB}, every cell claiming payload consistency.  CCG/FCG are
// expected to FAIL it (their violation artifacts replay like any other);
// SBRB must hold.  Alternatively --byz=K --byz-mode=MODE overlays K
// adversaries of one mode onto every stock scenario.  --replay evaluates
// the same effective guarantee either way.
//
// Failure forensics (docs/OBSERVABILITY.md "Failure forensics"):
// --artifacts-dir attaches a flight recorder to every trial; each
// guarantee-violating or truncated trial dumps its recent-event ring to
// `<dir>/<scenario>__<entry>__t<trial>.jsonl` whose header carries the
// exact --replay command.  --replay re-executes that one trial on the
// stepped engine (same seed and fault schedule) and, with --replay-out,
// writes its full JSONL trace - the artifact ring is the exact suffix.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness/campaign.hpp"
#include "harness/scenarios.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_sinks.hpp"

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

/// Re-run one campaign trial (named "scenario/entry/trial") on the stepped
/// engine with an optional full JSONL trace attached.
int replay_trial(const cg::CampaignConfig& cfg,
                 const std::vector<cg::FaultScenario>& scenarios,
                 const std::vector<cg::CampaignEntry>& entries,
                 const std::string& what, const std::string& trace_out) {
  using namespace cg;
  const auto first = what.find('/');
  const auto last = what.rfind('/');
  if (first == std::string::npos || last == first) {
    std::fprintf(stderr,
                 "fault_campaign: --replay wants scenario/entry/trial\n");
    return 2;
  }
  const std::string sc_name = what.substr(0, first);
  const std::string en_label = what.substr(first + 1, last - first - 1);
  const int trial = std::atoi(what.c_str() + last + 1);

  const FaultScenario* sc = nullptr;
  for (const auto& s : scenarios)
    if (s.name == sc_name) sc = &s;
  const CampaignEntry* en = nullptr;
  for (const auto& e : entries)
    if (e.label == en_label) en = &e;
  if (sc == nullptr || en == nullptr || trial < 0 || trial >= cfg.trials) {
    std::fprintf(stderr, "fault_campaign: unknown cell or trial \"%s\"\n",
                 what.c_str());
    return 2;
  }

  const TrialSpec spec = campaign_trial_spec(cfg, *sc, *en);
  RunConfig rcfg = trial_run_config(spec, trial);
  std::unique_ptr<obs::JsonlTraceSink> sink;
  if (!trace_out.empty()) {
    sink = std::make_unique<obs::JsonlTraceSink>(trace_out);
    if (!sink->ok()) {
      std::fprintf(stderr, "fault_campaign: cannot write %s\n",
                   trace_out.c_str());
      return 1;
    }
    rcfg.trace = sink.get();
  }
  const RunMetrics m = run_once(spec.algo, spec.acfg, rcfg);
  const Guarantee g = campaign_effective_guarantee(en->guarantee, *sc);
  std::printf(
      "replay %s: colored %d/%d, delivered %d, msgs %lld (%lld retrans), "
      "sos=%s, truncated=%s\n",
      what.c_str(), m.n_colored, m.n_active, m.n_delivered,
      static_cast<long long>(m.msgs_total),
      static_cast<long long>(m.msgs_retrans), m.sos_triggered ? "yes" : "no",
      m.hit_max_steps ? "yes" : "no");
  if (m.n_byzantine > 0)
    std::printf(
        "adversary: %d byzantine, delivered payloads true=%d forged=%d "
        "distinct=%d, consistent=%s\n",
        m.n_byzantine, m.n_delivered_true, m.n_delivered_forged,
        m.distinct_delivered_payloads, m.consistent_delivery ? "yes" : "NO");
  std::printf("guarantee %s: %s\n", guarantee_name(g),
              trial_violates(g, m) ? "VIOLATED" : "holds");
  if (sink) std::printf("trace: %s\n", trace_out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);

  CampaignConfig cfg;
  cfg.n = static_cast<NodeId>(flags.get_int("n", 128));
  cfg.logp = LogP::piz_daint();
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 21));
  cfg.trials = static_cast<int>(flags.get_int("trials", 100));
  cfg.threads = static_cast<int>(flags.get_int("threads", 0));

  int byz_count = static_cast<int>(flags.get_int("byz", 0));
  const bool byz_root = flags.get_bool("byz-root", false);
  if (byz_root && byz_count == 0) byz_count = 1;
  ByzMode byz_mode = ByzMode::kEquivocator;
  const std::string byz_mode_s = flags.get_string("byz-mode", "equivocator");
  if (!byz_mode_from_name(byz_mode_s, byz_mode)) {
    std::fprintf(stderr, "unknown --byz-mode=%s (%s)\n", byz_mode_s.c_str(),
                 byz_mode_names_list());
    return 2;
  }
  const bool byz_grid = flags.get_bool("byz-grid", false);

  const double eps = 1e-4;
  std::vector<CampaignEntry> entries;
  std::vector<FaultScenario> scenarios;
  if (byz_grid) {
    const TunedAlgo ccg = tune_for(Algo::kCcg, cfg.n, cfg.n, cfg.logp, eps, 1);
    const TunedAlgo fcg = tune_for(Algo::kFcg, cfg.n, cfg.n, cfg.logp, eps, 1);
    const TunedAlgo sbrb =
        tune_for(Algo::kSbrb, cfg.n, cfg.n, cfg.logp, eps, 1);
    entries = byzantine_entries(ccg.acfg, fcg.acfg, sbrb.acfg);
    scenarios = byzantine_fault_scenarios(cfg.n);
  } else {
    for (const Algo a : {Algo::kCcg, Algo::kFcg}) {
      const TunedAlgo tuned =
          tune_for(a, cfg.n, cfg.n, cfg.logp, eps, /*f=*/1);
      for (auto& e : default_entries(a, tuned.acfg)) entries.push_back(e);
    }
    scenarios = default_fault_scenarios();
    if (byz_count > 0) {
      for (auto& s : scenarios) {
        s.byz_count = byz_count;
        s.byz_mode = byz_mode;
        s.byz_include_root = byz_root;
      }
    }
  }

  const std::string replay = flags.get_string("replay", "");
  if (!replay.empty())
    return replay_trial(cfg, scenarios, entries, replay,
                        flags.get_string("replay-out", ""));

  cfg.artifacts_dir = flags.get_string("artifacts-dir", "");
  if (!cfg.artifacts_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cfg.artifacts_dir, ec);
    if (ec) {
      std::fprintf(stderr, "fault_campaign: cannot create %s: %s\n",
                   cfg.artifacts_dir.c_str(), ec.message().c_str());
      return 1;
    }
    char prefix[192];
    std::snprintf(prefix, sizeof prefix,
                  "./fault_campaign --n=%d --seed=%llu --trials=%d", cfg.n,
                  static_cast<unsigned long long>(cfg.seed), cfg.trials);
    cfg.rerun_prefix = prefix;
    // The replay command must rebuild the same scenario/entry grid.
    if (byz_grid) {
      cfg.rerun_prefix += " --byz-grid";
    } else if (byz_count > 0) {
      std::snprintf(prefix, sizeof prefix, " --byz=%d --byz-mode=%s%s",
                    byz_count, byz_mode_name(byz_mode),
                    byz_root ? " --byz-root" : "");
      cfg.rerun_prefix += prefix;
    }
  }
  std::unique_ptr<Heartbeat> heartbeat;
  if (flags.has("heartbeat"))
    heartbeat = std::make_unique<Heartbeat>(
        stderr, flags.get_double("heartbeat", 5.0), "campaign");
  cfg.heartbeat = heartbeat.get();

  std::printf("fault campaign: N=%d, %d trials per cell, %zu scenarios x "
              "%zu entries\n\n",
              cfg.n, cfg.trials, scenarios.size(), entries.size());

  const CampaignResult result = run_campaign(cfg, scenarios, entries);

  Table table({"scenario", "entry", "guarantee", "pass", "reached",
               "aon viol", "consist viol", "SOS", "retrans", "truncated"});
  for (const auto& cell : result.cells) {
    table.add_row(
        {cell.scenario, cell.entry, guarantee_name(cell.guarantee),
         cell.guarantee == Guarantee::kNone ? "-" : (cell.pass ? "yes" : "NO"),
         Table::cell("%lld/%lld",
                     static_cast<long long>(cell.agg.all_colored_trials),
                     static_cast<long long>(cell.agg.trials)),
         Table::cell("%lld",
                     static_cast<long long>(cell.agg.all_or_nothing_violations)),
         Table::cell("%lld",
                     static_cast<long long>(cell.agg.consistency_violations)),
         Table::cell("%lld", static_cast<long long>(cell.agg.sos_trials)),
         Table::cell("%.1f", cell.agg.work_retrans.mean()),
         Table::cell("%lld",
                     static_cast<long long>(cell.agg.hit_max_steps_trials))});
  }
  table.print();
  std::printf("\n%d/%zu guarantee cells failed\n", result.failed_cells,
              result.cells.size());

  if (!result.artifacts.empty()) {
    std::printf("\nfailure artifacts (%zu, <=%d per cell):\n",
                result.artifacts.size(), cfg.max_artifacts_per_cell);
    for (const auto& a : result.artifacts)
      std::printf("  %s / %s trial %d%s -> %s\n", a.scenario.c_str(),
                  a.entry.c_str(), a.trial,
                  a.truncated_run ? " (truncated)" : "", a.path.c_str());
    std::printf("each artifact's header line holds the exact --replay "
                "command for that trial\n");
  }

  const std::string report_out = flags.get_string("report-json", "");
  if (!report_out.empty()) {
    if (write_file(report_out, obs::to_json(result) + "\n")) {
      std::printf("report: %s\n", report_out.c_str());
    } else {
      std::fprintf(stderr, "fault_campaign: cannot write %s\n",
                   report_out.c_str());
      return 1;
    }
  }

  if (flags.get_bool("strict", false) && !result.all_pass()) return 3;
  return 0;
}

// Fault-injection campaign: run CCG and FCG (plain and loss-hardened)
// through the stock grid of hostile channels - i.i.d. loss, Gilbert-
// Elliott burst loss, crashes, crash-restarts, stragglers, transient
// partitions - and check each variant's guarantee as a hard predicate
// over every trial.  Writes the machine-readable reliability report that
// docs/FAULTS.md describes.
//
//   ./fault_campaign [--n=128] [--trials=100] [--seed=21] [--threads=0]
//                    [--report-json=campaign.json] [--strict]
//
// --strict makes a failed guarantee cell a non-zero exit (CI gate).
#include <cstdio>
#include <string>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness/campaign.hpp"
#include "harness/scenarios.hpp"
#include "obs/report.hpp"

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cg;
  const Flags flags(argc, argv);

  CampaignConfig cfg;
  cfg.n = static_cast<NodeId>(flags.get_int("n", 128));
  cfg.logp = LogP::piz_daint();
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 21));
  cfg.trials = static_cast<int>(flags.get_int("trials", 100));
  cfg.threads = static_cast<int>(flags.get_int("threads", 0));

  const double eps = 1e-4;
  std::vector<CampaignEntry> entries;
  for (const Algo a : {Algo::kCcg, Algo::kFcg}) {
    const TunedAlgo tuned = tune_for(a, cfg.n, cfg.n, cfg.logp, eps, /*f=*/1);
    for (auto& e : default_entries(a, tuned.acfg)) entries.push_back(e);
  }
  const auto scenarios = default_fault_scenarios();

  std::printf("fault campaign: N=%d, %d trials per cell, %zu scenarios x "
              "%zu entries\n\n",
              cfg.n, cfg.trials, scenarios.size(), entries.size());

  const CampaignResult result = run_campaign(cfg, scenarios, entries);

  Table table({"scenario", "entry", "guarantee", "pass", "reached",
               "aon viol", "SOS", "retrans", "truncated"});
  for (const auto& cell : result.cells) {
    table.add_row(
        {cell.scenario, cell.entry, guarantee_name(cell.guarantee),
         cell.guarantee == Guarantee::kNone ? "-" : (cell.pass ? "yes" : "NO"),
         Table::cell("%lld/%lld",
                     static_cast<long long>(cell.agg.all_colored_trials),
                     static_cast<long long>(cell.agg.trials)),
         Table::cell("%lld",
                     static_cast<long long>(cell.agg.all_or_nothing_violations)),
         Table::cell("%lld", static_cast<long long>(cell.agg.sos_trials)),
         Table::cell("%.1f", cell.agg.work_retrans.mean()),
         Table::cell("%lld",
                     static_cast<long long>(cell.agg.hit_max_steps_trials))});
  }
  table.print();
  std::printf("\n%d/%zu guarantee cells failed\n", result.failed_cells,
              result.cells.size());

  const std::string report_out = flags.get_string("report-json", "");
  if (!report_out.empty()) {
    if (write_file(report_out, obs::to_json(result) + "\n")) {
      std::printf("report: %s\n", report_out.c_str());
    } else {
      std::fprintf(stderr, "fault_campaign: cannot write %s\n",
                   report_out.c_str());
      return 1;
    }
  }

  if (flags.get_bool("strict", false) && !result.all_pass()) return 3;
  return 0;
}

# Empty dependencies file for membership_monitor.
# This may be replaced when dependencies are built.

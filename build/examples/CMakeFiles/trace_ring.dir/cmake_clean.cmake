file(REMOVE_RECURSE
  "CMakeFiles/trace_ring.dir/trace_ring.cpp.o"
  "CMakeFiles/trace_ring.dir/trace_ring.cpp.o.d"
  "trace_ring"
  "trace_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

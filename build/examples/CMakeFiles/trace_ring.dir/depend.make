# Empty dependencies file for trace_ring.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cgsim.dir/cgsim.cpp.o"
  "CMakeFiles/cgsim.dir/cgsim.cpp.o.d"
  "cgsim"
  "cgsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cgsim.
# This may be replaced when dependencies are built.

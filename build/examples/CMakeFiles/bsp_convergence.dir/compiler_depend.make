# Empty compiler generated dependencies file for bsp_convergence.
# This may be replaced when dependencies are built.

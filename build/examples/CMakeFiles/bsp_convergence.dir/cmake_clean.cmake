file(REMOVE_RECURSE
  "CMakeFiles/bsp_convergence.dir/bsp_convergence.cpp.o"
  "CMakeFiles/bsp_convergence.dir/bsp_convergence.cpp.o.d"
  "bsp_convergence"
  "bsp_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsp_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

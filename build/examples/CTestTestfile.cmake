# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--n=128" "--threads=2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_ring "/root/repo/build/examples/trace_ring" "--algo=fcg" "--t=4")
set_tests_properties(example_trace_ring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tuning_advisor "/root/repo/build/examples/tuning_advisor" "--n=512")
set_tests_properties(example_tuning_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failure_drill "/root/repo/build/examples/failure_drill" "--n=128" "--trials=40")
set_tests_properties(example_failure_drill PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_membership_monitor "/root/repo/build/examples/membership_monitor" "--n=96" "--rounds=3")
set_tests_properties(example_membership_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bsp_convergence "/root/repo/build/examples/bsp_convergence" "--n=96")
set_tests_properties(example_bsp_convergence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cgsim "/root/repo/build/examples/cgsim" "--algo=ccg" "--n=256" "--trials=50")
set_tests_properties(example_cgsim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")

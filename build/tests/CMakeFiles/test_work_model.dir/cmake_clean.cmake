file(REMOVE_RECURSE
  "CMakeFiles/test_work_model.dir/test_work_model.cpp.o"
  "CMakeFiles/test_work_model.dir/test_work_model.cpp.o.d"
  "test_work_model"
  "test_work_model.pdb"
  "test_work_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_work_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_work_model.
# This may be replaced when dependencies are built.

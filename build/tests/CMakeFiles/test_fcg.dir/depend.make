# Empty dependencies file for test_fcg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_fcg.dir/test_fcg.cpp.o"
  "CMakeFiles/test_fcg.dir/test_fcg.cpp.o.d"
  "test_fcg"
  "test_fcg.pdb"
  "test_fcg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_async_engine.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_ccg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_ccg.dir/test_ccg.cpp.o"
  "CMakeFiles/test_ccg.dir/test_ccg.cpp.o.d"
  "test_ccg"
  "test_ccg.pdb"
  "test_ccg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ccg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_ocg.dir/test_ocg.cpp.o"
  "CMakeFiles/test_ocg.dir/test_ocg.cpp.o.d"
  "test_ocg"
  "test_ocg.pdb"
  "test_ocg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ocg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

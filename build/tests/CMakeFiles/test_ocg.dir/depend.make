# Empty dependencies file for test_ocg.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_gossip[1]_include.cmake")
include("/root/repo/build/tests/test_ocg[1]_include.cmake")
include("/root/repo/build/tests/test_ccg[1]_include.cmake")
include("/root/repo/build/tests/test_fcg[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_paper_claims[1]_include.cmake")
include("/root/repo/build/tests/test_work_model[1]_include.cmake")
include("/root/repo/build/tests/test_async_engine[1]_include.cmake")
include("/root/repo/build/tests/test_session[1]_include.cmake")
include("/root/repo/build/tests/test_barrier[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_adversarial[1]_include.cmake")
include("/root/repo/build/tests/test_push_pull[1]_include.cmake")

# Empty dependencies file for fig3_ocg_tuning.
# This may be replaced when dependencies are built.

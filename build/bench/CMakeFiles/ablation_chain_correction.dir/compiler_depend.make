# Empty compiler generated dependencies file for ablation_chain_correction.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_chain_correction.dir/ablation_chain_correction.cpp.o"
  "CMakeFiles/ablation_chain_correction.dir/ablation_chain_correction.cpp.o.d"
  "ablation_chain_correction"
  "ablation_chain_correction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chain_correction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

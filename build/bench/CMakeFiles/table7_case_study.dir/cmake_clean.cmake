file(REMOVE_RECURSE
  "CMakeFiles/table7_case_study.dir/table7_case_study.cpp.o"
  "CMakeFiles/table7_case_study.dir/table7_case_study.cpp.o.d"
  "table7_case_study"
  "table7_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig1_coloring.
# This may be replaced when dependencies are built.

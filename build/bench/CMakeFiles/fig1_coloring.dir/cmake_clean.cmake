file(REMOVE_RECURSE
  "CMakeFiles/fig1_coloring.dir/fig1_coloring.cpp.o"
  "CMakeFiles/fig1_coloring.dir/fig1_coloring.cpp.o.d"
  "fig1_coloring"
  "fig1_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

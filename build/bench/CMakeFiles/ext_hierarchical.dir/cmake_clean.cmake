file(REMOVE_RECURSE
  "CMakeFiles/ext_hierarchical.dir/ext_hierarchical.cpp.o"
  "CMakeFiles/ext_hierarchical.dir/ext_hierarchical.cpp.o.d"
  "ext_hierarchical"
  "ext_hierarchical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig7a_scaling.dir/fig7a_scaling.cpp.o"
  "CMakeFiles/fig7a_scaling.dir/fig7a_scaling.cpp.o.d"
  "fig7a_scaling"
  "fig7a_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig7a_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_margin.dir/ablation_margin.cpp.o"
  "CMakeFiles/ablation_margin.dir/ablation_margin.cpp.o.d"
  "ablation_margin"
  "ablation_margin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_margin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cg_bench_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cg_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/cg_bench_util.dir/bench_util.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

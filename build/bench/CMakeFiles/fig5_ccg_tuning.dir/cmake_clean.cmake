file(REMOVE_RECURSE
  "CMakeFiles/fig5_ccg_tuning.dir/fig5_ccg_tuning.cpp.o"
  "CMakeFiles/fig5_ccg_tuning.dir/fig5_ccg_tuning.cpp.o.d"
  "fig5_ccg_tuning"
  "fig5_ccg_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ccg_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig5_ccg_tuning.
# This may be replaced when dependencies are built.

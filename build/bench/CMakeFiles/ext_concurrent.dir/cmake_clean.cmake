file(REMOVE_RECURSE
  "CMakeFiles/ext_concurrent.dir/ext_concurrent.cpp.o"
  "CMakeFiles/ext_concurrent.dir/ext_concurrent.cpp.o.d"
  "ext_concurrent"
  "ext_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_fcg_f.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_fcg_f.dir/ablation_fcg_f.cpp.o"
  "CMakeFiles/ablation_fcg_f.dir/ablation_fcg_f.cpp.o.d"
  "ablation_fcg_f"
  "ablation_fcg_f.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fcg_f.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_rx_policy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_rx_policy.dir/ablation_rx_policy.cpp.o"
  "CMakeFiles/ablation_rx_policy.dir/ablation_rx_policy.cpp.o.d"
  "ablation_rx_policy"
  "ablation_rx_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rx_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig9_fcg_tuning.dir/fig9_fcg_tuning.cpp.o"
  "CMakeFiles/fig9_fcg_tuning.dir/fig9_fcg_tuning.cpp.o.d"
  "fig9_fcg_tuning"
  "fig9_fcg_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_fcg_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

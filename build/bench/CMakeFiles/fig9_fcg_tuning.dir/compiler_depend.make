# Empty compiler generated dependencies file for fig9_fcg_tuning.
# This may be replaced when dependencies are built.

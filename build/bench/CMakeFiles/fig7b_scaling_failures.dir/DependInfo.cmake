
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7b_scaling_failures.cpp" "bench/CMakeFiles/fig7b_scaling_failures.dir/fig7b_scaling_failures.cpp.o" "gcc" "bench/CMakeFiles/fig7b_scaling_failures.dir/fig7b_scaling_failures.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gossip/CMakeFiles/cg_gossip.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/cg_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/cg_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/cg_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cg_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

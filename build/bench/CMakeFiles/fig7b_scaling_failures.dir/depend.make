# Empty dependencies file for fig7b_scaling_failures.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7b_scaling_failures.dir/fig7b_scaling_failures.cpp.o"
  "CMakeFiles/fig7b_scaling_failures.dir/fig7b_scaling_failures.cpp.o.d"
  "fig7b_scaling_failures"
  "fig7b_scaling_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_scaling_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cg_harness.dir/experiment.cpp.o"
  "CMakeFiles/cg_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/cg_harness.dir/runner.cpp.o"
  "CMakeFiles/cg_harness.dir/runner.cpp.o.d"
  "CMakeFiles/cg_harness.dir/scenarios.cpp.o"
  "CMakeFiles/cg_harness.dir/scenarios.cpp.o.d"
  "libcg_harness.a"
  "libcg_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

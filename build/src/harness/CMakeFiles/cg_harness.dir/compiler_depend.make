# Empty compiler generated dependencies file for cg_harness.
# This may be replaced when dependencies are built.

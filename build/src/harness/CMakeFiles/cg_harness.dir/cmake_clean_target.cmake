file(REMOVE_RECURSE
  "libcg_harness.a"
)

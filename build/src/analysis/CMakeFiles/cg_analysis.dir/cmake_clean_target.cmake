file(REMOVE_RECURSE
  "libcg_analysis.a"
)

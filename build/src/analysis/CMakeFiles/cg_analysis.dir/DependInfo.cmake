
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/baseline_models.cpp" "src/analysis/CMakeFiles/cg_analysis.dir/baseline_models.cpp.o" "gcc" "src/analysis/CMakeFiles/cg_analysis.dir/baseline_models.cpp.o.d"
  "/root/repo/src/analysis/chain.cpp" "src/analysis/CMakeFiles/cg_analysis.dir/chain.cpp.o" "gcc" "src/analysis/CMakeFiles/cg_analysis.dir/chain.cpp.o.d"
  "/root/repo/src/analysis/coloring.cpp" "src/analysis/CMakeFiles/cg_analysis.dir/coloring.cpp.o" "gcc" "src/analysis/CMakeFiles/cg_analysis.dir/coloring.cpp.o.d"
  "/root/repo/src/analysis/fcg_bound.cpp" "src/analysis/CMakeFiles/cg_analysis.dir/fcg_bound.cpp.o" "gcc" "src/analysis/CMakeFiles/cg_analysis.dir/fcg_bound.cpp.o.d"
  "/root/repo/src/analysis/tuning.cpp" "src/analysis/CMakeFiles/cg_analysis.dir/tuning.cpp.o" "gcc" "src/analysis/CMakeFiles/cg_analysis.dir/tuning.cpp.o.d"
  "/root/repo/src/analysis/work_model.cpp" "src/analysis/CMakeFiles/cg_analysis.dir/work_model.cpp.o" "gcc" "src/analysis/CMakeFiles/cg_analysis.dir/work_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

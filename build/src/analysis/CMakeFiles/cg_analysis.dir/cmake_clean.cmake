file(REMOVE_RECURSE
  "CMakeFiles/cg_analysis.dir/baseline_models.cpp.o"
  "CMakeFiles/cg_analysis.dir/baseline_models.cpp.o.d"
  "CMakeFiles/cg_analysis.dir/chain.cpp.o"
  "CMakeFiles/cg_analysis.dir/chain.cpp.o.d"
  "CMakeFiles/cg_analysis.dir/coloring.cpp.o"
  "CMakeFiles/cg_analysis.dir/coloring.cpp.o.d"
  "CMakeFiles/cg_analysis.dir/fcg_bound.cpp.o"
  "CMakeFiles/cg_analysis.dir/fcg_bound.cpp.o.d"
  "CMakeFiles/cg_analysis.dir/tuning.cpp.o"
  "CMakeFiles/cg_analysis.dir/tuning.cpp.o.d"
  "CMakeFiles/cg_analysis.dir/work_model.cpp.o"
  "CMakeFiles/cg_analysis.dir/work_model.cpp.o.d"
  "libcg_analysis.a"
  "libcg_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

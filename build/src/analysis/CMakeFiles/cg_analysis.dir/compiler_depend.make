# Empty compiler generated dependencies file for cg_analysis.
# This may be replaced when dependencies are built.

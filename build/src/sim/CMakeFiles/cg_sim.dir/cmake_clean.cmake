file(REMOVE_RECURSE
  "CMakeFiles/cg_sim.dir/failure.cpp.o"
  "CMakeFiles/cg_sim.dir/failure.cpp.o.d"
  "CMakeFiles/cg_sim.dir/trace.cpp.o"
  "CMakeFiles/cg_sim.dir/trace.cpp.o.d"
  "libcg_sim.a"
  "libcg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

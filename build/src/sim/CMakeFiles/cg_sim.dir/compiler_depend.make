# Empty compiler generated dependencies file for cg_sim.
# This may be replaced when dependencies are built.

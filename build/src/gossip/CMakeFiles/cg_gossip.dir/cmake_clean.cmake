file(REMOVE_RECURSE
  "CMakeFiles/cg_gossip.dir/ccg_pushpull.cpp.o"
  "CMakeFiles/cg_gossip.dir/ccg_pushpull.cpp.o.d"
  "CMakeFiles/cg_gossip.dir/push_pull.cpp.o"
  "CMakeFiles/cg_gossip.dir/push_pull.cpp.o.d"
  "CMakeFiles/cg_gossip.dir/round_gossip.cpp.o"
  "CMakeFiles/cg_gossip.dir/round_gossip.cpp.o.d"
  "libcg_gossip.a"
  "libcg_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gossip/ccg_pushpull.cpp" "src/gossip/CMakeFiles/cg_gossip.dir/ccg_pushpull.cpp.o" "gcc" "src/gossip/CMakeFiles/cg_gossip.dir/ccg_pushpull.cpp.o.d"
  "/root/repo/src/gossip/push_pull.cpp" "src/gossip/CMakeFiles/cg_gossip.dir/push_pull.cpp.o" "gcc" "src/gossip/CMakeFiles/cg_gossip.dir/push_pull.cpp.o.d"
  "/root/repo/src/gossip/round_gossip.cpp" "src/gossip/CMakeFiles/cg_gossip.dir/round_gossip.cpp.o" "gcc" "src/gossip/CMakeFiles/cg_gossip.dir/round_gossip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cg_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

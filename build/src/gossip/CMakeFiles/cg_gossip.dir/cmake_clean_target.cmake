file(REMOVE_RECURSE
  "libcg_gossip.a"
)

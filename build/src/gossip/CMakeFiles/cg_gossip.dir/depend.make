# Empty dependencies file for cg_gossip.
# This may be replaced when dependencies are built.

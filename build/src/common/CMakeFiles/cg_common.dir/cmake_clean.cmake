file(REMOVE_RECURSE
  "CMakeFiles/cg_common.dir/ascii_plot.cpp.o"
  "CMakeFiles/cg_common.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/cg_common.dir/flags.cpp.o"
  "CMakeFiles/cg_common.dir/flags.cpp.o.d"
  "CMakeFiles/cg_common.dir/table.cpp.o"
  "CMakeFiles/cg_common.dir/table.cpp.o.d"
  "libcg_common.a"
  "libcg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcg_common.a"
)

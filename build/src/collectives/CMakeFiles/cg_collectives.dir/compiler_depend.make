# Empty compiler generated dependencies file for cg_collectives.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcg_collectives.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cg_collectives.dir/allreduce.cpp.o"
  "CMakeFiles/cg_collectives.dir/allreduce.cpp.o.d"
  "libcg_collectives.a"
  "libcg_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cg_baselines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cg_baselines.dir/opt_tree.cpp.o"
  "CMakeFiles/cg_baselines.dir/opt_tree.cpp.o.d"
  "libcg_baselines.a"
  "libcg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

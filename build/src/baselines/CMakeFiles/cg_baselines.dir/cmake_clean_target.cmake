file(REMOVE_RECURSE
  "libcg_baselines.a"
)

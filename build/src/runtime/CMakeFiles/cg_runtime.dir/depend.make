# Empty dependencies file for cg_runtime.
# This may be replaced when dependencies are built.

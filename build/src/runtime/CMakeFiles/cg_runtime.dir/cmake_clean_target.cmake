file(REMOVE_RECURSE
  "libcg_runtime.a"
)

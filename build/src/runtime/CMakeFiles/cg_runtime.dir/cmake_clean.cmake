file(REMOVE_RECURSE
  "CMakeFiles/cg_runtime.dir/broadcast.cpp.o"
  "CMakeFiles/cg_runtime.dir/broadcast.cpp.o.d"
  "libcg_runtime.a"
  "libcg_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// End-to-end smoke tests: every algorithm runs, terminates, and reaches
// every node on a failure-free medium-size system.
#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "harness/scenarios.hpp"

namespace cg {
namespace {

RunConfig base_cfg(NodeId n, std::uint64_t seed = 42) {
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP::unit();
  cfg.seed = seed;
  return cfg;
}

TEST(Smoke, GosReachesMostNodes) {
  AlgoConfig acfg;
  acfg.T = 40;
  const RunMetrics m = run_once(Algo::kGos, acfg, base_cfg(256));
  EXPECT_FALSE(m.hit_max_steps);
  EXPECT_GE(m.n_colored, 250);
  EXPECT_GT(m.msgs_total, 0);
}

TEST(Smoke, OcgReachesAll) {
  AlgoConfig acfg;
  acfg.T = 18;
  acfg.ocg_corr_sends = 12;
  const RunMetrics m = run_once(Algo::kOcg, acfg, base_cfg(256));
  EXPECT_FALSE(m.hit_max_steps);
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_EQ(m.n_colored, 256);
}

TEST(Smoke, CcgReachesAllAndCompletes) {
  AlgoConfig acfg;
  acfg.T = 18;
  const RunMetrics m = run_once(Algo::kCcg, acfg, base_cfg(256));
  EXPECT_FALSE(m.hit_max_steps);
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_NE(m.t_complete, kNever);
}

TEST(Smoke, FcgReachesAllAndDelivers) {
  AlgoConfig acfg;
  acfg.T = 18;
  acfg.fcg_f = 1;
  const RunMetrics m = run_once(Algo::kFcg, acfg, base_cfg(256));
  EXPECT_FALSE(m.hit_max_steps);
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_TRUE(m.all_active_delivered);
  EXPECT_FALSE(m.sos_triggered);
  EXPECT_NE(m.t_complete, kNever);
}

TEST(Smoke, BigReachesAll) {
  const RunMetrics m = run_once(Algo::kBig, AlgoConfig{}, base_cfg(256));
  EXPECT_FALSE(m.hit_max_steps);
  EXPECT_TRUE(m.all_active_colored);
}

TEST(Smoke, BfbReachesAllAndAcks) {
  const RunMetrics m = run_once(Algo::kBfb, AlgoConfig{}, base_cfg(256));
  EXPECT_FALSE(m.hit_max_steps);
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_NE(m.t_root_complete, kNever);
}

TEST(Smoke, OptReachesAllAtLowerBound) {
  const RunMetrics m = run_once(Algo::kOpt, AlgoConfig{}, base_cfg(256));
  EXPECT_FALSE(m.hit_max_steps);
  EXPECT_TRUE(m.all_active_colored);
}

TEST(Smoke, ScenarioPipelineRuns) {
  const ScenarioResult r = run_scenario(Algo::kCcg, 128, 0, LogP::unit(), 20,
                                        7, 1e-4, 1, 1);
  EXPECT_EQ(r.agg.trials, 20);
  EXPECT_GT(r.lat_us, 0);
}

}  // namespace
}  // namespace cg

// Parallel engine: thread-count invariance and exact agreement with the
// serial engine for the corrected-gossip protocols; broadcast facade.
#include <gtest/gtest.h>

#include "baselines/big.hpp"
#include "gossip/ccg.hpp"
#include "gossip/gos.hpp"
#include "gossip/fcg.hpp"
#include "gossip/ocg.hpp"
#include "harness/runner.hpp"
#include "runtime/broadcast.hpp"
#include "runtime/parallel_engine.hpp"

namespace cg {
namespace {

RunConfig cfg_n(NodeId n, std::uint64_t seed) {
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP::unit();
  cfg.seed = seed;
  return cfg;
}

void expect_same(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.n_colored, b.n_colored);
  EXPECT_EQ(a.n_delivered, b.n_delivered);
  EXPECT_EQ(a.msgs_total, b.msgs_total);
  EXPECT_EQ(a.msgs_gossip, b.msgs_gossip);
  EXPECT_EQ(a.msgs_correction, b.msgs_correction);
  EXPECT_EQ(a.t_last_colored, b.t_last_colored);
  EXPECT_EQ(a.t_complete, b.t_complete);
  EXPECT_EQ(a.all_active_colored, b.all_active_colored);
}

class ParallelMatchesSerial
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ParallelMatchesSerial, Ccg) {
  const auto [threads, seed] = GetParam();
  CcgNode::Params p;
  p.T = 14;
  Engine<CcgNode> serial(cfg_n(200, seed), p);
  ParallelEngine<CcgNode> par(cfg_n(200, seed), p, threads);
  expect_same(serial.run(), par.run());
}

TEST_P(ParallelMatchesSerial, Ocg) {
  const auto [threads, seed] = GetParam();
  OcgNode::Params p;
  p.T = 14;
  p.corr_sends = 8;
  Engine<OcgNode> serial(cfg_n(200, seed), p);
  ParallelEngine<OcgNode> par(cfg_n(200, seed), p, threads);
  expect_same(serial.run(), par.run());
}

TEST_P(ParallelMatchesSerial, Fcg) {
  const auto [threads, seed] = GetParam();
  FcgNode::Params p;
  p.T = 14;
  p.f = 1;
  Engine<FcgNode> serial(cfg_n(200, seed), p);
  ParallelEngine<FcgNode> par(cfg_n(200, seed), p, threads);
  expect_same(serial.run(), par.run());
}

TEST_P(ParallelMatchesSerial, FcgWithOnlineFailures) {
  const auto [threads, seed] = GetParam();
  RunConfig cfg = cfg_n(200, seed);
  cfg.failures.online.push_back({17, 8});
  cfg.failures.online.push_back({91, 15});
  FcgNode::Params p;
  p.T = 14;
  p.f = 2;
  Engine<FcgNode> serial(cfg, p);
  ParallelEngine<FcgNode> par(cfg, p, threads);
  const RunMetrics a = serial.run();
  const RunMetrics b = par.run();
  expect_same(a, b);
  EXPECT_TRUE(b.all_or_nothing_delivery());
}

TEST_P(ParallelMatchesSerial, Gos) {
  const auto [threads, seed] = GetParam();
  GosNode::Params p;
  p.T = 16;
  Engine<GosNode> serial(cfg_n(200, seed), p);
  ParallelEngine<GosNode> par(cfg_n(200, seed), p, threads);
  expect_same(serial.run(), par.run());
}

TEST_P(ParallelMatchesSerial, Big) {
  const auto [threads, seed] = GetParam();
  Engine<BigNode> serial(cfg_n(200, seed), BigNode::Params{});
  ParallelEngine<BigNode> par(cfg_n(200, seed), BigNode::Params{}, threads);
  expect_same(serial.run(), par.run());
}

INSTANTIATE_TEST_SUITE_P(
    Threads, ParallelMatchesSerial,
    ::testing::Combine(::testing::Values(1, 2, 4, 7),
                       ::testing::Values<std::uint64_t>(3, 11)));

TEST(Broadcast, AllConsistencyLevelsReachEveryone) {
  for (const auto level : {Consistency::kWeak, Consistency::kChecked,
                           Consistency::kFailProof}) {
    BroadcastOptions opts;
    opts.n = 300;
    opts.consistency = level;
    opts.threads = 3;
    const BroadcastReport rep = reliable_broadcast(opts, 5);
    EXPECT_TRUE(rep.reached_all_active);
    EXPECT_EQ(rep.reached, 300);
    EXPECT_GT(rep.latency_us, 0);
    EXPECT_FALSE(rep.summary().empty());
  }
}

TEST(Broadcast, FailProofSurvivesCrashes) {
  BroadcastOptions opts;
  opts.n = 256;
  opts.consistency = Consistency::kFailProof;
  opts.f = 1;
  opts.threads = 2;
  opts.failures.pre_failed = {40, 41, 42};
  opts.failures.online.push_back({100, 25});
  const BroadcastReport rep = reliable_broadcast(opts, 9);
  EXPECT_TRUE(rep.delivered_all_or_nothing);
  EXPECT_TRUE(rep.reached_all_active);
  EXPECT_EQ(rep.active, 252);
}

TEST(Broadcast, WeakLevelUsesOcg) {
  BroadcastOptions opts;
  opts.n = 64;
  opts.consistency = Consistency::kWeak;
  const BroadcastReport rep = reliable_broadcast(opts, 2);
  EXPECT_EQ(rep.algo, Algo::kOcg);
}

}  // namespace
}  // namespace cg

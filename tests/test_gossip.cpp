// GOS (plain gossip) behaviour and the round-based Drezner-Barak reference
// model, including the paper's Section III claims.
#include <gtest/gtest.h>

#include "analysis/coloring.hpp"
#include "gossip/round_gossip.hpp"
#include "gossip/timing.hpp"
#include "harness/runner.hpp"

namespace cg {
namespace {

RunMetrics run_gos(NodeId n, Step T, std::uint64_t seed, Step l_over_o = 1,
                   bool detail = false) {
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP{.l_over_o = l_over_o, .o_us = 1.0};
  cfg.seed = seed;
  cfg.record_node_detail = detail;
  AlgoConfig acfg;
  acfg.T = T;
  return run_once(Algo::kGos, acfg, cfg);
}

TEST(Gos, RootOnlyWhenTZero) {
  const RunMetrics m = run_gos(16, 0, 1);
  EXPECT_EQ(m.n_colored, 1);
  EXPECT_EQ(m.msgs_total, 0);
}

TEST(Gos, DeterministicForSeed) {
  const RunMetrics a = run_gos(128, 20, 99);
  const RunMetrics b = run_gos(128, 20, 99);
  EXPECT_EQ(a.n_colored, b.n_colored);
  EXPECT_EQ(a.msgs_total, b.msgs_total);
  EXPECT_EQ(a.t_last_colored_partial, b.t_last_colored_partial);
}

TEST(Gos, ColoringNeverExceedsGossipWindow) {
  const Step T = 20;
  const RunMetrics m = run_gos(128, T, 5, 1, true);
  const Step last_arrival = gossip_drain_end(T, LogP::unit());
  for (const Step c : m.colored_at) {
    if (c != kNever) {
      EXPECT_LE(c, last_arrival);
    }
  }
}

TEST(Gos, CompletionAtPhaseEnd) {
  const Step T = 20;
  const RunMetrics m = run_gos(128, T, 5);
  // All colored nodes complete promptly once the drain window closes.
  EXPECT_NE(m.t_complete, kNever);
  EXPECT_GE(m.t_complete, gossip_drain_end(T, LogP::unit()));
  EXPECT_LE(m.t_complete, gossip_drain_end(T, LogP::unit()) + 1);
}

TEST(Gos, WorkEqualsSumOfEmissionWindows) {
  // Every colored node emits once per step from coloring+1 to T-1, so the
  // message count is exactly sum over colored nodes of max(0, T-1-c).
  const Step T = 18;
  const RunMetrics m = run_gos(64, T, 11, 1, true);
  std::int64_t expected = 0;
  for (const Step c : m.colored_at)
    if (c != kNever && c < T - 1) expected += (T - 1) - c;
  EXPECT_EQ(m.msgs_total, expected);
}

TEST(Gos, MoreGossipTimeColorsMoreNodes) {
  double short_run = 0, long_run = 0;
  for (int s = 0; s < 30; ++s) {
    short_run += run_gos(256, 10, 100 + s).n_colored;
    long_run += run_gos(256, 20, 100 + s).n_colored;
  }
  EXPECT_GT(long_run, short_run);
}

TEST(Gos, MatchesAnalyticExpectationAtScale) {
  // Mean colored count over seeds ~ c(T+L+O) from Eq. (1).
  const NodeId n = 512;
  const Step T = 16;
  double sum = 0;
  const int trials = 60;
  for (int s = 0; s < trials; ++s) sum += run_gos(n, T, 400 + s).n_colored;
  const double pred = colored_at_corr_start(n, n, T, LogP::unit());
  EXPECT_NEAR(sum / trials, pred, 0.05 * pred);
}

TEST(Gos, PreFailedNodesNeverColored) {
  RunConfig cfg;
  cfg.n = 64;
  cfg.logp = LogP::unit();
  cfg.seed = 17;
  cfg.failures.pre_failed = {5, 6, 7};
  cfg.record_node_detail = true;
  AlgoConfig acfg;
  acfg.T = 30;
  const RunMetrics m = run_once(Algo::kGos, acfg, cfg);
  EXPECT_EQ(m.n_active, 61);
  for (const NodeId dead : {5, 6, 7})
    EXPECT_EQ(m.colored_at[static_cast<std::size_t>(dead)], kNever);
}

// ------------------------------------------------------ round gossip --

TEST(RoundGossip, OneRoundColorsTwo) {
  Xoshiro256 rng(1);
  EXPECT_EQ(round_gossip(100, 1, rng).informed, 2);
}

TEST(RoundGossip, ZeroRoundsRootOnly) {
  Xoshiro256 rng(1);
  EXPECT_EQ(round_gossip(100, 0, rng).informed, 1);
}

TEST(RoundGossip, SingleNode) {
  Xoshiro256 rng(1);
  EXPECT_EQ(round_gossip(1, 5, rng).informed, 1);
}

TEST(RoundGossip, DreznerBarakRoundCount) {
  EXPECT_EQ(drezner_barak_rounds(1000), 17);  // 1.639*log2(1000) = 16.3
  EXPECT_EQ(drezner_barak_rounds(1024), 17);
}

TEST(RoundGossip, PaperClaim951PercentIncompleteness) {
  // Section III: "for N=1,000 and T=17, the gossip colors all the nodes
  // only 95.1% of the time", i.e., T = 1.639*log2(N) rounds are NOT
  // enough for certainty.  Our synchronous-round convention is ~2-3
  // rounds slower than Drezner-Barak's unsynchronized model (a node
  // informed in round t first sends in round t+1), so the qualitative
  // claim is: success is far below 100% at T=17 and >= 95% a few rounds
  // later (see EXPERIMENTS.md).
  Xoshiro256 rng(2024);
  const int trials = 1500;
  int full17 = 0, full21 = 0;
  for (int t = 0; t < trials; ++t) {
    if (round_gossip(1000, 17, rng).informed == 1000) ++full17;
    if (round_gossip(1000, 21, rng).informed == 1000) ++full21;
  }
  const double rate17 = static_cast<double>(full17) / trials;
  const double rate21 = static_cast<double>(full21) / trials;
  EXPECT_GT(rate17, 0.15);  // substantial but
  EXPECT_LT(rate17, 0.99);  // clearly not certain
  EXPECT_GT(rate21, 0.95);  // a few extra rounds give high confidence
}

TEST(RoundGossip, GrowthIsInitiallyExponential) {
  Xoshiro256 rng(7);
  double sum = 0;
  for (int t = 0; t < 50; ++t) sum += round_gossip(100000, 8, rng).informed;
  // After 8 rounds, between 2^... doubling minus collisions: ~150-256.
  EXPECT_GT(sum / 50, 120);
  EXPECT_LE(sum / 50, 256);
}

}  // namespace
}  // namespace cg

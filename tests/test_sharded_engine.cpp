// Shard-invariance and substrate tests for the window-sharded engine
// (sim/sharded_engine.hpp).  The engine's contract is stronger than the
// cross-engine metric parity pinned in test_engine_parity.cpp: for ANY
// shard count the run must be bit-identical - same canonical trace bytes,
// same serialized metrics, same t_end - because shards only exchange
// messages at delivery-window boundaries in canonical (sent_at, sender)
// order and every RNG stream is owned by exactly one node or sender.
//
// These tests carry the ctest label `sanitize`, so the tsan preset runs
// the multi-shard executions under ThreadSanitizer.
#include <gtest/gtest.h>

#include <array>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "gossip/gos.hpp"
#include "harness/runner.hpp"
#include "obs/report.hpp"
#include "obs/trace_sinks.hpp"
#include "sim/core/bitset.hpp"
#include "sim/core/inbox.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/trace.hpp"

namespace cg {
namespace {

AlgoConfig algo_cfg(Algo algo) {
  AlgoConfig acfg;
  acfg.T = 24;
  acfg.drain_extra = 2;
  if (algo == Algo::kOcg) acfg.ocg_corr_sends = 10;
  if (algo == Algo::kFcg) acfg.fcg_f = 2;
  return acfg;
}

struct ShardRun {
  std::string trace_jsonl;  ///< canonically sorted JSONL trace
  std::string metrics_json; ///< obs::to_json of the RunMetrics
  Step t_end = 0;
};

ShardRun run_sharded(Algo algo, const AlgoConfig& acfg, const RunConfig& base,
                     int shards) {
  VectorTrace trace;
  RunConfig cfg = base;
  cfg.trace = &trace;
  cfg.record_node_detail = true;
  const RunMetrics m = run_once(algo, acfg, cfg, {EngineKind::kSharded, shards});
  std::vector<TraceEvent> events = trace.events();
  obs::canonical_sort(events);
  return {obs::to_jsonl(events), obs::to_json(m), m.t_end};
}

// ~100-seed randomized sweep: a fresh full fault stack per seed (jitter,
// i.i.d. + burst loss, pre/online failures, crash-restarts, stragglers,
// partitions, reliable sublayer, both rx policies, all four protocols).
// The canonical trace AND the serialized report metrics must be
// BYTE-IDENTICAL across shard counts {1, 2, 8}.
TEST(ShardedEngine, ShardCountInvarianceUnderFaultStacks) {
  constexpr int kSeeds = 100;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    std::mt19937_64 gen(0xD1B54A32D192ED03ull * static_cast<unsigned>(seed));
    auto pick = [&](int lo, int hi) {  // inclusive
      return lo + static_cast<int>(gen() % static_cast<unsigned>(hi - lo + 1));
    };

    RunConfig cfg;
    cfg.n = pick(40, 160);
    cfg.logp = (pick(0, 1) != 0) ? LogP::piz_daint() : LogP::unit();
    cfg.seed = static_cast<std::uint64_t>(seed) * 6151u;
    cfg.rx = (pick(0, 1) != 0) ? RxPolicy::kOnePerStep : RxPolicy::kDrainAll;
    cfg.jitter_max = pick(0, 2);
    cfg.drop_prob = 0.01 * pick(0, 3);
    if (pick(0, 1) != 0)
      cfg.burst = BurstLoss::from_rate(0.01 * pick(2, 6), pick(2, 5));
    auto fresh_node = [&](std::set<NodeId>& used) {
      for (;;) {
        const auto i = static_cast<NodeId>(pick(1, cfg.n - 1));
        if (used.insert(i).second) return i;
      }
    };
    std::set<NodeId> failed, straggling, partitioned;
    for (int k = pick(0, 2); k > 0; --k)
      cfg.failures.pre_failed.push_back(fresh_node(failed));
    for (int k = pick(0, 2); k > 0; --k)
      cfg.failures.online.push_back(
          {fresh_node(failed), static_cast<Step>(pick(3, 50))});
    if (pick(0, 1) != 0) {
      const Step down = static_cast<Step>(pick(5, 35));
      cfg.failures.restarts.push_back(
          {fresh_node(failed), down, down + static_cast<Step>(pick(1, 10))});
    }
    for (int k = pick(0, 2); k > 0; --k)
      cfg.stragglers.push_back(
          {fresh_node(straggling), static_cast<Step>(pick(2, 4))});
    if (pick(0, 1) != 0) {
      PartitionWindow pw;
      pw.from = static_cast<Step>(pick(2, 18));
      pw.until = pw.from + static_cast<Step>(pick(2, 12));
      for (int k = pick(1, 4); k > 0; --k)
        pw.members.push_back(fresh_node(partitioned));
      cfg.partitions.push_back(pw);
    }

    const Algo algo =
        std::array{Algo::kGos, Algo::kOcg, Algo::kCcg, Algo::kFcg}[
            static_cast<std::size_t>(pick(0, 3))];
    AlgoConfig acfg = algo_cfg(algo);
    acfg.reliable.enabled = pick(0, 1) != 0;

    SCOPED_TRACE("seed=" + std::to_string(seed) + " algo=" +
                 std::string(algo_name(algo)) + " n=" + std::to_string(cfg.n));
    const ShardRun one = run_sharded(algo, acfg, cfg, 1);
    ASSERT_FALSE(one.trace_jsonl.empty());
    for (const int shards : {2, 8}) {
      const ShardRun multi = run_sharded(algo, acfg, cfg, shards);
      ASSERT_EQ(one.trace_jsonl, multi.trace_jsonl) << shards << " shards";
      ASSERT_EQ(one.metrics_json, multi.metrics_json) << shards << " shards";
    }
  }
}

// The sharded engine agrees with the stepped reference INCLUDING t_end
// (test_engine_parity.cpp excludes t_end because the async engine reports
// quiescence off-by-scheduling; the sharded engine reconstructs the
// stepped engine's exit step exactly).
TEST(ShardedEngine, MatchesSteppedIncludingExitStep) {
  for (const auto rx : {RxPolicy::kDrainAll, RxPolicy::kOnePerStep}) {
    RunConfig cfg;
    cfg.n = 160;
    cfg.logp = LogP::piz_daint();
    cfg.seed = 31;
    cfg.rx = rx;
    cfg.jitter_max = 2;
    cfg.drop_prob = 0.02;
    cfg.failures.pre_failed = {3};
    cfg.failures.online.push_back({25, 7});
    cfg.failures.restarts.push_back({9, 12, 30});
    cfg.record_node_detail = true;
    const AlgoConfig acfg = algo_cfg(Algo::kCcg);
    const RunMetrics stepped =
        run_once(Algo::kCcg, acfg, cfg, {EngineKind::kStepped, 1});
    for (const int shards : {1, 2, 8}) {
      const RunMetrics sh =
          run_once(Algo::kCcg, acfg, cfg, {EngineKind::kSharded, shards});
      SCOPED_TRACE(shards);
      EXPECT_EQ(obs::to_json(stepped), obs::to_json(sh));
      EXPECT_EQ(stepped.t_end, sh.t_end);
    }
  }
}

// Substrate invariants from the engine profile: per-shard stats reconcile
// with the totals, every window is accounted, and the memory plan reports
// a positive per-node footprint.
TEST(ShardedEngine, ProfileSubstrateInvariants) {
  RunConfig cfg;
  cfg.n = 512;
  cfg.logp = LogP::piz_daint();
  cfg.seed = 5;
  EngineProfile prof;
  cfg.profile = &prof;
  const AlgoConfig acfg = algo_cfg(Algo::kCcg);
  const RunMetrics m =
      run_once(Algo::kCcg, acfg, cfg, {EngineKind::kSharded, 4});
  EXPECT_TRUE(m.all_active_colored);

  EXPECT_EQ(prof.shards, 4);
  EXPECT_EQ(prof.shard_stats.size(), 4u);
  EXPECT_GT(prof.windows, 0);
  EXPECT_EQ(prof.steps, m.t_end);
  std::int64_t fired = 0, boundary = 0, stalls = 0;
  for (const auto& s : prof.shard_stats) {
    fired += s.events_fired;
    boundary += s.boundary_msgs;
    stalls += s.window_stalls;
  }
  EXPECT_EQ(fired, prof.events_fired);
  EXPECT_EQ(boundary, prof.boundary_msgs);
  EXPECT_EQ(stalls, prof.window_stalls);
  EXPECT_GT(prof.boundary_msgs, 0);  // gossip targets are uniform: must cross
  // Calendar ledger balances on a drained run.
  EXPECT_EQ(prof.events_fired, prof.events_scheduled);
  EXPECT_GT(prof.bytes_per_node, 0);
  EXPECT_LT(prof.bytes_per_node, 10000);
  EXPECT_GT(prof.peak_rss_bytes, 0);
}

// Degenerate and truncation edges: tiny rings, a non-zero root, and a
// max_steps cut must behave identically for any shard count (the block
// partition clamps empty shards away).
TEST(ShardedEngine, EdgeCases) {
  const AlgoConfig acfg = algo_cfg(Algo::kCcg);
  for (const NodeId n : {1, 2, 5}) {
    RunConfig cfg;
    cfg.n = n;
    cfg.seed = 3;
    const RunMetrics stepped =
        run_once(Algo::kCcg, acfg, cfg, {EngineKind::kStepped, 1});
    for (const int shards : {1, 8}) {
      const RunMetrics sh =
          run_once(Algo::kCcg, acfg, cfg, {EngineKind::kSharded, shards});
      SCOPED_TRACE(std::to_string(n) + " nodes");
      EXPECT_EQ(obs::to_json(stepped), obs::to_json(sh));
    }
  }
  {
    RunConfig cfg;
    cfg.n = 96;
    cfg.seed = 11;
    cfg.root = 63;
    cfg.max_steps = 7;  // cut mid-gossip
    const RunMetrics stepped =
        run_once(Algo::kCcg, acfg, cfg, {EngineKind::kStepped, 1});
    EXPECT_TRUE(stepped.hit_max_steps);
    for (const int shards : {1, 2, 8}) {
      const RunMetrics sh =
          run_once(Algo::kCcg, acfg, cfg, {EngineKind::kSharded, shards});
      SCOPED_TRACE(shards);
      EXPECT_EQ(obs::to_json(stepped), obs::to_json(sh));
    }
  }
}

// Direct-construction path (bypassing the runner): the template is usable
// with any Node type and reports through RunConfig::profile.
TEST(ShardedEngine, DirectConstruction) {
  RunConfig cfg;
  cfg.n = 256;
  cfg.seed = 17;
  EngineProfile prof;
  cfg.profile = &prof;
  GosNode::Params p;
  p.T = 20;
  ShardedEngine<GosNode> eng(cfg, p, 2);
  const RunMetrics m = eng.run();
  EXPECT_GT(m.n_colored, 0);
  EXPECT_EQ(prof.shards, 2);
  EXPECT_GT(prof.callbacks_tick, 0);
}

// --- SoA substrate units ---------------------------------------------------

TEST(PackedBits, SetTestClearAndWordBoundaries) {
  PackedBits b;
  b.reset(200);
  for (const NodeId i : {0, 1, 63, 64, 65, 127, 128, 199}) {
    EXPECT_FALSE(b.test(i));
    b.set(i);
    EXPECT_TRUE(b.test(i));
  }
  b.clear(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(65));

  std::vector<NodeId> seen;
  b.for_each_set(0, 200, [&](NodeId i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<NodeId>{0, 1, 63, 65, 127, 128, 199}));

  // Sub-range sweeps respect [lo, hi) across word boundaries.
  seen.clear();
  b.for_each_set(63, 128, [&](NodeId i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<NodeId>{63, 65, 127}));
  EXPECT_FALSE(b.none_in(63, 128));
  EXPECT_TRUE(b.none_in(66, 127));

  seen.clear();
  b.for_each_set(100, 100, [&](NodeId i) { seen.push_back(i); });
  EXPECT_TRUE(seen.empty());
}

TEST(InboxSlab, FifoPerNodeAcrossSharedArena) {
  InboxSlab slab;
  slab.reset(3);
  Message m;
  m.tag = Tag::kGossip;
  for (int k = 0; k < 5; ++k) {
    m.time = k;
    slab.push(0, m);
    m.time = 10 + k;
    slab.push(2, m);
  }
  EXPECT_TRUE(slab.empty(1));
  for (int k = 0; k < 5; ++k) {
    ASSERT_FALSE(slab.empty(0));
    EXPECT_EQ(slab.front(0).time, k);
    slab.pop(0);
    ASSERT_FALSE(slab.empty(2));
    EXPECT_EQ(slab.front(2).time, 10 + k);
    slab.pop(2);
  }
  EXPECT_TRUE(slab.empty(0));
  EXPECT_TRUE(slab.empty(2));
  EXPECT_GT(slab.footprint_bytes(), 0u);
}

}  // namespace
}  // namespace cg

// Expected-work models (analysis/work_model.hpp) validated against
// simulation for every gossip-family algorithm.
#include <gtest/gtest.h>

#include "analysis/tuning.hpp"
#include "analysis/work_model.hpp"
#include "harness/experiment.hpp"

namespace cg {
namespace {

TrialAggregate sim(Algo algo, NodeId n, Step T, const LogP& logp, int f = 1,
                   Step ocg_sends = 0, int trials = 40) {
  TrialSpec spec;
  spec.algo = algo;
  spec.acfg.T = T;
  spec.acfg.ocg_corr_sends = ocg_sends;
  spec.acfg.fcg_f = f;
  spec.n = n;
  spec.logp = logp;
  spec.seed = 1234;
  spec.trials = trials;
  return run_trials(spec);
}

TEST(WorkModel, GossipWorkMatchesSimulation) {
  for (const NodeId n : {256, 1024}) {
    for (const Step T : {15, 25, 40}) {
      const TrialAggregate agg = sim(Algo::kGos, n, T, LogP::unit());
      const double pred = expected_gossip_work(n, n, T, LogP::unit());
      EXPECT_NEAR(agg.work.mean(), pred, 0.03 * pred + 5.0)
          << "n=" << n << " T=" << T;
    }
  }
}

TEST(WorkModel, GossipWorkMatchesPaperTable7) {
  // GOS at N=4096, T=51, L=2, O=1: the paper reports 95,418 messages.
  const double pred = expected_gossip_work(4096, 4096, 51, LogP::piz_daint());
  EXPECT_NEAR(pred, 95418.0, 0.01 * 95418.0);
}

TEST(WorkModel, OcgCorrectionWork) {
  const NodeId n = 1024;
  const Step T = 24;
  const Step sends = 6;
  const TrialAggregate agg = sim(Algo::kOcg, n, T, LogP::unit(), 1, sends);
  const double pred = expected_ocg_corr_work(n, n, T, LogP::unit(), sends);
  EXPECT_NEAR(agg.work_correction.mean(), pred, 0.03 * pred);
}

TEST(WorkModel, CcgCorrectionWorkWithinSlackBand) {
  const NodeId n = 1024;
  const Step T = 26;
  const TrialAggregate agg = sim(Algo::kCcg, n, T, LogP::piz_daint());
  const double lo = expected_ccg_corr_work(n, n, T, LogP::piz_daint(), 0.0);
  const double hi = expected_ccg_corr_work(n, n, T, LogP::piz_daint(), 1.0);
  EXPECT_GE(agg.work_correction.mean(), lo * 0.95);
  EXPECT_LE(agg.work_correction.mean(), hi * 1.05);
}

TEST(WorkModel, FcgCorrectionWorkIsFourFPlusOneN) {
  // The exact identity: sweeps to the (f+1)-th g-node plus a finalization
  // re-sweep cover 4(f+1)N emissions for dense colorings.
  for (const int f : {1, 2}) {
    const NodeId n = 1024;
    const Step T = 30;  // dense coloring
    const TrialAggregate agg = sim(Algo::kFcg, n, T, LogP::piz_daint(), f);
    const double pred = expected_fcg_corr_work(n, f);
    EXPECT_NEAR(agg.work_correction.mean(), pred, 0.02 * pred) << "f=" << f;
  }
}

TEST(WorkModel, TotalsCompose) {
  const NodeId n = 512;
  const Step T = 22;
  const LogP pd = LogP::piz_daint();
  const TrialAggregate ccg = sim(Algo::kCcg, n, T, pd);
  EXPECT_NEAR(ccg.work.mean(), expected_ccg_work(n, n, T, pd),
              0.08 * ccg.work.mean());
  const TrialAggregate fcg = sim(Algo::kFcg, n, T, pd, 1);
  EXPECT_NEAR(fcg.work.mean(), expected_fcg_work(n, n, T, pd, 1),
              0.08 * fcg.work.mean());
}

TEST(WorkModel, PreFailuresReduceWork) {
  const double full = expected_ccg_work(1024, 1024, 24, LogP::unit());
  const double reduced = expected_ccg_work(1024, 960, 24, LogP::unit());
  EXPECT_LT(reduced, full);
}

}  // namespace
}  // namespace cg

// OCG correctness: sweep coverage, c-node passivity, phase timing, work
// accounting, and reach-all behaviour vs the tuned correction length.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/tuning.hpp"
#include "gossip/ocg.hpp"
#include "gossip/timing.hpp"
#include "harness/runner.hpp"

namespace cg {
namespace {

std::shared_ptr<std::vector<std::uint8_t>> bitmap(NodeId n,
                                                  std::vector<NodeId> set) {
  auto bm = std::make_shared<std::vector<std::uint8_t>>(n, 0);
  for (const NodeId i : set) (*bm)[static_cast<std::size_t>(i)] = 1;
  return bm;
}

RunMetrics run_seeded_ocg(NodeId n, std::vector<NodeId> g_set,
                          Step corr_sends, bool detail = false) {
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP::unit();
  cfg.seed = 1;
  cfg.record_node_detail = detail;
  OcgNode::Params p;
  p.T = 0;  // no gossip: correction starts from the seeded g-set
  p.corr_sends = corr_sends;
  p.seed_colored = bitmap(n, std::move(g_set));
  Engine<OcgNode> eng(cfg, p);
  return eng.run();
}

TEST(Ocg, CorrectionCoversGapOfK) {
  // g-nodes at 0 and 5 on a 10-ring: gaps of 4 (1..4 and 6..9).  The two
  // ends cover a gap of length K together in ~K sends.
  const RunMetrics m = run_seeded_ocg(10, {5}, 5);
  EXPECT_TRUE(m.all_active_colored);
}

TEST(Ocg, TooShortSweepMissesNodes) {
  // Lone root on a 32-ring with only 2 correction sends: covers +1 and -1.
  const RunMetrics m = run_seeded_ocg(32, {}, 2, true);
  EXPECT_FALSE(m.all_active_colored);
  EXPECT_EQ(m.n_colored, 3);  // root, root+1, root-1
  EXPECT_NE(m.colored_at[1], kNever);
  EXPECT_NE(m.colored_at[31], kNever);
  EXPECT_EQ(m.colored_at[2], kNever);
}

TEST(Ocg, LoneRootFullSweepColorsEveryone) {
  // 2(N-1) sends walk the whole ring from the root alone.
  const RunMetrics m = run_seeded_ocg(16, {}, 2 * 15, true);
  EXPECT_TRUE(m.all_active_colored);
}

TEST(Ocg, CNodesNeverSend) {
  // Seeded g-node at 8 on a 16-ring; every node colored during correction
  // is a c-node and must not emit: work = 2 * corr_sends (two g-nodes:
  // root + 8) exactly, no gossip.
  const Step sends = 6;
  const RunMetrics m = run_seeded_ocg(16, {8}, sends);
  EXPECT_EQ(m.msgs_gossip, 0);
  EXPECT_EQ(m.msgs_correction, 2 * sends);
}

TEST(Ocg, AlternatingSweepPattern) {
  // With a trace, root's correction targets are +1,-1,+2,-2,...
  RunConfig cfg;
  cfg.n = 12;
  cfg.logp = LogP::unit();
  cfg.seed = 1;
  VectorTrace trace;
  cfg.trace = &trace;
  OcgNode::Params p;
  p.T = 0;
  p.corr_sends = 6;
  Engine<OcgNode> eng(cfg, p);
  eng.run();
  std::vector<NodeId> targets;
  for (const auto& ev : trace.events())
    if (ev.kind == TraceEvent::Kind::kSend && ev.node == 0 &&
        ev.tag == Tag::kOcgCorr)
      targets.push_back(ev.peer);
  EXPECT_EQ(targets, (std::vector<NodeId>{1, 11, 2, 10, 3, 9}));
}

TEST(Ocg, CorrectionStartsAtDocumentedStep) {
  RunConfig cfg;
  cfg.n = 8;
  cfg.logp = LogP{.l_over_o = 2, .o_us = 1.0};
  cfg.seed = 1;
  VectorTrace trace;
  cfg.trace = &trace;
  OcgNode::Params p;
  p.T = 5;
  p.corr_sends = 3;
  Engine<OcgNode> eng(cfg, p);
  eng.run();
  Step first_corr = kNever;
  for (const auto& ev : trace.events())
    if (ev.kind == TraceEvent::Kind::kSend && ev.tag == Tag::kOcgCorr)
      first_corr = std::min(first_corr, ev.step);
  EXPECT_EQ(first_corr, corr_start(5, cfg.logp));  // T + L/O + 1
}

TEST(Ocg, GNodeCountMatchesColoredBeforeCorrection) {
  RunConfig cfg;
  cfg.n = 64;
  cfg.logp = LogP::unit();
  cfg.seed = 77;
  AlgoConfig acfg;
  acfg.T = 12;
  acfg.ocg_corr_sends = 40;
  const RunMetrics m = run_once(Algo::kOcg, acfg, cfg);
  EXPECT_TRUE(m.all_active_colored);
  // Work decomposes into gossip + correction; correction work is
  // (#g-nodes) * corr_sends minus self-skips (none for corr_sends < N/2).
  EXPECT_EQ(m.msgs_correction % 40, 0);
  const std::int64_t g_nodes = m.msgs_correction / 40;
  EXPECT_GT(g_nodes, 1);
  EXPECT_LE(g_nodes, 64);
}

class OcgTunedSweep
    : public ::testing::TestWithParam<std::tuple<NodeId, std::uint64_t>> {};

TEST_P(OcgTunedSweep, TunedParametersReachEveryoneAndMeetTheBound) {
  const auto [n, seed] = GetParam();
  const double eps = 1e-3;  // loose budget so 20 trials are meaningful
  const Tuning t = tune_ocg(n, n, LogP::unit(), eps);
  AlgoConfig acfg;
  acfg.T = t.T_opt + 1;
  acfg.ocg_corr_sends = k_bar_for(n, n, acfg.T, LogP::unit(), eps) + 1;
  int reached = 0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = LogP::unit();
    cfg.seed = seed * 1000 + static_cast<std::uint64_t>(i);
    const RunMetrics m = run_once(Algo::kOcg, acfg, cfg);
    if (m.all_active_colored) ++reached;
    EXPECT_FALSE(m.hit_max_steps);
    // Completion bounded by the schedule end + final flight.
    OcgNode::Params params;
    params.T = acfg.T;
    params.corr_sends = acfg.ocg_corr_sends;
    const Step sched_end = OcgNode::corr_end(params, LogP::unit());
    EXPECT_LE(m.t_complete, sched_end + LogP::unit().delivery_delay());
  }
  // eps=1e-3: all 20 trials reaching everyone is overwhelmingly likely.
  EXPECT_EQ(reached, trials);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, OcgTunedSweep,
    ::testing::Combine(::testing::Values<NodeId>(32, 128, 512, 1024),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

}  // namespace
}  // namespace cg

// Engine-mechanics tests using purpose-built probe protocols: delivery
// timing, activation rules, failure handling, rx policies, termination,
// and trace recording.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace cg {
namespace {

/// Root sends one gossip message to node `target` on its first tick;
/// every node records when callbacks fire.
struct ProbeNode {
  struct Params {
    NodeId target = 1;
    std::shared_ptr<std::vector<Step>> recv_at;  // per node
    std::shared_ptr<std::vector<Step>> first_tick_at;
  };

  ProbeNode(const Params& p, NodeId self, NodeId) : p_(p), self_(self) {}

  template <class Ctx>
  void on_start(Ctx& ctx) {
    if (ctx.is_root()) ctx.mark_colored();
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message&) {
    (*p_.recv_at)[static_cast<std::size_t>(self_)] = ctx.now();
    ctx.mark_colored();
  }

  template <class Ctx>
  void on_tick(Ctx& ctx) {
    auto& first = (*p_.first_tick_at)[static_cast<std::size_t>(self_)];
    if (first == kNever) first = ctx.now();
    if (ctx.is_root() && !sent_) {
      sent_ = true;
      Message m;
      m.tag = Tag::kGossip;
      ctx.send(p_.target, m);
      return;
    }
    ctx.complete();
  }

  Params p_;
  NodeId self_;
  bool sent_ = false;
};

ProbeNode::Params make_probe(NodeId n, NodeId target = 1) {
  ProbeNode::Params p;
  p.target = target;
  p.recv_at = std::make_shared<std::vector<Step>>(n, kNever);
  p.first_tick_at = std::make_shared<std::vector<Step>>(n, kNever);
  return p;
}

RunConfig cfg_n(NodeId n, Step l_over_o = 1) {
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP{.l_over_o = l_over_o, .o_us = 1.0};
  cfg.seed = 3;
  return cfg;
}

TEST(Engine, DeliveryDelayIsLOverOPlusOne) {
  for (const Step lo : {0, 1, 2, 5}) {
    auto params = make_probe(4);
    Engine<ProbeNode> eng(cfg_n(4, lo), params);
    eng.run();
    // Root's first tick is step 1 (activated at 0); message emitted at 1.
    EXPECT_EQ((*params.first_tick_at)[0], 1);
    EXPECT_EQ((*params.recv_at)[1], 1 + lo + 1) << "l_over_o=" << lo;
  }
}

TEST(Engine, ReceiverFirstTickIsAfterReceiveStep) {
  auto params = make_probe(4);
  Engine<ProbeNode> eng(cfg_n(4), params);
  eng.run();
  // Node 1 received at step 3 (L/O=1); its receive occupies that step, so
  // its first tick is step 4.
  EXPECT_EQ((*params.recv_at)[1], 3);
  EXPECT_EQ((*params.first_tick_at)[1], 4);
}

TEST(Engine, IdleNodesNeverTick) {
  auto params = make_probe(4);
  Engine<ProbeNode> eng(cfg_n(4), params);
  eng.run();
  EXPECT_EQ((*params.first_tick_at)[2], kNever);
  EXPECT_EQ((*params.first_tick_at)[3], kNever);
}

TEST(Engine, MessagesToFailedNodesAreDropped) {
  auto params = make_probe(4, 2);
  RunConfig cfg = cfg_n(4);
  cfg.failures.online.push_back({2, 2});  // dies before arrival at step 3
  Engine<ProbeNode> eng(cfg, params);
  const RunMetrics m = eng.run();
  EXPECT_EQ((*params.recv_at)[2], kNever);
  EXPECT_EQ(m.n_active, 3);
  EXPECT_EQ(m.msgs_total, 1);
  EXPECT_FALSE(m.hit_max_steps);
}

TEST(Engine, PreFailedNodesAreInactive) {
  auto params = make_probe(4, 2);
  RunConfig cfg = cfg_n(4);
  cfg.failures.pre_failed = {2, 3};
  Engine<ProbeNode> eng(cfg, params);
  const RunMetrics m = eng.run();
  EXPECT_EQ(m.n_active, 2);
  EXPECT_EQ((*params.recv_at)[2], kNever);
}

TEST(Engine, MetricsCountMessagesByTag) {
  auto params = make_probe(4);
  Engine<ProbeNode> eng(cfg_n(4), params);
  const RunMetrics m = eng.run();
  EXPECT_EQ(m.msgs_total, 1);
  EXPECT_EQ(m.msgs_gossip, 1);
  EXPECT_EQ(m.msgs_correction, 0);
  EXPECT_EQ(m.msgs_sos, 0);
}

TEST(Engine, ColoredAndCompletionTimesRecorded) {
  auto params = make_probe(4);
  RunConfig cfg = cfg_n(4);
  cfg.record_node_detail = true;
  Engine<ProbeNode> eng(cfg, params);
  const RunMetrics m = eng.run();
  ASSERT_EQ(m.colored_at.size(), 4u);
  EXPECT_EQ(m.colored_at[0], 0);  // root at step 0
  EXPECT_EQ(m.colored_at[1], 3);
  EXPECT_EQ(m.colored_at[2], kNever);
  EXPECT_EQ(m.t_last_colored_partial, 3);
  // Not all nodes colored -> strict t_last_colored undefined.
  EXPECT_EQ(m.t_last_colored, kNever);
  EXPECT_FALSE(m.all_active_colored);
}

TEST(Engine, TraceRecordsSendDeliverColor) {
  auto params = make_probe(3);
  VectorTrace trace;
  RunConfig cfg = cfg_n(3);
  cfg.trace = &trace;
  Engine<ProbeNode> eng(cfg, params);
  eng.run();
  bool saw_send = false, saw_deliver = false, saw_colored = false;
  for (const auto& ev : trace.events()) {
    if (ev.kind == TraceEvent::Kind::kSend && ev.node == 0 && ev.peer == 1 &&
        ev.step == 1)
      saw_send = true;
    if (ev.kind == TraceEvent::Kind::kDeliver && ev.node == 1 && ev.step == 3)
      saw_deliver = true;
    if (ev.kind == TraceEvent::Kind::kColored && ev.node == 1)
      saw_colored = true;
  }
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_deliver);
  EXPECT_TRUE(saw_colored);
  EXPECT_FALSE(trace.to_string().empty());
}

/// Spams `count` messages from root to node 1, one per tick, to observe the
/// rx policy.
struct SpamNode {
  struct Params {
    int count = 3;
    std::shared_ptr<std::vector<Step>> recv_steps;  // appended at node 1
  };
  SpamNode(const Params& p, NodeId self, NodeId) : p_(p), self_(self) {}
  template <class Ctx>
  void on_start(Ctx& ctx) {
    if (ctx.is_root()) ctx.mark_colored();
  }
  template <class Ctx>
  void on_receive(Ctx& ctx, const Message&) {
    p_.recv_steps->push_back(ctx.now());
    ctx.mark_colored();
    ++received_;
  }
  template <class Ctx>
  void on_tick(Ctx& ctx) {
    if (ctx.is_root()) {
      if (sent_ < p_.count) {
        Message m;
        m.tag = Tag::kGossip;
        ctx.send(1, m);
        ++sent_;
        return;
      }
      ctx.complete();
      return;
    }
    if (received_ >= p_.count) ctx.complete();  // stay alive for the burst
  }
  Params p_;
  NodeId self_;
  int sent_ = 0;
  int received_ = 0;
};

TEST(Engine, DrainAllDeliversBackToBackArrivalsSameStep) {
  SpamNode::Params p;
  p.count = 3;
  p.recv_steps = std::make_shared<std::vector<Step>>();
  RunConfig cfg = cfg_n(2);
  cfg.rx = RxPolicy::kDrainAll;
  Engine<SpamNode> eng(cfg, p);
  eng.run();
  // Emissions at steps 1,2,3 -> arrivals at 3,4,5 (one per step here since
  // the sender is rate-limited; each processed at its arrival step).
  EXPECT_EQ(*p.recv_steps, (std::vector<Step>{3, 4, 5}));
}

/// Two senders target node 2 in the same step (rx-policy probe).
struct TwinSpam {
  struct Params {
    std::shared_ptr<std::vector<Step>> recv_steps;
  };
  TwinSpam(const Params& p, NodeId self, NodeId) : p_(p), self_(self) {}
  template <class Ctx>
  void on_start(Ctx& ctx) {
    if (self_ == 0 || self_ == 1) {
      ctx.activate();
      ctx.mark_colored();
    }
  }
  template <class Ctx>
  void on_receive(Ctx& ctx, const Message&) {
    p_.recv_steps->push_back(ctx.now());
    ctx.mark_colored();
  }
  template <class Ctx>
  void on_tick(Ctx& ctx) {
    if ((self_ == 0 || self_ == 1) && !sent_) {
      sent_ = true;
      Message m;
      m.tag = Tag::kGossip;
      ctx.send(2, m);
      return;
    }
    ctx.complete();
  }
  Params p_;
  NodeId self_;
  bool sent_ = false;
};

TEST(Engine, OnePerStepSerializesBurstArrivals) {
  // kOnePerStep must process the second same-step arrival one step later.
  for (const auto policy : {RxPolicy::kDrainAll, RxPolicy::kOnePerStep}) {
    typename TwinSpam::Params p;
    p.recv_steps = std::make_shared<std::vector<Step>>();
    RunConfig cfg = cfg_n(3);
    cfg.rx = policy;
    Engine<TwinSpam> eng(cfg, p);
    eng.run();
    ASSERT_EQ(p.recv_steps->size(), 2u);
    if (policy == RxPolicy::kDrainAll) {
      EXPECT_EQ((*p.recv_steps)[0], 3);
      EXPECT_EQ((*p.recv_steps)[1], 3);
    } else {
      EXPECT_EQ((*p.recv_steps)[0], 3);
      EXPECT_EQ((*p.recv_steps)[1], 4);  // deferred by receive overhead
    }
  }
}

/// A protocol that never completes (max_steps probe).
struct Forever {
  struct Params {};
  Forever(const Params&, NodeId, NodeId) {}
  template <class Ctx>
  void on_start(Ctx& ctx) {
    if (ctx.is_root()) ctx.mark_colored();
  }
  template <class Ctx>
  void on_receive(Ctx&, const Message&) {}
  template <class Ctx>
  void on_tick(Ctx&) {}  // never completes
};

TEST(Engine, MaxStepsStopsRunawayRuns) {
  RunConfig cfg = cfg_n(2);
  cfg.max_steps = 50;
  Engine<Forever> eng(cfg, {});
  const RunMetrics m = eng.run();
  EXPECT_TRUE(m.hit_max_steps);
  EXPECT_EQ(m.t_end, 50);
}

TEST(Engine, StopsWhenNoActivityRemains) {
  auto params = make_probe(4);
  Engine<ProbeNode> eng(cfg_n(4), params);
  const RunMetrics m = eng.run();
  EXPECT_FALSE(m.hit_max_steps);
  EXPECT_LT(m.t_end, 10);  // promptly, not at max_steps
}

}  // namespace
}  // namespace cg

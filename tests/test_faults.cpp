// The fault-injection layer (src/sim/fault/): Gilbert-Elliott burst-loss
// math, config validation, restart / straggler / partition semantics at
// the trace level, the reliable sublayer's termination bound, and the
// campaign runner's guarantee predicates + JSON report.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "harness/campaign.hpp"
#include "harness/runner.hpp"
#include "obs/report.hpp"
#include "sim/fault/burst_loss.hpp"
#include "sim/fault/validate.hpp"
#include "sim/trace.hpp"

namespace cg {
namespace {

// ------------------------------------------------------- burst loss math --

TEST(BurstLoss, DisabledByDefault) {
  const BurstLoss b;
  EXPECT_FALSE(b.enabled());
  EXPECT_DOUBLE_EQ(b.stationary_bad(), 0.0);
}

TEST(BurstLoss, FromRateHitsTargetBurstLengthAndLossRate) {
  const BurstLoss b = BurstLoss::from_rate(0.05, 4.0);
  EXPECT_TRUE(b.enabled());
  // Mean burst length = 1 / p_bad_good.
  EXPECT_DOUBLE_EQ(b.p_bad_good, 0.25);
  // Stationary fraction of bad steps = overall loss (loss_bad = 1).
  EXPECT_NEAR(b.stationary_bad(), 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(b.loss_bad, 1.0);
  EXPECT_DOUBLE_EQ(b.loss_good, 0.0);
}

// ---------------------------------------------------- config validation --

RunConfig base_cfg(NodeId n = 16) {
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP::unit();
  cfg.seed = 1;
  return cfg;
}

TEST(ConfigValidation, CleanConfigPasses) {
  EXPECT_EQ(config_error(base_cfg()), "");
}

TEST(ConfigValidation, BlackholeLinksAreLegal) {
  RunConfig cfg = base_cfg();
  cfg.drop_prob = 1.0;  // meaningful: every link a blackhole
  EXPECT_EQ(config_error(cfg), "");
  cfg.drop_prob = 1.3;
  EXPECT_NE(config_error(cfg), "");
}

TEST(ConfigValidation, RejectsDoubleCrash) {
  RunConfig cfg = base_cfg();
  cfg.failures.pre_failed = {3};
  cfg.failures.online.push_back({3, 5});
  EXPECT_NE(config_error(cfg).find("twice"), std::string::npos);
}

TEST(ConfigValidation, RejectsBadRestartWindow) {
  RunConfig cfg = base_cfg();
  cfg.failures.restarts.push_back({4, 10, 10});  // up_at <= down_at
  EXPECT_NE(config_error(cfg).find("up_at"), std::string::npos);
  cfg.failures.restarts.back() = {0, 2, 6};  // root cannot restart
  EXPECT_NE(config_error(cfg).find("root"), std::string::npos);
}

TEST(ConfigValidation, RejectsBadStragglerAndPartition) {
  RunConfig cfg = base_cfg();
  cfg.stragglers.push_back({7, 0});  // factor < 1
  EXPECT_NE(config_error(cfg), "");
  cfg.stragglers.clear();
  cfg.partitions.push_back({8, 8, {1, 2}});  // empty window
  EXPECT_NE(config_error(cfg), "");
  cfg.partitions.back() = {2, 9, {1, 1}};  // duplicate member
  EXPECT_NE(config_error(cfg), "");
}

TEST(ConfigValidation, RejectsBurstThatNeverEnds) {
  RunConfig cfg = base_cfg();
  cfg.burst.p_good_bad = 0.1;
  cfg.burst.p_bad_good = 0.0;
  EXPECT_NE(config_error(cfg).find("never end"), std::string::npos);
}

// ----------------------------------------------- semantics under faults --

// Blackhole links: nothing is ever delivered, yet every variant must still
// terminate - including with retransmission on, whose bounded retries are
// exactly what guarantees the sublayer drains.
TEST(FaultSemantics, BlackholeRunTerminates) {
  for (const bool reliable : {false, true}) {
    RunConfig cfg = base_cfg(16);
    cfg.drop_prob = 1.0;
    AlgoConfig acfg;
    acfg.T = 8;
    acfg.reliable.enabled = reliable;
    const RunMetrics m = run_once(Algo::kCcg, acfg, cfg);
    EXPECT_FALSE(m.hit_max_steps) << "reliable=" << reliable;
    EXPECT_EQ(m.n_colored, 1) << "only the root ever holds the message";
  }
}

// Crash-restart: the trace shows the fail and the restart, the node
// rejoins alive (counts as active at the end) but with protocol state
// RESET - colored before the crash, uncolored after rejoining.  Nobody
// re-sweeps for it (CCG's correction pass is long gone by step 38), which
// is exactly why the campaign downgrades every claim under restarts.
TEST(FaultSemantics, RestartRevivesNodeWithStateReset) {
  VectorTrace trace;
  RunConfig cfg = base_cfg(32);
  cfg.record_node_detail = true;
  cfg.trace = &trace;
  cfg.failures.restarts.push_back({5, 30, 38});
  AlgoConfig acfg;
  acfg.T = 8;
  const RunMetrics m = run_once(Algo::kCcg, acfg, cfg);

  EXPECT_EQ(m.n_active, 32);   // revived node is alive at the end
  EXPECT_EQ(m.n_colored, 31);  // ... but re-entered uncolored and stays so
  EXPECT_EQ(m.colored_at[5], kNever);
  EXPECT_FALSE(m.all_active_colored);
  bool failed = false, restarted = false;
  Step fail_at = kNever, restart_at = kNever;
  std::vector<Step> colored_steps;
  for (const auto& ev : trace.events()) {
    if (ev.node != 5) continue;
    if (ev.kind == TraceEvent::Kind::kFail) failed = true, fail_at = ev.step;
    if (ev.kind == TraceEvent::Kind::kRestart)
      restarted = true, restart_at = ev.step;
    if (ev.kind == TraceEvent::Kind::kColored) colored_steps.push_back(ev.step);
  }
  EXPECT_TRUE(failed);
  EXPECT_TRUE(restarted);
  EXPECT_EQ(fail_at, 30);
  EXPECT_EQ(restart_at, 38);
  // Colored exactly once - before the crash wiped it.
  ASSERT_EQ(colored_steps.size(), 1u);
  EXPECT_LT(colored_steps[0], fail_at);
}

// Straggler: every message the slow node emits takes factor * base delay;
// everyone else's messages are unaffected.
TEST(FaultSemantics, StragglerStretchesOnlyItsOwnSends) {
  VectorTrace trace;
  RunConfig cfg = base_cfg(8);
  cfg.trace = &trace;
  cfg.stragglers.push_back({0, 3});  // the root itself drags
  AlgoConfig acfg;
  acfg.T = 6;
  run_once(Algo::kCcg, acfg, cfg);

  const Step dd = cfg.logp.delivery_delay();
  std::multiset<std::pair<NodeId, Step>> sends;  // (sender, step)
  for (const auto& ev : trace.events())
    if (ev.kind == TraceEvent::Kind::kSend) sends.insert({ev.node, ev.step});
  int from_straggler = 0, from_others = 0;
  for (const auto& ev : trace.events()) {
    if (ev.kind != TraceEvent::Kind::kDeliver) continue;
    const Step lag = ev.peer == 0 ? 3 * dd : dd;
    EXPECT_EQ(sends.count({ev.peer, ev.step - lag}), 1u)
        << "delivery from " << ev.peer << " at step " << ev.step;
    (ev.peer == 0 ? from_straggler : from_others)++;
  }
  EXPECT_GT(from_straggler, 0);
  EXPECT_GT(from_others, 0);
}

// Partition: with one side cut off for the whole run, no member is ever
// colored, every non-member is, and the cross-boundary traffic shows up
// as kLost trace events.
TEST(FaultSemantics, PartitionBlocksCrossTrafficBothWays) {
  VectorTrace trace;
  RunConfig cfg = base_cfg(16);
  cfg.record_node_detail = true;
  cfg.trace = &trace;
  cfg.partitions.push_back({0, 100000, {8, 9, 10, 11}});
  AlgoConfig acfg;
  acfg.T = 8;
  const RunMetrics m = run_once(Algo::kCcg, acfg, cfg);

  EXPECT_FALSE(m.hit_max_steps);
  EXPECT_EQ(m.n_colored, 12);
  for (NodeId i = 0; i < 16; ++i) {
    const bool member = i >= 8 && i <= 11;
    EXPECT_EQ(m.colored_at[static_cast<std::size_t>(i)] == kNever, member)
        << "node " << i;
  }
  int lost = 0;
  for (const auto& ev : trace.events())
    if (ev.kind == TraceEvent::Kind::kLost) ++lost;
  EXPECT_GT(lost, 0);
}

// Retransmission accounting: off by default; under loss the hardened
// variant reports its extra sends in msgs_retrans and they are part of
// msgs_total.
TEST(FaultSemantics, RetransmissionsAreCountedAndOffByDefault) {
  RunConfig cfg = base_cfg(64);
  cfg.burst = BurstLoss::from_rate(0.10, 4);
  AlgoConfig acfg;
  acfg.T = 10;
  const RunMetrics plain = run_once(Algo::kCcg, acfg, cfg);
  EXPECT_EQ(plain.msgs_retrans, 0);
  acfg.reliable.enabled = true;
  const RunMetrics rel = run_once(Algo::kCcg, acfg, cfg);
  EXPECT_GT(rel.msgs_retrans, 0);
  EXPECT_LE(rel.msgs_retrans, rel.msgs_total);
}

// --------------------------------------------------------- the campaign --

TrialAggregate agg_with(std::int64_t trials, std::int64_t colored,
                        std::int64_t aon_viol, std::int64_t sos_incomplete) {
  TrialAggregate agg;
  agg.trials = trials;
  agg.all_colored_trials = colored;
  agg.all_or_nothing_violations = aon_viol;
  agg.sos_incomplete_trials = sos_incomplete;
  return agg;
}

TEST(Campaign, GuaranteePredicates) {
  EXPECT_TRUE(guarantee_holds(Guarantee::kNone, agg_with(10, 0, 5, 5)));
  EXPECT_TRUE(guarantee_holds(Guarantee::kAllReached, agg_with(10, 10, 0, 0)));
  EXPECT_FALSE(guarantee_holds(Guarantee::kAllReached, agg_with(10, 9, 0, 0)));
  EXPECT_TRUE(guarantee_holds(Guarantee::kAllOrNothing, agg_with(10, 3, 0, 0)));
  EXPECT_FALSE(
      guarantee_holds(Guarantee::kAllOrNothing, agg_with(10, 10, 1, 0)));
  EXPECT_TRUE(guarantee_holds(Guarantee::kSosConsistent, agg_with(10, 9, 0, 0)));
  EXPECT_FALSE(
      guarantee_holds(Guarantee::kSosConsistent, agg_with(10, 10, 0, 1)));
}

TEST(Campaign, FcgToleranceCoversScenarioCrashes) {
  CampaignConfig cfg;
  cfg.n = 32;
  FaultScenario scenario;
  scenario.online_failures = 3;
  CampaignEntry entry;
  entry.algo = Algo::kFcg;
  entry.acfg.fcg_f = 1;
  const TrialSpec spec = campaign_trial_spec(cfg, scenario, entry);
  EXPECT_EQ(spec.acfg.fcg_f, 3);
  EXPECT_EQ(spec.online_failures, 3);
}

TEST(Campaign, RunsGridChecksGuaranteesAndSerializes) {
  CampaignConfig cfg;
  cfg.n = 32;
  cfg.logp = LogP::unit();
  cfg.seed = 5;
  cfg.trials = 4;

  FaultScenario clean;
  clean.name = "clean";
  FaultScenario bursty;
  bursty.name = "burst";
  bursty.burst_loss = 0.03;
  bursty.burst_mean = 4;
  FaultScenario restarting;
  restarting.name = "restart";
  restarting.restarts = 1;

  AlgoConfig acfg;
  acfg.T = 10;
  const auto entries = default_entries(Algo::kCcg, acfg);
  ASSERT_EQ(entries.size(), 2u);  // plain + "+rel"
  EXPECT_EQ(entries[1].guarantee, Guarantee::kAllReached);

  const CampaignResult result =
      run_campaign(cfg, {clean, bursty, restarting}, entries);
  ASSERT_EQ(result.cells.size(), 6u);
  EXPECT_EQ(result.failed_cells, 0);
  for (const auto& cell : result.cells) {
    EXPECT_TRUE(cell.pass) << cell.scenario << " / " << cell.entry;
    // Crash-restart voids the all-reached claim: a rejoined node may stay
    // uncolored forever, so the campaign downgrades the cell to kNone.
    if (cell.scenario == "restart") {
      EXPECT_EQ(cell.guarantee, Guarantee::kNone) << cell.entry;
    }
  }

  const std::string json = obs::to_json(result);
  EXPECT_NE(json.find("\"all_pass\":true"), std::string::npos);
  EXPECT_NE(json.find("\"scenario\":\"burst\""), std::string::npos);
  EXPECT_NE(json.find("\"guarantee\":\"all-reached\""), std::string::npos);
  EXPECT_NE(json.find("\"work_retrans\""), std::string::npos);
}

TEST(Campaign, StockGridIsWellFormed) {
  const auto scenarios = default_fault_scenarios();
  ASSERT_GE(scenarios.size(), 8u);
  std::set<std::string> names;
  for (const auto& s : scenarios) EXPECT_TRUE(names.insert(s.name).second);
  EXPECT_EQ(names.count("clean"), 1u);
}

}  // namespace
}  // namespace cg

// Analytic models: Eq. (1) coloring, Eq. (2) chain distribution, tuning
// (Eqs. 3-5), Appendix-B G_V, and closed-form helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/chain.hpp"
#include "analysis/coloring.hpp"
#include "analysis/fcg_bound.hpp"
#include "analysis/logmath.hpp"
#include "analysis/tuning.hpp"
#include "harness/scenarios.hpp"

namespace cg {
namespace {

// -------------------------------------------------------------- logmath --

TEST(LogMath, OneMinusPow) {
  EXPECT_DOUBLE_EQ(one_minus_pow(0.0, 10), 0.0);
  EXPECT_DOUBLE_EQ(one_minus_pow(1.0, 10), 1.0);
  EXPECT_NEAR(one_minus_pow(0.5, 2), 0.75, 1e-12);
  // Tiny p: 1-(1-p)^n ~ n*p.
  EXPECT_NEAR(one_minus_pow(1e-12, 1000), 1e-9, 1e-12);
}

TEST(LogMath, LogChoose) {
  EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(52, 5)), 2598960.0, 1e-3);
}

TEST(LogMath, Log1mExp) {
  EXPECT_NEAR(log1mexp(-1.0), std::log(1 - std::exp(-1.0)), 1e-12);
  EXPECT_NEAR(log1mexp(-1e-9), std::log(1e-9), 1e-3);  // ~log(-expm1(x))
}

// ------------------------------------------------------------- coloring --

TEST(Coloring, InitialConditions) {
  const auto c = expected_colored(1024, 1024, 20, LogP::unit(), 5);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);  // nothing can arrive before step L/O+2
  EXPECT_DOUBLE_EQ(c[2], 1.0);
  EXPECT_GT(c[3], 1.0);  // first arrival (root emits at 1, lands at 3)
}

TEST(Coloring, MonotoneAndBounded) {
  const auto c = expected_colored(512, 512, 30, LogP::unit(), 50);
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_GE(c[i], c[i - 1]);
    EXPECT_LE(c[i], 512.0);
  }
}

TEST(Coloring, StopsGrowingAfterDrain) {
  const Step T = 15;
  const auto c = expected_colored(256, 256, T, LogP::unit(), 40);
  const Step drain = T + LogP::unit().l_over_o;  // last arrival step
  for (Step s = drain; s < 40; ++s)
    EXPECT_DOUBLE_EQ(c[static_cast<std::size_t>(s)],
                     c[static_cast<std::size_t>(drain)]);
}

TEST(Coloring, InactiveNodesCapTheLimit) {
  // n_active < N: coloring saturates at n_active.
  const auto c = expected_colored(1000, 600, 60, LogP::unit(), 120);
  EXPECT_LE(c.back(), 600.0);
  EXPECT_GT(c.back(), 590.0);
}

TEST(Coloring, Figure1Shape) {
  // Figure 1: N=n=1024, L=O=1; c(t) passes ~512 around t=18 and nearly
  // saturates by t=30.
  const auto c = expected_colored(1024, 1024, 40, LogP::unit(), 40);
  EXPECT_GT(c[18], 380.0);
  EXPECT_LT(c[18], 640.0);
  EXPECT_GT(c[30], 1010.0);
}

TEST(Coloring, GossipTimeForTarget) {
  const Step T = gossip_time_for_target(1024, 1024, 1.0, LogP::unit());
  // Expected miss < 1 node requires roughly the Figure-1 saturation time.
  EXPECT_GT(T, 20);
  EXPECT_LT(T, 40);
  // Monotone: tighter target -> more time.
  EXPECT_GE(gossip_time_for_target(1024, 1024, 0.01, LogP::unit()), T);
}

// ---------------------------------------------------------------- chain --

TEST(Chain, SumsToOne) {
  for (const double cbar : {16.0, 100.0, 250.0, 255.0}) {
    ChainDist d(256, cbar);
    double sum = 0;
    for (int K = 0; K < 256; ++K) sum += d.pmf(K);
    EXPECT_NEAR(sum, 1.0, 1e-6) << "cbar=" << cbar;
  }
}

TEST(Chain, TailMonotone) {
  ChainDist d(256, 200.0);
  for (int K = 0; K < 255; ++K) EXPECT_GE(d.tail(K), d.tail(K + 1));
  EXPECT_NEAR(d.tail(0), 1.0, 1e-9);
}

TEST(Chain, KBarMonotoneInEps) {
  ChainDist d(1024, 1000.0);
  EXPECT_LE(d.k_bar(1e-2), d.k_bar(1e-4));
  EXPECT_LE(d.k_bar(1e-4), d.k_bar(1e-8));
}

TEST(Chain, DenseColoringHasShortChains) {
  ChainDist d(1024, 1020.0);
  EXPECT_LE(d.k_bar(1e-6), 6);
  ChainDist sparse(1024, 64.0);
  EXPECT_GT(sparse.k_bar(1e-6), 50);
}

TEST(Chain, KBarForDecreasesWithT) {
  const double eps = 1e-6;
  const int k10 = k_bar_for(1024, 1024, 10, LogP::unit(), eps);
  const int k20 = k_bar_for(1024, 1024, 20, LogP::unit(), eps);
  const int k30 = k_bar_for(1024, 1024, 30, LogP::unit(), eps);
  EXPECT_GE(k10, k20);
  EXPECT_GE(k20, k30);
}

// --------------------------------------------------------------- tuning --

TEST(Tuning, EpsForRuns) {
  // Paper: eps = 1-(1-0.5)^(1/1e6) = 6.93e-7.
  EXPECT_NEAR(eps_for_runs(0.5, 1e6), 6.9315e-7, 1e-10);
  EXPECT_NEAR(eps_for_runs(0.5, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(paper_eps(), 6.9315e-7, 1e-10);
}

TEST(Tuning, OcgMatchesPaperNeighborhood) {
  // Paper Figure 3: T_opt = 24 at N=n=1024, L=O=1, eps=6.93e-7.
  const Tuning t = tune_ocg(1024, 1024, LogP::unit(), paper_eps());
  EXPECT_GE(t.T_opt, 23);
  EXPECT_LE(t.T_opt, 27);
  EXPECT_GT(t.k_bar, 0);
}

TEST(Tuning, CcgMatchesPaperNeighborhood) {
  // Paper Figure 5: T_opt = 25.
  const Tuning t = tune_ccg(1024, 1024, LogP::unit(), paper_eps());
  EXPECT_GE(t.T_opt, 24);
  EXPECT_LE(t.T_opt, 29);
}

TEST(Tuning, CcgNeverFasterThanOcg) {
  for (const NodeId n : {128, 1024, 4096}) {
    const Tuning o = tune_ocg(n, n, LogP::piz_daint(), paper_eps());
    const Tuning c = tune_ccg(n, n, LogP::piz_daint(), paper_eps());
    EXPECT_LE(o.predicted_latency, c.predicted_latency) << n;
  }
}

TEST(Tuning, Table7Neighborhood) {
  // Paper Table 7 (N=4096, L=2us, O=1us): OCG T=32 lat 42; CCG T=36 lat 44.
  const LogP pd = LogP::piz_daint();
  const Tuning o = tune_ocg(4096, 4096, pd, paper_eps());
  EXPECT_NEAR(static_cast<double>(o.T_opt), 32.0, 3.0);
  EXPECT_NEAR(static_cast<double>(o.predicted_latency), 42.0, 3.0);
  const Tuning c = tune_ccg(4096, 4096, pd, paper_eps());
  EXPECT_NEAR(static_cast<double>(c.T_opt), 36.0, 3.0);
  EXPECT_NEAR(static_cast<double>(c.predicted_latency), 44.0, 3.0);
}

TEST(Tuning, PredictedLatencyIsConsistent) {
  const double eps = 1e-5;
  const Tuning t = tune_ocg(512, 512, LogP::unit(), eps);
  EXPECT_EQ(ocg_predicted_latency(512, 512, t.T_opt, LogP::unit(), eps),
            t.predicted_latency);
}

// ------------------------------------------------------------ FCG bound --

TEST(FcgBound, GChainSumsToOne) {
  GChainDist d(256, 200.0, 5);
  double sum = 0;
  for (int G = 5; G <= 256; ++G) sum += d.pmf(G);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(FcgBound, GvAtLeastV) {
  GChainDist d(1024, 1000.0, 5);
  EXPECT_GE(d.g_v(1e-6), 5);
}

TEST(FcgBound, SparseColoringMakesGvUnbounded) {
  // Regression: when fewer than V g-nodes can exist, no V-window exists
  // and only the whole ring is a safe span bound (the naive tail scan
  // would return the minimum V and mis-tune FCG's T towards 1).
  GChainDist starved(1024, 4.0, 9);  // ~4 g-nodes, windows of 9 impossible
  EXPECT_EQ(starved.g_v(1e-4), 1024);
  // And the tuner therefore never picks a tiny T for large f.
  const FcgTuning t = tune_fcg(1024, 1024, LogP::piz_daint(), 1e-5, 3);
  EXPECT_GT(t.T_opt, 15);
}

TEST(FcgBound, GvShrinksWithDenserColoring) {
  GChainDist dense(1024, 1020.0, 5);
  GChainDist sparse(1024, 512.0, 5);
  EXPECT_LE(dense.g_v(1e-6), sparse.g_v(1e-6));
}

TEST(FcgBound, TuningNeighborhood) {
  // Paper Figure 9 (N=1024, L=O=1, f=1): optimum around T=31-37,
  // predicted upper bound around 47-52.
  const FcgTuning t = tune_fcg(1024, 1024, LogP::unit(), paper_eps(), 1);
  EXPECT_GE(t.T_opt, 28);
  EXPECT_LE(t.T_opt, 38);
  EXPECT_GE(t.predicted_upper, 40);
  EXPECT_LE(t.predicted_upper, 56);
}

TEST(FcgBound, UpperBoundAboveCcgLatency) {
  // FCG's bound must dominate CCG's predicted latency at the same T.
  const double eps = paper_eps();
  for (const Step T : {28, 32, 36}) {
    EXPECT_GE(fcg_predicted_upper(1024, 1024, T, LogP::unit(), eps, 1),
              ccg_predicted_latency(1024, 1024, T, LogP::unit(), eps));
  }
}

// ------------------------------------------------------------ scenarios --

TEST(Scenarios, TuneForProducesRunnableConfigs) {
  for (const Algo a : {Algo::kGos, Algo::kOcg, Algo::kCcg, Algo::kFcg}) {
    const TunedAlgo t = tune_for(a, 256, 256, LogP::unit(), 1e-4, 1);
    EXPECT_GT(t.acfg.T, 0) << algo_name(a);
    EXPECT_GT(t.predicted_latency_steps, t.acfg.T) << algo_name(a);
  }
  EXPECT_GT(tune_for(Algo::kBig, 256, 256, LogP::unit(), 1e-4, 1)
                .predicted_latency_steps,
            0);
}

TEST(Scenarios, ModelRowsMatchTable7) {
  const LogP pd = LogP::piz_daint();
  const ModelRow big = big_model_row(4096, pd);
  EXPECT_DOUBLE_EQ(big.lat_us, 60.0);
  EXPECT_EQ(big.work, 49152);
  const ModelRow bfb0 = bfb_model_row(4096, 0, pd);
  EXPECT_DOUBLE_EQ(bfb0.lat_us, 96.0);
  EXPECT_EQ(bfb0.work, 4096);
  const ModelRow bfb3 = bfb_model_row(4096, 3, pd);
  EXPECT_DOUBLE_EQ(bfb3.lat_us, 144.0);
  EXPECT_EQ(bfb3.work, 8192);
}

}  // namespace
}  // namespace cg

// Unit tests for common utilities: ring arithmetic, RNG, statistics,
// tables, and flag parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/ascii_plot.hpp"
#include "common/flags.hpp"
#include "common/ring.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace cg {
namespace {

// ---------------------------------------------------------------- ring --

TEST(Ring, BasicDistances) {
  const Ring r(10);
  EXPECT_EQ(r.dist_fwd(3, 7), 4);
  EXPECT_EQ(r.dist_bwd(3, 7), 6);
  EXPECT_EQ(r.dist_fwd(7, 3), 6);
  EXPECT_EQ(r.dist_bwd(7, 3), 4);
  EXPECT_EQ(r.dist_fwd(5, 5), 0);
  EXPECT_EQ(r.dist_bwd(5, 5), 0);
}

TEST(Ring, StepAndAt) {
  const Ring r(10);
  EXPECT_EQ(r.at(9, 1), 0);
  EXPECT_EQ(r.at(0, -1), 9);
  EXPECT_EQ(r.at(0, -21), 9);
  EXPECT_EQ(r.at(5, 100), 5);
  EXPECT_EQ(r.step(2, Dir::kFwd, 3), 5);
  EXPECT_EQ(r.step(2, Dir::kBwd, 3), 9);
}

TEST(Ring, DirectionHelpers) {
  EXPECT_EQ(opposite(Dir::kFwd), Dir::kBwd);
  EXPECT_EQ(opposite(Dir::kBwd), Dir::kFwd);
  EXPECT_EQ(dir_sign(Dir::kFwd), 1);
  EXPECT_EQ(dir_sign(Dir::kBwd), -1);
}

TEST(Ring, BetweenFwd) {
  const Ring r(10);
  EXPECT_TRUE(r.between_fwd(2, 4, 7));
  EXPECT_FALSE(r.between_fwd(2, 7, 4));
  EXPECT_TRUE(r.between_fwd(8, 1, 3));   // wraps
  EXPECT_FALSE(r.between_fwd(8, 8, 3));  // strict
  EXPECT_FALSE(r.between_fwd(8, 3, 3));
}

class RingPropertyTest : public ::testing::TestWithParam<NodeId> {};

TEST_P(RingPropertyTest, DistancesAreInverse) {
  const NodeId n = GetParam();
  const Ring r(n);
  for (NodeId a = 0; a < n; ++a) {
    const NodeId b = (a * 7 + 3) % n;
    // fwd + bwd distances between distinct points sum to n.
    if (a != b) {
      EXPECT_EQ(r.dist_fwd(a, b) + r.dist_bwd(a, b), n);
    }
    // walking dist in the direction gets you there.
    EXPECT_EQ(r.step(a, Dir::kFwd, r.dist_fwd(a, b)), b);
    EXPECT_EQ(r.step(a, Dir::kBwd, r.dist_bwd(a, b)), b);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingPropertyTest,
                         ::testing::Values<NodeId>(1, 2, 3, 5, 8, 64, 1000));

// ----------------------------------------------------------------- rng --

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LE(same, 1);
}

TEST(Rng, BoundedRange) {
  Xoshiro256 g(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(g.bounded(17), 17u);
    EXPECT_EQ(g.bounded(1), 0u);
  }
}

TEST(Rng, UniformInclusive) {
  Xoshiro256 g(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = g.uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(Rng, OtherNodeNeverSelf) {
  Xoshiro256 g(11);
  for (int i = 0; i < 5000; ++i) {
    const auto v = g.other_node(3, 8);
    EXPECT_NE(v, 3);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 8);
  }
}

TEST(Rng, OtherNodeUniform) {
  // Chi-square-ish sanity: each of the 7 other nodes ~1/7 of draws.
  Xoshiro256 g(13);
  int counts[8] = {0};
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[g.other_node(3, 8)];
  EXPECT_EQ(counts[3], 0);
  for (int v = 0; v < 8; ++v) {
    if (v == 3) continue;
    EXPECT_NEAR(counts[v], draws / 7.0, 5.0 * std::sqrt(draws / 7.0));
  }
}

TEST(Rng, Uniform01Range) {
  Xoshiro256 g(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, DerivedSeedsIndependent) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  EXPECT_EQ(derive_seed(5, 9), derive_seed(5, 9));
}

// --------------------------------------------------------------- stats --

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Samples, Quantiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, MedianCi) {
  Samples s;
  for (int i = 1; i <= 1000; ++i) s.add(i);
  const auto [lo, hi] = s.median_ci95();
  EXPECT_LT(lo, 500.0);
  EXPECT_GT(hi, 500.0);
  EXPECT_NEAR(lo, 500 - 31, 3);  // 1.96*sqrt(1000)/2 ~ 31
  EXPECT_NEAR(hi, 500 + 31, 3);
}

TEST(Samples, AddAfterQuantileKeepsConsistency) {
  Samples s;
  s.add(3);
  s.add(1);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.min(), 0.5);  // re-sorts after mutation
}

// --------------------------------------------------------------- table --

TEST(Table, AlignsColumns) {
  Table t({"algo", "lat"});
  t.add_row({"OCG", "42"});
  t.add_row({"longername", "7"});
  const std::string out = t.str();
  EXPECT_NE(out.find("algo"), std::string::npos);
  EXPECT_NE(out.find("longername"), std::string::npos);
  // header and rows share the same column start for "lat"/"42".
  const auto head = out.find("lat");
  const auto row = out.find("42");
  EXPECT_EQ(head % (out.find('\n') + 1), row % (out.find('\n') + 1));
}

TEST(Table, Csv) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(Table::cell("%d", 42), "42");
  EXPECT_EQ(Table::cell("%.2f", 1.5), "1.50");
  EXPECT_EQ(Table::cell("%s/%s", "a", "b"), "a/b");
}

// ---------------------------------------------------------- ascii plot --

TEST(AsciiPlotTest, RendersSeriesAndLegend) {
  AsciiPlot p(20, 6);
  p.add_series("line", '*', {{0, 0}, {1, 1}, {2, 2}});
  p.add_series("flat", '-', {{0, 1}, {2, 1}});
  const std::string out = p.str();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("line"), std::string::npos);
  EXPECT_NE(out.find("flat"), std::string::npos);
  EXPECT_NE(out.find("2.0"), std::string::npos);  // axis labels
  EXPECT_NE(out.find("0.0"), std::string::npos);
}

TEST(AsciiPlotTest, EmptyPlotIsSafe) {
  AsciiPlot p(20, 6);
  EXPECT_EQ(p.str(), "(empty plot)\n");
}

TEST(AsciiPlotTest, ExtremesLandOnCorners) {
  AsciiPlot p(10, 5);
  p.add_series("s", '#', {{0, 0}, {9, 4}});
  const std::string out = p.str();
  // Highest y value renders on the first grid row, lowest on the last.
  const auto first_nl = out.find('\n');
  EXPECT_NE(out.substr(0, first_nl).find('#'), std::string::npos);
}

TEST(AsciiPlotTest, ConstantSeriesDoesNotDivideByZero) {
  AsciiPlot p(12, 4);
  p.add_series("c", 'o', {{1, 5}, {2, 5}, {3, 5}});
  EXPECT_FALSE(p.str().empty());
}

// --------------------------------------------------------------- flags --

TEST(Flags, ParsesForms) {
  const char* argv[] = {"prog", "--n=42",      "--name=x", "--verbose",
                        "pos1", "--ratio=1.5", "pos2"};
  Flags f(7, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("n", 0), 42);
  EXPECT_EQ(f.get_string("name", ""), "x");
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(f.get_double("ratio", 0), 1.5);
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "pos1");
  EXPECT_EQ(f.positional()[1], "pos2");
  EXPECT_EQ(f.get_int("missing", -7), -7);
  EXPECT_TRUE(f.has("n"));
  EXPECT_FALSE(f.has("m"));
}

}  // namespace
}  // namespace cg

// Corrected-gossip barrier: the barrier property (nobody releases before
// everyone arrived), skewed arrivals, non-zero coordinators, scaling.
#include <gtest/gtest.h>

#include <algorithm>

#include "collectives/barrier.hpp"
#include "sim/engine.hpp"

namespace cg {
namespace {

struct BarrierOutcome {
  Step last_arrival = 0;
  Step first_release = kNever;
  Step last_release = 0;
  bool all_released = true;
  RunMetrics metrics;
};

BarrierOutcome run_barrier(NodeId n, std::vector<Step> arrivals,
                           NodeId coordinator, Step T_release,
                           std::uint64_t seed) {
  BarrierNode::Params p;
  p.coordinator = coordinator;
  p.T_release = T_release;
  if (!arrivals.empty())
    p.arrivals = std::make_shared<const std::vector<Step>>(arrivals);

  RunConfig cfg;
  cfg.n = n;
  cfg.root = coordinator;
  cfg.logp = LogP::unit();
  cfg.seed = seed;
  Engine<BarrierNode> eng(cfg, p);

  BarrierOutcome out;
  out.metrics = eng.run();
  for (NodeId i = 0; i < n; ++i) {
    out.last_arrival = std::max(out.last_arrival, eng.node(i).arrival());
    const Step r = eng.node(i).released_at();
    if (r == kNever) {
      out.all_released = false;
    } else {
      out.first_release = std::min(out.first_release, r);
      out.last_release = std::max(out.last_release, r);
    }
  }
  return out;
}

TEST(Barrier, EveryoneReleasesAfterEveryoneArrived) {
  const BarrierOutcome out = run_barrier(64, {}, 0, 10, 1);
  EXPECT_TRUE(out.all_released);
  EXPECT_GE(out.first_release, out.last_arrival);  // the barrier property
  EXPECT_FALSE(out.metrics.hit_max_steps);
}

TEST(Barrier, SkewedArrivalsGateTheRelease) {
  std::vector<Step> arrivals(96, 0);
  arrivals[40] = 50;  // one straggler
  const BarrierOutcome out = run_barrier(96, arrivals, 0, 10, 2);
  EXPECT_TRUE(out.all_released);
  EXPECT_GE(out.first_release, 50);  // nobody escapes before the straggler
}

TEST(Barrier, RandomSkew) {
  Xoshiro256 rng(7);
  std::vector<Step> arrivals(80);
  Step last = 0;
  for (auto& a : arrivals) {
    a = rng.uniform(0, 30);
    last = std::max(last, a);
  }
  const BarrierOutcome out = run_barrier(80, arrivals, 0, 10, 3);
  EXPECT_TRUE(out.all_released);
  EXPECT_GE(out.first_release, last);
}

TEST(Barrier, NonZeroCoordinator) {
  const BarrierOutcome out = run_barrier(64, {}, 17, 10, 4);
  EXPECT_TRUE(out.all_released);
  EXPECT_GE(out.first_release, out.last_arrival);
}

TEST(Barrier, SingleNode) {
  const BarrierOutcome out = run_barrier(1, {}, 0, 4, 5);
  EXPECT_TRUE(out.all_released);
}

TEST(Barrier, TwoNodes) {
  const BarrierOutcome out = run_barrier(2, {0, 7}, 0, 4, 6);
  EXPECT_TRUE(out.all_released);
  EXPECT_GE(out.first_release, 7);
}

class BarrierSweep
    : public ::testing::TestWithParam<std::tuple<NodeId, std::uint64_t>> {};

TEST_P(BarrierSweep, PropertyHoldsAcrossSizesAndSeeds) {
  const auto [n, seed] = GetParam();
  Xoshiro256 rng(seed);
  std::vector<Step> arrivals(static_cast<std::size_t>(n));
  Step last = 0;
  for (auto& a : arrivals) {
    a = rng.uniform(0, 20);
    last = std::max(last, a);
  }
  const BarrierOutcome out = run_barrier(n, arrivals, 0, 12, seed);
  EXPECT_TRUE(out.all_released);
  EXPECT_GE(out.first_release, last);
  EXPECT_FALSE(out.metrics.hit_max_steps);
  // Release spread is the corrected-gossip dissemination window, not O(N).
  EXPECT_LT(out.last_release - out.first_release, 3 * 12 + 40);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BarrierSweep,
    ::testing::Combine(::testing::Values<NodeId>(16, 64, 200),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

}  // namespace
}  // namespace cg

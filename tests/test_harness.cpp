// Harness: trial aggregation, seeding, thread invariance, failure
// sampling, and the scenario pipeline.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/scenarios.hpp"
#include "sim/failure.hpp"

namespace cg {
namespace {

TrialSpec base_spec(Algo algo, NodeId n, int trials) {
  TrialSpec spec;
  spec.algo = algo;
  spec.n = n;
  spec.logp = LogP::unit();
  spec.seed = 404;
  spec.trials = trials;
  spec.acfg.T = 14;
  spec.acfg.ocg_corr_sends = 10;
  return spec;
}

TEST(Harness, AggregateCountsTrials) {
  const TrialAggregate agg = run_trials(base_spec(Algo::kCcg, 128, 25));
  EXPECT_EQ(agg.trials, 25);
  EXPECT_EQ(agg.all_colored_trials, 25);
  EXPECT_EQ(agg.t_complete.count(), 25u);
  EXPECT_EQ(agg.hit_max_steps_trials, 0);
  EXPECT_GT(agg.work.mean(), 0);
}

TEST(Harness, DeterministicForSeed) {
  const TrialAggregate a = run_trials(base_spec(Algo::kGos, 128, 10));
  const TrialAggregate b = run_trials(base_spec(Algo::kGos, 128, 10));
  EXPECT_DOUBLE_EQ(a.work.mean(), b.work.mean());
  EXPECT_DOUBLE_EQ(a.inconsistency.mean(), b.inconsistency.mean());
}

TEST(Harness, DifferentSeedsGiveDifferentRuns) {
  TrialSpec s1 = base_spec(Algo::kGos, 128, 10);
  TrialSpec s2 = s1;
  s2.seed = 405;
  const TrialAggregate a = run_trials(s1);
  const TrialAggregate b = run_trials(s2);
  EXPECT_NE(a.work.mean(), b.work.mean());
}

TEST(Harness, ThreadCountDoesNotChangeResults) {
  TrialSpec s1 = base_spec(Algo::kCcg, 100, 16);
  TrialSpec s4 = s1;
  s4.threads = 4;
  const TrialAggregate a = run_trials(s1);
  const TrialAggregate b = run_trials(s4);
  EXPECT_EQ(a.trials, b.trials);
  // The farm reduces per-trial results in trial order regardless of which
  // worker ran them, so the aggregate is byte-identical - including the
  // FP-order-sensitive streaming summaries and raw sample orderings
  // (tests/test_trial_farm.cpp pins the full JSON report too).
  EXPECT_EQ(a.t_complete.raw(), b.t_complete.raw());
  EXPECT_DOUBLE_EQ(a.work.mean(), b.work.mean());
  EXPECT_DOUBLE_EQ(a.work.stddev(), b.work.stddev());
  EXPECT_DOUBLE_EQ(a.work.min(), b.work.min());
  EXPECT_DOUBLE_EQ(a.work.max(), b.work.max());
}

TEST(Harness, FailureSamplingRespectsCounts) {
  TrialSpec spec = base_spec(Algo::kFcg, 128, 12);
  spec.acfg.fcg_f = 2;
  spec.pre_failures = 5;
  spec.online_failures = 2;
  const TrialAggregate agg = run_trials(spec);
  EXPECT_EQ(agg.trials, 12);
  EXPECT_EQ(agg.all_or_nothing_violations, 0);
  EXPECT_EQ(agg.hit_max_steps_trials, 0);
}

TEST(Harness, InconsistencyTracksGosMisses) {
  TrialSpec spec = base_spec(Algo::kGos, 256, 30);
  spec.acfg.T = 10;  // deliberately too short: many nodes missed
  const TrialAggregate agg = run_trials(spec);
  EXPECT_GT(agg.inconsistency.mean(), 0.05);
  EXPECT_LT(agg.all_colored_rate(), 0.5);
}

TEST(FailureScheduleTest, RandomSchedulesAreValid) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 50; ++i) {
    const FailureSchedule fs = FailureSchedule::random(64, 5, 3, 100, rng);
    EXPECT_EQ(fs.pre_failed.size(), 5u);
    EXPECT_EQ(fs.online.size(), 3u);
    std::set<NodeId> all(fs.pre_failed.begin(), fs.pre_failed.end());
    for (const auto& of : fs.online) {
      EXPECT_TRUE(all.insert(of.node).second) << "duplicate failure node";
      EXPECT_GE(of.at_step, 0);
      EXPECT_LT(of.at_step, 100);
      EXPECT_NE(of.node, 0);  // root excluded by default
    }
    EXPECT_EQ(all.count(0), 0u);
  }
}

TEST(FailureScheduleTest, ExpectedFailuresFormula) {
  // Paper Section IV-C: N=4096, 12h job, MTBF 18304h -> ~2.69 failures.
  EXPECT_NEAR(FailureSchedule::expected_failures(4096), 2.685, 0.01);
  // f_bar(N) crosses BIG's tolerance (11) just above N=16778 -> the paper's
  // "for N > 22,001, BIG may not be consistent" threshold scale.
  EXPECT_LT(FailureSchedule::expected_failures(16000), 11.0);
  EXPECT_GT(FailureSchedule::expected_failures(22001), 12.0);
}

TEST(Scenarios, ReportedLatencyPicksTheRightMetric) {
  TrialAggregate agg;
  RunMetrics m;
  m.n_total = m.n_active = m.n_colored = m.n_delivered = 4;
  m.all_active_colored = true;
  m.t_last_colored = 10;
  m.t_complete = 20;
  m.t_root_complete = 30;
  agg.absorb(m);
  EXPECT_DOUBLE_EQ(reported_latency_steps(Algo::kCcg, agg), 20.0);
  EXPECT_DOUBLE_EQ(reported_latency_steps(Algo::kBig, agg), 10.0);
  EXPECT_DOUBLE_EQ(reported_latency_steps(Algo::kBfb, agg), 30.0);
}

TEST(Scenarios, RunScenarioEndToEnd) {
  const ScenarioResult r =
      run_scenario(Algo::kOcg, 256, 4, LogP::piz_daint(), 30, 11, 1e-3);
  EXPECT_EQ(r.agg.trials, 30);
  EXPECT_GT(r.lat_us, 0);
  EXPECT_GT(r.predicted_us, 0);
  EXPECT_NEAR(r.lat_us, r.predicted_us, 0.35 * r.predicted_us);
  EXPECT_LT(r.incon, 0.01);
}

TEST(TrialAggregateTest, MergeAddsEverything) {
  TrialAggregate a, b;
  RunMetrics m;
  m.n_total = m.n_active = m.n_colored = 2;
  m.t_last_colored = 5;
  m.all_active_colored = true;
  m.msgs_total = 10;
  a.absorb(m);
  m.msgs_total = 20;
  b.absorb(m);
  b.sos_trials = 1;
  a.merge(b);
  EXPECT_EQ(a.trials, 2);
  EXPECT_EQ(a.all_colored_trials, 2);
  EXPECT_EQ(a.sos_trials, 1);
  EXPECT_DOUBLE_EQ(a.work.mean(), 15.0);
}

}  // namespace
}  // namespace cg

// Push-pull gossip: pull requests fix the tail; responses obey the LogP
// send-slot budget.
#include <gtest/gtest.h>

#include "analysis/coloring.hpp"
#include "analysis/tuning.hpp"
#include "gossip/ccg.hpp"
#include "gossip/ccg_pushpull.hpp"
#include "gossip/push_pull.hpp"
#include "sim/engine.hpp"

namespace cg {
namespace {

RunMetrics run_pp(NodeId n, Step T, bool pull, std::uint64_t seed) {
  PushPullNode::Params p;
  p.T = T;
  p.pull = pull;
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP::unit();
  cfg.seed = seed;
  Engine<PushPullNode> eng(cfg, p);
  return eng.run();
}

TEST(PushPull, PushOnlyModeMatchesGosColoring) {
  // pull=false is plain push gossip: coloring matches Eq. (1) closely.
  const NodeId n = 512;
  const Step T = 18;
  double sum = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) sum += run_pp(n, T, false, 100 + t).n_colored;
  const double pred = colored_at_corr_start(n, n, T, LogP::unit());
  EXPECT_NEAR(sum / trials, pred, 0.06 * pred);
}

TEST(PushPull, PullFixesTheTail) {
  // At a T where push-only regularly misses nodes, push-pull reaches all.
  const NodeId n = 256;
  const Step T = 18;
  int push_full = 0, pp_full = 0;
  for (int t = 0; t < 40; ++t) {
    if (run_pp(n, T, false, 200 + t).all_active_colored) ++push_full;
    if (run_pp(n, T, true, 200 + t).all_active_colored) ++pp_full;
  }
  EXPECT_LT(push_full, 35);
  EXPECT_GE(pp_full, 37);  // near-certain full coverage (vs push's misses)
  EXPECT_GT(pp_full, push_full);
}

TEST(PushPull, PullCostsWork) {
  const RunMetrics push = run_pp(256, 20, false, 5);
  const RunMetrics pp = run_pp(256, 20, true, 5);
  EXPECT_GT(pp.msgs_total, push.msgs_total);  // requests are not free
}

TEST(PushPull, Terminates) {
  for (const bool pull : {false, true}) {
    const RunMetrics m = run_pp(128, 15, pull, 7);
    EXPECT_FALSE(m.hit_max_steps);
    EXPECT_NE(m.t_complete, kNever);
  }
}

TEST(PushPull, ForecastIsSane) {
  const auto c = pushpull_expected_colored(512, 512, 20, LogP::unit(), 22);
  // Monotone, bounded, and at least as fast as push-only.
  const auto push = expected_colored(512, 512, 20, LogP::unit(), 22);
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_GE(c[i], c[i - 1]);
    EXPECT_LE(c[i], 512.0);
    EXPECT_GE(c[i] + 1e-9, push[i]);
  }
}

TEST(PushPull, UncoloredNodesSendOnlyRequests) {
  VectorTrace trace;
  PushPullNode::Params p;
  p.T = 12;
  p.pull = true;
  RunConfig cfg;
  cfg.n = 64;
  cfg.logp = LogP::unit();
  cfg.seed = 9;
  cfg.trace = &trace;
  cfg.record_node_detail = true;
  Engine<PushPullNode> eng(cfg, p);
  const RunMetrics m = eng.run();
  for (const auto& ev : trace.events()) {
    if (ev.kind != TraceEvent::Kind::kSend) continue;
    if (ev.tag == Tag::kPullReq) {
      // The sender was uncolored when it asked.
      const Step colored_at = m.colored_at[static_cast<std::size_t>(ev.node)];
      EXPECT_TRUE(colored_at == kNever || colored_at >= ev.step)
          << "node " << ev.node << " pulled after being colored";
    }
  }
}

// ------------------------------------------------ corrected push-pull --

TEST(CcgPushPull, ReachesEveryoneAndCompletes) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    CcgPushPullNode::Params p;
    p.T = 12;
    RunConfig cfg;
    cfg.n = 256;
    cfg.logp = LogP::unit();
    cfg.seed = seed;
    Engine<CcgPushPullNode> eng(cfg, p);
    const RunMetrics m = eng.run();
    EXPECT_TRUE(m.all_active_colored) << seed;
    EXPECT_NE(m.t_complete, kNever);
    EXPECT_FALSE(m.hit_max_steps);
  }
}

TEST(CcgPushPull, TunedTIsSmallerThanPlainCcg) {
  const double eps = 1e-4;
  const Tuning push = tune_ccg(1024, 1024, LogP::unit(), eps);
  const PpTuning pp = tune_ccg_pushpull(1024, 1024, LogP::unit(), eps);
  EXPECT_LT(pp.T_opt, push.T_opt);
  EXPECT_LE(pp.predicted_latency, push.predicted_latency);
}

TEST(CcgPushPull, TunedLatencyBeatsPlainCcg) {
  const double eps = 1e-3;
  const NodeId n = 512;
  const Tuning push = tune_ccg(n, n, LogP::unit(), eps);
  const PpTuning pp = tune_ccg_pushpull(n, n, LogP::unit(), eps);
  double lat_push = 0, lat_pp = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    {
      CcgNode::Params p;
      p.T = push.T_opt + 1;
      RunConfig cfg;
      cfg.n = n;
      cfg.logp = LogP::unit();
      cfg.seed = 900 + static_cast<std::uint64_t>(t);
      Engine<CcgNode> eng(cfg, p);
      lat_push += static_cast<double>(eng.run().t_complete);
    }
    {
      CcgPushPullNode::Params p;
      p.T = pp.T_opt + 1;
      RunConfig cfg;
      cfg.n = n;
      cfg.logp = LogP::unit();
      cfg.seed = 900 + static_cast<std::uint64_t>(t);
      Engine<CcgPushPullNode> eng(cfg, p);
      const RunMetrics m = eng.run();
      ASSERT_TRUE(m.all_active_colored);
      lat_pp += static_cast<double>(m.t_complete);
    }
  }
  EXPECT_LT(lat_pp, lat_push);
}

TEST(CcgPushPull, SurvivesPreFailures) {
  CcgPushPullNode::Params p;
  p.T = 12;
  RunConfig cfg;
  cfg.n = 128;
  cfg.logp = LogP::unit();
  cfg.seed = 3;
  cfg.failures.pre_failed = {5, 6, 7, 80};
  Engine<CcgPushPullNode> eng(cfg, p);
  const RunMetrics m = eng.run();
  EXPECT_EQ(m.n_active, 124);
  EXPECT_TRUE(m.all_active_colored);
}

}  // namespace
}  // namespace cg

// Trial-farm runtime: work-stealing pool semantics, engine-reuse parity,
// the zero-alloc steady-state contract, and the determinism guarantee
// (farm output byte-identical for every thread count / pool shape).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>

#include "harness/campaign.hpp"
#include "harness/experiment.hpp"
#include "harness/runner.hpp"
#include "obs/report.hpp"
#include "runtime/thread_pool.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter.  Sanitizer builds own operator new themselves
// (interceptors + annotations), so the counting overrides - and the tests
// that depend on them - compile out there; the alloc contract is pinned by
// the plain Release/Debug ctest runs.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CG_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CG_ALLOC_COUNTING 0
#endif
#endif
#ifndef CG_ALLOC_COUNTING
#define CG_ALLOC_COUNTING 1
#endif

#if CG_ALLOC_COUNTING

namespace {
std::atomic<std::int64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0)
    throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // CG_ALLOC_COUNTING

namespace cg {
namespace {

// --- ThreadPool semantics --------------------------------------------------

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(resolve_threads(0), 1);
  EXPECT_EQ(resolve_threads(0), resolve_threads(-3));
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(5), 5);
}

TEST(ThreadPool, ManySmallChunksCoverEveryIndexOnce) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  std::atomic<std::int64_t> calls{0};
  pool.parallel_for(10000, 1,
                    [&](std::int64_t b, std::int64_t e, int /*slot*/) {
                      for (std::int64_t i = b; i < e; ++i)
                        sum.fetch_add(i, std::memory_order_relaxed);
                      calls.fetch_add(1, std::memory_order_relaxed);
                    });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
  EXPECT_EQ(calls.load(), 10000);
}

TEST(ThreadPool, ChunkBoundariesRespected) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> covered{0};
  pool.parallel_for(1000, 64,
                    [&](std::int64_t b, std::int64_t e, int /*slot*/) {
                      EXPECT_EQ(b % 64, 0);
                      EXPECT_LE(e - b, 64);
                      covered.fetch_add(e - b, std::memory_order_relaxed);
                    });
  EXPECT_EQ(covered.load(), 1000);
}

TEST(ThreadPool, NestedSubmitRunsInline) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> inner{0};
  std::atomic<std::int64_t> outer{0};
  pool.parallel_for(8, 1, [&](std::int64_t b, std::int64_t e, int /*slot*/) {
    // A nested parallel_for from inside pool work must not deadlock; it
    // runs inline on the calling worker with slot 0.
    pool.parallel_for(16, 4,
                      [&](std::int64_t b2, std::int64_t e2, int slot2) {
                        EXPECT_EQ(slot2, 0);
                        inner.fetch_add(e2 - b2, std::memory_order_relaxed);
                      });
    outer.fetch_add(e - b, std::memory_order_relaxed);
  });
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 8 * 16);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [&](std::int64_t b, std::int64_t, int) {
                          if (b == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  std::atomic<std::int64_t> n{0};
  pool.parallel_for(100, 1, [&](std::int64_t b, std::int64_t e, int) {
    n.fetch_add(e - b, std::memory_order_relaxed);
  });
  EXPECT_EQ(n.load(), 100);
}

TEST(ThreadPool, ParallelismCapLimitsSlots) {
  ThreadPool pool(8);
  std::atomic<int> max_slot{0};
  pool.parallel_for(2000, 1, /*parallelism=*/2,
                    [&](std::int64_t, std::int64_t, int slot) {
                      int cur = max_slot.load(std::memory_order_relaxed);
                      while (slot > cur &&
                             !max_slot.compare_exchange_weak(cur, slot)) {
                      }
                    });
  EXPECT_LT(max_slot.load(), 2);
}

TEST(ThreadPool, TinyCountRunsInlineWithSlotZero) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(3, 8, [&](std::int64_t b, std::int64_t e, int slot) {
    EXPECT_EQ(slot, 0);
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 3);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, EnsureThreadsGrows) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  pool.ensure_threads(3);
  EXPECT_EQ(pool.threads(), 3);
  pool.ensure_threads(2);  // never shrinks
  EXPECT_EQ(pool.threads(), 3);
  std::atomic<std::int64_t> n{0};
  pool.parallel_for(100, 1, [&](std::int64_t b, std::int64_t e, int) {
    n.fetch_add(e - b, std::memory_order_relaxed);
  });
  EXPECT_EQ(n.load(), 100);
}

// --- Determinism contract --------------------------------------------------

TrialSpec faulty_spec() {
  TrialSpec spec;
  spec.algo = Algo::kCcg;
  spec.acfg.T = 16;
  spec.n = 96;
  spec.logp = LogP::unit();
  spec.seed = 1234;
  spec.trials = 48;
  spec.jitter_max = 1;
  spec.drop_prob = 0.02;
  spec.pre_failures = 2;
  spec.online_failures = 1;
  spec.restarts = 1;
  spec.stragglers = 1;
  spec.partition_nodes = 4;
  return spec;
}

TEST(TrialFarm, ParityAcrossThreadCounts) {
  TrialSpec spec = faulty_spec();
  spec.threads = 1;
  const TrialAggregate a1 = run_trials(spec);
  spec.threads = 2;
  const TrialAggregate a2 = run_trials(spec);
  spec.threads = 8;
  const TrialAggregate a8 = run_trials(spec);

  // Byte-identical report JSON: the farm absorbs per-trial results in
  // trial order regardless of which worker ran which trial, so even the
  // FP-sensitive Welford summaries and raw sample orderings must match.
  const std::string j1 = obs::to_json(a1);
  EXPECT_EQ(j1, obs::to_json(a2));
  EXPECT_EQ(j1, obs::to_json(a8));
  EXPECT_EQ(a1.t_complete.raw(), a8.t_complete.raw());
  EXPECT_EQ(a1.t_last_colored.raw(), a8.t_last_colored.raw());
  EXPECT_EQ(a1.trials, a8.trials);
}

TEST(TrialFarm, AutoThreadsMatchesExplicit) {
  TrialSpec spec = faulty_spec();
  spec.trials = 24;
  spec.threads = 0;  // auto-detect
  const TrialAggregate aauto = run_trials(spec);
  spec.threads = 1;
  const TrialAggregate a1 = run_trials(spec);
  EXPECT_EQ(obs::to_json(aauto), obs::to_json(a1));
}

TEST(TrialFarm, CampaignParityAcrossThreadCounts) {
  CampaignConfig cfg;
  cfg.n = 48;
  cfg.logp = LogP::unit();
  cfg.seed = 77;
  cfg.trials = 12;
  AlgoConfig base;
  base.T = 14;
  const auto entries = default_entries(Algo::kCcg, base);
  auto scenarios = default_fault_scenarios();
  scenarios.resize(5);  // clean, losses, jitter, crash: enough shapes

  cfg.threads = 1;
  const CampaignResult r1 = run_campaign(cfg, scenarios, entries);
  cfg.threads = 5;
  const CampaignResult r5 = run_campaign(cfg, scenarios, entries);
  ASSERT_EQ(r1.cells.size(), r5.cells.size());
  EXPECT_EQ(obs::to_json(r1), obs::to_json(r5));
  EXPECT_EQ(r1.failed_cells, r5.failed_cells);
}

// --- Engine reuse parity ---------------------------------------------------

TEST(TrialFarm, WorkspaceMatchesFreshEngine) {
  const TrialSpec spec = faulty_spec();
  TrialWorkspace ws;
  for (int t = 0; t < 16; ++t) {
    const RunConfig rcfg = trial_run_config(spec, t);
    const RunMetrics fresh = run_once(spec.algo, spec.acfg, rcfg);
    const RunMetrics reused = ws.run(spec, t);
    EXPECT_EQ(obs::to_json(fresh), obs::to_json(reused)) << "trial " << t;
  }
}

TEST(TrialFarm, WorkspaceSurvivesAlgoSwitch) {
  TrialSpec ccg = faulty_spec();
  TrialSpec fcg = faulty_spec();
  fcg.algo = Algo::kFcg;
  fcg.acfg.fcg_f = 1;
  TrialWorkspace ws;
  const TrialSpec* seq[] = {&ccg, &fcg, &ccg, &fcg, &ccg};
  int t = 0;
  for (const TrialSpec* spec : seq) {
    const RunConfig rcfg = trial_run_config(*spec, t);
    const RunMetrics fresh = run_once(spec->algo, spec->acfg, rcfg);
    const RunMetrics reused = ws.run(*spec, t);
    EXPECT_EQ(obs::to_json(fresh), obs::to_json(reused)) << "leg " << t;
    ++t;
  }
}

// --- Zero-alloc steady state -----------------------------------------------

#if CG_ALLOC_COUNTING

TrialSpec clean_spec() {
  TrialSpec spec;
  spec.algo = Algo::kCcg;
  spec.acfg.T = 14;
  spec.n = 128;
  spec.logp = LogP::unit();
  spec.seed = 9;
  return spec;
}

TEST(TrialFarm, WorkspaceZeroAllocSteadyState) {
  const TrialSpec spec = clean_spec();
  TrialWorkspace ws;
  // Warm pass: slabs, calendar slots, and scratch vectors reach their
  // high-water capacities for these exact trials.
  for (int t = 0; t < 32; ++t) ws.run(spec, t);
  // Steady state: replaying the same trials must reuse every buffer.
  const std::int64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int t = 0; t < 32; ++t) ws.run(spec, t);
  const std::int64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(delta, 0) << "per-trial heap allocations regressed";
}

TEST(TrialFarm, SbrbWorkspaceZeroAllocSteadyState) {
  // SBRB rides the same contract: SbrbNode::reset_for_run() preserves the
  // capacity of its subscriber lists and send-staging slabs, so replayed
  // clean-network trials touch no heap (the point of the flat sample
  // arrays + compact Staged entries - see docs/PERF.md §7).
  TrialSpec spec = clean_spec();
  spec.algo = Algo::kSbrb;
  spec.acfg.sbrb_eps = 1e-3;
  spec.acfg.sbrb_byz_frac = 0.1;
  TrialWorkspace ws;
  for (int t = 0; t < 32; ++t) ws.run(spec, t);
  const std::int64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int t = 0; t < 32; ++t) ws.run(spec, t);
  const std::int64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(delta, 0) << "per-trial SBRB heap allocations regressed";
}

TEST(TrialFarm, FarmAllocationsAmortized) {
  // End-to-end farm: allocations must not scale per-trial beyond the
  // aggregate's own sample storage (geometric growth, a handful of
  // reallocations), no matter how many trials run.
  TrialSpec spec = clean_spec();
  spec.threads = 2;
  spec.trials = 128;
  run_trials(spec);  // warm the shared pool + result buffers
  std::int64_t before = g_allocs.load(std::memory_order_relaxed);
  run_trials(spec);
  const std::int64_t small =
      g_allocs.load(std::memory_order_relaxed) - before;
  spec.trials = 384;
  before = g_allocs.load(std::memory_order_relaxed);
  run_trials(spec);
  const std::int64_t large =
      g_allocs.load(std::memory_order_relaxed) - before;
  // 3x the trials must cost far fewer than 1-alloc-per-extra-trial.
  EXPECT_LT(large - small, 256) << "small=" << small << " large=" << large;
}

#endif  // CG_ALLOC_COUNTING

}  // namespace
}  // namespace cg

// Randomized configuration fuzzing: hundreds of random universes (size,
// LogP, gossip length, failures, jitter, rx policy) checked against the
// universal invariants.  Any violation prints the reproducing config.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/runner.hpp"

namespace cg {
namespace {

struct FuzzConfig {
  Algo algo;
  NodeId n;
  Step l_over_o;
  Step T;
  int f;
  int pre_failures;
  int online_failures;
  Step jitter;
  RxPolicy rx;
  std::uint64_t seed;

  std::string describe() const {
    std::ostringstream os;
    os << algo_name(algo) << " n=" << n << " L/O=" << l_over_o << " T=" << T
       << " f=" << f << " pre=" << pre_failures << " online=" << online_failures
       << " jitter=" << jitter
       << " rx=" << (rx == RxPolicy::kDrainAll ? "drain" : "one")
       << " seed=" << seed;
    return os.str();
  }
};

FuzzConfig random_config(Xoshiro256& rng, bool with_failures) {
  FuzzConfig c{};
  const Algo algos[] = {Algo::kGos, Algo::kOcg,      Algo::kCcg, Algo::kFcg,
                        Algo::kBig, Algo::kOcgChain, Algo::kOpt};
  c.algo = algos[rng.bounded(7)];
  c.n = static_cast<NodeId>(2 + rng.bounded(180));
  c.l_over_o = rng.uniform(0, 3);
  c.T = rng.uniform(0, 25);
  c.f = static_cast<int>(rng.uniform(0, 3));
  if (with_failures) {
    c.pre_failures = static_cast<int>(rng.bounded(
        static_cast<std::uint64_t>(std::max<NodeId>(1, c.n / 4))));
    c.online_failures = static_cast<int>(
        rng.bounded(static_cast<std::uint64_t>(c.f) + 1));
    if (c.pre_failures + c.online_failures >= c.n) {
      c.pre_failures = 0;
      c.online_failures = 0;
    }
  }
  c.jitter = rng.uniform(0, 2);
  c.rx = rng.bounded(2) == 0 ? RxPolicy::kDrainAll : RxPolicy::kOnePerStep;
  c.seed = rng.next();
  return c;
}

void check_invariants(const FuzzConfig& c, const RunMetrics& m) {
  SCOPED_TRACE(c.describe());
  // Universal: termination, accounting, ordering.
  ASSERT_FALSE(m.hit_max_steps);
  // Online failures scheduled past the run's end never fire, so active
  // count sits between (n - pre - online) and (n - pre).
  ASSERT_GE(m.n_active, c.n - c.pre_failures - c.online_failures);
  ASSERT_LE(m.n_active, c.n - c.pre_failures);
  ASSERT_LE(m.n_colored, m.n_active);
  ASSERT_LE(m.n_delivered, m.n_colored);
  ASSERT_GE(m.msgs_total, 0);
  // FCG safety holds at any point of this sweep (online <= f).
  if (c.algo == Algo::kFcg) {
    ASSERT_TRUE(m.all_or_nothing_delivery());
  }
  // CCG/FCG reach every active node without online failures (jitter
  // included: their stop rules are order-insensitive).
  if (c.online_failures == 0 &&
      (c.algo == Algo::kCcg || c.algo == Algo::kFcg)) {
    ASSERT_TRUE(m.all_active_colored);
  }
  // OPT is NOT fault-tolerant (a dead relay orphans its subtree - the
  // paper's Fig. 7b remark), so require it only on clean universes.
  if (c.algo == Algo::kOpt && c.pre_failures == 0 &&
      c.online_failures == 0) {
    ASSERT_TRUE(m.all_active_colored);
  }
  if (c.algo == Algo::kBig && c.pre_failures == 0 &&
      c.online_failures == 0) {
    ASSERT_TRUE(m.all_active_colored);
  }
}

RunMetrics run_fuzz(const FuzzConfig& c) {
  RunConfig cfg;
  cfg.n = c.n;
  cfg.logp = LogP{.l_over_o = c.l_over_o, .o_us = 1.0};
  cfg.seed = c.seed;
  cfg.rx = c.rx;
  cfg.jitter_max = c.jitter;
  if (c.pre_failures > 0 || c.online_failures > 0) {
    Xoshiro256 frng(c.seed ^ 0xF417);
    cfg.failures = FailureSchedule::random(c.n, c.pre_failures,
                                           c.online_failures,
                                           c.T + 6 * (c.l_over_o + 2) + 20,
                                           frng);
  }
  AlgoConfig acfg;
  acfg.T = c.T;
  acfg.ocg_corr_sends = 2 * c.n;  // full coverage budget for OCG/chain
  acfg.fcg_f = c.f;
  return run_once(c.algo, acfg, cfg);
}

TEST(Fuzz, FailureFreeUniverses) {
  Xoshiro256 rng(20260706);
  for (int i = 0; i < 250; ++i) {
    const FuzzConfig c = random_config(rng, /*with_failures=*/false);
    check_invariants(c, run_fuzz(c));
  }
}

TEST(Fuzz, FailingUniverses) {
  Xoshiro256 rng(424242);
  for (int i = 0; i < 250; ++i) {
    FuzzConfig c = random_config(rng, /*with_failures=*/true);
    if (c.algo == Algo::kBig) {
      // BIG only guarantees delivery up to log2(n)-1 failures; restrict
      // its fuzzing to the failure-free invariants.
      c.pre_failures = 0;
      c.online_failures = 0;
    }
    check_invariants(c, run_fuzz(c));
  }
}

}  // namespace
}  // namespace cg

// Tests for the observability layer (src/obs/): trace sinks and their
// serialization formats, per-step time-series metrics, the analytic-drift
// check against c(t), the metrics registry, and the JSON run reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/coloring.hpp"
#include "common/stats.hpp"
#include "harness/experiment.hpp"
#include "harness/runner.hpp"
#include "obs/json.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/report.hpp"
#include "obs/series.hpp"
#include "obs/trace_sinks.hpp"
#include "sim/trace.hpp"

namespace cg {
namespace {

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

// --- name round-trips -------------------------------------------------

TEST(TraceNames, EveryKindHasANameAndParsesBack) {
  for (int k = 0; k < kTraceKindCount; ++k) {
    const auto kind = static_cast<TraceEvent::Kind>(k);
    const std::string name = trace_kind_name(kind);
    EXPECT_NE(name, "?") << "kind " << k;
    TraceEvent::Kind parsed;
    ASSERT_TRUE(trace_kind_from_name(name, parsed)) << name;
    EXPECT_EQ(parsed, kind);
  }
  TraceEvent::Kind parsed;
  EXPECT_FALSE(trace_kind_from_name("bogus", parsed));
}

TEST(TraceNames, EveryTagHasANameAndParsesBack) {
  for (int t = 0; t < kTagCount; ++t) {
    const auto tag = static_cast<Tag>(t);
    const std::string name = tag_name(tag);
    EXPECT_NE(name, "?") << "tag " << t;
    Tag parsed;
    ASSERT_TRUE(tag_from_name(name, parsed)) << name;
    EXPECT_EQ(parsed, tag);
  }
  Tag parsed;
  EXPECT_FALSE(tag_from_name("bogus", parsed));
}

TEST(TraceNames, EveryTagHasAPhase) {
  for (int t = 0; t < kTagCount; ++t) {
    const obs::Phase p = obs::phase_of(static_cast<Tag>(t));
    EXPECT_GE(static_cast<int>(p), 0);
    EXPECT_LT(static_cast<int>(p), obs::kPhaseCount);
    EXPECT_STRNE(obs::phase_name(p), "?");
  }
}

// --- JSONL ------------------------------------------------------------

TEST(Jsonl, RoundTripsEveryKindAndTag) {
  std::vector<TraceEvent> events;
  for (int k = 0; k < kTraceKindCount; ++k)
    for (int t = 0; t < kTagCount; ++t)
      events.push_back(TraceEvent{.step = 31 * k + t,
                                  .kind = static_cast<TraceEvent::Kind>(k),
                                  .node = 1000 + k,
                                  .peer = t,
                                  .tag = static_cast<Tag>(t)});
  for (const auto& ev : events) {
    const std::string line = obs::to_jsonl(ev);
    TraceEvent back{};
    ASSERT_TRUE(obs::from_jsonl(line, back)) << line;
    EXPECT_EQ(back, ev) << line;
  }
}

TEST(Jsonl, RejectsMalformedLines) {
  TraceEvent ev{};
  EXPECT_FALSE(obs::from_jsonl("", ev));
  EXPECT_FALSE(obs::from_jsonl("{}", ev));
  EXPECT_FALSE(obs::from_jsonl("{\"step\":1}", ev));
  EXPECT_FALSE(obs::from_jsonl(
      R"({"step":1,"kind":"bogus","node":0,"peer":0,"tag":"gossip"})", ev));
  EXPECT_FALSE(obs::from_jsonl(
      R"({"step":1,"kind":"send","node":0,"peer":0,"tag":"bogus"})", ev));
}

TEST(Jsonl, FileSinkStreamsARunLosslessly) {
  const std::string path = temp_path("trace.jsonl");
  VectorTrace expect;
  {
    obs::JsonlTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    obs::TeeTraceSink tee;
    tee.add(&sink);
    tee.add(&expect);
    RunConfig cfg;
    cfg.n = 64;
    cfg.logp = LogP::unit();
    cfg.seed = 4;
    cfg.trace = &tee;
    AlgoConfig acfg;
    acfg.T = 20;
    run_once(Algo::kCcg, acfg, cfg);
  }  // destructor flushes + closes

  const std::string body = slurp(path);
  ASSERT_FALSE(body.empty());
  std::vector<TraceEvent> parsed;
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t eol = body.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "missing trailing newline";
    TraceEvent ev{};
    ASSERT_TRUE(obs::from_jsonl(body.substr(pos, eol - pos), ev));
    parsed.push_back(ev);
    pos = eol + 1;
  }
  EXPECT_EQ(parsed, expect.events());
}

// --- Chrome trace -----------------------------------------------------

TEST(ChromeTrace, WritesWellFormedJsonWithPerNodeTracks) {
  const std::string path = temp_path("trace.json");
  obs::ChromeTraceSink sink(path, /*us_per_step=*/2.0);
  RunConfig cfg;
  cfg.n = 12;
  cfg.logp = LogP::unit();
  cfg.seed = 3;
  cfg.trace = &sink;
  cfg.failures.pre_failed = {7};
  AlgoConfig acfg;
  acfg.T = 4;
  acfg.fcg_f = 1;
  run_once(Algo::kFcg, acfg, cfg);
  ASSERT_TRUE(sink.close());
  EXPECT_TRUE(sink.close());  // idempotent

  const std::string body = slurp(path);
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body.front(), '{');
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"displayTimeUnit\""), std::string::npos);
  // One metadata track per node, phase categories, both event types.
  EXPECT_NE(body.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(body.find("\"node 0\""), std::string::npos);
  EXPECT_NE(body.find("\"node 11\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(body.find("\"cat\":\"gossip\""), std::string::npos);
  EXPECT_NE(body.find("\"cat\":\"correction\""), std::string::npos);
  // Braces and brackets balance (cheap well-formedness check; none of the
  // emitted strings contain braces).
  std::int64_t depth = 0, sq = 0;
  for (const char c : body) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (c == '[') ++sq;
    if (c == ']') --sq;
    ASSERT_GE(depth, 0);
    ASSERT_GE(sq, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(sq, 0);
}

// --- counting sink ----------------------------------------------------

TEST(CountingSink, AgreesWithVectorTraceAndRunMetrics) {
  obs::CountingTraceSink count;
  VectorTrace vec;
  obs::TeeTraceSink tee;
  tee.add(&count);
  tee.add(&vec);
  RunConfig cfg;
  cfg.n = 100;
  cfg.logp = LogP::unit();
  cfg.seed = 8;
  cfg.trace = &tee;
  AlgoConfig acfg;
  acfg.T = 18;
  acfg.ocg_corr_sends = 8;
  const RunMetrics m = run_once(Algo::kOcg, acfg, cfg);

  EXPECT_EQ(count.total(), static_cast<std::int64_t>(vec.events().size()));
  EXPECT_EQ(count.count(TraceEvent::Kind::kSend), m.msgs_total);
  EXPECT_EQ(count.sends(obs::Phase::kGossip), m.msgs_gossip);
  EXPECT_EQ(count.sends(obs::Phase::kCorrection), m.msgs_correction);
  EXPECT_EQ(count.sends(obs::Phase::kSos), m.msgs_sos);
  EXPECT_EQ(count.sends(obs::Phase::kTree), m.msgs_tree);
  EXPECT_EQ(count.count(TraceEvent::Kind::kColored), m.n_colored);

  count.clear();
  EXPECT_EQ(count.total(), 0);
}

// --- step series ------------------------------------------------------

TEST(StepSeries, TotalsMatchRunMetrics) {
  obs::StepSeries series;
  RunConfig cfg;
  cfg.n = 128;
  cfg.logp = LogP{.l_over_o = 2, .o_us = 1.0};
  cfg.seed = 21;
  cfg.trace = &series;
  AlgoConfig acfg;
  acfg.T = 22;
  const RunMetrics m = run_once(Algo::kCcg, acfg, cfg);

  ASSERT_GT(series.steps(), 0);
  const auto colored = series.colored_cumulative();
  EXPECT_EQ(colored.back(), m.n_colored);
  EXPECT_EQ(colored.front(), 1);  // root at step 0

  std::int64_t sends = 0, gossip = 0, corr = 0;
  for (Step s = 0; s < series.steps(); ++s) {
    sends += series.sends_total()[static_cast<std::size_t>(s)];
    gossip += series.sends(obs::Phase::kGossip)[static_cast<std::size_t>(s)];
    corr += series.sends(obs::Phase::kCorrection)[static_cast<std::size_t>(s)];
  }
  EXPECT_EQ(sends, m.msgs_total);
  EXPECT_EQ(gossip, m.msgs_gossip);
  EXPECT_EQ(corr, m.msgs_correction);

  // In-flight residue counts sends never processed: here no wire loss, so
  // the residue is exactly the tail of ring messages that reached nodes
  // which had already completed (at most one per node).
  EXPECT_GE(series.in_flight().back(), 0);
  EXPECT_LT(series.in_flight().back(), 128);
  // CCG's ring correction visits every node; the watermark ends at the
  // number of distinct correction senders (<= n, > 0 here).
  EXPECT_GT(series.ring_watermark().back(), 0);
  EXPECT_LE(series.ring_watermark().back(), 128);

  // Serialization smoke: header + one row per step; JSON parses shape-wise.
  const std::string csv = series.to_csv();
  EXPECT_EQ(static_cast<Step>(std::count(csv.begin(), csv.end(), '\n')),
            series.steps() + 1);
  const std::string json = series.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"colored\""), std::string::npos);
  EXPECT_NE(json.find("\"ring_watermark\""), std::string::npos);
}

TEST(StepSeries, ParallelEngineMergePathMatchesSerial) {
  AlgoConfig acfg;
  acfg.T = 16;
  auto run_series = [&](EngineKind kind, int threads, obs::StepSeries& out) {
    RunConfig cfg;
    cfg.n = 96;
    cfg.logp = LogP::unit();
    cfg.seed = 13;
    cfg.jitter_max = 1;
    cfg.drop_prob = 0.05;
    cfg.trace = &out;
    run_once(Algo::kFcg, acfg, cfg, {kind, threads});
  };
  obs::StepSeries serial, par;
  run_series(EngineKind::kStepped, 1, serial);
  run_series(EngineKind::kParallel, 3, par);
  EXPECT_EQ(serial.colored_cumulative(), par.colored_cumulative());
  EXPECT_EQ(serial.sends_total(), par.sends_total());
  EXPECT_EQ(serial.delivers(), par.delivers());
  EXPECT_EQ(serial.in_flight(), par.in_flight());
  EXPECT_EQ(serial.ring_watermark(), par.ring_watermark());
}

TEST(StepSeries, WithLossInFlightEndsPositive) {
  obs::StepSeries series;
  RunConfig cfg;
  cfg.n = 64;
  cfg.logp = LogP::unit();
  cfg.seed = 2;
  cfg.drop_prob = 0.2;
  cfg.trace = &series;
  AlgoConfig acfg;
  acfg.T = 14;
  run_once(Algo::kGos, acfg, cfg);
  // Lost messages are sends that never deliver - visible as residue.
  EXPECT_GT(series.in_flight().back(), 0);
}

// --- drift vs the analytic c(t) ---------------------------------------

// Acceptance check: a GOS run's observed coloring curve stays close to the
// paper's recurrence c(t).  Single trials carry sampling noise, so the
// tolerance is loose-ish per seed and tighter on the mean.
TEST(Drift, GossipColoringTracksAnalyticCurve) {
  const NodeId n = 1024;
  const LogP logp{.l_over_o = 2, .o_us = 1.0};
  AlgoConfig acfg;
  acfg.T = 45;

  double sum_frac = 0;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    obs::StepSeries series;
    RunConfig cfg;
    cfg.n = n;
    cfg.logp = logp;
    cfg.seed = seed;
    cfg.trace = &series;
    const RunMetrics m = run_once(Algo::kGos, acfg, cfg);
    const obs::DriftReport drift =
        obs::compare_to_model(series, n, m.n_active, acfg.T, logp);
    EXPECT_GT(drift.compared_steps, acfg.T);
    EXPECT_LT(drift.max_frac, 0.08) << "seed " << seed;
    sum_frac += drift.max_frac;
  }
  EXPECT_LT(sum_frac / 3.0, 0.05);
}

TEST(Drift, ReportsZeroAgainstItself) {
  std::vector<std::int64_t> observed = {1, 2, 4, 8};
  std::vector<double> model = {1, 2, 4, 8};
  const obs::DriftReport d = obs::compare_to_model(observed, model, 8);
  EXPECT_EQ(d.compared_steps, 4);
  EXPECT_EQ(d.max_abs, 0);
  EXPECT_EQ(d.max_frac, 0);
  EXPECT_EQ(d.mean_abs, 0);
}

TEST(Drift, FindsTheWorstStep) {
  std::vector<std::int64_t> observed = {1, 2, 10, 8};
  std::vector<double> model = {1, 3, 4, 8, 99};  // extra tail ignored
  const obs::DriftReport d = obs::compare_to_model(observed, model, 10);
  EXPECT_EQ(d.compared_steps, 4);
  EXPECT_EQ(d.max_abs, 6);
  EXPECT_EQ(d.max_abs_at, 2);
  EXPECT_DOUBLE_EQ(d.max_frac, 0.6);
  EXPECT_DOUBLE_EQ(d.mean_abs, (0 + 1 + 6 + 0) / 4.0);
}

// --- stats: percentiles and SummaryStat -------------------------------

TEST(Stats, SamplesPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.p50(), 50);
  EXPECT_EQ(s.p90(), 90);
  EXPECT_EQ(s.p99(), 99);
}

TEST(Stats, SummaryStatMatchesItsParts) {
  SummaryStat sum;
  RunningStat run;
  Samples samp;
  for (const double x : {5.0, 1.0, 9.0, 3.0, 7.0, 2.0}) {
    sum.add(x);
    run.add(x);
    samp.add(x);
  }
  EXPECT_EQ(sum.count(), 6u);
  EXPECT_DOUBLE_EQ(sum.mean(), run.mean());
  EXPECT_DOUBLE_EQ(sum.stddev(), run.stddev());
  EXPECT_DOUBLE_EQ(sum.ci95_halfwidth(), run.ci95_halfwidth());
  EXPECT_EQ(sum.min(), 1.0);
  EXPECT_EQ(sum.max(), 9.0);
  EXPECT_EQ(sum.p50(), samp.p50());
  EXPECT_EQ(sum.p99(), samp.p99());

  SummaryStat other;
  other.add(100.0);
  sum.merge(other);
  EXPECT_EQ(sum.count(), 7u);
  EXPECT_EQ(sum.max(), 100.0);
  EXPECT_EQ(sum.p99(), 100.0);
}

// --- partial-coloring latency (satellite fix) --------------------------

TEST(PartialColoring, DefaultIsNeverNotZero) {
  EXPECT_EQ(RunMetrics{}.t_last_colored_partial, kNever);
}

// With every other node pre-failed only the root ever colors - at step 0,
// which the old `0` default could not distinguish from "nobody colored".
TEST(PartialColoring, RootOnlyRunReportsStepZero) {
  RunConfig cfg;
  cfg.n = 32;
  cfg.logp = LogP::unit();
  cfg.seed = 1;
  for (NodeId i = 1; i < cfg.n; ++i) cfg.failures.pre_failed.push_back(i);
  AlgoConfig acfg;
  acfg.T = 10;
  const RunMetrics m = run_once(Algo::kGos, acfg, cfg);
  EXPECT_EQ(m.n_colored, 1);
  EXPECT_EQ(m.t_last_colored_partial, 0);
  EXPECT_NE(m.t_last_colored_partial, kNever);
}

TEST(PartialColoring, AggregateCollectsSamples) {
  TrialSpec spec;
  spec.algo = Algo::kCcg;
  spec.n = 64;
  spec.logp = LogP::unit();
  spec.acfg.T = 14;
  spec.trials = 10;
  spec.seed = 5;
  const TrialAggregate agg = run_trials(spec);
  EXPECT_EQ(agg.t_last_colored_partial.count(), 10u);
  // Everyone colored => the partial and full latencies coincide per trial.
  EXPECT_EQ(agg.all_colored_trials, 10);
  EXPECT_EQ(agg.t_last_colored_partial.max(), agg.t_last_colored.max());
}

// --- metrics registry and JSON reports --------------------------------

TEST(Registry, FillsFromARunAndSerializes) {
  EngineProfile prof;
  RunConfig cfg;
  cfg.n = 80;
  cfg.logp = LogP::unit();
  cfg.seed = 6;
  cfg.record_node_detail = true;
  cfg.profile = &prof;
  AlgoConfig acfg;
  acfg.T = 15;
  const RunMetrics m = run_once(Algo::kCcg, acfg, cfg);

  obs::MetricsRegistry reg;
  obs::fill_registry(reg, m, &prof);
  EXPECT_EQ(reg.counter("nodes.colored").value(), m.n_colored);
  EXPECT_EQ(reg.counter("msgs.total").value(), m.msgs_total);
  EXPECT_EQ(reg.counter("engine.events").value(), prof.events());
  EXPECT_EQ(reg.histogram("node.colored_at").count(),
            static_cast<std::size_t>(m.n_colored));
  EXPECT_GT(prof.events(), 0);
  EXPECT_GT(prof.events_per_sec(), 0);
  EXPECT_GT(prof.wall_s, 0);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"nodes.colored\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.events_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"node.colored_at\""), std::string::npos);
}

TEST(Report, RunMetricsJsonUsesNullForNever) {
  RunMetrics m;
  m.n_total = 4;
  m.n_active = 4;
  m.n_colored = 1;
  const std::string json = obs::to_json(m);
  EXPECT_NE(json.find("\"t_last_colored\":null"), std::string::npos);
  EXPECT_NE(json.find("\"t_complete\":null"), std::string::npos);
  EXPECT_NE(json.find("\"inconsistency\":0.75"), std::string::npos);

  m.t_last_colored = 17;
  EXPECT_NE(obs::to_json(m).find("\"t_last_colored\":17"), std::string::npos);
}

TEST(Report, TrialAggregateJsonCarriesPercentiles) {
  TrialSpec spec;
  spec.algo = Algo::kOcg;
  spec.n = 48;
  spec.logp = LogP::unit();
  spec.acfg.T = 12;
  spec.acfg.ocg_corr_sends = 8;
  spec.trials = 8;
  const std::string json = obs::to_json(run_trials(spec));
  EXPECT_NE(json.find("\"trials\":8"), std::string::npos);
  EXPECT_NE(json.find("\"t_last_colored_partial\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"stddev\""), std::string::npos);
  EXPECT_NE(json.find("\"all_colored_rate\":1"), std::string::npos);
}

// --- JSON writer ------------------------------------------------------

TEST(JsonWriter, EscapesAndNests) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("s", "a\"b\\c\n\t\x01");
  w.key("arr");
  w.begin_array();
  w.value(1);
  w.value(true);
  w.null();
  w.end_array();
  w.kv("f", 0.5);
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0001\","
            "\"arr\":[1,true,null],\"f\":0.5}");
}

}  // namespace
}  // namespace cg

// Byzantine adversary tier (sim/fault/byzantine.hpp) + the sample-based
// Byzantine reliable broadcast family (gossip/sbrb.hpp):
//
//   * sample-size math: monotone in the target epsilon, thresholds inside
//     their samples, capped by the population;
//   * config validation: Byzantine nodes must be in range, unique and
//     disjoint from every crash/restart set;
//   * the attack: a single equivocating ROOT provably splits plain CCG -
//     correct nodes deliver two different signed payloads - while SBRB's
//     echo/ready quorums hold consistency in every trial, for every
//     adversary mode, at 10% Byzantine;
//   * determinism: under combined Byzantine + burst-loss + crash faults
//     the canonically sorted JSONL trace is BYTE-IDENTICAL across all
//     four engines, shard counts {1,2,8} and thread counts {1,8}
//     (adversary decisions are pure hashes - no RNG stream consumption);
//   * forensics: a campaign over the Byzantine grid dumps replayable
//     artifacts for CCG's consistency violations, and the artifact rings
//     parse back through obs::from_jsonl().
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "gossip/sbrb.hpp"
#include "harness/campaign.hpp"
#include "harness/runner.hpp"
#include "harness/scenarios.hpp"
#include "obs/trace_sinks.hpp"
#include "sim/fault/validate.hpp"
#include "sim/trace.hpp"

namespace cg {
namespace {

// ---------------------------------------------------------------------------
// Sample sizing
// ---------------------------------------------------------------------------

TEST(SbrbSamples, GrowWithTighterEpsilon) {
  const SbrbSamples loose = sbrb_samples(1 << 20, 1e-2, 0.1);
  const SbrbSamples tight = sbrb_samples(1 << 20, 1e-8, 0.1);
  EXPECT_GE(tight.g, loose.g);
  EXPECT_GE(tight.e, loose.e);
  EXPECT_GE(tight.r, loose.r);
  EXPECT_GE(tight.d, loose.d);
  EXPECT_GT(tight.g, 0);
}

TEST(SbrbSamples, ThresholdsStayInsideSamples) {
  for (const NodeId n : {2, 5, 17, 64, 500, 100000}) {
    for (const double eps : {0.1, 1e-3, 1e-6}) {
      for (const double byz : {0.0, 0.1, 0.3}) {
        const SbrbSamples s = sbrb_samples(n, eps, byz);
        SCOPED_TRACE("n=" + std::to_string(n) + " eps=" + std::to_string(eps));
        EXPECT_GE(s.e_thresh, 1);
        EXPECT_LE(s.e_thresh, s.e);
        EXPECT_GE(s.r_thresh, 1);
        EXPECT_LE(s.r_thresh, s.r);
        EXPECT_GE(s.d_thresh, 1);
        EXPECT_LE(s.d_thresh, s.d);
        // More Byzantine tolerance can only raise the echo quorum.
        EXPECT_GE(s.e_thresh, sbrb_samples(n, eps, 0.0).e_thresh);
      }
    }
  }
}

TEST(SbrbSamples, CappedByPopulation) {
  const SbrbSamples s = sbrb_samples(5, 1e-9, 0.1);
  EXPECT_LE(s.g, 4);  // can never sample more than n-1 peers
  EXPECT_LE(s.e, 4);
  EXPECT_LE(s.r, 4);
  EXPECT_LE(s.d, 4);
  const SbrbSamples one = sbrb_samples(1, 1e-3, 0.1);
  EXPECT_EQ(one.g, 0);  // a singleton has nobody to sample
}

// ---------------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------------

RunConfig byz_cfg(NodeId n) {
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP::unit();
  cfg.seed = 3;
  return cfg;
}

TEST(ByzantineValidation, AcceptsDisjointSets) {
  RunConfig cfg = byz_cfg(32);
  cfg.failures.online.push_back({5, 9});
  cfg.failures.restarts.push_back({6, 10, 20});
  cfg.byzantine.nodes.push_back({7, ByzMode::kEquivocator});
  cfg.byzantine.nodes.push_back({8, ByzMode::kSilent});
  EXPECT_EQ(config_error(cfg), "");
}

TEST(ByzantineValidation, RejectsOutOfRangeAndDuplicates) {
  RunConfig cfg = byz_cfg(16);
  cfg.byzantine.nodes.push_back({16, ByzMode::kSilent});
  EXPECT_NE(config_error(cfg).find("out of range"), std::string::npos);
  cfg.byzantine.nodes.clear();
  cfg.byzantine.nodes.push_back({4, ByzMode::kSilent});
  cfg.byzantine.nodes.push_back({4, ByzMode::kSpammer});
  EXPECT_NE(config_error(cfg).find("twice"), std::string::npos);
}

TEST(ByzantineValidation, RejectsOverlapWithCrashAndRestartSets) {
  for (int which = 0; which < 3; ++which) {
    RunConfig cfg = byz_cfg(32);
    if (which == 0) cfg.failures.pre_failed.push_back(9);
    if (which == 1) cfg.failures.online.push_back({9, 12});
    if (which == 2) cfg.failures.restarts.push_back({9, 8, 16});
    cfg.byzantine.nodes.push_back({9, ByzMode::kCorruptor});
    SCOPED_TRACE(which);
    EXPECT_NE(config_error(cfg).find("both byzantine"), std::string::npos);
  }
}

TEST(ByzantineValidation, ModeNamesRoundTrip) {
  for (int m = 0; m < kByzModeCount; ++m) {
    const auto mode = static_cast<ByzMode>(m);
    ByzMode back = ByzMode::kSilent;
    EXPECT_TRUE(byz_mode_from_name(byz_mode_name(mode), back));
    EXPECT_EQ(back, mode);
  }
  ByzMode out;
  EXPECT_FALSE(byz_mode_from_name("chaotic", out));
}

// ---------------------------------------------------------------------------
// The attack and the defense
// ---------------------------------------------------------------------------

TrialSpec attack_spec(Algo algo, int trials) {
  const LogP logp = LogP::unit();
  const TunedAlgo tuned = tune_for(algo, 64, 64, logp, 1e-4, /*f=*/1);
  TrialSpec spec;
  spec.algo = algo;
  spec.acfg = tuned.acfg;
  spec.n = 64;
  spec.logp = logp;
  spec.seed = 11;
  spec.trials = trials;
  spec.threads = 1;
  return spec;
}

// The canonical consistency attack: the SOURCE equivocates, broadcasting
// two validly signed payloads.  Plain CCG - built for a crash-only world -
// must split: some correct nodes deliver the true payload, others the
// alternate, in every trial.
TEST(ByzantineAttack, EquivocatingRootSplitsPlainCcg) {
  TrialSpec spec = attack_spec(Algo::kCcg, 20);
  spec.byz_count = 1;
  spec.byz_include_root = true;
  const TrialAggregate agg = run_trials(spec);
  EXPECT_EQ(agg.consistency_violations, 20);
  EXPECT_EQ(agg.forged_delivery_trials, 20);
  EXPECT_GT(agg.msgs_equivocated_total, 0);
}

// Per-run detail of the same split: both payloads delivered by correct
// nodes, and the run flagged inconsistent.
TEST(ByzantineAttack, SplitRunReportsDistinctPayloads) {
  const TrialSpec spec = [] {
    TrialSpec s = attack_spec(Algo::kCcg, 1);
    s.byz_count = 1;
    s.byz_include_root = true;
    return s;
  }();
  RunConfig rcfg = trial_run_config(spec, 0);
  const RunMetrics m = run_once(spec.algo, spec.acfg, rcfg);
  EXPECT_EQ(m.n_byzantine, 1);
  EXPECT_FALSE(m.consistent_delivery);
  EXPECT_GE(m.distinct_delivered_payloads, 2);
  EXPECT_GT(m.n_delivered_true, 0);
  EXPECT_GT(m.n_delivered_forged, 0);
}

// SBRB's defense, across every adversary mode at ~10% Byzantine plus the
// equivocating root: zero consistency violations, and every correct node
// still delivers under the non-equivocating modes.
TEST(ByzantineAttack, SbrbHoldsConsistencyUnderEveryMode) {
  for (const ByzMode mode : {ByzMode::kSilent, ByzMode::kEquivocator,
                             ByzMode::kCorruptor, ByzMode::kSpammer}) {
    TrialSpec spec = attack_spec(Algo::kSbrb, 15);
    spec.byz_count = 6;
    spec.byz_mode = mode;
    const TrialAggregate agg = run_trials(spec);
    SCOPED_TRACE(byz_mode_name(mode));
    EXPECT_EQ(agg.consistency_violations, 0);
    EXPECT_EQ(agg.forged_delivery_trials, 0);  // forged digests never pass
  }
  TrialSpec root = attack_spec(Algo::kSbrb, 15);
  root.byz_count = 1;
  root.byz_include_root = true;
  const TrialAggregate agg = run_trials(root);
  // A Byzantine source may get its alternate payload adopted - that is
  // allowed - but never BOTH payloads across correct nodes.
  EXPECT_EQ(agg.consistency_violations, 0);
}

TEST(ByzantineAttack, SbrbDeliversEverywhereWhenClean) {
  TrialSpec spec = attack_spec(Algo::kSbrb, 10);
  const TrialAggregate agg = run_trials(spec);
  EXPECT_EQ(agg.all_delivered_trials, 10);
  EXPECT_EQ(agg.all_or_nothing_violations, 0);
  EXPECT_EQ(agg.consistency_violations, 0);
}

// ---------------------------------------------------------------------------
// Cross-engine determinism under the full adversarial stack
// ---------------------------------------------------------------------------

// 100-seed randomized sweep: Byzantine nodes of a random mode stacked on
// burst loss and crashes, traced on every engine.  The canonically sorted
// JSONL must be byte-identical across engines x shards {1,2,8} x threads
// {1,8}; the full matrix runs on every 5th seed (serial vs async on all).
TEST(ByzantineParity, HundredSeedTraceByteParity) {
  constexpr int kSeeds = 100;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    std::mt19937_64 gen(0xB5297A4D3F84D5B5ull * static_cast<unsigned>(seed));
    auto pick = [&](int lo, int hi) {  // inclusive
      return lo + static_cast<int>(gen() % static_cast<unsigned>(hi - lo + 1));
    };

    RunConfig cfg;
    cfg.n = pick(48, 128);
    cfg.logp = (pick(0, 1) != 0) ? LogP::piz_daint() : LogP::unit();
    cfg.seed = static_cast<std::uint64_t>(seed) * 6151u;
    cfg.rx = (pick(0, 1) != 0) ? RxPolicy::kOnePerStep : RxPolicy::kDrainAll;
    cfg.jitter_max = pick(0, 2);
    cfg.drop_prob = 0.01 * pick(0, 2);
    if (pick(0, 1) != 0)
      cfg.burst = BurstLoss::from_rate(0.01 * pick(2, 5), pick(2, 5));
    std::set<NodeId> used;
    used.insert(0);  // root stays clean here; the root attack is tested above
    auto fresh_node = [&] {
      for (;;) {
        const auto i = static_cast<NodeId>(pick(1, cfg.n - 1));
        if (used.insert(i).second) return i;
      }
    };
    for (int k = pick(0, 2); k > 0; --k)
      cfg.failures.online.push_back(
          {fresh_node(), static_cast<Step>(pick(3, 50))});
    if (pick(0, 1) != 0) {
      const Step down = static_cast<Step>(pick(5, 30));
      cfg.failures.restarts.push_back(
          {fresh_node(), down, down + static_cast<Step>(pick(1, 10))});
    }
    const auto mode = static_cast<ByzMode>(pick(0, kByzModeCount - 1));
    for (int k = pick(1, 5); k > 0; --k)
      cfg.byzantine.nodes.push_back({fresh_node(), mode});
    ASSERT_EQ(config_error(cfg), "");

    const Algo algo = std::array{Algo::kCcg, Algo::kFcg, Algo::kSbrb}[
        static_cast<std::size_t>(pick(0, 2))];
    AlgoConfig acfg;
    acfg.T = 30;
    acfg.drain_extra = 2;
    if (algo == Algo::kFcg) acfg.fcg_f = 2;
    if (algo == Algo::kSbrb) {
      acfg.sbrb_eps = 1e-3;
      acfg.sbrb_byz_frac = 0.15;
    }

    auto canonical_jsonl = [&](EngineKind kind, int threads) {
      VectorTrace trace;
      RunConfig tcfg = cfg;
      tcfg.trace = &trace;
      run_once(algo, acfg, tcfg, {kind, threads});
      std::vector<TraceEvent> events = trace.events();
      obs::canonical_sort(events);
      return obs::to_jsonl(events);
    };

    SCOPED_TRACE("seed=" + std::to_string(seed) + " algo=" +
                 std::string(algo_name(algo)) + " mode=" +
                 std::string(byz_mode_name(mode)) +
                 " n=" + std::to_string(cfg.n));
    const std::string serial = canonical_jsonl(EngineKind::kStepped, 1);
    ASSERT_FALSE(serial.empty());
    if (mode == ByzMode::kEquivocator) {
      ASSERT_NE(serial.find("\"equivocated\""), std::string::npos);
    }
    if (mode == ByzMode::kCorruptor || mode == ByzMode::kSpammer) {
      ASSERT_NE(serial.find("\"forged\""), std::string::npos);
    }
    ASSERT_EQ(serial, canonical_jsonl(EngineKind::kAsync, 1));
    if (seed % 5 == 0) {
      ASSERT_EQ(serial, canonical_jsonl(EngineKind::kParallel, 1));
      ASSERT_EQ(serial, canonical_jsonl(EngineKind::kParallel, 8));
      ASSERT_EQ(serial, canonical_jsonl(EngineKind::kSharded, 1));
      ASSERT_EQ(serial, canonical_jsonl(EngineKind::kSharded, 2));
      ASSERT_EQ(serial, canonical_jsonl(EngineKind::kSharded, 8));
    } else if (seed % 2 == 0) {
      ASSERT_EQ(serial, canonical_jsonl(EngineKind::kParallel, 3));
    } else {
      ASSERT_EQ(serial, canonical_jsonl(EngineKind::kSharded, 2));
    }
  }
}

// A silent adversary never emits a kSend: the suppression happens at the
// sender, before tracing and routing.
TEST(ByzantineParity, SilentNodeSendsNothing) {
  RunConfig cfg;
  cfg.n = 48;
  cfg.logp = LogP::unit();
  cfg.seed = 4;
  cfg.byzantine.nodes.push_back({3, ByzMode::kSilent});
  VectorTrace trace;
  cfg.trace = &trace;
  AlgoConfig acfg;
  acfg.T = 30;
  const RunMetrics m = run_once(Algo::kCcg, acfg, cfg, {EngineKind::kStepped, 1});
  EXPECT_GT(m.msgs_suppressed, 0);
  for (const auto& ev : trace.events()) {
    if (ev.kind == TraceEvent::Kind::kSend) {
      EXPECT_NE(ev.node, 3);
    }
  }
}

// ---------------------------------------------------------------------------
// Campaign integration + forensics
// ---------------------------------------------------------------------------

TEST(ByzantineCampaign, EffectiveGuaranteeLayering) {
  FaultScenario sc;
  sc.byz_count = 3;
  // An adversary voids claims that assume honest forwarding...
  EXPECT_EQ(campaign_effective_guarantee(Guarantee::kAllReached, sc),
            Guarantee::kNone);
  EXPECT_EQ(campaign_effective_guarantee(Guarantee::kAllOrNothing, sc),
            Guarantee::kNone);
  // ...but consistency is exactly the claim made UNDER the adversary, and
  // crashes cannot split payloads, so it survives both.
  EXPECT_EQ(campaign_effective_guarantee(Guarantee::kConsistent, sc),
            Guarantee::kConsistent);
  sc.byz_count = 0;
  sc.online_failures = 2;
  EXPECT_EQ(campaign_effective_guarantee(Guarantee::kConsistent, sc),
            Guarantee::kConsistent);
}

// Small end-to-end Byzantine grid: SBRB passes every consistency cell,
// CCG fails the equivocation cells AND dumps a replayable artifact whose
// ring parses back event-by-event.
TEST(ByzantineCampaign, GridFindsCcgViolationsAndSbrbHolds) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "cg_byz_campaign_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  CampaignConfig cfg;
  cfg.n = 48;
  cfg.logp = LogP::unit();
  cfg.seed = 5;
  cfg.trials = 12;
  cfg.threads = 2;
  cfg.artifacts_dir = dir.string();
  cfg.rerun_prefix = "./fault_campaign --byz-grid";

  const double eps = 1e-3;
  const TunedAlgo ccg = tune_for(Algo::kCcg, cfg.n, cfg.n, cfg.logp, eps, 1);
  const TunedAlgo fcg = tune_for(Algo::kFcg, cfg.n, cfg.n, cfg.logp, eps, 1);
  const TunedAlgo sbrb = tune_for(Algo::kSbrb, cfg.n, cfg.n, cfg.logp, eps, 1);
  const auto entries = byzantine_entries(ccg.acfg, fcg.acfg, sbrb.acfg);
  const auto scenarios = byzantine_fault_scenarios(cfg.n);
  ASSERT_GE(scenarios.size(), 3u);  // clean + >=2 adversarial cells

  const CampaignResult result = run_campaign(cfg, scenarios, entries);

  bool ccg_failed_adversarial = false;
  for (const auto& cell : result.cells) {
    SCOPED_TRACE(cell.scenario + "/" + cell.entry);
    if (cell.entry.find("SBRB") != std::string::npos) {
      EXPECT_TRUE(cell.pass);
      EXPECT_EQ(cell.agg.consistency_violations, 0);
    }
    if (cell.entry.find("CCG") != std::string::npos &&
        cell.scenario != "byz-clean" && !cell.pass)
      ccg_failed_adversarial = true;
  }
  EXPECT_TRUE(ccg_failed_adversarial);

  // At least one violation artifact, pointing at a CCG or FCG cell, whose
  // header carries the replay command and whose ring round-trips.
  ASSERT_FALSE(result.artifacts.empty());
  const FailureArtifact& art = result.artifacts.front();
  EXPECT_TRUE(std::filesystem::exists(art.path));
  std::ifstream in(art.path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // header
  EXPECT_NE(line.find("\"rerun\""), std::string::npos);
  EXPECT_NE(line.find("--replay=" + art.scenario + "/" + art.entry + "/" +
                      std::to_string(art.trial)),
            std::string::npos);
  int events = 0;
  while (std::getline(in, line)) {
    TraceEvent ev;
    ASSERT_TRUE(obs::from_jsonl(line, ev)) << line;
    ++events;
  }
  EXPECT_GT(events, 0);

  // --replay contract: the campaign's own spec for that cell reproduces
  // the violation under the same effective guarantee.
  const FaultScenario* sc = nullptr;
  for (const auto& s : scenarios)
    if (s.name == art.scenario) sc = &s;
  const CampaignEntry* en = nullptr;
  for (const auto& e : entries)
    if (e.label == art.entry) en = &e;
  ASSERT_NE(sc, nullptr);
  ASSERT_NE(en, nullptr);
  const TrialSpec spec = campaign_trial_spec(cfg, *sc, *en);
  RunConfig rcfg = trial_run_config(spec, art.trial);
  const RunMetrics m = run_once(spec.algo, spec.acfg, rcfg);
  EXPECT_TRUE(
      trial_violates(campaign_effective_guarantee(en->guarantee, *sc), m));

  std::filesystem::remove_all(dir);
}

// Byzantine draws happen LAST in the per-trial fault sampling, so enabling
// them never perturbs the crash/restart schedule of an existing spec.
TEST(ByzantineCampaign, ByzDrawsDoNotPerturbCrashSchedule) {
  TrialSpec spec = attack_spec(Algo::kCcg, 1);
  spec.online_failures = 2;
  spec.restarts = 1;
  const RunConfig before = trial_run_config(spec, 7);
  spec.byz_count = 3;
  const RunConfig after = trial_run_config(spec, 7);
  ASSERT_EQ(before.failures.online.size(), after.failures.online.size());
  for (std::size_t i = 0; i < before.failures.online.size(); ++i)
    EXPECT_EQ(before.failures.online[i].node, after.failures.online[i].node);
  ASSERT_EQ(before.failures.restarts.size(), after.failures.restarts.size());
  EXPECT_EQ(after.byzantine.nodes.size(), 3u);
  EXPECT_EQ(config_error(after), "");
}

}  // namespace
}  // namespace cg

// CCG correctness (Claim 3): every active node is reached and every node
// terminates, for arbitrary constructed g-sets and for gossip-produced
// ones; stop rules fire at the nearest g-node in each direction.
#include <gtest/gtest.h>

#include <memory>

#include "gossip/ccg.hpp"
#include "gossip/timing.hpp"
#include "harness/runner.hpp"

namespace cg {
namespace {

std::shared_ptr<std::vector<std::uint8_t>> bitmap(NodeId n,
                                                  const std::vector<NodeId>& set) {
  auto bm = std::make_shared<std::vector<std::uint8_t>>(n, 0);
  for (const NodeId i : set) (*bm)[static_cast<std::size_t>(i)] = 1;
  return bm;
}

RunMetrics run_seeded(NodeId n, const std::vector<NodeId>& g_set,
                      const FailureSchedule& failures = {},
                      VectorTrace* trace = nullptr) {
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP::unit();
  cfg.seed = 1;
  cfg.failures = failures;
  cfg.trace = trace;
  cfg.record_node_detail = true;
  CcgNode::Params p;
  p.T = 0;
  p.seed_colored = bitmap(n, g_set);
  Engine<CcgNode> eng(cfg, p);
  return eng.run();
}

TEST(Ccg, LoneRootColorsWholeRing) {
  const RunMetrics m = run_seeded(12, {});
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_NE(m.t_complete, kNever);
  EXPECT_FALSE(m.hit_max_steps);
}

TEST(Ccg, TwoNodeRing) {
  const RunMetrics m = run_seeded(2, {});
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_NE(m.t_complete, kNever);
}

TEST(Ccg, SingleNode) {
  const RunMetrics m = run_seeded(1, {});
  EXPECT_TRUE(m.all_active_colored);
}

TEST(Ccg, StopsAfterHearingNearestGNodes) {
  // g-nodes 0 (root) and 6 on a 12-ring, gaps 5 each.  The stop signal in
  // a direction arrives from distance d after ~2d slots, while the sweep
  // passes offset d at ~2d slots, so exactly one extra forward message
  // slips out per node (fwd slots run first): 7 fwd + 6 bwd per node.
  const RunMetrics m = run_seeded(12, {6});
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_EQ(m.msgs_correction, 26);
}

TEST(Ccg, DenseGSetSendsMinimalMessages) {
  // All nodes are g-nodes: nearest g-node at distance 1 in each direction.
  // The forward stop signal (a backward message) lands one slot after the
  // off=2 forward slot, so each node sends 2 fwd + 1 bwd messages.
  std::vector<NodeId> all;
  for (NodeId i = 1; i < 8; ++i) all.push_back(i);
  const RunMetrics m = run_seeded(8, all);
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_EQ(m.msgs_correction, 24);
}

TEST(Ccg, CNodesExitImmediatelyAndNeverSend) {
  VectorTrace trace;
  const RunMetrics m = run_seeded(16, {8}, {}, &trace);
  EXPECT_TRUE(m.all_active_colored);
  for (const auto& ev : trace.events()) {
    if (ev.kind != TraceEvent::Kind::kSend) continue;
    EXPECT_TRUE(ev.node == 0 || ev.node == 8)
        << "c-node " << ev.node << " sent a message";
  }
}

TEST(Ccg, AsymmetricGapsTiming) {
  // g-nodes 0, 2, 9 on a 16-ring: all nodes reached; completion bounded by
  // ~2*maxgap + flight.
  const RunMetrics m = run_seeded(16, {2, 9});
  EXPECT_TRUE(m.all_active_colored);
  // Largest gap is 9->0 (distance 7): correction needs <= 2*7 slots + L+O.
  const Step start = corr_start(0, LogP::unit());
  EXPECT_LE(m.t_complete, start + 2 * 7 + 4);
}

TEST(Ccg, SurvivesPreFailedNodes) {
  FailureSchedule fs;
  fs.pre_failed = {3, 4, 5, 11};
  const RunMetrics m = run_seeded(16, {8}, fs);
  EXPECT_EQ(m.n_active, 12);
  EXPECT_TRUE(m.all_active_colored);  // dead nodes don't block the sweep
  EXPECT_NE(m.t_complete, kNever);
}

TEST(Ccg, GossipPlusCorrectionReachesEveryone) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RunConfig cfg;
    cfg.n = 200;
    cfg.logp = LogP::unit();
    cfg.seed = seed;
    AlgoConfig acfg;
    acfg.T = 10;  // deliberately short gossip: correction must fix a lot
    const RunMetrics m = run_once(Algo::kCcg, acfg, cfg);
    EXPECT_TRUE(m.all_active_colored) << "seed " << seed;
    EXPECT_NE(m.t_complete, kNever);
    EXPECT_FALSE(m.hit_max_steps);
  }
}

TEST(Ccg, RecordedNearestDistancesAreCorrect) {
  // Probe protocol state directly: g-nodes 0 and 4 on a 12-ring.
  RunConfig cfg;
  cfg.n = 12;
  cfg.logp = LogP::unit();
  cfg.seed = 1;
  CcgNode::Params p;
  p.T = 0;
  p.seed_colored = bitmap(12, {4});
  Engine<CcgNode> eng(cfg, p);
  eng.run();
  EXPECT_EQ(eng.node(0).nearest_fwd(), 4);   // 0 -> 4 forward
  EXPECT_EQ(eng.node(0).nearest_bwd(), 8);   // 0 -> 4 backward
  EXPECT_EQ(eng.node(4).nearest_fwd(), 8);
  EXPECT_EQ(eng.node(4).nearest_bwd(), 4);
}

class CcgConsistencySweep
    : public ::testing::TestWithParam<std::tuple<NodeId, Step, std::uint64_t>> {
};

TEST_P(CcgConsistencySweep, AlwaysStronglyConsistentWithoutOnlineFailures) {
  const auto [n, T, seed] = GetParam();
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP::unit();
  cfg.seed = seed;
  AlgoConfig acfg;
  acfg.T = T;
  const RunMetrics m = run_once(Algo::kCcg, acfg, cfg);
  EXPECT_TRUE(m.all_active_colored) << "n=" << n << " T=" << T;
  EXPECT_NE(m.t_complete, kNever);
  EXPECT_FALSE(m.hit_max_steps);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CcgConsistencySweep,
    ::testing::Combine(::testing::Values<NodeId>(2, 3, 7, 33, 128),
                       ::testing::Values<Step>(0, 1, 5, 14),
                       ::testing::Values<std::uint64_t>(1, 7, 42)));

}  // namespace
}  // namespace cg

// FCG correctness (Claims 4-5): all-or-nothing delivery under online
// failures, k-array bookkeeping, finalization, SOS fallback, and the
// f^2+f+1 bound with SOS disabled.
#include <gtest/gtest.h>

#include <memory>

#include "gossip/fcg.hpp"
#include "gossip/timing.hpp"
#include "harness/runner.hpp"

namespace cg {
namespace {

std::shared_ptr<std::vector<std::uint8_t>> bitmap(NodeId n,
                                                  const std::vector<NodeId>& set) {
  auto bm = std::make_shared<std::vector<std::uint8_t>>(n, 0);
  for (const NodeId i : set) (*bm)[static_cast<std::size_t>(i)] = 1;
  return bm;
}

RunMetrics run_seeded(NodeId n, const std::vector<NodeId>& g_set, int f,
                      const FailureSchedule& failures = {},
                      bool sos_enabled = true, VectorTrace* trace = nullptr) {
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP::unit();
  cfg.seed = 1;
  cfg.failures = failures;
  cfg.trace = trace;
  cfg.record_node_detail = true;
  FcgNode::Params p;
  p.T = 0;
  p.f = f;
  p.sos_enabled = sos_enabled;
  p.seed_colored = bitmap(n, g_set);
  Engine<FcgNode> eng(cfg, p);
  return eng.run();
}

// ------------------------------------------------------- KnownGNodes --

TEST(KnownGNodes, SortsByDirectionalDistance) {
  KnownGNodes k(Ring(16), /*self=*/4, Dir::kFwd, /*cap=*/3);
  k.insert(10);
  k.insert(6);
  k.insert(1);  // fwd distance 13 - farthest
  EXPECT_EQ(k.size(), 3);
  EXPECT_EQ(k.at(0), 6);
  EXPECT_EQ(k.at(1), 10);
  EXPECT_EQ(k.at(2), 1);
  EXPECT_EQ(k.dist_at(0), 2);
  EXPECT_EQ(k.dist_at(2), 13);
}

TEST(KnownGNodes, CapsToNearest) {
  KnownGNodes k(Ring(16), 0, Dir::kFwd, 2);
  k.insert(8);
  k.insert(12);
  k.insert(3);  // nearer: evicts 12
  EXPECT_EQ(k.size(), 2);
  EXPECT_EQ(k.at(0), 3);
  EXPECT_EQ(k.at(1), 8);
  k.insert(14);  // farther than everything kept: ignored
  EXPECT_EQ(k.at(1), 8);
}

TEST(KnownGNodes, IgnoresSelfAndDuplicates) {
  KnownGNodes k(Ring(8), 2, Dir::kBwd, 4);
  k.insert(2);
  EXPECT_EQ(k.size(), 0);
  k.insert(1);
  k.insert(1);
  EXPECT_EQ(k.size(), 1);
  EXPECT_EQ(k.dist_at(0), 1);  // backward distance 2 -> 1
  EXPECT_EQ(k.dist_at(3), kNever);
}

// ------------------------------------------------- failure-free runs --

TEST(Fcg, LoneRootTriggersSosAndStillDeliversEverywhere) {
  // One g-node < f+1 = 2: the sweep wraps, SOS floods, everyone delivers.
  const RunMetrics m = run_seeded(12, {}, 1);
  EXPECT_TRUE(m.sos_triggered);
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_TRUE(m.all_active_delivered);
  EXPECT_FALSE(m.hit_max_steps);
}

TEST(Fcg, TwoGNodesWithFOneFallBackToSos) {
  // Only f+1 = 2 g-nodes exist: no g-node can ever find 2 DISTINCT
  // g-nodes per direction, the sweeps wrap, and SOS fires (this is why
  // Claim 5 requires f^2+f+1 = 3 g-nodes).  Delivery still succeeds.
  const RunMetrics m = run_seeded(12, {6}, 1);
  EXPECT_TRUE(m.sos_triggered);
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_TRUE(m.all_active_delivered);
}

TEST(Fcg, ThreeGNodesAvoidSosForFOne) {
  // f^2+f+1 = 3 g-nodes: FCG completes without the SOS backstop.
  const RunMetrics m = run_seeded(12, {4, 8}, 1);
  EXPECT_FALSE(m.sos_triggered);
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_TRUE(m.all_active_delivered);
  EXPECT_NE(m.t_complete, kNever);
}

TEST(Fcg, FZeroBehavesLikeCcg) {
  const RunMetrics m = run_seeded(16, {5, 11}, 0);
  EXPECT_FALSE(m.sos_triggered);
  EXPECT_TRUE(m.all_active_colored);
  EXPECT_TRUE(m.all_active_delivered);
}

TEST(Fcg, DenseRingAllGNodes) {
  std::vector<NodeId> all;
  for (NodeId i = 1; i < 10; ++i) all.push_back(i);
  const RunMetrics m = run_seeded(10, all, 2);
  EXPECT_FALSE(m.sos_triggered);
  EXPECT_TRUE(m.all_active_delivered);
}

TEST(Fcg, KnownArraysConvergeToNearestGNodes) {
  // g-nodes 0, 3, 7 on a 12-ring, f=1: node 0 must know its 2 nearest in
  // each direction: fwd {3,7}, bwd {7,3}.
  RunConfig cfg;
  cfg.n = 12;
  cfg.logp = LogP::unit();
  cfg.seed = 1;
  FcgNode::Params p;
  p.T = 0;
  p.f = 1;
  p.seed_colored = bitmap(12, {3, 7});
  Engine<FcgNode> eng(cfg, p);
  const RunMetrics m = eng.run();
  EXPECT_TRUE(m.all_active_delivered);
  const auto& fwd = eng.node(0).known(Dir::kFwd);
  ASSERT_EQ(fwd.size(), 2);
  EXPECT_EQ(fwd.at(0), 3);
  EXPECT_EQ(fwd.at(1), 7);
  const auto& bwd = eng.node(0).known(Dir::kBwd);
  ASSERT_EQ(bwd.size(), 2);
  EXPECT_EQ(bwd.at(0), 7);  // backward distance 5
  EXPECT_EQ(bwd.at(1), 3);  // backward distance 9
}

TEST(Fcg, GossipRunsDeliverEverywhere) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RunConfig cfg;
    cfg.n = 256;
    cfg.logp = LogP::unit();
    cfg.seed = seed;
    AlgoConfig acfg;
    acfg.T = 14;
    acfg.fcg_f = 1;
    const RunMetrics m = run_once(Algo::kFcg, acfg, cfg);
    EXPECT_TRUE(m.all_active_colored) << seed;
    EXPECT_TRUE(m.all_active_delivered) << seed;
    EXPECT_FALSE(m.sos_triggered) << seed;
    EXPECT_FALSE(m.hit_max_steps) << seed;
  }
}

// ------------------------------------------------- online failures --

TEST(Fcg, AllOrNothingWithOneOnlineFailure) {
  // Kill a g-node mid-correction; with f=1 every remaining active node
  // must still deliver.
  for (Step kill_at = 2; kill_at <= 20; ++kill_at) {
    FailureSchedule fs;
    fs.online.push_back({6, kill_at});
    const RunMetrics m = run_seeded(12, {6}, 1, fs);
    EXPECT_TRUE(m.all_or_nothing_delivery()) << "kill_at=" << kill_at;
    EXPECT_TRUE(m.all_active_delivered) << "kill_at=" << kill_at;
    EXPECT_FALSE(m.hit_max_steps);
  }
}

TEST(Fcg, SurvivesKillingARunOfAdjacentGNodes) {
  // g-nodes 4,5,6 adjacent; kill 5 and 6 mid-run with f=2.
  FailureSchedule fs;
  fs.online.push_back({5, 4});
  fs.online.push_back({6, 5});
  const RunMetrics m = run_seeded(16, {4, 5, 6, 10}, 2, fs);
  EXPECT_TRUE(m.all_or_nothing_delivery());
  EXPECT_TRUE(m.all_active_delivered);
}

TEST(Fcg, RootFailureBeforeSendingDeliversNothing) {
  // The root dies at step 0 having told no one: NOTHING must be delivered
  // (the all-or-nothing "nothing" branch of property IV).
  FailureSchedule fs;
  fs.online.push_back({0, 0});
  RunConfig cfg;
  cfg.n = 8;
  cfg.logp = LogP::unit();
  cfg.seed = 1;
  cfg.failures = fs;
  FcgNode::Params p;
  p.T = 4;
  p.f = 1;
  Engine<FcgNode> eng(cfg, p);
  const RunMetrics m = eng.run();
  EXPECT_EQ(m.n_delivered, 0);
  EXPECT_TRUE(m.all_or_nothing_delivery());
}

TEST(Fcg, RootFailureMidGossipIsStillAllOrNothing) {
  for (Step kill_at = 1; kill_at <= 12; ++kill_at) {
    FailureSchedule fs;
    fs.online.push_back({0, kill_at});
    RunConfig cfg;
    cfg.n = 64;
    cfg.logp = LogP::unit();
    cfg.seed = 21 + static_cast<std::uint64_t>(kill_at);
    cfg.failures = fs;
    FcgNode::Params p;
    p.T = 10;
    p.f = 1;
    Engine<FcgNode> eng(cfg, p);
    const RunMetrics m = eng.run();
    EXPECT_TRUE(m.all_or_nothing_delivery()) << "kill_at=" << kill_at;
    EXPECT_FALSE(m.hit_max_steps);
  }
}

class FcgFailureSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(FcgFailureSweep, AllOrNothingUnderRandomOnlineFailures) {
  const auto [f, seed] = GetParam();
  Xoshiro256 frng(seed);
  RunConfig cfg;
  cfg.n = 128;
  cfg.logp = LogP::unit();
  cfg.seed = seed;
  cfg.failures = FailureSchedule::random(cfg.n, 0, f, /*horizon=*/40, frng);
  AlgoConfig acfg;
  acfg.T = 12;
  acfg.fcg_f = f;
  const RunMetrics m = run_once(Algo::kFcg, acfg, cfg);
  EXPECT_TRUE(m.all_or_nothing_delivery());
  EXPECT_TRUE(m.all_active_delivered);  // root survives here, so "all"
  EXPECT_FALSE(m.hit_max_steps);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FcgFailureSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Range<std::uint64_t>(1, 21)));

// ----------------------------------------------------------- SOS ----

TEST(Fcg, SosFloodsReachUncoloredNodes) {
  VectorTrace trace;
  const RunMetrics m = run_seeded(8, {}, 2, {}, true, &trace);
  EXPECT_TRUE(m.sos_triggered);
  EXPECT_TRUE(m.all_active_delivered);
  EXPECT_GT(m.msgs_sos, 0);
}

TEST(Fcg, Claim5CompletesWithoutSosWhenEnoughGNodes) {
  // f=1: f^2+f+1 = 3 g-nodes suffice even with SOS disabled.
  const RunMetrics m = run_seeded(24, {8, 16}, 1, {}, /*sos=*/false);
  EXPECT_FALSE(m.sos_triggered);
  EXPECT_TRUE(m.all_active_delivered);
  EXPECT_FALSE(m.hit_max_steps);
}

TEST(Fcg, CNodeTimeoutTriggersSos) {
  // Construct a c-node that can never hear of f+1 g-nodes: one g-node
  // (root), f=1, SOS *enabled*, but disable the g-node wrap-SOS by
  // killing the root right after it colors node 1.
  FailureSchedule fs;
  fs.online.push_back({0, 5});  // root dies after its first few sends
  RunConfig cfg;
  cfg.n = 6;
  cfg.logp = LogP::unit();
  cfg.seed = 1;
  cfg.failures = fs;
  FcgNode::Params p;
  p.T = 0;
  p.f = 1;
  p.sos_timeout = 40;
  Engine<FcgNode> eng(cfg, p);
  const RunMetrics m = eng.run();
  // Nodes colored by the root's sweep time out and SOS-flood, so every
  // active node still delivers: all-or-nothing holds.
  EXPECT_TRUE(m.sos_triggered);
  EXPECT_TRUE(m.all_or_nothing_delivery());
  EXPECT_TRUE(m.all_active_delivered);
}

TEST(Fcg, WorkScalesWithF) {
  // More resilience -> wider sweeps -> more messages.
  const RunMetrics f1 = run_seeded(64, {8, 16, 24, 32, 40, 48, 56}, 1);
  const RunMetrics f3 = run_seeded(64, {8, 16, 24, 32, 40, 48, 56}, 3);
  EXPECT_FALSE(f1.sos_triggered);
  EXPECT_FALSE(f3.sos_triggered);
  EXPECT_GT(f3.msgs_correction, f1.msgs_correction);
}

}  // namespace
}  // namespace cg

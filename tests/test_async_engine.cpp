// Event-driven engine: exact agreement with the stepped engine for every
// corrected-gossip protocol, across sizes, failures, jitter, and
// heterogeneous link delays.
#include <gtest/gtest.h>

#include "gossip/ccg.hpp"
#include "gossip/fcg.hpp"
#include "gossip/gos.hpp"
#include "gossip/ocg.hpp"
#include "sim/async_engine.hpp"
#include "sim/engine.hpp"
#include "sim/topology.hpp"

namespace cg {
namespace {

void expect_same(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.n_active, b.n_active);
  EXPECT_EQ(a.n_colored, b.n_colored);
  EXPECT_EQ(a.n_delivered, b.n_delivered);
  EXPECT_EQ(a.msgs_total, b.msgs_total);
  EXPECT_EQ(a.msgs_gossip, b.msgs_gossip);
  EXPECT_EQ(a.msgs_correction, b.msgs_correction);
  EXPECT_EQ(a.msgs_sos, b.msgs_sos);
  EXPECT_EQ(a.t_last_colored, b.t_last_colored);
  EXPECT_EQ(a.t_last_colored_partial, b.t_last_colored_partial);
  EXPECT_EQ(a.t_complete, b.t_complete);
  EXPECT_EQ(a.all_active_colored, b.all_active_colored);
  EXPECT_EQ(a.all_active_delivered, b.all_active_delivered);
}

RunConfig cfg_n(NodeId n, std::uint64_t seed) {
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP::unit();
  cfg.seed = seed;
  return cfg;
}

class AsyncMatchesStepped
    : public ::testing::TestWithParam<std::tuple<NodeId, std::uint64_t>> {};

TEST_P(AsyncMatchesStepped, Gos) {
  const auto [n, seed] = GetParam();
  GosNode::Params p;
  p.T = 16;
  Engine<GosNode> stepped(cfg_n(n, seed), p);
  AsyncEngine<GosNode> async(cfg_n(n, seed), p);
  expect_same(stepped.run(), async.run());
}

TEST_P(AsyncMatchesStepped, Ocg) {
  const auto [n, seed] = GetParam();
  OcgNode::Params p;
  p.T = 14;
  p.corr_sends = 10;
  Engine<OcgNode> stepped(cfg_n(n, seed), p);
  AsyncEngine<OcgNode> async(cfg_n(n, seed), p);
  expect_same(stepped.run(), async.run());
}

TEST_P(AsyncMatchesStepped, Ccg) {
  const auto [n, seed] = GetParam();
  CcgNode::Params p;
  p.T = 14;
  Engine<CcgNode> stepped(cfg_n(n, seed), p);
  AsyncEngine<CcgNode> async(cfg_n(n, seed), p);
  expect_same(stepped.run(), async.run());
}

TEST_P(AsyncMatchesStepped, Fcg) {
  const auto [n, seed] = GetParam();
  FcgNode::Params p;
  p.T = 14;
  p.f = 1;
  Engine<FcgNode> stepped(cfg_n(n, seed), p);
  AsyncEngine<FcgNode> async(cfg_n(n, seed), p);
  expect_same(stepped.run(), async.run());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AsyncMatchesStepped,
    ::testing::Combine(::testing::Values<NodeId>(17, 64, 200),
                       ::testing::Values<std::uint64_t>(1, 5, 9)));

TEST(AsyncEngineTest, MatchesWithOnlineFailures) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RunConfig cfg = cfg_n(150, seed);
    cfg.failures.pre_failed = {3, 77};
    cfg.failures.online.push_back({40, 9});
    cfg.failures.online.push_back({95, 17});
    FcgNode::Params p;
    p.T = 13;
    p.f = 2;
    Engine<FcgNode> stepped(cfg, p);
    AsyncEngine<FcgNode> async(cfg, p);
    expect_same(stepped.run(), async.run());
  }
}

TEST(AsyncEngineTest, MatchesWithJitter) {
  RunConfig cfg = cfg_n(120, 4);
  cfg.jitter_max = 3;
  CcgNode::Params p;
  p.T = 13;
  Engine<CcgNode> stepped(cfg, p);
  AsyncEngine<CcgNode> async(cfg, p);
  expect_same(stepped.run(), async.run());
}

TEST(AsyncEngineTest, MatchesWithHeterogeneousLinks) {
  RunConfig cfg = cfg_n(128, 8);
  cfg.link_extra = two_level_topology(16, 4);
  cfg.link_extra_max = 4;
  CcgNode::Params p;
  p.T = 15;
  p.drain_extra = 4;
  Engine<CcgNode> stepped(cfg, p);
  AsyncEngine<CcgNode> async(cfg, p);
  const RunMetrics a = stepped.run();
  const RunMetrics b = async.run();
  expect_same(a, b);
  EXPECT_TRUE(b.all_active_colored);
}

TEST(AsyncEngineTest, SosPathMatches) {
  // Lone root with f=1 wraps into SOS; both engines must agree on the
  // flood's full accounting.
  RunConfig cfg = cfg_n(24, 2);
  FcgNode::Params p;
  p.T = 0;
  p.f = 1;
  Engine<FcgNode> stepped(cfg, p);
  AsyncEngine<FcgNode> async(cfg, p);
  const RunMetrics a = stepped.run();
  const RunMetrics b = async.run();
  EXPECT_TRUE(a.sos_triggered);
  expect_same(a, b);
}

TEST(AsyncEngineTest, MaxStepsSafety) {
  RunConfig cfg = cfg_n(8, 1);
  cfg.max_steps = 5;
  GosNode::Params p;
  p.T = 100;  // would run far longer
  AsyncEngine<GosNode> async(cfg, p);
  const RunMetrics m = async.run();
  EXPECT_TRUE(m.hit_max_steps);
}

}  // namespace
}  // namespace cg

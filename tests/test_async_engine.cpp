// Event-driven engine: exact agreement with the stepped engine for every
// corrected-gossip protocol, across sizes, failures, jitter, and
// heterogeneous link delays.
#include <gtest/gtest.h>

#include "gossip/ccg.hpp"
#include "gossip/fcg.hpp"
#include "gossip/gos.hpp"
#include "gossip/ocg.hpp"
#include "obs/trace_sinks.hpp"
#include "sim/async_engine.hpp"
#include "sim/engine.hpp"
#include "sim/topology.hpp"

namespace cg {
namespace {

void expect_same(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.n_active, b.n_active);
  EXPECT_EQ(a.n_colored, b.n_colored);
  EXPECT_EQ(a.n_delivered, b.n_delivered);
  EXPECT_EQ(a.msgs_total, b.msgs_total);
  EXPECT_EQ(a.msgs_gossip, b.msgs_gossip);
  EXPECT_EQ(a.msgs_correction, b.msgs_correction);
  EXPECT_EQ(a.msgs_sos, b.msgs_sos);
  EXPECT_EQ(a.t_last_colored, b.t_last_colored);
  EXPECT_EQ(a.t_last_colored_partial, b.t_last_colored_partial);
  EXPECT_EQ(a.t_complete, b.t_complete);
  EXPECT_EQ(a.all_active_colored, b.all_active_colored);
  EXPECT_EQ(a.all_active_delivered, b.all_active_delivered);
}

RunConfig cfg_n(NodeId n, std::uint64_t seed) {
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP::unit();
  cfg.seed = seed;
  return cfg;
}

class AsyncMatchesStepped
    : public ::testing::TestWithParam<std::tuple<NodeId, std::uint64_t>> {};

TEST_P(AsyncMatchesStepped, Gos) {
  const auto [n, seed] = GetParam();
  GosNode::Params p;
  p.T = 16;
  Engine<GosNode> stepped(cfg_n(n, seed), p);
  AsyncEngine<GosNode> async(cfg_n(n, seed), p);
  expect_same(stepped.run(), async.run());
}

TEST_P(AsyncMatchesStepped, Ocg) {
  const auto [n, seed] = GetParam();
  OcgNode::Params p;
  p.T = 14;
  p.corr_sends = 10;
  Engine<OcgNode> stepped(cfg_n(n, seed), p);
  AsyncEngine<OcgNode> async(cfg_n(n, seed), p);
  expect_same(stepped.run(), async.run());
}

TEST_P(AsyncMatchesStepped, Ccg) {
  const auto [n, seed] = GetParam();
  CcgNode::Params p;
  p.T = 14;
  Engine<CcgNode> stepped(cfg_n(n, seed), p);
  AsyncEngine<CcgNode> async(cfg_n(n, seed), p);
  expect_same(stepped.run(), async.run());
}

TEST_P(AsyncMatchesStepped, Fcg) {
  const auto [n, seed] = GetParam();
  FcgNode::Params p;
  p.T = 14;
  p.f = 1;
  Engine<FcgNode> stepped(cfg_n(n, seed), p);
  AsyncEngine<FcgNode> async(cfg_n(n, seed), p);
  expect_same(stepped.run(), async.run());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AsyncMatchesStepped,
    ::testing::Combine(::testing::Values<NodeId>(17, 64, 200),
                       ::testing::Values<std::uint64_t>(1, 5, 9)));

TEST(AsyncEngineTest, MatchesWithOnlineFailures) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RunConfig cfg = cfg_n(150, seed);
    cfg.failures.pre_failed = {3, 77};
    cfg.failures.online.push_back({40, 9});
    cfg.failures.online.push_back({95, 17});
    FcgNode::Params p;
    p.T = 13;
    p.f = 2;
    Engine<FcgNode> stepped(cfg, p);
    AsyncEngine<FcgNode> async(cfg, p);
    expect_same(stepped.run(), async.run());
  }
}

TEST(AsyncEngineTest, MatchesWithJitter) {
  RunConfig cfg = cfg_n(120, 4);
  cfg.jitter_max = 3;
  CcgNode::Params p;
  p.T = 13;
  Engine<CcgNode> stepped(cfg, p);
  AsyncEngine<CcgNode> async(cfg, p);
  expect_same(stepped.run(), async.run());
}

TEST(AsyncEngineTest, MatchesWithHeterogeneousLinks) {
  RunConfig cfg = cfg_n(128, 8);
  cfg.link_extra = two_level_topology(16, 4);
  cfg.link_extra_max = 4;
  CcgNode::Params p;
  p.T = 15;
  p.drain_extra = 4;
  Engine<CcgNode> stepped(cfg, p);
  AsyncEngine<CcgNode> async(cfg, p);
  const RunMetrics a = stepped.run();
  const RunMetrics b = async.run();
  expect_same(a, b);
  EXPECT_TRUE(b.all_active_colored);
}

TEST(AsyncEngineTest, SosPathMatches) {
  // Lone root with f=1 wraps into SOS; both engines must agree on the
  // flood's full accounting.
  RunConfig cfg = cfg_n(24, 2);
  FcgNode::Params p;
  p.T = 0;
  p.f = 1;
  Engine<FcgNode> stepped(cfg, p);
  AsyncEngine<FcgNode> async(cfg, p);
  const RunMetrics a = stepped.run();
  const RunMetrics b = async.run();
  EXPECT_TRUE(a.sos_triggered);
  expect_same(a, b);
}

// Minimal protocol that leaves the event queue quiescent for a stretch:
// the root sends once at step 0 and completes (no further ticks); node 1
// relays on receive and completes.  No node ever ticks, so the kernel
// clock only advances when a delivery sweep fires.
class QuietRelayNode {
 public:
  struct Params {};
  QuietRelayNode(const Params&, NodeId self, NodeId) : self_(self) {}

  template <class Ctx>
  void on_start(Ctx& ctx) {
    if (!ctx.is_root()) return;
    ctx.mark_colored();
    ctx.deliver();
    Message m;
    m.tag = Tag::kGossip;
    m.time = ctx.now();
    ctx.send(1, m);
    ctx.complete();
  }

  template <class Ctx>
  void on_receive(Ctx& ctx, const Message&) {
    ctx.mark_colored();
    ctx.deliver();
    if (self_ == 1) {
      Message m;
      m.tag = Tag::kGossip;
      m.time = ctx.now();
      ctx.send(2, m);
    }
    ctx.complete();
  }

  template <class Ctx>
  void on_tick(Ctx&) {}

 private:
  NodeId self_;
};

// Regression for a calendar-queue FIFO bug across the overflow boundary:
// the online-crash event for node 2 (step 16, beyond the kernel ring at
// setup, so it sits in the overflow heap) must fire before the delivery
// sweep for a message ARRIVING at step 16, as the stepped engine applies
// crashes ahead of deliveries within a step.  The sweep is scheduled from
// a handler that fired after a quiet stretch (root sends at step 0, node 1
// relays at step 8 with delivery delay 8), so the overflow heap was last
// drained under a stale window; without migration-before-link in
// schedule_at, the sweep would be linked ahead of the earlier-scheduled
// crash and node 2 would be colored before dying.  The kill's protocol
// reset scrubs that from RunMetrics, so the check is on the canonical
// trace: the stepped engine has only a kFail for node 2 at step 16, the
// buggy order adds deliver/colored/delivered/complete events before it.
TEST(AsyncEngineTest, CrashBeatsSameStepArrivalAfterQuietStretch) {
  RunConfig base;
  base.n = 3;
  base.logp = LogP{.l_over_o = 7, .o_us = 1.0};  // delivery delay = 8 steps
  base.seed = 1;
  base.failures.online.push_back({2, 16});  // node 2 dies at the arrival step
  QuietRelayNode::Params p;

  VectorTrace stepped_trace;
  RunConfig scfg = base;
  scfg.trace = &stepped_trace;
  Engine<QuietRelayNode> stepped(scfg, p);
  const RunMetrics s = stepped.run();

  VectorTrace async_trace;
  RunConfig acfg = base;
  acfg.trace = &async_trace;
  AsyncEngine<QuietRelayNode> async(acfg, p);
  const RunMetrics a = async.run();

  expect_same(s, a);
  auto canonical = [](VectorTrace& t) {
    std::vector<TraceEvent> events = t.events();
    obs::canonical_sort(events);
    return obs::to_jsonl(events);
  };
  EXPECT_EQ(canonical(stepped_trace), canonical(async_trace));
  // Node 2 must never have been colored: the crash precedes the arrival.
  for (const TraceEvent& ev : async_trace.events())
    if (ev.node == 2) EXPECT_EQ(ev.kind, TraceEvent::Kind::kFail);
}

TEST(AsyncEngineTest, MaxStepsSafety) {
  RunConfig cfg = cfg_n(8, 1);
  cfg.max_steps = 5;
  GosNode::Params p;
  p.T = 100;  // would run far longer
  AsyncEngine<GosNode> async(cfg, p);
  const RunMetrics m = async.run();
  EXPECT_TRUE(m.hit_max_steps);
}

}  // namespace
}  // namespace cg

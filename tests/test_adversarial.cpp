// Adversarial schedules for the failure-proof guarantees: systematic
// grids over WHO dies WHEN, targeting the correction phase's weakest
// moments (mid-sweep, during finalization, around gap edges), plus
// engine-misuse death tests for the CG_CHECK contracts.
#include <gtest/gtest.h>

#include <memory>

#include "gossip/fcg.hpp"
#include "harness/runner.hpp"

namespace cg {
namespace {

std::shared_ptr<std::vector<std::uint8_t>> bitmap(NodeId n,
                                                  const std::vector<NodeId>& s) {
  auto bm = std::make_shared<std::vector<std::uint8_t>>(n, 0);
  for (const NodeId i : s) (*bm)[static_cast<std::size_t>(i)] = 1;
  return bm;
}

/// Seeded-g-set FCG with one scripted kill; returns the metrics.
RunMetrics fcg_kill(NodeId n, const std::vector<NodeId>& g_set, int f,
                    NodeId victim, Step at) {
  RunConfig cfg;
  cfg.n = n;
  cfg.logp = LogP::unit();
  cfg.seed = 1;
  cfg.failures.online.push_back({victim, at});
  FcgNode::Params p;
  p.T = 0;
  p.f = f;
  p.seed_colored = bitmap(n, g_set);
  Engine<FcgNode> eng(cfg, p);
  return eng.run();
}

class FcgKillGrid
    : public ::testing::TestWithParam<std::tuple<NodeId, Step>> {};

TEST_P(FcgKillGrid, AnySingleKillAnywhereAnytimeIsAllOrNothing) {
  // Ring of 24 with g-nodes {0, 6, 13, 19}: kill each position at each
  // phase of the run (f = 1 tolerates one online failure).
  const auto [victim, at] = GetParam();
  if (victim == 0) return;  // root exclusion matches property III's premise
  const RunMetrics m = fcg_kill(24, {6, 13, 19}, 1, victim, at);
  ASSERT_TRUE(m.all_or_nothing_delivery())
      << "victim=" << victim << " at=" << at;
  ASSERT_TRUE(m.all_active_delivered) << "victim=" << victim << " at=" << at;
  ASSERT_FALSE(m.hit_max_steps);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FcgKillGrid,
    ::testing::Combine(::testing::Values<NodeId>(1, 5, 6, 7, 13, 18, 19, 23),
                       ::testing::Values<Step>(2, 3, 5, 8, 12, 18, 30)));

TEST(FcgAdversarial, KillBothNeighborsOfAGap) {
  // g-nodes {0, 8, 16} on a 24-ring; kill 8 and 16 (the two g-nodes
  // flanking two full gaps) mid-correction with f = 2.
  for (const Step at : {3, 6, 10, 16}) {
    RunConfig cfg;
    cfg.n = 24;
    cfg.logp = LogP::unit();
    cfg.seed = 2;
    cfg.failures.online.push_back({8, at});
    cfg.failures.online.push_back({16, at + 1});
    FcgNode::Params p;
    p.T = 0;
    p.f = 2;
    p.seed_colored = bitmap(24, {8, 16});
    Engine<FcgNode> eng(cfg, p);
    const RunMetrics m = eng.run();
    ASSERT_TRUE(m.all_or_nothing_delivery()) << "at=" << at;
    ASSERT_TRUE(m.all_active_delivered) << "at=" << at;
  }
}

TEST(FcgAdversarial, GossipKillsStackedOnCorrectionKills) {
  // Failures straddling the phase boundary: some during gossip (Corollary
  // 3 says any number is fine) plus exactly f during correction.
  RunConfig cfg;
  cfg.n = 128;
  cfg.logp = LogP::unit();
  cfg.seed = 3;
  for (int k = 0; k < 6; ++k)  // gossip-phase crashes (unbounded per Cor. 3)
    cfg.failures.online.push_back({static_cast<NodeId>(30 + k),
                                   static_cast<Step>(2 + k)});
  cfg.failures.online.push_back({64, 20});  // correction-phase crash (<= f)
  AlgoConfig acfg;
  acfg.T = 12;
  acfg.fcg_f = 1;
  const RunMetrics m = run_once(Algo::kFcg, acfg, cfg);
  EXPECT_TRUE(m.all_or_nothing_delivery());
  EXPECT_TRUE(m.all_active_delivered);
}

TEST(CcgAdversarial, KillAtEveryStepStillTerminates) {
  // CCG makes no delivery promise under online failures, but it must
  // never hang: whatever dies whenever, the run ends on its own.
  for (Step at = 2; at <= 26; at += 3) {
    RunConfig cfg;
    cfg.n = 64;
    cfg.logp = LogP::unit();
    cfg.seed = 4;
    cfg.failures.online.push_back({21, at});
    cfg.failures.online.push_back({40, at + 1});
    AlgoConfig acfg;
    acfg.T = 10;
    const RunMetrics m = run_once(Algo::kCcg, acfg, cfg);
    ASSERT_FALSE(m.hit_max_steps) << "at=" << at;
    ASSERT_NE(m.t_complete, kNever) << "at=" << at;
  }
}

TEST(FaultAdversarial, FullFaultStackNeverHangs) {
  // Liveness under everything at once: heavy burst loss, an online crash,
  // a crash-restart, a straggler and a transient partition - with and
  // without retransmission (whose bounded retries must drain, not spin).
  for (const Algo algo : {Algo::kCcg, Algo::kFcg}) {
    for (const bool reliable : {false, true}) {
      RunConfig cfg;
      cfg.n = 64;
      cfg.logp = LogP::unit();
      cfg.seed = 6;
      cfg.burst = BurstLoss::from_rate(0.2, 6);
      cfg.failures.online.push_back({21, 8});
      cfg.failures.restarts.push_back({33, 10, 18});
      cfg.stragglers.push_back({17, 4});
      cfg.partitions.push_back({6, 14, {40, 41, 42}});
      AlgoConfig acfg;
      acfg.T = 10;
      acfg.fcg_f = 1;
      acfg.reliable.enabled = reliable;
      const RunMetrics m = run_once(algo, acfg, cfg);
      ASSERT_FALSE(m.hit_max_steps)
          << algo_name(algo) << " reliable=" << reliable;
    }
  }
}

// ------------------------------------------------ contract death tests --

/// A deliberately broken protocol that sends to itself.
struct SelfSender {
  struct Params {};
  SelfSender(const Params&, NodeId, NodeId) {}
  template <class Ctx>
  void on_start(Ctx& ctx) {
    if (ctx.is_root()) ctx.mark_colored();
  }
  template <class Ctx>
  void on_receive(Ctx&, const Message&) {}
  template <class Ctx>
  void on_tick(Ctx& ctx) {
    Message m;
    ctx.send(ctx.self(), m);  // contract violation
  }
};

/// A deliberately broken protocol that emits twice per step.
struct DoubleSender {
  struct Params {};
  DoubleSender(const Params&, NodeId, NodeId) {}
  template <class Ctx>
  void on_start(Ctx& ctx) {
    if (ctx.is_root()) ctx.mark_colored();
  }
  template <class Ctx>
  void on_receive(Ctx&, const Message&) {}
  template <class Ctx>
  void on_tick(Ctx& ctx) {
    Message m;
    m.tag = Tag::kGossip;
    ctx.send(1, m);
    ctx.send(2, m);  // second emission in the same step: violates LogP O
  }
};

using EngineContractDeathTest = ::testing::Test;

TEST(EngineContractDeathTest, SelfSendAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RunConfig cfg;
  cfg.n = 4;
  cfg.logp = LogP::unit();
  cfg.seed = 1;
  EXPECT_DEATH(
      {
        Engine<SelfSender> eng(cfg, {});
        eng.run();
      },
      "message to itself");
}

TEST(EngineContractDeathTest, DoubleSendAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RunConfig cfg;
  cfg.n = 4;
  cfg.logp = LogP::unit();
  cfg.seed = 1;
  EXPECT_DEATH(
      {
        Engine<DoubleSender> eng(cfg, {});
        eng.run();
      },
      ">1 message in one step");
}

TEST(EngineContractDeathTest, InvalidFaultConfigAbortsWithExplanation) {
  // run_once validates via config_error() before building an engine, so a
  // malformed fault setup dies with the human-readable message (the
  // example drivers surface the same string on stderr instead of dying).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RunConfig cfg;
  cfg.n = 8;
  cfg.logp = LogP::unit();
  cfg.drop_prob = 1.5;
  EXPECT_DEATH(run_once(Algo::kCcg, {}, cfg), "drop_prob");

  RunConfig cfg2;
  cfg2.n = 8;
  cfg2.logp = LogP::unit();
  cfg2.failures.restarts.push_back({3, 9, 4});
  EXPECT_DEATH(run_once(Algo::kCcg, {}, cfg2), "up_at");
}

TEST(EngineContractDeathTest, RootMustBeAliveAtStart) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RunConfig cfg;
  cfg.n = 4;
  cfg.logp = LogP::unit();
  cfg.failures.pre_failed = {0};
  EXPECT_DEATH(
      {
        Engine<SelfSender> eng(cfg, {});
        eng.run();
      },
      "root must be active");
}

}  // namespace
}  // namespace cg

// SBRB fast-path verification (gossip/sbrb.hpp):
//
//   * SbrbRefNode - the stock Protocol-API implementation (linear
//     membership scans, heap-allocated full-Message queues) - is the
//     oracle: a 100-seed sweep under the full fault stack (jitter, drops,
//     bursts, crashes, restarts, every Byzantine mode) pins the
//     production SbrbNode's canonically sorted JSONL trace BYTE-FOR-BYTE
//     against it across all four engines, shard counts {1,2,8} and
//     thread counts {1,8};
//   * the sharded engine's staged-send step kernel must be invisible in
//     the self-profile too: callback counts match the stepped engine
//     exactly on clean runs (where the kernel engages);
//   * sbrb_fill_sample output is sorted, distinct and never self;
//   * sbrb_config_error / sbrb_samples reject malformed knobs with
//     human-readable CG_CHECK messages (death tests).
#include <gtest/gtest.h>

#include <array>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "gossip/sbrb.hpp"
#include "harness/runner.hpp"
#include "obs/report.hpp"
#include "obs/trace_sinks.hpp"
#include "runtime/parallel_engine.hpp"
#include "sim/async_engine.hpp"
#include "sim/core/profile.hpp"
#include "sim/engine.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/fault/validate.hpp"
#include "sim/trace.hpp"

namespace cg {
namespace {

// ---------------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------------

TEST(SbrbConfig, ErrorStringsNameTheBadKnob) {
  EXPECT_EQ(sbrb_config_error(1e-3, 0.15), "");
  EXPECT_EQ(sbrb_config_error(0.999, 0.0), "");
  EXPECT_NE(sbrb_config_error(0.0, 0.1).find("sbrb_eps"), std::string::npos);
  EXPECT_NE(sbrb_config_error(1.0, 0.1).find("sbrb_eps"), std::string::npos);
  EXPECT_NE(sbrb_config_error(-2.0, 0.1).find("sbrb_eps"), std::string::npos);
  EXPECT_NE(sbrb_config_error(1e-3, 0.5).find("sbrb_byz_frac"),
            std::string::npos);
  EXPECT_NE(sbrb_config_error(1e-3, -0.01).find("sbrb_byz_frac"),
            std::string::npos);
}

using SbrbConfigDeathTest = ::testing::Test;

TEST(SbrbConfigDeathTest, SamplesRejectEpsOutOfRange) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH((void)sbrb_samples(64, 0.0, 0.1),
               "sbrb_eps must be in \\(0, 1\\)");
  EXPECT_DEATH((void)sbrb_samples(64, 1.0, 0.1), "sbrb_eps");
}

TEST(SbrbConfigDeathTest, SamplesRejectByzFracOutOfRange) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH((void)sbrb_samples(64, 1e-3, 0.5),
               "sbrb_byz_frac must be in \\[0, 0.5\\)");
  EXPECT_DEATH((void)sbrb_samples(64, 1e-3, -0.1), "sbrb_byz_frac");
}

// ---------------------------------------------------------------------------
// Sample generator
// ---------------------------------------------------------------------------

TEST(SbrbFillSample, SortedDistinctAndNeverSelf) {
  std::array<NodeId, 64> buf{};
  for (const NodeId n : {5, 64, 1000}) {
    for (const NodeId self : {NodeId{0}, NodeId{1}, n - 1}) {
      for (int phase = 0; phase < 3; ++phase) {
        const int k = static_cast<int>(std::min<NodeId>(n - 1, 64));
        sbrb_fill_sample(12345, self, n, phase, k, buf.data());
        for (int i = 0; i < k; ++i) {
          EXPECT_NE(buf[static_cast<std::size_t>(i)], self);
          EXPECT_LT(buf[static_cast<std::size_t>(i)], n);
          if (i > 0) {
            EXPECT_LT(buf[static_cast<std::size_t>(i - 1)],
                      buf[static_cast<std::size_t>(i)]);
          }
        }
      }
    }
  }
  // Deterministic: same key, same sample.
  std::array<NodeId, 64> again{};
  sbrb_fill_sample(12345, 3, 1000, 1, 64, buf.data());
  sbrb_fill_sample(12345, 3, 1000, 1, 64, again.data());
  EXPECT_EQ(buf, again);
  // Phases decorrelate: echo and ready samples differ.
  sbrb_fill_sample(12345, 3, 1000, 0, 64, again.data());
  EXPECT_NE(buf, again);
}

// ---------------------------------------------------------------------------
// Fast path vs oracle
// ---------------------------------------------------------------------------

std::string canonical(VectorTrace& trace) {
  std::vector<TraceEvent> events = trace.events();
  obs::canonical_sort(events);
  return obs::to_jsonl(events);
}

// 100 random configs under the full fault stack.  The oracle trace comes
// from SbrbRefNode on the stepped engine; the fast path must reproduce it
// byte-for-byte on every engine (the runner dispatches SbrbNode).
TEST(SbrbFastPath, HundredSeedRefVsFastByteParity) {
  for (int seed = 0; seed < 100; ++seed) {
    std::mt19937_64 gen(0x9E3779B97F4A7C15ull *
                        static_cast<unsigned>(seed + 1));
    auto pick = [&](int lo, int hi) {  // inclusive
      return lo + static_cast<int>(gen() % static_cast<unsigned>(hi - lo + 1));
    };

    RunConfig cfg;
    cfg.n = pick(48, 128);
    cfg.logp = (pick(0, 1) != 0) ? LogP::piz_daint() : LogP::unit();
    cfg.seed = static_cast<std::uint64_t>(seed) * 7919u + 17u;
    cfg.rx = (pick(0, 1) != 0) ? RxPolicy::kOnePerStep : RxPolicy::kDrainAll;
    cfg.jitter_max = pick(0, 2);
    cfg.drop_prob = 0.01 * pick(0, 2);
    if (pick(0, 1) != 0)
      cfg.burst = BurstLoss::from_rate(0.01 * pick(2, 5), pick(2, 5));
    std::set<NodeId> used;
    used.insert(0);
    auto fresh_node = [&] {
      for (;;) {
        const auto i = static_cast<NodeId>(pick(1, cfg.n - 1));
        if (used.insert(i).second) return i;
      }
    };
    for (int k = pick(0, 2); k > 0; --k)
      cfg.failures.online.push_back(
          {fresh_node(), static_cast<Step>(pick(3, 50))});
    if (pick(0, 1) != 0) {
      const Step down = static_cast<Step>(pick(5, 30));
      cfg.failures.restarts.push_back(
          {fresh_node(), down, down + static_cast<Step>(pick(1, 10))});
    }
    const auto mode = static_cast<ByzMode>(pick(0, kByzModeCount - 1));
    for (int k = pick(1, 5); k > 0; --k)
      cfg.byzantine.nodes.push_back({fresh_node(), mode});
    ASSERT_EQ(config_error(cfg), "");

    AlgoConfig acfg;
    acfg.T = 30;
    acfg.drain_extra = 2;
    acfg.sbrb_eps = 1e-3;
    acfg.sbrb_byz_frac = 0.15;

    SbrbNode::Params params;
    params.s = sbrb_samples(cfg.n, acfg.sbrb_eps, acfg.sbrb_byz_frac);
    params.deadline = sbrb_deadline(params.s, cfg.logp);

    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " mode=" + std::string(byz_mode_name(mode)) +
                 " n=" + std::to_string(cfg.n));

    struct Observed {
      std::string trace;
      std::string metrics;
    };
    // Oracle runs: the naive reference node under the SAME engine the
    // fast path is checked on (metrics like t_end are an engine-level
    // property, so the comparison must be same-engine).
    auto ref = [&](EngineKind kind, int threads) {
      Observed o;
      VectorTrace trace;
      RunConfig tcfg = cfg;
      tcfg.trace = &trace;
      switch (kind) {
        case EngineKind::kStepped: {
          Engine<SbrbRefNode> eng(tcfg, params);
          o.metrics = obs::to_json(eng.run());
          break;
        }
        case EngineKind::kAsync: {
          AsyncEngine<SbrbRefNode> eng(tcfg, params);
          o.metrics = obs::to_json(eng.run());
          break;
        }
        case EngineKind::kParallel: {
          ParallelEngine<SbrbRefNode> eng(tcfg, params, threads);
          o.metrics = obs::to_json(eng.run());
          break;
        }
        case EngineKind::kSharded: {
          ShardedEngine<SbrbRefNode> eng(tcfg, params, threads);
          o.metrics = obs::to_json(eng.run());
          break;
        }
      }
      o.trace = canonical(trace);
      return o;
    };
    auto fast = [&](EngineKind kind, int threads) {
      Observed o;
      VectorTrace trace;
      RunConfig tcfg = cfg;
      tcfg.trace = &trace;
      o.metrics =
          obs::to_json(run_once(Algo::kSbrb, acfg, tcfg, {kind, threads}));
      o.trace = canonical(trace);
      return o;
    };

    // Cross-engine trace anchor: every engine must reproduce these bytes.
    const std::string oracle = ref(EngineKind::kStepped, 1).trace;
    ASSERT_FALSE(oracle.empty());

    auto check = [&](EngineKind kind, int threads) {
      SCOPED_TRACE(std::string(engine_name(kind)) + "/" +
                   std::to_string(threads));
      const Observed r = ref(kind, threads);
      const Observed f = fast(kind, threads);
      EXPECT_EQ(oracle, r.trace);
      EXPECT_EQ(oracle, f.trace);
      EXPECT_EQ(r.metrics, f.metrics);
    };

    check(EngineKind::kStepped, 1);
    check(EngineKind::kAsync, 1);
    if (seed % 5 == 0) {
      check(EngineKind::kParallel, 1);
      check(EngineKind::kParallel, 8);
      check(EngineKind::kSharded, 1);
      check(EngineKind::kSharded, 2);
      check(EngineKind::kSharded, 8);
    } else if (seed % 2 == 0) {
      check(EngineKind::kParallel, 3);
    } else {
      check(EngineKind::kSharded, 2);
    }
    ASSERT_FALSE(::testing::Test::HasFailure());
  }
}

// Clean network, no faults: the sharded engine's SBRB step kernel engages
// (pending-bitmap sweep instead of the generic per-node tick sweep), and
// its self-profile must be indistinguishable from the stepped engine's -
// same callback counts, same trace bytes.
TEST(SbrbFastPath, ShardedKernelProfileMatchesStepped) {
  RunConfig cfg;
  cfg.n = 512;
  cfg.logp = LogP::unit();
  cfg.seed = 4242;
  AlgoConfig acfg;
  acfg.sbrb_eps = 1e-3;
  acfg.sbrb_byz_frac = 0.1;

  struct Observed {
    EngineProfile prof;
    std::string trace;
  };
  auto profiled = [&](EngineKind kind, int threads) {
    Observed o;
    VectorTrace trace;
    RunConfig tcfg = cfg;
    tcfg.trace = &trace;
    tcfg.profile = &o.prof;
    run_once(Algo::kSbrb, acfg, tcfg, {kind, threads});
    o.trace = canonical(trace);
    return o;
  };

  const Observed serial = profiled(EngineKind::kStepped, 1);
  EXPECT_GT(serial.prof.callbacks_tick, 0);
  EXPECT_GT(serial.prof.callbacks_receive, 0);
  for (const int shards : {1, 2, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const Observed sh = profiled(EngineKind::kSharded, shards);
    EXPECT_EQ(serial.prof.callbacks_start, sh.prof.callbacks_start);
    EXPECT_EQ(serial.prof.callbacks_receive, sh.prof.callbacks_receive);
    EXPECT_EQ(serial.prof.callbacks_tick, sh.prof.callbacks_tick);
    EXPECT_EQ(serial.trace, sh.trace);
  }
}

}  // namespace
}  // namespace cg
